/**
 * @file
 * Sparse, data-dependent access — on-demand movement vs conservative
 * bulk transfer.
 *
 * A graph-processing-style kernel visits a frontier: each warp
 * evaluates a runtime condition and touches only the few elements
 * that pass.  A scratchpad (even DMA-assisted) must conservatively
 * preload and write back the whole mapped tile; the stash faults in
 * exactly the touched words and registers exactly the written ones.
 * The example sweeps the frontier density to show the crossover.
 */

#include <algorithm>
#include <cstdio>

#include "driver/system.hh"
#include "workloads/kernel_builder.hh"

using namespace stashsim;

namespace
{

constexpr Addr nodeBase = 0x3000'0000;
constexpr unsigned objectBytes = 64; // graph-node records
constexpr unsigned numNodes = 4096;
constexpr unsigned threadsPerBlock = 256;

Workload
makeWorkload(MemOrg org, unsigned touched_per_warp)
{
    const unsigned warps = threadsPerBlock / 32;
    const unsigned num_tbs = numNodes / threadsPerBlock;

    Workload wl;
    wl.name = "sparse_on_demand";
    wl.init = [](FunctionalMem &fm) {
        for (unsigned i = 0; i < numNodes; ++i)
            fm.writeWord(nodeBase + Addr(i) * objectBytes, i);
    };

    Kernel k;
    k.name = "visit_frontier";
    for (unsigned tb = 0; tb < num_tbs; ++tb) {
        TbBuilder b(org, warps);
        TileUse use;
        use.tile.globalBase =
            nodeBase + Addr(tb) * threadsPerBlock * objectBytes;
        use.tile.fieldSize = 4;
        use.tile.objectSize = objectBytes;
        use.tile.rowSize = threadsPerBlock;
        use.tile.numStrides = 1;
        use.readIn = true;
        use.writeOut = true;
        const unsigned t = b.addTile(use);

        for (unsigned w = 0; w < warps; ++w) {
            b.compute(w, 1); // evaluate the frontier condition
            std::vector<std::uint32_t> elems;
            for (unsigned i = 0; i < touched_per_warp; ++i)
                elems.push_back(w * 32 + (i * 11 + tb * 3) % 32);
            std::sort(elems.begin(), elems.end());
            elems.erase(std::unique(elems.begin(), elems.end()),
                        elems.end());
            b.accessTile(w, t, elems, false);
            b.compute(w, 2, 1);
            b.accessTile(w, t, elems, true);
        }
        k.blocks.push_back(b.build());
    }
    wl.phases.push_back(Phase::gpu(std::move(k)));
    return wl;
}

RunResult
run(MemOrg org, unsigned touched)
{
    SystemConfig cfg = SystemConfig::microbenchmarkDefault();
    cfg.memOrg = org;
    System sys(cfg);
    return sys.run(makeWorkload(org, touched));
}

} // namespace

int
main()
{
    std::printf("Sparse on-demand access: %u graph nodes, varying "
                "frontier density\n\n",
                numNodes);
    std::printf("%-18s %14s %14s %14s\n", "touched lanes/32",
                "Stash flits", "ScratchGD flits", "Stash/DMA");

    for (unsigned touched : {1u, 2u, 4u, 8u, 16u, 32u}) {
        RunResult rs = run(MemOrg::Stash, touched);
        RunResult rd = run(MemOrg::ScratchGD, touched);
        const double ratio =
            double(rs.stats.noc.totalFlitHops()) /
            double(rd.stats.noc.totalFlitHops());
        std::printf("%-18u %14llu %14llu %13.2fx\n", touched,
                    (unsigned long long)rs.stats.noc.totalFlitHops(),
                    (unsigned long long)rd.stats.noc.totalFlitHops(),
                    ratio);
    }

    std::printf("\nDMA moves the whole tile regardless of the "
                "frontier; the stash's traffic\nscales with what the "
                "kernel actually touches (the paper's On-demand\n"
                "microbenchmark is the 1/32 row).\n");
    return 0;
}
