/**
 * @file
 * Cross-kernel data reuse — the stash's global visibility at work.
 *
 * A bank of per-particle state is updated by a chain of GPU kernels
 * (a simple "simulation steps" pattern).  With a scratchpad, every
 * kernel must copy the state in and write it back out — the
 * scratchpad is private and dies with the kernel.  With a stash, the
 * first kernel faults the state in; each later kernel's AddMap finds
 * the identical mapping still resident (the Section 4.5 replication
 * check), its loads hit registered words kept across the kernel
 * boundary, and nothing moves until a CPU finally reads the results
 * through the coherence protocol.
 */

#include <cstdio>

#include "driver/system.hh"
#include "workloads/kernel_builder.hh"

using namespace stashsim;

namespace
{

constexpr Addr stateBase = 0x2000'0000;
/** One 64 B record per particle; the kernel updates one 4 B field.
 *  The 4096 fields fill the 16 KB stash compactly, while their
 *  records span 256 KB — far beyond the 32 KB L1. */
constexpr unsigned particleBytes = 64;
constexpr unsigned numParticles = 4096;
constexpr unsigned steps = 8;
constexpr unsigned threadsPerBlock = 128;

Workload
makeWorkload(MemOrg org, unsigned cpu_cores)
{
    const unsigned warps = threadsPerBlock / 32;
    const unsigned num_tbs = numParticles / threadsPerBlock;

    Workload wl;
    wl.name = "multi_kernel_reuse";
    wl.init = [](FunctionalMem &fm) {
        for (unsigned i = 0; i < numParticles; ++i)
            fm.writeWord(stateBase + Addr(i) * particleBytes, i);
    };

    for (unsigned step = 0; step < steps; ++step) {
        Kernel k;
        k.name = "sim_step";
        for (unsigned tb = 0; tb < num_tbs; ++tb) {
            TbBuilder b(org, warps);
            TileUse use;
            use.tile.globalBase =
                stateBase +
                Addr(tb) * threadsPerBlock * particleBytes;
            use.tile.fieldSize = 4;
            use.tile.objectSize = particleBytes;
            use.tile.rowSize = threadsPerBlock;
            use.tile.numStrides = 1;
            use.readIn = true;
            use.writeOut = true;
            const unsigned t = b.addTile(use);
            for (unsigned w = 0; w < warps; ++w) {
                b.accessTile(w, t, laneElems(w * 32, 32), false);
                b.compute(w, 4, 1); // integrate: state += 1
                b.accessTile(w, t, laneElems(w * 32, 32), true);
            }
            k.blocks.push_back(b.build());
        }
        wl.phases.push_back(Phase::gpu(std::move(k)));
    }

    // The CPU consumes the final state through coherence.
    std::vector<std::vector<CpuOp>> consume(cpu_cores);
    for (unsigned i = 0; i < numParticles; ++i) {
        consume[i % cpu_cores].push_back(
            CpuOp{stateBase + Addr(i) * particleBytes, false,
                  i + steps, true});
    }
    wl.phases.push_back(Phase::cpu(std::move(consume)));

    wl.validate = [](FunctionalMem &fm, std::vector<std::string> &) {
        for (unsigned i = 0; i < numParticles; ++i) {
            if (fm.readWord(stateBase + Addr(i) * particleBytes) !=
                i + steps)
                return false;
        }
        return true;
    };
    return wl;
}

} // namespace

int
main()
{
    std::printf("Multi-kernel reuse: %u particles x %u simulation "
                "steps\n\n",
                numParticles, steps);
    std::printf("%-10s %10s %12s %12s %12s %6s\n", "config", "cycles",
                "flit-hops", "stash hits", "writebacks", "ok");

    for (MemOrg org : {MemOrg::Scratch, MemOrg::ScratchGD,
                       MemOrg::Cache, MemOrg::Stash}) {
        SystemConfig cfg = SystemConfig::microbenchmarkDefault();
        cfg.memOrg = org;
        System sys(cfg);
        RunResult r = sys.run(makeWorkload(org, cfg.numCpuCores));
        std::printf("%-10s %10llu %12llu %12llu %12llu %6s\n",
                    memOrgName(org),
                    (unsigned long long)r.gpuCycles,
                    (unsigned long long)r.stats.noc.totalFlitHops(),
                    (unsigned long long)r.stats.stash.hits(),
                    (unsigned long long)
                        r.stats.stash.wordsWrittenBack,
                    r.validated ? "yes" : "NO");
    }

    std::printf("\nAfter the first step, the stash serves every "
                "access locally: the state\nstays registered across "
                "kernel boundaries and is written back lazily —\n"
                "here, never during the run; the CPU pulls the final "
                "values directly\nfrom the stash through the "
                "directory.\n");
    return 0;
}
