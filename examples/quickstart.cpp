/**
 * @file
 * Quickstart: run one microbenchmark on two memory organizations and
 * compare them.
 *
 * Builds the paper's Table 2 system (4x4 mesh, 1 GPU CU + 15 CPU
 * cores for microbenchmarks), runs the Implicit microbenchmark with a
 * scratchpad and then with a stash, and prints execution cycles,
 * dynamic energy, GPU instruction count, and network traffic — the
 * four metrics of Figure 5.
 */

#include <cstdio>

#include "driver/system.hh"
#include "workloads/microbench.hh"

using namespace stashsim;

namespace
{

RunResult
runWith(MemOrg org)
{
    SystemConfig cfg = SystemConfig::microbenchmarkDefault();
    cfg.memOrg = org;

    workloads::MicrobenchConfig mb;
    mb.org = org;
    mb.cpuCores = cfg.numCpuCores;

    System sys(cfg);
    return sys.run(workloads::makeImplicit(mb));
}

} // namespace

int
main()
{
    std::printf("stashsim quickstart: Implicit microbenchmark\n\n");
    std::printf("%-10s %12s %14s %14s %12s %6s\n", "config", "cycles",
                "energy (uJ)", "instructions", "flit-hops", "ok");

    for (MemOrg org : {MemOrg::Scratch, MemOrg::Stash}) {
        const RunResult r = runWith(org);
        std::printf("%-10s %12llu %14.2f %14llu %12llu %6s\n",
                    memOrgName(org),
                    (unsigned long long)r.gpuCycles,
                    r.energy.total() / 1e6,
                    (unsigned long long)r.stats.gpu.instructions,
                    (unsigned long long)r.stats.noc.totalFlitHops(),
                    r.validated ? "yes" : "NO");
        for (const auto &e : r.errors)
            std::printf("  error: %s\n", e.c_str());
    }
    return 0;
}
