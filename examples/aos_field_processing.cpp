/**
 * @file
 * Array-of-structs field processing — the paper's Figure 1 scenario,
 * written directly against the public kernel API.
 *
 * An array of 64-byte objects lives in the global address space; the
 * GPU updates one 4-byte field of each object.  The example builds
 * the stash version of Figure 1b by hand — an AddMap with the paper's
 * exact parameters (stashBase, globalBase, fieldSize, objectSize,
 * rowSize, strideSize, numStrides, isCoherent) followed by direct
 * stash loads/stores — and contrasts it with the explicit-copy
 * scratchpad version of Figure 1a, showing the instruction count,
 * traffic, and energy the implicit movement saves, plus the compact
 * storage (32 strided fields occupy 128 contiguous stash bytes).
 */

#include <cstdio>

#include "driver/system.hh"
#include "workloads/kernel_builder.hh"

using namespace stashsim;

namespace
{

constexpr Addr aosBase = 0x1000'0000;
constexpr unsigned objectBytes = 64;
constexpr unsigned numElements = 4096;
constexpr unsigned threadsPerBlock = 256;

/** Builds the kernel for one memory organization. */
Workload
makeWorkload(MemOrg org)
{
    const unsigned warps = threadsPerBlock / 32;
    const unsigned num_tbs = numElements / threadsPerBlock;

    Workload wl;
    wl.name = "aos_field_processing";
    wl.init = [](FunctionalMem &fm) {
        for (unsigned i = 0; i < numElements; ++i)
            fm.writeWord(aosBase + Addr(i) * objectBytes, i);
    };

    Kernel k;
    k.name = "update_fieldX";
    for (unsigned tb = 0; tb < num_tbs; ++tb) {
        TbBuilder b(org, warps);

        // The Figure 1b mapping: one field of each object in this
        // block's slice of the AoS.
        TileUse use;
        use.tile.globalBase =
            aosBase + Addr(tb) * threadsPerBlock * objectBytes;
        use.tile.fieldSize = sizeof(std::uint32_t);
        use.tile.objectSize = objectBytes;
        use.tile.rowSize = threadsPerBlock;
        use.tile.strideSize = 0;
        use.tile.numStrides = 1;
        use.tile.isCoherent = true;
        use.readIn = true;
        use.writeOut = true;
        const unsigned t = b.addTile(use);

        // local[i] = compute(local[i]) — compute() here is "+1".
        for (unsigned w = 0; w < warps; ++w) {
            b.accessTile(w, t, laneElems(w * 32, 32), false);
            b.compute(w, 1, 1);
            b.accessTile(w, t, laneElems(w * 32, 32), true);
        }
        k.blocks.push_back(b.build());
    }
    wl.phases.push_back(Phase::gpu(std::move(k)));

    wl.validate = [](FunctionalMem &fm, std::vector<std::string> &) {
        for (unsigned i = 0; i < numElements; ++i) {
            if (fm.readWord(aosBase + Addr(i) * objectBytes) != i + 1)
                return false;
        }
        return true;
    };
    return wl;
}

} // namespace

int
main()
{
    std::printf("AoS field processing (the paper's Figure 1)\n");
    std::printf("%u objects x %u B, one 4 B field updated by the "
                "GPU\n\n",
                numElements, objectBytes);
    std::printf("%-10s %10s %13s %12s %12s %6s\n", "config", "cycles",
                "instructions", "flit-hops", "energy (nJ)", "ok");

    for (MemOrg org : {MemOrg::Scratch, MemOrg::ScratchGD,
                       MemOrg::Cache, MemOrg::Stash}) {
        SystemConfig cfg = SystemConfig::microbenchmarkDefault();
        cfg.memOrg = org;
        System sys(cfg);
        RunResult r = sys.run(makeWorkload(org));
        std::printf("%-10s %10llu %13llu %12llu %12.0f %6s\n",
                    memOrgName(org),
                    (unsigned long long)r.gpuCycles,
                    (unsigned long long)r.stats.gpu.instructions,
                    (unsigned long long)r.stats.noc.totalFlitHops(),
                    r.energy.total() / 1e3,
                    r.validated ? "yes" : "NO");
    }

    std::printf("\nThe stash version executes no explicit copy "
                "instructions (Figure 1b),\nfetches only the 4-byte "
                "fields (not their 64-byte lines), and stores the\n"
                "%u strided fields compactly in %u contiguous stash "
                "bytes per block.\n",
                threadsPerBlock, threadsPerBlock * 4);
    return 0;
}
