/**
 * @file
 * Unit tests for SimPerf, the host-side throughput observability
 * layer: per-phase rollups, the runBegin() measurement window, and
 * the System/StatsRegistry integration.
 */

#include <gtest/gtest.h>

#include "driver/run.hh"
#include "sim/simperf.hh"

namespace stashsim
{
namespace
{

TEST(SimPerfTest, RollsUpEventsAndTicksByPhaseName)
{
    EventQueue eq;
    SimPerf perf(eq);
    eq.addPhaseListener(&perf);
    perf.runBegin();

    eq.beginPhase("compute");
    eq.schedule(10, []() {});
    eq.schedule(20, []() {});
    eq.run();
    eq.endPhase();

    eq.beginPhase("drain");
    eq.schedule(30, []() {});
    eq.run();
    eq.endPhase();

    // Repeated phase names aggregate into one rollup entry.
    eq.beginPhase("compute");
    eq.schedule(40, []() {});
    eq.run();
    eq.endPhase();

    const SimPerfSummary s = perf.summary();
    EXPECT_EQ(s.events, 4u);
    EXPECT_EQ(s.simTicks, 40u);
    EXPECT_GE(s.hostSeconds, 0.0);
    ASSERT_EQ(s.phases.size(), 2u); // first-seen name order
    EXPECT_EQ(s.phases[0].name, "compute");
    EXPECT_EQ(s.phases[0].count, 2u);
    EXPECT_EQ(s.phases[0].events, 3u);
    EXPECT_EQ(s.phases[1].name, "drain");
    EXPECT_EQ(s.phases[1].count, 1u);
    EXPECT_EQ(s.phases[1].events, 1u);
    EXPECT_GE(s.phases[0].hostSeconds, 0.0);
}

TEST(SimPerfTest, RunBeginRestartsTheMeasurementWindow)
{
    EventQueue eq;
    SimPerf perf(eq);
    eq.addPhaseListener(&perf);
    eq.schedule(5, []() {});
    eq.run();

    perf.runBegin(); // setup work above is excluded from the window
    eq.scheduleIn(10, []() {});
    eq.run();
    const SimPerfSummary s = perf.summary();
    EXPECT_EQ(s.events, 1u);
    EXPECT_EQ(s.simTicks, 10u);
}

TEST(SimPerfTest, SurvivesAQueueReset)
{
    // reset() keeps the queue's lifetime eventsExecuted() counter, so
    // a SimPerf window spanning a reset still counts every event.
    EventQueue eq;
    SimPerf perf(eq);
    eq.addPhaseListener(&perf);
    perf.runBegin();
    eq.schedule(5, []() {});
    eq.run();
    eq.reset();
    eq.schedule(5, []() {});
    eq.run();
    EXPECT_EQ(perf.summary().events, 2u);
}

TEST(SimPerfTest, LiveSamplesAreMonotone)
{
    EventQueue eq;
    SimPerf perf(eq);
    perf.runBegin();
    const double e0 = perf.eventsNow();
    eq.schedule(1, []() {});
    eq.schedule(2, []() {});
    eq.run();
    const double e1 = perf.eventsNow();
    EXPECT_GE(e1, e0);
    EXPECT_EQ(e1, 2.0);
    EXPECT_GE(perf.hostSecondsNow(), 0.0);
    EXPECT_GE(perf.eventsPerSecNow(), 0.0);
    EXPECT_GE(perf.ticksPerHostSecNow(), 0.0);
}

TEST(SimPerfTest, RunResultCarriesThroughputSummary)
{
    RunSpec spec;
    spec.workload = "Implicit";
    spec.org = MemOrg::Stash;
    spec.scale = workloads::Scale::Smoke;
    bool saw_registry_keys = false;
    spec.instrument = [&](System &sys) {
        const auto v = sys.statsRegistry().values();
        saw_registry_keys = v.count("simperf.events") &&
                            v.count("simperf.hostSeconds") &&
                            v.count("simperf.eventsPerSec") &&
                            v.count("simperf.ticksPerHostSec");
    };
    const RunResult r = runSpec(spec);
    ASSERT_TRUE(r.validated);
    EXPECT_TRUE(saw_registry_keys);
    EXPECT_GT(r.perf.events, 0u);
    EXPECT_GT(r.perf.simTicks, 0u);
    EXPECT_GE(r.perf.hostSeconds, 0.0);
    EXPECT_FALSE(r.perf.phases.empty());
    EXPECT_GE(r.perf.eventsPerHostSec(), 0.0);
    EXPECT_GE(r.perf.ticksPerHostSec(), 0.0);
}

} // namespace
} // namespace stashsim
