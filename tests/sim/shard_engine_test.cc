/**
 * @file
 * Unit tests for the sharded execution engine: barrier semantics,
 * lock-step quantum draining, cross-tile delivery through a flush
 * function, clock alignment, and error propagation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <random>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "sim/shard_engine.hh"

namespace stashsim
{
namespace
{

TEST(QuantumBarrierTest, CompletionRunsOncePerGenerationAndPublishes)
{
    constexpr unsigned parties = 4;
    constexpr int generations = 200;
    QuantumBarrier barrier(parties);
    int completions = 0; //!< written only inside the completion
    std::atomic<int> mismatches{0};

    std::vector<std::thread> threads;
    for (unsigned p = 0; p < parties; ++p) {
        threads.emplace_back([&] {
            for (int g = 0; g < generations; ++g) {
                barrier.arriveAndWait([&] { ++completions; });
                // The completion's writes happen-before every
                // waiter's return, and the next completion cannot run
                // until this thread arrives again, so the value is
                // exact here.
                if (completions != g + 1)
                    mismatches.fetch_add(1,
                                         std::memory_order_relaxed);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(completions, generations);
    EXPECT_EQ(mismatches.load(), 0);
}

/**
 * More parties than hardware threads: every generation forces real
 * blocking on the generation word (the spin budget cannot cover a
 * descheduled party), so a lost futex wakeup would deadlock here.
 */
TEST(QuantumBarrierTest, PartiesExceedingHardwareThreadsMakeProgress)
{
    const unsigned parties =
        std::max(4u, 4 * std::max(
                         1u, std::thread::hardware_concurrency()));
    constexpr int generations = 100;
    QuantumBarrier barrier(parties);
    std::atomic<std::uint64_t> completions{0};

    std::vector<std::thread> threads;
    for (unsigned p = 0; p < parties; ++p) {
        threads.emplace_back([&] {
            for (int g = 0; g < generations; ++g)
                barrier.arriveAndWait([&] {
                    completions.fetch_add(
                        1, std::memory_order_relaxed);
                });
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(completions.load(), std::uint64_t(generations));
}

/**
 * Randomized arrival-order hammer: each party delays a random amount
 * before arriving, so the last arriver (and the spin-vs-wait split of
 * the others) varies per generation.  A lost generation wakeup or a
 * miscounted arrival would hang or miscount; the join() itself is the
 * no-deadlock assertion.
 */
TEST(QuantumBarrierTest, RandomizedArrivalOrderLosesNoWakeups)
{
    constexpr unsigned parties = 6;
    constexpr int generations = 150;
    QuantumBarrier barrier(parties);
    int completions = 0; //!< completion-only, published by release
    std::atomic<int> mismatches{0};

    std::vector<std::thread> threads;
    for (unsigned p = 0; p < parties; ++p) {
        threads.emplace_back([&, p] {
            std::mt19937 rng(0xB412 + p);
            std::uniform_int_distribution<int> jitter(0, 3);
            for (int g = 0; g < generations; ++g) {
                switch (jitter(rng)) {
                  case 0:
                    break; // arrive immediately
                  case 1:
                    std::this_thread::yield();
                    break;
                  case 2:
                    for (volatile int spin = 0; spin < 500; ++spin) {
                    }
                    break;
                  default:
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(jitter(rng) * 37));
                    break;
                }
                barrier.arriveAndWait([&] { ++completions; });
                if (completions != g + 1)
                    mismatches.fetch_add(1,
                                         std::memory_order_relaxed);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(completions, generations);
    EXPECT_EQ(mismatches.load(), 0);
}

TEST(QuantumBarrierTest, ResetChangesThePartyCount)
{
    QuantumBarrier barrier(3);
    EXPECT_EQ(barrier.parties(), 3u);
    barrier.reset(1);
    EXPECT_EQ(barrier.parties(), 1u);
    // A single party is its own last arriver: no peers needed.
    int completions = 0;
    barrier.arriveAndWait([&] { ++completions; });
    barrier.arriveAndWait([&] { ++completions; });
    EXPECT_EQ(completions, 2);
}

TEST(ShardEngineTest, DefaultEngineIsSerial)
{
    ShardEngine eng(ShardEngine::Options{});
    EXPECT_TRUE(eng.serial());
    EXPECT_EQ(eng.numTiles(), 1u);

    int ran = 0;
    eng.queue(0).schedule(100, [&] { ++ran; });
    eng.drain(nullptr, nullptr);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(eng.now(), 100u);
    EXPECT_EQ(eng.eventsExecuted(), 1u);
}

TEST(ShardEngineTest, RejectsShardingWithoutLookahead)
{
    ShardEngine::Options o;
    o.tiles = 4;
    o.threads = 2;
    o.lookahead = 0;
    EXPECT_THROW(ShardEngine{o}, std::runtime_error);
}

TEST(ShardEngineTest, ShardedDrainExecutesAllTilesAndAlignsClocks)
{
    ShardEngine::Options o;
    o.tiles = 4;
    o.threads = 2;
    o.lookahead = 60;
    ShardEngine eng(o);
    EXPECT_FALSE(eng.serial());

    std::atomic<int> ran{0};
    for (unsigned t = 0; t < o.tiles; ++t) {
        // Spread events over several quanta, including far beyond the
        // first lookahead window (the adaptive quantum must jump).
        for (Tick when : {Tick(10 + t), Tick(500 + 7 * t), Tick(9000)})
            eng.queue(t).schedule(when, [&] {
                ran.fetch_add(1, std::memory_order_relaxed);
            });
    }
    eng.drain([] {}, nullptr);

    EXPECT_EQ(ran.load(), 12);
    EXPECT_EQ(eng.eventsExecuted(), 12u);
    EXPECT_EQ(eng.totalPending(), 0u);
    EXPECT_GE(eng.quantaExecuted(), 3u);
    // Every shard clock is aligned to the global last-event tick, so
    // controller-context code sees the serial notion of "now".
    for (unsigned t = 0; t < o.tiles; ++t)
        EXPECT_EQ(eng.queue(t).curTick(), 9000u) << "tile " << t;
    EXPECT_EQ(eng.now(), 9000u);
}

TEST(ShardEngineTest, FlushDeliversCrossTileMessagesWithLookahead)
{
    constexpr Tick lookahead = 60;
    constexpr int maxBounces = 5;
    ShardEngine::Options o;
    o.tiles = 2;
    o.threads = 2;
    o.lookahead = lookahead;
    ShardEngine eng(o);

    // A minimal mailbox: deliveries on one tile stage a send to the
    // other, arriving exactly one lookahead later; the flush routes
    // staged sends at each quantum barrier (all workers parked).
    std::mutex mu;
    std::vector<std::pair<unsigned, Tick>> staged;
    std::vector<Tick> deliveries;
    int bounces = 0;

    std::function<void(unsigned)> arrive = [&](unsigned tile) {
        deliveries.push_back(eng.queue(tile).curTick());
        if (++bounces < maxBounces) {
            std::lock_guard<std::mutex> g(mu);
            staged.emplace_back(1 - tile,
                                eng.queue(tile).curTick() + lookahead);
        }
    };
    eng.queue(0).schedule(100, [&] { arrive(0); });

    eng.drain(
        [&] {
            std::lock_guard<std::mutex> g(mu);
            for (const auto &[dst, at] : staged) {
                const unsigned d = dst;
                eng.queue(d).schedule(at, [&, d] { arrive(d); });
            }
            staged.clear();
        },
        nullptr);

    EXPECT_EQ(bounces, maxBounces);
    ASSERT_EQ(deliveries.size(), std::size_t(maxBounces));
    for (int i = 0; i < maxBounces; ++i)
        EXPECT_EQ(deliveries[i], Tick(100) + Tick(i) * lookahead);
    EXPECT_EQ(eng.now(), Tick(100) + (maxBounces - 1) * lookahead);
}

TEST(ShardEngineTest, BarrierHookSeesMonotonicQuantumEnds)
{
    ShardEngine::Options o;
    o.tiles = 3;
    o.threads = 3;
    o.lookahead = 60;
    ShardEngine eng(o);

    for (unsigned t = 0; t < o.tiles; ++t) {
        eng.queue(t).schedule(10, [] {});
        eng.queue(t).schedule(2000 + t, [] {});
    }

    // The hook runs in the barrier completion (single-threaded).
    std::vector<Tick> quantumEnds;
    eng.drain([] {},
              [&](Tick quantum_end) {
                  quantumEnds.push_back(quantum_end);
              });

    ASSERT_GE(quantumEnds.size(), 2u);
    // First quantum starts at the earliest pending event.
    EXPECT_EQ(quantumEnds.front(), Tick(10) + o.lookahead - 1);
    for (std::size_t i = 1; i < quantumEnds.size(); ++i)
        EXPECT_GT(quantumEnds[i], quantumEnds[i - 1]);
}

TEST(ShardEngineTest, WorkerExceptionParksFleetAndRethrows)
{
    ShardEngine::Options o;
    o.tiles = 4;
    o.threads = 2;
    o.lookahead = 60;
    ShardEngine eng(o);

    std::atomic<int> ran{0};
    for (unsigned t = 0; t < o.tiles; ++t) {
        eng.queue(t).schedule(10 + t, [&] {
            ran.fetch_add(1, std::memory_order_relaxed);
        });
    }
    eng.queue(2).schedule(30, [] {
        throw std::runtime_error("tile 2 exploded");
    });
    // Events far in the future never run: the fleet parks first.
    std::atomic<bool> lateRan{false};
    eng.queue(1).schedule(1000000, [&] { lateRan.store(true); });

    EXPECT_THROW(eng.drain([] {}, nullptr), std::runtime_error);
    // The faulting tile ran up to the throw; peers may park as soon
    // as they observe the error flag, so their counts are a range.
    EXPECT_GE(ran.load(), 1);
    EXPECT_LE(ran.load(), 4);
    EXPECT_FALSE(lateRan.load());
    EXPECT_GT(eng.totalPending(), 0u);
}

TEST(ShardEngineTest, FlushExceptionPropagatesWithoutHanging)
{
    ShardEngine::Options o;
    o.tiles = 4;
    o.threads = 2;
    o.lookahead = 60;
    ShardEngine eng(o);

    for (unsigned t = 0; t < o.tiles; ++t) {
        eng.queue(t).schedule(10 + t, [] {});
        eng.queue(t).schedule(500 + t, [] {});
    }

    // drain() itself calls the flush once before the quantum loop;
    // the *second* call is the first barrier-completion flush, which
    // runs on whichever worker arrived last.  The error must cross
    // back to the calling thread and the fleet must park (join), not
    // deadlock on a barrier generation that never completes.
    int calls = 0;
    EXPECT_THROW(eng.drain(
                     [&] {
                         if (++calls == 2)
                             throw std::runtime_error(
                                 "flush exploded");
                     },
                     nullptr),
                 std::runtime_error);
    EXPECT_GE(calls, 2);
    // The engine is still usable for inspection after the failure.
    EXPECT_GT(eng.totalPending(), 0u);
}

TEST(ShardEngineTest, SetThreadsReshapesTheWorkerPoolBetweenDrains)
{
    ShardEngine::Options o;
    o.tiles = 4;
    o.threads = 1;
    o.lookahead = 60;
    ShardEngine eng(o);
    EXPECT_FALSE(eng.serial()); // sharded topology, one worker
    EXPECT_EQ(eng.numThreads(), 1u);

    std::atomic<int> ran{0};
    for (unsigned t = 0; t < o.tiles; ++t)
        eng.queue(t).schedule(10 + t, [&] {
            ran.fetch_add(1, std::memory_order_relaxed);
        });
    eng.drain([] {}, nullptr);
    EXPECT_EQ(ran.load(), 4);

    // Widen to the tile count; excess requests clamp.
    eng.setThreads(100);
    EXPECT_EQ(eng.numThreads(), o.tiles);
    for (unsigned t = 0; t < o.tiles; ++t)
        eng.queue(t).schedule(2000 + t, [&] {
            ran.fetch_add(1, std::memory_order_relaxed);
        });
    eng.drain([] {}, nullptr);
    EXPECT_EQ(ran.load(), 8);
    EXPECT_EQ(eng.eventsExecuted(), 8u);

    // And back down; zero clamps to one worker.
    eng.setThreads(0);
    EXPECT_EQ(eng.numThreads(), 1u);
    eng.queue(2).schedule(5000, [&] {
        ran.fetch_add(1, std::memory_order_relaxed);
    });
    eng.drain([] {}, nullptr);
    EXPECT_EQ(ran.load(), 9);
}

TEST(ShardEngineTest, BreakdownReportsQuantaAndPerShardLanes)
{
    ShardEngine::Options o;
    o.tiles = 4;
    o.threads = 2;
    o.lookahead = 60;
    ShardEngine eng(o);

    for (unsigned t = 0; t < o.tiles; ++t) {
        for (Tick when : {Tick(10 + t), Tick(500 + t), Tick(3000)})
            eng.queue(t).schedule(when, [] {});
    }
    eng.drain([] {}, nullptr);

    const EngineBreakdown b = eng.breakdown();
    EXPECT_EQ(b.quanta, eng.quantaExecuted());
    ASSERT_GE(b.lanes.size(), o.threads);
    std::uint64_t laneExec = 0;
    std::uint64_t laneWait = 0;
    for (const ShardLane &lane : b.lanes) {
        laneExec += lane.execNs;
        laneWait += lane.barrierWaitNs;
    }
    // Totals are exactly the lane sums (flushNs is tracked
    // separately, inside the last-arriver's wait time).
    EXPECT_EQ(b.execNs, laneExec);
    EXPECT_EQ(b.barrierWaitNs, laneWait);
}

TEST(ShardEngineTest, SerialBreakdownTimesTheDrain)
{
    ShardEngine eng(ShardEngine::Options{});
    ASSERT_TRUE(eng.serial());
    // Enough work for a monotonic-clock delta to be visible.
    for (int i = 0; i < 20000; ++i)
        eng.queue(0).schedule(Tick(1 + i), [] {});
    eng.drain(nullptr, nullptr);

    const EngineBreakdown b = eng.breakdown();
    EXPECT_GT(b.execNs, 0u);
    EXPECT_EQ(b.barrierWaitNs, 0u);
    EXPECT_EQ(b.flushNs, 0u);
    ASSERT_EQ(b.lanes.size(), 1u);
    EXPECT_EQ(b.lanes[0].execNs, b.execNs);
}

TEST(ShardEngineTest, EmptyShardedDrainIsANoOp)
{
    ShardEngine::Options o;
    o.tiles = 2;
    o.threads = 2;
    o.lookahead = 60;
    ShardEngine eng(o);
    eng.drain([] {}, nullptr);
    EXPECT_EQ(eng.eventsExecuted(), 0u);
    EXPECT_EQ(eng.quantaExecuted(), 0u);
}

} // namespace
} // namespace stashsim
