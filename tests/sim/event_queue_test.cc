/**
 * @file
 * Unit tests for the discrete-event kernel and clock domains.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"

namespace stashsim
{
namespace
{

TEST(EventQueueTest, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_EQ(eq.run(), 0u);
}

TEST(EventQueueTest, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueueTest, EqualTickPreservesInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, PriorityBreaksTickTies)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&]() { order.push_back(2); },
                EventQueue::PriDefault);
    eq.schedule(5, [&]() { order.push_back(1); },
                EventQueue::PriDelivery);
    eq.schedule(5, [&]() { order.push_back(3); },
                EventQueue::PriStats);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EventsMayScheduleNewEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() {
        ++fired;
        eq.scheduleIn(4, [&]() { ++fired; });
    });
    EXPECT_EQ(eq.run(), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 5u);
}

TEST(EventQueueTest, RunHonorsMaxTick)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { ++fired; });
    eq.schedule(20, [&]() { ++fired; });
    EXPECT_EQ(eq.run(15), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, RunOneExecutesSingleEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(3, [&]() { ++fired; });
    eq.schedule(4, [&]() { ++fired; });
    EXPECT_TRUE(eq.runOne());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.runOne());
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueueTest, ResetClearsStateAndTime)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    eq.run();
    eq.schedule(20, []() {});
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.curTick(), 0u);
}

TEST(ClockTest, CpuAndGpuPeriodsMatchTable2Frequencies)
{
    // 2 GHz CPU and 700 MHz GPU on a 14 GHz tick base.
    EXPECT_EQ(ticksPerSecond / cpuClockPeriod, 2'000'000'000u);
    EXPECT_EQ(ticksPerSecond / gpuClockPeriod, 700'000'000u);
}

TEST(ClockTest, ConversionsRoundTrip)
{
    Clock gpu(gpuClockPeriod);
    EXPECT_EQ(gpu.cyclesToTicks(10), 200u);
    EXPECT_EQ(gpu.ticksToCycles(200), 10u);
    EXPECT_EQ(gpu.ticksToCycles(219), 10u);
}

TEST(ClockTest, NextEdgeAlignsUp)
{
    Clock gpu(gpuClockPeriod);
    EXPECT_EQ(gpu.nextEdge(0), 0u);
    EXPECT_EQ(gpu.nextEdge(1), 20u);
    EXPECT_EQ(gpu.nextEdge(20), 20u);
    EXPECT_EQ(gpu.nextEdge(21), 40u);
}

TEST(EventQueueTest, EqualTickAndPriorityPreservesInsertionOrder)
{
    // The determinism guarantee the whole simulator rests on: at one
    // (tick, priority) pair, execution order is insertion order, even
    // with other priorities interleaved between the insertions.
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i) {
        eq.schedule(7, [&order, i]() { order.push_back(i); },
                    i % 2 ? EventQueue::PriStats
                          : EventQueue::PriDelivery);
    }
    eq.run();
    ASSERT_EQ(order.size(), 16u);
    // All PriDelivery insertions first (in insertion order), then all
    // PriStats insertions (in insertion order).
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(order[i], 2 * i);
        EXPECT_EQ(order[8 + i], 2 * i + 1);
    }
}

TEST(EventQueueTest, EventsInsertedDuringRunKeepFifoOrder)
{
    // An event scheduling same-tick work must see it run after work
    // already queued at that (tick, priority).
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&]() {
        order.push_back(1);
        eq.schedule(5, [&]() { order.push_back(3); });
    });
    eq.schedule(5, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, NextTickReportsEarliestPendingEvent)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextTick(), eq.curTick());
    eq.schedule(40, []() {});
    eq.schedule(15, []() {});
    EXPECT_EQ(eq.nextTick(), 15u);
    eq.run(15);
    EXPECT_EQ(eq.nextTick(), 40u);
    eq.run();
    EXPECT_EQ(eq.nextTick(), eq.curTick());
}

TEST(EventQueueTest, ResetRestartsSequenceDeterminism)
{
    // After reset(), a rebuilt schedule must replay identically.
    auto record = [](EventQueue &eq) {
        std::vector<int> order;
        for (int i = 0; i < 6; ++i)
            eq.schedule(3, [&order, i]() { order.push_back(i); });
        eq.run();
        return order;
    };
    EventQueue eq;
    const auto first = record(eq);
    eq.reset();
    const auto second = record(eq);
    EXPECT_EQ(first, second);
}

TEST(EventQueueTest, BoundedRunAdvancesTimeToTheBound)
{
    // A finite bound is a statement about elapsed time: when it
    // exhausts the eligible events, curTick must land on the bound so
    // a subsequent scheduleIn() is relative to it, not to stale time.
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { ++fired; });
    EXPECT_EQ(eq.run(100), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 100u);
    eq.scheduleIn(5, [&]() { ++fired; });
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_EQ(eq.curTick(), 105u);
}

TEST(EventQueueTest, BoundedRunOnEmptyQueueAdvancesTime)
{
    EventQueue eq;
    EXPECT_EQ(eq.run(50), 0u);
    EXPECT_EQ(eq.curTick(), 50u);
    // An unbounded run of an empty queue does NOT move time.
    EXPECT_EQ(eq.run(), 0u);
    EXPECT_EQ(eq.curTick(), 50u);
}

TEST(EventQueueTest, BoundedRunDoesNotMoveTimeBackwards)
{
    EventQueue eq;
    eq.schedule(80, []() {});
    eq.run();
    EXPECT_EQ(eq.curTick(), 80u);
    EXPECT_EQ(eq.run(40), 0u);
    EXPECT_EQ(eq.curTick(), 80u);
}

TEST(EventQueueTest, EventsExecutedAccumulatesAcrossReset)
{
    EventQueue eq;
    eq.schedule(1, []() {});
    eq.schedule(2, []() {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 2u);
    eq.schedule(3, []() {});
    eq.reset(); // drops the pending event, keeps the lifetime total
    EXPECT_EQ(eq.eventsExecuted(), 2u);
    eq.schedule(1, []() {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 3u);
}

namespace
{

/** Records every boundary it sees. */
class RecordingListener : public PhaseListener
{
  public:
    std::vector<std::pair<std::string, Tick>> begins, ends;

    void
    phaseBegin(const char *name, Tick at) override
    {
        begins.emplace_back(name, at);
    }

    void
    phaseEnd(const char *name, Tick at) override
    {
        ends.emplace_back(name, at);
    }
};

} // namespace

TEST(EventQueueTest, ResetClosesAnOpenPhase)
{
    // A phase left open across reset() must emit a synthetic phaseEnd
    // at the pre-reset tick, so trace sinks do not leak an open slice
    // and the watchdog disarms.
    EventQueue eq;
    RecordingListener l;
    eq.addPhaseListener(&l);
    eq.schedule(25, []() {});
    eq.beginPhase("interrupted");
    eq.run();
    eq.reset();
    ASSERT_EQ(l.ends.size(), 1u);
    EXPECT_EQ(l.ends[0].first, "interrupted");
    EXPECT_EQ(l.ends[0].second, 25u);
    EXPECT_TRUE(eq.currentPhase().empty());
    EXPECT_EQ(eq.curTick(), 0u);
    // A reset with no phase open emits nothing extra.
    eq.reset();
    EXPECT_EQ(l.ends.size(), 1u);
}

namespace
{

/** Unregisters itself (and optionally a peer) from inside a callback. */
class SelfRemovingListener : public PhaseListener
{
  public:
    SelfRemovingListener(EventQueue &eq, PhaseListener *also = nullptr)
        : eq(eq), also(also)
    {}

    int begun = 0, ended = 0;

    void
    phaseBegin(const char *, Tick) override
    {
        ++begun;
        eq.removePhaseListener(this);
        if (also)
            eq.removePhaseListener(also);
    }

    void phaseEnd(const char *, Tick) override { ++ended; }

  private:
    EventQueue &eq;
    PhaseListener *also;
};

} // namespace

TEST(EventQueueTest, ListenersMayRemoveThemselvesDuringNotification)
{
    EventQueue eq;
    RecordingListener tail;
    SelfRemovingListener head(eq, &tail);
    eq.addPhaseListener(&head);
    eq.addPhaseListener(&tail);
    // head removes itself AND tail while being notified; neither may
    // be invoked after removal, and nothing may crash.
    eq.beginPhase("a");
    EXPECT_EQ(head.begun, 1);
    EXPECT_TRUE(tail.begins.empty());
    eq.endPhase();
    EXPECT_EQ(head.ended, 0);
    EXPECT_TRUE(tail.ends.empty());
    // Subsequent phases see no listeners at all.
    eq.beginPhase("b");
    eq.endPhase();
    EXPECT_EQ(head.begun, 1);
}

TEST(EventQueueTest, FarHorizonDelaysExecuteInOrder)
{
    // Delays far beyond the 4096-tick wheel span (watchdog-scale) mix
    // with near events; order must still be global time order.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(200000, [&]() { order.push_back(4); });
    eq.schedule(3, [&]() { order.push_back(1); });
    eq.schedule(5000, [&]() {
        order.push_back(2);
        // Rescheduling from a migrated event crosses the horizon
        // again.
        eq.scheduleIn(100000, [&]() { order.push_back(3); });
    });
    EXPECT_EQ(eq.run(), 4u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(eq.curTick(), 200000u);
}

/**
 * The determinism contract, exhaustively: a randomized 10k-event
 * schedule (with mid-run re-scheduling chains, priorities, and
 * horizon-crossing delays) is checked pop-for-pop against a reference
 * ordered set keyed (tick, priority, seq) — the queue must always
 * execute the minimal pending tuple.
 */
TEST(EventQueueTest, RandomizedScheduleMatchesReferenceOrder)
{
    struct Ref
    {
        Tick when;
        int pri;
        std::uint64_t seq;
        int id;

        bool
        operator<(const Ref &o) const
        {
            return std::tie(when, pri, seq, id) <
                   std::tie(o.when, o.pri, o.seq, o.id);
        }
    };

    EventQueue eq;
    std::set<Ref> ref;
    std::uint64_t seq = 0;
    std::size_t executed = 0;

    std::uint64_t rng = 0x2545f4914f6cdd1dull;
    auto next = [&rng]() {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    const int pris[3] = {EventQueue::PriDelivery,
                         EventQueue::PriDefault,
                         EventQueue::PriStats};

    // sched() mirrors every insertion into the reference set; each
    // event verifies at execution time that it IS the minimal pending
    // tuple, then chains children (ids < 5000 spawn one each).
    std::function<void(Tick, int, int)> sched = [&](Tick when, int pri,
                                                    int id) {
        ref.insert(Ref{when, pri, seq, id});
        ++seq;
        eq.schedule(
            when,
            [&, id]() {
                ASSERT_FALSE(ref.empty());
                const Ref front = *ref.begin();
                ASSERT_EQ(front.id, id);
                ASSERT_EQ(front.when, eq.curTick());
                ref.erase(ref.begin());
                ++executed;
                if (id < 5000) {
                    // Delays span same-tick, in-wheel, and beyond the
                    // 4096-tick horizon.
                    const Tick delay = next() % 12000;
                    sched(eq.curTick() + delay,
                          pris[next() % 3], id + 5000);
                }
            },
            pri);
    };

    for (int id = 0; id < 5000; ++id)
        sched(next() % 20000, pris[next() % 3], id);

    EXPECT_EQ(eq.run(), 10000u);
    EXPECT_EQ(executed, 10000u);
    EXPECT_TRUE(ref.empty());
}

/** Property: randomly-ordered events execute in nondecreasing time. */
TEST(EventQueueTest, PropertyMonotonicExecution)
{
    EventQueue eq;
    std::uint64_t seed = 12345;
    auto next = [&seed]() {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        return (seed >> 33) % 1000;
    };
    Tick last = 0;
    bool monotonic = true;
    for (int i = 0; i < 500; ++i) {
        eq.schedule(next(), [&]() {
            if (eq.curTick() < last)
                monotonic = false;
            last = eq.curTick();
        });
    }
    EXPECT_EQ(eq.run(), 500u);
    EXPECT_TRUE(monotonic);
}


TEST(EventQueueTest, InternalEventsAreExcludedFromEventsExecuted)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&]() { order.push_back(1); });
    // PriInternal runs after every model event of the tick...
    eq.schedule(10, [&]() { order.push_back(2); },
                EventQueue::PriInternal);
    eq.schedule(10, [&]() { order.push_back(0); },
                EventQueue::PriDelivery);
    // run() reports all executions; eventsExecuted() only the model's.
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(eq.eventsExecuted(), 2u);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueTest, LastEventTickTracksExecutionNotTheBound)
{
    EventQueue eq;
    EXPECT_EQ(eq.lastEventTick(), 0u);
    eq.schedule(50, []() {});
    eq.schedule(60, []() {}, EventQueue::PriInternal);
    EXPECT_EQ(eq.run(200), 2u);
    // The bound advances curTick; lastEventTick stays at the last
    // *model* event.  Internal bookkeeping (fabric flushes, watchdog
    // polls) executes but does not advance the model clock.
    EXPECT_EQ(eq.curTick(), 200u);
    EXPECT_EQ(eq.lastEventTick(), 50u);
}

TEST(EventQueueTest, SetTimeRealignsAnEmptyQueue)
{
    EventQueue eq;
    eq.schedule(50, []() {});
    eq.run(200);
    EXPECT_EQ(eq.curTick(), 200u);

    // Rewind to the last-event tick (the sharded engine's alignment),
    // then forward; both directions keep scheduling functional.
    eq.setTime(50);
    EXPECT_EQ(eq.curTick(), 50u);
    eq.setTime(75);
    EXPECT_EQ(eq.curTick(), 75u);
    bool ran = false;
    eq.scheduleIn(10, [&]() { ran = true; });
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_TRUE(ran);
    EXPECT_EQ(eq.curTick(), 85u);
}

/**
 * Regression: a rewind must re-anchor the calendar wheel, not just
 * curTick.  Executing a far-future event (a watchdog poll) carries
 * wheelBase with it; if setTime() leaves that base in place, events
 * scheduled after the rewind alias into wrong wheel positions and
 * execute out of order.
 */
TEST(EventQueueTest, SetTimeReanchorsTheWheelAfterAFarPop)
{
    EventQueue eq;
    eq.schedule(100, []() {});
    eq.schedule(250000, []() {}, EventQueue::PriInternal); // the poll
    eq.run();
    EXPECT_EQ(eq.curTick(), 250000u);

    eq.setTime(100); // the drain-end realignment
    std::vector<Tick> order;
    eq.schedule(150, [&]() { order.push_back(150); });
    eq.schedule(200100, [&]() { order.push_back(200100); });
    eq.schedule(130, [&]() { order.push_back(130); });
    eq.run();
    EXPECT_EQ(order, (std::vector<Tick>{130, 150, 200100}));
    EXPECT_EQ(eq.curTick(), 200100u);
}

TEST(EventQueueTest, QueueShapeCountersTrackInsertsAndPeak)
{
    EventQueue eq;
    EXPECT_EQ(eq.peakLiveEvents(), 0u);
    EXPECT_EQ(eq.poolChunksAllocated(), 0u);

    eq.schedule(1, []() {});
    eq.schedule(2, []() {});
    eq.schedule(10000, []() {}); // beyond the 4096-tick wheel horizon
    EXPECT_EQ(eq.wheelInserts(), 2u);
    EXPECT_EQ(eq.farInserts(), 1u);
    EXPECT_EQ(eq.peakLiveEvents(), 3u);
    EXPECT_EQ(eq.poolChunksAllocated(), 1u);

    eq.run();
    // High-water mark and insert counts are lifetime totals.
    EXPECT_EQ(eq.peakLiveEvents(), 3u);
    EXPECT_EQ(eq.wheelInserts(), 2u);
    EXPECT_EQ(eq.farInserts(), 1u);
}

} // namespace
} // namespace stashsim
