/**
 * @file
 * Unit tests for the discrete-event kernel and clock domains.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace stashsim
{
namespace
{

TEST(EventQueueTest, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_EQ(eq.run(), 0u);
}

TEST(EventQueueTest, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueueTest, EqualTickPreservesInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, PriorityBreaksTickTies)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&]() { order.push_back(2); },
                EventQueue::PriDefault);
    eq.schedule(5, [&]() { order.push_back(1); },
                EventQueue::PriDelivery);
    eq.schedule(5, [&]() { order.push_back(3); },
                EventQueue::PriStats);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EventsMayScheduleNewEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() {
        ++fired;
        eq.scheduleIn(4, [&]() { ++fired; });
    });
    EXPECT_EQ(eq.run(), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 5u);
}

TEST(EventQueueTest, RunHonorsMaxTick)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { ++fired; });
    eq.schedule(20, [&]() { ++fired; });
    EXPECT_EQ(eq.run(15), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, RunOneExecutesSingleEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(3, [&]() { ++fired; });
    eq.schedule(4, [&]() { ++fired; });
    EXPECT_TRUE(eq.runOne());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.runOne());
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueueTest, ResetClearsStateAndTime)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    eq.run();
    eq.schedule(20, []() {});
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.curTick(), 0u);
}

TEST(ClockTest, CpuAndGpuPeriodsMatchTable2Frequencies)
{
    // 2 GHz CPU and 700 MHz GPU on a 14 GHz tick base.
    EXPECT_EQ(ticksPerSecond / cpuClockPeriod, 2'000'000'000u);
    EXPECT_EQ(ticksPerSecond / gpuClockPeriod, 700'000'000u);
}

TEST(ClockTest, ConversionsRoundTrip)
{
    Clock gpu(gpuClockPeriod);
    EXPECT_EQ(gpu.cyclesToTicks(10), 200u);
    EXPECT_EQ(gpu.ticksToCycles(200), 10u);
    EXPECT_EQ(gpu.ticksToCycles(219), 10u);
}

TEST(ClockTest, NextEdgeAlignsUp)
{
    Clock gpu(gpuClockPeriod);
    EXPECT_EQ(gpu.nextEdge(0), 0u);
    EXPECT_EQ(gpu.nextEdge(1), 20u);
    EXPECT_EQ(gpu.nextEdge(20), 20u);
    EXPECT_EQ(gpu.nextEdge(21), 40u);
}

TEST(EventQueueTest, EqualTickAndPriorityPreservesInsertionOrder)
{
    // The determinism guarantee the whole simulator rests on: at one
    // (tick, priority) pair, execution order is insertion order, even
    // with other priorities interleaved between the insertions.
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i) {
        eq.schedule(7, [&order, i]() { order.push_back(i); },
                    i % 2 ? EventQueue::PriStats
                          : EventQueue::PriDelivery);
    }
    eq.run();
    ASSERT_EQ(order.size(), 16u);
    // All PriDelivery insertions first (in insertion order), then all
    // PriStats insertions (in insertion order).
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(order[i], 2 * i);
        EXPECT_EQ(order[8 + i], 2 * i + 1);
    }
}

TEST(EventQueueTest, EventsInsertedDuringRunKeepFifoOrder)
{
    // An event scheduling same-tick work must see it run after work
    // already queued at that (tick, priority).
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&]() {
        order.push_back(1);
        eq.schedule(5, [&]() { order.push_back(3); });
    });
    eq.schedule(5, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, NextTickReportsEarliestPendingEvent)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextTick(), eq.curTick());
    eq.schedule(40, []() {});
    eq.schedule(15, []() {});
    EXPECT_EQ(eq.nextTick(), 15u);
    eq.run(15);
    EXPECT_EQ(eq.nextTick(), 40u);
    eq.run();
    EXPECT_EQ(eq.nextTick(), eq.curTick());
}

TEST(EventQueueTest, ResetRestartsSequenceDeterminism)
{
    // After reset(), a rebuilt schedule must replay identically.
    auto record = [](EventQueue &eq) {
        std::vector<int> order;
        for (int i = 0; i < 6; ++i)
            eq.schedule(3, [&order, i]() { order.push_back(i); });
        eq.run();
        return order;
    };
    EventQueue eq;
    const auto first = record(eq);
    eq.reset();
    const auto second = record(eq);
    EXPECT_EQ(first, second);
}

/** Property: randomly-ordered events execute in nondecreasing time. */
TEST(EventQueueTest, PropertyMonotonicExecution)
{
    EventQueue eq;
    std::uint64_t seed = 12345;
    auto next = [&seed]() {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        return (seed >> 33) % 1000;
    };
    Tick last = 0;
    bool monotonic = true;
    for (int i = 0; i < 500; ++i) {
        eq.schedule(next(), [&]() {
            if (eq.curTick() < last)
                monotonic = false;
            last = eq.curTick();
        });
    }
    EXPECT_EQ(eq.run(), 500u);
    EXPECT_TRUE(monotonic);
}

} // namespace
} // namespace stashsim
