/**
 * @file
 * The `--shards 0` cost model, pinned: synthetic counter fixtures
 * whose winning worker count is known analytically.  The model is
 * T(k) = E*c/k + b*k over power-of-two candidates (plus min(tiles,
 * hw)), smallest minimizer wins, and a move off k=1 must beat it by
 * at least 10% — see src/sim/shard_autotune.hh.
 */

#include <gtest/gtest.h>

#include "sim/shard_autotune.hh"

namespace stashsim
{
namespace
{

AutoTuneInputs
fixture(std::uint64_t events, std::uint64_t quanta,
        std::uint64_t exec_ns, std::uint64_t barrier_ns,
        unsigned tiles = 16, unsigned hw = 16)
{
    AutoTuneInputs in;
    in.tiles = tiles;
    in.hwThreads = hw;
    in.events = events;
    in.quanta = quanta;
    in.execNs = exec_ns;
    in.barrierCrossNs = barrier_ns;
    return in;
}

TEST(ShardAutotuneTest, NoSignalStaysSerial)
{
    EXPECT_EQ(autoTuneShards(fixture(0, 0, 0, 100)).workers, 1u);
    EXPECT_EQ(autoTuneShards(fixture(1000, 0, 1000, 100)).workers,
              1u);
    EXPECT_EQ(autoTuneShards(fixture(0, 10, 1000, 100)).workers, 1u);
}

TEST(ShardAutotuneTest, SingleThreadedHostStaysSerial)
{
    const AutoTuneDecision d =
        autoTuneShards(fixture(100000, 10, 1000000, 100, 16, 1));
    EXPECT_EQ(d.workers, 1u);
}

TEST(ShardAutotuneTest, TinyQuantaStaySerial)
{
    // E = 4 events/quantum at c = 1 ns: work = 4 ns against a
    // 1000 ns barrier crossing.  Sharding can only lose.
    const AutoTuneDecision d =
        autoTuneShards(fixture(40, 10, 40, 1000));
    EXPECT_EQ(d.workers, 1u);
    EXPECT_DOUBLE_EQ(d.eventsPerQuantum, 4.0);
}

TEST(ShardAutotuneTest, HugeQuantaPickMaxWorkers)
{
    // E = 100000 events/quantum at c = 10 ns: work = 1e6 ns against
    // a 100 ns crossing.  T(16) = 62500 + 1600 crushes every smaller
    // candidate.
    const AutoTuneDecision d =
        autoTuneShards(fixture(1000000, 10, 10000000, 100));
    EXPECT_EQ(d.workers, 16u);
}

TEST(ShardAutotuneTest, IntermediateOptimumPinned)
{
    // E*c = 1600 ns, b = 100 ns: T(1)=1700, T(2)=1000, T(4)=800,
    // T(8)=1000, T(16)=1700 — the minimum sits at k=4 and beats
    // serial by far more than 10%.
    const AutoTuneDecision d =
        autoTuneShards(fixture(1600, 1, 1600, 100));
    EXPECT_EQ(d.workers, 4u);
    ASSERT_EQ(d.candidates.size(), 5u);
    EXPECT_EQ(d.candidates[0].workers, 1u);
    EXPECT_DOUBLE_EQ(d.candidates[0].nsPerQuantum, 1700.0);
    EXPECT_DOUBLE_EQ(d.candidates[2].nsPerQuantum, 800.0);
}

TEST(ShardAutotuneTest, MarginalWinUnderThresholdStaysSerial)
{
    // maxK = 2 (two hardware threads).  E*c = 2200, b = 1000:
    // T(1) = 3200, T(2) = 3100 — better, but only by ~3%, under the
    // 10% threshold, so the tuner keeps the serial-friendly count.
    const AutoTuneDecision d =
        autoTuneShards(fixture(2200, 1, 2200, 1000, 16, 2));
    EXPECT_EQ(d.workers, 1u);
    ASSERT_EQ(d.candidates.size(), 2u);
    EXPECT_LT(d.candidates[1].nsPerQuantum,
              d.candidates[0].nsPerQuantum);
}

TEST(ShardAutotuneTest, CandidatesCapAtTilesAndHardware)
{
    // tiles = 6, hw = 16: ladder {1, 2, 4, 6}.
    const AutoTuneDecision d =
        autoTuneShards(fixture(1000000, 10, 10000000, 100, 6, 16));
    ASSERT_EQ(d.candidates.size(), 4u);
    EXPECT_EQ(d.candidates.back().workers, 6u);
    EXPECT_EQ(d.workers, 6u);
}

TEST(ShardAutotuneTest, DeterministicGivenSameInputs)
{
    const AutoTuneInputs in = fixture(12345, 17, 987654, 321);
    const AutoTuneDecision a = autoTuneShards(in);
    const AutoTuneDecision b = autoTuneShards(in);
    EXPECT_EQ(a.workers, b.workers);
    EXPECT_DOUBLE_EQ(a.eventsPerQuantum, b.eventsPerQuantum);
    EXPECT_DOUBLE_EQ(a.nsPerEvent, b.nsPerEvent);
    ASSERT_EQ(a.candidates.size(), b.candidates.size());
    for (std::size_t i = 0; i < a.candidates.size(); ++i) {
        EXPECT_EQ(a.candidates[i].workers, b.candidates[i].workers);
        EXPECT_DOUBLE_EQ(a.candidates[i].nsPerQuantum,
                         b.candidates[i].nsPerQuantum);
    }
}

TEST(ShardAutotuneTest, MeasuredBarrierCostIsPositiveAndCached)
{
    const std::uint64_t a = measuredBarrierCrossNs();
    const std::uint64_t b = measuredBarrierCrossNs();
    EXPECT_GT(a, 0u);
    EXPECT_EQ(a, b); // process-cached: one measurement per process
}

} // namespace
} // namespace stashsim
