/**
 * @file
 * Tests for the diagnostic-hook machinery and fatal() semantics.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/log.hh"

namespace stashsim
{
namespace
{

TEST(LogTest, FatalThrowsWithMessage)
{
    try {
        fatal("broken ", 42);
        FAIL() << "fatal() returned";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("broken 42"),
                  std::string::npos);
    }
}

TEST(DiagnosticHookTest, FlushRunsHooksInRegistrationOrder)
{
    std::vector<int> order;
    const std::size_t a = registerDiagnosticHook(
        [&order]() { order.push_back(1); });
    const std::size_t b = registerDiagnosticHook(
        [&order]() { order.push_back(2); });
    flushDiagnosticHooks();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    unregisterDiagnosticHook(a);
    unregisterDiagnosticHook(b);
}

TEST(DiagnosticHookTest, UnregisteredHookNoLongerRuns)
{
    int fired = 0;
    const std::size_t id =
        registerDiagnosticHook([&fired]() { ++fired; });
    unregisterDiagnosticHook(id);
    flushDiagnosticHooks();
    EXPECT_EQ(fired, 0);
}

TEST(DiagnosticHookTest, FatalFlushesHooksExactlyOnce)
{
    int fired = 0;
    const std::size_t id =
        registerDiagnosticHook([&fired]() { ++fired; });
    EXPECT_THROW(fatal("with hooks"), std::runtime_error);
    EXPECT_EQ(fired, 1);
    unregisterDiagnosticHook(id);
}

TEST(DiagnosticHookTest, ReentrantFlushDoesNotRecurse)
{
    int fired = 0;
    const std::size_t id = registerDiagnosticHook([&fired]() {
        ++fired;
        // A hook that itself fails would re-enter the flush; the
        // guard must make this a no-op instead of infinite recursion.
        flushDiagnosticHooks();
    });
    flushDiagnosticHooks();
    EXPECT_EQ(fired, 1);
    unregisterDiagnosticHook(id);
}

TEST(DiagnosticHookTest, HookMayRegisterAnotherHookDuringFlush)
{
    int late = 0;
    std::size_t late_id = 0;
    const std::size_t id = registerDiagnosticHook([&]() {
        late_id = registerDiagnosticHook([&late]() { ++late; });
    });
    // The index-based flush loop also runs hooks appended mid-flush.
    flushDiagnosticHooks();
    EXPECT_EQ(late, 1);
    unregisterDiagnosticHook(id);
    unregisterDiagnosticHook(late_id);
}

} // namespace
} // namespace stashsim
