/**
 * @file
 * EventQueue checkpoint-restore tests.
 *
 * The load-bearing cases are the calendar-wheel re-anchor family:
 * restoring (or exhausting a bounded run at) a far-future tick must
 * move the wheel's classification cutoff along with the clock, or
 * every subsequently scheduled near event would misroute into the
 * far-horizon heap — functionally correct but quadratically slow, and
 * a silent divergence from an uninterrupted run's queue-shape
 * counters, which the resume-parity artifact comparison would flag.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace stashsim
{
namespace
{

TEST(EventQueueRestoreTest, ClockStateRoundTrips)
{
    EventQueue a;
    int fired = 0;
    a.schedule(10, [&] { ++fired; });
    a.schedule(5000, [&] { ++fired; }); // beyond the wheel: far heap
    a.schedule(20, [&] { ++fired; });
    EXPECT_EQ(a.run(), 3u);
    const EventQueue::ClockState s = a.clockState();
    EXPECT_EQ(s.curTick, 5000u);
    EXPECT_EQ(s.lastEventTick, 5000u);
    EXPECT_EQ(s.executed, 3u);
    EXPECT_GE(s.nextSeq, 3u);
    EXPECT_GE(s.farInserts, 1u);

    EventQueue b;
    b.restoreClock(s);
    const EventQueue::ClockState t = b.clockState();
    EXPECT_EQ(t.curTick, s.curTick);
    EXPECT_EQ(t.lastEventTick, s.lastEventTick);
    EXPECT_EQ(t.nextSeq, s.nextSeq);
    EXPECT_EQ(t.executed, s.executed);
    EXPECT_EQ(t.peakLive, s.peakLive);
    EXPECT_EQ(t.wheelInserts, s.wheelInserts);
    EXPECT_EQ(t.farInserts, s.farInserts);
    EXPECT_EQ(b.curTick(), s.curTick);
    EXPECT_TRUE(b.empty());
}

TEST(EventQueueRestoreTest, RestoreClockReanchorsWheelCutoff)
{
    EventQueue::ClockState s;
    s.curTick = 1'000'000'000;
    s.lastEventTick = 1'000'000'000;
    s.nextSeq = 12345;
    s.executed = 777;

    EventQueue eq;
    eq.restoreClock(s);
    const std::uint64_t wheelBefore = eq.wheelInserts();
    const std::uint64_t farBefore = eq.farInserts();

    // A near event after restore must take the wheel path.  If only
    // the tick were restored, the cutoff would still sit near tick 0
    // and this insert would land in the far heap.
    bool ran = false;
    eq.scheduleIn(100, [&] { ran = true; });
    EXPECT_EQ(eq.wheelInserts(), wheelBefore + 1);
    EXPECT_EQ(eq.farInserts(), farBefore);
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_TRUE(ran);
    EXPECT_EQ(eq.curTick(), 1'000'000'100u);
}

/**
 * Same bug family, different entry point: a bounded run() that
 * exhausts its events advances curTick to the bound, and with the
 * queue empty the wheel must re-anchor there too.
 */
TEST(EventQueueRestoreTest, BoundedRunExhaustionReanchorsWheel)
{
    EventQueue eq;
    bool early = false;
    eq.schedule(5, [&] { early = true; });
    eq.run(1'000'000'000);
    EXPECT_TRUE(early);
    EXPECT_EQ(eq.curTick(), 1'000'000'000u);

    const std::uint64_t wheelBefore = eq.wheelInserts();
    const std::uint64_t farBefore = eq.farInserts();
    bool late = false;
    eq.scheduleIn(10, [&] { late = true; });
    EXPECT_EQ(eq.wheelInserts(), wheelBefore + 1);
    EXPECT_EQ(eq.farInserts(), farBefore);
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_TRUE(late);
    EXPECT_EQ(eq.curTick(), 1'000'000'010u);
}

/**
 * Restored queues must execute identical schedules identically: the
 * restored sequence counter continues the original tie-break order.
 */
TEST(EventQueueRestoreTest, RestoredQueueOrderIsDeterministic)
{
    auto script = [](EventQueue &eq, std::vector<int> &order) {
        for (int i = 0; i < 8; ++i)
            eq.scheduleIn(50, [&order, i] { order.push_back(i); });
        eq.scheduleIn(25, [&order] { order.push_back(100); });
        eq.scheduleIn(75, [&order] { order.push_back(200); });
        eq.run();
    };

    EventQueue a;
    a.schedule(40, [] {});
    a.run();
    const EventQueue::ClockState s = a.clockState();

    std::vector<int> orderA, orderB;
    script(a, orderA);

    EventQueue b;
    b.restoreClock(s);
    script(b, orderB);
    EXPECT_EQ(orderA, orderB);
}

} // namespace
} // namespace stashsim
