/**
 * @file
 * Per-component snapshot round trips, each section exercised in
 * isolation, plus the whole-System double-snapshot identity: a
 * restored System must serialize back to exactly the bytes it was
 * restored from (the fixed point the resume-parity suite builds on).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "config/system_config.hh"
#include "core/stash_map.hh"
#include "driver/system.hh"
#include "mem/main_memory.hh"
#include "mem/page_table.hh"
#include "mem/scratchpad.hh"
#include "mem/tlb.hh"
#include "snapshot/snapshot.hh"
#include "workloads/workload_factory.hh"

namespace stashsim
{
namespace
{

/** One section's write → read round trip through a full image. */
template <class WriteFn, class ReadFn>
void
roundTrip(WriteFn write, ReadFn read)
{
    SnapshotWriter w;
    w.beginSection("x");
    write(w);
    w.endSection();
    SnapshotReader r(w.serialize());
    r.openSection("x");
    read(r);
    r.closeSection();
}

TEST(ComponentRoundTripTest, MainMemory)
{
    MainMemory a;
    a.writeWord(0x1000, 0x11111111);
    a.writeWord(0x1044, 0x22222222);
    a.writeWord(0xdead00, 0x33333333);

    MainMemory b;
    roundTrip([&](SnapshotWriter &w) { a.snapshot(w); },
              [&](SnapshotReader &r) { b.restore(r); });
    EXPECT_EQ(b.readWord(0x1000), 0x11111111u);
    EXPECT_EQ(b.readWord(0x1044), 0x22222222u);
    EXPECT_EQ(b.readWord(0xdead00), 0x33333333u);
    EXPECT_EQ(b.linesTouched(), a.linesTouched());
}

TEST(ComponentRoundTripTest, PageTable)
{
    PageTable a;
    const PhysAddr p0 = a.translate(0x10000);
    const PhysAddr p1 = a.translate(0x20000);

    PageTable b;
    roundTrip([&](SnapshotWriter &w) { a.snapshot(w); },
              [&](SnapshotReader &r) { b.restore(r); });
    EXPECT_EQ(b.translate(0x10000), p0);
    EXPECT_EQ(b.translate(0x20000), p1);
    EXPECT_EQ(b.numPages(), 2u);
    // Reverse map must be rebuilt too.
    Addr va = 0;
    EXPECT_TRUE(b.reverse(p0, &va));
    EXPECT_EQ(va, 0x10000u);
}

TEST(ComponentRoundTripTest, TlbKeepsCountersAndReplacementOrder)
{
    PageTable pt;
    Tlb a(pt, 2);
    a.translate(0x1000); // miss
    a.translate(0x2000); // miss
    a.translate(0x1000); // hit; 0x1000 is now MRU
    a.translate(0x3000); // miss, evicts LRU 0x2000

    Tlb b(pt, 2); // shares the page table: same translations
    roundTrip([&](SnapshotWriter &w) { a.snapshot(w); },
              [&](SnapshotReader &r) { b.restore(r); });
    EXPECT_EQ(b.accesses(), a.accesses());
    EXPECT_EQ(b.misses(), a.misses());
    EXPECT_EQ(b.size(), a.size());

    // Replacement order survived: touching a new page must evict
    // 0x1000 (the restored LRU), keeping 0x3000 resident.
    const std::uint64_t missesBefore = b.misses();
    b.translate(0x4000);
    EXPECT_EQ(b.misses(), missesBefore + 1);
    b.translate(0x3000);
    EXPECT_EQ(b.misses(), missesBefore + 1) << "0x3000 was evicted";
}

TEST(ComponentRoundTripTest, Scratchpad)
{
    Scratchpad a(1024);
    a.write(0, 0xaaaa5555);
    a.write(1020, 0x5555aaaa);

    Scratchpad b(1024);
    roundTrip([&](SnapshotWriter &w) { a.snapshot(w); },
              [&](SnapshotReader &r) { b.restore(r); });
    EXPECT_EQ(b.read(0), 0xaaaa5555u);
    EXPECT_EQ(b.read(1020), 0x5555aaaau);
    EXPECT_EQ(b.stats().writes, a.stats().writes);

    // Geometry mismatch is a structured error, not silent corruption.
    Scratchpad small(512);
    SnapshotWriter w;
    w.beginSection("x");
    a.snapshot(w);
    w.endSection();
    SnapshotReader r(w.serialize());
    r.openSection("x");
    EXPECT_THROW(small.restore(r), SnapshotError);
}

TEST(ComponentRoundTripTest, StashMap)
{
    StashMap a(8);
    TileSpec tile;
    tile.globalBase = 0x40000;
    tile.fieldSize = 4;
    tile.objectSize = 64;
    tile.rowSize = 128;
    tile.strideSize = 0;
    tile.numStrides = 1;

    const MapIndex i0 = a.advanceTail();
    StashMapEntry &e = a.entry(i0);
    e.valid = true;
    e.pinned = true;
    e.stashBase = 256;
    e.tile = tile;
    e.dirtyData = 5;
    a.advanceTail();

    StashMap b(8);
    roundTrip([&](SnapshotWriter &w) { a.snapshot(w); },
              [&](SnapshotReader &r) { b.restore(r); });
    EXPECT_EQ(b.tailIndex(), a.tailIndex());
    EXPECT_EQ(b.numValid(), 1u);
    const StashMapEntry &f = b.entry(i0);
    EXPECT_TRUE(f.valid);
    EXPECT_TRUE(f.pinned);
    EXPECT_EQ(f.stashBase, 256u);
    EXPECT_EQ(f.dirtyData, 5u);
    EXPECT_TRUE(f.tile == tile);

    StashMap wrong(4);
    SnapshotWriter w;
    w.beginSection("x");
    a.snapshot(w);
    w.endSection();
    SnapshotReader r(w.serialize());
    r.openSection("x");
    EXPECT_THROW(wrong.restore(r), SnapshotError);
}

/**
 * The full-system fixed point: snapshot a run's end state, restore it
 * into a fresh System, snapshot again — every section must come back
 * byte-identical.  This covers each component's restore against its
 * own snapshot in one sweep (caches, LLC, stash, VP-map, NoC, ...).
 */
TEST(ComponentRoundTripTest, SystemSnapshotIsAFixedPoint)
{
    for (const MemOrg org :
         {MemOrg::Stash, MemOrg::Cache, MemOrg::ScratchGD}) {
        SystemConfig cfg = SystemConfig::microbenchmarkDefault();
        cfg.memOrg = org;

        workloads::WorkloadParams params;
        params.org = org;
        params.cpuCores = cfg.numCpuCores;
        params.scale = workloads::Scale::Smoke;
        Workload wl = workloads::WorkloadFactory::instance().make(
            "Reuse", params);

        System sys(cfg);
        const RunResult res = sys.run(std::move(wl));
        ASSERT_TRUE(res.validated) << memOrgName(org);

        SnapshotWriter a;
        a.configHash = snapshotConfigHash(cfg);
        sys.saveSnapshot(a);

        System sys2(cfg);
        SnapshotReader r(a.serialize());
        sys2.restoreSnapshot(r);
        SnapshotWriter b;
        b.configHash = snapshotConfigHash(cfg);
        sys2.saveSnapshot(b);
        EXPECT_EQ(a.serialize(), b.serialize()) << memOrgName(org);
    }
}

} // namespace
} // namespace stashsim
