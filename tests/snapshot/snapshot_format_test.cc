/**
 * @file
 * Unit tests for the snapshot container format: typed round trips,
 * manifest handling, and — most importantly — robustness: every
 * truncation and every bit flip of a valid image must surface as a
 * structured SnapshotError naming the failing section, never as
 * undefined behavior or silently-wrong data.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "config/system_config.hh"
#include "snapshot/snapshot.hh"

namespace stashsim
{
namespace
{

SnapshotWriter
sampleWriter()
{
    SnapshotWriter w;
    w.configHash = 0x1234'5678'9abc'def0ull;
    w.tick = 987654321;
    w.phaseCursor = 3;
    w.workload = "sample";
    w.beginSection("alpha");
    w.u8(0x42);
    w.u32(0xdeadbeef);
    w.u64(0x0123'4567'89ab'cdefull);
    w.b(true);
    w.str("hello snapshot");
    w.endSection();
    w.beginSection("beta");
    for (std::uint32_t i = 0; i < 64; ++i)
        w.u32(i * i);
    w.endSection();
    return w;
}

TEST(SnapshotFormatTest, TypedValuesRoundTrip)
{
    SnapshotReader r(sampleWriter().serialize());
    EXPECT_EQ(r.configHash(), 0x1234'5678'9abc'def0ull);
    EXPECT_EQ(r.tick(), 987654321u);
    EXPECT_EQ(r.phaseCursor(), 3u);
    EXPECT_EQ(r.workload(), "sample");

    r.openSection("alpha");
    EXPECT_EQ(r.u8(), 0x42);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123'4567'89ab'cdefull);
    EXPECT_TRUE(r.b());
    EXPECT_EQ(r.str(), "hello snapshot");
    r.closeSection();

    r.openSection("beta");
    for (std::uint32_t i = 0; i < 64; ++i)
        EXPECT_EQ(r.u32(), i * i);
    r.closeSection();
}

TEST(SnapshotFormatTest, SectionNamesAndLookup)
{
    SnapshotReader r(sampleWriter().serialize());
    EXPECT_TRUE(r.hasSection("alpha"));
    EXPECT_TRUE(r.hasSection("beta"));
    EXPECT_FALSE(r.hasSection("gamma"));
    const std::vector<std::string> names = r.sectionNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "beta");
    r.verifyAllSections();
}

TEST(SnapshotFormatTest, MissingSectionIsStructuredError)
{
    SnapshotReader r(sampleWriter().serialize());
    try {
        r.openSection("gamma");
        FAIL() << "openSection of a missing section must throw";
    } catch (const SnapshotError &e) {
        EXPECT_EQ(e.section(), "gamma");
    }
}

TEST(SnapshotFormatTest, PartialConsumptionIsStructuredError)
{
    SnapshotReader r(sampleWriter().serialize());
    r.openSection("alpha");
    r.u8();
    // The payload still holds values: schema drift must be loud.
    EXPECT_THROW(r.closeSection(), SnapshotError);
}

TEST(SnapshotFormatTest, OverReadIsStructuredError)
{
    SnapshotWriter w;
    w.beginSection("tiny");
    w.u8(7);
    w.endSection();
    SnapshotReader r(w.serialize());
    r.openSection("tiny");
    EXPECT_EQ(r.u8(), 7);
    EXPECT_THROW(r.u32(), SnapshotError);
}

TEST(SnapshotFormatTest, RequireThrowsWithSectionContext)
{
    SnapshotReader r(sampleWriter().serialize());
    r.openSection("alpha");
    try {
        r.require(false, "synthetic mismatch");
        FAIL() << "require(false) must throw";
    } catch (const SnapshotError &e) {
        EXPECT_EQ(e.section(), "alpha");
        EXPECT_EQ(e.reason(), "synthetic mismatch");
    }
}

TEST(SnapshotFormatTest, EveryTruncationIsDetected)
{
    const std::vector<std::uint8_t> image =
        sampleWriter().serialize();
    // Every proper prefix must fail structurally at parse time: the
    // section table's payload accounting makes any truncation visible
    // before a single payload byte is interpreted.
    for (std::size_t n = 0; n < image.size(); ++n) {
        std::vector<std::uint8_t> cut(image.begin(),
                                      image.begin() + n);
        EXPECT_THROW(SnapshotReader r(std::move(cut)), SnapshotError)
            << "truncation to " << n << " bytes parsed successfully";
    }
}

TEST(SnapshotFormatTest, TrailingGarbageIsDetected)
{
    std::vector<std::uint8_t> image = sampleWriter().serialize();
    image.push_back(0x00);
    EXPECT_THROW(SnapshotReader r(std::move(image)), SnapshotError);
}

TEST(SnapshotFormatTest, RandomBitFlipsAreDetected)
{
    const std::vector<std::uint8_t> image =
        sampleWriter().serialize();
    // Seeded, so the trial set is reproducible.  Each trial flips one
    // bit anywhere in the image; either the header validation or a
    // section CRC must notice.
    std::mt19937 rng(20150613);
    std::uniform_int_distribution<std::size_t> pos(0,
                                                   image.size() - 1);
    std::uniform_int_distribution<unsigned> bit(0, 7);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::uint8_t> flipped = image;
        flipped[pos(rng)] ^= std::uint8_t(1u << bit(rng));
        bool detected = false;
        try {
            SnapshotReader r(std::move(flipped));
            r.verifyAllSections();
        } catch (const SnapshotError &) {
            detected = true;
        }
        EXPECT_TRUE(detected)
            << "bit flip in trial " << trial << " went unnoticed";
    }
}

TEST(SnapshotFormatTest, FileRoundTripIsByteIdentical)
{
    const std::string path =
        ::testing::TempDir() + "snapshot_format_roundtrip.snap";
    const SnapshotWriter w = sampleWriter();
    w.writeFile(path);
    SnapshotReader r = SnapshotReader::fromFile(path);
    EXPECT_EQ(r.workload(), "sample");
    r.verifyAllSections();
    std::remove(path.c_str());
}

TEST(SnapshotConfigHashTest, IgnoresShardsAndVerify)
{
    SystemConfig a = SystemConfig::microbenchmarkDefault();
    SystemConfig b = a;
    b.shards = 4;
    b.verify.protocolChecker = true;
    b.verify.watchdog = true;
    // A serially-taken checkpoint restores under any shard count and
    // any verify instrumentation, so neither may perturb the hash.
    EXPECT_EQ(snapshotConfigHash(a), snapshotConfigHash(b));
}

TEST(SnapshotConfigHashTest, SensitiveToSimulatedState)
{
    const SystemConfig base = SystemConfig::microbenchmarkDefault();
    const std::uint64_t h = snapshotConfigHash(base);

    SystemConfig c1 = base;
    c1.l1Bytes *= 2;
    EXPECT_NE(snapshotConfigHash(c1), h);

    SystemConfig c2 = base;
    c2.memOrg = MemOrg::ScratchGD;
    EXPECT_NE(snapshotConfigHash(c2), h);

    SystemConfig c3 = base;
    c3.numGpuCus += 1;
    EXPECT_NE(snapshotConfigHash(c3), h);

    SystemConfig c4 = base;
    c4.stashChunkBytes *= 2;
    EXPECT_NE(snapshotConfigHash(c4), h);
}

} // namespace
} // namespace stashsim
