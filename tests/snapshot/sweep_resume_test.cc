/**
 * @file
 * SweepDriver resume tests: completed runs are served from their
 * RESULT_* artifacts without re-simulating, interrupted runs restart
 * from their latest CKPT_* snapshot, and a corrupt snapshot degrades
 * to a warning plus a from-scratch rerun — never a failed sweep and
 * never different numbers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "driver/sweep.hh"
#include "workloads/workload_factory.hh"

namespace stashsim
{
namespace
{

namespace fs = std::filesystem;

std::string
freshDir(const std::string &name)
{
    const std::string d = ::testing::TempDir() + name;
    fs::remove_all(d);
    fs::create_directories(d);
    return d;
}

/**
 * A small sweep grid whose workload construction is counted: the
 * counter tells the tests exactly which specs were actually
 * re-simulated on resume (a cached result never builds a workload).
 */
std::vector<RunSpec>
grid(std::atomic<int> *builds)
{
    std::vector<RunSpec> specs;
    for (const MemOrg org :
         {MemOrg::Scratch, MemOrg::Cache, MemOrg::Stash}) {
        RunSpec s;
        s.workload = "Reuse"; // multi-phase: every run checkpoints
        s.org = org;
        s.scale = workloads::Scale::Smoke;
        s.shards = 1;
        s.make = [builds](const workloads::WorkloadParams &p) {
            builds->fetch_add(1, std::memory_order_relaxed);
            return workloads::WorkloadFactory::instance().make(
                "Reuse", p);
        };
        specs.push_back(std::move(s));
    }
    return specs;
}

std::string
recordFingerprint(const RunRecord &rec)
{
    std::ostringstream os;
    os << rec.spec.label()
       << " validated=" << rec.result.validated
       << " gpuCycles=" << rec.result.gpuCycles
       << " energy=" << rec.result.energy.total()
       << " events=" << rec.result.perf.events
       << " simTicks=" << rec.result.perf.simTicks << "\n";
    for (const auto &[key, value] : rec.result.stats.flatten())
        os << key << "=" << value << "\n";
    return os.str();
}

std::vector<std::string>
fingerprints(const std::vector<RunRecord> &recs)
{
    std::vector<std::string> out;
    for (const RunRecord &rec : recs)
        out.push_back(recordFingerprint(rec));
    return out;
}

/** Files in @p dir whose name starts with @p prefix. */
std::vector<std::string>
filesWithPrefix(const std::string &dir, const std::string &prefix)
{
    std::vector<std::string> out;
    for (const auto &de : fs::directory_iterator(dir))
        if (de.path().filename().string().rfind(prefix, 0) == 0)
            out.push_back(de.path().string());
    std::sort(out.begin(), out.end());
    return out;
}

SweepOptions
stateOpts(const std::string &dir, std::ostream *progress)
{
    SweepOptions opts;
    opts.threads = 1;
    opts.shardsPerRun = 1;
    opts.progress = progress;
    opts.stateDir = dir;
    opts.checkpointEveryTicks = 1;
    return opts;
}

TEST(SweepResumeTest, CompletedRunsAreServedFromCache)
{
    const std::string dir = freshDir("sweep_cached");
    std::atomic<int> builds{0};
    std::ostringstream firstLog;
    const auto first =
        SweepDriver(stateOpts(dir, &firstLog)).run(grid(&builds));
    ASSERT_EQ(first.size(), 3u);
    for (const RunRecord &rec : first)
        ASSERT_TRUE(rec.result.validated) << rec.spec.label();
    const int fresh = builds.load();
    EXPECT_EQ(fresh, 3);
    EXPECT_EQ(filesWithPrefix(dir, "RESULT_").size(), 3u);

    std::ostringstream secondLog;
    SweepOptions opts = stateOpts(dir, &secondLog);
    opts.resume = true;
    const auto second = SweepDriver(opts).run(grid(&builds));
    EXPECT_EQ(builds.load(), fresh)
        << "a cached run was re-simulated";
    EXPECT_EQ(fingerprints(first), fingerprints(second));
    EXPECT_NE(secondLog.str().find("(cached)"), std::string::npos)
        << secondLog.str();
}

TEST(SweepResumeTest, InterruptedRunRestartsFromLatestCheckpoint)
{
    const std::string dir = freshDir("sweep_interrupted");
    std::atomic<int> builds{0};
    std::ostringstream log;
    const auto first =
        SweepDriver(stateOpts(dir, &log)).run(grid(&builds));
    for (const RunRecord &rec : first)
        ASSERT_TRUE(rec.result.validated) << rec.spec.label();
    const int fresh = builds.load();

    // Simulate a crash after two of the three runs finished: one
    // RESULT artifact never got written, but its checkpoints did.
    const auto results = filesWithPrefix(dir, "RESULT_");
    ASSERT_EQ(results.size(), 3u);
    fs::remove(results[0]);
    ASSERT_FALSE(filesWithPrefix(dir, "CKPT_").empty());

    std::ostringstream resumeLog;
    SweepOptions opts = stateOpts(dir, &resumeLog);
    opts.resume = true;
    const auto second = SweepDriver(opts).run(grid(&builds));
    EXPECT_EQ(builds.load(), fresh + 1)
        << "exactly the interrupted run should re-simulate";
    EXPECT_EQ(fingerprints(first), fingerprints(second));
    EXPECT_NE(resumeLog.str().find("(resumed)"), std::string::npos)
        << resumeLog.str();
    // The rerun re-cached its result.
    EXPECT_EQ(filesWithPrefix(dir, "RESULT_").size(), 3u);
}

TEST(SweepResumeTest, CorruptCheckpointFallsBackWithWarning)
{
    const std::string dir = freshDir("sweep_corrupt");
    std::atomic<int> builds{0};
    std::ostringstream log;
    const auto first =
        SweepDriver(stateOpts(dir, &log)).run(grid(&builds));
    for (const RunRecord &rec : first)
        ASSERT_TRUE(rec.result.validated) << rec.spec.label();

    // Lose one run's RESULT and truncate every one of its
    // checkpoints: resume must warn, fall back to tick 0, and still
    // produce the same numbers.
    const auto results = filesWithPrefix(dir, "RESULT_");
    ASSERT_EQ(results.size(), 3u);
    const std::string victim = results[1];
    const std::string base = fs::path(victim).filename().string();
    // "RESULT_<label>.snap" -> "CKPT_<label>@"
    const std::string ckptPrefix =
        "CKPT_" + base.substr(7, base.size() - 7 - 5) + "@";
    fs::remove(victim);
    const auto ckpts = filesWithPrefix(dir, ckptPrefix);
    ASSERT_FALSE(ckpts.empty());
    for (const std::string &c : ckpts)
        fs::resize_file(c, fs::file_size(c) / 2);

    std::ostringstream resumeLog;
    SweepOptions opts = stateOpts(dir, &resumeLog);
    opts.resume = true;
    const auto second = SweepDriver(opts).run(grid(&builds));
    EXPECT_EQ(fingerprints(first), fingerprints(second));
    EXPECT_NE(resumeLog.str().find("unusable"), std::string::npos)
        << resumeLog.str();
    EXPECT_NE(resumeLog.str().find("falling back"),
              std::string::npos);
    // Fallback went all the way to a fresh run, not a resume.
    EXPECT_EQ(resumeLog.str().find("(resumed)"), std::string::npos)
        << resumeLog.str();
}

} // namespace
} // namespace stashsim
