/**
 * @file
 * End-to-end resume parity: a run that checkpoints, dies, and is
 * restored into a fresh System must finish with results
 * byte-identical to an uninterrupted run — every stats counter, the
 * energy breakdown, the deterministic SimPerf counters, and the final
 * memory image.  Also covered: restoring a serially-taken checkpoint
 * under a sharded engine, the verify instruments staying armed across
 * the restore boundary, and the rejection diagnostics for mismatched
 * configurations and workloads.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "driver/run.hh"
#include "mem/backend/mem_backend.hh"
#include "snapshot/snapshot.hh"

namespace stashsim
{
namespace
{

namespace fs = std::filesystem;

std::string
freshDir(const std::string &name)
{
    const std::string d = ::testing::TempDir() + name;
    fs::remove_all(d);
    fs::create_directories(d);
    return d;
}

/** (tick, path) of every checkpoint in @p dir, oldest first. */
std::vector<std::pair<std::uint64_t, std::string>>
checkpointsIn(const std::string &dir)
{
    std::vector<std::pair<std::uint64_t, std::string>> out;
    for (const auto &de : fs::directory_iterator(dir)) {
        const std::string name = de.path().filename().string();
        if (name.rfind("CKPT_", 0) != 0)
            continue;
        const std::size_t at = name.find('@');
        if (at == std::string::npos)
            continue;
        out.emplace_back(
            std::strtoull(name.c_str() + at + 1, nullptr, 10),
            de.path().string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

/** Every deterministic observable of a run, one comparable string. */
std::string
fingerprint(const RunResult &r)
{
    std::ostringstream os;
    os << "validated=" << r.validated
       << " gpuCycles=" << r.gpuCycles
       << " energy=" << r.energy.total()
       << " events=" << r.perf.events
       << " simTicks=" << r.perf.simTicks << "\n";
    for (const auto &[key, value] : r.stats.flatten())
        os << key << "=" << value << "\n";
    return os.str();
}

RunSpec
baseSpec(workloads::Scale scale = workloads::Scale::Smoke)
{
    RunSpec spec;
    spec.workload = "Reuse"; // multi-phase: warmup, kernels, readback
    spec.org = MemOrg::Stash;
    spec.scale = scale;
    spec.shards = 1;
    return spec;
}

/** Attaches a finish hook capturing the system's end-state image. */
void
captureEndImage(RunSpec &spec, std::vector<std::uint8_t> *out)
{
    spec.finish = [out](System &sys, const RunResult &) {
        SnapshotWriter w;
        sys.saveSnapshot(w);
        *out = w.serialize();
    };
}

TEST(ResumeParityTest, CheckpointingIsObservationallyPure)
{
    const std::string dir = freshDir("ckpt_pure");
    const RunSpec plain = baseSpec();
    RunSpec ckpt = baseSpec();
    ckpt.checkpointEveryTicks = 1; // every eligible phase boundary
    ckpt.checkpointDir = dir;

    const RunResult a = runSpec(plain);
    const RunResult b = runSpec(ckpt);
    ASSERT_TRUE(a.validated);
    EXPECT_EQ(fingerprint(a), fingerprint(b));
    EXPECT_FALSE(checkpointsIn(dir).empty())
        << "multi-phase run produced no checkpoints";
}

TEST(ResumeParityTest, RestoredRunFinishesByteIdentical)
{
    for (const workloads::Scale scale :
         {workloads::Scale::Smoke, workloads::Scale::Quick}) {
        const std::string dir = freshDir(
            scale == workloads::Scale::Smoke ? "restore_smoke"
                                             : "restore_quick");
        std::vector<std::uint8_t> refImage;
        RunSpec ref = baseSpec(scale);
        ref.checkpointEveryTicks = 1;
        ref.checkpointDir = dir;
        captureEndImage(ref, &refImage);
        const RunResult full = runSpec(ref);
        ASSERT_TRUE(full.validated);

        const auto ckpts = checkpointsIn(dir);
        ASSERT_FALSE(ckpts.empty());
        // Restore from every checkpoint the run dropped — early and
        // late resume points must both converge to the same end.
        for (const auto &[tick, path] : ckpts) {
            std::vector<std::uint8_t> resImage;
            RunSpec res = baseSpec(scale);
            res.restoreFrom = path;
            captureEndImage(res, &resImage);
            const RunResult resumed = runSpec(res);
            EXPECT_EQ(fingerprint(full), fingerprint(resumed))
                << "restored from tick " << tick;
            // Full end-state identity: memory image, caches, NoC,
            // clocks — the whole serialized system.
            EXPECT_EQ(refImage, resImage)
                << "end-state image diverged restoring from tick "
                << tick;
        }
    }
}

TEST(ResumeParityTest, ShardedRestoreOfSerialCheckpoint)
{
    const std::string dir = freshDir("restore_sharded");
    std::vector<std::uint8_t> refImage;
    RunSpec ref = baseSpec();
    ref.checkpointEveryTicks = 1;
    ref.checkpointDir = dir;
    captureEndImage(ref, &refImage);
    const RunResult full = runSpec(ref);
    ASSERT_TRUE(full.validated);

    const auto ckpts = checkpointsIn(dir);
    ASSERT_FALSE(ckpts.empty());
    RunSpec res = baseSpec();
    res.shards = 4;
    res.restoreFrom = ckpts.back().second;
    std::vector<std::uint8_t> resImage;
    captureEndImage(res, &resImage);
    const RunResult resumed = runSpec(res);
    EXPECT_EQ(fingerprint(full), fingerprint(resumed));

    // The engine section legitimately differs across modes
    // (per-tile queue-shape counters); every model-state section must
    // be byte-identical.
    SnapshotReader a(refImage), b(resImage);
    ASSERT_EQ(a.sectionNames(), b.sectionNames());
    for (const std::string &name : a.sectionNames()) {
        if (name == "engine")
            continue;
        EXPECT_EQ(a.sectionData(name), b.sectionData(name))
            << "section " << name;
    }
}

TEST(ResumeParityTest, VerifyInstrumentsStayArmedAcrossRestore)
{
    SystemConfig cfg = SystemConfig::microbenchmarkDefault();
    cfg.memOrg = MemOrg::Stash;
    cfg.verify.protocolChecker = true;
    cfg.verify.watchdog = true;

    const std::string dir = freshDir("restore_verify");
    RunSpec ref = baseSpec();
    ref.config = cfg;
    ref.checkpointEveryTicks = 1;
    ref.checkpointDir = dir;
    const RunResult full = runSpec(ref);
    ASSERT_TRUE(full.validated);

    const auto ckpts = checkpointsIn(dir);
    ASSERT_FALSE(ckpts.empty());
    RunSpec res = baseSpec();
    res.config = cfg;
    res.restoreFrom = ckpts.back().second;
    const RunResult resumed = runSpec(res);
    ASSERT_TRUE(resumed.validated)
        << (resumed.errors.empty() ? "?" : resumed.errors[0]);
    EXPECT_EQ(fingerprint(full), fingerprint(resumed));

    // The checkpoint really carried the checker's golden image.
    SnapshotReader r = SnapshotReader::fromFile(ckpts.back().second);
    EXPECT_TRUE(r.hasSection("checker"));
}

TEST(ResumeParityTest, SyntheticRestoreFromEveryCheckpoint)
{
    // The synthetic generator carries its own snapshot section (spec
    // hash + mt19937_64 stream); restoring any checkpoint of a
    // synthetic run must still converge byte-identically.
    const std::string dir = freshDir("restore_synth");
    RunSpec ref;
    ref.workload = "SynthMix";
    ref.org = MemOrg::Stash;
    ref.scale = workloads::Scale::Smoke;
    ref.checkpointEveryTicks = 1;
    ref.checkpointDir = dir;
    std::vector<std::uint8_t> refImage;
    captureEndImage(ref, &refImage);
    const RunResult full = runSpec(ref);
    ASSERT_TRUE(full.validated)
        << (full.errors.empty() ? "?" : full.errors[0]);

    const auto ckpts = checkpointsIn(dir);
    ASSERT_FALSE(ckpts.empty());
    for (const auto &[tick, path] : ckpts) {
        // The workload section made it into the checkpoint.
        SnapshotReader sr = SnapshotReader::fromFile(path);
        EXPECT_TRUE(sr.hasSection("workload")) << path;

        RunSpec res;
        res.workload = "SynthMix";
        res.org = MemOrg::Stash;
        res.scale = workloads::Scale::Smoke;
        res.restoreFrom = path;
        std::vector<std::uint8_t> resImage;
        captureEndImage(res, &resImage);
        const RunResult resumed = runSpec(res);
        EXPECT_EQ(fingerprint(full), fingerprint(resumed))
            << "restored from tick " << tick;
        EXPECT_EQ(refImage, resImage)
            << "end-state image diverged restoring from tick "
            << tick;
    }
}

TEST(ResumeParityTest, SyntheticScaleMismatchIsRejected)
{
    // A differently-parameterized twin (another scale => another spec
    // hash) must not resume a synthetic checkpoint.
    const std::string dir = freshDir("restore_synth_scale");
    RunSpec ref;
    ref.workload = "GraphGather";
    ref.org = MemOrg::Stash;
    ref.scale = workloads::Scale::Smoke;
    ref.checkpointEveryTicks = 1;
    ref.checkpointDir = dir;
    ASSERT_TRUE(runSpec(ref).validated);
    const auto ckpts = checkpointsIn(dir);
    ASSERT_FALSE(ckpts.empty());

    RunSpec res;
    res.workload = "GraphGather";
    res.org = MemOrg::Stash;
    res.scale = workloads::Scale::Quick;
    res.restoreFrom = ckpts.back().second;
    EXPECT_THROW(runSpec(res), std::runtime_error);
}

TEST(ResumeParityTest, ConfigMismatchIsRejectedWithDiagnostic)
{
    const std::string dir = freshDir("restore_cfg_mismatch");
    RunSpec ref = baseSpec();
    ref.checkpointEveryTicks = 1;
    ref.checkpointDir = dir;
    ASSERT_TRUE(runSpec(ref).validated);
    const auto ckpts = checkpointsIn(dir);
    ASSERT_FALSE(ckpts.empty());

    RunSpec res = baseSpec();
    SystemConfig other = SystemConfig::microbenchmarkDefault();
    other.memOrg = MemOrg::Stash;
    other.l1Bytes *= 2;
    res.config = other;
    res.restoreFrom = ckpts.back().second;
    try {
        runSpec(res);
        FAIL() << "config-hash mismatch must be fatal";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("configuration hash"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ResumeParityTest, WorkloadMismatchIsRejectedWithDiagnostic)
{
    const std::string dir = freshDir("restore_wl_mismatch");
    RunSpec ref = baseSpec();
    ref.checkpointEveryTicks = 1;
    ref.checkpointDir = dir;
    ASSERT_TRUE(runSpec(ref).validated);
    const auto ckpts = checkpointsIn(dir);
    ASSERT_FALSE(ckpts.empty());

    RunSpec res = baseSpec();
    res.workload = "Implicit"; // same machine, different workload
    res.restoreFrom = ckpts.back().second;
    try {
        runSpec(res);
        FAIL() << "workload mismatch must be fatal";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("workload"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ResumeParityTest, FixedBackendIsTheDefaultSpelledExplicitly)
{
    // `--backend fixed` is the seed's memory model made explicit: a
    // run selecting it must be indistinguishable from a run that
    // never mentions a backend — under the serial engine and under
    // --shards 4 alike (the end-to-end CLI analogue is ci.sh's cmp
    // of the BENCH_fig5.json artifacts).
    const RunSpec plain = baseSpec();
    RunSpec fixed = baseSpec();
    fixed.backend = MemBackendKind::Fixed;
    RunSpec fixedSharded = baseSpec();
    fixedSharded.backend = MemBackendKind::Fixed;
    fixedSharded.shards = 4;

    const RunResult a = runSpec(plain);
    ASSERT_TRUE(a.validated);
    EXPECT_EQ(fingerprint(a), fingerprint(runSpec(fixed)));
    EXPECT_EQ(fingerprint(a), fingerprint(runSpec(fixedSharded)));
}

TEST(ResumeParityTest, EveryMemBackendRestoresByteIdentical)
{
    // Each backend's timing state (write queues, DRAM-cache tags,
    // channel clocks) rides in the checkpoint: resuming under any
    // backend must converge to the uninterrupted run's exact end.
    for (const MemBackendInfo &info : memBackendList()) {
        const std::string dir =
            freshDir(std::string("restore_backend_") + info.name);
        std::vector<std::uint8_t> refImage;
        RunSpec ref = baseSpec();
        ref.backend = info.kind;
        ref.checkpointEveryTicks = 1;
        ref.checkpointDir = dir;
        captureEndImage(ref, &refImage);
        const RunResult full = runSpec(ref);
        ASSERT_TRUE(full.validated) << info.name;

        const auto ckpts = checkpointsIn(dir);
        ASSERT_FALSE(ckpts.empty()) << info.name;
        for (const auto &[tick, path] : ckpts) {
            std::vector<std::uint8_t> resImage;
            RunSpec res = baseSpec();
            res.backend = info.kind;
            res.restoreFrom = path;
            captureEndImage(res, &resImage);
            const RunResult resumed = runSpec(res);
            EXPECT_EQ(fingerprint(full), fingerprint(resumed))
                << info.name << ", restored from tick " << tick;
            EXPECT_EQ(refImage, resImage)
                << info.name << ", end-state image diverged "
                << "restoring from tick " << tick;
        }
    }
}

TEST(ResumeParityTest, BackendMismatchIsRejectedWithDiagnostic)
{
    // The backend kind folds into the snapshot config hash: an
    // sttmram checkpoint must not restore under scmcache.
    const std::string dir = freshDir("restore_backend_mismatch");
    RunSpec ref = baseSpec();
    ref.backend = MemBackendKind::SttMram;
    ref.checkpointEveryTicks = 1;
    ref.checkpointDir = dir;
    ASSERT_TRUE(runSpec(ref).validated);
    const auto ckpts = checkpointsIn(dir);
    ASSERT_FALSE(ckpts.empty());

    RunSpec res = baseSpec();
    res.backend = MemBackendKind::ScmCache;
    res.restoreFrom = ckpts.back().second;
    try {
        runSpec(res);
        FAIL() << "backend mismatch must be fatal";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("configuration hash"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ResumeParityTest, FaultInjectedRunRestoresByteIdentical)
{
    // The injector serializes its RNG stream position, FIFO clamps,
    // and fault counters into the "injector" snapshot section, so a
    // restored run replays exactly the perturbations the
    // uninterrupted run would have drawn from that point on.
    SystemConfig cfg = SystemConfig::microbenchmarkDefault();
    cfg.memOrg = MemOrg::Stash;
    cfg.verify.faultInjection = true;
    cfg.verify.faultSeed = 12345;
    cfg.verify.faultDelayPermille = 100;
    cfg.verify.faultDupPermille = 50;

    const std::string dir = freshDir("restore_faults");
    std::vector<std::uint8_t> refImage;
    RunSpec ref = baseSpec();
    ref.config = cfg;
    ref.checkpointEveryTicks = 1;
    ref.checkpointDir = dir;
    captureEndImage(ref, &refImage);
    const RunResult full = runSpec(ref);
    ASSERT_TRUE(full.validated)
        << (full.errors.empty() ? "?" : full.errors[0]);

    const auto ckpts = checkpointsIn(dir);
    ASSERT_FALSE(ckpts.empty());
    SnapshotReader hdr = SnapshotReader::fromFile(ckpts.back().second);
    EXPECT_TRUE(hdr.hasSection("injector"))
        << "fault-injected checkpoint must carry the RNG section";

    for (const auto &[tick, path] : ckpts) {
        std::vector<std::uint8_t> resImage;
        RunSpec res = baseSpec();
        res.config = cfg;
        res.restoreFrom = path;
        captureEndImage(res, &resImage);
        const RunResult resumed = runSpec(res);
        EXPECT_EQ(fingerprint(full), fingerprint(resumed))
            << "restored from tick " << tick;
        EXPECT_EQ(refImage, resImage)
            << "end-state image diverged restoring from tick " << tick;
    }
}

} // namespace
} // namespace stashsim
