#include <gtest/gtest.h>

#include <sstream>

#include "report/trace.hh"
#include "sim/event_queue.hh"

namespace stashsim
{
namespace
{

using report::ChromeTraceSink;
using report::JsonValue;

TEST(ChromeTraceSinkTest, RecordsPhaseSlices)
{
    EventQueue eq;
    ChromeTraceSink sink("lane0");
    eq.addPhaseListener(&sink);

    eq.beginPhase("kernel");
    eq.scheduleIn(10, []() {});
    eq.run();
    eq.endPhase();
    eq.beginPhase("drain");
    eq.scheduleIn(5, []() {});
    eq.run();
    eq.endPhase();

    EXPECT_EQ(sink.phaseCount(), 2u);
    const JsonValue doc = sink.toJson();
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_GE(events->size(), 2u);

    const JsonValue &first = events->at(0);
    EXPECT_EQ(first.find("ph")->asString(), "X");
    EXPECT_EQ(first.find("name")->asString(), "kernel");
    EXPECT_EQ(first.find("ts")->asNumber(), 0);
    EXPECT_EQ(first.find("dur")->asNumber(), 10);
    EXPECT_EQ(first.find("tid")->asString(), "lane0");

    const JsonValue &second = events->at(1);
    EXPECT_EQ(second.find("name")->asString(), "drain");
    EXPECT_EQ(second.find("dur")->asNumber(), 5);
}

TEST(ChromeTraceSinkTest, SamplesTrackedCountersAtPhaseEnd)
{
    EventQueue eq;
    ChromeTraceSink sink;
    int value = 0;
    sink.trackCounter("value", [&]() { return double(value); });
    eq.addPhaseListener(&sink);

    eq.beginPhase("p1");
    value = 3;
    eq.endPhase();
    eq.beginPhase("p2");
    value = 8;
    eq.endPhase();

    const JsonValue doc = sink.toJson();
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    std::vector<double> samples;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const JsonValue &e = events->at(i);
        if (e.find("ph")->asString() == "C")
            samples.push_back(
                e.find("args")->find("value")->asNumber());
    }
    ASSERT_EQ(samples.size(), 2u);
    EXPECT_EQ(samples[0], 3);
    EXPECT_EQ(samples[1], 8);
}

TEST(ChromeTraceSinkTest, OutputIsValidJson)
{
    EventQueue eq;
    ChromeTraceSink sink;
    eq.addPhaseListener(&sink);
    eq.beginPhase("only");
    eq.endPhase();

    std::ostringstream os;
    sink.writeTo(os);
    JsonValue back;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(os.str(), back, err)) << err;
    EXPECT_NE(back.find("traceEvents"), nullptr);
}

TEST(ChromeTraceSinkTest, ListenerSurvivesQueueReset)
{
    EventQueue eq;
    ChromeTraceSink sink;
    eq.addPhaseListener(&sink);
    eq.beginPhase("before");
    eq.endPhase();
    eq.reset();
    eq.beginPhase("after");
    eq.endPhase();
    EXPECT_EQ(sink.phaseCount(), 2u);
}

} // namespace
} // namespace stashsim
