#include <gtest/gtest.h>

#include <sstream>

#include "config/system_config.hh"
#include "driver/run.hh"
#include "report/stats_registry.hh"

namespace stashsim
{
namespace
{

using report::StatsRegistry;

TEST(StatsRegistryTest, CountersAndValuesSampleLive)
{
    Counter a = 1, b = 2;
    StatsRegistry reg;
    reg.addCounter("g.a", &a);
    reg.addCounter("g.b", &b);
    reg.addValue("g.sum", [&]() { return double(a + b); });
    a = 10;
    const auto vals = reg.values();
    EXPECT_EQ(vals.at("g.a"), 10);
    EXPECT_EQ(vals.at("g.b"), 2);
    EXPECT_EQ(vals.at("g.sum"), 12);
}

TEST(StatsRegistryTest, AddGroupUsesVisitNames)
{
    GpuStats gpu;
    gpu.instructions = 7;
    StatsRegistry reg;
    reg.addGroup("gpu", &gpu);
    const auto vals = reg.values();
    EXPECT_EQ(vals.at("gpu.instructions"), 7);
}

TEST(StatsRegistryTest, ToJsonNestsOnDots)
{
    Counter a = 5;
    StatsRegistry reg;
    reg.addCounter("x.y.z", &a);
    const report::JsonValue doc = reg.toJson();
    ASSERT_NE(doc.find("x"), nullptr);
    ASSERT_NE(doc.find("x")->find("y"), nullptr);
    EXPECT_EQ(doc.find("x")->find("y")->find("z")->asNumber(), 5);
}

TEST(StatsRegistryTest, CsvHasHeaderAndSortedRows)
{
    Counter a = 1, b = 2;
    StatsRegistry reg;
    reg.addCounter("b.v", &b);
    reg.addCounter("a.v", &a);
    std::ostringstream os;
    reg.writeCsv(os);
    const std::string text = os.str();
    EXPECT_EQ(text.rfind("stat,value\n", 0), 0u);
    EXPECT_LT(text.find("a.v,1"), text.find("b.v,2"));
}

/**
 * The parity contract: registerSystemStats() must expose exactly the
 * key set of SystemStats::flatten(), with equal values, on real
 * end-of-run statistics.
 */
TEST(StatsRegistryTest, RegisterSystemStatsMatchesFlattenKeyForKey)
{
    RunSpec spec;
    spec.workload = "Implicit";
    spec.org = MemOrg::Stash;
    spec.scale = workloads::Scale::Smoke;
    const RunResult r = runSpec(spec);
    ASSERT_TRUE(r.validated);

    StatsRegistry reg;
    registerSystemStats(reg, r.stats);
    const std::map<std::string, double> registered = reg.values();
    const std::map<std::string, double> flat = r.stats.flatten();

    ASSERT_EQ(registered.size(), flat.size());
    for (const auto &[key, value] : flat) {
        auto it = registered.find(key);
        ASSERT_NE(it, registered.end()) << "missing key: " << key;
        EXPECT_EQ(it->second, value) << "value mismatch: " << key;
    }
    // And the run actually produced nonzero counters to compare.
    EXPECT_GT(flat.at("gpu.instructions"), 0);
    EXPECT_GT(flat.at("stash.accesses"), 0);
}

} // namespace
} // namespace stashsim
