#include <gtest/gtest.h>

#include "report/json.hh"

namespace stashsim
{
namespace report
{
namespace
{

TEST(JsonValueTest, BuildsAndSerializesDeterministically)
{
    JsonValue doc = JsonValue::object();
    doc["name"] = "fig5";
    doc["count"] = 3;
    doc["ratio"] = 0.5;
    doc["flag"] = true;
    JsonValue arr = JsonValue::array();
    arr.push(1);
    arr.push("two");
    doc["items"] = std::move(arr);

    const std::string text = doc.dump();
    // Keys serialize in insertion order.
    EXPECT_LT(text.find("\"name\""), text.find("\"count\""));
    EXPECT_LT(text.find("\"count\""), text.find("\"ratio\""));
    EXPECT_LT(text.find("\"ratio\""), text.find("\"items\""));
    EXPECT_NE(text.find("\"flag\": true"), std::string::npos);
    // Identical trees serialize to identical bytes.
    EXPECT_EQ(text, doc.dump());
}

TEST(JsonValueTest, IntegersSerializeWithoutDecimalPoint)
{
    EXPECT_EQ(jsonNumberToString(3), "3");
    EXPECT_EQ(jsonNumberToString(123456789.0), "123456789");
    EXPECT_EQ(jsonNumberToString(0), "0");
    // Fractions keep their precision.
    JsonValue v;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(jsonNumberToString(0.25), v, err));
    EXPECT_DOUBLE_EQ(v.asNumber(), 0.25);
}

TEST(JsonValueTest, ParseRoundTripsSerializedTree)
{
    JsonValue doc = JsonValue::object();
    doc["schema"] = "stashsim-bench-v1";
    doc["nested"] = JsonValue::object();
    doc["nested"]["esc"] = "line\n\"quote\"\t\\slash";
    doc["nested"]["neg"] = -42;
    JsonValue arr = JsonValue::array();
    arr.push(JsonValue());
    arr.push(false);
    doc["arr"] = std::move(arr);

    JsonValue back;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(doc.dump(), back, err)) << err;
    EXPECT_EQ(back.dump(), doc.dump());
    EXPECT_EQ(back.find("nested")->find("esc")->asString(),
              "line\n\"quote\"\t\\slash");
    EXPECT_EQ(back.find("arr")->at(0).kind(), JsonValue::Kind::Null);
    EXPECT_FALSE(back.find("arr")->at(1).asBool());
}

TEST(JsonValueTest, ParseHandlesUnicodeEscapes)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(
        JsonValue::parse("{\"s\": \"a\\u0041\\u00e9\"}", v, err))
        << err;
    EXPECT_EQ(v.find("s")->asString(), "aA\xc3\xa9");
}

TEST(JsonValueTest, ParseRejectsMalformedInput)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(JsonValue::parse("{", v, err));
    EXPECT_FALSE(JsonValue::parse("{\"a\": }", v, err));
    EXPECT_FALSE(JsonValue::parse("[1, 2,]", v, err));
    EXPECT_FALSE(JsonValue::parse("\"unterminated", v, err));
    EXPECT_FALSE(JsonValue::parse("{} trailing", v, err));
    EXPECT_FALSE(err.empty());
}

TEST(JsonValueTest, FindOnNonObjectReturnsNull)
{
    JsonValue arr = JsonValue::array();
    EXPECT_EQ(arr.find("x"), nullptr);
    JsonValue num(1.0);
    EXPECT_EQ(num.find("x"), nullptr);
}

} // namespace
} // namespace report
} // namespace stashsim
