/**
 * @file
 * Unit tests for the mesh NoC: routing, latency, contention, and the
 * flit-crossing accounting behind Figure 5d.
 */

#include <gtest/gtest.h>

#include "noc/mesh.hh"

namespace stashsim
{
namespace
{

MeshParams
defaultParams()
{
    MeshParams p;
    p.width = 4;
    p.height = 4;
    p.routerCycles = 2;
    p.linkCycles = 1;
    return p;
}

TEST(MeshTest, HopCountIsManhattanDistance)
{
    EventQueue eq;
    Mesh mesh(eq, defaultParams());
    EXPECT_EQ(mesh.hopCount(0, 0), 0u);
    EXPECT_EQ(mesh.hopCount(0, 3), 3u);
    EXPECT_EQ(mesh.hopCount(0, 15), 6u);
    EXPECT_EQ(mesh.hopCount(5, 6), 1u);
    EXPECT_EQ(mesh.hopCount(12, 3), 6u);
    EXPECT_EQ(mesh.hopCount(3, 12), 6u);
}

TEST(MeshTest, FlitsForRoundsUp)
{
    EXPECT_EQ(Mesh::flitsFor(0), 1u);
    EXPECT_EQ(Mesh::flitsFor(1), 1u);
    EXPECT_EQ(Mesh::flitsFor(16), 1u);
    EXPECT_EQ(Mesh::flitsFor(17), 2u);
    EXPECT_EQ(Mesh::flitsFor(72), 5u);
}

TEST(MeshTest, DeliversWithPerHopLatency)
{
    EventQueue eq;
    Mesh mesh(eq, defaultParams());
    Tick delivered = 0;
    // 0 -> 3: 3 hops.  Each hop: 2-cycle router + 1-cycle link
    // serialization for one flit, plus ejection (router + local).
    mesh.send(0, 3, 8, MsgClass::Read,
              [&]() { delivered = eq.curTick(); });
    eq.run();
    const Tick cycles = delivered / gpuClockPeriod;
    EXPECT_EQ(cycles, 3 * (2 + 1) + (2 + 1));
}

TEST(MeshTest, SameNodeDeliveryStillCostsEjection)
{
    EventQueue eq;
    Mesh mesh(eq, defaultParams());
    Tick delivered = 0;
    mesh.send(7, 7, 8, MsgClass::Read,
              [&]() { delivered = eq.curTick(); });
    eq.run();
    EXPECT_EQ(delivered / gpuClockPeriod, 3u);
}

TEST(MeshTest, LargerPayloadsSerializeLonger)
{
    EventQueue eq;
    Mesh mesh(eq, defaultParams());
    Tick t_small = 0, t_big = 0;
    {
        Mesh m1(eq, defaultParams());
        m1.send(0, 1, 8, MsgClass::Read,
                [&]() { t_small = eq.curTick(); });
        eq.run();
    }
    eq.reset();
    {
        Mesh m2(eq, defaultParams());
        m2.send(0, 1, 72, MsgClass::Read,
                [&]() { t_big = eq.curTick(); });
        eq.run();
    }
    EXPECT_GT(t_big, t_small);
    // 5 flits instead of 1: with a 4-flit-wide link, one extra
    // serialization cycle per traversed link (2 links: net + eject).
    EXPECT_EQ((t_big - t_small) / gpuClockPeriod, 2u * 1u);
}

TEST(MeshTest, ContentionDelaysSecondPacket)
{
    EventQueue eq;
    Mesh mesh(eq, defaultParams());
    Tick first = 0, second = 0;
    mesh.send(0, 1, 64, MsgClass::Read,
              [&]() { first = eq.curTick(); });
    mesh.send(0, 1, 64, MsgClass::Read,
              [&]() { second = eq.curTick(); });
    eq.run();
    EXPECT_GT(second, first);
}

TEST(MeshTest, DisjointPathsDoNotContend)
{
    EventQueue eq;
    Mesh mesh(eq, defaultParams());
    Tick a = 0, b = 0;
    mesh.send(0, 1, 64, MsgClass::Read, [&]() { a = eq.curTick(); });
    mesh.send(8, 9, 64, MsgClass::Read, [&]() { b = eq.curTick(); });
    eq.run();
    EXPECT_EQ(a, b);
}

TEST(MeshTest, CountsFlitHopsPerClass)
{
    EventQueue eq;
    Mesh mesh(eq, defaultParams());
    // 2 flits (17 bytes) across 3 links.
    mesh.send(0, 3, 17, MsgClass::Writeback, []() {});
    eq.run();
    EXPECT_EQ(mesh.stats().flitHops[unsigned(MsgClass::Writeback)],
              6u);
    EXPECT_EQ(mesh.stats().flitHops[unsigned(MsgClass::Read)], 0u);
    EXPECT_EQ(mesh.stats().packets, 1u);
}

TEST(MeshTest, SameNodeTrafficCrossesNoLinks)
{
    EventQueue eq;
    Mesh mesh(eq, defaultParams());
    mesh.send(5, 5, 64, MsgClass::Read, []() {});
    eq.run();
    EXPECT_EQ(mesh.stats().totalFlitHops(), 0u);
    EXPECT_EQ(mesh.stats().packets, 1u);
}

/** Property: latency grows monotonically with hop distance. */
TEST(MeshTest, PropertyLatencyMonotonicInDistance)
{
    Tick prev = 0;
    for (NodeId dst : {NodeId(0), NodeId(1), NodeId(2), NodeId(3),
                       NodeId(7), NodeId(11), NodeId(15)}) {
        EventQueue eq;
        Mesh mesh(eq, defaultParams());
        Tick t = 0;
        mesh.send(0, dst, 8, MsgClass::Read,
                  [&]() { t = eq.curTick(); });
        eq.run();
        EXPECT_GE(t, prev);
        prev = t;
    }
}

/** The Table 2 L2 latency range: 29-61 cycles total.  Our network
 *  contributes hops x 3 cycles each way plus the 23-cycle bank, so
 *  the min (same node) and max (6 hops) cases must bracket it. */
TEST(MeshTest, Table2L2LatencyBracket)
{
    EventQueue eq;
    Mesh mesh(eq, defaultParams());
    const Cycles bank = 23;
    const Cycles min_total = 2 * 3 + bank;         // same-node
    const Cycles max_total = 2 * (6 + 1) * 3 + bank; // corner-corner
    EXPECT_GE(min_total, 29u - 2);
    EXPECT_LE(max_total, 61u + 6);
}

TEST(RouterTest, ReservationsSerializeOnOneLink)
{
    Router r;
    EXPECT_EQ(r.reserve(Direction::East, 100, 20), 120u);
    EXPECT_EQ(r.reserve(Direction::East, 100, 20), 140u);
    EXPECT_EQ(r.reserve(Direction::West, 100, 20), 120u);
    r.reset();
    EXPECT_EQ(r.reserve(Direction::East, 10, 5), 15u);
}


// ---------------------------------------------------------------
// Router channel reservations (the contention primitive)
// ---------------------------------------------------------------

TEST(RouterTest, ReservationEndTickMath)
{
    Router r;
    // Free channel: the reservation starts at `earliest` and the
    // returned end tick is earliest + duration.
    EXPECT_EQ(r.reserve(Direction::East, 100, 10), 110u);
    EXPECT_EQ(r.busyUntil(Direction::East), 110u);
    // An overlapping request queues behind the tail: it starts at
    // busyUntil, not at its own earliest.
    EXPECT_EQ(r.reserve(Direction::East, 105, 10), 120u);
    EXPECT_EQ(r.busyUntil(Direction::East), 120u);
    // A request after the channel frees pays no wait.
    EXPECT_EQ(r.reserve(Direction::East, 300, 5), 305u);
}

TEST(RouterTest, BackToBackReservationsSerializeExactly)
{
    Router r;
    // Five identical packets requested at the same tick occupy the
    // channel back to back: k-th ends at earliest + (k+1) * duration.
    for (unsigned k = 0; k < 5; ++k) {
        EXPECT_EQ(r.reserve(Direction::Local, 50, 7),
                  50u + (k + 1) * 7u);
    }
}

TEST(RouterTest, DirectionsAreIndependentChannels)
{
    Router r;
    r.reserve(Direction::East, 100, 50);
    // The other output links of the same router are unaffected.
    EXPECT_EQ(r.reserve(Direction::West, 100, 10), 110u);
    EXPECT_EQ(r.reserve(Direction::North, 100, 10), 110u);
    EXPECT_EQ(r.busyUntil(Direction::South), 0u);
    r.reset();
    EXPECT_EQ(r.busyUntil(Direction::East), 0u);
}

// ---------------------------------------------------------------
// Deferred routing (the sharded engine's canonical flush path)
// ---------------------------------------------------------------

TEST(MeshTest, MinLatencyTicksIsOneHopWithoutContention)
{
    const MeshParams p = defaultParams();
    // Per hop: routerCycles + linkCycles, in GPU-clock ticks.  This
    // is the sharded engine's conservative lookahead: no message can
    // arrive sooner than one hop after it was sent.
    EXPECT_EQ(p.minLatencyTicks(),
              Tick(p.routerCycles + p.linkCycles) * gpuClockPeriod);

    EventQueue eq;
    Mesh mesh(eq, p);
    // The cheapest possible delivery (same node, 1 flit) still takes
    // at least the lookahead.
    const Tick arrival =
        mesh.route(7, 7, 8, MsgClass::Read, /*send_tick=*/1000);
    EXPECT_GE(arrival, 1000 + p.minLatencyTicks());
}

TEST(MeshTest, RouteMatchesSendTimingAndStats)
{
    // route() (used by the Fabric's canonical flush) must charge the
    // same latency, reservations, and flit-hop stats as send().
    EventQueue eqA;
    Mesh meshA(eqA, defaultParams());
    Tick sendArrival = 0;
    meshA.send(0, 3, 17, MsgClass::Writeback,
               [&]() { sendArrival = eqA.curTick(); });
    eqA.run();

    EventQueue eqB;
    Mesh meshB(eqB, defaultParams());
    const Tick routeArrival =
        meshB.route(0, 3, 17, MsgClass::Writeback, 0);

    EXPECT_EQ(routeArrival, sendArrival);
    EXPECT_EQ(meshB.stats().flitHops[unsigned(MsgClass::Writeback)],
              meshA.stats().flitHops[unsigned(MsgClass::Writeback)]);
    EXPECT_EQ(meshB.stats().packets, meshA.stats().packets);
}

TEST(MeshTest, RouteSeesContentionAcrossCalls)
{
    EventQueue eq;
    Mesh mesh(eq, defaultParams());
    const Tick first = mesh.route(0, 1, 64, MsgClass::Read, 0);
    const Tick second = mesh.route(0, 1, 64, MsgClass::Read, 0);
    // Same link at the same tick: the second packet queues behind
    // the first's channel reservation.
    EXPECT_GT(second, first);
}

} // namespace
} // namespace stashsim
