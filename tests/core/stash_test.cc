/**
 * @file
 * Integration tests for the stash: implicit loads, compact transfer,
 * registration, lazy writebacks, AddMap/ChgMap semantics, usage
 * modes, remote requests through the directory, cross-kernel reuse,
 * and the replication optimization.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/stash.hh"
#include "mem/cache.hh"
#include "mem/llc.hh"
#include "mem/main_memory.hh"
#include "noc/mesh.hh"

namespace stashsim
{
namespace
{

/**
 * Testbench: one stash (core 0), one L1 cache (core 1, standing in
 * for a CPU), 16 LLC banks.
 */
class StashBench : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        mesh = std::make_unique<Mesh>(eq, MeshParams{});
        fabric = std::make_unique<Fabric>(*mesh);
        for (NodeId n = 0; n < 16; ++n) {
            backends.push_back(makeMemBackend(MemBackendConfig{}, eq,
                                              mem, gpuClockPeriod));
            llc.push_back(std::make_unique<LlcBank>(
                eq, *fabric, *backends.back(), n,
                LlcBank::Params{}));
            fabric->registerObject(n, Unit::Llc, llc.back().get());
        }
        stash = std::make_unique<Stash>(eq, *fabric, pageTable, 0,
                                        NodeId(0), Stash::Params{});
        fabric->registerObject(NodeId(0), Unit::Stash, stash.get());
        fabric->registerCore(0, NodeId(0));

        tlb = std::make_unique<Tlb>(pageTable, 64);
        cache = std::make_unique<L1Cache>(eq, *fabric, *tlb, 1,
                                          NodeId(1),
                                          L1Cache::Params{});
        fabric->registerObject(NodeId(1), Unit::L1, cache.get());
        fabric->registerCore(1, NodeId(1));
    }

    /** The standard AoS field tile: 4 B of every 64 B object. */
    TileSpec
    aosTile(Addr base, unsigned elements)
    {
        TileSpec t;
        t.globalBase = base;
        t.fieldSize = 4;
        t.objectSize = 64;
        t.rowSize = elements;
        t.strideSize = 0;
        t.numStrides = 1;
        return t;
    }

    void
    initField(Addr base, unsigned elements)
    {
        for (unsigned i = 0; i < elements; ++i)
            mem.writeWord(pageTable.translate(base + i * 64), 100 + i);
    }

    /** Blocking stash word load. */
    std::uint32_t
    stashLoad(LocalAddr a, MapIndex idx)
    {
        std::uint32_t v = 0;
        bool done = false;
        stash->access(a & ~LocalAddr(63),
                      wordBit((a / 4) % wordsPerLine), false, nullptr,
                      idx, [&](const LineData &d) {
                          v = d.w[(a / 4) % wordsPerLine];
                          done = true;
                      });
        eq.run();
        EXPECT_TRUE(done);
        return v;
    }

    void
    stashStore(LocalAddr a, std::uint32_t v, MapIndex idx)
    {
        LineData d;
        d.w[(a / 4) % wordsPerLine] = v;
        bool done = false;
        stash->access(a & ~LocalAddr(63),
                      wordBit((a / 4) % wordsPerLine), true, &d, idx,
                      [&](const LineData &) { done = true; });
        eq.run();
        EXPECT_TRUE(done);
    }

    /** Blocking word load via the peer L1 (the "CPU"). */
    std::uint32_t
    cpuLoad(Addr va)
    {
        std::uint32_t v = 0;
        cache->access(lineBase(va), wordBit(lineWord(va)), false,
                      nullptr, [&](const LineData &d) {
                          v = d.w[lineWord(va)];
                      });
        eq.run();
        return v;
    }

    void
    cpuStore(Addr va, std::uint32_t v)
    {
        LineData d;
        d.w[lineWord(va)] = v;
        cache->access(lineBase(va), wordBit(lineWord(va)), true, &d,
                      [&](const LineData &) {});
        eq.run();
    }

    Counter
    llcFills()
    {
        Counter n = 0;
        for (auto &b : llc)
            n += b->stats().fills;
        return n;
    }

    EventQueue eq;
    MainMemory mem;
    PageTable pageTable;
    std::unique_ptr<Mesh> mesh;
    std::unique_ptr<Fabric> fabric;
    std::vector<std::unique_ptr<MemBackend>> backends;
    std::vector<std::unique_ptr<LlcBank>> llc;
    std::unique_ptr<Stash> stash;
    std::unique_ptr<Tlb> tlb;
    std::unique_ptr<L1Cache> cache;
};

constexpr Addr gbase = 0x200000;

TEST_F(StashBench, FirstLoadImplicitlyFetches)
{
    initField(gbase, 32);
    auto r = stash->addMap(0, aosTile(gbase, 32));
    EXPECT_EQ(stashLoad(0, r.idx), 100u);
    EXPECT_EQ(stash->stats().loadMisses, 1u);
    EXPECT_EQ(stash->probeWord(0), WordState::Valid);
}

TEST_F(StashBench, SubsequentLoadsHitWithoutTranslation)
{
    initField(gbase, 32);
    auto r = stash->addMap(0, aosTile(gbase, 32));
    stashLoad(0, r.idx);
    const Counter xl = stash->stats().translations;
    EXPECT_EQ(stashLoad(0, r.idx), 100u);
    EXPECT_EQ(stash->stats().loadHits, 1u);
    EXPECT_EQ(stash->stats().translations, xl); // no new translation
}

TEST_F(StashBench, CompactStorageMapsStridedFields)
{
    // 32 fields of 64 B objects occupy 128 contiguous stash bytes.
    initField(gbase, 32);
    auto r = stash->addMap(0, aosTile(gbase, 32));
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(stashLoad(LocalAddr(i * 4), r.idx), 100 + i);
}

TEST_F(StashBench, CompactTransferMovesOnlyUsefulWords)
{
    // Each fetched field lives in its own memory line; the response
    // carries exactly one word per line (wordsOnly), so the fills
    // equal the accessed elements, not 16x that.
    initField(gbase, 32);
    auto r = stash->addMap(0, aosTile(gbase, 32));
    stashLoad(0, r.idx);
    EXPECT_EQ(llcFills(), 1u);
}

TEST_F(StashBench, StoreRegistersAndIsRemotelyVisible)
{
    auto r = stash->addMap(0, aosTile(gbase, 32));
    stashStore(0, 777, r.idx);
    EXPECT_EQ(stash->probeWord(0), WordState::Registered);
    // The CPU-side L1 load is forwarded to the stash through the
    // directory's (core, map index) record.
    EXPECT_EQ(cpuLoad(gbase), 777u);
    EXPECT_EQ(stash->stats().remoteHits, 1u);
}

TEST_F(StashBench, CpuProducedDataFlowsIn)
{
    cpuStore(gbase, 55);
    auto r = stash->addMap(0, aosTile(gbase, 32));
    EXPECT_EQ(stashLoad(0, r.idx), 55u);
    EXPECT_EQ(cache->stats().remoteHits, 1u);
}

TEST_F(StashBench, EndKernelKeepsRegisteredDropsValid)
{
    initField(gbase, 32);
    auto r = stash->addMap(0, aosTile(gbase, 32));
    stashLoad(0, r.idx);
    stashStore(4, 9, r.idx);
    stash->endKernel();
    EXPECT_EQ(stash->probeWord(0), WordState::Invalid);
    EXPECT_EQ(stash->probeWord(4), WordState::Registered);
}

TEST_F(StashBench, LazyWritebackOnlyOnReclaim)
{
    auto r = stash->addMap(0, aosTile(gbase, 32));
    stashStore(0, 11, r.idx);
    stash->endThreadBlock(0, 128);
    stash->endKernel();
    // Nothing written back yet: the writeback bit merely arms it.
    EXPECT_EQ(stash->stats().wordsWrittenBack, 0u);
    EXPECT_TRUE(stash->chunkWriteback(0));

    // A new, unrelated mapping claiming the space triggers it.
    auto r2 = stash->addMap(0, aosTile(gbase + 0x10000, 32));
    eq.run();
    (void)r2;
    EXPECT_GE(stash->stats().wordsWrittenBack, 1u);
    EXPECT_EQ(cpuLoad(gbase), 11u); // data survived via the LLC
}

TEST_F(StashBench, TemporaryModeNeedsNoMapping)
{
    stashStore(0, 123, unmappedIndex);
    EXPECT_EQ(stashLoad(0, unmappedIndex), 123u);
    EXPECT_EQ(stash->stats().translations, 0u);
}

TEST_F(StashBench, NonCoherentStoresStayLocal)
{
    mem.writeWord(pageTable.translate(gbase), 5);
    TileSpec t = aosTile(gbase, 32);
    t.isCoherent = false;
    auto r = stash->addMap(0, t);
    stashStore(0, 42, r.idx);
    EXPECT_EQ(stash->probeWord(0), WordState::Valid); // not registered
    // Reclaim discards instead of writing back.
    stash->endThreadBlock(0, 128);
    stash->addMap(0, aosTile(gbase + 0x20000, 32));
    eq.run();
    EXPECT_EQ(cpuLoad(gbase), 5u); // global value untouched
}

TEST_F(StashBench, ChgMapRemapsAndWritesBackOldData)
{
    auto r = stash->addMap(0, aosTile(gbase, 32));
    stashStore(0, 31, r.idx);
    stash->chgMap(r.idx, 0, aosTile(gbase + 0x40000, 32));
    eq.run();
    EXPECT_EQ(cpuLoad(gbase), 31u); // old mapping's dirty data pushed
    EXPECT_EQ(stash->probeWord(0), WordState::Invalid);
}

TEST_F(StashBench, ChgMapCoherentToNonCoherentWritesBack)
{
    TileSpec t = aosTile(gbase, 32);
    auto r = stash->addMap(0, t);
    stashStore(0, 61, r.idx);
    TileSpec nc = t;
    nc.isCoherent = false;
    stash->chgMap(r.idx, 0, nc);
    eq.run();
    EXPECT_EQ(cpuLoad(gbase), 61u);
}

TEST_F(StashBench, CrossKernelReuseSameLocation)
{
    // Kernel 1 writes; kernel 2 maps the same tile at the same stash
    // location: data is served in place — no misses, no writebacks.
    TileSpec t = aosTile(gbase, 32);
    auto r1 = stash->addMap(0, t);
    for (unsigned i = 0; i < 32; ++i)
        stashStore(LocalAddr(i * 4), 500 + i, r1.idx);
    stash->endThreadBlock(0, 128);
    stash->endKernel();

    auto r2 = stash->addMap(0, t);
    eq.run();
    const Counter misses = stash->stats().loadMisses;
    const Counter wb = stash->stats().wordsWrittenBack;
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(stashLoad(LocalAddr(i * 4), r2.idx), 500 + i);
    EXPECT_EQ(stash->stats().loadMisses, misses);
    EXPECT_EQ(stash->stats().wordsWrittenBack, wb);
}

TEST_F(StashBench, ReplicationServesFromOlderCopy)
{
    // The same tile mapped at a different stash location: misses are
    // served by a local copy (Section 4.5), not the memory system.
    initField(gbase, 32);
    TileSpec t = aosTile(gbase, 32);
    auto r1 = stash->addMap(0, t);
    for (unsigned i = 0; i < 32; ++i)
        stashLoad(LocalAddr(i * 4), r1.idx);
    stash->endThreadBlock(0, 128);
    stash->endKernel(); // valid words drop...

    auto r1b = stash->addMap(0, t); // ...so re-fetch once more
    for (unsigned i = 0; i < 32; ++i)
        stashLoad(LocalAddr(i * 4), r1b.idx);

    const Counter fills = llcFills();
    auto r2 = stash->addMap(1024, t);
    EXPECT_EQ(stashLoad(1024, r2.idx), 100u);
    EXPECT_GE(stash->stats().replicationHits, 1u);
    EXPECT_EQ(llcFills(), fills); // no new memory traffic
}

TEST_F(StashBench, ReplicationDisabledByConfig)
{
    Stash::Params p;
    p.replicationOpt = false;
    Stash s2(eq, *fabric, pageTable, 2, NodeId(2), p);
    fabric->registerObject(NodeId(2), Unit::Stash, &s2);
    fabric->registerCore(2, NodeId(2));

    initField(gbase, 32);
    TileSpec t = aosTile(gbase, 32);
    auto r1 = s2.addMap(0, t);
    EXPECT_FALSE(s2.mapTable().entry(r1.idx).reuseBit);
    auto r2 = s2.addMap(1024, t);
    EXPECT_FALSE(s2.mapTable().entry(r2.idx).reuseBit);
}

TEST_F(StashBench, RegistrationStealInvalidatesStashCopy)
{
    auto r = stash->addMap(0, aosTile(gbase, 32));
    stashStore(0, 1, r.idx);
    cpuStore(gbase, 2); // the CPU takes ownership
    eq.run();
    EXPECT_EQ(stash->probeWord(0), WordState::Invalid);
    EXPECT_EQ(stashLoad(0, r.idx), 2u); // re-fetched, forwarded
}

TEST_F(StashBench, MapReplacementDrainsDirtyData)
{
    // Exhaust the 64-entry circular map so the first entry (with
    // armed writebacks) is replaced; its data must reach the LLC.
    TileSpec t0 = aosTile(gbase, 32);
    auto r0 = stash->addMap(0, t0);
    stashStore(0, 314, r0.idx);
    stash->endThreadBlock(0, 128);
    stash->releaseMap(r0.idx);
    stash->endKernel();

    for (unsigned i = 0; i < 64; ++i) {
        // Distinct tiles, rotating through distinct stash space; all
        // beyond the first chunk so the armed chunk 0 survives until
        // entry replacement itself drains it.
        auto r = stash->addMap(
            LocalAddr(1024 + (i % 8) * 1024),
            aosTile(gbase + 0x100000 + i * 0x4000, 32));
        stash->releaseMap(r.idx);
        eq.run();
    }
    EXPECT_EQ(cpuLoad(gbase), 314u);
}

TEST_F(StashBench, AddMapValidatesArguments)
{
    EXPECT_THROW(stash->addMap(3, aosTile(gbase, 32)), // misaligned
                 std::runtime_error);
    TileSpec bad = aosTile(gbase, 32);
    bad.fieldSize = 0;
    EXPECT_THROW(stash->addMap(0, bad), std::runtime_error);
    TileSpec huge = aosTile(gbase, 16 * 1024);
    EXPECT_THROW(stash->addMap(0, huge), std::runtime_error);
}

/** Parameterized sweep: loads/stores across tile geometries. */
struct StashShape
{
    unsigned fieldWords;
    unsigned objectBytes;
    unsigned elements;
};

class StashShapes : public StashBench,
                    public ::testing::WithParamInterface<StashShape>
{
};

TEST_P(StashShapes, RoundTripThroughMemory)
{
    const StashShape &s = GetParam();
    TileSpec t;
    t.globalBase = gbase;
    t.fieldSize = s.fieldWords * 4;
    t.objectSize = s.objectBytes;
    t.rowSize = s.elements;
    t.strideSize = 0;
    t.numStrides = 1;

    auto r = stash->addMap(0, t);
    for (unsigned i = 0; i < t.mappedBytes() / 4; ++i)
        stashStore(LocalAddr(i * 4), 9000 + i, r.idx);
    stash->endThreadBlock(0, t.mappedBytes());
    stash->flushAll();
    eq.run();

    for (unsigned i = 0; i < t.mappedBytes() / 4; ++i) {
        const std::uint32_t off = i * 4;
        const Addr ga = t.globalAddrOf(off);
        EXPECT_EQ(cpuLoad(ga), 9000 + i) << "word " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StashShapes,
    ::testing::Values(StashShape{1, 64, 32},   // classic AoS field
                      StashShape{1, 4, 256},   // dense array
                      StashShape{2, 32, 64},   // two-word field
                      StashShape{4, 16, 64},   // whole object
                      StashShape{1, 128, 16})); // sparse objects

} // namespace
} // namespace stashsim
