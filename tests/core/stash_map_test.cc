/**
 * @file
 * Unit tests for the stash-map circular buffer.
 */

#include <gtest/gtest.h>

#include "core/stash_map.hh"

namespace stashsim
{
namespace
{

TileSpec
tileAt(Addr base)
{
    TileSpec t;
    t.globalBase = base;
    t.fieldSize = 4;
    t.objectSize = 64;
    t.rowSize = 128;
    t.strideSize = 0;
    t.numStrides = 1;
    return t;
}

TEST(StashMapTest, AllocatesInFifoOrder)
{
    StashMap m(8);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(m.advanceTail(), MapIndex(i));
    // Wraps back to the start.
    EXPECT_EQ(m.advanceTail(), MapIndex(0));
}

TEST(StashMapTest, SkipsPinnedEntriesOnWrap)
{
    StashMap m(4);
    for (unsigned i = 0; i < 4; ++i) {
        const MapIndex idx = m.advanceTail();
        m.entry(idx).valid = true;
        m.entry(idx).pinned = (idx == 1); // entry 1 stays live
    }
    EXPECT_EQ(m.advanceTail(), MapIndex(0));
    EXPECT_EQ(m.advanceTail(), MapIndex(2)); // 1 skipped
    EXPECT_EQ(m.advanceTail(), MapIndex(3));
}

TEST(StashMapTest, AllPinnedIsFatal)
{
    StashMap m(2);
    for (unsigned i = 0; i < 2; ++i) {
        const MapIndex idx = m.advanceTail();
        m.entry(idx).pinned = true;
    }
    EXPECT_THROW(m.advanceTail(), std::runtime_error);
}

TEST(StashMapTest, FindMatchReturnsNewestFirst)
{
    StashMap m(8);
    const TileSpec tile = tileAt(0x1000);

    const MapIndex a = m.advanceTail();
    m.entry(a).valid = true;
    m.entry(a).tile = tile;
    m.entry(a).stashBase = 0;

    const MapIndex b = m.advanceTail();
    m.entry(b).valid = true;
    m.entry(b).tile = tile;
    m.entry(b).stashBase = 1024;

    auto match = m.findMatch(tile);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(*match, b); // the fresher replica wins
}

TEST(StashMapTest, FindMatchIgnoresInvalidAndForeignTiles)
{
    StashMap m(8);
    const MapIndex a = m.advanceTail();
    m.entry(a).valid = false;
    m.entry(a).tile = tileAt(0x1000);
    EXPECT_FALSE(m.findMatch(tileAt(0x1000)).has_value());
    EXPECT_FALSE(m.findMatch(tileAt(0x2000)).has_value());
}

TEST(StashMapTest, NumValidCounts)
{
    StashMap m(8);
    EXPECT_EQ(m.numValid(), 0u);
    m.entry(m.advanceTail()).valid = true;
    m.entry(m.advanceTail()).valid = true;
    EXPECT_EQ(m.numValid(), 2u);
}

} // namespace
} // namespace stashsim
