/**
 * @file
 * Unit tests for the VP-map (stash TLB + RTLB).
 */

#include <gtest/gtest.h>

#include "core/vp_map.hh"

namespace stashsim
{
namespace
{

TEST(VpMapTest, InstallThenTranslate)
{
    PageTable pt;
    VpMap vp(pt, 64);
    vp.install(0x10000, 3);
    const PhysAddr pa = vp.translate(0x10004, 3);
    EXPECT_EQ(pa, pt.translate(0x10004));
}

TEST(VpMapTest, ReverseInvertsTranslate)
{
    PageTable pt;
    VpMap vp(pt, 64);
    vp.install(0x20000, 1);
    const PhysAddr pa = vp.translate(0x20040, 1);
    Addr va = 0;
    ASSERT_TRUE(vp.reverse(pa, &va));
    EXPECT_EQ(va, 0x20040u);
}

TEST(VpMapTest, ReverseMissesForUninstalledPages)
{
    PageTable pt;
    VpMap vp(pt, 64);
    const PhysAddr pa = pt.translate(0x30000);
    Addr va;
    EXPECT_FALSE(vp.reverse(pa, &va));
}

TEST(VpMapTest, MissInstallsOnDemand)
{
    // Section 4.2: a translation absent at AddMap time is acquired
    // at the subsequent stash miss.
    PageTable pt;
    VpMap vp(pt, 64);
    const PhysAddr pa = vp.translate(0x40008, 5);
    EXPECT_EQ(pa, pt.translate(0x40008));
    Addr va;
    EXPECT_TRUE(vp.reverse(pa, &va)); // now also in the RTLB
}

TEST(VpMapTest, ReleaseDropsOnlyBackpointedEntries)
{
    PageTable pt;
    VpMap vp(pt, 64);
    vp.install(0x10000, 1);
    vp.install(0x20000, 2);
    vp.release(1);
    Addr va;
    EXPECT_FALSE(vp.reverse(pt.translate(0x10000), &va));
    EXPECT_TRUE(vp.reverse(pt.translate(0x20000), &va));
}

TEST(VpMapTest, ReinstallRefreshesBackpointer)
{
    // A newer mapping takes over the translation; releasing the old
    // mapping must not kill it (the paper's "latest stash-map entry
    // that requires the translation").
    PageTable pt;
    VpMap vp(pt, 64);
    vp.install(0x10000, 1);
    vp.install(0x10000, 2);
    vp.release(1);
    Addr va;
    EXPECT_TRUE(vp.reverse(pt.translate(0x10000), &va));
    vp.release(2);
    EXPECT_FALSE(vp.reverse(pt.translate(0x10000), &va));
}

TEST(VpMapTest, CapacityReporting)
{
    PageTable pt;
    VpMap vp(pt, 4);
    for (unsigned i = 0; i < 4; ++i)
        vp.install(Addr(i) * pageBytes, 0);
    EXPECT_TRUE(vp.full());
    EXPECT_TRUE(vp.contains(0));
    EXPECT_FALSE(vp.contains(5 * pageBytes));
    EXPECT_EQ(vp.size(), 4u);
}

TEST(VpMapTest, CountsAccesses)
{
    PageTable pt;
    VpMap vp(pt, 64);
    vp.install(0x10000, 0);
    vp.translate(0x10000, 0);
    Addr va;
    vp.reverse(pt.translate(0x10000), &va);
    EXPECT_EQ(vp.accesses(), 2u);
}

} // namespace
} // namespace stashsim
