/**
 * @file
 * Schema checks for the stashbench JSON artifacts: fig5 and fig6 run
 * at smoke scale through the exact benchlib code path behind
 * `stashbench --quick`, and the emitted documents are validated
 * field by field after a serialize/parse round trip.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "benches.hh"
#include "driver/sample.hh"
#include "mem/backend/mem_backend.hh"
#include "workloads/workload_factory.hh"

namespace stashbench
{
namespace
{

using report::JsonValue;

JsonValue
runBenchThroughFile(const char *name)
{
    const BenchInfo *bench = findBench(name);
    EXPECT_NE(bench, nullptr);
    BenchContext ctx;
    ctx.scale = workloads::Scale::Smoke;
    JsonValue doc = bench->run(ctx);

    // Round-trip through a file exactly as the CLI writes it.
    const std::string path = ::testing::TempDir() +
                             "/BENCH_test_" + name + ".json";
    {
        std::ofstream os(path);
        doc.write(os);
        os << "\n";
    }
    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    JsonValue back;
    std::string err;
    EXPECT_TRUE(JsonValue::parse(ss.str(), back, err)) << err;
    EXPECT_EQ(back.dump(), doc.dump());
    return back;
}

void
checkRunObject(const JsonValue &run)
{
    ASSERT_TRUE(run.isObject());
    ASSERT_NE(run.find("workload"), nullptr);
    ASSERT_NE(run.find("config"), nullptr);
    ASSERT_NE(run.find("label"), nullptr);
    ASSERT_NE(run.find("validated"), nullptr);
    EXPECT_TRUE(run.find("validated")->asBool())
        << run.find("label")->asString();
    ASSERT_NE(run.find("errors"), nullptr);
    EXPECT_TRUE(run.find("errors")->isArray());
    EXPECT_EQ(run.find("errors")->size(), 0u);
    ASSERT_NE(run.find("gpuCycles"), nullptr);
    EXPECT_GT(run.find("gpuCycles")->asNumber(), 0);
    ASSERT_NE(run.find("instructions"), nullptr);
    EXPECT_GT(run.find("instructions")->asNumber(), 0);

    const JsonValue *energy = run.find("energy");
    ASSERT_NE(energy, nullptr);
    double sum = 0;
    for (const char *part : {"gpuCore", "l1", "local", "l2", "noc"}) {
        ASSERT_NE(energy->find(part), nullptr) << part;
        sum += energy->find(part)->asNumber();
    }
    EXPECT_NEAR(energy->find("total")->asNumber(), sum,
                1e-9 * (1 + sum));

    const JsonValue *flits = run.find("flitHops");
    ASSERT_NE(flits, nullptr);
    double fsum = 0;
    for (const char *part : {"read", "write", "writeback"}) {
        ASSERT_NE(flits->find(part), nullptr) << part;
        fsum += flits->find(part)->asNumber();
    }
    EXPECT_EQ(flits->find("total")->asNumber(), fsum);

    // Deterministic SimPerf counters (no host timings in bench docs).
    const JsonValue *perf = run.find("perf");
    ASSERT_NE(perf, nullptr);
    ASSERT_NE(perf->find("events"), nullptr);
    EXPECT_GT(perf->find("events")->asNumber(), 0);
    ASSERT_NE(perf->find("simTicks"), nullptr);
    EXPECT_GT(perf->find("simTicks")->asNumber(), 0);
    EXPECT_EQ(perf->find("hostSeconds"), nullptr);
}

void
checkFigureDoc(const JsonValue &doc, const char *bench,
               std::size_t num_workloads, std::size_t num_configs)
{
    EXPECT_EQ(doc.find("schema")->asString(), "stashsim-bench-v1");
    EXPECT_EQ(doc.find("bench")->asString(), bench);
    EXPECT_FALSE(doc.find("title")->asString().empty());
    EXPECT_EQ(doc.find("scale")->asString(), "smoke");
    EXPECT_EQ(doc.find("baseline")->asString(), "Scratch");

    ASSERT_NE(doc.find("workloads"), nullptr);
    EXPECT_EQ(doc.find("workloads")->size(), num_workloads);
    ASSERT_NE(doc.find("configs"), nullptr);
    EXPECT_EQ(doc.find("configs")->size(), num_configs);

    const JsonValue *runs = doc.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_TRUE(runs->isArray());
    ASSERT_EQ(runs->size(), num_workloads * num_configs);
    for (std::size_t i = 0; i < runs->size(); ++i)
        checkRunObject(runs->at(i));
    EXPECT_TRUE(allRunsValidated(doc));

    // Every (workload, config) pair appears exactly once.
    std::set<std::string> labels;
    for (std::size_t i = 0; i < runs->size(); ++i)
        labels.insert(runs->at(i).find("label")->asString());
    EXPECT_EQ(labels.size(), runs->size());
}

TEST(StashbenchSchemaTest, Fig5DocumentIsValid)
{
    checkFigureDoc(runBenchThroughFile("fig5"), "fig5", 4, 4);
}

TEST(StashbenchSchemaTest, Fig6DocumentIsValid)
{
    checkFigureDoc(runBenchThroughFile("fig6"), "fig6", 7, 5);
}

TEST(StashbenchSchemaTest, BenchListHasUniqueNamesAndRunners)
{
    std::set<std::string> names;
    for (const BenchInfo &b : benchList()) {
        EXPECT_NE(b.run, nullptr) << b.name;
        EXPECT_TRUE(names.insert(b.name).second)
            << "duplicate: " << b.name;
    }
    EXPECT_NE(names.count("fig5"), 0u);
    EXPECT_NE(names.count("fig6"), 0u);
    EXPECT_NE(names.count("table3"), 0u);
}

TEST(StashbenchSchemaTest, SimperfCollectorEmitsAggregateDocument)
{
    const BenchInfo *bench = findBench("fig5");
    ASSERT_NE(bench, nullptr);
    SimperfCollector simperf;
    BenchContext ctx;
    ctx.scale = workloads::Scale::Smoke;
    ctx.simperf = &simperf;
    bench->run(ctx);

    const JsonValue doc = simperf.toJson("smoke", 1.5);
    EXPECT_EQ(doc.find("schema")->asString(), "stashsim-simperf-v1");
    EXPECT_EQ(doc.find("scale")->asString(), "smoke");
    EXPECT_EQ(doc.find("wallSeconds")->asNumber(), 1.5);

    const JsonValue *benches = doc.find("benches");
    ASSERT_NE(benches, nullptr);
    ASSERT_TRUE(benches->isArray());
    ASSERT_EQ(benches->size(), 1u);
    const JsonValue &row = benches->at(0);
    EXPECT_EQ(row.find("bench")->asString(), "fig5");
    EXPECT_GT(row.find("runs")->asNumber(), 0);
    EXPECT_GT(row.find("events")->asNumber(), 0);
    EXPECT_GT(row.find("simTicks")->asNumber(), 0);
    EXPECT_GE(row.find("hostSeconds")->asNumber(), 0);
    EXPECT_GE(row.find("eventsPerSec")->asNumber(), 0);

    const JsonValue *totals = doc.find("totals");
    ASSERT_NE(totals, nullptr);
    EXPECT_EQ(totals->find("events")->asNumber(),
              row.find("events")->asNumber());
    EXPECT_EQ(totals->find("runs")->asNumber(),
              row.find("runs")->asNumber());
    EXPECT_GE(totals->find("eventsPerSec")->asNumber(), 0);
    EXPECT_GE(totals->find("ticksPerHostSec")->asNumber(), 0);
}

TEST(StashbenchSchemaTest, SynthDocumentIsValid)
{
    const JsonValue doc = runBenchThroughFile("synth");
    EXPECT_EQ(doc.find("schema")->asString(), "stashsim-bench-v1");
    EXPECT_EQ(doc.find("bench")->asString(), "synth");
    // No hand-tuned scratchpad layout exists for generated traffic,
    // so the synth bench normalizes to Cache, not Scratch.
    EXPECT_EQ(doc.find("baseline")->asString(), "Cache");
    ASSERT_NE(doc.find("workloads"), nullptr);
    ASSERT_EQ(doc.find("workloads")->size(), 6u);
    ASSERT_NE(doc.find("configs"), nullptr);
    ASSERT_EQ(doc.find("configs")->size(), 3u);

    const JsonValue *runs = doc.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->size(), 18u);
    std::size_t with_params = 0;
    for (std::size_t i = 0; i < runs->size(); ++i) {
        checkRunObject(runs->at(i));
        const JsonValue *params = runs->at(i).find("params");
        if (!params)
            continue;
        ++with_params;
        EXPECT_NE(params->find("roPct"), nullptr);
        EXPECT_NE(params->find("rwPct"), nullptr);
    }
    // The three SynthMix parameterizations x three organizations.
    EXPECT_EQ(with_params, 9u);
    EXPECT_TRUE(allRunsValidated(doc));

    for (const char *label :
         {"stashOverCacheCycles", "scratchGDOverCacheCycles"}) {
        const JsonValue *ratios = doc.find(label);
        ASSERT_NE(ratios, nullptr) << label;
        for (std::size_t i = 0; i < doc.find("workloads")->size();
             ++i) {
            const std::string wl =
                doc.find("workloads")->at(i).asString();
            ASSERT_NE(ratios->find(wl), nullptr) << wl;
            EXPECT_GT(ratios->find(wl)->asNumber(), 0) << wl;
        }
        ASSERT_NE(ratios->find("average"), nullptr) << label;
        EXPECT_GT(ratios->find("average")->asNumber(), 0) << label;
    }
}

TEST(StashbenchSchemaTest, ReplayDocumentIsValid)
{
    workloads::TraceData trace;
    std::string err;
    ASSERT_TRUE(workloads::parseTrace(workloads::demoTrace(),
                                      workloads::TraceLimits{}, trace,
                                      err))
        << err;

    BenchContext ctx;
    ctx.scale = workloads::Scale::Smoke;
    const JsonValue doc = runReplayBench(ctx, trace, "demo");
    EXPECT_EQ(doc.find("schema")->asString(), "stashsim-bench-v1");
    EXPECT_EQ(doc.find("bench")->asString(), "replay");
    EXPECT_EQ(doc.find("baseline")->asString(), "Cache");

    const JsonValue *meta = doc.find("trace");
    ASSERT_NE(meta, nullptr);
    EXPECT_EQ(meta->find("source")->asString(), "demo");
    EXPECT_EQ(meta->find("records")->asNumber(),
              double(trace.records()));
    EXPECT_EQ(meta->find("phases")->asNumber(),
              double(trace.phases.size()));
    EXPECT_EQ(meta->find("hash")->asNumber(),
              double(workloads::traceHash(trace) & 0xffffffffu));

    const JsonValue *runs = doc.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->size(), 3u);
    for (std::size_t i = 0; i < runs->size(); ++i)
        checkRunObject(runs->at(i));
    EXPECT_TRUE(allRunsValidated(doc));
    ASSERT_NE(doc.find("stashOverCacheCycles"), nullptr);
    EXPECT_GT(doc.find("stashOverCacheCycles")
                  ->find("TraceReplay")
                  ->asNumber(),
              0);
}

TEST(StashbenchSchemaTest, BenchListCarriesScalesAndDescriptions)
{
    for (const BenchInfo &b : benchList()) {
        ASSERT_NE(b.scales, nullptr) << b.name;
        EXPECT_NE(b.scales[0], '\0') << b.name;
        ASSERT_NE(b.desc, nullptr) << b.name;
        EXPECT_NE(b.desc[0], '\0') << b.name;
    }
    // table3 runs no simulation and thus has no scales.
    EXPECT_STREQ(findBench("table3")->scales, "-");
}

TEST(StashbenchSchemaTest, InventoryDocumentMatchesBenchList)
{
    const JsonValue doc = benchInventoryJson();
    EXPECT_EQ(doc.find("schema")->asString(),
              "stashsim-benchlist-v1");

    const JsonValue *benches = doc.find("benches");
    ASSERT_NE(benches, nullptr);
    ASSERT_TRUE(benches->isArray());
    ASSERT_EQ(benches->size(), benchList().size());

    std::set<std::string> names;
    for (std::size_t i = 0; i < benches->size(); ++i) {
        const JsonValue &row = benches->at(i);
        ASSERT_NE(row.find("name"), nullptr);
        const std::string name = row.find("name")->asString();
        EXPECT_TRUE(names.insert(name).second)
            << "duplicate: " << name;
        EXPECT_FALSE(row.find("title")->asString().empty()) << name;
        EXPECT_FALSE(row.find("description")->asString().empty())
            << name;
        ASSERT_NE(row.find("scales"), nullptr) << name;
        EXPECT_TRUE(row.find("scales")->isArray()) << name;
        if (name == "fig5") {
            const JsonValue *scales = row.find("scales");
            ASSERT_EQ(scales->size(), 3u);
            EXPECT_EQ(scales->at(0).asString(), "smoke");
            EXPECT_EQ(scales->at(1).asString(), "quick");
            EXPECT_EQ(scales->at(2).asString(), "full");
        }
        if (name == "table3") { // analytic table: runs no simulation
            EXPECT_EQ(row.find("scales")->size(), 0u);
        }
    }
    EXPECT_NE(names.count("fig5"), 0u);
    EXPECT_NE(names.count("table3"), 0u);
    EXPECT_NE(names.count("memback"), 0u);

    // The --backend choices ride in the same inventory document.
    const JsonValue *backends = doc.find("backends");
    ASSERT_NE(backends, nullptr);
    ASSERT_TRUE(backends->isArray());
    ASSERT_EQ(backends->size(), memBackendList().size());
    std::set<std::string> backendNames;
    for (std::size_t i = 0; i < backends->size(); ++i) {
        const JsonValue &row = backends->at(i);
        ASSERT_NE(row.find("name"), nullptr);
        const std::string name = row.find("name")->asString();
        EXPECT_TRUE(backendNames.insert(name).second)
            << "duplicate: " << name;
        EXPECT_FALSE(row.find("description")->asString().empty())
            << name;
        // Every advertised name must round-trip through the parser
        // the CLI validates --backend with.
        MemBackendKind kind;
        EXPECT_TRUE(memBackendFromName(name, kind)) << name;
        EXPECT_STREQ(memBackendName(kind), name.c_str());
    }
    EXPECT_NE(backendNames.count("fixed"), 0u);
    EXPECT_NE(backendNames.count("sttmram"), 0u);
    EXPECT_NE(backendNames.count("scmcache"), 0u);

    // The runnable-workload inventory rides along (additive field,
    // schema stays v1).
    const JsonValue *wls = doc.find("workloads");
    ASSERT_NE(wls, nullptr);
    ASSERT_TRUE(wls->isArray());
    ASSERT_EQ(wls->size(),
              workloads::WorkloadFactory::instance().list().size());
    std::set<std::string> kinds;
    for (std::size_t i = 0; i < wls->size(); ++i) {
        const JsonValue &row = wls->at(i);
        ASSERT_NE(row.find("name"), nullptr);
        EXPECT_FALSE(row.find("kind")->asString().empty());
        EXPECT_FALSE(row.find("description")->asString().empty());
        kinds.insert(row.find("kind")->asString());
    }
    EXPECT_NE(kinds.count("synthetic"), 0u);
    EXPECT_NE(kinds.count("replay"), 0u);
}

TEST(StashbenchSchemaTest, SimperfDocumentRecordsEngineShape)
{
    const BenchInfo *bench = findBench("fig5");
    ASSERT_NE(bench, nullptr);
    SimperfCollector simperf;
    simperf.shards = 4;
    BenchContext ctx;
    ctx.scale = workloads::Scale::Smoke;
    ctx.shards = 4;
    ctx.simperf = &simperf;
    bench->run(ctx);

    const JsonValue doc = simperf.toJson("smoke", 1.0);
    EXPECT_EQ(doc.find("shards")->asNumber(), 4);
    for (const JsonValue *obj :
         {doc.find("totals"), &doc.find("benches")->at(0)}) {
        const JsonValue *shape = obj->find("queueShape");
        ASSERT_NE(shape, nullptr);
        EXPECT_GT(shape->find("peakLiveEvents")->asNumber(), 0);
        EXPECT_GT(shape->find("poolChunks")->asNumber(), 0);
        EXPECT_GT(shape->find("wheelInserts")->asNumber(), 0);
        ASSERT_NE(shape->find("farInserts"), nullptr);
    }
}

/**
 * The `--shards N` artifact-parity contract at the bench level: the
 * fig5 document produced by the sharded engine must be byte-identical
 * to the serial one (same dump(), hence same file bytes).
 */
TEST(StashbenchParityTest, Fig5ArtifactIsByteIdenticalAcrossEngines)
{
    const BenchInfo *bench = findBench("fig5");
    ASSERT_NE(bench, nullptr);

    BenchContext serialCtx;
    serialCtx.scale = workloads::Scale::Smoke;
    serialCtx.shards = 1;
    const JsonValue serialDoc = bench->run(serialCtx);

    BenchContext shardedCtx;
    shardedCtx.scale = workloads::Scale::Smoke;
    shardedCtx.shards = 4;
    const JsonValue shardedDoc = bench->run(shardedCtx);

    EXPECT_TRUE(allRunsValidated(serialDoc));
    EXPECT_TRUE(allRunsValidated(shardedDoc));
    EXPECT_EQ(serialDoc.dump(), shardedDoc.dump());
}

/**
 * The same parity contract for the seeded synthetic generators: their
 * RNG streams are drawn at build time, so the sharded engine must
 * reproduce the serial document byte for byte.
 */
TEST(StashbenchParityTest, SynthArtifactIsByteIdenticalAcrossEngines)
{
    const BenchInfo *bench = findBench("synth");
    ASSERT_NE(bench, nullptr);

    BenchContext serialCtx;
    serialCtx.scale = workloads::Scale::Smoke;
    serialCtx.shards = 1;
    const JsonValue serialDoc = bench->run(serialCtx);

    BenchContext shardedCtx;
    shardedCtx.scale = workloads::Scale::Smoke;
    shardedCtx.shards = 4;
    const JsonValue shardedDoc = bench->run(shardedCtx);

    EXPECT_TRUE(allRunsValidated(serialDoc));
    EXPECT_TRUE(allRunsValidated(shardedDoc));
    EXPECT_EQ(serialDoc.dump(), shardedDoc.dump());
}

/**
 * The scaling bench's document: its own schema (stashsim-scaling-v1),
 * one run per shard-count candidate {1, 2, 4, ..., min(tiles, hw)},
 * and the parity contract re-checked per point ("validated" includes
 * the sharded-counters-match-serial comparison).  Wall-clock fields
 * are host-dependent, so only their presence and signs are asserted.
 */
TEST(StashbenchSchemaTest, ScalingDocumentIsValid)
{
    const JsonValue doc = runBenchThroughFile("scaling");
    EXPECT_EQ(doc.find("schema")->asString(), "stashsim-scaling-v1");
    EXPECT_EQ(doc.find("bench")->asString(), "scaling");
    EXPECT_EQ(doc.find("scale")->asString(), "smoke");
    EXPECT_EQ(doc.find("config")->asString(), "Stash");
    ASSERT_NE(doc.find("workloads"), nullptr);
    EXPECT_EQ(doc.find("workloads")->size(), 2u);
    const double tiles = doc.find("tiles")->asNumber();
    EXPECT_GT(tiles, 1);
    const double hw = doc.find("hwThreads")->asNumber();
    EXPECT_GE(hw, 1);

    // Expected candidate count: {1} plus powers of two up to and
    // including min(tiles, hw) when that exceeds 1.
    const unsigned maxK =
        unsigned(std::min(tiles, hw) < 1 ? 1 : std::min(tiles, hw));
    std::size_t expect = 1;
    for (unsigned k = 2; k < maxK; k *= 2)
        ++expect;
    if (maxK > 1)
        ++expect;

    const JsonValue *runs = doc.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_TRUE(runs->isArray());
    ASSERT_EQ(runs->size(), expect);
    for (std::size_t i = 0; i < runs->size(); ++i) {
        const JsonValue &point = runs->at(i);
        ASSERT_NE(point.find("shards"), nullptr);
        EXPECT_TRUE(point.find("validated")->asBool())
            << "shards=" << point.find("shards")->asNumber();
        EXPECT_GT(point.find("events")->asNumber(), 0);
        EXPECT_GT(point.find("simTicks")->asNumber(), 0);
        EXPECT_GT(point.find("hostSeconds")->asNumber(), 0);
        EXPECT_GT(point.find("eventsPerSec")->asNumber(), 0);
        ASSERT_NE(point.find("quanta"), nullptr);
        ASSERT_NE(point.find("quantaPerSec"), nullptr);
        EXPECT_GT(point.find("speedup")->asNumber(), 0);

        const JsonValue *eng = point.find("engine");
        ASSERT_NE(eng, nullptr);
        for (const char *f :
             {"execNs", "barrierWaitNs", "flushNs", "quanta"})
            ASSERT_NE(eng->find(f), nullptr) << f;
        ASSERT_NE(point.find("lanes"), nullptr);
        EXPECT_TRUE(point.find("lanes")->isArray());

        const JsonValue *perWl = point.find("perWorkload");
        ASSERT_NE(perWl, nullptr);
        ASSERT_EQ(perWl->size(), 2u);
        for (std::size_t w = 0; w < perWl->size(); ++w) {
            EXPECT_TRUE(perWl->at(w).find("validated")->asBool());
            EXPECT_GT(perWl->at(w).find("events")->asNumber(), 0);
        }
    }
    // The first point is the serial reference, its own speedup unit.
    EXPECT_EQ(runs->at(0).find("shards")->asNumber(), 1);
    EXPECT_DOUBLE_EQ(runs->at(0).find("speedup")->asNumber(), 1.0);
}

/**
 * Benches excluded from the deterministic default artifact set: the
 * scaling bench (host wall-clock) and the synthspace bench (keeps
 * farm/sample state under --out).  Every other bench still defaults.
 */
TEST(StashbenchSchemaTest, ScalingBenchIsExplicitOnly)
{
    const std::set<std::string> explicitOnly = {"scaling",
                                               "synthspace"};
    for (const std::string &name : explicitOnly) {
        const BenchInfo *b = findBench(name);
        ASSERT_NE(b, nullptr) << name;
        EXPECT_FALSE(b->defaultRun) << name;
    }
    std::size_t defaulted = 0;
    for (const BenchInfo &b : benchList()) {
        if (b.defaultRun)
            ++defaulted;
        else
            EXPECT_NE(explicitOnly.count(b.name), 0u) << b.name;
    }
    EXPECT_EQ(defaulted, benchList().size() - explicitOnly.size());
}

/**
 * The stashsim-sample-v1 document behind `stashbench --sample`: the
 * provenance block names the one warm checkpoint every interval
 * restored, the deltas array mirrors the request, and every run
 * object carries the standard bench fields plus delta/truncated.
 */
TEST(StashbenchSchemaTest, SampleDocumentIsValid)
{
    const std::string dir =
        ::testing::TempDir() + "bench_sample_schema";
    std::filesystem::remove_all(dir);

    SampleRequest req;
    req.workload = "Reuse";
    req.org = MemOrg::Stash;
    req.scale = workloads::Scale::Smoke;
    req.stateDir = dir;
    req.threads = 1;
    std::string err;
    ASSERT_TRUE(parseSampleDeltas("identity,local:32,org:Cache",
                                  req.deltas, err))
        << err;
    const SampleOutcome out = runSample(req);
    JsonValue doc = sampleToJson(req, out);

    // Round-trip through a file exactly as the CLI writes it.
    const std::string path = dir + "/BENCH_sample.json";
    {
        std::ofstream os(path);
        doc.write(os);
        os << "\n";
    }
    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    JsonValue back;
    ASSERT_TRUE(JsonValue::parse(ss.str(), back, err)) << err;
    EXPECT_EQ(back.dump(), doc.dump());

    EXPECT_EQ(back.find("schema")->asString(), "stashsim-sample-v1");
    EXPECT_EQ(back.find("bench")->asString(), "sample");
    EXPECT_FALSE(back.find("title")->asString().empty());
    EXPECT_EQ(back.find("scale")->asString(), "smoke");
    EXPECT_EQ(back.find("workload")->asString(), "Reuse");
    EXPECT_EQ(back.find("baseConfig")->asString(), "Stash");
    EXPECT_EQ(back.find("intervalPhases")->asNumber(), 0);

    const JsonValue *prov = back.find("sampledFrom");
    ASSERT_NE(prov, nullptr);
    EXPECT_NE(prov->find("checkpoint")->asString().find("WARM_"),
              std::string::npos);
    EXPECT_EQ(prov->find("workload")->asString(), "Reuse");
    EXPECT_EQ(prov->find("config")->asString(), "Stash");
    EXPECT_GT(prov->find("tick")->asNumber(), 0);
    EXPECT_EQ(prov->find("phaseCursor")->asNumber(),
              prov->find("warmupPhases")->asNumber());
    // The hash identity is rendered as hex strings (u64-safe).
    EXPECT_EQ(prov->find("configHash")->asString().rfind("0x", 0),
              0u);
    EXPECT_EQ(prov->find("baseHash")->asString().rfind("0x", 0), 0u);

    const JsonValue *deltas = back.find("deltas");
    ASSERT_NE(deltas, nullptr);
    ASSERT_EQ(deltas->size(), 3u);
    EXPECT_EQ(deltas->at(0).find("name")->asString(), "identity");
    EXPECT_EQ(deltas->at(0).find("kind")->asString(), "identity");
    EXPECT_EQ(deltas->at(0).find("groups")->size(), 0u);
    EXPECT_TRUE(deltas->at(0).find("declared")->asBool());
    EXPECT_EQ(deltas->at(1).find("groups")->at(0).asString(), "gpu");
    EXPECT_EQ(deltas->at(2).find("name")->asString(), "org:Cache");

    const JsonValue *runs = back.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->size(), 3u);
    for (std::size_t i = 0; i < runs->size(); ++i) {
        checkRunObject(runs->at(i));
        const JsonValue &run = runs->at(i);
        EXPECT_EQ(run.find("delta")->asString(),
                  deltas->at(i).find("name")->asString());
        ASSERT_NE(run.find("truncated"), nullptr);
        EXPECT_FALSE(run.find("truncated")->asBool())
            << "intervalPhases=0 runs each interval to completion";
    }
    EXPECT_TRUE(allRunsValidated(back));
    // The delta'd orgs land in the run's config field.
    EXPECT_EQ(runs->at(0).find("config")->asString(), "Stash");
    EXPECT_EQ(runs->at(2).find("config")->asString(), "Cache");
}

/**
 * The synthspace bench: stashsim-bench-v1 with sampling provenance
 * per mix point — 5 points x 3 deltas, each point warmed exactly
 * once (the per-point sampledFrom blocks name their checkpoints).
 */
TEST(StashbenchSchemaTest, SynthspaceDocumentIsValid)
{
    const std::string dir =
        ::testing::TempDir() + "bench_synthspace_schema";
    std::filesystem::remove_all(dir);

    BenchContext ctx;
    ctx.scale = workloads::Scale::Smoke;
    ctx.stateDir = dir;
    const BenchInfo *bench = findBench("synthspace");
    ASSERT_NE(bench, nullptr);
    const JsonValue doc = bench->run(ctx);

    EXPECT_EQ(doc.find("schema")->asString(), "stashsim-bench-v1");
    EXPECT_EQ(doc.find("bench")->asString(), "synthspace");
    EXPECT_EQ(doc.find("baseline")->asString(), "Cache");
    ASSERT_NE(doc.find("workloads"), nullptr);
    ASSERT_EQ(doc.find("workloads")->size(), 5u);

    const JsonValue *points = doc.find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_EQ(points->size(), 5u);
    for (std::size_t i = 0; i < points->size(); ++i) {
        const JsonValue &p = points->at(i);
        EXPECT_TRUE(p.find("warmValidated")->asBool());
        const JsonValue *params = p.find("params");
        ASSERT_NE(params, nullptr);
        EXPECT_NE(params->find("roPct"), nullptr);
        EXPECT_NE(params->find("rwPct"), nullptr);
        const JsonValue *prov = p.find("sampledFrom");
        ASSERT_NE(prov, nullptr);
        EXPECT_NE(prov->find("checkpoint")->asString().find("WARM_"),
                  std::string::npos);
        EXPECT_GT(prov->find("tick")->asNumber(), 0);
    }

    const JsonValue *runs = doc.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->size(), 15u);
    for (std::size_t i = 0; i < runs->size(); ++i) {
        checkRunObject(runs->at(i));
        ASSERT_NE(runs->at(i).find("delta"), nullptr);
    }
    EXPECT_TRUE(allRunsValidated(doc));
    for (const char *label :
         {"stashOverCacheCycles", "scratchGDOverCacheCycles"}) {
        const JsonValue *ratios = doc.find(label);
        ASSERT_NE(ratios, nullptr) << label;
        EXPECT_GT(ratios->find("average")->asNumber(), 0) << label;
    }
}

TEST(StashbenchSchemaTest, AllRunsValidatedDetectsFailures)
{
    JsonValue doc = JsonValue::object();
    JsonValue runs = JsonValue::array();
    JsonValue good = JsonValue::object();
    good["validated"] = true;
    runs.push(std::move(good));
    doc["runs"] = std::move(runs);
    EXPECT_TRUE(allRunsValidated(doc));

    JsonValue bad = JsonValue::object();
    bad["validated"] = false;
    doc["runs"].push(std::move(bad));
    EXPECT_FALSE(allRunsValidated(doc));
}

} // namespace
} // namespace stashbench
