/**
 * @file
 * End-to-end tests of the four microbenchmarks across all six memory
 * configurations (scaled down for test time), plus checks of the
 * qualitative relationships the paper's Section 6.2 claims.
 */

#include <gtest/gtest.h>

#include "driver/system.hh"
#include "workloads/microbench.hh"

namespace stashsim
{
namespace
{

using workloads::MicrobenchConfig;

MicrobenchConfig
smallConfig(MemOrg org)
{
    MicrobenchConfig mb;
    mb.org = org;
    mb.implicitElements = 2048;
    mb.pollutionElementsA = 4096;
    mb.pollutionWordsB = 1024;
    mb.onDemandElements = 2048;
    mb.reuseElements = 1024;
    mb.reuseKernels = 4;
    return mb;
}

RunResult
runMicro(const std::string &name, MemOrg org)
{
    SystemConfig cfg = SystemConfig::microbenchmarkDefault();
    cfg.memOrg = org;
    System sys(cfg);
    return sys.run(
        workloads::makeMicrobenchmark(name, smallConfig(org)));
}

/** Every (benchmark, configuration) pair must validate. */
class MicrobenchAllConfigs
    : public ::testing::TestWithParam<std::tuple<std::string, MemOrg>>
{
};

TEST_P(MicrobenchAllConfigs, ValidatesEndToEnd)
{
    const auto &[name, org] = GetParam();
    RunResult r = runMicro(name, org);
    EXPECT_TRUE(r.validated)
        << name << "/" << memOrgName(org) << ": "
        << (r.errors.empty() ? "validator failed" : r.errors[0]);
    EXPECT_GT(r.gpuCycles, 0u);
    EXPECT_GT(r.stats.gpu.instructions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MicrobenchAllConfigs,
    ::testing::Combine(
        ::testing::Values("Implicit", "Pollution", "On-demand",
                          "Reuse"),
        ::testing::Values(MemOrg::Scratch, MemOrg::ScratchG,
                          MemOrg::ScratchGD, MemOrg::Cache,
                          MemOrg::Stash, MemOrg::StashG)),
    [](const auto &info) {
        return std::get<0>(info.param) == "On-demand"
                   ? std::string("OnDemand") +
                         memOrgName(std::get<1>(info.param))
                   : std::get<0>(info.param) +
                         memOrgName(std::get<1>(info.param));
    });

// --- Section 6.2 qualitative claims -------------------------------

TEST(MicrobenchClaims, ImplicitStashExecutesFewerInstructions)
{
    RunResult scratch = runMicro("Implicit", MemOrg::Scratch);
    RunResult stash = runMicro("Implicit", MemOrg::Stash);
    // "Stash executes 40% fewer instructions than Scratch".
    EXPECT_LT(stash.stats.gpu.instructions,
              scratch.stats.gpu.instructions * 0.7);
    EXPECT_LT(stash.gpuCycles, scratch.gpuCycles);
    EXPECT_LT(stash.energy.total(), scratch.energy.total());
}

TEST(MicrobenchClaims, PollutionStashKeepsArrayBCacheResident)
{
    RunResult scratch = runMicro("Pollution", MemOrg::Scratch);
    RunResult stash = runMicro("Pollution", MemOrg::Stash);
    // The stash transfers A without touching the L1, so B's hit
    // rate recovers.
    const double scratch_hr =
        double(scratch.stats.gpuL1.hits()) /
        double(scratch.stats.gpuL1.accesses());
    const double stash_hr = double(stash.stats.gpuL1.hits()) /
                            double(stash.stats.gpuL1.accesses());
    EXPECT_GT(stash_hr, scratch_hr + 0.2);
    EXPECT_LT(stash.energy.total(), scratch.energy.total());
}

TEST(MicrobenchClaims, OnDemandStashMovesOnlyAccessedData)
{
    RunResult scratch = runMicro("On-demand", MemOrg::Scratch);
    RunResult dma = runMicro("On-demand", MemOrg::ScratchGD);
    RunResult stash = runMicro("On-demand", MemOrg::Stash);
    // Scratchpad and DMA conservatively move every element; the
    // stash moves ~1/32 of them.
    EXPECT_LT(stash.stats.noc.totalFlitHops(),
              scratch.stats.noc.totalFlitHops() / 2);
    EXPECT_LT(stash.stats.noc.totalFlitHops(),
              dma.stats.noc.totalFlitHops() / 2);
    EXPECT_LT(stash.energy.total(), scratch.energy.total());
    EXPECT_LT(stash.energy.total(), dma.energy.total());
}

TEST(MicrobenchClaims, ReuseStashAvoidsRetransferAcrossKernels)
{
    // Run at the paper's scale: the reused fields exactly fill the
    // 16 KB stash, so successive kernels remap the same locations.
    auto run_full = [](MemOrg org) {
        SystemConfig cfg = SystemConfig::microbenchmarkDefault();
        cfg.memOrg = org;
        MicrobenchConfig mb;
        mb.org = org;
        System sys(cfg);
        return sys.run(workloads::makeReuse(mb));
    };
    RunResult scratch = run_full(MemOrg::Scratch);
    RunResult dma = run_full(MemOrg::ScratchGD);
    RunResult stash = run_full(MemOrg::Stash);
    // Scratchpad/DMA re-transfer every kernel; the stash keeps the
    // data registered across kernels.
    EXPECT_LT(stash.stats.noc.totalFlitHops(),
              scratch.stats.noc.totalFlitHops() / 2);
    EXPECT_LT(stash.stats.noc.totalFlitHops(),
              dma.stats.noc.totalFlitHops() / 2);
    EXPECT_LT(stash.gpuCycles, scratch.gpuCycles);
    EXPECT_LT(stash.energy.total(), dma.energy.total());
}

TEST(MicrobenchClaims, ReuseCacheThrashesStashFits)
{
    // The fields fit compactly in the 16 KB stash but their lines
    // exceed the 32 KB cache: the cache misses every pass, the stash
    // only on the first.
    RunResult cache = runMicro("Reuse", MemOrg::Cache);
    RunResult stash = runMicro("Reuse", MemOrg::Stash);
    EXPECT_LT(stash.energy.total(), cache.energy.total());
    EXPECT_LT(stash.stats.noc.totalFlitHops(),
              cache.stats.noc.totalFlitHops());
}

TEST(MicrobenchClaims, StashBestOrEqualOnEveryMicrobenchmark)
{
    // Figure 5's headline: the stash outperforms scratchpad and
    // cache on execution time and energy for all four.
    for (const auto &name : workloads::microbenchmarkNames()) {
        RunResult scratch = runMicro(name, MemOrg::Scratch);
        RunResult cache = runMicro(name, MemOrg::Cache);
        RunResult stash = runMicro(name, MemOrg::Stash);
        EXPECT_LE(stash.gpuCycles, scratch.gpuCycles) << name;
        EXPECT_LT(stash.energy.total(), scratch.energy.total())
            << name;
        EXPECT_LT(stash.energy.total(), cache.energy.total()) << name;
    }
}

TEST(MicrobenchClaims, DmaRemovesInstructionsButNotConservatism)
{
    RunResult scratch = runMicro("On-demand", MemOrg::Scratch);
    RunResult dma = runMicro("On-demand", MemOrg::ScratchGD);
    // DMA eliminates the explicit copy instructions...
    EXPECT_LT(dma.stats.gpu.instructions,
              scratch.stats.gpu.instructions);
    // ...but still moves the whole array.
    EXPECT_EQ(dma.stats.dma.wordsLoaded, 2048u);
    EXPECT_EQ(dma.stats.dma.wordsStored, 2048u);
}

} // namespace
} // namespace stashsim
