/**
 * @file
 * End-to-end tests of the seven applications across configurations,
 * scaled down for test time.
 */

#include <gtest/gtest.h>

#include "driver/system.hh"
#include "workloads/apps.hh"

namespace stashsim
{
namespace
{

using workloads::AppConfig;

AppConfig
smallConfig(MemOrg org)
{
    AppConfig ac;
    ac.org = org;
    ac.ludN = 64;
    ac.bpInputBytes = 8 * 1024;
    ac.nwN = 128;
    ac.pfCols = 256 * 16;
    ac.pfRows = 4;
    ac.sgemmM = 32;
    ac.sgemmK = 32;
    ac.sgemmN = 32;
    ac.stencilX = 64;
    ac.stencilY = 64;
    ac.stencilZ = 2;
    ac.stencilIters = 2;
    ac.surfPixels = 128 * 32;
    return ac;
}

RunResult
runApp(const std::string &name, MemOrg org)
{
    SystemConfig cfg = SystemConfig::applicationDefault();
    cfg.memOrg = org;
    System sys(cfg);
    return sys.run(workloads::makeApplication(name, smallConfig(org)));
}

class AppAllConfigs
    : public ::testing::TestWithParam<std::tuple<std::string, MemOrg>>
{
};

TEST_P(AppAllConfigs, RunsToCompletion)
{
    const auto &[name, org] = GetParam();
    RunResult r = runApp(name, org);
    EXPECT_TRUE(r.validated)
        << name << "/" << memOrgName(org)
        << (r.errors.empty() ? "" : (": " + r.errors[0]));
    EXPECT_GT(r.gpuCycles, 0u);
    EXPECT_GT(r.stats.gpu.threadBlocks, 0u);
    // The run must actually exercise the configured local memory.
    if (usesScratchpad(org))
        EXPECT_GT(r.stats.scratch.accesses(), 0u) << name;
    if (usesStash(org))
        EXPECT_GT(r.stats.stash.accesses(), 0u) << name;
    if (org == MemOrg::ScratchGD)
        EXPECT_GT(r.stats.dma.wordsLoaded, 0u) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AppAllConfigs,
    ::testing::Combine(
        ::testing::Values("LUD", "SURF", "BP", "NW", "PF", "SGEMM",
                          "STENCIL"),
        ::testing::Values(MemOrg::Scratch, MemOrg::ScratchGD,
                          MemOrg::Cache, MemOrg::StashG)),
    [](const auto &info) {
        return std::get<0>(info.param) +
               std::string(memOrgName(std::get<1>(info.param)));
    });

TEST(AppClaims, StashReducesInstructionsVsScratch)
{
    // The explicit copy loops disappear in every application.
    for (const auto &name : workloads::applicationNames()) {
        RunResult scratch = runApp(name, MemOrg::Scratch);
        RunResult stash = runApp(name, MemOrg::Stash);
        EXPECT_LT(stash.stats.gpu.instructions,
                  scratch.stats.gpu.instructions)
            << name;
    }
}

TEST(AppClaims, StashGReducesEnergyVsScratchOnAverage)
{
    double ratio_sum = 0;
    for (const auto &name : workloads::applicationNames()) {
        RunResult scratch = runApp(name, MemOrg::Scratch);
        RunResult stashg = runApp(name, MemOrg::StashG);
        ratio_sum += stashg.energy.total() / scratch.energy.total();
    }
    EXPECT_LT(ratio_sum / 7.0, 1.0);
}

TEST(AppClaims, ScratchGIsWorseThanScratchOnAverage)
{
    // Section 6.3: converting reuse-free global accesses to the
    // scratchpad adds instructions and hurts.
    double instr_ratio = 0;
    unsigned n = 0;
    for (const std::string name : {"LUD", "SGEMM", "PF"}) {
        RunResult scratch = runApp(name, MemOrg::Scratch);
        RunResult scratchg = runApp(name, MemOrg::ScratchG);
        instr_ratio += double(scratchg.stats.gpu.instructions) /
                       double(scratch.stats.gpu.instructions);
        ++n;
    }
    EXPECT_GT(instr_ratio / n, 1.0);
}

TEST(AppClaims, PathfinderUsesCrossKernelCommunication)
{
    // Each PF kernel reads the previous kernel's row; with stashes
    // the data is served from registered stash copies (remote or
    // replicated), not re-fetched from memory.
    RunResult stash = runApp("PF", MemOrg::Stash);
    EXPECT_GT(stash.stats.stash.remoteHits +
                  stash.stats.stash.replicationHits +
                  stash.stats.llc.remoteForwards,
              0u);
}

TEST(AppClaims, SgemmExercisesChgMap)
{
    RunResult stash = runApp("SGEMM", MemOrg::Stash);
    EXPECT_GT(stash.stats.stash.chgMaps, 0u);
}

} // namespace
} // namespace stashsim
