/**
 * @file
 * Unit tests for the configuration lowering in TbBuilder: the same
 * portable body must produce the paper's per-configuration code
 * shapes (copy loops, DMA descriptors, AddMaps, global accesses).
 */

#include <gtest/gtest.h>

#include "workloads/kernel_builder.hh"

namespace stashsim
{
namespace
{

TileUse
stagedTile()
{
    TileUse use;
    use.tile.globalBase = 0x1000'0000;
    use.tile.fieldSize = 4;
    use.tile.objectSize = 64;
    use.tile.rowSize = 64;
    use.tile.numStrides = 1;
    use.readIn = true;
    use.writeOut = true;
    return use;
}

unsigned
countOps(const ThreadBlock &tb, OpKind k)
{
    unsigned n = 0;
    for (const auto &w : tb.warps) {
        for (const auto &op : w)
            n += op.kind == k ? 1 : 0;
    }
    return n;
}

ThreadBlock
buildSimple(MemOrg org)
{
    TbBuilder b(org, 2);
    const unsigned t = b.addTile(stagedTile());
    for (unsigned w = 0; w < 2; ++w) {
        b.accessTile(w, t, laneElems(w * 32, 32), false);
        b.compute(w, 1, 1);
        b.accessTile(w, t, laneElems(w * 32, 32), true);
    }
    return b.build();
}

TEST(TbBuilderTest, ScratchGetsCopyLoopsAroundLocalBody)
{
    ThreadBlock tb = buildSimple(MemOrg::Scratch);
    EXPECT_EQ(tb.addMaps.size(), 0u);
    EXPECT_EQ(tb.dmaLoads.size(), 0u);
    // Copy-in: GlobalLd + LocalSt per 32 elements; copy-out mirrors.
    EXPECT_EQ(countOps(tb, OpKind::GlobalLd), 2u);
    EXPECT_EQ(countOps(tb, OpKind::GlobalSt), 2u);
    EXPECT_EQ(countOps(tb, OpKind::LocalLd), 2u + 2u); // body + out
    EXPECT_EQ(countOps(tb, OpKind::LocalSt), 2u + 2u); // in + body
    EXPECT_GT(countOps(tb, OpKind::Barrier), 0u);
    EXPECT_EQ(tb.localBytes, 64u * 4);
}

TEST(TbBuilderTest, ScratchGDGetsDmaDescriptors)
{
    ThreadBlock tb = buildSimple(MemOrg::ScratchGD);
    EXPECT_EQ(tb.dmaLoads.size(), 1u);
    EXPECT_EQ(tb.dmaStores.size(), 1u);
    EXPECT_EQ(countOps(tb, OpKind::GlobalLd), 0u);
    EXPECT_EQ(countOps(tb, OpKind::LocalLd), 2u); // body only
}

TEST(TbBuilderTest, CacheGoesGlobalWithIndexComputes)
{
    ThreadBlock tb = buildSimple(MemOrg::Cache);
    EXPECT_EQ(tb.localBytes, 0u);
    EXPECT_EQ(countOps(tb, OpKind::GlobalLd), 2u);
    EXPECT_EQ(countOps(tb, OpKind::GlobalSt), 2u);
    EXPECT_EQ(countOps(tb, OpKind::LocalLd), 0u);
    // One index-computation instruction per access plus the body's.
    EXPECT_EQ(countOps(tb, OpKind::Compute), 4u + 2u);
}

TEST(TbBuilderTest, StashGetsAddMapAndDirectAccess)
{
    ThreadBlock tb = buildSimple(MemOrg::Stash);
    ASSERT_EQ(tb.addMaps.size(), 1u);
    EXPECT_EQ(tb.addMaps[0].tile.objectSize, 64u);
    EXPECT_EQ(countOps(tb, OpKind::StashLd), 2u);
    EXPECT_EQ(countOps(tb, OpKind::StashSt), 2u);
    EXPECT_EQ(countOps(tb, OpKind::GlobalLd), 0u);
    // No index computes for stash accesses, only the body's.
    EXPECT_EQ(countOps(tb, OpKind::Compute), 2u);
}

TEST(TbBuilderTest, StashExecutesFewerInstructionsThanScratch)
{
    EXPECT_LT(buildSimple(MemOrg::Stash).dynamicInstructions(),
              buildSimple(MemOrg::Scratch).dynamicInstructions());
}

TEST(TbBuilderTest, OriginallyGlobalConvertedOnlyByGVariants)
{
    auto build = [](MemOrg org) {
        TbBuilder b(org, 1);
        TileUse use = stagedTile();
        use.originallyGlobal = true;
        const unsigned t = b.addTile(use);
        b.accessTile(0, t, laneElems(0, 32), false);
        return b.build();
    };
    EXPECT_EQ(countOps(build(MemOrg::Scratch), OpKind::GlobalLd), 1u);
    EXPECT_EQ(countOps(build(MemOrg::Stash), OpKind::GlobalLd), 1u);
    EXPECT_EQ(countOps(build(MemOrg::StashG), OpKind::StashLd), 1u);
    EXPECT_GT(countOps(build(MemOrg::ScratchG), OpKind::LocalSt), 0u);
}

TEST(TbBuilderTest, UnconvertibleStaysGlobalEverywhere)
{
    auto build = [](MemOrg org) {
        TbBuilder b(org, 1);
        TileUse use = stagedTile();
        use.originallyGlobal = true;
        use.convertible = false;
        const unsigned t = b.addTile(use);
        b.accessTile(0, t, laneElems(0, 32), false);
        return b.build();
    };
    for (MemOrg org : {MemOrg::ScratchG, MemOrg::ScratchGD,
                       MemOrg::StashG}) {
        EXPECT_EQ(countOps(build(org), OpKind::GlobalLd), 1u)
            << memOrgName(org);
    }
}

TEST(TbBuilderTest, TemporaryTilesNeverMove)
{
    auto build = [](MemOrg org) {
        TbBuilder b(org, 1);
        TileUse use = stagedTile();
        use.temporary = true;
        const unsigned t = b.addTile(use);
        b.accessTile(0, t, laneElems(0, 32), true);
        return b.build();
    };
    ThreadBlock scratch = build(MemOrg::Scratch);
    EXPECT_EQ(countOps(scratch, OpKind::GlobalLd), 0u);
    EXPECT_EQ(countOps(scratch, OpKind::GlobalSt), 0u);
    ThreadBlock stash = build(MemOrg::Stash);
    EXPECT_EQ(stash.addMaps.size(), 0u); // temporary mode: no AddMap
    EXPECT_EQ(countOps(stash, OpKind::StashSt), 1u);
}

TEST(TbBuilderTest, RestageLowersPerConfiguration)
{
    auto build = [](MemOrg org) {
        TbBuilder b(org, 1);
        TileUse use = stagedTile();
        use.writeOut = false;
        const unsigned t = b.addTile(use);
        b.accessTile(0, t, laneElems(0, 32), false);
        TileSpec next = use.tile;
        next.globalBase += 0x1000;
        b.restage(t, next);
        b.accessTile(0, t, laneElems(0, 32), false);
        return b.build();
    };
    EXPECT_EQ(countOps(build(MemOrg::Stash), OpKind::Remap), 1u);
    EXPECT_EQ(countOps(build(MemOrg::ScratchGD), OpKind::DmaXfer), 1u);
    EXPECT_GT(countOps(build(MemOrg::Scratch), OpKind::GlobalLd), 1u);
    // Cache: the second access simply targets the new addresses.
    ThreadBlock cache = build(MemOrg::Cache);
    EXPECT_EQ(countOps(cache, OpKind::Remap), 0u);
    Addr second = 0;
    for (const auto &op : cache.warps[0]) {
        if (op.kind == OpKind::GlobalLd)
            second = op.addrs[0];
    }
    EXPECT_EQ(second, stagedTile().tile.globalBase + 0x1000);
}

TEST(TbBuilderTest, WarpsNeverEndOnABarrier)
{
    for (MemOrg org : {MemOrg::Scratch, MemOrg::ScratchGD,
                       MemOrg::Cache, MemOrg::Stash}) {
        ThreadBlock tb = buildSimple(org);
        for (const auto &w : tb.warps) {
            ASSERT_FALSE(w.empty());
            EXPECT_NE(w.back().kind, OpKind::Barrier)
                << memOrgName(org);
        }
    }
}

TEST(LaneElemsTest, GeneratesStridedIndices)
{
    auto v = laneElems(10, 4, 3);
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], 10u);
    EXPECT_EQ(v[3], 19u);
}

} // namespace
} // namespace stashsim
