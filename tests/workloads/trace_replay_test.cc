/**
 * @file
 * stashtrace v1 parser/writer/replay tests: fixed-point canonical
 * form, strict rejection of malformed input, end-to-end replay of the
 * demo trace, and the record -> replay round trip.
 */

#include <gtest/gtest.h>

#include "driver/system.hh"
#include "workloads/synthetic/synth_workloads.hh"
#include "workloads/synthetic/trace_replay.hh"
#include "workloads/workload_factory.hh"

namespace stashsim
{
namespace
{

using workloads::demoTrace;
using workloads::makeTraceReplay;
using workloads::parseTrace;
using workloads::traceFromWorkload;
using workloads::traceHash;
using workloads::TraceData;
using workloads::TraceLimits;
using workloads::writeTrace;

TraceData
mustParse(const std::string &text)
{
    TraceData t;
    std::string err;
    EXPECT_TRUE(parseTrace(text, TraceLimits(), t, err)) << err;
    return t;
}

TEST(TraceParse, DemoParsesAndRoundTrips)
{
    TraceData t = mustParse(demoTrace());
    EXPECT_EQ(t.warmup, 1u);
    ASSERT_EQ(t.phases.size(), 3u);
    EXPECT_EQ(t.phases[0].kind, Phase::Kind::Cpu);
    EXPECT_EQ(t.phases[1].kind, Phase::Kind::Gpu);
    EXPECT_EQ(t.phases[1].kernel, "demo_kernel");
    EXPECT_EQ(t.phases[1].perCu.size(), 2u);
    EXPECT_GT(t.records(), 0u);

    // The canonical rendering is a parse/write fixed point.
    const std::string once = writeTrace(t);
    TraceData t2 = mustParse(once);
    EXPECT_EQ(writeTrace(t2), once);
    EXPECT_EQ(traceHash(t2), traceHash(t));
}

struct RejectCase
{
    const char *label;
    const char *text;
    const char *needle; //!< must appear in the error message
};

class TraceRejects : public ::testing::TestWithParam<RejectCase>
{
};

TEST_P(TraceRejects, FailsWithDiagnostic)
{
    TraceData t;
    std::string err;
    EXPECT_FALSE(parseTrace(GetParam().text, TraceLimits(), t, err));
    EXPECT_NE(err.find(GetParam().needle), std::string::npos)
        << "error was: " << err;
}

const RejectCase rejectCases[] = {
    {"MissingHeader", "warmup 1\n", "header"},
    {"BadHeader", "stashtrace v2\n", "header"},
    {"TruncatedRecord",
     "stashtrace v1\nphase gpu k\ncu 0\nendphase\n", "truncated"},
    {"BadOpcode",
     "stashtrace v1\nphase gpu k\ncu 0 prefetch 0x40\nendphase\n",
     "unknown opcode"},
    {"CuOutOfRange",
     "stashtrace v1\nphase gpu k\ncu 15 ld 0x40\nendphase\n",
     "out of range"},
    {"CoreOutOfRange",
     "stashtrace v1\nphase cpu\ncore 1 ld 0x40\nendphase\n",
     "out of range"},
    {"BadNumber",
     "stashtrace v1\nphase gpu k\ncu 0 ld 0x40,zork\nendphase\n",
     "address list"},
    {"OverflowNumber",
     "stashtrace v1\nphase gpu k\n"
     "cu 0 ld 0x123456789abcdef01\nendphase\n",
     "address list"},
    {"UnalignedAddr",
     "stashtrace v1\nphase gpu k\ncu 0 ld 0x41\nendphase\n",
     "word-aligned"},
    {"UnmappedLocal",
     "stashtrace v1\nphase gpu k\ncu 0 lld 0x0\nendphase\n",
     "not covered by any map"},
    {"StoreToRoMap",
     "stashtrace v1\nphase gpu k\n"
     "cu 0 map 0x0 0x1000 64 ro\ncu 0 lst 0x0\nendphase\n",
     "read-only"},
    {"RecordOutsidePhase", "stashtrace v1\ncu 0 ld 0x40\n",
     "outside a gpu phase"},
    {"CoreInGpuPhase",
     "stashtrace v1\nphase gpu k\ncore 0 ld 0x40\nendphase\n",
     "outside a cpu phase"},
    {"NestedPhase",
     "stashtrace v1\nphase gpu k\nphase cpu\nendphase\n", "nested"},
    {"StrayEndphase", "stashtrace v1\nendphase\n",
     "outside a phase"},
    {"UnterminatedPhase", "stashtrace v1\nphase gpu k\n",
     "unterminated"},
    {"StoreMissingValue",
     "stashtrace v1\nphase cpu\ncore 0 st 0x40\nendphase\n",
     "'st' takes"},
    {"MapTooManyMaps",
     "stashtrace v1\nphase gpu k\n"
     "cu 0 map 0x0 0x1000 64 ro\ncu 0 map 0x40 0x1000 64 ro\n"
     "cu 0 map 0x80 0x1000 64 ro\ncu 0 map 0xc0 0x1000 64 ro\n"
     "cu 0 map 0x100 0x1000 64 ro\nendphase\n",
     "more than 4 maps"},
    {"MapUnalignedLocal",
     "stashtrace v1\nphase gpu k\n"
     "cu 0 map 0x4 0x1000 64 ro\nendphase\n", "64-byte"},
    {"MapOverflowsLocal",
     "stashtrace v1\nphase gpu k\n"
     "cu 0 map 0x0 0x1000 32768 rw\nendphase\n", "local space"},
    {"WarmupCoversEverything",
     "stashtrace v1\nwarmup 1\nphase cpu\ncore 0 ld 0x40\n"
     "endphase\n",
     "warmup"},
};

INSTANTIATE_TEST_SUITE_P(Sweep, TraceRejects,
                         ::testing::ValuesIn(rejectCases),
                         [](const auto &info) {
                             return std::string(info.param.label);
                         });

TEST(TraceParse, TooManyLanesRejected)
{
    std::string list;
    for (int i = 0; i < 33; ++i) {
        if (i)
            list += ',';
        list += "0x" + std::to_string(4 * i);
    }
    // Addresses like 0x12 are unaligned; build aligned hex properly.
    list.clear();
    for (int i = 0; i < 33; ++i) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%s%u", i ? "," : "", 4 * i);
        list += buf;
    }
    const std::string text = "stashtrace v1\nphase gpu k\ncu 0 ld " +
                             list + "\nendphase\n";
    TraceData t;
    std::string err;
    EXPECT_FALSE(parseTrace(text, TraceLimits(), t, err));
    EXPECT_NE(err.find("32 lanes"), std::string::npos) << err;
}

TEST(TraceParse, ErrorsNameTheLine)
{
    TraceData t;
    std::string err;
    EXPECT_FALSE(parseTrace(
        "stashtrace v1\n# comment\nphase gpu k\ncu 0 bogus 1\n",
        TraceLimits(), t, err));
    EXPECT_NE(err.find("line 4"), std::string::npos) << err;
}

class ReplayAllOrgs : public ::testing::TestWithParam<MemOrg>
{
};

TEST_P(ReplayAllOrgs, DemoReplaysValidated)
{
    const MemOrg org = GetParam();
    TraceData t = mustParse(demoTrace());
    Workload wl = makeTraceReplay(t, org);
    EXPECT_EQ(wl.warmupPhases, 1u);
    ASSERT_TRUE(bool(wl.snapshotState));
    ASSERT_TRUE(bool(wl.restoreState));

    SystemConfig cfg = SystemConfig::applicationDefault();
    cfg.memOrg = org;
    System sys(cfg);
    RunResult r = sys.run(wl);
    // The demo's final CPU phase checks every produced value, so a
    // wrong replay surfaces as a validation error here.
    EXPECT_TRUE(r.validated)
        << memOrgName(org)
        << (r.errors.empty() ? "" : (": " + r.errors[0]));
    EXPECT_GT(r.gpuCycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReplayAllOrgs,
                         ::testing::Values(MemOrg::Scratch,
                                           MemOrg::ScratchGD,
                                           MemOrg::Cache,
                                           MemOrg::StashG),
                         [](const auto &info) {
                             return std::string(memOrgName(info.param));
                         });

TEST(TraceRecord, RecordedWorkloadRoundTripsAndReplays)
{
    // Record a cache-organization synthetic workload, then check the
    // trace is canonical and replays to completion on the stash.
    workloads::SynthConfig cfg = workloads::scaledSynthConfig(
        {MemOrg::Cache, 1, workloads::Scale::Smoke});
    Workload src = workloads::makeSynthMix(cfg);
    const unsigned cus = SystemConfig::applicationDefault().numGpuCus;
    TraceData t = traceFromWorkload(src, cus);
    EXPECT_EQ(t.warmup, src.warmupPhases);
    EXPECT_GT(t.records(), 0u);

    const std::string once = writeTrace(t);
    std::string err;
    TraceData t2;
    ASSERT_TRUE(parseTrace(once, TraceLimits(), t2, err)) << err;
    EXPECT_EQ(writeTrace(t2), once);

    SystemConfig sc = SystemConfig::applicationDefault();
    sc.memOrg = MemOrg::Stash;
    System sys(sc);
    RunResult r = sys.run(makeTraceReplay(t2, MemOrg::Stash));
    // Replay strips value checks (no functional init image), so the
    // run completes with timing but without validation errors.
    EXPECT_TRUE(r.validated)
        << (r.errors.empty() ? "" : r.errors[0]);
    EXPECT_GT(r.gpuCycles, 0u);
}

} // namespace
} // namespace stashsim
