/**
 * @file
 * End-to-end tests of the synthetic traffic family: every shape runs
 * validated under every memory organization, generation is
 * deterministic, and the snapshot hooks pin the generator identity.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "driver/system.hh"
#include "snapshot/snapshot.hh"
#include "workloads/synthetic/synth_engine.hh"
#include "workloads/synthetic/synth_workloads.hh"
#include "workloads/workload_factory.hh"

namespace stashsim
{
namespace
{

using workloads::Scale;
using workloads::SynthConfig;
using workloads::WorkloadFactory;
using workloads::WorkloadParams;

RunResult
runSynthetic(const std::string &name, MemOrg org)
{
    SystemConfig cfg = SystemConfig::applicationDefault();
    cfg.memOrg = org;
    System sys(cfg);
    WorkloadParams p;
    p.org = org;
    p.scale = Scale::Smoke;
    return sys.run(WorkloadFactory::instance().make(name, p));
}

class SynthAllConfigs
    : public ::testing::TestWithParam<std::tuple<std::string, MemOrg>>
{
};

TEST_P(SynthAllConfigs, RunsValidated)
{
    const auto &[name, org] = GetParam();
    RunResult r = runSynthetic(name, org);
    EXPECT_TRUE(r.validated)
        << name << "/" << memOrgName(org)
        << (r.errors.empty() ? "" : (": " + r.errors[0]));
    EXPECT_GT(r.gpuCycles, 0u);
    EXPECT_GT(r.stats.gpu.threadBlocks, 0u);
    if (usesScratchpad(org))
        EXPECT_GT(r.stats.scratch.accesses(), 0u) << name;
    if (usesStash(org))
        EXPECT_GT(r.stats.stash.accesses(), 0u) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SynthAllConfigs,
    ::testing::Combine(
        ::testing::Values("SynthMix", "GraphGather", "AttnScatter",
                          "Stencil2D"),
        ::testing::Values(MemOrg::Scratch, MemOrg::ScratchGD,
                          MemOrg::Cache, MemOrg::StashG)),
    [](const auto &info) {
        return std::get<0>(info.param) +
               std::string(memOrgName(std::get<1>(info.param)));
    });

TEST(SynthDeterminism, SameSeedSameTiming)
{
    // The generator must be a pure function of (spec, seed): two
    // fresh builds of the same workload time out identically.
    for (const char *name :
         {"SynthMix", "GraphGather", "AttnScatter", "Stencil2D"}) {
        RunResult a = runSynthetic(name, MemOrg::Stash);
        RunResult b = runSynthetic(name, MemOrg::Stash);
        EXPECT_EQ(a.gpuCycles, b.gpuCycles) << name;
        EXPECT_EQ(a.stats.gpu.instructions, b.stats.gpu.instructions)
            << name;
    }
}

TEST(SynthDeterminism, SeedChangesTheStream)
{
    SynthConfig a;
    a.seed = 1;
    SynthConfig b = a;
    b.seed = 2;
    // Compare generated address streams via the first GPU phase.
    Workload wa = workloads::makeSynthMix(a);
    Workload wb = workloads::makeSynthMix(b);
    std::ostringstream sa, sb;
    auto dump = [](const Workload &w, std::ostringstream &os) {
        for (const auto &ph : w.phases) {
            if (ph.kind != Phase::Kind::Gpu)
                continue;
            for (const auto &blk : ph.kernel.blocks) {
                for (const auto &warp : blk.warps) {
                    for (const auto &op : warp) {
                        for (Addr adr : op.addrs)
                            os << adr << ',';
                    }
                }
            }
            break;
        }
    };
    dump(wa, sa);
    dump(wb, sb);
    EXPECT_NE(sa.str(), sb.str());
}

TEST(SynthEngine, SnapshotRoundTripResumesTheStream)
{
    workloads::SynthEngine a(42);
    for (int i = 0; i < 100; ++i)
        a.next();

    SnapshotWriter w;
    w.beginSection("eng");
    a.snapshot(w);
    w.endSection();
    const std::string dir = ::testing::TempDir() + "synth_eng";
    w.writeFile(dir + ".snap");

    workloads::SynthEngine b(42);
    SnapshotReader r = SnapshotReader::fromFile(dir + ".snap");
    r.openSection("eng");
    b.restore(r);
    r.closeSection();

    EXPECT_EQ(b.draws(), 100u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SynthEngine, RestoreRejectsForeignSeed)
{
    workloads::SynthEngine a(42);
    SnapshotWriter w;
    w.beginSection("eng");
    a.snapshot(w);
    w.endSection();
    const std::string path = ::testing::TempDir() + "synth_seed.snap";
    w.writeFile(path);

    workloads::SynthEngine b(43);
    SnapshotReader r = SnapshotReader::fromFile(path);
    r.openSection("eng");
    EXPECT_THROW(b.restore(r), std::runtime_error);
}

TEST(SynthWorkload, CarriesSnapshotHooks)
{
    WorkloadParams p;
    p.scale = Scale::Smoke;
    for (const auto &name : workloads::syntheticNames()) {
        Workload wl = WorkloadFactory::instance().make(name, p);
        EXPECT_TRUE(bool(wl.snapshotState)) << name;
        EXPECT_TRUE(bool(wl.restoreState)) << name;
        EXPECT_GT(wl.warmupPhases, 0u) << name;
        EXPECT_LT(wl.warmupPhases, wl.phases.size()) << name;
    }
}

TEST(SynthWorkload, RestoreRejectsDifferentSpec)
{
    // A checkpoint written under one parameterization must not resume
    // under a differently-parameterized twin.
    SynthConfig a;
    a = workloads::scaledSynthConfig(
        {MemOrg::Scratch, 1, Scale::Smoke});
    SynthConfig b = a;
    b.mixAccesses += 1;

    Workload wa = workloads::makeSynthMix(a);
    Workload wb = workloads::makeSynthMix(b);

    SnapshotWriter w;
    w.beginSection("workload");
    wa.snapshotState(w);
    w.endSection();
    const std::string path = ::testing::TempDir() + "synth_spec.snap";
    w.writeFile(path);

    SnapshotReader r = SnapshotReader::fromFile(path);
    r.openSection("workload");
    EXPECT_THROW(wb.restoreState(r), std::runtime_error);
}

TEST(SynthWorkload, FactoryKindsAndDefaults)
{
    const auto &f = WorkloadFactory::instance();
    const auto *info = f.find("SynthMix");
    ASSERT_NE(info, nullptr);
    EXPECT_STREQ(info->kindName(), "synthetic");
    const auto *replay = f.find("TraceReplay");
    ASSERT_NE(replay, nullptr);
    EXPECT_STREQ(replay->kindName(), "replay");
    // Synthetics run on the 15-CU application machine.
    EXPECT_EQ(f.defaultConfig("SynthMix").numGpuCus,
              SystemConfig::applicationDefault().numGpuCus);
    EXPECT_EQ(f.defaultConfig("TraceReplay").numGpuCus,
              SystemConfig::applicationDefault().numGpuCus);
}

} // namespace
} // namespace stashsim
