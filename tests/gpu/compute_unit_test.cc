/**
 * @file
 * Tests for the GPU compute unit, driven through a full System (the
 * CU needs the whole memory fabric behind it): warp execution,
 * coalescing, barriers, occupancy limits, instruction accounting,
 * and the kernel-boundary coherence actions.
 */

#include <gtest/gtest.h>

#include "driver/system.hh"

namespace stashsim
{
namespace
{

SystemConfig
tinyConfig(MemOrg org)
{
    SystemConfig cfg = SystemConfig::microbenchmarkDefault();
    cfg.memOrg = org;
    return cfg;
}

constexpr Addr gbase = 0x300000;

/** A kernel writing value 7 to n dense global words per block. */
Kernel
storeKernel(unsigned blocks, unsigned words_per_block)
{
    Kernel k;
    k.name = "store";
    for (unsigned b = 0; b < blocks; ++b) {
        ThreadBlock tb;
        tb.warps.resize(1);
        for (unsigned i = 0; i < words_per_block; i += 32) {
            std::vector<Addr> addrs;
            for (unsigned l = 0; l < 32 && i + l < words_per_block;
                 ++l) {
                addrs.push_back(gbase +
                                Addr(b) * words_per_block * 4 +
                                Addr(i + l) * 4);
            }
            tb.warps[0].push_back(
                storeValueOp(OpKind::GlobalSt, std::move(addrs), 7));
        }
        k.blocks.push_back(std::move(tb));
    }
    return k;
}

RunResult
runKernelWorkload(System &sys, Kernel k)
{
    Workload wl;
    wl.name = "test";
    wl.phases.push_back(Phase::gpu(std::move(k)));
    return sys.run(std::move(wl));
}

TEST(ComputeUnitTest, ExecutesAndCountsInstructions)
{
    System sys(tinyConfig(MemOrg::Cache));
    Kernel k = storeKernel(2, 64);
    const auto expected = k.dynamicInstructions();
    RunResult r = runKernelWorkload(sys, std::move(k));
    EXPECT_EQ(r.stats.gpu.instructions, expected);
    EXPECT_EQ(r.stats.gpu.globalStores, 4u);
    EXPECT_EQ(r.stats.gpu.threadBlocks, 2u);
    EXPECT_EQ(r.stats.gpu.kernels, 1u);
}

TEST(ComputeUnitTest, StoresReachMemory)
{
    System sys(tinyConfig(MemOrg::Cache));
    RunResult r = runKernelWorkload(sys, storeKernel(1, 32));
    EXPECT_TRUE(r.validated);
    auto fm = sys.functionalMem();
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(fm.readWord(gbase + i * 4), 7u);
}

TEST(ComputeUnitTest, LoadComputeStorePipelineIsFunctional)
{
    SystemConfig cfg = tinyConfig(MemOrg::Cache);
    System sys(cfg);

    Kernel k;
    k.name = "incr";
    ThreadBlock tb;
    tb.warps.resize(1);
    std::vector<Addr> addrs;
    for (unsigned l = 0; l < 32; ++l)
        addrs.push_back(gbase + l * 4);
    tb.warps[0].push_back(memOp(OpKind::GlobalLd, addrs));
    tb.warps[0].push_back(computeOp(1, 5)); // acc += 5
    tb.warps[0].push_back(storeAccOp(OpKind::GlobalSt, addrs));
    k.blocks.push_back(std::move(tb));

    Workload wl;
    wl.name = "incr";
    wl.init = [](FunctionalMem &fm) {
        for (unsigned i = 0; i < 32; ++i)
            fm.writeWord(gbase + i * 4, i);
    };
    wl.phases.push_back(Phase::gpu(std::move(k)));
    sys.run(std::move(wl));

    auto fm = sys.functionalMem();
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(fm.readWord(gbase + i * 4), i + 5);
}

TEST(ComputeUnitTest, CoalescerGroupsLanesByLine)
{
    System sys(tinyConfig(MemOrg::Cache));
    // 32 lanes across exactly 2 lines -> 2 L1 accesses.
    Kernel k = storeKernel(1, 32);
    RunResult r = runKernelWorkload(sys, std::move(k));
    EXPECT_EQ(r.stats.gpuL1.accesses(), 2u);
}

TEST(ComputeUnitTest, BarrierSynchronizesWarps)
{
    System sys(tinyConfig(MemOrg::Cache));
    Kernel k;
    ThreadBlock tb;
    tb.warps.resize(4);
    for (auto &w : tb.warps) {
        w.push_back(computeOp(1));
        w.push_back(barrierOp());
        w.push_back(computeOp(1));
    }
    // Warp 0 is much slower before the barrier.
    tb.warps[0][0] = computeOp(500);
    k.blocks.push_back(std::move(tb));
    RunResult r = runKernelWorkload(sys, std::move(k));
    EXPECT_TRUE(r.validated);
    EXPECT_GE(r.gpuCycles, 500u); // everyone waited
    EXPECT_EQ(r.stats.gpu.barriers, 4u);
}

TEST(ComputeUnitTest, OccupancyLimitedByLocalMemory)
{
    // Two kernels with different per-block footprints: the one whose
    // blocks claim the whole scratchpad serializes and takes longer.
    auto make = [](unsigned local_bytes) {
        Kernel k;
        for (unsigned b = 0; b < 8; ++b) {
            ThreadBlock tb;
            tb.localBytes = local_bytes;
            tb.warps.resize(1);
            tb.warps[0].push_back(computeOp(200));
            k.blocks.push_back(std::move(tb));
        }
        return k;
    };
    System small(tinyConfig(MemOrg::Scratch));
    System big(tinyConfig(MemOrg::Scratch));
    RunResult r_small =
        runKernelWorkload(small, make(2 * 1024)); // 8 resident
    RunResult r_big =
        runKernelWorkload(big, make(16 * 1024)); // 1 resident
    EXPECT_GT(r_big.gpuCycles, 4 * r_small.gpuCycles);
}

TEST(ComputeUnitTest, TooLargeBlockIsFatal)
{
    System sys(tinyConfig(MemOrg::Scratch));
    Kernel k;
    ThreadBlock tb;
    tb.localBytes = 32 * 1024; // > 16 KB scratchpad
    tb.warps.resize(1);
    tb.warps[0].push_back(computeOp(1));
    k.blocks.push_back(std::move(tb));
    EXPECT_THROW(runKernelWorkload(sys, std::move(k)),
                 std::runtime_error);
}

TEST(ComputeUnitTest, ScratchpadOpsStayLocal)
{
    System sys(tinyConfig(MemOrg::Scratch));
    Kernel k;
    ThreadBlock tb;
    tb.localBytes = 1024;
    tb.warps.resize(1);
    std::vector<Addr> offs;
    for (unsigned l = 0; l < 32; ++l)
        offs.push_back(l * 4);
    tb.warps[0].push_back(storeValueOp(OpKind::LocalSt, offs, 3));
    tb.warps[0].push_back(memOp(OpKind::LocalLd, offs));
    k.blocks.push_back(std::move(tb));
    RunResult r = runKernelWorkload(sys, std::move(k));
    EXPECT_EQ(r.stats.scratch.reads, 32u);
    EXPECT_EQ(r.stats.scratch.writes, 32u);
    EXPECT_EQ(r.stats.noc.totalFlitHops(), 0u); // never left the CU
}

TEST(ComputeUnitTest, StashKernelEndSelfInvalidates)
{
    SystemConfig cfg = tinyConfig(MemOrg::Stash);
    System sys(cfg);
    Kernel k;
    ThreadBlock tb;
    tb.localBytes = 128;
    TileSpec t;
    t.globalBase = gbase;
    t.fieldSize = 4;
    t.objectSize = 4;
    t.rowSize = 32;
    t.strideSize = 0;
    t.numStrides = 1;
    tb.addMaps.push_back(AddMapOp{0, t});
    tb.warps.resize(1);
    std::vector<Addr> offs;
    for (unsigned l = 0; l < 32; ++l)
        offs.push_back(l * 4);
    tb.warps[0].push_back(memOp(OpKind::StashLd, offs, 0));
    k.blocks.push_back(std::move(tb));
    RunResult r = runKernelWorkload(sys, std::move(k));
    // Loaded (Valid) words were self-invalidated at kernel end.
    EXPECT_EQ(r.stats.stash.selfInvalidations, 32u);
}

TEST(ComputeUnitTest, GridSplitsAcrossCus)
{
    SystemConfig cfg = tinyConfig(MemOrg::Cache);
    cfg.numGpuCus = 4;
    cfg.numCpuCores = 4;
    System sys(cfg);
    RunResult r = runKernelWorkload(sys, storeKernel(8, 32));
    EXPECT_EQ(r.stats.gpu.threadBlocks, 8u);
    EXPECT_EQ(r.stats.gpu.kernels, 4u); // one launch per CU
    EXPECT_TRUE(r.validated);
}

} // namespace
} // namespace stashsim
