/**
 * @file
 * Edge-case tests for the DeNovo word-state helpers.
 */

#include <gtest/gtest.h>

#include <string>

#include "mem/coherence/denovo.hh"
#include "mem/coherence/msg.hh"

namespace stashsim
{
namespace
{

TEST(WordStateTest, NamesEveryState)
{
    EXPECT_STREQ(wordStateName(WordState::Invalid), "Invalid");
    EXPECT_STREQ(wordStateName(WordState::Valid), "Valid");
    EXPECT_STREQ(wordStateName(WordState::Registered), "Registered");
}

TEST(WordStateTest, OutOfRangeStateNamesSafely)
{
    // A corrupted state byte must still print (diagnostics run on the
    // failure path, where crashing the printer would mask the bug).
    EXPECT_STREQ(wordStateName(WordState(0xff)), "?");
}

TEST(WordStateTest, ReadablePredicate)
{
    EXPECT_FALSE(readable(WordState::Invalid));
    EXPECT_TRUE(readable(WordState::Valid));
    EXPECT_TRUE(readable(WordState::Registered));
}

TEST(WordStateTest, WritableOnlyWhenRegistered)
{
    EXPECT_FALSE(writable(WordState::Invalid));
    EXPECT_FALSE(writable(WordState::Valid));
    EXPECT_TRUE(writable(WordState::Registered));
}

TEST(WordStateTest, WritableImpliesReadable)
{
    for (auto s : {WordState::Invalid, WordState::Valid,
                   WordState::Registered}) {
        if (writable(s)) {
            EXPECT_TRUE(readable(s));
        }
    }
}

TEST(MsgTypeTest, EveryTypeHasAName)
{
    for (unsigned t = 0; t < numMsgTypes; ++t)
        EXPECT_STRNE(msgTypeName(MsgType(t)), "?");
    EXPECT_STREQ(msgTypeName(MsgType(numMsgTypes)), "?");
}

} // namespace
} // namespace stashsim
