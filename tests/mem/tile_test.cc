/**
 * @file
 * Unit and property tests for TileSpec: the AddMap translation math
 * (paper Figure 2).
 */

#include <gtest/gtest.h>

#include "mem/tile.hh"

namespace stashsim
{
namespace
{

TileSpec
aosFieldTile()
{
    // One 4-byte field of 64-byte objects, 256 objects per row,
    // 4 rows strided 64 KB apart: the Figure 2 shape.
    TileSpec t;
    t.globalBase = 0x1000'0000;
    t.fieldSize = 4;
    t.objectSize = 64;
    t.rowSize = 256;
    t.strideSize = 64 * 1024;
    t.numStrides = 4;
    return t;
}

TEST(TileSpecTest, SizesFollowDefinition)
{
    TileSpec t = aosFieldTile();
    EXPECT_TRUE(t.wellFormed());
    EXPECT_EQ(t.mappedBytes(), 4u * 256 * 4);
    EXPECT_EQ(t.numElements(), 1024u);
}

TEST(TileSpecTest, ForwardTranslationSkipsUnmappedFields)
{
    TileSpec t = aosFieldTile();
    // Element 0, byte 0.
    EXPECT_EQ(t.globalAddrOf(0), t.globalBase);
    // Element 1 starts one objectSize further in memory even though
    // it is fieldSize further in the stash: compact storage.
    EXPECT_EQ(t.globalAddrOf(4), t.globalBase + 64);
    // First element of row 1.
    EXPECT_EQ(t.globalAddrOf(256 * 4), t.globalBase + 64 * 1024);
}

TEST(TileSpecTest, ScalarArrayIsDenseSpecialCase)
{
    TileSpec t;
    t.globalBase = 0x2000;
    t.fieldSize = 4;
    t.objectSize = 4;
    t.rowSize = 128;
    t.strideSize = 0;
    t.numStrides = 1;
    EXPECT_TRUE(t.wellFormed());
    for (std::uint32_t off = 0; off < t.mappedBytes(); off += 4)
        EXPECT_EQ(t.globalAddrOf(off), t.globalBase + off);
}

TEST(TileSpecTest, ReverseTranslationInvertsForward)
{
    TileSpec t = aosFieldTile();
    for (std::uint32_t off = 0; off < t.mappedBytes(); off += 4) {
        std::uint32_t back = ~0u;
        ASSERT_TRUE(t.reverse(t.globalAddrOf(off), &back));
        EXPECT_EQ(back, off);
    }
}

TEST(TileSpecTest, ReverseRejectsUnmappedFieldBytes)
{
    TileSpec t = aosFieldTile();
    std::uint32_t off;
    // Byte 4 of object 0 is outside the 4-byte mapped field.
    EXPECT_FALSE(t.reverse(t.globalBase + 4, &off));
    // Below the base.
    EXPECT_FALSE(t.reverse(t.globalBase - 4, &off));
    // Beyond the last row.
    EXPECT_FALSE(t.reverse(t.globalBase + Addr(4) * 64 * 1024, &off));
}

TEST(TileSpecTest, MultiWordFields)
{
    TileSpec t;
    t.globalBase = 0x3000;
    t.fieldSize = 12; // three words of each object
    t.objectSize = 32;
    t.rowSize = 8;
    t.strideSize = 0;
    t.numStrides = 1;
    EXPECT_EQ(t.mappedBytes(), 96u);
    EXPECT_EQ(t.globalAddrOf(0), 0x3000u);
    EXPECT_EQ(t.globalAddrOf(8), 0x3008u);  // word 2 of element 0
    EXPECT_EQ(t.globalAddrOf(12), 0x3020u); // word 0 of element 1
    std::uint32_t off;
    ASSERT_TRUE(t.reverse(0x3028, &off));
    EXPECT_EQ(off, 20u); // element 1, byte 8
}

TEST(TileSpecTest, WellFormedRejectsDegenerates)
{
    TileSpec t = aosFieldTile();
    t.fieldSize = 0;
    EXPECT_FALSE(t.wellFormed());

    t = aosFieldTile();
    t.fieldSize = 128; // larger than the object
    EXPECT_FALSE(t.wellFormed());

    t = aosFieldTile();
    t.strideSize = 16; // rows overlap
    EXPECT_FALSE(t.wellFormed());

    t = aosFieldTile();
    t.numStrides = 1; // stride unused: always fine
    t.strideSize = 0;
    EXPECT_TRUE(t.wellFormed());
}

TEST(TileSpecTest, EqualityIsStructural)
{
    TileSpec a = aosFieldTile();
    TileSpec b = aosFieldTile();
    EXPECT_TRUE(a == b);
    b.isCoherent = !b.isCoherent; // mode excluded from identity
    EXPECT_TRUE(a == b);
    b = aosFieldTile();
    b.globalBase += 64;
    EXPECT_FALSE(a == b);
}

/**
 * Property sweep: forward/reverse round-trip over many tile shapes.
 */
struct TileShape
{
    std::uint32_t fieldSize, objectSize, rowSize, strideFactor,
        numStrides;
};

class TileRoundTrip : public ::testing::TestWithParam<TileShape>
{
};

TEST_P(TileRoundTrip, ForwardReverseIdentity)
{
    const TileShape &s = GetParam();
    TileSpec t;
    t.globalBase = 0x4000'0000;
    t.fieldSize = s.fieldSize;
    t.objectSize = s.objectSize;
    t.rowSize = s.rowSize;
    t.strideSize = s.rowSize * s.objectSize * s.strideFactor;
    t.numStrides = s.numStrides;
    ASSERT_TRUE(t.wellFormed());
    for (std::uint32_t off = 0; off < t.mappedBytes(); off += 4) {
        std::uint32_t back = ~0u;
        const Addr ga = t.globalAddrOf(off);
        ASSERT_TRUE(t.reverse(ga, &back)) << "offset " << off;
        ASSERT_EQ(back, off);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TileRoundTrip,
    ::testing::Values(
        TileShape{4, 4, 64, 1, 1},      // dense 1D
        TileShape{4, 64, 32, 1, 8},     // AoS field, tight rows
        TileShape{4, 64, 32, 3, 8},     // AoS field, spread rows
        TileShape{8, 32, 16, 2, 4},     // two-word field
        TileShape{16, 16, 128, 1, 2},   // whole-object rows
        TileShape{4, 4, 16, 4, 16},     // 2D dense tile in big matrix
        TileShape{12, 48, 10, 2, 5}));  // odd sizes

} // namespace
} // namespace stashsim
