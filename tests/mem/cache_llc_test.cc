/**
 * @file
 * Integration tests for the L1 <-> LLC DeNovo protocol: registration,
 * forwarding, invalidation, writeback, self-invalidation, and
 * eviction behaviour, plus randomized property tests against a
 * sequential reference under data-race-free access patterns.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/cache.hh"
#include "mem/llc.hh"
#include "mem/main_memory.hh"
#include "mem/page_table.hh"
#include "mem/tlb.hh"
#include "noc/mesh.hh"

namespace stashsim
{
namespace
{

/**
 * A small coherent system: N L1 caches (cores 0..N-1 at nodes
 * 0..N-1) over 16 LLC banks on a 4x4 mesh.
 */
class CoherenceBench : public ::testing::Test
{
  protected:
    static constexpr unsigned numCaches = 4;

    void
    SetUp() override
    {
        mesh = std::make_unique<Mesh>(eq, MeshParams{});
        fabric = std::make_unique<Fabric>(*mesh);

        LlcBank::Params lp;
        for (NodeId n = 0; n < 16; ++n) {
            backends.push_back(makeMemBackend(MemBackendConfig{}, eq,
                                              mem, gpuClockPeriod));
            llc.push_back(std::make_unique<LlcBank>(
                eq, *fabric, *backends.back(), n, lp));
            fabric->registerObject(n, Unit::Llc, llc.back().get());
        }
        for (CoreId c = 0; c < numCaches; ++c) {
            tlbs.push_back(std::make_unique<Tlb>(pageTable, 64));
            caches.push_back(std::make_unique<L1Cache>(
                eq, *fabric, *tlbs.back(), c, NodeId(c),
                L1Cache::Params{}));
            fabric->registerObject(NodeId(c), Unit::L1,
                                   caches.back().get());
            fabric->registerCore(c, NodeId(c));
        }
    }

    /** Blocking word load through cache @p c. */
    std::uint32_t
    load(unsigned c, Addr va)
    {
        std::uint32_t result = 0;
        bool done = false;
        caches[c]->access(lineBase(va), wordBit(lineWord(va)), false,
                          nullptr, [&](const LineData &d) {
                              result = d.w[lineWord(va)];
                              done = true;
                          });
        eq.run();
        EXPECT_TRUE(done);
        return result;
    }

    /** Blocking word store through cache @p c. */
    void
    store(unsigned c, Addr va, std::uint32_t value)
    {
        LineData d;
        d.w[lineWord(va)] = value;
        bool done = false;
        caches[c]->access(lineBase(va), wordBit(lineWord(va)), true,
                          &d, [&](const LineData &) { done = true; });
        eq.run();
        EXPECT_TRUE(done);
    }

    /** Registry owner of @p va, from the responsible LLC bank. */
    CoreId
    ownerOf(Addr va)
    {
        const PhysAddr pa = pageTable.translate(va);
        return llc[(pa / lineBytes) % 16]->ownerOf(pa);
    }

    EventQueue eq;
    MainMemory mem;
    PageTable pageTable;
    std::unique_ptr<Mesh> mesh;
    std::unique_ptr<Fabric> fabric;
    std::vector<std::unique_ptr<MemBackend>> backends;
    std::vector<std::unique_ptr<LlcBank>> llc;
    std::vector<std::unique_ptr<Tlb>> tlbs;
    std::vector<std::unique_ptr<L1Cache>> caches;
};

constexpr Addr base = 0x100000;

TEST_F(CoherenceBench, ColdLoadFetchesFromMemory)
{
    mem.writeWord(pageTable.translate(base), 42);
    EXPECT_EQ(load(0, base), 42u);
    EXPECT_EQ(caches[0]->stats().loadMisses, 1u);
    EXPECT_EQ(caches[0]->stats().loadHits, 0u);
}

TEST_F(CoherenceBench, SecondLoadHits)
{
    load(0, base);
    load(0, base);
    EXPECT_EQ(caches[0]->stats().loadHits, 1u);
}

TEST_F(CoherenceBench, LineFillServesNeighboringWords)
{
    // A cache fill brings the whole line, so another word of the
    // same line hits (line-granularity transfer, word-granularity
    // state).
    load(0, base);
    load(0, base + 24);
    EXPECT_EQ(caches[0]->stats().loadMisses, 1u);
    EXPECT_EQ(caches[0]->stats().loadHits, 1u);
}

TEST_F(CoherenceBench, StoreRegistersAtDirectory)
{
    store(0, base, 7);
    EXPECT_EQ(ownerOf(base), 0u);
    EXPECT_EQ(caches[0]->probe(base), WordState::Registered);
}

TEST_F(CoherenceBench, StoreToRegisteredWordHits)
{
    store(0, base, 7);
    store(0, base, 8);
    EXPECT_EQ(caches[0]->stats().storeMisses, 1u);
    EXPECT_EQ(caches[0]->stats().storeHits, 1u);
}

TEST_F(CoherenceBench, RemoteLoadForwardedToOwner)
{
    store(0, base, 99);
    EXPECT_EQ(load(1, base), 99u);
    EXPECT_EQ(caches[0]->stats().remoteHits, 1u);
    // The owner keeps its registration; the reader gets a Valid copy.
    EXPECT_EQ(ownerOf(base), 0u);
    EXPECT_EQ(caches[1]->probe(base), WordState::Valid);
}

TEST_F(CoherenceBench, RegistrationTransferInvalidatesOldOwner)
{
    store(0, base, 1);
    store(1, base, 2);
    eq.run();
    EXPECT_EQ(ownerOf(base), 1u);
    EXPECT_EQ(caches[0]->probe(base), WordState::Invalid);
    EXPECT_EQ(load(2, base), 2u);
}

TEST_F(CoherenceBench, WordGranularityOwnership)
{
    // Different cores own different words of the same line — no
    // false sharing (the DeNovo advantage over MESI).
    store(0, base, 10);
    store(1, base + 4, 11);
    store(2, base + 8, 12);
    EXPECT_EQ(ownerOf(base), 0u);
    EXPECT_EQ(ownerOf(base + 4), 1u);
    EXPECT_EQ(ownerOf(base + 8), 2u);
    EXPECT_EQ(load(3, base), 10u);
    EXPECT_EQ(load(3, base + 4), 11u);
    EXPECT_EQ(load(3, base + 8), 12u);
}

TEST_F(CoherenceBench, SelfInvalidationDropsValidKeepsRegistered)
{
    store(0, base, 5);     // registered
    load(0, base + 4);     // valid (from fill)
    caches[0]->selfInvalidate();
    EXPECT_EQ(caches[0]->probe(base), WordState::Registered);
    EXPECT_EQ(caches[0]->probe(base + 4), WordState::Invalid);
}

TEST_F(CoherenceBench, FlushWritesBackRegisteredWords)
{
    store(0, base, 123);
    caches[0]->flushAll();
    eq.run();
    EXPECT_EQ(ownerOf(base), invalidCore);
    llc[(pageTable.translate(base) / lineBytes) % 16]
        ->flushDirtyToMemory();
    EXPECT_EQ(mem.readWord(pageTable.translate(base)), 123u);
}

TEST_F(CoherenceBench, EvictionWritesBackAndDataSurvives)
{
    // Touch enough distinct lines mapping to one set to force
    // evictions (32 KB, 8-way: 64 sets; lines 64*64B apart collide).
    const Addr stride = 64 * lineBytes;
    for (unsigned i = 0; i < 12; ++i)
        store(0, base + i * stride, 1000 + i);
    EXPECT_GT(caches[0]->stats().evictions, 0u);
    for (unsigned i = 0; i < 12; ++i)
        EXPECT_EQ(load(1, base + i * stride), 1000 + i);
}

TEST_F(CoherenceBench, ProducerConsumerThroughPhases)
{
    // GPU-style phase pattern: core 0 produces, core 1 consumes
    // after a self-invalidation, then produces new values consumed
    // by core 0.
    for (unsigned i = 0; i < 32; ++i)
        store(0, base + i * 4, i);
    caches[1]->selfInvalidate();
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(load(1, base + i * 4), i);
    for (unsigned i = 0; i < 32; ++i)
        store(1, base + i * 4, 100 + i);
    caches[0]->selfInvalidate();
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(load(0, base + i * 4), 100 + i);
}

/**
 * Property: a randomized, data-race-free workload (each word has one
 * writer per phase; readers read only after a phase change) matches
 * a sequential reference model.
 */
class CoherenceProperty : public CoherenceBench,
                          public ::testing::WithParamInterface<unsigned>
{
};

TEST_P(CoherenceProperty, RandomDrfTrafficMatchesReference)
{
    std::uint64_t seed = GetParam();
    auto rng = [&seed]() {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        return unsigned(seed >> 33);
    };

    constexpr unsigned num_words = 64;
    std::vector<std::uint32_t> ref(num_words, 0);
    auto addr = [](unsigned w) { return base + Addr(w) * 4; };

    for (unsigned phase = 0; phase < 6; ++phase) {
        // Each phase: every word is written by one pseudo-random
        // core; then everyone self-invalidates; then random cores
        // read random words and must see the latest values.
        for (unsigned w = 0; w < num_words; ++w) {
            if (rng() % 3 == 0) {
                const unsigned writer = rng() % numCaches;
                const std::uint32_t val = rng();
                store(writer, addr(w), val);
                ref[w] = val;
            }
        }
        for (auto &c : caches)
            c->selfInvalidate();
        for (unsigned r = 0; r < 48; ++r) {
            const unsigned w = rng() % num_words;
            const unsigned reader = rng() % numCaches;
            ASSERT_EQ(load(reader, addr(w)), ref[w])
                << "phase " << phase << " word " << w;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceProperty,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

} // namespace
} // namespace stashsim
