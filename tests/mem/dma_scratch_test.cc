/**
 * @file
 * Unit tests for the scratchpad and the D2MA-style DMA engine.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/dma_engine.hh"
#include "mem/llc.hh"
#include "mem/main_memory.hh"
#include "noc/mesh.hh"

namespace stashsim
{
namespace
{

TEST(ScratchpadTest, WordReadWriteRoundTrip)
{
    Scratchpad s(16 * 1024);
    EXPECT_EQ(s.sizeBytes(), 16u * 1024);
    s.write(0, 11);
    s.write(16380, 22);
    EXPECT_EQ(s.read(0), 11u);
    EXPECT_EQ(s.read(16380), 22u);
    EXPECT_EQ(s.stats().reads, 2u);
    EXPECT_EQ(s.stats().writes, 2u);
}

class DmaBench : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        mesh = std::make_unique<Mesh>(eq, MeshParams{});
        fabric = std::make_unique<Fabric>(*mesh);
        for (NodeId n = 0; n < 16; ++n) {
            backends.push_back(makeMemBackend(MemBackendConfig{}, eq,
                                              mem, gpuClockPeriod));
            llc.push_back(std::make_unique<LlcBank>(
                eq, *fabric, *backends.back(), n,
                LlcBank::Params{}));
            fabric->registerObject(n, Unit::Llc, llc.back().get());
        }
        spad = std::make_unique<Scratchpad>(16 * 1024);
        tlb = std::make_unique<Tlb>(pageTable, 64);
        dma = std::make_unique<DmaEngine>(eq, *fabric, *tlb, *spad, 0,
                                          NodeId(0));
        fabric->registerObject(NodeId(0), Unit::Dma, dma.get());
        fabric->registerCore(0, NodeId(0));
    }

    TileSpec
    fieldTile(Addr base, unsigned elements, unsigned object_bytes)
    {
        TileSpec t;
        t.globalBase = base;
        t.fieldSize = 4;
        t.objectSize = object_bytes;
        t.rowSize = elements;
        t.numStrides = 1;
        return t;
    }

    EventQueue eq;
    MainMemory mem;
    PageTable pageTable;
    std::unique_ptr<Mesh> mesh;
    std::unique_ptr<Fabric> fabric;
    std::vector<std::unique_ptr<MemBackend>> backends;
    std::vector<std::unique_ptr<LlcBank>> llc;
    std::unique_ptr<Scratchpad> spad;
    std::unique_ptr<Tlb> tlb;
    std::unique_ptr<DmaEngine> dma;
};

constexpr Addr gbase = 0x500000;

TEST_F(DmaBench, GatherLoadsStridedFields)
{
    for (unsigned i = 0; i < 64; ++i)
        mem.writeWord(pageTable.translate(gbase + i * 64), 700 + i);

    bool done = false;
    dma->load(fieldTile(gbase, 64, 64), 0, [&]() { done = true; });
    eq.run();
    ASSERT_TRUE(done);
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(spad->read(i * 4), 700 + i);
    EXPECT_EQ(dma->stats().wordsLoaded, 64u);
    EXPECT_EQ(dma->stats().transfers, 1u);
}

TEST_F(DmaBench, ScatterStoresBack)
{
    for (unsigned i = 0; i < 32; ++i)
        spad->write(i * 4, 900 + i);

    bool done = false;
    dma->store(fieldTile(gbase, 32, 64), 0, [&]() { done = true; });
    eq.run();
    ASSERT_TRUE(done);
    for (auto &b : llc)
        b->flushDirtyToMemory();
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(mem.readWord(pageTable.translate(gbase + i * 64)),
                  900 + i);
    EXPECT_EQ(dma->stats().wordsStored, 32u);
}

TEST_F(DmaBench, DenseTransferCoalescesLines)
{
    // 256 dense words = 16 lines: the traffic should be 16 requests,
    // not 256.
    bool done = false;
    dma->load(fieldTile(gbase, 256, 4), 0, [&]() { done = true; });
    eq.run();
    ASSERT_TRUE(done);
    Counter reads = 0;
    for (auto &b : llc)
        reads += b->stats().reads;
    EXPECT_EQ(reads, 16u);
}

TEST_F(DmaBench, RoundTripThroughBothDirections)
{
    for (unsigned i = 0; i < 128; ++i)
        mem.writeWord(pageTable.translate(gbase + i * 64), i);
    bool loaded = false;
    dma->load(fieldTile(gbase, 128, 64), 0, [&]() { loaded = true; });
    eq.run();
    ASSERT_TRUE(loaded);
    for (unsigned i = 0; i < 128; ++i)
        spad->write(i * 4, spad->read(i * 4) + 1);
    bool stored = false;
    dma->store(fieldTile(gbase, 128, 64), 0, [&]() { stored = true; });
    eq.run();
    ASSERT_TRUE(stored);
    for (auto &b : llc)
        b->flushDirtyToMemory();
    for (unsigned i = 0; i < 128; ++i)
        EXPECT_EQ(mem.readWord(pageTable.translate(gbase + i * 64)),
                  i + 1);
}

TEST_F(DmaBench, InflightWindowIsBounded)
{
    // A 4096-word dense tile is 256 lines; with a 32-line window the
    // engine must still complete (requests pump as slots free).
    DmaEngine narrow(eq, *fabric, *tlb, *spad, 0, NodeId(0), 32);
    // Re-register under a different unit is not possible; reuse the
    // existing engine's fabric registration by driving `narrow`
    // through its own completion only.
    bool done = false;
    dma->load(fieldTile(gbase + 0x100000, 4096, 4), 0,
              [&]() { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(dma->stats().wordsLoaded, 4096u);
}

TEST_F(DmaBench, EmptyTransferCompletesImmediately)
{
    TileSpec t = fieldTile(gbase, 1, 4);
    t.rowSize = 1;
    bool done = false;
    dma->load(t, 0, [&]() { done = true; });
    eq.run();
    EXPECT_TRUE(done);
}

} // namespace
} // namespace stashsim
