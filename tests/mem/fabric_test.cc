/**
 * @file
 * Unit tests for the Fabric's (node, unit) addressing, requester
 * return routing, LLC interleaving, in-flight accounting, and the
 * bound serial-mode auto-flush path that the sharded engine's
 * determinism contract builds on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/fabric.hh"

namespace stashsim
{
namespace
{

/** A MemObject that records every message it receives. */
class Sink : public MemObject
{
  public:
    void receive(const Msg &msg) override { received.push_back(msg); }

    std::vector<Msg> received;
};

MeshParams
defaultParams()
{
    MeshParams p;
    p.width = 4;
    p.height = 4;
    return p;
}

Msg
makeMsg(MsgType type, PhysAddr line_pa = 0x1000)
{
    Msg m;
    m.type = type;
    m.linePA = line_pa;
    m.mask = 0x3;
    return m;
}

TEST(FabricTest, RoutesToTheUnitAtTheNode)
{
    EventQueue eq;
    Mesh mesh(eq, defaultParams());
    Fabric fabric(mesh);

    // Two different units share node 3; a third sink lives elsewhere.
    Sink llcAt3, l1At3, llcAt7;
    fabric.registerObject(3, Unit::Llc, &llcAt3);
    fabric.registerObject(3, Unit::L1, &l1At3);
    fabric.registerObject(7, Unit::Llc, &llcAt7);

    fabric.send(0, 3, Unit::Llc, makeMsg(MsgType::ReadReq));
    fabric.send(0, 3, Unit::L1, makeMsg(MsgType::InvReq));
    eq.run();

    ASSERT_EQ(llcAt3.received.size(), 1u);
    EXPECT_EQ(llcAt3.received[0].type, MsgType::ReadReq);
    ASSERT_EQ(l1At3.received.size(), 1u);
    EXPECT_EQ(l1At3.received[0].type, MsgType::InvReq);
    EXPECT_TRUE(llcAt7.received.empty());
}

TEST(FabricTest, SendToRequesterUsesTheCoreTable)
{
    EventQueue eq;
    Mesh mesh(eq, defaultParams());
    Fabric fabric(mesh);

    // Core 2 lives at node 5; its stash — not its L1 — asked.
    Sink stashAt5, l1At5;
    fabric.registerObject(5, Unit::Stash, &stashAt5);
    fabric.registerObject(5, Unit::L1, &l1At5);
    fabric.registerCore(2, 5);
    EXPECT_EQ(fabric.nodeOfCore(2), 5u);

    Msg resp = makeMsg(MsgType::ReadResp);
    resp.requester = 2;
    resp.requesterUnit = Unit::Stash;
    fabric.sendToRequester(/*src=*/9, resp);
    eq.run();

    ASSERT_EQ(stashAt5.received.size(), 1u);
    EXPECT_EQ(stashAt5.received[0].type, MsgType::ReadResp);
    EXPECT_TRUE(l1At5.received.empty());
}

TEST(FabricTest, LlcBanksInterleaveByLine)
{
    EventQueue eq;
    Mesh mesh(eq, defaultParams());
    Fabric fabric(mesh);

    // Line-granularity interleaving: bank = (pa / 64) % 16.
    EXPECT_EQ(fabric.nodeOfLlc(0), 0u);
    EXPECT_EQ(fabric.nodeOfLlc(lineBytes), 1u);
    EXPECT_EQ(fabric.nodeOfLlc(15 * lineBytes), 15u);
    EXPECT_EQ(fabric.nodeOfLlc(16 * lineBytes), 0u);
    // Same line, different word: same bank.
    EXPECT_EQ(fabric.nodeOfLlc(16 * lineBytes + 4),
              fabric.nodeOfLlc(16 * lineBytes));
}

TEST(FabricTest, TracksInFlightPerType)
{
    EventQueue eq;
    Mesh mesh(eq, defaultParams());
    Fabric fabric(mesh);

    Sink sink;
    fabric.registerObject(1, Unit::Llc, &sink);

    fabric.send(0, 1, Unit::Llc, makeMsg(MsgType::ReadReq));
    fabric.send(0, 1, Unit::Llc, makeMsg(MsgType::WbReq));
    EXPECT_EQ(fabric.inFlight(MsgType::ReadReq), 1u);
    EXPECT_EQ(fabric.inFlight(MsgType::WbReq), 1u);
    EXPECT_EQ(fabric.totalInFlight(), 2u);

    eq.run();
    EXPECT_EQ(fabric.totalInFlight(), 0u);
    EXPECT_EQ(sink.received.size(), 2u);
}

/**
 * The bound serial path: sends are staged per source node and an
 * internal per-tick flush event routes them in canonical
 * (tick, src node, send order) order.  Deliveries must still arrive,
 * and in src-major order for same-tick sends.
 */
TEST(FabricTest, BoundSerialModeFlushesStagedSendsAutomatically)
{
    EventQueue eq;
    Mesh mesh(eq, defaultParams());
    Fabric fabric(mesh);
    fabric.bindQueues(
        std::vector<EventQueue *>(mesh.numNodes(), &eq),
        /*sharded=*/false);

    Sink sink;
    fabric.registerObject(0, Unit::Llc, &sink);

    // Stage two same-tick sends from different sources, higher source
    // id first: the canonical flush must route node 2's before node
    // 5's regardless of send order.  Equal path lengths, so arrival
    // order follows routing (ejection-channel reservation) order.
    eq.schedule(100, [&] {
        fabric.send(5, 0, Unit::Llc, makeMsg(MsgType::WbReq, 0x100));
        fabric.send(2, 0, Unit::Llc, makeMsg(MsgType::WbReq, 0x200));
    });
    eq.run();

    ASSERT_EQ(sink.received.size(), 2u);
    EXPECT_EQ(sink.received[0].linePA, 0x200u);
    EXPECT_EQ(sink.received[1].linePA, 0x100u);
    EXPECT_EQ(fabric.totalInFlight(), 0u);
}

/** Same-tick staging arms exactly one internal flush event. */
TEST(FabricTest, ArmsOneFlushEventPerTick)
{
    EventQueue eq;
    Mesh mesh(eq, defaultParams());
    Fabric fabric(mesh);
    fabric.bindQueues(
        std::vector<EventQueue *>(mesh.numNodes(), &eq),
        /*sharded=*/false);

    Sink sink;
    fabric.registerObject(3, Unit::Llc, &sink);

    eq.schedule(40, [&] {
        for (int i = 0; i < 4; ++i)
            fabric.send(0, 3, Unit::Llc, makeMsg(MsgType::ReadReq));
    });
    // run() counts internal events; eventsExecuted() does not.  The
    // difference is the flush events: one per staging tick, plus one
    // per delivery tick is NOT added (deliveries are ordinary events).
    const std::uint64_t ran = eq.run();
    EXPECT_EQ(ran, eq.eventsExecuted() + 1);
    EXPECT_EQ(sink.received.size(), 4u);
}

/**
 * Serial flushes run at the staging tick, so every entry shares one
 * tick: multiple sources take the src-major uniform-tick path and a
 * lone source takes the single-source path.  Neither merges or sorts.
 */
TEST(FabricTest, SerialFlushesTakeTheSortFreeFastPaths)
{
    EventQueue eq;
    Mesh mesh(eq, defaultParams());
    Fabric fabric(mesh);
    fabric.bindQueues(
        std::vector<EventQueue *>(mesh.numNodes(), &eq),
        /*sharded=*/false);

    Sink sink;
    fabric.registerObject(0, Unit::Llc, &sink);

    // Tick 100: two sources, one tick -> uniform-tick path.
    eq.schedule(100, [&] {
        fabric.send(5, 0, Unit::Llc, makeMsg(MsgType::WbReq, 0x100));
        fabric.send(2, 0, Unit::Llc, makeMsg(MsgType::WbReq, 0x200));
    });
    // Tick 900: one source -> single-source path.
    eq.schedule(900, [&] {
        fabric.send(7, 0, Unit::Llc, makeMsg(MsgType::ReadReq));
    });
    eq.run();

    ASSERT_EQ(sink.received.size(), 3u);
    EXPECT_EQ(sink.received[0].linePA, 0x200u); // src 2 before src 5
    EXPECT_EQ(sink.received[1].linePA, 0x100u);
    EXPECT_EQ(fabric.flushCount(), 2u);
    EXPECT_EQ(fabric.flushUniformTick(), 1u);
    EXPECT_EQ(fabric.flushSingleSource(), 1u);
    EXPECT_EQ(fabric.flushMerged(), 0u);
    EXPECT_EQ(fabric.flushResorted(), 0u);
}

/**
 * Sharded-style flush (manual flushStaged at a "barrier") with one
 * source staged across several ticks: the staging order is already
 * canonical, so the single-source path delivers without sorting.
 */
TEST(FabricTest, SingleSourceMultiTickFlushSkipsTheMerge)
{
    EventQueue src;  // node 2's shard queue
    EventQueue dst;  // every other node (incl. destination 3)
    Mesh mesh(dst, defaultParams());
    Fabric fabric(mesh);
    std::vector<EventQueue *> queues(mesh.numNodes(), &dst);
    queues[2] = &src;
    fabric.bindQueues(queues, /*sharded=*/true);

    Sink sink;
    fabric.registerObject(3, Unit::Llc, &sink);

    src.schedule(40, [&] {
        fabric.send(2, 3, Unit::Llc, makeMsg(MsgType::WbReq, 0x40));
    });
    src.schedule(90, [&] {
        fabric.send(2, 3, Unit::Llc, makeMsg(MsgType::WbReq, 0x90));
    });
    src.run();
    // Sharded mode never self-flushes: both sends are still staged.
    EXPECT_TRUE(sink.received.empty());
    EXPECT_FALSE(fabric.stagedEmpty());

    fabric.flushStaged();
    EXPECT_TRUE(fabric.stagedEmpty());
    dst.run();

    ASSERT_EQ(sink.received.size(), 2u);
    EXPECT_EQ(sink.received[0].linePA, 0x40u);
    EXPECT_EQ(sink.received[1].linePA, 0x90u);
    EXPECT_EQ(fabric.flushCount(), 1u);
    EXPECT_EQ(fabric.flushSingleSource(), 1u);
    EXPECT_EQ(fabric.flushUniformTick(), 0u);
    EXPECT_EQ(fabric.flushMerged(), 0u);
    EXPECT_EQ(fabric.flushResorted(), 0u);
}

/**
 * Several sources staged at different ticks: the k-way cursor merge
 * must interleave the mailboxes into global (tick, src) order.  Both
 * sources sit one hop from the destination, so equal route latency
 * makes delivery order mirror the canonical staging order.
 */
TEST(FabricTest, MergedFlushInterleavesSourcesByTick)
{
    EventQueue srcA; // node 4 (one hop west of node 5)
    EventQueue srcB; // node 1 (one hop north of node 5)
    EventQueue dst;  // everything else, incl. destination 5
    Mesh mesh(dst, defaultParams());
    Fabric fabric(mesh);
    std::vector<EventQueue *> queues(mesh.numNodes(), &dst);
    queues[4] = &srcA;
    queues[1] = &srcB;
    fabric.bindQueues(queues, /*sharded=*/true);

    Sink sink;
    fabric.registerObject(5, Unit::Llc, &sink);

    // Stage at controller context by advancing the empty queues'
    // clocks directly; ticks interleave across the two sources.
    srcB.setTime(50);
    fabric.send(1, 5, Unit::Llc, makeMsg(MsgType::WbReq, 0xB1));
    srcA.setTime(100);
    fabric.send(4, 5, Unit::Llc, makeMsg(MsgType::WbReq, 0xA1));
    srcA.setTime(200);
    fabric.send(4, 5, Unit::Llc, makeMsg(MsgType::WbReq, 0xA2));
    srcB.setTime(300);
    fabric.send(1, 5, Unit::Llc, makeMsg(MsgType::WbReq, 0xB2));

    fabric.flushStaged();
    EXPECT_TRUE(fabric.stagedEmpty());
    dst.run();

    ASSERT_EQ(sink.received.size(), 4u);
    EXPECT_EQ(sink.received[0].linePA, 0xB1u);
    EXPECT_EQ(sink.received[1].linePA, 0xA1u);
    EXPECT_EQ(sink.received[2].linePA, 0xA2u);
    EXPECT_EQ(sink.received[3].linePA, 0xB2u);
    EXPECT_EQ(fabric.flushCount(), 1u);
    EXPECT_EQ(fabric.flushMerged(), 1u);
    EXPECT_EQ(fabric.flushSingleSource(), 0u);
    EXPECT_EQ(fabric.flushUniformTick(), 0u);
    EXPECT_EQ(fabric.flushResorted(), 0u);

    // The arena retains capacity across flushes: a second staging
    // round on the same mailboxes must not count as resorted.
    srcA.setTime(400);
    fabric.send(4, 5, Unit::Llc, makeMsg(MsgType::WbReq, 0xA3));
    fabric.flushStaged();
    dst.run();
    EXPECT_EQ(sink.received.size(), 5u);
    EXPECT_EQ(fabric.flushSingleSource(), 1u);
    EXPECT_EQ(fabric.flushResorted(), 0u);
}

/**
 * Defensive resort fallback: if a source's staging ticks ever run
 * backwards (no current send path does this), the flush detects the
 * unordered mailbox, stable-sorts it, and still delivers in canonical
 * tick order.
 */
TEST(FabricTest, OutOfOrderStagingTriggersTheResortFallback)
{
    EventQueue src; // node 2's shard queue
    EventQueue dst;
    Mesh mesh(dst, defaultParams());
    Fabric fabric(mesh);
    std::vector<EventQueue *> queues(mesh.numNodes(), &dst);
    queues[2] = &src;
    fabric.bindQueues(queues, /*sharded=*/true);

    Sink sink;
    fabric.registerObject(3, Unit::Llc, &sink);

    // setTime on an empty queue may move backward (down to
    // lastEventTick), which lets us forge a tick that runs backwards.
    src.setTime(100);
    fabric.send(2, 3, Unit::Llc, makeMsg(MsgType::WbReq, 0x100));
    src.setTime(50);
    fabric.send(2, 3, Unit::Llc, makeMsg(MsgType::WbReq, 0x50));

    fabric.flushStaged();
    dst.run();

    ASSERT_EQ(sink.received.size(), 2u);
    EXPECT_EQ(sink.received[0].linePA, 0x50u);
    EXPECT_EQ(sink.received[1].linePA, 0x100u);
    EXPECT_EQ(fabric.flushResorted(), 1u);
    EXPECT_EQ(fabric.flushCount(), 1u);
    EXPECT_EQ(fabric.flushSingleSource(), 1u);
}

} // namespace
} // namespace stashsim
