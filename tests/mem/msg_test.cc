/**
 * @file
 * Unit tests for coherence message metadata: sizes and traffic
 * classes (the accounting behind Figure 5d).
 */

#include <gtest/gtest.h>

#include "mem/coherence/denovo.hh"
#include "mem/coherence/msg.hh"

namespace stashsim
{
namespace
{

Msg
makeMsg(MsgType t, WordMask mask)
{
    Msg m;
    m.type = t;
    m.mask = mask;
    return m;
}

TEST(MsgTest, ControlMessagesAreHeaderOnly)
{
    for (MsgType t : {MsgType::ReadReq, MsgType::RegReq,
                      MsgType::RegAck, MsgType::InvReq, MsgType::WbAck,
                      MsgType::FwdReadReq, MsgType::FwdRetry,
                      MsgType::DmaReadReq, MsgType::DmaWriteAck}) {
        EXPECT_EQ(msgBytes(makeMsg(t, fullLineMask)), 8u)
            << msgTypeName(t);
    }
}

TEST(MsgTest, DataMessagesScaleWithWordCount)
{
    // Partial-line transfers are the stash's compactness story: a
    // one-word response is 12 bytes, a full line 72.
    EXPECT_EQ(msgBytes(makeMsg(MsgType::ReadResp, wordBit(3))), 12u);
    EXPECT_EQ(msgBytes(makeMsg(MsgType::ReadResp, fullLineMask)),
              8u + 64u);
    EXPECT_EQ(msgBytes(makeMsg(MsgType::WbReq, 0x00ff)), 8u + 32u);
    EXPECT_EQ(msgBytes(makeMsg(MsgType::DmaWriteReq, 0x0003)), 16u);
}

TEST(MsgTest, TrafficClassesMatchFigure5d)
{
    EXPECT_EQ(msgClassOf(MsgType::ReadReq), MsgClass::Read);
    EXPECT_EQ(msgClassOf(MsgType::ReadResp), MsgClass::Read);
    EXPECT_EQ(msgClassOf(MsgType::FwdReadReq), MsgClass::Read);
    EXPECT_EQ(msgClassOf(MsgType::DmaReadResp), MsgClass::Read);
    EXPECT_EQ(msgClassOf(MsgType::RegReq), MsgClass::Write);
    EXPECT_EQ(msgClassOf(MsgType::RegAck), MsgClass::Write);
    EXPECT_EQ(msgClassOf(MsgType::InvReq), MsgClass::Write);
    EXPECT_EQ(msgClassOf(MsgType::WbReq), MsgClass::Writeback);
    EXPECT_EQ(msgClassOf(MsgType::WbAck), MsgClass::Writeback);
    EXPECT_EQ(msgClassOf(MsgType::DmaWriteReq), MsgClass::Writeback);
}

TEST(MsgTest, WordMaskHelpers)
{
    EXPECT_EQ(popcount(fullLineMask), 16u);
    EXPECT_EQ(popcount(WordMask(0)), 0u);
    EXPECT_EQ(wordBit(0), 1u);
    EXPECT_EQ(wordBit(15), 0x8000u);
}

TEST(DenovoTest, StatePredicates)
{
    EXPECT_FALSE(readable(WordState::Invalid));
    EXPECT_TRUE(readable(WordState::Valid));
    EXPECT_TRUE(readable(WordState::Registered));
    EXPECT_FALSE(writable(WordState::Invalid));
    EXPECT_FALSE(writable(WordState::Valid));
    EXPECT_TRUE(writable(WordState::Registered));
}

} // namespace
} // namespace stashsim
