/**
 * @file
 * Unit tests of the pluggable memory backends (src/mem/backend):
 * the latency contract of each model, completion-time sampling,
 * STT-MRAM write-pausing and read-port stalls, the SCM DRAM-cache's
 * hit/miss/spill paths and channel serialization, snapshot round
 * trips of each backend's internal state, and the LLC bank's
 * accept/serve invariant (an in-service line is never an eviction
 * victim).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "config/system_config.hh"
#include "mem/backend/mem_backend.hh"
#include "mem/backend/scmcache_backend.hh"
#include "mem/backend/sttmram_backend.hh"
#include "mem/coherence/msg.hh"
#include "mem/fabric.hh"
#include "mem/llc.hh"
#include "mem/main_memory.hh"
#include "noc/mesh.hh"
#include "snapshot/snapshot.hh"

namespace stashsim
{
namespace
{

/** Field-by-field stats equality, kept in sync by visit(). */
void
expectStatsEq(const MemBackendStats &a, const MemBackendStats &b)
{
    std::vector<std::pair<std::string, Counter>> av, bv;
    MemBackendStats::visit(a, [&](const char *n, const Counter &c) {
        av.emplace_back(n, c);
    });
    MemBackendStats::visit(b, [&](const char *n, const Counter &c) {
        bv.emplace_back(n, c);
    });
    EXPECT_EQ(av, bv);
}

/** One backend's snapshot as a full serialized image. */
std::vector<std::uint8_t>
snapshotBytes(const MemBackend &b)
{
    SnapshotWriter w;
    w.beginSection("x");
    b.snapshot(w);
    w.endSection();
    return w.serialize();
}

void
restoreFromBytes(MemBackend &b, const std::vector<std::uint8_t> &img)
{
    SnapshotReader r(img);
    r.openSection("x");
    b.restore(r);
    r.closeSection();
}

TEST(MemBackendFactoryTest, BuildsEveryRegisteredKind)
{
    EventQueue eq;
    MainMemory mem;
    for (const MemBackendInfo &info : memBackendList()) {
        MemBackendConfig cfg;
        cfg.kind = info.kind;
        auto b = makeMemBackend(cfg, eq, mem, gpuClockPeriod);
        ASSERT_NE(b, nullptr) << info.name;
        EXPECT_EQ(b->kind(), info.kind) << info.name;
        EXPECT_STREQ(b->name(), info.name);
    }
}

TEST(FixedBackendTest, DefaultLatencyAndCompletionTimeSampling)
{
    EventQueue eq;
    MainMemory mem;
    mem.writeWord(0x1000, 0x11);
    auto b = makeMemBackend(MemBackendConfig{}, eq, mem,
                            gpuClockPeriod);

    Tick doneTick = 0;
    LineData got{};
    b->readLine(0x1000, [&](const LineData &d) {
        doneTick = eq.curTick();
        got = d;
    });
    // A write landing between request and completion must be visible
    // in the fill — the classic inline model sampled at completion.
    eq.scheduleIn(10, [&] { mem.writeWord(0x1000, 0x42); });
    eq.run();

    EXPECT_EQ(doneTick, Tick(168) * gpuClockPeriod);
    EXPECT_EQ(got.w[0], 0x42u);
    EXPECT_EQ(b->stats().reads, 1u);

    // Writes commit functionally right away (fire-and-forget).
    LineData d{};
    d.w[1] = 0x77;
    b->writeLine(0x1000, wordBit(1), d);
    EXPECT_EQ(mem.readWord(0x1000 + 4), 0x77u);
    EXPECT_EQ(b->stats().writes, 1u);
}

TEST(FixedBackendTest, SnapshotRoundTripCarriesStats)
{
    EventQueue eq;
    MainMemory mem;
    auto a = makeMemBackend(MemBackendConfig{}, eq, mem, 1);
    a->readLine(0x1000, [](const LineData &) {});
    a->writeLine(0x2000, fullLineMask, LineData{});
    eq.run();

    auto b = makeMemBackend(MemBackendConfig{}, eq, mem, 1);
    const auto img = snapshotBytes(*a);
    restoreFromBytes(*b, img);
    expectStatsEq(b->stats(), a->stats());
    EXPECT_EQ(snapshotBytes(*b), img);
}

TEST(SttMramBackendTest, UnloadedReadLatency)
{
    EventQueue eq;
    MainMemory mem;
    MemBackendConfig cfg;
    cfg.kind = MemBackendKind::SttMram;
    SttMramBackend b(cfg, eq, mem, 1); // clock 1: ticks == cycles

    Tick doneTick = 0;
    b.readLine(0x1000, [&](const LineData &) { doneTick = eq.curTick(); });
    eq.run();
    EXPECT_EQ(doneTick, Tick(cfg.sttReadCycles));
    EXPECT_EQ(b.stats().readStallTicks, 0u);
    EXPECT_EQ(b.stats().writePauses, 0u);
}

TEST(SttMramBackendTest, ReadPausesPendingWrites)
{
    EventQueue eq;
    MainMemory mem;
    MemBackendConfig cfg;
    cfg.kind = MemBackendKind::SttMram;
    SttMramBackend b(cfg, eq, mem, 1);

    b.writeLine(0x1000, fullLineMask, LineData{}); // completes at 450
    ASSERT_EQ(b.pendingWrites(), 1u);

    // The read preempts the in-flight write: it is not delayed itself
    // (queue far from full), but the write is suspended for the
    // read's 140-cycle service time and now completes at 590.
    Tick doneTick = 0;
    b.readLine(0x2000, [&](const LineData &) { doneTick = eq.curTick(); });
    eq.run();
    EXPECT_EQ(doneTick, Tick(140));
    EXPECT_EQ(b.stats().writePauses, 1u);
    EXPECT_EQ(b.stats().readStallTicks, 0u);

    std::size_t at589 = 99, at591 = 99;
    eq.scheduleIn(589 - eq.curTick(),
                  [&] { at589 = b.pendingWrites(); });
    eq.scheduleIn(591 - eq.curTick(),
                  [&] { at591 = b.pendingWrites(); });
    eq.run();
    EXPECT_EQ(at589, 1u) << "write should still be paused-shifted";
    EXPECT_EQ(at591, 0u);
}

TEST(SttMramBackendTest, FullWriteQueueStallsRead)
{
    EventQueue eq;
    MainMemory mem;
    MemBackendConfig cfg;
    cfg.kind = MemBackendKind::SttMram;
    cfg.sttWriteQueue = 2;
    SttMramBackend b(cfg, eq, mem, 1);

    // Writes serialize on the write port: done at 450 and 900.
    b.writeLine(0x1000, fullLineMask, LineData{});
    b.writeLine(0x2000, fullLineMask, LineData{});
    ASSERT_EQ(b.pendingWrites(), 2u);

    // Queue full: the read waits out the head write (450), then
    // preempts the survivor (900 -> shifted to 1040 by the pause).
    Tick doneTick = 0;
    b.readLine(0x3000, [&](const LineData &) { doneTick = eq.curTick(); });
    eq.run();
    EXPECT_EQ(doneTick, Tick(450 + 140));
    EXPECT_EQ(b.stats().readStallTicks, 450u);
    EXPECT_EQ(b.stats().writePauses, 1u);

    std::size_t at1039 = 99, at1041 = 99;
    eq.scheduleIn(1039 - eq.curTick(),
                  [&] { at1039 = b.pendingWrites(); });
    eq.scheduleIn(1041 - eq.curTick(),
                  [&] { at1041 = b.pendingWrites(); });
    eq.run();
    EXPECT_EQ(at1039, 1u);
    EXPECT_EQ(at1041, 0u);
}

TEST(SttMramBackendTest, SnapshotRoundTripPreservesWriteQueue)
{
    EventQueue eq;
    MainMemory mem;
    MemBackendConfig cfg;
    cfg.kind = MemBackendKind::SttMram;
    SttMramBackend a(cfg, eq, mem, 1);

    a.writeLine(0x1000, fullLineMask, LineData{});
    a.writeLine(0x2000, fullLineMask, LineData{});
    a.readLine(0x3000, [](const LineData &) {}); // pauses both writes
    eq.run(); // drain point: the fill landed, writes are plain data
    ASSERT_EQ(a.pendingWrites(), 2u);

    SttMramBackend b(cfg, eq, mem, 1);
    const auto img = snapshotBytes(a);
    restoreFromBytes(b, img);
    EXPECT_EQ(b.pendingWrites(), a.pendingWrites());
    expectStatsEq(b.stats(), a.stats());
    EXPECT_EQ(snapshotBytes(b), img) << "restore must be a fixed point";

    // Behavioral equivalence from the restored state: an identical
    // next read sees the identical queue and completes in lockstep.
    Tick doneA = 0, doneB = 0;
    a.readLine(0x4000, [&](const LineData &) { doneA = eq.curTick(); });
    b.readLine(0x4000, [&](const LineData &) { doneB = eq.curTick(); });
    eq.run();
    EXPECT_EQ(doneA, doneB);
    EXPECT_EQ(snapshotBytes(a), snapshotBytes(b));
}

TEST(ScmCacheBackendTest, MissFillsThenHitIsFast)
{
    EventQueue eq;
    MainMemory mem;
    MemBackendConfig cfg;
    cfg.kind = MemBackendKind::ScmCache;
    ScmCacheBackend b(cfg, eq, mem, 1);

    // Cold miss: SCM read latency, and the line fills the DRAM cache.
    Tick missTick = 0;
    b.readLine(0x40000, [&](const LineData &) { missTick = eq.curTick(); });
    eq.run();
    EXPECT_EQ(missTick, Tick(cfg.scmReadCycles));
    EXPECT_EQ(b.stats().dcacheMisses, 1u);
    EXPECT_EQ(b.stats().scmReads, 1u);
    EXPECT_EQ(b.residentLines(), 1u);

    // Re-read: DRAM-cache hit at the (much lower) DRAM latency.
    const Tick start = eq.curTick();
    Tick hitTick = 0;
    b.readLine(0x40000, [&](const LineData &) { hitTick = eq.curTick(); });
    eq.run();
    EXPECT_EQ(hitTick - start, Tick(cfg.scmHitCycles));
    EXPECT_EQ(b.stats().dcacheHits, 1u);
}

TEST(ScmCacheBackendTest, BackToBackMissesSerializeOnScmChannel)
{
    EventQueue eq;
    MainMemory mem;
    MemBackendConfig cfg;
    cfg.kind = MemBackendKind::ScmCache;
    ScmCacheBackend b(cfg, eq, mem, 1);

    // Two independent misses in the same cycle: latency pipelines,
    // but the second must wait out the first's SCM channel occupancy.
    Tick done0 = 0, done1 = 0;
    b.readLine(0x40000, [&](const LineData &) { done0 = eq.curTick(); });
    b.readLine(0x80000, [&](const LineData &) { done1 = eq.curTick(); });
    eq.run();
    EXPECT_EQ(done0, Tick(cfg.scmReadCycles));
    EXPECT_EQ(done1, Tick(cfg.scmOccupancy + cfg.scmReadCycles));
    EXPECT_EQ(b.stats().readStallTicks, Counter(cfg.scmOccupancy));
}

TEST(ScmCacheBackendTest, DirtyVictimSpillsToScm)
{
    EventQueue eq;
    MainMemory mem;
    MemBackendConfig cfg;
    cfg.kind = MemBackendKind::ScmCache;
    cfg.scmCacheLines = 8;
    cfg.scmCacheAssoc = 8; // one set: the 9th line must evict
    ScmCacheBackend b(cfg, eq, mem, 1);

    // LLC writebacks are write-allocate: they dirty the DRAM cache
    // without touching SCM.
    for (PhysAddr i = 0; i < 8; ++i)
        b.writeLine(i * 1024, fullLineMask, LineData{});
    EXPECT_EQ(b.residentLines(), 8u);
    EXPECT_EQ(b.dirtyLines(), 8u);
    EXPECT_EQ(b.stats().scmWrites, 0u);

    // The 9th allocation evicts the LRU dirty line: one SCM spill,
    // holding the SCM channel for the full write time.
    b.writeLine(8 * 1024, fullLineMask, LineData{});
    EXPECT_EQ(b.stats().scmWrites, 1u);
    EXPECT_EQ(b.residentLines(), 8u);
    EXPECT_EQ(b.dirtyLines(), 8u);

    // The spilled line is gone (a re-read misses), and the spill's
    // channel hold delays that SCM read.
    Tick doneTick = 0;
    b.readLine(0, [&](const LineData &) { doneTick = eq.curTick(); });
    eq.run();
    EXPECT_EQ(b.stats().dcacheMisses, 1u);
    EXPECT_EQ(doneTick, Tick(cfg.scmWriteCycles + cfg.scmReadCycles));
}

TEST(ScmCacheBackendTest, SnapshotRoundTripPreservesCacheAndChannels)
{
    EventQueue eq;
    MainMemory mem;
    MemBackendConfig cfg;
    cfg.kind = MemBackendKind::ScmCache;
    cfg.scmCacheLines = 8;
    cfg.scmCacheAssoc = 2;
    ScmCacheBackend a(cfg, eq, mem, 1);

    a.writeLine(0x1000, fullLineMask, LineData{});
    a.readLine(0x2000, [](const LineData &) {});
    a.readLine(0x1000, [](const LineData &) {}); // hit, bumps LRU
    eq.run();

    ScmCacheBackend b(cfg, eq, mem, 1);
    const auto img = snapshotBytes(a);
    restoreFromBytes(b, img);
    EXPECT_EQ(b.residentLines(), a.residentLines());
    EXPECT_EQ(b.dirtyLines(), a.dirtyLines());
    expectStatsEq(b.stats(), a.stats());
    EXPECT_EQ(snapshotBytes(b), img) << "restore must be a fixed point";

    // From the restored tags and busy-until clocks, the next access
    // behaves identically: same hit/miss outcome, same completion.
    Tick doneA = 0, doneB = 0;
    a.readLine(0x2000, [&](const LineData &) { doneA = eq.curTick(); });
    b.readLine(0x2000, [&](const LineData &) { doneB = eq.curTick(); });
    eq.run();
    EXPECT_EQ(doneA, doneB);
    EXPECT_EQ(a.stats().dcacheHits, b.stats().dcacheHits);
    EXPECT_EQ(snapshotBytes(a), snapshotBytes(b));

    // Geometry mismatch is a structured error, not silent corruption.
    MemBackendConfig other = cfg;
    other.scmCacheAssoc = 4;
    ScmCacheBackend wrong(other, eq, mem, 1);
    EXPECT_THROW(restoreFromBytes(wrong, img), SnapshotError);
}

TEST(SnapshotConfigHashTest, CoversBackendKindAndEveryKnob)
{
    SystemConfig base = SystemConfig::microbenchmarkDefault();
    const std::uint64_t h0 = snapshotConfigHash(base);

    SystemConfig kind = base;
    kind.memBackend.kind = MemBackendKind::SttMram;
    EXPECT_NE(snapshotConfigHash(kind), h0);

    // Even a knob of an unselected backend folds into the hash: a
    // checkpoint can never silently restore under a different memory
    // system.
    SystemConfig knob = base;
    knob.memBackend.scmWriteCycles += 1;
    EXPECT_NE(snapshotConfigHash(knob), h0);

    SystemConfig dram = base;
    dram.memBackend.dramCycles += 1;
    EXPECT_NE(snapshotConfigHash(dram), h0);
}

/** Collects the responses the LLC sends back to the requester. */
struct RespSink : MemObject
{
    std::vector<Msg> got;
    void receive(const Msg &m) override { got.push_back(m); }
};

/**
 * Regression for the accept/serve invariant: a line with a bank
 * access in flight (accepted, serve pending) must never be chosen as
 * an eviction victim by a concurrent miss in the same set.  The old
 * code defensively re-looked-up the line at serve time and refetched
 * it when gone; now allocLine() skips in-service lines and serve
 * asserts presence, so the refetch (a 4th fill here) cannot happen.
 */
TEST(LlcBankInvariantTest, InServiceLineIsNotAnEvictionVictim)
{
    EventQueue eq;
    MainMemory mem;
    Mesh mesh(eq, MeshParams{});
    Fabric fabric(mesh);
    auto backend = makeMemBackend(MemBackendConfig{}, eq, mem,
                                  gpuClockPeriod);

    // One set, two ways: the third distinct line must evict.
    LlcBank::Params p;
    p.assoc = 2;
    p.bankBytes = lineBytes * p.assoc;
    LlcBank bank(eq, fabric, *backend, NodeId(0), p);

    RespSink sink;
    fabric.registerObject(NodeId(0), Unit::L1, &sink);
    fabric.registerCore(0, NodeId(0));

    const PhysAddr A = 0x10000, B = 0x10400, C = 0x10800;
    mem.writeWord(A, 0xa0);
    mem.writeWord(B, 0xb0);
    mem.writeWord(C, 0xc0);

    auto read = [](PhysAddr pa) {
        Msg m;
        m.type = MsgType::ReadReq;
        m.requester = 0;
        m.requesterUnit = Unit::L1;
        m.linePA = pa;
        m.mask = fullLineMask;
        return m;
    };

    bank.receive(read(A));
    eq.run();
    bank.receive(read(B));
    eq.run();
    ASSERT_EQ(bank.stats().fills, 2u);
    // A was served before B: it is the set's LRU line.

    // Accept a hit on A (serve in flight), then a miss on C in the
    // same tick.  C's allocation must evict B, not the in-service A.
    bank.receive(read(A));
    bank.receive(read(C));
    eq.run();

    EXPECT_EQ(bank.stats().fills, 3u)
        << "the in-service line was evicted and refetched";
    EXPECT_EQ(bank.stats().reads, 4u);
    ASSERT_EQ(sink.got.size(), 4u);
    for (const Msg &m : sink.got)
        EXPECT_EQ(m.type, MsgType::ReadResp);
    EXPECT_EQ(sink.got[2].linePA, A);
    EXPECT_EQ(sink.got[2].data.w[0], 0xa0u);
    EXPECT_EQ(sink.got[3].linePA, C);
    EXPECT_EQ(sink.got[3].data.w[0], 0xc0u);
}

} // namespace
} // namespace stashsim
