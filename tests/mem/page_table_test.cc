/**
 * @file
 * Unit tests for the page table and per-core TLB.
 */

#include <gtest/gtest.h>

#include "mem/page_table.hh"
#include "mem/tlb.hh"

namespace stashsim
{
namespace
{

TEST(PageTableTest, FirstTouchAllocatesDistinctPages)
{
    PageTable pt;
    const PhysAddr p0 = pt.translate(0x10000);
    const PhysAddr p1 = pt.translate(0x20000);
    EXPECT_NE(pageBase(p0), pageBase(p1));
    EXPECT_EQ(pt.numPages(), 2u);
}

TEST(PageTableTest, TranslationIsStable)
{
    PageTable pt;
    const PhysAddr a = pt.translate(0x12345678);
    EXPECT_EQ(pt.translate(0x12345678), a);
    EXPECT_EQ(pt.numPages(), 1u);
}

TEST(PageTableTest, OffsetWithinPagePreserved)
{
    PageTable pt;
    const PhysAddr base = pt.translate(0x5000);
    EXPECT_EQ(pt.translate(0x5004), base + 4);
    EXPECT_EQ(pt.translate(0x5ffc), pageBase(base) + 0xffc);
}

TEST(PageTableTest, PhysicalSpaceIsDisjointFromVirtual)
{
    // Physical pages start above 4 GB so VA/PA confusion traps.
    PageTable pt;
    EXPECT_GE(pt.translate(0x1000), PhysAddr{4} << 30);
}

TEST(PageTableTest, ReverseInvertsTranslate)
{
    PageTable pt;
    for (Addr va : {Addr(0x1000), Addr(0x7f000), Addr(0x12340abc)}) {
        const PhysAddr pa = pt.translate(va);
        Addr back = 0;
        ASSERT_TRUE(pt.reverse(pa, &back));
        EXPECT_EQ(back, va);
    }
}

TEST(PageTableTest, ReverseFailsForUnmapped)
{
    PageTable pt;
    Addr back;
    EXPECT_FALSE(pt.reverse(PhysAddr{5} << 30, &back));
}

TEST(TlbTest, CountsAccessesAndMisses)
{
    PageTable pt;
    Tlb tlb(pt, 4);
    tlb.translate(0x1000);
    tlb.translate(0x1004); // same page: hit
    tlb.translate(0x2000); // new page: miss
    EXPECT_EQ(tlb.accesses(), 3u);
    EXPECT_EQ(tlb.misses(), 2u);
}

TEST(TlbTest, AgreesWithPageTable)
{
    PageTable pt;
    Tlb tlb(pt, 8);
    const PhysAddr via_tlb = tlb.translate(0x9000);
    EXPECT_EQ(via_tlb, pt.translate(0x9000));
}

TEST(TlbTest, LruEvictionKeepsHotPages)
{
    PageTable pt;
    Tlb tlb(pt, 2);
    tlb.translate(0x1000);
    tlb.translate(0x2000);
    tlb.translate(0x1000);  // refresh page 1
    tlb.translate(0x3000);  // evicts page 2
    EXPECT_EQ(tlb.size(), 2u);
    const auto misses_before = tlb.misses();
    tlb.translate(0x1000); // still resident
    EXPECT_EQ(tlb.misses(), misses_before);
    tlb.translate(0x2000); // was evicted
    EXPECT_EQ(tlb.misses(), misses_before + 1);
}

TEST(TlbTest, CapacityBounded)
{
    PageTable pt;
    Tlb tlb(pt, 16);
    for (Addr p = 0; p < 64; ++p)
        tlb.translate(p * pageBytes);
    EXPECT_EQ(tlb.size(), 16u);
}

} // namespace
} // namespace stashsim
