/**
 * @file
 * Unit tests for the functional backing store.
 */

#include <gtest/gtest.h>

#include "mem/main_memory.hh"

namespace stashsim
{
namespace
{

TEST(MainMemoryTest, ReadsZeroBeforeFirstWrite)
{
    MainMemory mem;
    EXPECT_EQ(mem.readWord(0x1000), 0u);
    LineData d = mem.readLine(0x1000 & ~PhysAddr{63});
    for (unsigned w = 0; w < wordsPerLine; ++w)
        EXPECT_EQ(d.w[w], 0u);
}

TEST(MainMemoryTest, WordWriteReadRoundTrip)
{
    MainMemory mem;
    mem.writeWord(0x2004, 0xdeadbeef);
    EXPECT_EQ(mem.readWord(0x2004), 0xdeadbeefu);
    EXPECT_EQ(mem.readWord(0x2000), 0u);
}

TEST(MainMemoryTest, MaskedLineWritePreservesOtherWords)
{
    MainMemory mem;
    mem.writeWord(0x3000, 111);
    LineData d;
    d.w[1] = 222;
    d.w[3] = 333;
    mem.writeLine(0x3000, wordBit(1) | wordBit(3), d);
    EXPECT_EQ(mem.readWord(0x3000), 111u);
    EXPECT_EQ(mem.readWord(0x3004), 222u);
    EXPECT_EQ(mem.readWord(0x3008), 0u);
    EXPECT_EQ(mem.readWord(0x300c), 333u);
}

TEST(MainMemoryTest, SparseLinesTracked)
{
    MainMemory mem;
    mem.writeWord(0x0, 1);
    mem.writeWord(0x40, 2);
    mem.writeWord(0x44, 3);
    EXPECT_EQ(mem.linesTouched(), 2u);
}

TEST(MainMemoryTest, LineHelpersAgree)
{
    EXPECT_EQ(lineBase(0x12345), 0x12340u);
    EXPECT_EQ(lineWord(0x12344), 1u);
    EXPECT_EQ(wordBase(0x12346), 0x12344u);
    EXPECT_EQ(pageBase(0x12345), 0x12000u);
}

} // namespace
} // namespace stashsim
