/**
 * @file
 * Farm protocol tests (DESIGN.md §12): lease claims race to exactly
 * one winner, stale leases of dead workers are taken over, corrupt
 * artifacts land in QUARANTINE/ instead of being rerun over, the
 * attempt budget quarantines chronically failing specs as FAILED_*,
 * and a sweep drained by two concurrent workers — including one
 * interrupted mid-campaign — finishes with records identical to a
 * serial single-worker sweep.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include "driver/farm.hh"
#include "driver/sample.hh"
#include "driver/sweep.hh"
#include "workloads/workload_factory.hh"

namespace stashsim
{
namespace
{

namespace fs = std::filesystem;

std::string
freshDir(const std::string &name)
{
    const std::string d = ::testing::TempDir() + name;
    fs::remove_all(d);
    fs::create_directories(d);
    return d;
}

farm::FarmConfig
workerCfg(const std::string &id)
{
    farm::FarmConfig cfg;
    cfg.workerId = id;
    return cfg;
}

/** Files in @p dir whose name starts with @p prefix. */
std::vector<std::string>
filesWithPrefix(const std::string &dir, const std::string &prefix)
{
    std::vector<std::string> out;
    if (!fs::exists(dir))
        return out;
    for (const auto &de : fs::directory_iterator(dir))
        if (de.path().filename().string().rfind(prefix, 0) == 0)
            out.push_back(de.path().string());
    std::sort(out.begin(), out.end());
    return out;
}

/** The counted sweep grid from the resume tests: builds tells us
 *  exactly which specs actually re-simulated. */
std::vector<RunSpec>
grid(std::atomic<int> *builds = nullptr)
{
    std::vector<RunSpec> specs;
    for (const MemOrg org :
         {MemOrg::Scratch, MemOrg::Cache, MemOrg::Stash}) {
        RunSpec s;
        s.workload = "Reuse";
        s.org = org;
        s.scale = workloads::Scale::Smoke;
        s.shards = 1;
        if (builds) {
            s.make = [builds](const workloads::WorkloadParams &p) {
                builds->fetch_add(1, std::memory_order_relaxed);
                return workloads::WorkloadFactory::instance().make(
                    "Reuse", p);
            };
        }
        specs.push_back(std::move(s));
    }
    return specs;
}

std::string
recordFingerprint(const RunRecord &rec)
{
    std::ostringstream os;
    os << rec.spec.label()
       << " validated=" << rec.result.validated
       << " gpuCycles=" << rec.result.gpuCycles
       << " energy=" << rec.result.energy.total()
       << " events=" << rec.result.perf.events
       << " simTicks=" << rec.result.perf.simTicks << "\n";
    for (const auto &[key, value] : rec.result.stats.flatten())
        os << key << "=" << value << "\n";
    return os.str();
}

std::vector<std::string>
fingerprints(const std::vector<RunRecord> &recs)
{
    std::vector<std::string> out;
    for (const RunRecord &rec : recs)
        out.push_back(recordFingerprint(rec));
    return out;
}

SweepOptions
farmOpts(const std::string &dir, const std::string &worker,
         std::ostream *progress = nullptr)
{
    SweepOptions opts;
    opts.threads = 1;
    opts.shardsPerRun = 1;
    opts.progress = progress;
    opts.stateDir = dir;
    opts.checkpointEveryTicks = 1;
    opts.resume = true;
    opts.workerId = worker;
    return opts;
}

// ---- protocol level ----------------------------------------------

TEST(FarmProtocolTest, RacingClaimsYieldExactlyOneWinner)
{
    const std::string dir = freshDir("farm_race");
    constexpr int kWorkers = 8;
    std::atomic<int> claimed{0}, busy{0};
    std::vector<std::thread> pool;
    for (int w = 0; w < kWorkers; ++w) {
        pool.emplace_back([&, w]() {
            const farm::ClaimResult r = farm::tryClaim(
                dir, "spec", workerCfg("w" + std::to_string(w)));
            if (r.status == farm::ClaimStatus::Claimed)
                claimed.fetch_add(1);
            else
                busy.fetch_add(1);
        });
    }
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(claimed.load(), 1);
    EXPECT_EQ(busy.load(), kWorkers - 1);
    EXPECT_TRUE(farm::leaseExists(dir, "spec"));

    farm::Lease l;
    ASSERT_TRUE(farm::readLease(farm::leasePath(dir, "spec"), l));
    EXPECT_EQ(l.attempt, 1u);
    EXPECT_FALSE(l.released);
}

TEST(FarmProtocolTest, LiveLeaseIsBusyStaleLeaseIsStolen)
{
    const std::string dir = freshDir("farm_stale");
    ASSERT_EQ(farm::tryClaim(dir, "spec", workerCfg("alive")).status,
              farm::ClaimStatus::Claimed);
    // A fresh heartbeat blocks every other worker.
    EXPECT_EQ(farm::tryClaim(dir, "spec", workerCfg("thief")).status,
              farm::ClaimStatus::Busy);

    // Simulate the owner dying: rewind its heartbeat past the TTL.
    std::ofstream os(farm::leasePath(dir, "spec"), std::ios::trunc);
    os << "{\"schema\": \"stashsim-farm-lease-v1\", "
          "\"worker\": \"alive\", \"pid\": 1, \"heartbeatMs\": 1, "
          "\"attempt\": 1, \"released\": false}";
    os.close();

    const farm::ClaimResult takeover =
        farm::tryClaim(dir, "spec", workerCfg("thief"));
    EXPECT_EQ(takeover.status, farm::ClaimStatus::Claimed);
    EXPECT_EQ(takeover.attempt, 2u);
    EXPECT_TRUE(takeover.reclaimed)
        << "stealing a non-released lease is a reclaim";

    farm::Lease l;
    ASSERT_TRUE(farm::readLease(farm::leasePath(dir, "spec"), l));
    EXPECT_EQ(l.worker, "thief");
}

TEST(FarmProtocolTest, ReleasedLeaseIsClaimableAtNextAttempt)
{
    const std::string dir = freshDir("farm_retry");
    {
        const farm::ClaimResult r =
            farm::tryClaim(dir, "spec", workerCfg("w0"));
        ASSERT_EQ(r.status, farm::ClaimStatus::Claimed);
        farm::LeaseGuard guard(dir, "spec", workerCfg("w0"),
                               r.attempt);
        guard.releaseForRetry();
    }
    const farm::ClaimResult retry =
        farm::tryClaim(dir, "spec", workerCfg("w1"));
    EXPECT_EQ(retry.status, farm::ClaimStatus::Claimed);
    EXPECT_EQ(retry.attempt, 2u);
    EXPECT_FALSE(retry.reclaimed)
        << "claiming a released lease is a retry, not a reclaim";
}

TEST(FarmProtocolTest, AttemptBudgetExhaustionQuarantinesAsFailed)
{
    const std::string dir = freshDir("farm_budget");
    farm::FarmConfig cfg = workerCfg("w0");
    cfg.maxAttempts = 2;

    for (unsigned attempt = 1; attempt <= 2; ++attempt) {
        const farm::ClaimResult r = farm::tryClaim(dir, "spec", cfg);
        ASSERT_EQ(r.status, farm::ClaimStatus::Claimed);
        ASSERT_EQ(r.attempt, attempt);
        farm::LeaseGuard guard(dir, "spec", cfg, r.attempt);
        guard.releaseForRetry();
    }
    // The third claim would be attempt 3 > maxAttempts.
    EXPECT_EQ(farm::tryClaim(dir, "spec", cfg).status,
              farm::ClaimStatus::Exhausted);
    EXPECT_FALSE(farm::leaseExists(dir, "spec"))
        << "exhaustion must not leave a lease behind";

    unsigned attempts = 0;
    std::vector<std::string> errors;
    ASSERT_TRUE(farm::loadFailed(dir, "spec", attempts, errors));
    EXPECT_EQ(attempts, 2u);
    ASSERT_FALSE(errors.empty());

    // And every later claim short-circuits on the FAILED marker...
    EXPECT_EQ(farm::tryClaim(dir, "spec", cfg).status,
              farm::ClaimStatus::Exhausted);
    // ...until a fresh campaign clears it.
    farm::clearFailed(dir, "spec");
    EXPECT_EQ(farm::tryClaim(dir, "spec", cfg).status,
              farm::ClaimStatus::Claimed);
}

TEST(FarmProtocolTest, CorruptLeaseIsQuarantinedThenReclaimed)
{
    const std::string dir = freshDir("farm_corrupt_lease");
    {
        std::ofstream os(farm::leasePath(dir, "spec"));
        os << "this is not a lease";
    }
    // First pass quarantines the wreck (Busy: someone else may be
    // mid-recovery), the next claims fresh.
    EXPECT_EQ(farm::tryClaim(dir, "spec", workerCfg("w0")).status,
              farm::ClaimStatus::Busy);
    EXPECT_FALSE(farm::leaseExists(dir, "spec"));
    EXPECT_EQ(filesWithPrefix(dir + "/QUARANTINE", "LEASE_").size(),
              1u);
    EXPECT_EQ(farm::tryClaim(dir, "spec", workerCfg("w0")).status,
              farm::ClaimStatus::Claimed);
}

TEST(FarmProtocolTest, DoneReleaseRemovesOnlyOwnLease)
{
    const std::string dir = freshDir("farm_done");
    const farm::ClaimResult r =
        farm::tryClaim(dir, "spec", workerCfg("w0"));
    ASSERT_EQ(r.status, farm::ClaimStatus::Claimed);
    {
        farm::LeaseGuard guard(dir, "spec", workerCfg("w0"),
                               r.attempt);
        guard.releaseDone();
    }
    EXPECT_FALSE(farm::leaseExists(dir, "spec"));

    // A lease stolen while we ran must survive our releaseDone.
    const farm::ClaimResult r2 =
        farm::tryClaim(dir, "spec", workerCfg("w0"));
    ASSERT_EQ(r2.status, farm::ClaimStatus::Claimed);
    {
        farm::LeaseGuard guard(dir, "spec", workerCfg("w0"),
                               r2.attempt);
        std::ofstream os(farm::leasePath(dir, "spec"),
                         std::ios::trunc);
        os << "{\"schema\": \"stashsim-farm-lease-v1\", "
              "\"worker\": \"thief\", \"pid\": 2, \"heartbeatMs\": "
              "999999999999999, \"attempt\": 2, \"released\": false}";
        os.close();
        guard.releaseDone();
    }
    farm::Lease l;
    ASSERT_TRUE(farm::readLease(farm::leasePath(dir, "spec"), l));
    EXPECT_EQ(l.worker, "thief");
}

// ---- sweep level -------------------------------------------------

TEST(FarmSweepTest, TwoWorkersDrainOneSweepByteIdentical)
{
    // Serial single-worker reference.
    SweepOptions serialOpts;
    serialOpts.threads = 1;
    serialOpts.shardsPerRun = 1;
    const auto reference = SweepDriver(serialOpts).run(grid());
    for (const RunRecord &rec : reference)
        ASSERT_TRUE(rec.result.validated) << rec.spec.label();

    // Two workers race over one state dir; each must come back with
    // the complete, identical record set (own runs + peer caches).
    const std::string dir = freshDir("farm_two_workers");
    std::vector<RunRecord> a, b;
    SweepCounters ca, cb;
    std::thread ta([&]() {
        a = SweepDriver(farmOpts(dir, "alpha")).run(grid(), &ca);
    });
    std::thread tb([&]() {
        b = SweepDriver(farmOpts(dir, "beta")).run(grid(), &cb);
    });
    ta.join();
    tb.join();

    EXPECT_EQ(fingerprints(reference), fingerprints(a));
    EXPECT_EQ(fingerprints(reference), fingerprints(b));
    EXPECT_TRUE(filesWithPrefix(dir, "LEASE_").empty())
        << "no orphaned leases after a drained sweep";
    // Every spec simulated exactly once across the farm — whichever
    // worker did not run a spec served it from the peer's cache.
    EXPECT_EQ(ca.cachedRuns + cb.cachedRuns, 3u);
}

TEST(FarmSweepTest, FailingSpecIsRetriedThenQuarantined)
{
    const std::string dir = freshDir("farm_failing");
    std::atomic<int> attempts{0};
    RunSpec bad;
    bad.workload = "Reuse";
    bad.org = MemOrg::Stash;
    bad.scale = workloads::Scale::Smoke;
    bad.shards = 1;
    bad.labelOverride = "doomed";
    bad.make = [&attempts](const workloads::WorkloadParams &) ->
        Workload {
        attempts.fetch_add(1, std::memory_order_relaxed);
        throw std::runtime_error("injected workload failure");
    };

    std::ostringstream log;
    SweepOptions opts = farmOpts(dir, "w0", &log);
    opts.maxAttempts = 2;
    SweepCounters counters;
    const auto records = SweepDriver(opts).run({bad}, &counters);

    ASSERT_EQ(records.size(), 1u);
    EXPECT_FALSE(records[0].result.validated);
    EXPECT_EQ(attempts.load(), 2) << "budget of 2 means 2 attempts";
    EXPECT_EQ(counters.failedSpecs, 1u);
    EXPECT_GE(counters.retriedRuns, 1u);
    EXPECT_EQ(filesWithPrefix(dir, "FAILED_").size(), 1u);
    EXPECT_TRUE(filesWithPrefix(dir, "LEASE_").empty());
    ASSERT_FALSE(records[0].result.errors.empty());
    EXPECT_NE(records[0].result.errors[0].find("injected"),
              std::string::npos);

    // A resumed campaign serves the FAILED verdict without retrying.
    SweepCounters again;
    const auto rerun = SweepDriver(opts).run({bad}, &again);
    EXPECT_EQ(attempts.load(), 2);
    EXPECT_FALSE(rerun[0].result.validated);
    EXPECT_EQ(again.failedSpecs, 1u);
}

TEST(FarmSweepTest, CorruptResultIsQuarantinedAndResimulated)
{
    const std::string dir = freshDir("farm_corrupt_result");
    std::atomic<int> builds{0};
    const auto first =
        SweepDriver(farmOpts(dir, "w0")).run(grid(&builds));
    for (const RunRecord &rec : first)
        ASSERT_TRUE(rec.result.validated) << rec.spec.label();
    const int fresh = builds.load();

    const auto results = filesWithPrefix(dir, "RESULT_");
    ASSERT_EQ(results.size(), 3u);
    fs::resize_file(results[0], fs::file_size(results[0]) / 2);

    std::ostringstream log;
    SweepCounters counters;
    const auto second = SweepDriver(farmOpts(dir, "w1", &log))
                            .run(grid(&builds), &counters);
    EXPECT_EQ(fingerprints(first), fingerprints(second));
    EXPECT_EQ(builds.load(), fresh + 1)
        << "exactly the corrupted spec re-simulates";
    EXPECT_GE(counters.corruptSnapshots, 1u);
    EXPECT_GE(counters.quarantinedArtifacts, 1u);
    EXPECT_EQ(counters.cachedRuns, 2u);
    EXPECT_FALSE(
        filesWithPrefix(dir + "/QUARANTINE", "RESULT_").empty());
    EXPECT_NE(log.str().find("corrupt"), std::string::npos)
        << log.str();
}

TEST(FarmSweepTest, StaleResultFromEditedGridIsNotServed)
{
    const std::string dir = freshDir("farm_stale_result");
    std::atomic<int> builds{0};
    const auto first =
        SweepDriver(farmOpts(dir, "w0")).run(grid(&builds));
    for (const RunRecord &rec : first)
        ASSERT_TRUE(rec.result.validated) << rec.spec.label();
    const int fresh = builds.load();

    // Edit the grid: same labels, different machine.  The cached
    // RESULT_* records now answer the wrong question and must be
    // quarantined, not served.
    auto edited = grid(&builds);
    for (RunSpec &s : edited) {
        SystemConfig cfg = SystemConfig::microbenchmarkDefault();
        cfg.l1Bytes *= 2;
        s.config = cfg;
    }
    std::ostringstream log;
    SweepCounters counters;
    const auto second = SweepDriver(farmOpts(dir, "w1", &log))
                            .run(std::move(edited), &counters);
    for (const RunRecord &rec : second)
        EXPECT_TRUE(rec.result.validated) << rec.spec.label();
    EXPECT_EQ(builds.load(), fresh + 3)
        << "every stale spec must re-simulate";
    EXPECT_EQ(counters.cachedRuns, 0u);
    EXPECT_GE(counters.staleResults, 3u);
    EXPECT_NE(log.str().find("different configuration"),
              std::string::npos)
        << log.str();
}

TEST(FarmSweepTest, StopFlagInterruptsResumablyMidCampaign)
{
    // Uninterrupted reference.
    const std::string refDir = freshDir("farm_stop_ref");
    const auto reference =
        SweepDriver(farmOpts(refDir, "ref")).run(grid());
    for (const RunRecord &rec : reference)
        ASSERT_TRUE(rec.result.validated) << rec.spec.label();

    // A pre-set stop flag interrupts the campaign before any spec
    // settles; records are marked, nothing half-written remains.
    const std::string dir = freshDir("farm_stop");
    std::atomic<bool> stop{true};
    SweepOptions opts = farmOpts(dir, "w0");
    opts.stop = &stop;
    SweepCounters counters;
    const auto interrupted = SweepDriver(opts).run(grid(), &counters);
    EXPECT_TRUE(counters.interrupted);
    ASSERT_EQ(interrupted.size(), 3u);
    for (const RunRecord &rec : interrupted)
        EXPECT_FALSE(rec.result.validated);
    EXPECT_TRUE(filesWithPrefix(dir, "LEASE_").empty());

    // A second worker picks the campaign up and finishes it with
    // records identical to the uninterrupted reference.
    SweepCounters resumedCounters;
    const auto resumed =
        SweepDriver(farmOpts(dir, "w1")).run(grid(), &resumedCounters);
    EXPECT_EQ(fingerprints(reference), fingerprints(resumed));
    EXPECT_FALSE(resumedCounters.interrupted);
    EXPECT_TRUE(filesWithPrefix(dir, "LEASE_").empty());
}

TEST(FarmSweepTest, MidRunInterruptDropsResumableCheckpoint)
{
    // Drive the run-level interrupt directly: a stop flag that is
    // already set stops the run at its first phase boundary, drops a
    // final checkpoint (no cadence configured), and the restored run
    // finishes with the uninterrupted numbers.
    const std::string dir = freshDir("farm_midrun");
    RunSpec spec;
    spec.workload = "Reuse";
    spec.org = MemOrg::Stash;
    spec.scale = workloads::Scale::Smoke;
    spec.shards = 1;

    const RunResult full = runSpec(spec);
    ASSERT_TRUE(full.validated);

    std::atomic<bool> stop{true};
    RunSpec victim = spec;
    victim.checkpointDir = dir;
    victim.interrupt = &stop;
    EXPECT_THROW(runSpec(victim), RunInterrupted);
    const auto ckpts = filesWithPrefix(dir, "CKPT_");
    ASSERT_FALSE(ckpts.empty())
        << "interrupt must leave a final checkpoint";

    RunSpec resume = spec;
    resume.restoreFrom = ckpts.back();
    const RunResult resumed = runSpec(resume);
    EXPECT_TRUE(resumed.validated);
    EXPECT_EQ(full.gpuCycles, resumed.gpuCycles);
    EXPECT_EQ(full.perf.events, resumed.perf.events);
    EXPECT_EQ(full.energy.total(), resumed.energy.total());
}

TEST(FarmSweepTest, KilledSampleWorkerIsReclaimedByteIdentical)
{
    // Pristine single-process reference campaign.
    SampleRequest ref;
    ref.workload = "Reuse";
    ref.org = MemOrg::Stash;
    ref.scale = workloads::Scale::Smoke;
    ref.threads = 1;
    ref.stateDir = freshDir("farm_sample_ref");
    std::string err;
    ASSERT_TRUE(parseSampleDeltas("identity,local:32,org:Cache",
                                  ref.deltas, err))
        << err;
    const SampleOutcome refOut = runSample(ref);
    ASSERT_TRUE(refOut.warm.result.validated);
    ASSERT_EQ(refOut.runs.size(), 3u);
    for (const RunRecord &rec : refOut.runs)
        ASSERT_TRUE(rec.result.validated) << rec.spec.label();
    const std::string refJson = sampleToJson(ref, refOut).dump();

    // A worker process SIGKILLs itself mid-interval: the decorate
    // hook plants a finish callback on the second delta, so the child
    // dies after simulating it but before its result settles — the
    // lease is still held, heartbeat and all.
    SampleRequest req = ref;
    req.stateDir = freshDir("farm_sample_crash");
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        SampleRequest victim = req;
        victim.decorate = [](std::size_t i, RunSpec &s) {
            if (i == 1)
                s.finish = [](System &, const RunResult &) {
                    ::raise(SIGKILL);
                };
        };
        runSample(victim);
        ::_exit(0); // not reached
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // Exactly the killed interval's lease survives, un-released, in
    // the fan-out stage's state dir.  Rewind its heartbeat past the
    // TTL so the surviving worker reclaims it immediately.
    const std::string measureDir = req.stateDir + "/measure";
    const auto leases = filesWithPrefix(measureDir, "LEASE_");
    ASSERT_EQ(leases.size(), 1u);
    {
        std::ofstream os(leases[0], std::ios::trunc);
        os << "{\"schema\": \"stashsim-farm-lease-v1\", "
              "\"worker\": \"dead\", \"pid\": 1, \"heartbeatMs\": 1, "
              "\"attempt\": 1, \"released\": false}";
    }

    // The surviving worker drains the campaign: warm checkpoint and
    // the settled intervals serve from cache, the orphaned interval
    // is reclaimed and rerun, and the artifact is byte-identical to
    // the never-crashed run.
    const SampleOutcome out = runSample(req);
    ASSERT_EQ(out.runs.size(), 3u);
    for (const RunRecord &rec : out.runs)
        EXPECT_TRUE(rec.result.validated) << rec.spec.label();
    EXPECT_GE(out.counters.reclaimedLeases, 1u);
    EXPECT_TRUE(filesWithPrefix(measureDir, "LEASE_").empty());
    EXPECT_EQ(sampleToJson(req, out).dump(), refJson);
}

} // namespace
} // namespace stashsim
