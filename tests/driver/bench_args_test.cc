/**
 * @file
 * BenchArgs parsing tests, centered on the strict-number regression:
 * every numeric flag must reject non-numeric, trailing-garbage,
 * negative, and overflowing values with a diagnostic naming both the
 * flag and the offending text (strtoul silently produced 0 before).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "driver/bench_args.hh"

namespace stashsim
{
namespace
{

bool
parse(std::vector<std::string> words, BenchArgs &out, std::string &err)
{
    words.insert(words.begin(), "stashbench");
    std::vector<char *> argv;
    argv.reserve(words.size());
    for (auto &w : words)
        argv.push_back(w.data());
    return BenchArgs::parse(int(argv.size()), argv.data(), out, err);
}

TEST(BenchArgsTest, GoodNumbersParse)
{
    BenchArgs a;
    std::string err;
    ASSERT_TRUE(parse({"--jobs", "8", "--shards", "4",
                       "--checkpoint-every", "1000000",
                       "--lease-ttl", "90", "--max-attempts", "2"},
                      a, err))
        << err;
    EXPECT_EQ(a.jobs, 8u);
    EXPECT_EQ(a.shards, 4u);
    EXPECT_EQ(a.checkpointEvery, 1000000u);
    EXPECT_EQ(a.leaseTtlSec, 90u);
    EXPECT_EQ(a.maxAttempts, 2u);
}

struct BadNumberCase
{
    const char *label;
    const char *flag;
    const char *value;
};

class BadNumbers : public ::testing::TestWithParam<BadNumberCase>
{
};

TEST_P(BadNumbers, RejectedNamingFlagAndValue)
{
    const auto &[label, flag, value] = GetParam();
    BenchArgs a;
    std::string err;
    EXPECT_FALSE(parse({flag, value}, a, err));
    // The diagnostic names the flag...
    EXPECT_NE(err.find(flag), std::string::npos) << err;
    // ...and (except for empty input) echoes the offending text.
    if (*value)
        EXPECT_NE(err.find(value), std::string::npos) << err;
}

const BadNumberCase badNumberCases[] = {
    {"ShardsAlpha", "--shards", "abc"},
    {"ShardsTrailing", "--shards", "4x"},
    {"ShardsNegative", "--shards", "-1"},
    {"ShardsEmpty", "--shards", ""},
    {"ShardsOverflow", "--shards", "4294967296"},
    {"JobsAlpha", "--jobs", "many"},
    {"JobsHexRejected", "--jobs", "0x10"},
    {"CheckpointAlpha", "--checkpoint-every", "soon"},
    {"CheckpointOverflow", "--checkpoint-every",
     "99999999999999999999999999"},
    {"LeaseTtlTrailing", "--lease-ttl", "30s"},
    {"MaxAttemptsAlpha", "--max-attempts", "lots"},
};

INSTANTIATE_TEST_SUITE_P(Sweep, BadNumbers,
                         ::testing::ValuesIn(badNumberCases),
                         [](const auto &info) {
                             return std::string(info.param.label);
                         });

TEST(BenchArgsTest, ZeroStillRejectedWhereMeaningless)
{
    BenchArgs a;
    std::string err;
    EXPECT_FALSE(parse({"--lease-ttl", "0"}, a, err));
    EXPECT_NE(err.find("--lease-ttl"), std::string::npos) << err;
    EXPECT_FALSE(parse({"--max-attempts", "0"}, a, err));
    EXPECT_NE(err.find("--max-attempts"), std::string::npos) << err;
}

TEST(BenchArgsTest, TraceFlagsParse)
{
    BenchArgs a;
    std::string err;
    ASSERT_TRUE(parse({"--trace-replay", "in.trace", "--trace-record",
                       "out.trace", "--trace-from", "SynthMix"},
                      a, err))
        << err;
    EXPECT_EQ(a.traceReplay, "in.trace");
    EXPECT_EQ(a.traceRecord, "out.trace");
    EXPECT_EQ(a.traceFrom, "SynthMix");
}

TEST(BenchArgsTest, TraceFlagsRequireValues)
{
    BenchArgs a;
    std::string err;
    EXPECT_FALSE(parse({"--trace-replay"}, a, err));
    EXPECT_NE(err.find("--trace-replay"), std::string::npos) << err;
}

TEST(BenchArgsTest, UnknownFlagStillRejected)
{
    BenchArgs a;
    std::string err;
    EXPECT_FALSE(parse({"--frobnicate"}, a, err));
    EXPECT_NE(err.find("--frobnicate"), std::string::npos) << err;
}

} // namespace
} // namespace stashsim
