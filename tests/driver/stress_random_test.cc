/**
 * @file
 * Seeded randomized multi-kernel stress test.
 *
 * Generates a random sequence of GPU kernel phases (stash
 * load/compute/store over random disjoint slices) and CPU phases
 * (random stores plus value-checked loads), tracks a golden image of
 * every access, and runs it with the protocol checker and watchdog
 * enabled — with and without NoC fault injection.  Under injection
 * the runs absorb thousands of deterministic message delays,
 * reorderings, and duplications; the checker must stay green and the
 * final memory must equal the golden image.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "driver/system.hh"
#include "verify/fault_injector.hh"
#include "verify/protocol_checker.hh"

namespace stashsim
{
namespace
{

constexpr Addr gbase = 0x800000;
constexpr unsigned numWords = 2048;       // 8 KB of shared data
constexpr unsigned sliceWords = 32;       // line-aligned GPU slices
constexpr unsigned numSlices = numWords / sliceWords;
constexpr unsigned numCpuCores = 4;
constexpr unsigned numPhases = 10;

struct StressOutcome
{
    bool validated = false;
    std::vector<std::string> errors;
    std::uint64_t faults = 0;
    std::uint64_t audits = 0;
};

ThreadBlock
makeSliceBlock(unsigned slice, std::int32_t delta)
{
    ThreadBlock tb;
    tb.localBytes = sliceWords * wordBytes;
    TileSpec t;
    t.globalBase = gbase + Addr(slice) * sliceWords * wordBytes;
    t.fieldSize = wordBytes;
    t.objectSize = wordBytes;
    t.rowSize = sliceWords;
    t.strideSize = 0;
    t.numStrides = 1;
    tb.addMaps.push_back(AddMapOp{0, t});
    tb.warps.resize(1);
    std::vector<Addr> offs;
    for (unsigned l = 0; l < sliceWords; ++l)
        offs.push_back(Addr(l) * wordBytes);
    tb.warps[0].push_back(memOp(OpKind::StashLd, offs, 0));
    tb.warps[0].push_back(computeOp(1, delta));
    tb.warps[0].push_back(storeAccOp(OpKind::StashSt, offs, 0));
    return tb;
}

StressOutcome
runStress(std::uint64_t seed, bool inject)
{
    SystemConfig cfg = SystemConfig::microbenchmarkDefault();
    cfg.memOrg = MemOrg::Stash;
    cfg.numGpuCus = 2;
    cfg.numCpuCores = numCpuCores;
    cfg.verify.protocolChecker = true;
    cfg.verify.watchdog = true;
    if (inject) {
        cfg.verify.faultInjection = true;
        cfg.verify.faultSeed = seed;
        cfg.verify.faultDelayPermille = 300;
        cfg.verify.faultMaxDelayCycles = 300;
        cfg.verify.faultDupPermille = 200;
        cfg.verify.faultDupDelayCycles = 100;
    }
    System sys(cfg);

    std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 1);

    // Golden image, tracked in program order as phases are generated.
    std::vector<std::uint32_t> golden(numWords);
    for (auto &w : golden)
        w = std::uint32_t(rng());
    const std::vector<std::uint32_t> init_image = golden;

    Workload wl;
    wl.name = "stress_random";
    wl.init = [init_image](FunctionalMem &fm) {
        for (unsigned i = 0; i < numWords; ++i)
            fm.writeWord(gbase + Addr(i) * wordBytes, init_image[i]);
    };

    for (unsigned p = 0; p < numPhases; ++p) {
        if (rng() % 2 == 0) {
            // GPU phase: distinct slices keep blocks race-free.
            std::vector<unsigned> slices(numSlices);
            std::iota(slices.begin(), slices.end(), 0u);
            std::shuffle(slices.begin(), slices.end(), rng);
            const unsigned blocks = 2 + unsigned(rng() % 5);
            const std::int32_t delta =
                std::int32_t(rng() % 9) - 4;
            Kernel k;
            k.name = "stress";
            for (unsigned b = 0; b < blocks; ++b) {
                const unsigned s = slices[b];
                k.blocks.push_back(makeSliceBlock(s, delta));
                for (unsigned w = 0; w < sliceWords; ++w) {
                    auto &g = golden[s * sliceWords + w];
                    g = std::uint32_t(std::int64_t(g) + delta);
                }
            }
            wl.phases.push_back(Phase::gpu(std::move(k)));
        } else {
            // CPU phase: each core works a private quarter, so
            // concurrent cores never race.  The cores have no
            // load-store queue and keep several accesses in flight,
            // so a checked load never targets a word its own phase
            // stores *anywhere* — an in-flight load may legally
            // observe a program-order-later store.
            std::vector<std::vector<CpuOp>> work(numCpuCores);
            const unsigned quarter = numWords / numCpuCores;
            for (unsigned c = 0; c < numCpuCores; ++c) {
                struct Pick
                {
                    unsigned q;
                    bool isStore;
                    std::uint32_t v;
                };
                std::vector<Pick> picks;
                std::vector<bool> stored(quarter, false);
                const unsigned ops = 64 + unsigned(rng() % 64);
                for (unsigned o = 0; o < ops; ++o) {
                    const unsigned q = unsigned(rng() % quarter);
                    const bool is_store = rng() % 2;
                    const auto v = std::uint32_t(rng());
                    picks.push_back(Pick{q, is_store, v});
                    if (is_store)
                        stored[q] = true;
                }
                // Loads read pre-phase golden values; stores update
                // golden afterwards, in program order.
                for (const Pick &pk : picks) {
                    const unsigned i = c * quarter + pk.q;
                    const Addr a = gbase + Addr(i) * wordBytes;
                    if (pk.isStore)
                        work[c].push_back(CpuOp{a, true, pk.v});
                    else if (!stored[pk.q])
                        work[c].push_back(
                            CpuOp{a, false, golden[i], true});
                }
                for (const Pick &pk : picks) {
                    if (pk.isStore)
                        golden[c * quarter + pk.q] = pk.v;
                }
            }
            wl.phases.push_back(Phase::cpu(std::move(work)));
        }
    }

    const std::vector<std::uint32_t> final_image = golden;
    wl.validate = [final_image](FunctionalMem &fm,
                                std::vector<std::string> &errors) {
        for (unsigned i = 0; i < numWords; ++i) {
            const Addr a = gbase + Addr(i) * wordBytes;
            if (fm.readWord(a) != final_image[i]) {
                errors.push_back("stress: final image mismatch at word " +
                                 std::to_string(i));
                return false;
            }
        }
        return true;
    };

    StressOutcome out;
    RunResult r = sys.run(std::move(wl));
    out.validated = r.validated;
    out.errors = r.errors;
    out.audits = sys.checker()->auditsRun();
    if (sys.faultInjector())
        out.faults = sys.faultInjector()->faults();
    return out;
}

TEST(StressRandomTest, CleanWithoutFaultInjection)
{
    const StressOutcome out = runStress(1, false);
    EXPECT_TRUE(out.validated)
        << (out.errors.empty() ? "" : out.errors.front());
    EXPECT_EQ(out.faults, 0u);
    EXPECT_GT(out.audits, 0u);
}

TEST(StressRandomTest, GreenUnderThousandsOfInjectedFaults)
{
    std::uint64_t total_faults = 0;
    for (std::uint64_t seed : {1, 2, 3}) {
        const StressOutcome out = runStress(seed, true);
        EXPECT_TRUE(out.validated)
            << "seed " << seed << ": "
            << (out.errors.empty() ? "" : out.errors.front());
        EXPECT_GT(out.faults, 100u) << "seed " << seed;
        total_faults += out.faults;
    }
    // The acceptance bar: >= 1000 injected faults across the seeds,
    // zero checker violations, golden-equal memory everywhere.
    EXPECT_GE(total_faults, 1000u);
}

TEST(StressRandomTest, FaultScheduleIsDeterministicPerSeed)
{
    const StressOutcome a = runStress(2, true);
    const StressOutcome b = runStress(2, true);
    EXPECT_EQ(a.faults, b.faults);
    EXPECT_EQ(a.validated, b.validated);
}

} // namespace
} // namespace stashsim
