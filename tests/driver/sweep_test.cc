#include <gtest/gtest.h>

#include <sstream>

#include "driver/sweep.hh"

namespace stashsim
{
namespace
{

std::vector<RunSpec>
smallGrid()
{
    std::vector<RunSpec> specs;
    for (const char *name : {"Implicit", "On-demand"}) {
        for (MemOrg org :
             {MemOrg::Scratch, MemOrg::Cache, MemOrg::Stash}) {
            RunSpec spec;
            spec.workload = name;
            spec.org = org;
            spec.scale = workloads::Scale::Smoke;
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

/** Every counter of every run, serialized to one comparable string. */
std::string
serializeRecords(const std::vector<RunRecord> &records)
{
    std::ostringstream os;
    for (const RunRecord &rec : records) {
        os << rec.spec.label() << " validated=" << rec.result.validated
           << " gpuCycles=" << rec.result.gpuCycles
           << " energy=" << rec.result.energy.total() << "\n";
        for (const auto &[key, value] : rec.result.stats.flatten())
            os << "  " << key << "=" << value << "\n";
    }
    return os.str();
}

TEST(SweepDriverTest, ThreadsForClampsToWorkAndHardware)
{
    EXPECT_EQ(SweepDriver({1, 1, nullptr}).threadsFor(8), 1u);
    EXPECT_EQ(SweepDriver({4, 1, nullptr}).threadsFor(2), 2u);
    EXPECT_EQ(SweepDriver({4, 1, nullptr}).threadsFor(0), 1u);
    EXPECT_GE(SweepDriver({0, 1, nullptr}).threadsFor(8), 1u);
}

TEST(SweepDriverTest, ReturnsRecordsInSpecOrder)
{
    const std::vector<RunSpec> specs = smallGrid();
    const std::vector<RunRecord> records =
        SweepDriver({2, 1, nullptr}).run(specs);
    ASSERT_EQ(records.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(records[i].spec.label(), specs[i].label());
}

/**
 * The determinism contract: a 4-thread sweep must produce results
 * byte-identical to a serial sweep, counter for counter.
 */
TEST(SweepDriverTest, ParallelSweepMatchesSerialByteForByte)
{
    const std::vector<RunRecord> serial =
        SweepDriver({1, 1, nullptr}).run(smallGrid());
    const std::vector<RunRecord> parallel =
        SweepDriver({4, 1, nullptr}).run(smallGrid());
    for (const RunRecord &rec : serial)
        ASSERT_TRUE(rec.result.validated) << rec.spec.label();
    EXPECT_EQ(serializeRecords(serial), serializeRecords(parallel));
}

TEST(SweepDriverTest, CapturesFailuresWithoutAbortingTheSweep)
{
    std::vector<RunSpec> specs = smallGrid();
    RunSpec bad;
    bad.workload = "no-such-workload"; // fatal() inside the run
    specs.insert(specs.begin() + 1, bad);

    const std::vector<RunRecord> records =
        SweepDriver({2, 1, nullptr}).run(specs);
    ASSERT_EQ(records.size(), specs.size());
    EXPECT_FALSE(records[1].result.validated);
    ASSERT_FALSE(records[1].result.errors.empty());
    EXPECT_NE(records[1].result.errors[0].find("unknown workload"),
              std::string::npos);
    // Neighbors still ran to completion.
    EXPECT_TRUE(records[0].result.validated);
    EXPECT_TRUE(records[2].result.validated);
}

TEST(SweepDriverTest, CapturesNonStandardExceptionsToo)
{
    std::vector<RunSpec> specs = smallGrid();
    specs.resize(3);
    specs[1].instrument = [](System &) { throw 42; };

    const std::vector<RunRecord> records =
        SweepDriver({2, 1, nullptr}).run(specs);
    ASSERT_EQ(records.size(), specs.size());
    EXPECT_FALSE(records[1].result.validated);
    ASSERT_FALSE(records[1].result.errors.empty());
    EXPECT_NE(records[1].result.errors[0].find("unknown error"),
              std::string::npos);
    EXPECT_TRUE(records[0].result.validated);
    EXPECT_TRUE(records[2].result.validated);
}

TEST(SweepDriverTest, ProgressStreamReportsEveryRun)
{
    std::ostringstream progress;
    std::vector<RunSpec> specs = smallGrid();
    specs.resize(2);
    SweepDriver({1, 1, &progress}).run(specs);
    const std::string text = progress.str();
    EXPECT_NE(text.find("[1/2]"), std::string::npos);
    EXPECT_NE(text.find("[2/2]"), std::string::npos);
    EXPECT_NE(text.find("Implicit/Scratch ok"), std::string::npos);
}

} // namespace
} // namespace stashsim
