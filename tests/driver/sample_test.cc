/**
 * @file
 * SampleDriver tests (DESIGN.md §17): the delta-token grammar, the
 * warm-once guarantee (one boundary snapshot feeds every fan-out
 * interval), byte-level parity between sampled gpu-group intervals
 * and their uninterrupted unsampled twins, legality of backend/LLC
 * deltas (which carry warm state and cannot promise byte parity),
 * and the structured undeclared-delta rejection — pinned down to the
 * exact diagnostic text, both hash values included.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "driver/sample.hh"
#include "driver/system.hh"
#include "snapshot/snapshot.hh"

namespace stashsim
{
namespace
{

namespace fs = std::filesystem;

std::string
freshDir(const std::string &name)
{
    const std::string d = ::testing::TempDir() + name;
    fs::remove_all(d);
    fs::create_directories(d);
    return d;
}

/** Matches the diagnostic's logFormat(std::hex, h) rendering. */
std::string
hex(std::uint64_t h)
{
    std::ostringstream os;
    os << "0x" << std::hex << h;
    return os.str();
}

SampleRequest
smokeRequest(const std::string &stateDir, const std::string &deltas)
{
    SampleRequest req;
    req.workload = "Reuse";
    req.org = MemOrg::Stash;
    req.scale = workloads::Scale::Smoke;
    req.stateDir = stateDir;
    req.threads = 1;
    std::string err;
    EXPECT_TRUE(parseSampleDeltas(deltas, req.deltas, err)) << err;
    return req;
}

// ---- token grammar ----------------------------------------------

TEST(SampleDeltaParseTest, GrammarCoversEveryKindAndGroup)
{
    std::vector<SampleDelta> ds;
    std::string err;
    ASSERT_TRUE(parseSampleDeltas(
        "identity,local:32,org:Cache,backend:sttmram,llcassoc:8,"
        "llckb:128,undeclared:org:ScratchGD",
        ds, err))
        << err;
    ASSERT_EQ(ds.size(), 7u);

    EXPECT_EQ(ds[0].kind, "identity");
    EXPECT_EQ(ds[0].mask, 0u);
    EXPECT_TRUE(ds[0].declare);

    EXPECT_EQ(ds[1].kind, "local");
    EXPECT_EQ(ds[1].mask, deltaBit(DeltaGroup::Gpu));
    EXPECT_EQ(ds[2].kind, "org");
    EXPECT_EQ(ds[2].mask, deltaBit(DeltaGroup::Gpu));
    EXPECT_EQ(ds[3].kind, "backend");
    EXPECT_EQ(ds[3].mask, deltaBit(DeltaGroup::MemBackend));
    EXPECT_EQ(ds[4].kind, "llcassoc");
    EXPECT_EQ(ds[4].mask, deltaBit(DeltaGroup::Llc));
    EXPECT_EQ(ds[5].kind, "llckb");
    EXPECT_EQ(ds[5].mask, deltaBit(DeltaGroup::Llc));

    // The undeclared: prefix keeps the change but drops the
    // declaration; the full token is preserved as the name.
    EXPECT_EQ(ds[6].kind, "org");
    EXPECT_EQ(ds[6].name, "undeclared:org:ScratchGD");
    EXPECT_EQ(ds[6].mask, deltaBit(DeltaGroup::Gpu));
    EXPECT_FALSE(ds[6].declare);
}

TEST(SampleDeltaParseTest, MalformedTokensAreRejectedWithAMessage)
{
    SampleDelta d;
    std::vector<SampleDelta> ds;
    std::string err;

    EXPECT_FALSE(parseSampleDelta("bogus:1", d, err));
    EXPECT_NE(err.find("unknown delta kind"), std::string::npos);
    EXPECT_FALSE(parseSampleDelta("org:NoSuchOrg", d, err));
    EXPECT_NE(err.find("unknown memory organization"),
              std::string::npos);
    EXPECT_FALSE(parseSampleDelta("backend:floppy", d, err));
    EXPECT_FALSE(parseSampleDelta("local:abc", d, err));
    EXPECT_FALSE(parseSampleDelta("local:0", d, err));
    EXPECT_FALSE(parseSampleDelta("identity:1", d, err));
    EXPECT_FALSE(parseSampleDeltas("identity,,local:32", ds, err));
    EXPECT_NE(err.find("empty delta token"), std::string::npos);
    EXPECT_FALSE(parseSampleDeltas("", ds, err));
}

// ---- warm-once + parity matrix ----------------------------------

TEST(SampleCampaignTest, GpuDeltasMatchUnsampledTwinsByteForByte)
{
    const std::string dir = freshDir("sample_parity");
    SampleRequest req = smokeRequest(
        dir, "identity,local:32,org:Cache,org:ScratchGD");

    // Warm-once proof: four fan-out intervals, exactly one boundary
    // snapshot built in this whole campaign.
    const std::uint64_t before = boundarySnapshotWrites();
    const SampleOutcome sampled = runSample(req);
    EXPECT_EQ(boundarySnapshotWrites(), before + 1)
        << "every delta must reuse the single warm checkpoint";

    ASSERT_TRUE(sampled.warm.result.validated);
    EXPECT_TRUE(sampled.warm.result.truncated)
        << "the warm stage stops at the measurement boundary";
    ASSERT_EQ(sampled.runs.size(), 4u);
    for (const RunRecord &rec : sampled.runs) {
        EXPECT_TRUE(rec.result.validated) << rec.spec.label();
        EXPECT_TRUE(rec.result.errors.empty()) << rec.spec.label();
    }

    // Provenance: the boundary snapshot IS the warmup boundary.
    EXPECT_EQ(sampled.sampledFrom.phaseCursor,
              sampled.sampledFrom.warmupPhases);
    EXPECT_GT(sampled.sampledFrom.tick, 0u);
    EXPECT_FALSE(sampled.sampledFrom.checkpoint.empty());

    // Unsampled twin: same campaign, every interval run uninterrupted
    // from tick 0.  The warm stage is shared (served from cache — the
    // boundary-snapshot counter must not move), and because every
    // delta here is gpu-group over a CPU-only warmup, the two
    // artifacts must be byte-identical.
    SampleRequest twin = req;
    twin.unsampled = true;
    const SampleOutcome plain = runSample(twin);
    EXPECT_EQ(boundarySnapshotWrites(), before + 1);
    ASSERT_EQ(plain.runs.size(), 4u);
    EXPECT_EQ(sampleToJson(req, sampled).dump(),
              sampleToJson(twin, plain).dump());
}

TEST(SampleCampaignTest, BackendAndLlcDeltasRestoreLegally)
{
    // Backend/LLC deltas change state the warmup already touched, so
    // the contract is legality, not byte parity: the restore takes
    // the declared-delta path and the run completes validated.
    const std::string dir = freshDir("sample_legal");
    SampleRequest req = smokeRequest(
        dir, "backend:sttmram,backend:scmcache,llcassoc:8,llckb:128");
    const SampleOutcome out = runSample(req);
    ASSERT_TRUE(out.warm.result.validated);
    ASSERT_EQ(out.runs.size(), 4u);
    for (const RunRecord &rec : out.runs) {
        EXPECT_TRUE(rec.result.validated) << rec.spec.label();
        EXPECT_TRUE(rec.result.errors.empty()) << rec.spec.label();
        EXPECT_GT(rec.result.gpuCycles, 0u) << rec.spec.label();
    }
}

// ---- rejection + diagnostic format ------------------------------

TEST(SampleCampaignTest, UndeclaredDeltaIsFatalNamingBothHashes)
{
    const std::string dir = freshDir("sample_undeclared");
    SampleRequest req =
        smokeRequest(dir, "identity,undeclared:org:Cache");
    req.maxAttempts = 1;

    const SampleOutcome out = runSample(req);
    ASSERT_EQ(out.runs.size(), 2u);
    EXPECT_TRUE(out.runs[0].result.validated);
    ASSERT_FALSE(out.runs[1].result.validated);
    ASSERT_FALSE(out.runs[1].result.errors.empty());
    EXPECT_EQ(out.counters.failedSpecs, 1u);

    // Pin the structured diagnostic exactly: prefix with both hash
    // values and the always-excepted fields, then the undeclared
    // group with its full field list.  The restoring system's hash is
    // the base machine with only the org changed — recompute it.
    RunSpec base;
    base.workload = req.workload;
    base.org = req.org;
    base.scale = req.scale;
    SystemConfig deltaCfg = resolveRunConfig(base);
    deltaCfg.memOrg = MemOrg::Cache;

    const std::string expected =
        "snapshot configuration hash mismatch: snapshot was taken "
        "with config hash " +
        hex(out.sampledFrom.configHash) + " but this system's is " +
        hex(snapshotConfigHash(deltaCfg)) +
        " (always-excepted fields: shards, verify); undeclared "
        "config delta in group(s) 'gpu' (" +
        deltaGroupFields(DeltaGroup::Gpu) +
        ") — a sampled restore must declare every changed group";
    const std::string &msg = out.runs[1].result.errors[0];
    EXPECT_NE(msg.find(expected), std::string::npos) << msg;
    EXPECT_NE(msg.find("memOrg"), std::string::npos)
        << "the field list must name the mismatching field";
}

TEST(SampleCampaignTest, EmptyStateDirOrDeltaListIsFatal)
{
    SampleRequest req;
    req.workload = "Reuse";
    req.scale = workloads::Scale::Smoke;
    std::string err;
    ASSERT_TRUE(parseSampleDeltas("identity", req.deltas, err));
    EXPECT_THROW(runSample(req), std::runtime_error)
        << "no state dir";

    req.stateDir = freshDir("sample_fatal");
    req.deltas.clear();
    EXPECT_THROW(runSample(req), std::runtime_error) << "no deltas";
}

} // namespace
} // namespace stashsim
