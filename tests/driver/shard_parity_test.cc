/**
 * @file
 * The sharded-engine determinism contract, enforced end to end: a run
 * partitioned over 4 shard threads must produce results
 * byte-identical to the serial engine — every counter of every
 * component, not just the headline numbers.  This is the acceptance
 * test for `stashbench --shards N` artifact parity.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "driver/sweep.hh"

namespace stashsim
{
namespace
{

std::vector<RunSpec>
grid(unsigned shards)
{
    std::vector<RunSpec> specs;
    for (const char *name : {"Implicit", "On-demand", "Reuse"}) {
        for (MemOrg org :
             {MemOrg::Scratch, MemOrg::Cache, MemOrg::Stash,
              MemOrg::StashG}) {
            RunSpec spec;
            spec.workload = name;
            spec.org = org;
            spec.scale = workloads::Scale::Smoke;
            spec.shards = shards;
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

/** Every counter of every run, serialized to one comparable string. */
std::string
serializeRecords(const std::vector<RunRecord> &records)
{
    std::ostringstream os;
    for (const RunRecord &rec : records) {
        os << rec.spec.label() << " validated=" << rec.result.validated
           << " gpuCycles=" << rec.result.gpuCycles
           << " energy=" << rec.result.energy.total() << "\n";
        for (const auto &[key, value] : rec.result.stats.flatten())
            os << "  " << key << "=" << value << "\n";
    }
    return os.str();
}

TEST(ShardParityTest, FourShardsMatchSerialByteForByte)
{
    const std::vector<RunRecord> serial =
        SweepDriver({1, 1, nullptr}).run(grid(/*shards=*/1));
    const std::vector<RunRecord> sharded =
        SweepDriver({1, 1, nullptr}).run(grid(/*shards=*/4));

    ASSERT_EQ(serial.size(), sharded.size());
    for (const RunRecord &rec : serial)
        ASSERT_TRUE(rec.result.validated) << rec.spec.label();
    for (const RunRecord &rec : sharded)
        ASSERT_TRUE(rec.result.validated) << rec.spec.label();
    EXPECT_EQ(serializeRecords(serial), serializeRecords(sharded));
}

/** Parity must hold at the full shard count (one thread per tile). */
TEST(ShardParityTest, OneShardPerTileMatchesSerialToo)
{
    std::vector<RunSpec> serialSpec(1), shardedSpec(1);
    serialSpec[0].workload = shardedSpec[0].workload = "Reuse";
    serialSpec[0].org = shardedSpec[0].org = MemOrg::Stash;
    serialSpec[0].scale = shardedSpec[0].scale =
        workloads::Scale::Smoke;
    serialSpec[0].shards = 1;
    shardedSpec[0].shards = 16; // clamped to numNodes() == 16

    const std::vector<RunRecord> serial =
        SweepDriver({1, 1, nullptr}).run(serialSpec);
    const std::vector<RunRecord> sharded =
        SweepDriver({1, 1, nullptr}).run(shardedSpec);
    ASSERT_TRUE(serial[0].result.validated);
    ASSERT_TRUE(sharded[0].result.validated);
    EXPECT_EQ(serializeRecords(serial), serializeRecords(sharded));
}

/**
 * The verify instruments must compose with the sharded engine: the
 * protocol checker audits and the watchdog's barrier checks observe
 * quantum boundaries, and neither perturbs the simulated outcome.
 */
TEST(ShardParityTest, VerifyInstrumentsPreserveParity)
{
    auto makeSpec = [](unsigned shards) {
        RunSpec spec;
        spec.workload = "On-demand";
        spec.org = MemOrg::Stash;
        spec.scale = workloads::Scale::Smoke;
        spec.shards = shards;
        SystemConfig cfg = SystemConfig::microbenchmarkDefault();
        cfg.memOrg = spec.org;
        cfg.verify.protocolChecker = true;
        cfg.verify.watchdog = true;
        spec.config = cfg;
        return spec;
    };

    const std::vector<RunRecord> serial =
        SweepDriver({1, 1, nullptr}).run({makeSpec(1)});
    const std::vector<RunRecord> sharded =
        SweepDriver({1, 1, nullptr}).run({makeSpec(4)});
    ASSERT_TRUE(serial[0].result.validated)
        << (serial[0].result.errors.empty()
                ? "?"
                : serial[0].result.errors[0]);
    ASSERT_TRUE(sharded[0].result.validated)
        << (sharded[0].result.errors.empty()
                ? "?"
                : sharded[0].result.errors[0]);
    EXPECT_EQ(serializeRecords(serial), serializeRecords(sharded));
}

} // namespace
} // namespace stashsim
