/**
 * @file
 * The sharded-engine determinism contract, enforced end to end: a run
 * partitioned over 4 shard threads must produce results
 * byte-identical to the serial engine — every counter of every
 * component, not just the headline numbers.  This is the acceptance
 * test for `stashbench --shards N` artifact parity.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "driver/sweep.hh"

namespace stashsim
{
namespace
{

std::vector<RunSpec>
grid(unsigned shards)
{
    std::vector<RunSpec> specs;
    for (const char *name : {"Implicit", "On-demand", "Reuse"}) {
        for (MemOrg org :
             {MemOrg::Scratch, MemOrg::Cache, MemOrg::Stash,
              MemOrg::StashG}) {
            RunSpec spec;
            spec.workload = name;
            spec.org = org;
            spec.scale = workloads::Scale::Smoke;
            spec.shards = shards;
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

/** Every counter of every run, serialized to one comparable string. */
std::string
serializeRecords(const std::vector<RunRecord> &records)
{
    std::ostringstream os;
    for (const RunRecord &rec : records) {
        os << rec.spec.label() << " validated=" << rec.result.validated
           << " gpuCycles=" << rec.result.gpuCycles
           << " energy=" << rec.result.energy.total() << "\n";
        for (const auto &[key, value] : rec.result.stats.flatten())
            os << "  " << key << "=" << value << "\n";
    }
    return os.str();
}

TEST(ShardParityTest, FourShardsMatchSerialByteForByte)
{
    const std::vector<RunRecord> serial =
        SweepDriver({1, 1, nullptr}).run(grid(/*shards=*/1));
    const std::vector<RunRecord> sharded =
        SweepDriver({1, 1, nullptr}).run(grid(/*shards=*/4));

    ASSERT_EQ(serial.size(), sharded.size());
    for (const RunRecord &rec : serial)
        ASSERT_TRUE(rec.result.validated) << rec.spec.label();
    for (const RunRecord &rec : sharded)
        ASSERT_TRUE(rec.result.validated) << rec.spec.label();
    EXPECT_EQ(serializeRecords(serial), serializeRecords(sharded));
}

/** Parity must hold at the full shard count (one thread per tile). */
TEST(ShardParityTest, OneShardPerTileMatchesSerialToo)
{
    std::vector<RunSpec> serialSpec(1), shardedSpec(1);
    serialSpec[0].workload = shardedSpec[0].workload = "Reuse";
    serialSpec[0].org = shardedSpec[0].org = MemOrg::Stash;
    serialSpec[0].scale = shardedSpec[0].scale =
        workloads::Scale::Smoke;
    serialSpec[0].shards = 1;
    shardedSpec[0].shards = 16; // clamped to numNodes() == 16

    const std::vector<RunRecord> serial =
        SweepDriver({1, 1, nullptr}).run(serialSpec);
    const std::vector<RunRecord> sharded =
        SweepDriver({1, 1, nullptr}).run(shardedSpec);
    ASSERT_TRUE(serial[0].result.validated);
    ASSERT_TRUE(sharded[0].result.validated);
    EXPECT_EQ(serializeRecords(serial), serializeRecords(sharded));
}

/**
 * Odd shard counts leave the tile->worker partition ragged (16 tiles
 * over 3/5/7 workers), which is exactly where a partition-dependent
 * bug would show up.  Parity must hold there too, on a synthetic
 * workload whose traffic is irregular by construction.
 */
TEST(ShardParityTest, OddShardCountsMatchSerialByteForByte)
{
    auto makeSpec = [](unsigned shards) {
        RunSpec spec;
        spec.workload = "SynthMix";
        spec.org = MemOrg::Stash;
        spec.scale = workloads::Scale::Smoke;
        spec.shards = shards;
        return spec;
    };

    const std::vector<RunRecord> serial =
        SweepDriver({1, 1, nullptr}).run({makeSpec(1)});
    ASSERT_TRUE(serial[0].result.validated);
    const std::string want = serializeRecords(serial);

    for (unsigned shards : {3u, 5u, 7u}) {
        const std::vector<RunRecord> sharded =
            SweepDriver({1, 1, nullptr}).run({makeSpec(shards)});
        ASSERT_TRUE(sharded[0].result.validated)
            << "shards=" << shards;
        EXPECT_EQ(want, serializeRecords(sharded))
            << "shards=" << shards;
    }
}

/**
 * The verify instruments must compose with the sharded engine: the
 * protocol checker audits and the watchdog's barrier checks observe
 * quantum boundaries, and neither perturbs the simulated outcome.
 */
TEST(ShardParityTest, VerifyInstrumentsPreserveParity)
{
    auto makeSpec = [](unsigned shards) {
        RunSpec spec;
        spec.workload = "On-demand";
        spec.org = MemOrg::Stash;
        spec.scale = workloads::Scale::Smoke;
        spec.shards = shards;
        SystemConfig cfg = SystemConfig::microbenchmarkDefault();
        cfg.memOrg = spec.org;
        cfg.verify.protocolChecker = true;
        cfg.verify.watchdog = true;
        spec.config = cfg;
        return spec;
    };

    const std::vector<RunRecord> serial =
        SweepDriver({1, 1, nullptr}).run({makeSpec(1)});
    const std::vector<RunRecord> sharded =
        SweepDriver({1, 1, nullptr}).run({makeSpec(4)});
    ASSERT_TRUE(serial[0].result.validated)
        << (serial[0].result.errors.empty()
                ? "?"
                : serial[0].result.errors[0]);
    ASSERT_TRUE(sharded[0].result.validated)
        << (sharded[0].result.errors.empty()
                ? "?"
                : sharded[0].result.errors[0]);
    EXPECT_EQ(serializeRecords(serial), serializeRecords(sharded));
}

/**
 * `--shards 0` (auto-tune) may pick any worker count — including
 * serial on a single-threaded host — but the simulated outcome must
 * be byte-identical to the fixed serial run on every host, and the
 * run must report the count it settled on.
 */
TEST(ShardParityTest, AutoTunedShardsMatchSerialByteForByte)
{
    auto makeSpec = [](unsigned shards) {
        RunSpec spec;
        spec.workload = "SynthMix";
        spec.org = MemOrg::Stash;
        spec.scale = workloads::Scale::Smoke;
        spec.shards = shards;
        return spec;
    };

    const std::vector<RunRecord> serial =
        SweepDriver({1, 1, nullptr}).run({makeSpec(1)});
    const std::vector<RunRecord> tuned =
        SweepDriver({1, 1, nullptr}).run({makeSpec(0)});
    ASSERT_TRUE(serial[0].result.validated);
    ASSERT_TRUE(tuned[0].result.validated);
    EXPECT_EQ(serializeRecords(serial), serializeRecords(tuned));

    EXPECT_GE(tuned[0].result.shardsUsed, 1u);
    EXPECT_FALSE(serial[0].result.shardsAutoTuned);
    // On a multi-threaded host the run starts sharded and the tuner
    // records its decision; a single-threaded host stays serial.
    if (std::thread::hardware_concurrency() > 1) {
        EXPECT_TRUE(tuned[0].result.shardsAutoTuned);
        EXPECT_GT(tuned[0].result.autoEventsPerQuantum, 0);
    } else {
        EXPECT_FALSE(tuned[0].result.shardsAutoTuned);
    }
}

} // namespace
} // namespace stashsim
