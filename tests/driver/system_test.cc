/**
 * @file
 * System-level tests: construction per configuration, phase
 * sequencing, CPU cores, measurement windows, and the energy model.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "driver/system.hh"

namespace stashsim
{
namespace
{

constexpr Addr gbase = 0x400000;

TEST(SystemTest, BuildsEveryConfiguration)
{
    for (MemOrg org :
         {MemOrg::Scratch, MemOrg::ScratchG, MemOrg::ScratchGD,
          MemOrg::Cache, MemOrg::Stash, MemOrg::StashG}) {
        SystemConfig cfg = SystemConfig::microbenchmarkDefault();
        cfg.memOrg = org;
        System sys(cfg);
        EXPECT_EQ(sys.config().memOrg, org);
        EXPECT_EQ(sys.stashOf(0) != nullptr, usesStash(org));
        EXPECT_NE(sys.gpuL1Of(0), nullptr);
        EXPECT_NE(sys.cpuL1Of(0), nullptr);
    }
}

TEST(SystemTest, RejectsOversubscribedMesh)
{
    SystemConfig cfg = SystemConfig::microbenchmarkDefault();
    cfg.numGpuCus = 10;
    cfg.numCpuCores = 10;
    EXPECT_THROW(System sys(cfg), std::runtime_error);
}

TEST(SystemTest, TableTwoPresetsMatchPaper)
{
    const SystemConfig mb = SystemConfig::microbenchmarkDefault();
    EXPECT_EQ(mb.numGpuCus, 1u);
    EXPECT_EQ(mb.numCpuCores, 15u);
    EXPECT_EQ(mb.localBytes, 16u * 1024);
    EXPECT_EQ(mb.l1Bytes, 32u * 1024);
    EXPECT_EQ(mb.llcBanks * mb.llcBankBytes, 4u * 1024 * 1024);
    EXPECT_EQ(mb.stashMapEntries, 64u);
    EXPECT_EQ(mb.vpMapEntries, 64u);
    EXPECT_EQ(mb.stashTranslationCycles, 10u);

    const SystemConfig app = SystemConfig::applicationDefault();
    EXPECT_EQ(app.numGpuCus, 15u);
    EXPECT_EQ(app.numCpuCores, 1u);
}

TEST(SystemTest, CpuPhaseRunsAndChecksValues)
{
    SystemConfig cfg = SystemConfig::microbenchmarkDefault();
    cfg.memOrg = MemOrg::Cache;
    System sys(cfg);

    Workload wl;
    wl.name = "cpu_only";
    wl.init = [](FunctionalMem &fm) { fm.writeWord(gbase, 17); };
    std::vector<std::vector<CpuOp>> work(2);
    work[0].push_back(CpuOp{gbase, false, 17, true});   // correct
    work[1].push_back(CpuOp{gbase + 4, false, 99, true}); // wrong
    wl.phases.push_back(Phase::cpu(std::move(work)));

    RunResult r = sys.run(std::move(wl));
    EXPECT_FALSE(r.validated);
    ASSERT_EQ(r.errors.size(), 1u);
    EXPECT_NE(r.errors[0].find("cpu"), std::string::npos);
    EXPECT_EQ(r.stats.cpu.loads, 2u);
}

TEST(SystemTest, CpuToGpuToCpuDataflow)
{
    SystemConfig cfg = SystemConfig::microbenchmarkDefault();
    cfg.memOrg = MemOrg::Stash;
    System sys(cfg);

    Workload wl;
    wl.name = "roundtrip";

    // Phase 1: CPU 0 produces.
    std::vector<std::vector<CpuOp>> produce(1);
    for (unsigned i = 0; i < 32; ++i)
        produce[0].push_back(CpuOp{gbase + i * 4, true, 40 + i});
    wl.phases.push_back(Phase::cpu(std::move(produce)));

    // Phase 2: GPU increments through the stash.
    Kernel k;
    ThreadBlock tb;
    tb.localBytes = 128;
    TileSpec t;
    t.globalBase = gbase;
    t.fieldSize = 4;
    t.objectSize = 4;
    t.rowSize = 32;
    t.strideSize = 0;
    t.numStrides = 1;
    tb.addMaps.push_back(AddMapOp{0, t});
    tb.warps.resize(1);
    std::vector<Addr> offs;
    for (unsigned l = 0; l < 32; ++l)
        offs.push_back(l * 4);
    tb.warps[0].push_back(memOp(OpKind::StashLd, offs, 0));
    tb.warps[0].push_back(computeOp(1, 1));
    tb.warps[0].push_back(storeAccOp(OpKind::StashSt, offs, 0));
    k.blocks.push_back(std::move(tb));
    wl.phases.push_back(Phase::gpu(std::move(k)));

    // Phase 3: CPU 1 consumes and checks.
    std::vector<std::vector<CpuOp>> consume(2);
    for (unsigned i = 0; i < 32; ++i)
        consume[1].push_back(CpuOp{gbase + i * 4, false, 41 + i, true});
    wl.phases.push_back(Phase::cpu(std::move(consume)));

    wl.validate = [](FunctionalMem &fm, std::vector<std::string> &) {
        for (unsigned i = 0; i < 32; ++i) {
            if (fm.readWord(gbase + i * 4) != 41 + i)
                return false;
        }
        return true;
    };

    RunResult r = sys.run(std::move(wl));
    EXPECT_TRUE(r.validated) << (r.errors.empty() ? ""
                                                  : r.errors[0]);
    // The consumption was served by the stash through coherence.
    EXPECT_GE(r.stats.stash.remoteHits, 1u);
}

TEST(SystemTest, WarmupPhasesExcludedFromStats)
{
    SystemConfig cfg = SystemConfig::microbenchmarkDefault();
    cfg.memOrg = MemOrg::Cache;

    auto make = [](unsigned warmup) {
        Workload wl;
        wl.name = "warmup";
        wl.warmupPhases = warmup;
        std::vector<std::vector<CpuOp>> w1(1), w2(1);
        for (unsigned i = 0; i < 64; ++i) {
            w1[0].push_back(CpuOp{gbase + i * 4, true, i});
            w2[0].push_back(CpuOp{gbase + i * 4, false, i, true});
        }
        wl.phases.push_back(Phase::cpu(std::move(w1)));
        wl.phases.push_back(Phase::cpu(std::move(w2)));
        return wl;
    };

    System all(cfg);
    RunResult r_all = all.run(make(0));
    System cut(cfg);
    RunResult r_cut = cut.run(make(1));
    EXPECT_TRUE(r_all.validated && r_cut.validated);
    EXPECT_EQ(r_all.stats.cpu.loads, r_cut.stats.cpu.loads);
    EXPECT_EQ(r_cut.stats.cpu.stores, 0u); // excluded
    EXPECT_LT(r_cut.gpuCycles, r_all.gpuCycles);
}

TEST(SystemTest, AllWarmupWorkloadIsFatal)
{
    // warmupPhases >= phases.size() means the baseline capture point
    // is never reached; the run must refuse up front instead of
    // silently reporting zero-subtracted (i.e. unwarmed) stats.
    SystemConfig cfg = SystemConfig::microbenchmarkDefault();
    cfg.memOrg = MemOrg::Cache;
    System sys(cfg);

    Workload wl;
    wl.name = "all_warmup";
    wl.warmupPhases = 1;
    std::vector<std::vector<CpuOp>> w(1);
    w[0].push_back(CpuOp{gbase, true, 1});
    wl.phases.push_back(Phase::cpu(std::move(w)));

    try {
        sys.run(std::move(wl));
        FAIL() << "all-warmup workload was accepted";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("warmupPhases"),
                  std::string::npos)
            << e.what();
    }
}

TEST(SystemTest, RestorePastWarmupWithoutBaselineIsFatal)
{
    // A snapshot taken from a warmup-free twin carries no baseline;
    // resuming it past another workload's warmup boundary must fail
    // loudly rather than subtract a zero baseline and present warmup
    // traffic as measured traffic.
    SystemConfig cfg = SystemConfig::microbenchmarkDefault();
    cfg.memOrg = MemOrg::Cache;

    auto make = [](unsigned warmup) {
        Workload wl;
        wl.name = "baseline_twin";
        wl.warmupPhases = warmup;
        for (int p = 0; p < 2; ++p) {
            std::vector<std::vector<CpuOp>> w(1);
            for (unsigned i = 0; i < 64; ++i)
                w[0].push_back(CpuOp{gbase + i * 4, true, i});
            wl.phases.push_back(Phase::cpu(std::move(w)));
        }
        return wl;
    };

    const std::string dir =
        ::testing::TempDir() + "lost_baseline_ckpt";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    RunControl ckpt;
    ckpt.checkpointEveryTicks = 1;
    ckpt.checkpointDir = dir;
    {
        System sys(cfg);
        RunResult r = sys.run(make(0), ckpt);
        ASSERT_TRUE(r.validated);
    }
    std::string snap;
    for (const auto &de : std::filesystem::directory_iterator(dir)) {
        if (de.path().filename().string().rfind("CKPT_", 0) == 0)
            snap = de.path().string();
    }
    ASSERT_FALSE(snap.empty()) << "no checkpoint was written";

    RunControl res;
    res.restoreFrom = snap;
    System sys(cfg);
    try {
        sys.run(make(1), res);
        FAIL() << "baseline-free resume past the warmup boundary was "
                  "accepted";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("baseline"),
                  std::string::npos)
            << e.what();
    }
}

TEST(EnergyModelTest, UsesTable3Constants)
{
    const EnergyParams p;
    EXPECT_DOUBLE_EQ(p.scratchpadAccess, 55.3);
    EXPECT_DOUBLE_EQ(p.stashHit, 55.4);
    EXPECT_DOUBLE_EQ(p.stashMiss, 86.8);
    EXPECT_DOUBLE_EQ(p.l1Hit, 177.0);
    EXPECT_DOUBLE_EQ(p.l1Miss, 197.0);
    EXPECT_DOUBLE_EQ(p.tlbAccess, 14.1);
}

TEST(EnergyModelTest, BreakdownFollowsCounts)
{
    EnergyModel model;
    SystemStats s;
    s.gpu.instructions = 10;
    s.gpuL1.hitWords = 4;
    s.gpuL1.missWords = 1;
    s.gpuL1.tlbAccesses = 5;
    s.scratch.reads = 3;
    s.stash.hitWords = 2;
    s.stash.missWords = 1;
    s.llc.accesses = 7;
    s.llc.fills = 1;
    s.noc.flitHops[0] = 100;
    s.gpuCycles = 20;
    s.numGpuCus = 2;

    const EnergyParams p;
    EnergyBreakdown e = model.compute(s);
    EXPECT_DOUBLE_EQ(e.gpuCore, 10 * p.gpuCoreInstr +
                                    20 * 2 * p.gpuCorePerCuCycle);
    EXPECT_DOUBLE_EQ(e.l1,
                     4 * p.l1Hit + 1 * p.l1Miss + 5 * p.tlbAccess);
    EXPECT_DOUBLE_EQ(e.local, 3 * p.scratchpadAccess +
                                  2 * p.stashHit + 1 * p.stashMiss);
    EXPECT_DOUBLE_EQ(e.l2, 8 * p.l2Access);
    EXPECT_DOUBLE_EQ(e.noc, 100 * p.nocFlitHop);
    EXPECT_DOUBLE_EQ(e.total(),
                     e.gpuCore + e.l1 + e.local + e.l2 + e.noc);
}

TEST(EnergyModelTest, ScratchpadCheaperThanCacheStashComparable)
{
    // The Table 3 relationships the paper calls out: scratchpad is
    // 29% of an L1 hit; stash hit is comparable to scratchpad; stash
    // miss is 41% of an L1 miss (which pays TLB + tags).
    const EnergyParams p;
    EXPECT_NEAR(p.scratchpadAccess / (p.l1Hit + p.tlbAccess), 0.29,
                0.01);
    EXPECT_NEAR(p.stashHit, p.scratchpadAccess, 0.2);
    EXPECT_NEAR(p.stashMiss / (p.l1Miss + p.tlbAccess), 0.41, 0.01);
}

TEST(SystemTest, StatsFlattenIsComplete)
{
    SystemStats s;
    s.gpu.instructions = 5;
    auto m = s.flatten();
    EXPECT_EQ(m.at("gpu.instructions"), 5.0);
    EXPECT_TRUE(m.count("noc.flitHops.total"));
    EXPECT_TRUE(m.count("stash.loadMisses"));
    EXPECT_TRUE(m.count("sim.gpuCycles"));
}

} // namespace
} // namespace stashsim
