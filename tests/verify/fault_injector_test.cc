/**
 * @file
 * Fault-injector tests: determinism, per-pair FIFO preservation,
 * duplication legality, and stats accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "verify/fault_injector.hh"

namespace stashsim
{
namespace
{

VerifyConfig
injectorConfig(unsigned delay_permille, unsigned dup_permille,
               std::uint64_t seed = 7)
{
    VerifyConfig v;
    v.faultInjection = true;
    v.faultSeed = seed;
    v.faultDelayPermille = delay_permille;
    v.faultMaxDelayCycles = 50;
    v.faultDupPermille = dup_permille;
    v.faultDupDelayCycles = 20;
    return v;
}

Msg
msgOf(MsgType t)
{
    Msg m;
    m.type = t;
    return m;
}

TEST(FaultInjectorTest, ZeroRatesDispatchSynchronously)
{
    EventQueue eq;
    FaultInjector fi(eq, injectorConfig(0, 0));
    bool dispatched = false;
    fi.inject(0, 1, msgOf(MsgType::ReadReq),
              [&dispatched]() { dispatched = true; });
    EXPECT_TRUE(dispatched); // no perturbation, no added latency
    EXPECT_EQ(fi.faults(), 0u);
    EXPECT_EQ(fi.stats().messages, 1u);
}

TEST(FaultInjectorTest, DuplicatesOnlyIdempotentResponses)
{
    EXPECT_TRUE(FaultInjector::duplicableType(MsgType::ReadResp));
    EXPECT_TRUE(FaultInjector::duplicableType(MsgType::RegAck));
    EXPECT_TRUE(FaultInjector::duplicableType(MsgType::WbAck));
    // Requests mutate directory state; DMA responses are matched
    // against a one-shot pending table.  Duplicating any of these
    // would inject a *protocol-illegal* fault.
    EXPECT_FALSE(FaultInjector::duplicableType(MsgType::ReadReq));
    EXPECT_FALSE(FaultInjector::duplicableType(MsgType::RegReq));
    EXPECT_FALSE(FaultInjector::duplicableType(MsgType::InvReq));
    EXPECT_FALSE(FaultInjector::duplicableType(MsgType::WbReq));
    EXPECT_FALSE(FaultInjector::duplicableType(MsgType::FwdReadReq));
    EXPECT_FALSE(FaultInjector::duplicableType(MsgType::DmaReadResp));
    EXPECT_FALSE(FaultInjector::duplicableType(MsgType::DmaWriteAck));
}

TEST(FaultInjectorTest, NeverDuplicatesDmaBoundResponses)
{
    // A ReadResp is idempotent at an L1 or a stash, but the DMA
    // engine matches responses against a one-shot pending table:
    // responses whose receiver is the DMA must never be duplicated,
    // whatever their type.
    EventQueue eq;
    FaultInjector fi(eq, injectorConfig(0, 1000));
    Msg m = msgOf(MsgType::ReadResp);
    m.requesterUnit = Unit::Dma;
    unsigned deliveries = 0;
    for (int i = 0; i < 50; ++i)
        fi.inject(0, 1, m, [&deliveries]() { ++deliveries; });
    eq.run();
    EXPECT_EQ(deliveries, 50u);
    EXPECT_EQ(fi.stats().duplicated, 0u);
}

TEST(FaultInjectorTest, PreservesPerPairFifoOrder)
{
    EventQueue eq;
    FaultInjector fi(eq, injectorConfig(900, 0));
    std::vector<int> order;
    for (int i = 0; i < 200; ++i) {
        fi.inject(0, 1, msgOf(MsgType::RegReq),
                  [&order, i]() { order.push_back(i); });
    }
    eq.run();
    ASSERT_EQ(order.size(), 200u);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(order[i], i);
    EXPECT_GT(fi.stats().delayed, 0u);
}

TEST(FaultInjectorTest, CrossPairReorderingHappens)
{
    EventQueue eq;
    FaultInjector fi(eq, injectorConfig(500, 0));
    // Interleave two (src,dst) pairs; with independent delays some
    // cross-pair inversion must appear over 400 messages.
    std::vector<std::pair<int, int>> order; // (pair, seq)
    for (int i = 0; i < 200; ++i) {
        fi.inject(0, 1, msgOf(MsgType::ReadReq),
                  [&order, i]() { order.emplace_back(0, i); });
        fi.inject(2, 3, msgOf(MsgType::ReadReq),
                  [&order, i]() { order.emplace_back(1, i); });
    }
    eq.run();
    ASSERT_EQ(order.size(), 400u);
    bool inverted = false;
    int last_pair = -1, last_seq = -1;
    for (const auto &[pair, seq] : order) {
        if (last_pair >= 0 && pair != last_pair && seq < last_seq)
            inverted = true;
        last_pair = pair;
        last_seq = seq;
    }
    EXPECT_TRUE(inverted);
}

TEST(FaultInjectorTest, DuplicationSchedulesExtraDelivery)
{
    EventQueue eq;
    FaultInjector fi(eq, injectorConfig(0, 1000));
    unsigned deliveries = 0;
    for (int i = 0; i < 10; ++i) {
        fi.inject(0, 1, msgOf(MsgType::ReadResp),
                  [&deliveries]() { ++deliveries; });
    }
    eq.run();
    EXPECT_EQ(deliveries, 20u); // every response delivered twice
    EXPECT_EQ(fi.stats().duplicated, 10u);
    // Non-duplicable types stay single even at 100% dup rate.
    fi.inject(0, 1, msgOf(MsgType::RegReq),
              [&deliveries]() { ++deliveries; });
    eq.run();
    EXPECT_EQ(deliveries, 21u);
}

TEST(FaultInjectorTest, SameSeedIsBitExactlyReproducible)
{
    auto trace = [](std::uint64_t seed) {
        EventQueue eq;
        FaultInjector fi(eq, injectorConfig(400, 300, seed));
        std::vector<std::pair<int, Tick>> deliveries;
        for (int i = 0; i < 100; ++i) {
            const MsgType t =
                i % 3 ? MsgType::ReadResp : MsgType::RegReq;
            fi.inject(NodeId(i % 4), NodeId(i % 5), msgOf(t),
                      [&deliveries, &eq, i]() {
                          deliveries.emplace_back(i, eq.curTick());
                      });
        }
        eq.run();
        return deliveries;
    };
    const auto a = trace(11);
    const auto b = trace(11);
    const auto c = trace(12);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

} // namespace
} // namespace stashsim
