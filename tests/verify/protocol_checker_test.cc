/**
 * @file
 * Protocol-checker tests: clean runs across configurations stay
 * green; intentionally seeded protocol bugs are caught with
 * diagnostics naming the offending word and parties.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "driver/system.hh"
#include "verify/protocol_checker.hh"
#include "workloads/apps.hh"
#include "workloads/microbench.hh"

namespace stashsim
{
namespace
{

SystemConfig
checkedConfig(MemOrg org)
{
    SystemConfig cfg = SystemConfig::microbenchmarkDefault();
    cfg.memOrg = org;
    cfg.verify.protocolChecker = true;
    cfg.verify.watchdog = true;
    return cfg;
}

workloads::MicrobenchConfig
smallBench(MemOrg org)
{
    workloads::MicrobenchConfig mc;
    mc.org = org;
    mc.implicitElements = 1024;
    mc.pollutionElementsA = 2048;
    mc.pollutionWordsB = 512;
    mc.onDemandElements = 1024;
    mc.reuseElements = 1024;
    mc.reuseKernels = 3;
    return mc;
}

TEST(ProtocolCheckerTest, AllMicrobenchesCleanUnderStash)
{
    for (const std::string &name : workloads::microbenchmarkNames()) {
        System sys(checkedConfig(MemOrg::Stash));
        RunResult r;
        ASSERT_NO_THROW(
            r = sys.run(workloads::makeMicrobenchmark(
                name, smallBench(MemOrg::Stash))))
            << name;
        EXPECT_TRUE(r.validated) << name;
        EXPECT_GT(sys.checker()->auditsRun(), 0u);
        EXPECT_GT(sys.checker()->storesSeen(), 0u);
        EXPECT_GT(sys.checker()->trackedWords(), 0u);
        EXPECT_TRUE(sys.checker()->violationLog().empty());
    }
}

TEST(ProtocolCheckerTest, ImplicitCleanUnderCacheAndScratchGD)
{
    for (MemOrg org : {MemOrg::Cache, MemOrg::ScratchGD}) {
        System sys(checkedConfig(org));
        RunResult r;
        ASSERT_NO_THROW(r = sys.run(workloads::makeMicrobenchmark(
                            "Implicit", smallBench(org))));
        EXPECT_TRUE(r.validated);
        EXPECT_TRUE(sys.checker()->violationLog().empty());
    }
}

TEST(ProtocolCheckerTest, AllApplicationsCleanUnderStash)
{
    workloads::AppConfig ac;
    ac.org = MemOrg::Stash;
    ac.ludN = 64;
    ac.bpInputBytes = 8 * 1024;
    ac.nwN = 128;
    ac.pfCols = 256 * 16;
    ac.pfRows = 4;
    ac.sgemmM = 32;
    ac.sgemmK = 32;
    ac.sgemmN = 32;
    ac.stencilX = 64;
    ac.stencilY = 64;
    ac.stencilZ = 2;
    ac.stencilIters = 2;
    ac.surfPixels = 128 * 32;
    for (const std::string &name : workloads::applicationNames()) {
        SystemConfig cfg = SystemConfig::applicationDefault();
        cfg.memOrg = MemOrg::Stash;
        cfg.verify.protocolChecker = true;
        cfg.verify.watchdog = true;
        System sys(cfg);
        RunResult r;
        ASSERT_NO_THROW(
            r = sys.run(workloads::makeApplication(name, ac)))
            << name;
        EXPECT_TRUE(r.validated) << name;
        EXPECT_TRUE(sys.checker()->violationLog().empty()) << name;
    }
}

TEST(ProtocolCheckerTest, DoubleRegistrationCaughtWithBothParties)
{
    // Seed the bug: drop the InvReq that should strip core 1's
    // registration when core 2 stores the same word.  Both L1s are
    // left believing they own it — exactly the invariant the checker
    // audits at the phase drain.
    SystemConfig cfg = checkedConfig(MemOrg::Cache);
    cfg.verify.watchdog = false;
    System sys(cfg);

    bool dropped = false;
    sys.fabricRef().setTestDropFilter(
        [&dropped](NodeId, NodeId, const Msg &m) {
            if (m.type == MsgType::InvReq && !dropped) {
                dropped = true;
                return true;
            }
            return false;
        });

    constexpr Addr gbase = 0x400000;
    Workload wl;
    wl.name = "double_registration";
    std::vector<std::vector<CpuOp>> first(1), second(2);
    first[0].push_back(CpuOp{gbase, true, 5});
    second[1].push_back(CpuOp{gbase, true, 9});
    wl.phases.push_back(Phase::cpu(std::move(first)));
    wl.phases.push_back(Phase::cpu(std::move(second)));

    try {
        sys.run(std::move(wl));
        FAIL() << "checker missed the seeded double registration";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("protocol checker"), std::string::npos);
        EXPECT_NE(what.find("double registration"), std::string::npos);
        EXPECT_NE(what.find("pa=0x"), std::string::npos);
        // Both registrants by name: the CPUs are cores 1 and 2 (the
        // single GPU CU is core 0).
        EXPECT_NE(what.find("core 1"), std::string::npos);
        EXPECT_NE(what.find("core 2"), std::string::npos);
    }
    EXPECT_TRUE(dropped);
    EXPECT_FALSE(sys.checker()->violationLog().empty());
}

TEST(ProtocolCheckerTest, LostWritebackCaught)
{
    // Dropping a WbReq leaves the directory pointing at a copy that
    // no longer exists (or the final image stale) — one of the drain
    // audits or the final-memory check must fire.
    SystemConfig cfg = checkedConfig(MemOrg::Cache);
    cfg.verify.watchdog = false;
    System sys(cfg);

    bool dropped = false;
    sys.fabricRef().setTestDropFilter(
        [&dropped](NodeId, NodeId, const Msg &m) {
            if (m.type == MsgType::WbReq && !dropped) {
                dropped = true;
                return true;
            }
            return false;
        });

    constexpr Addr gbase = 0x500000;
    Workload wl;
    wl.name = "lost_writeback";
    std::vector<std::vector<CpuOp>> work(1);
    for (unsigned i = 0; i < 16; ++i)
        work[0].push_back(CpuOp{gbase + i * 4, true, 100 + i});
    wl.phases.push_back(Phase::cpu(std::move(work)));

    EXPECT_THROW(sys.run(std::move(wl)), std::runtime_error);
    EXPECT_TRUE(dropped);
    EXPECT_FALSE(sys.checker()->violationLog().empty());
}

TEST(ProtocolCheckerTest, StandaloneGoldenTracksStoresAndFills)
{
    ProtocolChecker pc;
    pc.onStore(0x1000, 42);
    EXPECT_EQ(pc.trackedWords(), 1u);
    EXPECT_NO_THROW(pc.onFill("L1", 0, 0x1000, 42));
    EXPECT_THROW(pc.onFill("L1", 0, 0x1000, 43), std::runtime_error);
}

TEST(ProtocolCheckerTest, OpaqueWordsExemptFromDataChecks)
{
    ProtocolChecker pc;
    pc.onStore(0x2000, 7);
    pc.onOpaqueStore(0x2000);
    // Non-coherent data may diverge arbitrarily from any golden
    // value; the checker must not flag it.
    EXPECT_NO_THROW(pc.onFill("stash", 0, 0x2000, 999));
    // A later coherent store makes the word checkable again.
    pc.onStore(0x2000, 8);
    EXPECT_THROW(pc.onFill("stash", 0, 0x2000, 999),
                 std::runtime_error);
}

TEST(ProtocolCheckerTest, SelfInvalidatingRegisteredWordCaught)
{
    ProtocolChecker pc;
    EXPECT_NO_THROW(
        pc.onSelfInvalidate("L1", 0, 0x3000, WordState::Valid));
    try {
        pc.onSelfInvalidate("stash", 3, 0x3000,
                            WordState::Registered);
        FAIL() << "Registered self-invalidation not caught";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("Registered"), std::string::npos);
        EXPECT_NE(what.find("core 3"), std::string::npos);
    }
}

TEST(ProtocolCheckerTest, DirtyDataUnderflowCaught)
{
    ProtocolChecker pc;
    try {
        pc.onDirtyDataUnderflow(2, 17);
        FAIL() << "underflow not caught";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("#DirtyData underflow"),
                  std::string::npos);
        EXPECT_NE(what.find("map entry 17"), std::string::npos);
    }
}

} // namespace
} // namespace stashsim
