/**
 * @file
 * Watchdog tests: livelock detection, clean-run silence, deadlock
 * reporting, diagnostic dumps.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "verify/watchdog.hh"

namespace stashsim
{
namespace
{

VerifyConfig
fastConfig()
{
    VerifyConfig v;
    v.watchdog = true;
    v.watchdogCheckTicks = 100;
    v.watchdogStallChecks = 3;
    return v;
}

TEST(WatchdogTest, TripsOnLivelock)
{
    EventQueue eq;
    Watchdog wd(eq, fastConfig());
    wd.beginPhase("livelock");

    // Endless churn that never reports progress — the watchdog's
    // fatal() is the only way this run terminates.
    std::function<void()> churn = [&]() { eq.scheduleIn(10, churn); };
    eq.scheduleIn(10, churn);

    try {
        eq.run();
        FAIL() << "watchdog did not trip";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("watchdog"), std::string::npos);
        EXPECT_NE(what.find("livelock"), std::string::npos);
    }
}

TEST(WatchdogTest, StaysQuietWhileProgressing)
{
    EventQueue eq;
    Watchdog wd(eq, fastConfig());
    wd.beginPhase("healthy");

    // Far more check windows than the stall threshold, but every
    // window sees progress.
    unsigned remaining = 100;
    std::function<void()> work = [&]() {
        wd.progress();
        if (--remaining > 0)
            eq.scheduleIn(60, work);
    };
    eq.scheduleIn(60, work);

    EXPECT_NO_THROW(eq.run());
    wd.endPhase();
    EXPECT_EQ(wd.progressCount(), 100u);
}

TEST(WatchdogTest, CheckEventDrainsWithTheQueue)
{
    // The periodic check must not keep an idle queue alive forever.
    EventQueue eq;
    Watchdog wd(eq, fastConfig());
    wd.beginPhase("empty");
    EXPECT_NO_THROW(eq.run());
    EXPECT_TRUE(eq.empty());
    wd.endPhase();
}

TEST(WatchdogTest, EndPhaseDisarmsPendingCheck)
{
    EventQueue eq;
    Watchdog wd(eq, fastConfig());
    wd.beginPhase("one");
    wd.endPhase();
    // The stale check event from phase "one" fires but must neither
    // trip nor re-arm.
    EXPECT_NO_THROW(eq.run());
    EXPECT_TRUE(eq.empty());
}

TEST(WatchdogTest, ReportHangThrowsWithPhaseContext)
{
    EventQueue eq;
    Watchdog wd(eq, fastConfig());
    wd.beginPhase("gpu kernel");
    wd.endPhase();
    try {
        wd.reportHang("gpu kernel");
        FAIL() << "reportHang returned";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("watchdog"), std::string::npos);
        EXPECT_NE(what.find("gpu kernel"), std::string::npos);
    }
}

TEST(WatchdogTest, DumpFnRunsWhenTripping)
{
    EventQueue eq;
    Watchdog wd(eq, fastConfig());
    bool dumped = false;
    wd.setDumpFn([&dumped](std::ostream &os) {
        dumped = true;
        os << "component state\n";
    });
    wd.beginPhase("livelock");
    std::function<void()> churn = [&]() { eq.scheduleIn(10, churn); };
    eq.scheduleIn(10, churn);
    EXPECT_THROW(eq.run(), std::runtime_error);
    EXPECT_TRUE(dumped);
}

} // namespace
} // namespace stashsim
