/**
 * @file
 * Deadlock/livelock watchdog.
 *
 * The simulator's components communicate exclusively through event-
 * queue callbacks, so both failure modes of a broken protocol show up
 * the same way: the retiring units (CU warps, CPU cores, DMA lines)
 * stop making forward progress while the event queue either empties
 * with work still pending (deadlock — a message was lost) or keeps
 * churning without retiring anything (livelock — e.g. a FwdRetry
 * storm).  The watchdog counts retirement events reported by those
 * units and checks the counter periodically from inside the event
 * queue; a configurable number of consecutive no-progress windows
 * trips a structured diagnostic dump followed by fatal() (which
 * throws, so tests can assert on it).
 *
 * The periodic check event re-arms itself only while other events are
 * pending, so a healthy phase still drains the queue; the deadlock
 * case (queue empty, phase incomplete) is reported by the driver via
 * reportHang().
 */

#ifndef STASHSIM_VERIFY_WATCHDOG_HH
#define STASHSIM_VERIFY_WATCHDOG_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "config/system_config.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace stashsim
{

/**
 * Forward-progress watchdog over one event queue.
 *
 * Arms and disarms either through the explicit beginPhase()/
 * endPhase() calls below or automatically, as a PhaseListener on the
 * event queue (the System driver registers it that way).
 */
class Watchdog : public PhaseListener
{
  public:
    /** System-level diagnostic dump (routers, fabric, stashes...). */
    using DumpFn = std::function<void(std::ostream &)>;

    Watchdog(EventQueue &eq, const VerifyConfig &cfg);
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /** Registers the dump run on any panic/fatal and on a trip. */
    void setDumpFn(DumpFn fn) { dumpFn = std::move(fn); }

    /**
     * Progress tick: a unit retired work (instruction, op, line).
     * Relaxed atomic — sharded tiles report concurrently and only
     * the total matters (it is compared, never ordered).
     */
    void progress() { _progress.fetch_add(1, std::memory_order_relaxed); }

    /**
     * Switches the watchdog to externally driven checks: beginPhase()
     * stops arming periodic check events on the queue, and the
     * sharded engine's quantum-barrier hook calls barrierCheck()
     * instead.  Quantum boundaries are the sharded run's coherent
     * global drain points: every worker is parked, so the watchdog
     * sees a consistent snapshot of all tiles.
     */
    void setExternalChecks(bool on) { externalChecks = on; }

    /**
     * Quantum-barrier check (external mode): runs the same stall
     * logic as the event-based check once per watchdogCheckTicks of
     * simulated time.  @p now is the quantum end tick, @p pending the
     * global pending-event count across all tiles.
     */
    void barrierCheck(Tick now, std::size_t pending);

    /** Arms the watchdog for one phase/drain named @p what. */
    void beginPhase(const char *what);

    /** Disarms the watchdog (the phase drained normally). */
    void endPhase();

    /** @{ PhaseListener: arm/disarm at the driver's drain points. */
    void phaseBegin(const char *name, Tick) override
    {
        beginPhase(name);
    }
    void phaseEnd(const char *, Tick) override { endPhase(); }
    /** @} */

    /**
     * Driver-detected deadlock: the queue drained but the phase did
     * not complete (a message or completion was lost).  Dumps and
     * throws via fatal().
     */
    [[noreturn]] void reportHang(const std::string &why);

    std::uint64_t
    progressCount() const
    {
        return _progress.load(std::memory_order_relaxed);
    }

  private:
    void armCheck();
    void check(std::uint64_t gen);
    /** Shared stall accounting; @p pending for the trip message. */
    void observe(std::size_t pending);
    [[noreturn]] void trip(const std::string &why);

    EventQueue &eq;
    VerifyConfig cfg;
    DumpFn dumpFn;
    std::size_t hookId = 0;

    std::atomic<std::uint64_t> _progress{0};
    std::uint64_t lastProgress = 0;
    unsigned stalls = 0;
    bool externalChecks = false;
    Tick nextCheckAt = 0; //!< external mode: next check due (0 = init)
    /** Invalidates check events armed for earlier phases. */
    std::uint64_t generation = 0;
    bool armed = false;
    std::string phaseName;
};

} // namespace stashsim

#endif // STASHSIM_VERIFY_WATCHDOG_HH
