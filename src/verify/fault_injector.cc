#include "verify/fault_injector.hh"

#include <algorithm>
#include <sstream>
#include <vector>

#include "snapshot/snapshot.hh"

namespace stashsim
{

FaultInjector::FaultInjector(EventQueue &eq, const VerifyConfig &cfg)
    : eq(eq), cfg(cfg), rng(cfg.faultSeed)
{
}

bool
FaultInjector::duplicableType(MsgType t)
{
    switch (t) {
      case MsgType::ReadResp:
      case MsgType::RegAck:
      case MsgType::WbAck:
        return true;
      default:
        return false;
    }
}

bool
FaultInjector::roll(unsigned permille)
{
    if (permille == 0)
        return false;
    return rng() % 1000 < permille;
}

void
FaultInjector::inject(NodeId src, NodeId dst, const Msg &msg,
                      DispatchFn dispatch)
{
    ++_stats.messages;

    Tick release = eq.curTick();
    if (roll(cfg.faultDelayPermille)) {
        const Cycles cycles = rng() % (cfg.faultMaxDelayCycles + 1);
        release += cycles * gpuClockPeriod;
        ++_stats.delayed;
    }

    // FIFO clamp: never release before an earlier message on the same
    // pair.  The mesh preserves pair order for sends at non-decreasing
    // ticks (link reservations are monotonic; equal-tick events run in
    // insertion order), so clamping the release tick is sufficient.
    Tick &last = lastRelease[{src, dst}];
    release = std::max(release, last);
    last = release;

    if (release == eq.curTick())
        dispatch();
    else
        eq.schedule(release, dispatch, EventQueue::PriDelivery);

    // requesterUnit names the receiver of a response; the DMA engine
    // matches responses against a one-shot pending table, so a
    // duplicate there is a protocol-illegal fault, not a tolerated
    // one.
    const bool dma_bound = msg.requesterUnit == Unit::Dma;
    if (!dma_bound && duplicableType(msg.type) &&
        roll(cfg.faultDupPermille)) {
        const Tick span =
            std::max<Tick>(cfg.faultDupDelayCycles * gpuClockPeriod, 1);
        const Tick extra = 1 + rng() % span;
        ++_stats.duplicated;
        // The duplicate is deliberately outside the FIFO clamp: late
        // duplicates of these types are exactly the fault being
        // injected, and every receiver discards them.
        eq.schedule(release + extra, std::move(dispatch),
                    EventQueue::PriDelivery);
    }
}

void
FaultInjector::snapshot(SnapshotWriter &w) const
{
    std::ostringstream os;
    os << rng;
    w.str(os.str());
    std::vector<std::pair<std::pair<NodeId, NodeId>, Tick>> pairs(
        lastRelease.begin(), lastRelease.end());
    w.u64(pairs.size());
    for (const auto &[key, tick] : pairs) {
        w.u32(key.first);
        w.u32(key.second);
        w.u64(tick);
    }
    w.u64(_stats.messages);
    w.u64(_stats.delayed);
    w.u64(_stats.duplicated);
}

void
FaultInjector::restore(SnapshotReader &r)
{
    std::istringstream is(r.str());
    is >> rng;
    r.require(bool(is), "mt19937_64 state malformed");
    lastRelease.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const NodeId src = NodeId(r.u32());
        const NodeId dst = NodeId(r.u32());
        lastRelease[{src, dst}] = Tick(r.u64());
    }
    _stats.messages = r.u64();
    _stats.delayed = r.u64();
    _stats.duplicated = r.u64();
}

} // namespace stashsim
