#include "verify/watchdog.hh"

#include <iostream>
#include <sstream>

#include "sim/log.hh"

namespace stashsim
{

Watchdog::Watchdog(EventQueue &eq, const VerifyConfig &cfg)
    : eq(eq), cfg(cfg)
{
    // Any panic/fatal — not just the watchdog's own trips — should
    // come with the system-state dump attached.
    hookId = registerDiagnosticHook([this]() {
        std::cerr << "--- watchdog diagnostics (tick " << this->eq.curTick()
                  << ", phase '" << phaseName << "', progress "
                  << _progress << ") ---\n";
        if (dumpFn)
            dumpFn(std::cerr);
        std::cerr.flush();
    });
}

Watchdog::~Watchdog()
{
    unregisterDiagnosticHook(hookId);
}

void
Watchdog::beginPhase(const char *what)
{
    ++generation;
    phaseName = what;
    lastProgress = _progress;
    stalls = 0;
    armed = true;
    armCheck();
}

void
Watchdog::endPhase()
{
    ++generation;
    armed = false;
}

void
Watchdog::armCheck()
{
    const std::uint64_t gen = generation;
    // PriStats: check after the tick's real work, so progress made at
    // this very tick is seen.
    eq.scheduleIn(cfg.watchdogCheckTicks,
                  [this, gen]() { check(gen); },
                  EventQueue::PriStats);
}

void
Watchdog::check(std::uint64_t gen)
{
    if (gen != generation)
        return; // stale: armed for an earlier phase
    if (_progress != lastProgress) {
        lastProgress = _progress;
        stalls = 0;
    } else if (++stalls >= cfg.watchdogStallChecks) {
        std::ostringstream os;
        os << "no forward progress in phase '" << phaseName << "' for "
           << stalls << " consecutive checks ("
           << stalls * cfg.watchdogCheckTicks << " ticks); "
           << eq.size() << " events still pending (livelock?)";
        trip(os.str());
    }
    // Re-arm only while the simulation is still doing something; an
    // empty queue means the drain is complete (or the driver will
    // report a hang).
    if (eq.size() > 0)
        armCheck();
}

void
Watchdog::reportHang(const std::string &why)
{
    trip("event queue drained but phase '" + phaseName +
         "' did not complete: " + why + " (lost message?)");
}

void
Watchdog::trip(const std::string &why)
{
    armed = false;
    // fatal() flushes the diagnostic hooks (including ours) before
    // throwing, so the dump precedes the failure.
    fatal("watchdog: ", why);
}

} // namespace stashsim
