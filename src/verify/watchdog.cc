#include "verify/watchdog.hh"

#include <iostream>
#include <sstream>

#include "sim/log.hh"

namespace stashsim
{

Watchdog::Watchdog(EventQueue &eq, const VerifyConfig &cfg)
    : eq(eq), cfg(cfg)
{
    // Any panic/fatal — not just the watchdog's own trips — should
    // come with the system-state dump attached.
    hookId = registerDiagnosticHook([this]() {
        std::cerr << "--- watchdog diagnostics (tick " << this->eq.curTick()
                  << ", phase '" << phaseName << "', progress "
                  << progressCount() << ") ---\n";
        if (dumpFn)
            dumpFn(std::cerr);
        std::cerr.flush();
    });
}

Watchdog::~Watchdog()
{
    unregisterDiagnosticHook(hookId);
}

void
Watchdog::beginPhase(const char *what)
{
    ++generation;
    phaseName = what;
    lastProgress = progressCount();
    stalls = 0;
    armed = true;
    if (externalChecks)
        nextCheckAt = 0;
    else
        armCheck();
}

void
Watchdog::endPhase()
{
    ++generation;
    armed = false;
}

void
Watchdog::armCheck()
{
    const std::uint64_t gen = generation;
    // PriInternal: check after the tick's real work (so progress made
    // at this very tick is seen), and keep the poll out of the
    // model's clock and event accounting — a poll firing after the
    // last model event must not change the run's reported time.
    eq.scheduleIn(cfg.watchdogCheckTicks,
                  [this, gen]() { check(gen); },
                  EventQueue::PriInternal);
}

void
Watchdog::check(std::uint64_t gen)
{
    if (gen != generation)
        return; // stale: armed for an earlier phase
    observe(eq.size());
    // Re-arm only while the simulation is still doing something; an
    // empty queue means the drain is complete (or the driver will
    // report a hang).
    if (eq.size() > 0)
        armCheck();
}

void
Watchdog::barrierCheck(Tick now, std::size_t pending)
{
    if (!armed)
        return;
    if (nextCheckAt == 0) {
        // First barrier of the phase establishes the cadence; the
        // watchdog has no tick source of its own in external mode.
        nextCheckAt = now + cfg.watchdogCheckTicks;
        return;
    }
    if (now < nextCheckAt)
        return;
    nextCheckAt = now + cfg.watchdogCheckTicks;
    observe(pending);
}

void
Watchdog::observe(std::size_t pending)
{
    const std::uint64_t progress = progressCount();
    if (progress != lastProgress) {
        lastProgress = progress;
        stalls = 0;
    } else if (++stalls >= cfg.watchdogStallChecks) {
        std::ostringstream os;
        os << "no forward progress in phase '" << phaseName << "' for "
           << stalls << " consecutive checks ("
           << stalls * cfg.watchdogCheckTicks << " ticks); "
           << pending << " events still pending (livelock?)";
        trip(os.str());
    }
}

void
Watchdog::reportHang(const std::string &why)
{
    trip("event queue drained but phase '" + phaseName +
         "' did not complete: " + why + " (lost message?)");
}

void
Watchdog::trip(const std::string &why)
{
    armed = false;
    // fatal() flushes the diagnostic hooks (including ours) before
    // throwing, so the dump precedes the failure.
    fatal("watchdog: ", why);
}

} // namespace stashsim
