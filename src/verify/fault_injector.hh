/**
 * @file
 * NoC fault injector: seeded, deterministic message perturbation.
 *
 * Sits between the Fabric and the Mesh.  Every message may be delayed
 * by a random (bounded) number of cycles, and idempotent response
 * types may additionally be duplicated.  The perturbations stay
 * within what the protocol is specified to tolerate:
 *
 *  - Per-(src,dst) FIFO order is preserved for primary deliveries: a
 *    delayed message holds back later messages on the same pair
 *    (DeNovo relies on a store's RegReq reaching the directory before
 *    any later writeback of the same words).  Cross-pair reordering
 *    arises naturally from independent delays.
 *  - Only ReadResp/RegAck/WbAck are duplicated.  Receivers drop late
 *    duplicates of these (no MSHR / no pending fill / acks ignored);
 *    duplicating a RegReq or InvReq would genuinely corrupt the
 *    directory, and the DMA engine asserts on unexpected responses.
 *
 * All randomness comes from one seeded mt19937_64 consulted in
 * simulation order, so a given (seed, workload) run is exactly
 * reproducible.
 */

#ifndef STASHSIM_VERIFY_FAULT_INJECTOR_HH
#define STASHSIM_VERIFY_FAULT_INJECTOR_HH

#include <cstdint>
#include <functional>
#include <map>
#include <random>
#include <utility>

#include "config/system_config.hh"
#include "mem/coherence/msg.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace stashsim
{

class SnapshotWriter;
class SnapshotReader;

/**
 * Deterministic NoC fault injector.
 */
class FaultInjector
{
  public:
    /** The actual mesh dispatch; safe to invoke more than once. */
    using DispatchFn = std::function<void()>;

    struct Stats
    {
        std::uint64_t messages = 0;   //!< messages seen
        std::uint64_t delayed = 0;    //!< primary deliveries delayed
        std::uint64_t duplicated = 0; //!< extra duplicate deliveries
    };

    FaultInjector(EventQueue &eq, const VerifyConfig &cfg);

    /** True when @p t tolerates duplicate delivery at every receiver. */
    static bool duplicableType(MsgType t);

    /**
     * Routes one message: dispatches immediately, or schedules the
     * dispatch (and possibly a duplicate) at perturbed times.
     */
    void inject(NodeId src, NodeId dst, const Msg &msg,
                DispatchFn dispatch);

    const Stats &stats() const { return _stats; }

    /**
     * Serializes the RNG stream position, FIFO clamps, and fault
     * counters.  Only valid at a drain point: every delayed/duplicate
     * delivery has resolved, so the engine state lives entirely in
     * these members — which is what makes injected-fault runs
     * checkpointable at all.  The mt19937_64 state rides as its
     * canonical textual serialization (the standard's operator<<).
     */
    void snapshot(SnapshotWriter &w) const;
    /** Restores what @ref snapshot wrote. */
    void restore(SnapshotReader &r);

    /** Total injected faults (delays + duplicates). */
    std::uint64_t faults() const
    {
        return _stats.delayed + _stats.duplicated;
    }

  private:
    /** One permille draw against @p permille (deterministic). */
    bool roll(unsigned permille);

    EventQueue &eq;
    VerifyConfig cfg;
    std::mt19937_64 rng;
    /** Last primary release tick per (src,dst): the FIFO clamp. */
    std::map<std::pair<NodeId, NodeId>, Tick> lastRelease;
    Stats _stats;
};

} // namespace stashsim

#endif // STASHSIM_VERIFY_FAULT_INJECTOR_HH
