/**
 * @file
 * Protocol invariant checker: shadows the stash-extended DeNovo
 * protocol against a functional golden memory.
 *
 * The checker maintains a word-granularity golden image updated at
 * every store commit point (L1 store, coherent stash store, a ChgMap
 * non-coherent-to-coherent conversion, DMA store injection) and
 * verifies, at every drain point (phase boundaries — the protocol's
 * data-race-free synchronization points) and at selected transitions,
 * the DeNovo invariants:
 *
 *  - at most one Registered copy of any word system-wide (checked at
 *    drain: DeNovo's optimistic registration legally allows two
 *    transient Registered copies while an InvReq is in flight);
 *  - the LLC directory entry of a Registered word names the actual
 *    registrant (core and unit; the stash-map index hint may legally
 *    go stale and is excluded), and every privately Registered word
 *    is Registered at the directory for that owner;
 *  - readable words match golden data wherever freshness is provable
 *    at a drain: LLC-Valid directory words and privately Registered
 *    words.  Private *Valid* copies are exempt — a reader's stale
 *    Valid copy before its next self-invalidation is exactly the
 *    staleness DeNovo permits;
 *  - demanded fill data matches golden (only the demanded words: an
 *    opportunistic whole-line fill may carry words whose registration
 *    is still in flight);
 *  - a stash-map entry's #DirtyData equals its dirty/writeback chunk
 *    count, never underflows, and Registered stash words are always
 *    reachable through a live coherent mapping;
 *  - self-invalidation never kills a Registered word.
 *
 * Words written through non-coherent stash mappings become "opaque"
 * (excluded from data checks) until a coherent store makes them
 * globally visible again.  Words never stored through the modelled
 * protocol (workload init data) are adopted into the golden image at
 * their first demanded fill.
 *
 * On violation the checker dumps every finding plus the registered
 * diagnostic hooks and throws via fatal(), naming the offending word
 * and parties in the exception text so tests can assert on it.
 */

#ifndef STASHSIM_VERIFY_PROTOCOL_CHECKER_HH
#define STASHSIM_VERIFY_PROTOCOL_CHECKER_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/coherence/denovo.hh"
#include "sim/types.hh"

namespace stashsim
{

class L1Cache;
class LlcBank;
class MainMemory;
class SnapshotReader;
class SnapshotWriter;
class Stash;

/**
 * The golden-memory protocol checker.
 */
class ProtocolChecker
{
  public:
    ProtocolChecker();
    ~ProtocolChecker();

    ProtocolChecker(const ProtocolChecker &) = delete;
    ProtocolChecker &operator=(const ProtocolChecker &) = delete;

    /** @{ Topology registration (System wires these at build time). */
    void addL1(CoreId core, const L1Cache *l1);
    void addStash(CoreId core, const Stash *stash);
    void addLlc(const LlcBank *llc);
    /** @} */

    /** @{ Transition hooks called by the instrumented components. */

    /** A store to @p pa committed with @p value (globally visible). */
    void onStore(PhysAddr pa, std::uint32_t value);

    /** A non-coherent stash store hid @p pa from the global image. */
    void onOpaqueStore(PhysAddr pa);

    /**
     * A *demanded* word arrived at @p unit of core @p core.  Fails
     * immediately on a golden mismatch; adopts untracked words.
     */
    void onFill(const char *unit, CoreId core, PhysAddr pa,
                std::uint32_t value);

    /**
     * Unit @p unit of core @p core self-invalidated a word (at
     * @p addr; a PA for L1s, a stash word index for stashes) whose
     * prior state was @p prior.  Fails if @p prior was Registered.
     */
    void onSelfInvalidate(const char *unit, CoreId core,
                          std::uint64_t addr, WordState prior);

    /** A #DirtyData counter of @p core's entry @p idx hit zero while
     *  a dirty chunk still charged it.  Fails immediately. */
    void onDirtyDataUnderflow(CoreId core, unsigned idx);

    /** @} */

    /**
     * Drain-point audit of every registered component (see file
     * comment).  Throws via fatal() when violations are found.
     */
    void audit(const char *when);

    /**
     * End-of-run check: every tracked (non-opaque) golden word must
     * match the flushed memory image.
     */
    void checkFinalMemory(const MainMemory &mem);

    /** @{ Introspection for tests. */
    std::size_t trackedWords() const { return golden.size(); }
    std::uint64_t storesSeen() const { return _storesSeen; }
    std::uint64_t fillsChecked() const { return _fillsChecked; }
    std::uint64_t auditsRun() const { return _auditsRun; }
    const std::vector<std::string> &violationLog() const
    {
        return violations;
    }
    /** @} */

    /**
     * Serializes the golden image, opaque set, and counters (sorted,
     * so the section is canonical).  The violation log is not
     * serialized: a violation is fatal, so a checkpoint can only
     * exist with an empty log.
     */
    void snapshot(SnapshotWriter &w) const;

    /** Restores the golden image from a checkpoint. */
    void restore(SnapshotReader &r);

  private:
    void violation(std::string what);
    [[noreturn]] void fail(const char *context);

    /**
     * Serializes the transition hooks: sharded tiles commit stores
     * and fills concurrently, and the golden image is one shared
     * map.  Recursive because fail() flushes diagnostic hooks —
     * including the checker's own dump — while a hook holds the
     * lock.  The checker is a debug instrument; the serialization
     * cost is accepted (and zero when the checker is not attached).
     */
    mutable std::recursive_mutex mu;

    struct PrivateUnit
    {
        CoreId core;
        const L1Cache *l1 = nullptr; //!< exactly one of l1/stash set
        const Stash *stash = nullptr;
    };

    std::vector<PrivateUnit> units;
    std::vector<const LlcBank *> llcs;

    /** Golden word image: PA -> last committed store value. */
    std::unordered_map<PhysAddr, std::uint32_t> golden;
    /** PAs currently hidden behind non-coherent mappings. */
    std::unordered_set<PhysAddr> opaque;

    std::vector<std::string> violations;
    std::uint64_t _storesSeen = 0;
    std::uint64_t _fillsChecked = 0;
    std::uint64_t _auditsRun = 0;
    std::size_t hookId = 0;
};

} // namespace stashsim

#endif // STASHSIM_VERIFY_PROTOCOL_CHECKER_HH
