#include "verify/protocol_checker.hh"

#include <iostream>
#include <sstream>

#include "core/stash.hh"
#include "mem/cache.hh"
#include "mem/llc.hh"
#include "mem/main_memory.hh"
#include "sim/log.hh"
#include "snapshot/snapshot.hh"

namespace stashsim
{

namespace
{

std::string
wordName(PhysAddr pa)
{
    std::ostringstream os;
    os << "pa=0x" << std::hex << pa << std::dec;
    return os.str();
}

} // namespace

ProtocolChecker::ProtocolChecker()
{
    hookId = registerDiagnosticHook([this]() {
        std::cerr << "--- protocol checker (" << golden.size()
                  << " tracked words, " << opaque.size() << " opaque, "
                  << _storesSeen << " stores, " << _fillsChecked
                  << " fills checked, " << _auditsRun << " audits) ---\n";
        for (const std::string &v : violations)
            std::cerr << "  violation: " << v << "\n";
        std::cerr.flush();
    });
}

ProtocolChecker::~ProtocolChecker()
{
    unregisterDiagnosticHook(hookId);
}

void
ProtocolChecker::addL1(CoreId core, const L1Cache *l1)
{
    units.push_back(PrivateUnit{core, l1, nullptr});
}

void
ProtocolChecker::addStash(CoreId core, const Stash *stash)
{
    units.push_back(PrivateUnit{core, nullptr, stash});
}

void
ProtocolChecker::addLlc(const LlcBank *llc)
{
    llcs.push_back(llc);
}

void
ProtocolChecker::violation(std::string what)
{
    violations.push_back(std::move(what));
}

void
ProtocolChecker::fail(const char *context)
{
    // fatal() flushes the diagnostic hooks (ours prints the full
    // violation list) before throwing; the exception text carries the
    // violations too, so callers and tests see the specifics even if
    // stderr is lost.
    std::ostringstream os;
    os << "protocol checker: " << violations.size()
       << " violation(s) at " << context << ":";
    for (const std::string &v : violations)
        os << "\n  " << v;
    fatal(os.str());
}

// ---------------------------------------------------------------------
// Transition hooks
// ---------------------------------------------------------------------

void
ProtocolChecker::onStore(PhysAddr pa, std::uint32_t value)
{
    std::lock_guard<std::recursive_mutex> g(mu);
    ++_storesSeen;
    golden[pa] = value;
    opaque.erase(pa);
}

void
ProtocolChecker::onOpaqueStore(PhysAddr pa)
{
    std::lock_guard<std::recursive_mutex> g(mu);
    golden.erase(pa);
    opaque.insert(pa);
}

void
ProtocolChecker::onFill(const char *unit, CoreId core, PhysAddr pa,
                        std::uint32_t value)
{
    std::lock_guard<std::recursive_mutex> g(mu);
    if (opaque.count(pa))
        return;
    auto it = golden.find(pa);
    if (it == golden.end()) {
        // First sighting of workload-init data: adopt it.
        golden.emplace(pa, value);
        return;
    }
    ++_fillsChecked;
    if (it->second != value) {
        std::ostringstream os;
        os << "demanded fill data mismatch at " << wordName(pa) << ": "
           << unit << " of core " << core << " received 0x" << std::hex
           << value << ", golden holds 0x" << it->second << std::dec;
        violation(os.str());
        fail("fill");
    }
}

void
ProtocolChecker::onSelfInvalidate(const char *unit, CoreId core,
                                  std::uint64_t addr, WordState prior)
{
    std::lock_guard<std::recursive_mutex> g(mu);
    if (prior != WordState::Registered)
        return;
    std::ostringstream os;
    os << "self-invalidation killed a Registered word: " << unit
       << " of core " << core << ", addr=0x" << std::hex << addr
       << std::dec;
    violation(os.str());
    fail("self-invalidate");
}

void
ProtocolChecker::onDirtyDataUnderflow(CoreId core, unsigned idx)
{
    std::lock_guard<std::recursive_mutex> g(mu);
    std::ostringstream os;
    os << "#DirtyData underflow: stash of core " << core
       << ", map entry " << idx
       << " drained a dirty chunk with its counter already at zero";
    violation(os.str());
    fail("writeback");
}

// ---------------------------------------------------------------------
// Drain-point audit
// ---------------------------------------------------------------------

void
ProtocolChecker::audit(const char *when)
{
    std::lock_guard<std::recursive_mutex> g(mu);
    ++_auditsRun;
    const std::size_t before = violations.size();

    // 1. Every private readable copy, by physical word.
    struct Holder
    {
        const char *unit;
        bool isStash;
        CoreId core;
        WordState st;
        std::uint32_t data;
    };
    std::unordered_map<PhysAddr, std::vector<Holder>> holders;
    for (const PrivateUnit &u : units) {
        if (u.l1) {
            u.l1->forEachWord([&](PhysAddr pa, WordState st,
                                  std::uint32_t d) {
                holders[pa].push_back(
                    Holder{"L1", false, u.core, st, d});
            });
        } else {
            u.stash->forEachMappedWord(
                [&](PhysAddr pa, WordState st, std::uint32_t d,
                    MapIndex) {
                    holders[pa].push_back(
                        Holder{"stash", true, u.core, st, d});
                });
        }
    }

    // 2. At most one Registered copy of a word system-wide, and every
    //    Registered copy holds golden data.
    for (const auto &[pa, hs] : holders) {
        const Holder *first_reg = nullptr;
        for (const Holder &h : hs) {
            if (h.st != WordState::Registered)
                continue;
            if (first_reg) {
                std::ostringstream os;
                os << "double registration of word " << wordName(pa)
                   << ": " << first_reg->unit << " of core "
                   << first_reg->core << " and " << h.unit
                   << " of core " << h.core
                   << " both hold it Registered";
                violation(os.str());
                continue;
            }
            first_reg = &h;
            auto g = golden.find(pa);
            if (g != golden.end() && !opaque.count(pa) &&
                g->second != h.data) {
                std::ostringstream os;
                os << "Registered copy of " << wordName(pa) << " at "
                   << h.unit << " of core " << h.core << " holds 0x"
                   << std::hex << h.data << ", golden holds 0x"
                   << g->second << std::dec;
                violation(os.str());
            }
        }
    }

    // 3. Directory sweep: a Registered directory word must point at
    //    an actual registrant; an LLC-Valid word is fresh by
    //    definition and must match golden.
    struct DirEntry
    {
        WordState st;
        CoreId owner;
        bool ownerIsStash;
    };
    std::unordered_map<PhysAddr, DirEntry> dir;
    for (const LlcBank *llc : llcs) {
        if (llc->pendingFillLines() > 0) {
            std::ostringstream os;
            os << "LLC bank still has " << llc->pendingFillLines()
               << " unresolved fill(s) after drain";
            violation(os.str());
        }
        llc->forEachDirectoryWord([&](PhysAddr pa, WordState st,
                                      std::uint32_t data, CoreId owner,
                                      bool owner_is_stash, unsigned) {
            dir[pa] = DirEntry{st, owner, owner_is_stash};
            if (st == WordState::Registered) {
                bool found = false;
                auto it = holders.find(pa);
                if (it != holders.end()) {
                    for (const Holder &h : it->second) {
                        if (h.st == WordState::Registered &&
                            h.core == owner &&
                            h.isStash == owner_is_stash) {
                            found = true;
                            break;
                        }
                    }
                }
                if (!found) {
                    std::ostringstream os;
                    os << "dangling directory registration of word "
                       << wordName(pa) << ": directory names "
                       << (owner_is_stash ? "stash" : "L1")
                       << " of core " << owner
                       << " but no such Registered copy exists";
                    violation(os.str());
                }
            } else if (st == WordState::Valid) {
                auto g = golden.find(pa);
                if (g != golden.end() && !opaque.count(pa) &&
                    g->second != data) {
                    std::ostringstream os;
                    os << "LLC-Valid word " << wordName(pa)
                       << " holds 0x" << std::hex << data
                       << ", golden holds 0x" << g->second << std::dec;
                    violation(os.str());
                }
            }
        });
    }

    // 4. Every privately Registered word is Registered at the
    //    directory for exactly that owner (the serialization truth).
    for (const auto &[pa, hs] : holders) {
        for (const Holder &h : hs) {
            if (h.st != WordState::Registered)
                continue;
            auto it = dir.find(pa);
            if (it == dir.end() ||
                it->second.st != WordState::Registered ||
                it->second.owner != h.core ||
                it->second.ownerIsStash != h.isStash) {
                std::ostringstream os;
                os << "orphan registration of word " << wordName(pa)
                   << ": " << h.unit << " of core " << h.core
                   << " holds it Registered but the directory ";
                if (it == dir.end()) {
                    os << "has no entry for it";
                } else if (it->second.st != WordState::Registered) {
                    os << "holds it " << wordStateName(it->second.st);
                } else {
                    os << "names "
                       << (it->second.ownerIsStash ? "stash" : "L1")
                       << " of core " << it->second.owner;
                }
                violation(os.str());
            }
        }
    }

    // 5. Per-stash bookkeeping (#DirtyData counts, orphan words).
    for (const PrivateUnit &u : units) {
        if (u.stash) {
            u.stash->auditAccounting(
                [this](const std::string &what) { violation(what); });
        }
    }

    if (violations.size() > before)
        fail(when);
}

void
ProtocolChecker::checkFinalMemory(const MainMemory &mem)
{
    std::lock_guard<std::recursive_mutex> g(mu);
    const std::size_t before = violations.size();
    for (const auto &[pa, value] : golden) {
        if (opaque.count(pa))
            continue;
        const std::uint32_t got = mem.readWord(pa);
        if (got != value) {
            std::ostringstream os;
            os << "final memory mismatch at " << wordName(pa)
               << ": memory holds 0x" << std::hex << got
               << ", golden holds 0x" << value << std::dec;
            violation(os.str());
        }
    }
    if (violations.size() > before)
        fail("final memory check");
}

void
ProtocolChecker::snapshot(SnapshotWriter &w) const
{
    std::lock_guard<std::recursive_mutex> g(mu);
    w.u64(_storesSeen);
    w.u64(_fillsChecked);
    w.u64(_auditsRun);
    std::vector<std::pair<PhysAddr, std::uint32_t>> words(golden.begin(),
                                                          golden.end());
    std::sort(words.begin(), words.end());
    w.u64(words.size());
    for (const auto &[pa, v] : words) {
        w.u64(pa);
        w.u32(v);
    }
    std::vector<PhysAddr> op(opaque.begin(), opaque.end());
    std::sort(op.begin(), op.end());
    w.u64(op.size());
    for (PhysAddr pa : op)
        w.u64(pa);
}

void
ProtocolChecker::restore(SnapshotReader &r)
{
    std::lock_guard<std::recursive_mutex> g(mu);
    _storesSeen = r.u64();
    _fillsChecked = r.u64();
    _auditsRun = r.u64();
    golden.clear();
    opaque.clear();
    const std::uint64_t nw = r.u64();
    for (std::uint64_t i = 0; i < nw; ++i) {
        const PhysAddr pa = r.u64();
        golden[pa] = r.u32();
    }
    const std::uint64_t no = r.u64();
    for (std::uint64_t i = 0; i < no; ++i)
        opaque.insert(r.u64());
}

} // namespace stashsim
