/**
 * @file
 * GPU compute unit (CU), analogous to an NVIDIA SM.
 *
 * In-order warp execution with round-robin scheduling and one issue
 * slot per 700 MHz cycle; memory latency is hidden by switching among
 * the resident warps (up to 8 thread blocks / 48 warps, Table 2).
 * The CU owns the access paths to its L1 cache (global ops), its
 * scratchpad or stash (local ops), and — in the ScratchGD
 * configuration — its DMA engine, and drives the kernel-boundary
 * coherence actions (stash/L1 self-invalidation).
 *
 * Thread-block residency is limited by the slot count, the warp
 * count, and the local-memory footprint: a kernel whose blocks claim
 * large scratchpad/stash allocations runs fewer blocks concurrently,
 * exactly the occupancy coupling real GPUs exhibit.
 */

#ifndef STASHSIM_GPU_COMPUTE_UNIT_HH
#define STASHSIM_GPU_COMPUTE_UNIT_HH

#include <functional>
#include <memory>
#include <vector>

#include "config/system_config.hh"
#include "core/stash.hh"
#include "gpu/kernel.hh"
#include "mem/cache.hh"
#include "mem/dma_engine.hh"
#include "mem/scratchpad.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace stashsim
{

class Watchdog;

class SnapshotWriter;
class SnapshotReader;

/**
 * One GPU compute unit.
 */
class ComputeUnit
{
  public:
    /**
     * @param l1    the CU's L1 cache (always present)
     * @param spad  scratchpad, or null in cache/stash configurations
     * @param stash stash, or null in scratchpad/cache configurations
     * @param dma   DMA engine, or null outside ScratchGD
     */
    ComputeUnit(EventQueue &eq, const SystemConfig &cfg, CoreId core,
                L1Cache *l1, Scratchpad *spad, Stash *stash,
                DmaEngine *dma);

    /** Launches @p kernel; @p done runs when every block finished. */
    void runKernel(Kernel kernel, std::function<void()> done);

    const GpuStats &stats() const { return _stats; }
    CoreId coreId() const { return core; }

    /** Reports instruction issue as forward progress to @p w. */
    void setWatchdog(Watchdog *w) { watchdog = w; }

    /**
     * Serializes stats + the local-space allocator (free list and
     * bump pointer persist across kernels).  Only valid between
     * kernels: no resident blocks or warps.
     */
    void snapshot(SnapshotWriter &w) const;

    /** Restores an inter-kernel checkpoint. */
    void restore(SnapshotReader &r);

  private:
    struct TbCtx;

    struct WarpCtx
    {
        TbCtx *tb = nullptr;
        const std::vector<WarpOp> *ops = nullptr;
        std::size_t pc = 0;
        std::array<std::uint32_t, 32> acc{};
        /** Issue sequence of the op that last wrote each lane's
         *  accumulator: responses of batched loads apply in issue
         *  order, not arrival order. */
        std::array<std::uint64_t, 32> accSeq{};
        std::uint64_t memSeq = 0;
        bool blocked = false;
        bool atBarrier = false;
        bool finished = false;
        unsigned pendingMem = 0;
    };

    struct TbCtx
    {
        const ThreadBlock *tb = nullptr;
        LocalAddr localBase = 0;
        std::array<MapIndex, 8> mapIdx{};
        unsigned liveWarps = 0;
        unsigned barrierCount = 0;
        bool running = false; //!< AddMaps done, DMA loads complete
        bool draining = false; //!< waiting on DMA stores
    };

    bool warpReady(const WarpCtx &w) const;
    void scheduleTick();
    void tick();
    void execute(WarpCtx &warp);
    void executeMem(WarpCtx &warp, const WarpOp &op);
    void execMemGlobal(WarpCtx &warp, const WarpOp &op);
    void execMemLocal(WarpCtx &warp, const WarpOp &op);
    void execMemStash(WarpCtx &warp, const WarpOp &op);
    void unblock(WarpCtx &warp);
    void onWarpFinished(WarpCtx &warp);
    void tryLaunchBlocks();
    void launchBlock(const ThreadBlock &tb);
    void finishBlock(TbCtx &tb);
    void checkKernelDone();
    bool allocLocal(std::uint32_t bytes, LocalAddr *base);
    void freeLocal(LocalAddr base, std::uint32_t bytes);

    EventQueue &eq;
    const SystemConfig &cfg;
    CoreId core;
    L1Cache *l1;
    Scratchpad *spad;
    Stash *stash;
    DmaEngine *dma;

    Kernel kernel;
    std::function<void()> kernelDone;
    std::size_t nextBlock = 0;
    std::vector<std::unique_ptr<TbCtx>> blocks;
    std::vector<std::unique_ptr<WarpCtx>> warps;
    std::size_t rrIndex = 0;
    bool tickScheduled = false;
    bool kernelActive = false;
    Tick kernelStart = 0;
    Counter instrAtKernelStart = 0;

    /** Free intervals of the local (scratchpad/stash) space. */
    std::vector<std::pair<LocalAddr, std::uint32_t>> freeLocalSpace;
    /** Next-fit rotating allocation pointer. */
    LocalAddr allocPtr = 0;

    GpuStats _stats;
    Watchdog *watchdog = nullptr;
};

} // namespace stashsim

#endif // STASHSIM_GPU_COMPUTE_UNIT_HH
