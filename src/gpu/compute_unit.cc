#include "gpu/compute_unit.hh"

#include <algorithm>
#include <map>

#include "sim/log.hh"
#include "snapshot/snapshot.hh"
#include "verify/watchdog.hh"

namespace stashsim
{

ComputeUnit::ComputeUnit(EventQueue &eq, const SystemConfig &cfg,
                         CoreId core, L1Cache *l1, Scratchpad *spad,
                         Stash *stash, DmaEngine *dma)
    : eq(eq), cfg(cfg), core(core), l1(l1), spad(spad), stash(stash),
      dma(dma)
{
    sim_assert(l1 != nullptr);
    freeLocalSpace.emplace_back(0, cfg.localBytes);
}

// ---------------------------------------------------------------------
// Local-memory allocation
// ---------------------------------------------------------------------

bool
ComputeUnit::allocLocal(std::uint32_t bytes, LocalAddr *base)
{
    if (bytes == 0) {
        *base = 0;
        return true;
    }
    // Next-fit with wraparound: allocate at or after the rotating
    // pointer.  This mirrors the runtime allocation behaviour the
    // stash's cross-kernel reuse relies on — successive kernels with
    // identical grids see their blocks land at the same stash
    // addresses once the pointer wraps a full cycle.
    auto try_from = [&](LocalAddr from) -> bool {
        for (auto &[b, sz] : freeLocalSpace) {
            LocalAddr start = b;
            std::uint32_t avail = sz;
            if (start < from) {
                if (start + avail <= from)
                    continue;
                avail -= (from - start);
                start = from;
            }
            if (avail >= bytes) {
                *base = start;
                // Split the interval around [start, start + bytes).
                const LocalAddr old_b = b;
                const std::uint32_t old_sz = sz;
                b = old_b;
                sz = start - old_b;
                if (old_b + old_sz > start + bytes) {
                    freeLocalSpace.emplace_back(
                        LocalAddr(start + bytes),
                        old_b + old_sz - (start + bytes));
                }
                std::sort(freeLocalSpace.begin(),
                          freeLocalSpace.end());
                std::erase_if(freeLocalSpace, [](const auto &iv) {
                    return iv.second == 0;
                });
                return true;
            }
        }
        return false;
    };

    if (try_from(allocPtr) || try_from(0)) {
        allocPtr = LocalAddr(*base + bytes);
        if (allocPtr >= cfg.localBytes)
            allocPtr = 0;
        return true;
    }
    return false;
}

void
ComputeUnit::freeLocal(LocalAddr base, std::uint32_t bytes)
{
    if (bytes == 0)
        return;
    freeLocalSpace.emplace_back(base, bytes);
    // Coalesce adjacent intervals.
    std::sort(freeLocalSpace.begin(), freeLocalSpace.end());
    std::vector<std::pair<LocalAddr, std::uint32_t>> merged;
    for (const auto &[b, sz] : freeLocalSpace) {
        if (sz == 0)
            continue;
        if (!merged.empty() &&
            merged.back().first + merged.back().second == b) {
            merged.back().second += sz;
        } else {
            merged.emplace_back(b, sz);
        }
    }
    freeLocalSpace = std::move(merged);
}

// ---------------------------------------------------------------------
// Kernel lifecycle
// ---------------------------------------------------------------------

void
ComputeUnit::runKernel(Kernel k, std::function<void()> done)
{
    sim_assert(!kernelActive);
    kernel = std::move(k);
    kernelDone = std::move(done);
    nextBlock = 0;
    kernelActive = true;
    kernelStart = eq.curTick();
    instrAtKernelStart = _stats.instructions;
    ++_stats.kernels;
    if (kernel.blocks.empty()) {
        // Degenerate launch; still a kernel boundary.
        eq.scheduleIn(0, [this]() {
            kernelActive = false;
            if (stash)
                stash->endKernel();
            l1->selfInvalidate();
            kernelDone();
        });
        return;
    }
    tryLaunchBlocks();
}

void
ComputeUnit::tryLaunchBlocks()
{
    while (nextBlock < kernel.blocks.size()) {
        if (blocks.size() >= cfg.maxResidentTbsPerCu)
            return;
        const ThreadBlock &tb = kernel.blocks[nextBlock];
        unsigned live_warps = 0;
        for (const auto &b : blocks)
            live_warps += unsigned(b->tb->warps.size());
        if (live_warps + tb.warps.size() > cfg.maxWarpsPerCu &&
            !blocks.empty()) {
            return;
        }
        LocalAddr base;
        if (!allocLocal(tb.localBytes, &base)) {
            if (blocks.empty()) {
                fatal("thread block local allocation (", tb.localBytes,
                      " B) exceeds local memory (", cfg.localBytes,
                      " B)");
            }
            return;
        }
        ++nextBlock;

        auto ctx = std::make_unique<TbCtx>();
        ctx->tb = &tb;
        ctx->localBase = base;
        ctx->liveWarps = unsigned(tb.warps.size());
        TbCtx *tbc = ctx.get();
        blocks.push_back(std::move(ctx));

        // AddMaps execute at block start (one instruction each).
        Cycles launch_delay = 0;
        if (!tb.addMaps.empty()) {
            sim_assert(stash != nullptr);
            sim_assert(tb.addMaps.size() <= tbc->mapIdx.size());
            for (std::size_t i = 0; i < tb.addMaps.size(); ++i) {
                const AddMapOp &am = tb.addMaps[i];
                auto r = stash->addMap(
                    LocalAddr(tbc->localBase + am.stashOffset), am.tile);
                tbc->mapIdx[i] = r.idx;
                launch_delay += r.cost;
                ++_stats.instructions;
            }
        }

        // Create the warps now; they become schedulable when the
        // block starts running.
        for (const auto &ops : tb.warps) {
            auto w = std::make_unique<WarpCtx>();
            w->tb = tbc;
            w->ops = &ops;
            warps.push_back(std::move(w));
        }

        auto start_running = [this, tbc]() {
            tbc->running = true;
            scheduleTick();
        };

        if (!tb.dmaLoads.empty()) {
            sim_assert(dma != nullptr);
            auto remaining =
                std::make_shared<unsigned>(unsigned(tb.dmaLoads.size()));
            for (const DmaOp &d : tb.dmaLoads) {
                ++_stats.instructions;
                dma->load(d.tile,
                          LocalAddr(tbc->localBase + d.localOffset),
                          [remaining, start_running]() {
                              if (--*remaining == 0)
                                  start_running();
                          });
            }
        } else if (launch_delay > 0) {
            eq.scheduleIn(launch_delay * gpuClockPeriod, start_running);
        } else {
            start_running();
        }
    }
}

void
ComputeUnit::finishBlock(TbCtx &tb)
{
    auto complete = [this, &tb]() {
        if (stash) {
            stash->endThreadBlock(tb.localBase, tb.tb->localBytes);
            for (std::size_t i = 0; i < tb.tb->addMaps.size(); ++i)
                stash->releaseMap(tb.mapIdx[i]);
        }
        freeLocal(tb.localBase, tb.tb->localBytes);
        ++_stats.threadBlocks;

        // Drop the block's warps and the block itself.
        std::erase_if(warps, [&tb](const std::unique_ptr<WarpCtx> &w) {
            return w->tb == &tb;
        });
        rrIndex = 0;
        const TbCtx *dead = &tb;
        std::erase_if(blocks,
                      [dead](const std::unique_ptr<TbCtx> &b) {
                          return b.get() == dead;
                      });

        tryLaunchBlocks();
        checkKernelDone();
    };

    if (!tb.tb->dmaStores.empty()) {
        sim_assert(dma != nullptr);
        tb.draining = true;
        auto remaining = std::make_shared<unsigned>(
            unsigned(tb.tb->dmaStores.size()));
        for (const DmaOp &d : tb.tb->dmaStores) {
            ++_stats.instructions;
            dma->store(d.tile, LocalAddr(tb.localBase + d.localOffset),
                       [remaining, complete]() {
                           if (--*remaining == 0)
                               complete();
                       });
        }
    } else {
        complete();
    }
}

void
ComputeUnit::checkKernelDone()
{
    if (!kernelActive || !blocks.empty() ||
        nextBlock < kernel.blocks.size()) {
        return;
    }
    kernelActive = false;

    // Kernel boundary: the stash self-invalidates Valid words (keeps
    // Registered), and the L1 self-invalidates per DeNovo.
    if (stash)
        stash->endKernel();
    l1->selfInvalidate();

    const Cycles cycles =
        (eq.curTick() - kernelStart) / gpuClockPeriod;
    const Counter issued = _stats.instructions - instrAtKernelStart;
    _stats.idleCycles += cycles > issued ? cycles - issued : 0;

    kernelDone();
}

// ---------------------------------------------------------------------
// Warp scheduling
// ---------------------------------------------------------------------

bool
ComputeUnit::warpReady(const WarpCtx &w) const
{
    return !w.finished && !w.blocked && !w.atBarrier &&
           w.tb->running && w.pc < w.ops->size();
}

void
ComputeUnit::scheduleTick()
{
    if (tickScheduled)
        return;
    bool any_ready = false;
    for (const auto &w : warps) {
        if (warpReady(*w)) {
            any_ready = true;
            break;
        }
    }
    if (!any_ready)
        return;
    tickScheduled = true;
    const Tick next = ((eq.curTick() / gpuClockPeriod) + 1) *
                      gpuClockPeriod;
    eq.schedule(next, [this]() { tick(); });
}

void
ComputeUnit::tick()
{
    tickScheduled = false;
    if (warps.empty())
        return;
    // Round-robin issue: one op per cycle.
    const std::size_t n = warps.size();
    for (std::size_t i = 0; i < n; ++i) {
        WarpCtx &w = *warps[(rrIndex + i) % n];
        if (warpReady(w)) {
            rrIndex = (rrIndex + i + 1) % n;
            execute(w);
            break;
        }
    }
    scheduleTick();
}

void
ComputeUnit::unblock(WarpCtx &warp)
{
    warp.blocked = false;
    if (warp.pc >= warp.ops->size())
        onWarpFinished(warp);
    else
        scheduleTick();
}

void
ComputeUnit::onWarpFinished(WarpCtx &warp)
{
    if (warp.finished)
        return;
    warp.finished = true;
    TbCtx *tb = warp.tb;
    sim_assert(tb->liveWarps > 0);
    if (--tb->liveWarps == 0)
        finishBlock(*tb);
}

namespace
{

bool
isLoadOp(OpKind k)
{
    return k == OpKind::GlobalLd || k == OpKind::LocalLd ||
           k == OpKind::StashLd;
}

} // namespace

void
ComputeUnit::execute(WarpCtx &warp)
{
    const WarpOp &op = (*warp.ops)[warp.pc++];
    ++_stats.instructions;
    if (watchdog)
        watchdog->progress();

    // Scoreboard approximation: a run of consecutive loads issues
    // together before the warp blocks (real warps stall on the first
    // *use*, not on load issue), up to a small issue window.
    if (isLoadOp(op.kind)) {
        std::size_t batched = 1;
        executeMem(warp, op);
        while (batched < 4 && warp.pc < warp.ops->size() &&
               isLoadOp((*warp.ops)[warp.pc].kind)) {
            const WarpOp &next = (*warp.ops)[warp.pc++];
            ++_stats.instructions;
            ++batched;
            executeMem(warp, next);
        }
        return;
    }

    switch (op.kind) {
      case OpKind::Compute: {
        ++_stats.computeOps;
        for (auto &a : warp.acc)
            a = std::uint32_t(std::int64_t(a) + op.accDelta);
        warp.blocked = true;
        eq.scheduleIn(Tick(op.cycles) * gpuClockPeriod,
                      [this, &warp]() { unblock(warp); });
        return;
      }
      case OpKind::Barrier: {
        ++_stats.barriers;
        warp.atBarrier = true;
        TbCtx *tb = warp.tb;
        if (++tb->barrierCount >= tb->liveWarps) {
            tb->barrierCount = 0;
            for (auto &w : warps) {
                if (w->tb == tb)
                    w->atBarrier = false;
            }
        }
        // Finished at the last op being a barrier would deadlock;
        // workloads never end a warp on a barrier.
        if (warp.pc >= warp.ops->size())
            onWarpFinished(warp);
        else
            scheduleTick();
        return;
      }
      case OpKind::GlobalSt:
      case OpKind::LocalSt:
      case OpKind::StashSt:
        executeMem(warp, op);
        return;
      case OpKind::Remap: {
        // ChgMap: retarget the slot's mapping (one warp executes it;
        // the program brackets it with barriers).
        sim_assert(stash != nullptr);
        TbCtx *tb = warp.tb;
        const Cycles cost = stash->chgMap(
            tb->mapIdx[op.mapSlot],
            LocalAddr(tb->localBase + op.localOffset), op.tile);
        warp.blocked = true;
        eq.scheduleIn(cost * gpuClockPeriod,
                      [this, &warp]() { unblock(warp); });
        return;
      }
      case OpKind::DmaXfer: {
        sim_assert(dma != nullptr);
        warp.blocked = true;
        const LocalAddr local =
            LocalAddr(warp.tb->localBase + op.localOffset);
        auto done = [this, &warp]() { unblock(warp); };
        if (op.dmaStore)
            dma->store(op.tile, local, std::move(done));
        else
            dma->load(op.tile, local, std::move(done));
        return;
      }
      default:
        panic("unknown op kind");
    }
}

void
ComputeUnit::executeMem(WarpCtx &warp, const WarpOp &op)
{
    switch (op.kind) {
      case OpKind::GlobalLd:
      case OpKind::GlobalSt:
        execMemGlobal(warp, op);
        return;
      case OpKind::LocalLd:
      case OpKind::LocalSt:
        execMemLocal(warp, op);
        return;
      case OpKind::StashLd:
      case OpKind::StashSt:
        execMemStash(warp, op);
        return;
      default:
        panic("not a memory op");
    }
}

// ---------------------------------------------------------------------
// Memory paths
// ---------------------------------------------------------------------

void
ComputeUnit::execMemGlobal(WarpCtx &warp, const WarpOp &op)
{
    const bool is_store = op.kind == OpKind::GlobalSt;
    if (is_store)
        ++_stats.globalStores;
    else
        ++_stats.globalLoads;

    // Coalesce the lanes by cache line.
    struct Group
    {
        WordMask mask = 0;
        LineData store;
        std::vector<std::pair<unsigned, unsigned>> lanes; // lane, word
    };
    std::map<Addr, Group> groups;
    for (unsigned lane = 0; lane < op.addrs.size(); ++lane) {
        const Addr a = op.addrs[lane];
        Group &g = groups[lineBase(a)];
        const unsigned w = lineWord(a);
        g.mask |= wordBit(w);
        if (is_store) {
            g.store.w[w] = op.storeAcc ? warp.acc[lane] : op.value;
        } else {
            g.lanes.emplace_back(lane, w);
        }
    }

    warp.blocked = true;
    warp.pendingMem += unsigned(groups.size());
    const std::uint64_t seq = ++warp.memSeq;
    for (auto &[line_va, g] : groups) {
        l1->access(line_va, g.mask, is_store,
                   is_store ? &g.store : nullptr,
                   [this, &warp, lanes = std::move(g.lanes), is_store,
                    seq](const LineData &d) {
                       if (!is_store) {
                           for (const auto &[lane, w] : lanes) {
                               if (seq >= warp.accSeq[lane]) {
                                   warp.acc[lane] = d.w[w];
                                   warp.accSeq[lane] = seq;
                               }
                           }
                       }
                       if (--warp.pendingMem == 0)
                           unblock(warp);
                   });
    }
}

void
ComputeUnit::execMemLocal(WarpCtx &warp, const WarpOp &op)
{
    const bool is_store = op.kind == OpKind::LocalSt;
    if (is_store)
        ++_stats.localStores;
    else
        ++_stats.localLoads;

    if (spad) {
        const LocalAddr base = warp.tb->localBase;
        const std::uint64_t seq = ++warp.memSeq;
        for (unsigned lane = 0; lane < op.addrs.size(); ++lane) {
            const LocalAddr a = LocalAddr(base + op.addrs[lane]);
            if (is_store) {
                spad->write(a,
                            op.storeAcc ? warp.acc[lane] : op.value);
            } else {
                warp.acc[lane] = spad->read(a);
                warp.accSeq[lane] = seq;
            }
        }
        warp.blocked = true;
        warp.pendingMem += 1;
        eq.scheduleIn(cfg.localHitCycles * gpuClockPeriod,
                      [this, &warp]() {
                          if (--warp.pendingMem == 0)
                              unblock(warp);
                      });
        return;
    }

    // No scratchpad present (stash configurations running
    // scratchpad-style code): the stash serves it in temporary /
    // global-unmapped mode.
    sim_assert(stash != nullptr);
    WarpOp stash_op = op;
    stash_op.kind = is_store ? OpKind::StashSt : OpKind::StashLd;
    stash_op.mapSlot = 0xff;
    execMemStash(warp, stash_op);
}

void
ComputeUnit::execMemStash(WarpCtx &warp, const WarpOp &op)
{
    sim_assert(stash != nullptr);
    const bool is_store = op.kind == OpKind::StashSt;
    if (is_store)
        ++_stats.localStores;
    else
        ++_stats.localLoads;

    const MapIndex map_idx = op.mapSlot == 0xff
                                 ? unmappedIndex
                                 : warp.tb->mapIdx[op.mapSlot];
    const LocalAddr base = warp.tb->localBase;

    struct Group
    {
        WordMask mask = 0;
        LineData store;
        std::vector<std::pair<unsigned, unsigned>> lanes;
    };
    std::map<LocalAddr, Group> groups;
    for (unsigned lane = 0; lane < op.addrs.size(); ++lane) {
        const LocalAddr a = LocalAddr(base + op.addrs[lane]);
        const LocalAddr line = a & ~LocalAddr(lineBytes - 1);
        Group &g = groups[line];
        const unsigned w = (a / wordBytes) % wordsPerLine;
        g.mask |= wordBit(w);
        if (is_store) {
            g.store.w[w] = op.storeAcc ? warp.acc[lane] : op.value;
        } else {
            g.lanes.emplace_back(lane, w);
        }
    }

    warp.blocked = true;
    warp.pendingMem += unsigned(groups.size());
    const std::uint64_t seq = ++warp.memSeq;
    for (auto &[line, g] : groups) {
        stash->access(line, g.mask, is_store,
                      is_store ? &g.store : nullptr, map_idx,
                      [this, &warp, lanes = std::move(g.lanes),
                       is_store, seq](const LineData &d) {
                          if (!is_store) {
                              for (const auto &[lane, w] : lanes) {
                                  if (seq >= warp.accSeq[lane]) {
                                      warp.acc[lane] = d.w[w];
                                      warp.accSeq[lane] = seq;
                                  }
                              }
                          }
                          if (--warp.pendingMem == 0)
                              unblock(warp);
                      });
    }
}

void
ComputeUnit::snapshot(SnapshotWriter &w) const
{
    // Checkpoints happen only between kernels.
    sim_assert(!kernelActive);
    sim_assert(blocks.empty());
    sim_assert(warps.empty());
    writeStats(w, _stats);
    w.u32(allocPtr);
    w.u32(std::uint32_t(freeLocalSpace.size()));
    for (const auto &[base, bytes] : freeLocalSpace) {
        w.u32(base);
        w.u32(bytes);
    }
}

void
ComputeUnit::restore(SnapshotReader &r)
{
    sim_assert(!kernelActive);
    sim_assert(blocks.empty());
    sim_assert(warps.empty());
    readStats(r, _stats);
    allocPtr = r.u32();
    freeLocalSpace.clear();
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
        const LocalAddr base = r.u32();
        const std::uint32_t bytes = r.u32();
        freeLocalSpace.emplace_back(base, bytes);
    }
}

} // namespace stashsim
