#include "gpu/kernel.hh"

namespace stashsim
{

const char *
opKindName(OpKind k)
{
    switch (k) {
      case OpKind::Compute:
        return "Compute";
      case OpKind::GlobalLd:
        return "GlobalLd";
      case OpKind::GlobalSt:
        return "GlobalSt";
      case OpKind::LocalLd:
        return "LocalLd";
      case OpKind::LocalSt:
        return "LocalSt";
      case OpKind::StashLd:
        return "StashLd";
      case OpKind::StashSt:
        return "StashSt";
      case OpKind::Barrier:
        return "Barrier";
      case OpKind::Remap:
        return "Remap";
      case OpKind::DmaXfer:
        return "DmaXfer";
      default:
        return "?";
    }
}

WarpOp
computeOp(std::uint16_t cycles, std::int32_t acc_delta)
{
    WarpOp op;
    op.kind = OpKind::Compute;
    op.cycles = cycles;
    op.accDelta = acc_delta;
    return op;
}

WarpOp
memOp(OpKind kind, std::vector<Addr> addrs, std::uint8_t map_slot)
{
    WarpOp op;
    op.kind = kind;
    op.addrs = std::move(addrs);
    op.mapSlot = map_slot;
    return op;
}

WarpOp
storeValueOp(OpKind kind, std::vector<Addr> addrs, std::uint32_t value,
             std::uint8_t map_slot)
{
    WarpOp op = memOp(kind, std::move(addrs), map_slot);
    op.storeAcc = false;
    op.value = value;
    return op;
}

WarpOp
storeAccOp(OpKind kind, std::vector<Addr> addrs, std::uint8_t map_slot)
{
    WarpOp op = memOp(kind, std::move(addrs), map_slot);
    op.storeAcc = true;
    return op;
}

WarpOp
barrierOp()
{
    WarpOp op;
    op.kind = OpKind::Barrier;
    return op;
}

std::uint64_t
ThreadBlock::dynamicInstructions() const
{
    std::uint64_t n = addMaps.size() + dmaLoads.size() +
                      dmaStores.size();
    for (const auto &w : warps)
        n += w.size();
    return n;
}

std::uint64_t
Kernel::dynamicInstructions() const
{
    std::uint64_t n = 0;
    for (const auto &b : blocks)
        n += b.dynamicInstructions();
    return n;
}

} // namespace stashsim
