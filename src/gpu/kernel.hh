/**
 * @file
 * The kernel/warp-operation model the GPU CU executes.
 *
 * Workloads (src/workloads) compile each benchmark into streams of
 * warp operations — the same abstraction level GPGPU-Sim's timing
 * model consumes after functional execution.  A warp op is one
 * dynamic warp instruction: a block of compute cycles, a coalesced
 * memory access with up to 32 per-lane addresses, or a barrier.
 *
 * Functional dataflow is carried by one accumulator register per
 * lane: loads set it, Compute ops transform it (acc += accDelta),
 * stores can write it back.  That is enough to verify real end-to-end
 * data movement (e.g., the CPU observing `f(x)` for every element the
 * GPU updated through the stash) without a full ISA interpreter,
 * while instruction counts, addresses, and access types — the things
 * the paper's results are made of — are exact.
 */

#ifndef STASHSIM_GPU_KERNEL_HH
#define STASHSIM_GPU_KERNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/stash_map.hh"
#include "mem/tile.hh"
#include "sim/types.hh"

namespace stashsim
{

/** Kinds of warp instructions. */
enum class OpKind : std::uint8_t
{
    Compute,  //!< ALU work: occupies the warp for `cycles`
    GlobalLd, //!< coalesced load from the global AS (via L1)
    GlobalSt, //!< coalesced store to the global AS (via L1)
    LocalLd,  //!< scratchpad load (direct, 1 cycle)
    LocalSt,  //!< scratchpad store
    StashLd,  //!< stash load (direct; may miss and fetch implicitly)
    StashSt,  //!< stash store (registers words lazily)
    Barrier,  //!< thread-block barrier
    Remap,    //!< ChgMap: point a map slot at a new tile (stash)
    DmaXfer,  //!< mid-kernel DMA transfer (ScratchGD re-staging)
};

/** Printable op-kind name. */
const char *opKindName(OpKind k);

/**
 * One dynamic warp instruction.
 */
struct WarpOp
{
    OpKind kind = OpKind::Compute;
    /** Compute: busy cycles. */
    std::uint16_t cycles = 1;
    /** Compute: per-lane accumulator delta (models compute(x)). */
    std::int32_t accDelta = 0;
    /** Stash ops: map-index-table slot (0..3) of the thread block. */
    std::uint8_t mapSlot = 0;
    /** Stores: write the lane accumulator instead of `value`. */
    bool storeAcc = false;
    /** Stores: immediate value when !storeAcc. */
    std::uint32_t value = 0;
    /**
     * Memory ops: per-lane addresses.  Global ops use virtual
     * addresses; Local/Stash ops use byte offsets within the thread
     * block's local allocation.  Size <= warp size; lane i uses
     * addrs[i].
     */
    std::vector<Addr> addrs;
    /** Remap/DmaXfer: the new tile and its local byte offset. */
    TileSpec tile;
    LocalAddr localOffset = 0;
    /** DmaXfer: scatter (store) instead of gather (load). */
    bool dmaStore = false;
};

/** Factory helpers for concise workload code. @{ */
WarpOp computeOp(std::uint16_t cycles, std::int32_t acc_delta = 0);
WarpOp memOp(OpKind kind, std::vector<Addr> addrs,
             std::uint8_t map_slot = 0);
WarpOp storeValueOp(OpKind kind, std::vector<Addr> addrs,
                    std::uint32_t value, std::uint8_t map_slot = 0);
WarpOp storeAccOp(OpKind kind, std::vector<Addr> addrs,
                  std::uint8_t map_slot = 0);
WarpOp barrierOp();
/** @} */

/**
 * An AddMap executed at thread-block start (stash configurations).
 * `stashOffset` is relative to the block's local allocation.
 */
struct AddMapOp
{
    LocalAddr stashOffset = 0;
    TileSpec tile;
};

/** A DMA transfer descriptor (ScratchGD configuration). */
struct DmaOp
{
    LocalAddr localOffset = 0;
    TileSpec tile;
};

/**
 * One thread block: its local-memory footprint, its mappings/DMA
 * descriptors, and one op stream per warp.
 */
struct ThreadBlock
{
    std::uint32_t localBytes = 0;
    std::vector<AddMapOp> addMaps;
    std::vector<DmaOp> dmaLoads;
    std::vector<DmaOp> dmaStores;
    std::vector<std::vector<WarpOp>> warps;

    /** Total dynamic warp instructions in this block (for tests). */
    std::uint64_t dynamicInstructions() const;
};

/**
 * One kernel launch: a grid of thread blocks.
 */
struct Kernel
{
    std::string name;
    std::vector<ThreadBlock> blocks;

    std::uint64_t dynamicInstructions() const;
};

} // namespace stashsim

#endif // STASHSIM_GPU_KERNEL_HH
