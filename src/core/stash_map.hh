/**
 * @file
 * The stash-map: a circular buffer of stash-to-global mappings.
 *
 * Paper Section 4.1.3: each entry holds the translation parameters of
 * one AddMap/ChgMap call (we keep the TileSpec; a real implementation
 * precomputes the handful of constants so a miss costs six ALU ops —
 * our timing charges the Table 2 translation latency, and the math
 * lives in TileSpec), a Valid bit, and the #DirtyData counter that
 * drives lazy writebacks.  Entries are allocated and replaced in FIFO
 * order via the tail pointer; 64 entries suffice for 8 concurrent
 * thread blocks x 4 maps each, with headroom for lazy writebacks of
 * already-replaced mappings.
 *
 * The entry also carries the Section 4.5 data-replication state: the
 * reuseBit and a pointer to the older matching entry.
 */

#ifndef STASHSIM_CORE_STASH_MAP_HH
#define STASHSIM_CORE_STASH_MAP_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/tile.hh"
#include "sim/types.hh"

namespace stashsim
{

class SnapshotWriter;
class SnapshotReader;

/** Index into the stash-map. */
using MapIndex = std::uint8_t;

/** Sentinel map index: the access has no global mapping (temporary /
 *  global-unmapped usage modes). */
constexpr MapIndex unmappedIndex = 0xff;

/**
 * One stash-map entry.
 */
struct StashMapEntry
{
    bool valid = false;
    /** The mapping's thread block is still resident (live). */
    bool pinned = false;
    LocalAddr stashBase = 0;
    TileSpec tile;
    /** Dirty chunks not yet written back (#DirtyData). */
    std::uint32_t dirtyData = 0;
    /** Section 4.5: an older entry maps the same tile. */
    bool reuseBit = false;
    MapIndex reuseIdx = 0;
};

/**
 * The circular stash-map buffer.
 */
class StashMap
{
  public:
    explicit StashMap(unsigned entries) : entries(entries) {}

    unsigned capacity() const { return unsigned(entries.size()); }

    /**
     * Advances the tail and returns the index of the entry to use.
     * Entries whose thread block is still resident (pinned) are
     * skipped: replacing a live mapping would orphan its directory
     * registrations.  The caller is responsible for writing back any
     * dirty data of a still-valid entry before overwriting it
     * (Section 4.2, AddMap).
     */
    MapIndex advanceTail();

    StashMapEntry &entry(MapIndex i) { return entries.at(i); }
    const StashMapEntry &entry(MapIndex i) const { return entries.at(i); }

    /** The index the next AddMap will claim (for tests). */
    MapIndex tailIndex() const { return tail; }

    /**
     * Replication search (Section 4.5): finds a valid entry mapping
     * exactly @p tile.  O(entries), but AddMap is infrequent.
     */
    std::optional<MapIndex>
    findMatch(const TileSpec &tile) const
    {
        // Scan newest-first (reverse allocation order from the tail)
        // so a replica binds to the freshest copy of the data.
        const unsigned n = unsigned(entries.size());
        for (unsigned back = 1; back <= n; ++back) {
            const MapIndex i = MapIndex((tail + n - back) % n);
            if (entries[i].valid && entries[i].tile == tile)
                return i;
        }
        return std::nullopt;
    }

    /** Serializes entries + tail (implemented in core/stash.cc). */
    void snapshot(SnapshotWriter &w) const;

    /** Restores entries + tail from a checkpoint. */
    void restore(SnapshotReader &r);

    /** Count of valid entries (for tests/telemetry). */
    unsigned
    numValid() const
    {
        unsigned n = 0;
        for (const auto &e : entries)
            n += e.valid ? 1 : 0;
        return n;
    }

  private:
    std::vector<StashMapEntry> entries;
    MapIndex tail = 0;
};

inline MapIndex
StashMap::advanceTail()
{
    for (unsigned tries = 0; tries < entries.size(); ++tries) {
        const MapIndex idx = tail;
        tail = MapIndex((tail + 1) % entries.size());
        if (!entries[idx].pinned)
            return idx;
    }
    fatal("stash-map: every entry is pinned by a resident thread "
          "block; increase stashMapEntries or reduce maps per block");
}

} // namespace stashsim

#endif // STASHSIM_CORE_STASH_MAP_HH
