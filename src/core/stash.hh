/**
 * @file
 * The stash: a globally-visible, directly-addressed local memory.
 *
 * This is the paper's contribution (Sections 2-4).  The stash is
 * accessed like a scratchpad — by direct local address, no tag or TLB
 * lookup on hits — but each mapped region also carries a software-
 * declared stash-to-global translation (AddMap/ChgMap), letting the
 * hardware move data implicitly:
 *
 *  - the first load of a mapped word misses, translates (Table 2:
 *    10 cycles), and fetches exactly that word from the LLC
 *    (compact, on-demand transfer);
 *  - stores complete locally and register their words with the LLC
 *    directory, making the stash copy the globally-visible one;
 *  - dirty data is written back lazily, only when a later allocation
 *    actually needs the space (or the circular stash-map wraps);
 *  - remote requests are steered to the stash by the directory's
 *    (core, stash-map index) record and resolved through the VP-map
 *    RTLB plus the map entry's reverse translation;
 *  - at kernel boundaries the stash self-invalidates Valid words but
 *    keeps Registered ones, enabling cross-kernel reuse;
 *  - AddMap detects replicated mappings (Section 4.5) and serves
 *    their loads from the older copy instead of missing.
 *
 * Usage modes (Section 3.3) are all supported: Mapped Coherent,
 * Mapped Non-coherent (tile.isCoherent = false), and the scratchpad-
 * compatible Temporary/Global-unmapped modes (accesses carrying
 * `unmappedIndex`).
 */

#ifndef STASHSIM_CORE_STASH_HH
#define STASHSIM_CORE_STASH_HH

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/stash_map.hh"
#include "core/vp_map.hh"
#include "mem/coherence/denovo.hh"
#include "mem/fabric.hh"
#include "mem/page_table.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace stashsim
{

class ProtocolChecker;

/**
 * One per-CU stash.
 */
class Stash : public MemObject
{
  public:
    struct Params
    {
        unsigned bytes = 16 * 1024;
        unsigned chunkBytes = 64;
        unsigned mapEntries = 64;
        unsigned vpEntries = 64;
        Cycles translationCycles = 10;
        Cycles hitCycles = 1;
        Tick clockPeriod = gpuClockPeriod;
        bool replicationOpt = true;
        /** Outstanding miss lines (MSHR-equivalent), as for the L1. */
        unsigned mshrs = 64;
    };

    /** Completion callback; delivers the accessed stash line image. */
    using AccessDone = std::function<void(const LineData &)>;

    Stash(EventQueue &eq, Fabric &fabric, PageTable &pt, CoreId owner,
          NodeId node, const Params &p);

    /** Result of an AddMap: the map index plus any stall cycles. */
    struct AddMapResult
    {
        MapIndex idx;
        Cycles cost;
    };

    /**
     * The AddMap intrinsic (Section 3.1): maps stash bytes
     * [stash_base, stash_base + tile.mappedBytes()) onto @p tile.
     * @p stash_base must be chunk-aligned (the paper's alignment
     * requirement, footnote 4).
     */
    AddMapResult addMap(LocalAddr stash_base, const TileSpec &tile);

    /**
     * The ChgMap intrinsic: points entry @p idx at a new tile and/or
     * operation mode, performing the Section 4.2 writeback or
     * re-registration transitions.
     */
    Cycles chgMap(MapIndex idx, LocalAddr stash_base,
                  const TileSpec &tile);

    /**
     * Word-masked access to the stash line at byte address
     * @p line_addr (64 B aligned).  @p map_idx selects the stash-map
     * entry backing these words (from the instruction's map-index
     * field), or `unmappedIndex` for temporary/global-unmapped data.
     */
    void access(LocalAddr line_addr, WordMask mask, bool is_store,
                const LineData *store_data, MapIndex map_idx,
                AccessDone done);

    /**
     * Thread-block completion (Section 4.2): per-chunk dirty bits in
     * the block's allocation convert to writeback bits.
     */
    void endThreadBlock(LocalAddr base, std::uint32_t bytes);

    /**
     * Unpins map entry @p idx: its thread block has retired, so the
     * entry may be retired early if the VP-map needs the space.  The
     * mapping itself stays valid (lazy writebacks, reuse).
     */
    void releaseMap(MapIndex idx);

    /** Kernel boundary: self-invalidate Valid, keep Registered. */
    void endKernel();

    /** Forces every pending lazy writeback out (end of program). */
    void flushAll();

    void receive(const Msg &msg) override;

    const StashStats &stats() const { return _stats; }
    const StashMap &mapTable() const { return map; }
    const VpMap &vpMapTable() const { return vpMap; }

    /** @{ Test/telemetry probes. */
    WordState probeWord(LocalAddr byte_addr) const;
    std::uint32_t peek(LocalAddr byte_addr) const;
    bool chunkWriteback(unsigned chunk) const;
    bool chunkDirty(unsigned chunk) const;
    /** @} */

    /** Shadows stores/fills/transitions against @p c. */
    void attachChecker(ProtocolChecker *c) { checker = c; }

    /**
     * Protocol-checker sweep: every readable word reachable through a
     * valid *coherent* mapping that is the current occupant of its
     * stash region.  fn(pa, state, data, mapIdx).
     */
    void forEachMappedWord(
        const std::function<void(PhysAddr, WordState, std::uint32_t,
                                 MapIndex)> &fn) const;

    /**
     * Protocol-checker bookkeeping audit: per-entry #DirtyData versus
     * actual dirty/writeback chunk counts, and Registered words not
     * reachable through any live coherent mapping.  Findings are
     * reported through @p report.
     */
    void auditAccounting(
        const std::function<void(const std::string &)> &report) const;

    /** Writes map-table and VP-map occupancy (watchdog dumps). */
    void dumpState(std::ostream &os) const;

    /**
     * Serializes data/state/chunks + map table + VP-map + stats.
     * Only valid at a drain point: no pending fills or deferred
     * misses.
     */
    void snapshot(SnapshotWriter &w) const;

    /** Restores a drain-point checkpoint into this (same-geometry) stash. */
    void restore(SnapshotReader &r);

  private:
    struct Chunk
    {
        bool dirty = false;
        bool writeback = false;
        /** Entry whose dirty data the chunk holds (for writeback). */
        MapIndex mapIdx = 0;
        /** Entry that most recently allocated this stash region. */
        MapIndex allocIdx = unmappedIndex;
    };

    struct Waiter
    {
        unsigned remaining = 0;
        LocalAddr lineAddr = 0;
        AccessDone done;
    };

    struct PendingWord
    {
        std::uint32_t stashWord;
        unsigned wordInLine;
        std::shared_ptr<Waiter> waiter;
    };

    unsigned numWords() const { return unsigned(data.size()); }
    unsigned numChunks() const { return unsigned(chunks.size()); }
    unsigned wordsPerChunk() const
    {
        return params.chunkBytes / wordBytes;
    }
    unsigned chunkOf(std::uint32_t word) const
    {
        return word / wordsPerChunk();
    }

    /** Registers a dirty word's chunk bookkeeping. */
    void markDirty(std::uint32_t word, MapIndex map_idx);

    /** Single point for word-state transitions (traceable). */
    void setState(std::uint32_t w, WordState s, const char *why);

    /**
     * Finds every stash word currently mapping global virtual address
     * @p va: the directory's map-index @p hint is tried first (the
     * common, fast case); if the hinted entry no longer maps @p va
     * (it may have been recycled since the word was registered), all
     * valid entries are searched.  Replicated mappings can yield
     * several copies.
     */
    std::vector<std::uint32_t> resolveVa(Addr va, MapIndex hint,
                                         bool allAliases = false) const;

    /** Writes back (or discards, if non-coherent) one chunk. */
    void writebackChunk(unsigned chunk);

    /** Writes back every dirty/writeback chunk of map entry @p idx. */
    void writebackMapEntry(MapIndex idx);

    /** Installs VP-map entries for every page @p tile touches. */
    void installVpEntries(const TileSpec &tile, MapIndex idx);

    /** Frees VP-map space by retiring oldest map entries. */
    void evictEntriesForVpSpace();

    /** Completes a waiter by snapshotting its stash line. */
    void finishWaiter(const std::shared_ptr<Waiter> &w);

    LineData snapshotLine(LocalAddr line_addr) const;

    EventQueue &eq;
    Fabric &fabric;
    CoreId owner;
    NodeId node;
    Params params;

    std::vector<std::uint32_t> data;
    std::vector<WordState> state;
    std::vector<Chunk> chunks;

    StashMap map;
    VpMap vpMap;

    std::unordered_map<PhysAddr, std::vector<PendingWord>> pendingFills;

    struct DeferredAccess
    {
        LocalAddr lineAddr;
        WordMask mask;
        MapIndex mapIdx;
        AccessDone done;
    };

    /** Load misses waiting for a free miss slot. */
    std::vector<DeferredAccess> deferred;

    void replayDeferred();

    StashStats _stats;
    ProtocolChecker *checker = nullptr;
};

} // namespace stashsim

#endif // STASHSIM_CORE_STASH_HH
