#include "core/stash.hh"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

#include "sim/log.hh"
#include "snapshot/snapshot.hh"
#include "verify/protocol_checker.hh"

namespace stashsim
{

Stash::Stash(EventQueue &eq, Fabric &fabric, PageTable &pt, CoreId owner,
             NodeId node, const Params &p)
    : eq(eq), fabric(fabric), owner(owner), node(node), params(p),
      data(p.bytes / wordBytes, 0),
      state(p.bytes / wordBytes, WordState::Invalid),
      chunks(p.bytes / p.chunkBytes), map(p.mapEntries),
      vpMap(pt, p.vpEntries)
{
    sim_assert(p.chunkBytes % lineBytes == 0 || lineBytes %
               p.chunkBytes == 0);
    // Bounded by the miss-slot count; never rehashes on the fill path.
    pendingFills.reserve(p.mshrs);
}

namespace
{

/** Word index traced via STASHSIM_TRACE_WORD="core:wordIdx". */
bool
traceWord(CoreId core, std::uint32_t w)
{
    static const std::pair<unsigned long, unsigned long> t = []() {
        const char *env = std::getenv("STASHSIM_TRACE_WORD");
        if (!env)
            return std::make_pair(~0ul, ~0ul);
        unsigned long c = 0, wi = 0;
        std::sscanf(env, "%lu:%lu", &c, &wi);
        return std::make_pair(c, wi);
    }();
    return t.first == core && t.second == w;
}

} // namespace

void
Stash::setState(std::uint32_t w, WordState s, const char *why)
{
    if (traceWord(owner, w) && state[w] != s) {
        inform("stash core ", owner, " word ", w, " ",
               wordStateName(state[w]), " -> ", wordStateName(s),
               " (", why, ")");
    }
    state[w] = s;
}

// ---------------------------------------------------------------------
// Software interface: AddMap / ChgMap
// ---------------------------------------------------------------------

Stash::AddMapResult
Stash::addMap(LocalAddr stash_base, const TileSpec &tile)
{
    ++_stats.addMaps;
    if (!tile.wellFormed())
        fatal("AddMap: malformed tile");
    if (stash_base % params.chunkBytes != 0)
        fatal("AddMap: stash base must be chunk-aligned");
    if (stash_base + tile.mappedBytes() > params.bytes)
        fatal("AddMap: mapping exceeds stash size");
    if (tile.globalBase % wordBytes != 0 ||
        tile.fieldSize % wordBytes != 0 ||
        tile.objectSize % wordBytes != 0) {
        fatal("AddMap: tile must be word-aligned");
    }

    Cycles cost = 1;

    // Section 4.5: replication search happens before the new entry is
    // allocated, so the new entry cannot match itself.
    std::optional<MapIndex> match;
    if (params.replicationOpt)
        match = map.findMatch(tile);

    const MapIndex idx = map.advanceTail();
    StashMapEntry &e = map.entry(idx);

    // Replacing a still-valid entry drains every chunk it still
    // claims (Section 4.2, AddMap); if dirty data was outstanding the
    // core blocks until the writebacks are issued.
    if (e.valid) {
        if (e.dirtyData > 0) {
            ++_stats.mapReplacementStalls;
            cost += 64; // the stall the scout pointer would hide
        }
        writebackMapEntry(idx);
    }
    // VP-map entries back-pointed at the replaced entry die with it.
    vpMap.release(idx);

    // Same-location reuse additionally requires the matched entry to
    // still be the *current occupant* of the region: if another
    // mapping lived there in between, the data present is not the
    // tile's and must be reclaimed normally.
    bool reuse_same_location =
        match && map.entry(*match).stashBase == stash_base;
    if (reuse_same_location) {
        const unsigned c0 = chunkOf(stash_base / wordBytes);
        const unsigned c1 =
            chunkOf((stash_base + tile.mappedBytes() - 1) / wordBytes);
        for (unsigned c = c0; c <= c1; ++c) {
            if (chunks[c].allocIdx != *match) {
                reuse_same_location = false;
                break;
            }
        }
    }

    e.valid = true;
    e.pinned = true;
    e.stashBase = stash_base;
    e.tile = tile;
    e.dirtyData = 0;
    e.reuseBit = match.has_value();
    e.reuseIdx = match.value_or(0);

    installVpEntries(tile, idx);

    // The new entry now owns the region: remote-request resolution
    // only trusts a (entry, word) pair when the word's chunk records
    // that entry as its latest allocator (stale recycled entries can
    // otherwise alias other data living at the same stash words).
    {
        const std::uint32_t first_word = stash_base / wordBytes;
        const std::uint32_t last_word =
            (stash_base + tile.mappedBytes() - 1) / wordBytes;
        for (unsigned c = chunkOf(first_word); c <= chunkOf(last_word);
             ++c) {
            chunks[c].allocIdx = idx;
        }
    }

    // Reclaim the stash range for the new mapping: trigger the lazy
    // writebacks of whatever previously lived there, then invalidate.
    // When the mapping is an exact replica living at the same stash
    // location (cross-kernel reuse), the data stays put: no
    // writebacks, no invalidation, no misses, and — because the
    // directory's registration (core, unit) is unchanged — no new
    // registration traffic.  The directory's stash-map *index* hint
    // does go stale when the old entry is eventually recycled; remote
    // requests then fall back to the VA search in resolveVa() (the
    // model's equivalent of the paper's Section 4.5 re-registration
    // rule, without its traffic).
    if (!reuse_same_location) {
        const std::uint32_t first_word = stash_base / wordBytes;
        const std::uint32_t last_word =
            (stash_base + tile.mappedBytes() - 1) / wordBytes;
        for (unsigned c = chunkOf(first_word); c <= chunkOf(last_word);
             ++c) {
            if (chunks[c].dirty || chunks[c].writeback)
                writebackChunk(c);
        }
        for (std::uint32_t w = first_word; w <= last_word; ++w) {
            if (state[w] == WordState::Registered) {
                panic("AddMap reclaim would drop a registered word "
                      "without writeback: word=", w, " chunk=",
                      chunkOf(w), " chunkMapIdx=",
                      unsigned(chunks[chunkOf(w)].mapIdx),
                      " chunkDirty=", chunks[chunkOf(w)].dirty,
                      " chunkWb=", chunks[chunkOf(w)].writeback,
                      " newIdx=", unsigned(idx));
            }
            setState(w, WordState::Invalid, "addmap-reclaim");
        }
    }

    return AddMapResult{idx, cost};
}

Cycles
Stash::chgMap(MapIndex idx, LocalAddr stash_base, const TileSpec &tile)
{
    ++_stats.chgMaps;
    StashMapEntry &e = map.entry(idx);
    if (!e.valid)
        fatal("ChgMap: invalid map entry");

    Cycles cost = 1;
    const bool same_addresses =
        e.stashBase == stash_base && e.tile == tile;

    if (!same_addresses) {
        // New global addresses: write back the old mapping's dirty
        // data (if coherent) and invalidate the remapped locations.
        writebackMapEntry(idx);
        const std::uint32_t first_word = e.stashBase / wordBytes;
        const std::uint32_t last_word =
            (e.stashBase + e.tile.mappedBytes() - 1) / wordBytes;
        for (std::uint32_t w = first_word; w <= last_word; ++w)
            setState(w, WordState::Invalid, "chgmap-remap");
        e.stashBase = stash_base;
        e.tile = tile;
        e.dirtyData = 0;
        installVpEntries(tile, idx);
        return cost;
    }

    // Same addresses, (possibly) different operation mode.
    if (e.tile.isCoherent && !tile.isCoherent) {
        // Coherent -> non-coherent: the old stores were globally
        // visible, so push them out before going dark.
        writebackMapEntry(idx);
    } else if (!e.tile.isCoherent && tile.isCoherent) {
        // Non-coherent -> coherent: register every dirty word so the
        // directory knows this stash now holds the latest copy.
        const std::uint32_t first_word = e.stashBase / wordBytes;
        const std::uint32_t last_word =
            (e.stashBase + e.tile.mappedBytes() - 1) / wordBytes;
        std::map<PhysAddr, WordMask> reg_lines;
        for (std::uint32_t w = first_word; w <= last_word; ++w) {
            if (!chunks[chunkOf(w)].dirty &&
                !chunks[chunkOf(w)].writeback) {
                continue;
            }
            if (state[w] == WordState::Invalid)
                continue;
            setState(w, WordState::Registered, "chgmap-coherent");
            const std::uint32_t off = w * wordBytes - e.stashBase;
            const Addr ga = e.tile.globalAddrOf(off);
            ++_stats.vpMapAccesses;
            const PhysAddr pa = vpMap.translate(ga, idx);
            if (checker) {
                // The conversion makes the stash copy the globally
                // visible one: commit it to the golden image.
                checker->onStore(pa, data[w]);
            }
            reg_lines[lineBase(pa)] |= wordBit(lineWord(pa));
        }
        for (const auto &[line_pa, mask] : reg_lines) {
            Msg reg;
            reg.type = MsgType::RegReq;
            reg.requester = owner;
            reg.requesterUnit = Unit::Stash;
            reg.linePA = line_pa;
            reg.mask = mask;
            reg.ownerIsStash = true;
            reg.stashMapIdx = idx;
            fabric.send(node, fabric.nodeOfLlc(line_pa), Unit::Llc,
                        std::move(reg));
        }
    }
    e.tile.isCoherent = tile.isCoherent;
    return cost;
}

void
Stash::installVpEntries(const TileSpec &tile, MapIndex idx)
{
    // Collect the pages the tile's rows touch.
    for (std::uint32_t row = 0; row < tile.numStrides; ++row) {
        const Addr row_base = tile.globalBase + Addr(row) *
                              tile.strideSize;
        const Addr row_end = row_base +
                             Addr(tile.rowSize - 1) * tile.objectSize +
                             tile.fieldSize;
        for (Addr p = pageBase(row_base); p < row_end; p += pageBytes) {
            // Refreshing an existing translation costs no space; only
            // a genuinely new page can trigger entry retirement.
            if (!vpMap.contains(p) && vpMap.full())
                evictEntriesForVpSpace();
            vpMap.install(p, idx);
        }
    }
}

void
Stash::evictEntriesForVpSpace()
{
    // Section 4.1.4: when the VP-map has no room, retire stash-map
    // entries -- oldest first, i.e., in circular order from the tail.
    // Entries of still-resident thread blocks are pinned and skipped;
    // if the live mappings alone exceed the VP-map, the structure
    // overflows (counted and warned, once) rather than corrupting a
    // live translation.
    for (unsigned i = 0; i < map.capacity() && vpMap.full(); ++i) {
        const MapIndex j =
            MapIndex((map.tailIndex() + i) % map.capacity());
        StashMapEntry &e = map.entry(j);
        if (!e.valid || e.pinned)
            continue;
        writebackMapEntry(j);
        e.valid = false;
        vpMap.release(j);
    }
    if (vpMap.full()) {
        ++_stats.vpMapOverflows;
        if (_stats.vpMapOverflows == 1) {
            warn("VP-map capacity (", vpMap.capacity(), ") exceeded "
                 "by live mappings; allowing overflow");
        }
    }
}

// ---------------------------------------------------------------------
// Access path
// ---------------------------------------------------------------------

void
Stash::access(LocalAddr line_addr, WordMask mask, bool is_store,
              const LineData *store_data, MapIndex map_idx,
              AccessDone done)
{
    sim_assert(line_addr % lineBytes == 0);
    sim_assert(mask != 0);
    sim_assert(line_addr + lineBytes <= params.bytes);
    const std::uint32_t word0 = line_addr / wordBytes;
    const Tick hit_latency = params.hitCycles * params.clockPeriod;

    // ----- Temporary / global-unmapped modes: plain scratchpad -----
    if (map_idx == unmappedIndex) {
        if (is_store) {
            sim_assert(store_data);
            for (unsigned w = 0; w < wordsPerLine; ++w) {
                if (!(mask & wordBit(w)))
                    continue;
                data[word0 + w] = store_data->w[w];
                setState(word0 + w, WordState::Valid, "unmapped-store");
            }
            ++_stats.storeHits;
            _stats.hitWords += popcount(mask);
        } else {
            ++_stats.loadHits;
            _stats.hitWords += popcount(mask);
        }
        LineData snap = snapshotLine(line_addr);
        eq.scheduleIn(hit_latency,
                      [done = std::move(done), snap]() { done(snap); });
        return;
    }

    StashMapEntry &e = map.entry(map_idx);
    sim_assert(e.valid);

    // ----- Stores -----
    if (is_store) {
        sim_assert(store_data);
        WordMask need_reg = 0;
        for (unsigned w = 0; w < wordsPerLine; ++w) {
            if (!(mask & wordBit(w)))
                continue;
            data[word0 + w] = store_data->w[w];
            if (checker) {
                // Side-effect-free probe: the timed translation (and
                // its statistics) happens below, for need_reg words
                // only, as in the unchecked simulation.
                const std::uint32_t off =
                    (word0 + w) * wordBytes - e.stashBase;
                PhysAddr pa;
                if (vpMap.probe(e.tile.globalAddrOf(off), &pa)) {
                    if (e.tile.isCoherent)
                        checker->onStore(pa, store_data->w[w]);
                    else
                        checker->onOpaqueStore(pa);
                }
            }
            if (e.tile.isCoherent) {
                if (state[word0 + w] != WordState::Registered) {
                    setState(word0 + w, WordState::Registered,
                             "store");
                    need_reg |= wordBit(w);
                }
            } else {
                setState(word0 + w, WordState::Valid,
                         "noncoherent-store");
            }
            markDirty(word0 + w, map_idx);
        }

        _stats.hitWords += popcount(WordMask(mask & ~need_reg));
        _stats.missWords += popcount(need_reg);
        if (need_reg) {
            ++_stats.storeMisses;
            ++_stats.translations;
            // The store completes locally; its registration request
            // must enter the memory system *now*, in program order
            // with any later writeback of the same words (a lazy
            // writeback draining this chunk after the block retires
            // must reach the directory after the registration, or the
            // directory would end up registering data the stash no
            // longer holds).  The translation latency is off the
            // store's critical path.
            std::map<PhysAddr, WordMask> reg_lines;
            for (unsigned w = 0; w < wordsPerLine; ++w) {
                if (!(need_reg & wordBit(w)))
                    continue;
                const std::uint32_t off =
                    (word0 + w) * wordBytes - e.stashBase;
                const Addr ga = e.tile.globalAddrOf(off);
                ++_stats.vpMapAccesses;
                const PhysAddr pa = vpMap.translate(ga, map_idx);
                reg_lines[lineBase(pa)] |= wordBit(lineWord(pa));
            }
            for (const auto &[line_pa, m] : reg_lines) {
                if (tracePA(line_pa)) {
                    inform("stash core ", owner, " store RegReq "
                           "pa=0x", std::hex, line_pa, std::dec,
                           " mask=0x", std::hex, m, std::dec,
                           " idx=", unsigned(map_idx));
                }
                Msg reg;
                reg.type = MsgType::RegReq;
                reg.requester = owner;
                reg.requesterUnit = Unit::Stash;
                reg.linePA = line_pa;
                reg.mask = m;
                reg.ownerIsStash = true;
                reg.stashMapIdx = map_idx;
                fabric.send(node, fabric.nodeOfLlc(line_pa),
                            Unit::Llc, std::move(reg));
            }
        } else {
            ++_stats.storeHits;
        }
        LineData snap = snapshotLine(line_addr);
        eq.scheduleIn(hit_latency,
                      [done = std::move(done), snap]() { done(snap); });
        return;
    }

    // ----- Loads -----
    WordMask missing = 0;
    for (unsigned w = 0; w < wordsPerLine; ++w) {
        if ((mask & wordBit(w)) &&
            state[word0 + w] == WordState::Invalid) {
            missing |= wordBit(w);
        }
    }

    // Section 4.5: serve misses from a replicated older mapping.
    if (missing && e.reuseBit) {
        const StashMapEntry &old = map.entry(e.reuseIdx);
        if (old.valid && old.tile == e.tile) {
            for (unsigned w = 0; w < wordsPerLine; ++w) {
                if (!(missing & wordBit(w)))
                    continue;
                const std::uint32_t off =
                    (word0 + w) * wordBytes - e.stashBase;
                const std::uint32_t old_word =
                    (old.stashBase + off) / wordBytes;
                if (chunks[chunkOf(old_word)].allocIdx != e.reuseIdx)
                    continue; // the replica's region was reused
                if (state[old_word] != WordState::Invalid) {
                    data[word0 + w] = data[old_word];
                    setState(word0 + w, WordState::Valid,
                             "replication-copy");
                    missing &= WordMask(~wordBit(w));
                    ++_stats.replicationHits;
                }
            }
        }
    }

    if (!missing) {
        ++_stats.loadHits;
        _stats.hitWords += popcount(mask);
        LineData snap = snapshotLine(line_addr);
        eq.scheduleIn(hit_latency,
                      [done = std::move(done), snap]() { done(snap); });
        return;
    }

    // Translate the missing words and group them by physical line.
    std::map<PhysAddr, WordMask> req_lines;
    std::vector<std::pair<std::uint32_t, PhysAddr>> word_pas;
    for (unsigned w = 0; w < wordsPerLine; ++w) {
        if (!(missing & wordBit(w)))
            continue;
        const std::uint32_t off = (word0 + w) * wordBytes - e.stashBase;
        const Addr ga = e.tile.globalAddrOf(off);
        const PhysAddr pa = vpMap.translate(ga, map_idx);
        req_lines[lineBase(pa)] |= wordBit(lineWord(pa));
        word_pas.emplace_back(word0 + w, pa);
    }

    // Miss-slot (MSHR) limit: count the new lines this access needs.
    unsigned new_lines = 0;
    for (const auto &[line_pa, m] : req_lines) {
        if (pendingFills.find(line_pa) == pendingFills.end())
            ++new_lines;
    }
    if (pendingFills.size() + new_lines > params.mshrs &&
        new_lines > 0) {
        deferred.push_back(
            DeferredAccess{line_addr, mask, map_idx, std::move(done)});
        return;
    }

    ++_stats.loadMisses;
    ++_stats.translations;
    _stats.hitWords += popcount(WordMask(mask & ~missing));
    _stats.missWords += popcount(missing);
    _stats.vpMapAccesses += word_pas.size();

    auto waiter = std::make_shared<Waiter>();
    waiter->remaining = popcount(missing);
    waiter->lineAddr = line_addr;
    waiter->done = std::move(done);

    // Merge with in-flight fills (MSHR behaviour): words another
    // access already requested are waited on, not fetched twice.
    std::map<PhysAddr, WordMask> to_request;
    for (const auto &[stash_word, pa] : word_pas) {
        const PhysAddr line_pa = lineBase(pa);
        WordMask inflight = 0;
        auto it = pendingFills.find(line_pa);
        if (it != pendingFills.end()) {
            for (const PendingWord &pw : it->second)
                inflight |= wordBit(pw.wordInLine);
        }
        if (!(inflight & wordBit(lineWord(pa))))
            to_request[line_pa] |= wordBit(lineWord(pa));
        pendingFills[line_pa].push_back(
            PendingWord{stash_word, lineWord(pa), waiter});
    }

    const Tick xlat = params.translationCycles * params.clockPeriod;
    eq.scheduleIn(xlat, [this, to_request]() {
        for (const auto &[line_pa, m] : to_request) {
            Msg req;
            req.type = MsgType::ReadReq;
            req.requester = owner;
            req.requesterUnit = Unit::Stash;
            req.linePA = line_pa;
            req.mask = m;
            req.wordsOnly = true; // compact: only the useful words
            fabric.send(node, fabric.nodeOfLlc(line_pa), Unit::Llc,
                        std::move(req));
        }
    });
}

void
Stash::markDirty(std::uint32_t word, MapIndex map_idx)
{
    Chunk &ch = chunks[chunkOf(word)];
    if (!ch.dirty && !ch.writeback) {
        // Clean chunk: claim it for this mapping and count it in the
        // entry's #DirtyData.
        ch.dirty = true;
        ch.mapIdx = map_idx;
        ++map.entry(map_idx).dirtyData;
        return;
    }
    ch.dirty = true;
    if (ch.mapIdx != map_idx) {
        // The chunk migrates to the newer mapping (same-location
        // reuse across kernels): move the #DirtyData accounting.
        StashMapEntry &old = map.entry(ch.mapIdx);
        if (old.dirtyData > 0)
            --old.dirtyData;
        else if (checker)
            checker->onDirtyDataUnderflow(owner, ch.mapIdx);
        ++map.entry(map_idx).dirtyData;
        ch.mapIdx = map_idx;
    }
}

void
Stash::replayDeferred()
{
    if (deferred.empty())
        return;
    std::vector<DeferredAccess> pending;
    pending.swap(deferred);
    for (auto &d : pending) {
        access(d.lineAddr, d.mask, false, nullptr, d.mapIdx,
               std::move(d.done));
    }
}

void
Stash::finishWaiter(const std::shared_ptr<Waiter> &w)
{
    LineData snap = snapshotLine(w->lineAddr);
    AccessDone done = std::move(w->done);
    eq.scheduleIn(params.hitCycles * params.clockPeriod,
                  [done = std::move(done), snap]() { done(snap); });
}

LineData
Stash::snapshotLine(LocalAddr line_addr) const
{
    LineData snap;
    const std::uint32_t word0 = line_addr / wordBytes;
    for (unsigned w = 0; w < wordsPerLine; ++w)
        snap.w[w] = data[word0 + w];
    return snap;
}

// ---------------------------------------------------------------------
// Lazy writebacks
// ---------------------------------------------------------------------

void
Stash::writebackChunk(unsigned chunk)
{
    Chunk &ch = chunks[chunk];
    if (!ch.dirty && !ch.writeback)
        return;
    StashMapEntry &e = map.entry(ch.mapIdx);

    if (e.valid && e.tile.isCoherent) {
        // Write back the chunk's registered words, grouped per global
        // line; per-word coherence state identifies the dirty words
        // (Section 4.2).
        const std::uint32_t w_begin = chunk * wordsPerChunk();
        const std::uint32_t w_end = w_begin + wordsPerChunk();
        const std::uint32_t map_begin = e.stashBase / wordBytes;
        const std::uint32_t map_end =
            (e.stashBase + e.tile.mappedBytes()) / wordBytes;
        std::map<PhysAddr, std::pair<WordMask, LineData>> wb_lines;
        unsigned words = 0;
        for (std::uint32_t w = std::max(w_begin, map_begin);
             w < std::min(w_end, map_end); ++w) {
            if (state[w] != WordState::Registered)
                continue;
            const std::uint32_t off = w * wordBytes - e.stashBase;
            const Addr ga = e.tile.globalAddrOf(off);
            ++_stats.vpMapAccesses;
            const PhysAddr pa = vpMap.translate(ga, ch.mapIdx);
            auto &[m, d] = wb_lines[lineBase(pa)];
            m |= wordBit(lineWord(pa));
            d.w[lineWord(pa)] = data[w];
            setState(w, WordState::Valid, "chunk-writeback");
            ++words;
        }
        if (words) {
            ++_stats.lazyWritebackChunks;
            _stats.wordsWrittenBack += words;
            ++_stats.translations;
        }
        for (auto &[line_pa, md] : wb_lines) {
            if (tracePA(line_pa)) {
                inform("stash core ", owner, " WbReq pa=0x", std::hex,
                       line_pa, std::dec, " mask=0x", std::hex,
                       md.first, std::dec, " chunkIdx=",
                       unsigned(ch.mapIdx));
            }
            Msg wb;
            wb.type = MsgType::WbReq;
            wb.requester = owner;
            wb.requesterUnit = Unit::Stash;
            wb.linePA = line_pa;
            wb.mask = md.first;
            wb.data = md.second;
            fabric.send(node, fabric.nodeOfLlc(line_pa), Unit::Llc,
                        std::move(wb));
        }
    }

    ch.dirty = false;
    ch.writeback = false;
    if (e.dirtyData > 0) {
        --e.dirtyData;
        if (e.dirtyData == 0 && !e.valid) {
            // Fully drained, already replaced: nothing more to do.
        }
    } else if (checker) {
        // The chunk was dirty/writeback (checked on entry), so the
        // entry must have been charged for it: a zero counter here is
        // a #DirtyData underflow.
        checker->onDirtyDataUnderflow(owner, ch.mapIdx);
    }
}

void
Stash::writebackMapEntry(MapIndex idx)
{
    for (unsigned c = 0; c < numChunks(); ++c) {
        if (chunks[c].mapIdx == idx &&
            (chunks[c].dirty || chunks[c].writeback)) {
            writebackChunk(c);
        }
    }
}

// ---------------------------------------------------------------------
// Kernel lifecycle
// ---------------------------------------------------------------------

void
Stash::endThreadBlock(LocalAddr base, std::uint32_t bytes)
{
    if (bytes == 0)
        return;
    const unsigned first = base / params.chunkBytes;
    const unsigned last = (base + bytes - 1) / params.chunkBytes;
    for (unsigned c = first; c <= last && c < numChunks(); ++c) {
        if (chunks[c].dirty) {
            chunks[c].dirty = false;
            chunks[c].writeback = true;
        }
    }
}

void
Stash::releaseMap(MapIndex idx)
{
    map.entry(idx).pinned = false;
}

void
Stash::endKernel()
{
    for (std::uint32_t w = 0; w < numWords(); ++w) {
        if (state[w] == WordState::Valid) {
            if (checker)
                checker->onSelfInvalidate("stash", owner, w, state[w]);
            setState(w, WordState::Invalid, "self-invalidate");
            ++_stats.selfInvalidations;
        }
    }
}

void
Stash::flushAll()
{
    for (unsigned c = 0; c < numChunks(); ++c)
        writebackChunk(c);
}

std::vector<std::uint32_t>
Stash::resolveVa(Addr va, MapIndex hint, bool all_aliases) const
{
    std::vector<std::uint32_t> words;
    auto try_entry = [&](MapIndex i) {
        const StashMapEntry &e = map.entry(i);
        if (!e.valid)
            return;
        std::uint32_t off;
        if (!e.tile.reverse(va, &off))
            return;
        const std::uint32_t w = (e.stashBase + off) / wordBytes;
        // Only the region's latest allocator speaks for this word.
        if (chunks[chunkOf(w)].allocIdx != i)
            return;
        for (std::uint32_t seen : words) {
            if (seen == w)
                return;
        }
        words.push_back(w);
    };
    try_entry(hint);
    if (!all_aliases && !words.empty() &&
        state[words.front()] != WordState::Invalid)
        return words; // fast path: the directory's hint still holds
    for (unsigned i = 0; i < map.capacity(); ++i)
        try_entry(MapIndex(i));
    return words;
}

// ---------------------------------------------------------------------
// Remote requests
// ---------------------------------------------------------------------

void
Stash::receive(const Msg &msg)
{
    switch (msg.type) {
      case MsgType::ReadResp: {
        auto it = pendingFills.find(msg.linePA);
        if (it == pendingFills.end())
            return;
        auto &vec = it->second;
        for (auto pw = vec.begin(); pw != vec.end();) {
            if (msg.mask & wordBit(pw->wordInLine)) {
                if (state[pw->stashWord] == WordState::Invalid) {
                    data[pw->stashWord] = msg.data.w[pw->wordInLine];
                    setState(pw->stashWord, WordState::Valid, "fill");
                    if (checker) {
                        checker->onFill(
                            "stash", owner,
                            msg.linePA +
                                PhysAddr(pw->wordInLine) * wordBytes,
                            msg.data.w[pw->wordInLine]);
                    }
                }
                if (--pw->waiter->remaining == 0)
                    finishWaiter(pw->waiter);
                pw = vec.erase(pw);
            } else {
                ++pw;
            }
        }
        if (vec.empty()) {
            pendingFills.erase(it);
            replayDeferred();
        }
        return;
      }
      case MsgType::RegAck:
      case MsgType::WbAck:
        return;
      case MsgType::InvReq: {
        if (tracePA(msg.linePA)) {
            inform("stash core ", owner, " InvReq pa=0x", std::hex,
                   msg.linePA, std::dec, " mask=0x", std::hex, msg.mask,
                   std::dec, " idx=", unsigned(msg.stashMapIdx));
        }
        // Locate the local copies through the RTLB plus the map
        // entries; registration has moved elsewhere, so every copy
        // of the datum is stale — including a replica source whose
        // words may still read Registered from the kernel that
        // populated it, so bypass the hint fast path and strip all
        // aliases.
        for (unsigned w = 0; w < wordsPerLine; ++w) {
            if (!(msg.mask & wordBit(w)))
                continue;
            Addr va;
            ++_stats.vpMapAccesses;
            if (!vpMap.reverse(msg.linePA + w * wordBytes, &va))
                continue;
            for (std::uint32_t sw :
                 resolveVa(va, msg.stashMapIdx, true))
                setState(sw, WordState::Invalid, "invreq");
        }
        return;
      }
      case MsgType::FwdReadReq: {
        WordMask served = 0;
        LineData d;
        WordMask retry = 0;
        for (unsigned w = 0; w < wordsPerLine; ++w) {
            if (!(msg.mask & wordBit(w)))
                continue;
            Addr va;
            ++_stats.vpMapAccesses;
            bool found = false;
            if (vpMap.reverse(msg.linePA + w * wordBytes, &va)) {
                for (std::uint32_t sw :
                     resolveVa(va, msg.stashMapIdx)) {
                    if (state[sw] != WordState::Invalid) {
                        d.w[w] = data[sw];
                        served |= wordBit(w);
                        found = true;
                        break;
                    }
                }
            }
            if (!found)
                retry |= wordBit(w);
        }
        if (served) {
            ++_stats.remoteHits;
            Msg resp;
            resp.type = MsgType::ReadResp;
            resp.requester = msg.requester;
            resp.requesterUnit = msg.requesterUnit;
            resp.linePA = msg.linePA;
            resp.mask = served;
            resp.data = d;
            fabric.sendToRequester(node, resp);
        }
        if (retry) {
            if (msg.retries > 100) {
                Addr va = 0;
                const bool rtlb_ok = vpMap.reverse(msg.linePA, &va);
                panic("stash: unresolvable forwarded request "
                      "(stale registration at the directory?) core=",
                      owner, " mapIdx=", unsigned(msg.stashMapIdx),
                      " rtlbHit=", rtlb_ok, " candidates=",
                      rtlb_ok ? resolveVa(va, msg.stashMapIdx).size()
                              : 0,
                      " linePA=0x", std::hex, msg.linePA);
            }
            Msg r;
            r.type = MsgType::FwdRetry;
            r.requester = msg.requester;
            r.requesterUnit = msg.requesterUnit;
            r.linePA = msg.linePA;
            r.mask = retry;
            r.wordsOnly = true;
            r.retries = std::uint8_t(msg.retries + 1);
            fabric.send(node, fabric.nodeOfLlc(msg.linePA), Unit::Llc,
                        std::move(r));
        }
        return;
      }
      default:
        panic("stash received unexpected ", msgTypeName(msg.type));
    }
}

// ---------------------------------------------------------------------
// Probes
// ---------------------------------------------------------------------

WordState
Stash::probeWord(LocalAddr byte_addr) const
{
    return state.at(byte_addr / wordBytes);
}

std::uint32_t
Stash::peek(LocalAddr byte_addr) const
{
    return data.at(byte_addr / wordBytes);
}

bool
Stash::chunkWriteback(unsigned chunk) const
{
    return chunks.at(chunk).writeback;
}

bool
Stash::chunkDirty(unsigned chunk) const
{
    return chunks.at(chunk).dirty;
}

// ---------------------------------------------------------------------
// Verification hooks
// ---------------------------------------------------------------------

void
Stash::forEachMappedWord(
    const std::function<void(PhysAddr, WordState, std::uint32_t,
                             MapIndex)> &fn) const
{
    // A replica source and the newer same-tile mapping that copied
    // from it (reuseBit/reuseIdx) alias the same addresses; like
    // resolveVa, the audit treats the aliased words as ONE logical
    // copy per physical address: the strongest state anywhere (the
    // registration may live in the older words if the new mapping
    // only read), with the newest mapping's data (the words a fresh
    // store lands in).
    std::vector<bool> superseded(map.capacity(), false);
    for (unsigned i = 0; i < map.capacity(); ++i) {
        const StashMapEntry &e = map.entry(MapIndex(i));
        if (e.valid && e.reuseBit && e.reuseIdx != MapIndex(i) &&
            map.entry(e.reuseIdx).valid &&
            map.entry(e.reuseIdx).tile == e.tile) {
            superseded[e.reuseIdx] = true;
        }
    }
    struct Rec
    {
        WordState st;
        std::uint32_t data;
        MapIndex idx;
        bool latest;
    };
    std::unordered_map<PhysAddr, Rec> merged;
    for (unsigned i = 0; i < map.capacity(); ++i) {
        const MapIndex idx = MapIndex(i);
        const StashMapEntry &e = map.entry(idx);
        if (!e.valid || !e.tile.isCoherent)
            continue;
        const std::uint32_t w_begin = e.stashBase / wordBytes;
        const std::uint32_t w_end =
            (e.stashBase + e.tile.mappedBytes()) / wordBytes;
        for (std::uint32_t w = w_begin; w < w_end; ++w) {
            // Only the region's latest allocator speaks for the word;
            // older replaced mappings onto the same bytes are dead.
            if (chunks[chunkOf(w)].allocIdx != idx)
                continue;
            if (state[w] == WordState::Invalid)
                continue;
            const std::uint32_t off = w * wordBytes - e.stashBase;
            PhysAddr pa;
            if (!vpMap.probe(e.tile.globalAddrOf(off), &pa))
                continue;
            const Rec r{state[w], data[w], idx, !superseded[i]};
            auto [it, fresh] = merged.emplace(pa, r);
            if (!fresh) {
                if (r.latest && !it->second.latest) {
                    const WordState strongest =
                        std::max(it->second.st, r.st);
                    it->second = r;
                    it->second.st = strongest;
                } else {
                    it->second.st = std::max(it->second.st, r.st);
                }
            }
        }
    }
    for (const auto &[pa, r] : merged)
        fn(pa, r.st, r.data, r.idx);
}

void
Stash::auditAccounting(
    const std::function<void(const std::string &)> &report) const
{
    // #DirtyData must equal the number of dirty/writeback chunks
    // charged to each entry (invalid entries must have drained to 0).
    for (unsigned i = 0; i < map.capacity(); ++i) {
        const StashMapEntry &e = map.entry(MapIndex(i));
        std::uint32_t charged = 0;
        for (const Chunk &ch : chunks) {
            if ((ch.dirty || ch.writeback) && ch.mapIdx == MapIndex(i))
                ++charged;
        }
        if (charged != e.dirtyData) {
            std::ostringstream os;
            os << "stash core " << owner << " map entry " << i
               << (e.valid ? "" : " (invalid)") << " #DirtyData="
               << e.dirtyData << " but " << charged
               << " dirty/writeback chunk(s) charge it";
            report(os.str());
        }
    }
    // Every Registered word must be reachable through a live coherent
    // mapping; otherwise its directory registration can never be
    // recalled or written back.
    for (std::uint32_t w = 0; w < std::uint32_t(data.size()); ++w) {
        if (state[w] != WordState::Registered)
            continue;
        const MapIndex alloc = chunks[chunkOf(w)].allocIdx;
        bool ok = false;
        if (alloc != unmappedIndex) {
            const StashMapEntry &e = map.entry(alloc);
            const std::uint32_t base = e.stashBase / wordBytes;
            const std::uint32_t end =
                (e.stashBase + e.tile.mappedBytes()) / wordBytes;
            ok = e.valid && e.tile.isCoherent && w >= base && w < end;
        }
        if (!ok) {
            std::ostringstream os;
            os << "stash core " << owner << " word " << w
               << " is Registered but unreachable (alloc entry "
               << unsigned(alloc) << ")";
            report(os.str());
        }
    }
}

void
Stash::dumpState(std::ostream &os) const
{
    os << "  stash core " << owner << ": vp-map " << vpMap.size() << "/"
       << vpMap.capacity() << " pages, " << pendingFills.size()
       << " pending fill line(s), " << deferred.size()
       << " deferred access(es)\n";
    for (unsigned i = 0; i < map.capacity(); ++i) {
        const StashMapEntry &e = map.entry(MapIndex(i));
        if (!e.valid)
            continue;
        os << "    map[" << i << "] base=0x" << std::hex << e.stashBase
           << std::dec << " bytes=" << e.tile.mappedBytes()
           << (e.tile.isCoherent ? " coherent" : " non-coherent")
           << (e.pinned ? " pinned" : "") << " #DirtyData="
           << e.dirtyData;
        if (e.reuseBit)
            os << " reuse->" << unsigned(e.reuseIdx);
        os << "\n";
    }
}

void
StashMap::snapshot(SnapshotWriter &w) const
{
    w.u32(std::uint32_t(entries.size()));
    w.u8(tail);
    for (const StashMapEntry &e : entries) {
        w.b(e.valid);
        w.b(e.pinned);
        w.u32(e.stashBase);
        w.u64(e.tile.globalBase);
        w.u32(e.tile.fieldSize);
        w.u32(e.tile.objectSize);
        w.u32(e.tile.rowSize);
        w.u32(e.tile.strideSize);
        w.u32(e.tile.numStrides);
        w.b(e.tile.isCoherent);
        w.u32(e.dirtyData);
        w.b(e.reuseBit);
        w.u8(e.reuseIdx);
    }
}

void
StashMap::restore(SnapshotReader &r)
{
    r.require(r.u32() == entries.size(), "stash-map capacity mismatch");
    tail = r.u8();
    for (StashMapEntry &e : entries) {
        e.valid = r.b();
        e.pinned = r.b();
        e.stashBase = r.u32();
        e.tile.globalBase = r.u64();
        e.tile.fieldSize = r.u32();
        e.tile.objectSize = r.u32();
        e.tile.rowSize = r.u32();
        e.tile.strideSize = r.u32();
        e.tile.numStrides = r.u32();
        e.tile.isCoherent = r.b();
        e.dirtyData = r.u32();
        e.reuseBit = r.b();
        e.reuseIdx = r.u8();
    }
}

void
Stash::snapshot(SnapshotWriter &w) const
{
    // Checkpoints happen only at drain points: no fill in flight, no
    // deferred miss waiting for a slot.
    sim_assert(pendingFills.empty());
    sim_assert(deferred.empty());
    writeStats(w, _stats);
    w.u32(numWords());
    for (std::uint32_t word : data)
        w.u32(word);
    for (WordState st : state)
        w.u8(std::uint8_t(st));
    w.u32(numChunks());
    for (const Chunk &c : chunks) {
        w.b(c.dirty);
        w.b(c.writeback);
        w.u8(c.mapIdx);
        w.u8(c.allocIdx);
    }
    map.snapshot(w);
    vpMap.snapshot(w);
}

void
Stash::restore(SnapshotReader &r)
{
    sim_assert(pendingFills.empty());
    sim_assert(deferred.empty());
    readStats(r, _stats);
    r.require(r.u32() == numWords(), "stash size mismatch");
    for (std::uint32_t &word : data)
        word = r.u32();
    for (WordState &st : state) {
        const std::uint8_t v = r.u8();
        r.require(v <= std::uint8_t(WordState::Registered),
                  "bad word state");
        st = WordState(v);
    }
    r.require(r.u32() == numChunks(), "stash chunk count mismatch");
    for (Chunk &c : chunks) {
        c.dirty = r.b();
        c.writeback = r.b();
        c.mapIdx = r.u8();
        c.allocIdx = r.u8();
    }
    map.restore(r);
    vpMap.restore(r);
}

} // namespace stashsim
