#include "core/vp_map.hh"

#include "sim/log.hh"

namespace stashsim
{

void
VpMap::install(Addr vpage, MapIndex map_idx)
{
    sim_assert(vpage % pageBytes == 0);
    const PhysAddr pa = pageTable.translate(vpage);
    auto it = tlb.find(vpage);
    if (it != tlb.end()) {
        // Refresh the back pointer: this newer mapping now keeps the
        // translation alive.
        it->second.lastMapIdx = map_idx;
        return;
    }
    tlb.emplace(vpage, Entry{pa, map_idx});
    rtlb.emplace(pa, vpage);
}

PhysAddr
VpMap::translate(Addr va, MapIndex map_idx)
{
    ++_accesses;
    const Addr vpage = pageBase(va);
    auto it = tlb.find(vpage);
    if (it == tlb.end()) {
        // Not installed: acquire from the page table at the miss, as
        // Section 4.2 describes for translations absent at AddMap
        // time.
        install(vpage, map_idx);
        it = tlb.find(vpage);
    }
    return it->second.ppage + (va - vpage);
}

bool
VpMap::reverse(PhysAddr pa, Addr *va)
{
    ++_accesses;
    const PhysAddr ppage = pa & ~PhysAddr{pageBytes - 1};
    auto it = rtlb.find(ppage);
    if (it == rtlb.end())
        return false;
    *va = it->second + (pa - ppage);
    return true;
}

bool
VpMap::probe(Addr va, PhysAddr *pa) const
{
    const Addr vpage = pageBase(va);
    auto it = tlb.find(vpage);
    if (it != tlb.end()) {
        *pa = it->second.ppage + (va - vpage);
        return true;
    }
    return pageTable.lookup(va, pa);
}

void
VpMap::release(MapIndex map_idx)
{
    for (auto it = tlb.begin(); it != tlb.end();) {
        if (it->second.lastMapIdx == map_idx) {
            rtlb.erase(it->second.ppage);
            it = tlb.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace stashsim
