#include "core/vp_map.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/log.hh"
#include "snapshot/snapshot.hh"

namespace stashsim
{

void
VpMap::install(Addr vpage, MapIndex map_idx)
{
    sim_assert(vpage % pageBytes == 0);
    const PhysAddr pa = pageTable.translate(vpage);
    auto it = tlb.find(vpage);
    if (it != tlb.end()) {
        // Refresh the back pointer: this newer mapping now keeps the
        // translation alive.
        it->second.lastMapIdx = map_idx;
        return;
    }
    tlb.emplace(vpage, Entry{pa, map_idx});
    rtlb.emplace(pa, vpage);
}

PhysAddr
VpMap::translate(Addr va, MapIndex map_idx)
{
    ++_accesses;
    const Addr vpage = pageBase(va);
    auto it = tlb.find(vpage);
    if (it == tlb.end()) {
        // Not installed: acquire from the page table at the miss, as
        // Section 4.2 describes for translations absent at AddMap
        // time.
        install(vpage, map_idx);
        it = tlb.find(vpage);
    }
    return it->second.ppage + (va - vpage);
}

bool
VpMap::reverse(PhysAddr pa, Addr *va)
{
    ++_accesses;
    const PhysAddr ppage = pa & ~PhysAddr{pageBytes - 1};
    auto it = rtlb.find(ppage);
    if (it == rtlb.end())
        return false;
    *va = it->second + (pa - ppage);
    return true;
}

bool
VpMap::probe(Addr va, PhysAddr *pa) const
{
    const Addr vpage = pageBase(va);
    auto it = tlb.find(vpage);
    if (it != tlb.end()) {
        *pa = it->second.ppage + (va - vpage);
        return true;
    }
    return pageTable.lookup(va, pa);
}

void
VpMap::release(MapIndex map_idx)
{
    for (auto it = tlb.begin(); it != tlb.end();) {
        if (it->second.lastMapIdx == map_idx) {
            rtlb.erase(it->second.ppage);
            it = tlb.erase(it);
        } else {
            ++it;
        }
    }
}

void
VpMap::snapshot(SnapshotWriter &w) const
{
    w.u64(_accesses);
    std::vector<std::pair<Addr, Entry>> pairs(tlb.begin(), tlb.end());
    std::sort(pairs.begin(), pairs.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    w.u32(std::uint32_t(pairs.size()));
    for (const auto &[vpage, e] : pairs) {
        w.u64(vpage);
        w.u64(e.ppage);
        w.u8(e.lastMapIdx);
    }
}

void
VpMap::restore(SnapshotReader &r)
{
    _accesses = r.u64();
    tlb.clear();
    rtlb.clear();
    const std::uint32_t n = r.u32();
    r.require(n <= _capacity, "more VP-map entries than capacity");
    for (std::uint32_t i = 0; i < n; ++i) {
        const Addr vpage = r.u64();
        const PhysAddr ppage = r.u64();
        const MapIndex idx = r.u8();
        tlb.emplace(vpage, Entry{ppage, idx});
        rtlb.emplace(ppage, vpage);
    }
}

} // namespace stashsim
