/**
 * @file
 * The VP-map: per-stash virtual/physical page translations.
 *
 * Paper Section 4.1.4.  Two structures: a TLB (virtual -> physical,
 * used on stash misses and writebacks) and an RTLB (a CAM over
 * physical pages giving physical -> virtual, used for remote requests
 * that arrive with a physical address).  Every entry carries a back
 * pointer naming the *latest* stash-map entry that needs it; entries
 * are reclaimed when that map entry is replaced, which guarantees the
 * RTLB never misses for a live mapping.
 */

#ifndef STASHSIM_CORE_VP_MAP_HH
#define STASHSIM_CORE_VP_MAP_HH

#include <cstdint>
#include <unordered_map>

#include "core/stash_map.hh"
#include "mem/page_table.hh"
#include "sim/types.hh"

namespace stashsim
{

class SnapshotWriter;
class SnapshotReader;

/**
 * TLB + RTLB pair backing one stash.
 */
class VpMap
{
  public:
    VpMap(PageTable &pt, unsigned capacity)
        : pageTable(pt), _capacity(capacity)
    {
    }

    /**
     * Installs (or refreshes) the translation for the page of
     * @p vpage, stamping it with @p map_idx as the latest user.
     * Called by AddMap for every page its tile touches.
     */
    void install(Addr vpage, MapIndex map_idx);

    /**
     * TLB lookup for a stash miss or writeback.  Never fails for
     * addresses covered by an installed mapping; falls back to the
     * page table (and installs) otherwise.
     */
    PhysAddr translate(Addr va, MapIndex map_idx);

    /**
     * RTLB lookup for a remote request.  Guaranteed to hit for any
     * page of a live mapping (see file comment).
     *
     * @return true and sets @p va on a hit.
     */
    bool reverse(PhysAddr pa, Addr *va);

    /**
     * Drops every entry whose back pointer names @p map_idx (called
     * when that stash-map entry is replaced).
     */
    void release(MapIndex map_idx);

    /**
     * Side-effect-free lookup for verification code: no access
     * counting, no install.  Falls back to the shared page table for
     * pages already dropped by release() but still mapped globally.
     *
     * @return true and sets @p pa when the page is mapped.
     */
    bool probe(Addr va, PhysAddr *pa) const;

    /** True when installing one more page would exceed capacity. */
    bool full() const { return tlb.size() >= _capacity; }

    /** True when the page of @p vpage already has an entry. */
    bool
    contains(Addr vpage) const
    {
        return tlb.find(vpage) != tlb.end();
    }

    std::size_t size() const { return tlb.size(); }
    std::uint64_t accesses() const { return _accesses; }
    unsigned capacity() const { return _capacity; }

    /** Serializes the TLB entries (sorted) + access counter. */
    void snapshot(SnapshotWriter &w) const;

    /**
     * Restores the TLB and rebuilds the RTLB as its exact inverse
     * (install/release maintain the two in lock-step, so the inverse
     * is the complete RTLB state).
     */
    void restore(SnapshotReader &r);

  private:
    struct Entry
    {
        PhysAddr ppage;
        MapIndex lastMapIdx;
    };

    PageTable &pageTable;
    unsigned _capacity;
    std::unordered_map<Addr, Entry> tlb;       //!< vpage -> entry
    std::unordered_map<PhysAddr, Addr> rtlb;   //!< ppage -> vpage
    std::uint64_t _accesses = 0;
};

} // namespace stashsim

#endif // STASHSIM_CORE_VP_MAP_HH
