/**
 * @file
 * System configuration: the paper's Table 2 parameters plus the six
 * simulated memory configurations of Section 5.3.
 */

#ifndef STASHSIM_CONFIG_SYSTEM_CONFIG_HH
#define STASHSIM_CONFIG_SYSTEM_CONFIG_HH

#include <string>

#include "sim/types.hh"

namespace stashsim
{

/**
 * The six memory organizations evaluated by the paper (Section 5.3).
 */
enum class MemOrg
{
    Scratch,   //!< 16 KB scratchpad + 32 KB L1; original access types
    ScratchG,  //!< Scratch with global accesses moved to the scratchpad
    ScratchGD, //!< ScratchG with a D2MA-style DMA engine
    Cache,     //!< 32 KB L1 only; scratchpad accesses made global
    Stash,     //!< 16 KB stash + 32 KB L1
    StashG,    //!< Stash with global accesses moved to the stash
};

/** Printable name of a memory organization. */
const char *memOrgName(MemOrg org);

/** Parses a memOrgName(); false when @p name is not an organization. */
bool memOrgFromName(const std::string &name, MemOrg &out);

/** True for the configurations that use a stash. */
constexpr bool
usesStash(MemOrg org)
{
    return org == MemOrg::Stash || org == MemOrg::StashG;
}

/** True for the configurations that use a scratchpad. */
constexpr bool
usesScratchpad(MemOrg org)
{
    return org == MemOrg::Scratch || org == MemOrg::ScratchG ||
           org == MemOrg::ScratchGD;
}

/**
 * The pluggable memory backends behind the LLC (src/mem/backend).
 * `Fixed` is the paper's machine: every miss costs the same flat
 * DRAM latency.  The other two are drawn from related work so the
 * benches can ask how the stash's lazy-writeback advantage moves
 * when writes are expensive: `SttMram` models an STT-MRAM backing
 * store with asymmetric read/write latency and write-pausing (FUSE),
 * `ScmCache` a set-associative DRAM cache in front of a slow
 * storage-class-memory tier with bandwidth-aware hit/miss queuing
 * (the POSTECH DRAM-cache design).
 */
enum class MemBackendKind
{
    Fixed,
    SttMram,
    ScmCache,
};

/** Printable name of a memory backend kind ("fixed", ...). */
const char *memBackendName(MemBackendKind kind);

/** Parses a backend name; false when @p name is not a backend. */
bool memBackendFromName(const std::string &name, MemBackendKind &out);

/**
 * Backend selection plus every backend's timing knobs.  The knobs of
 * the unselected backends are inert; all of them (and the kind) fold
 * into the snapshot config hash, so a checkpoint can never restore
 * under a different memory system.
 */
struct MemBackendConfig
{
    MemBackendKind kind = MemBackendKind::Fixed;

    // --- fixed: the paper's flat-latency DRAM -------------------------
    Cycles dramCycles = 168; //!< 197-261 total including L2/NoC path

    // --- sttmram: asymmetric read/write + write-pausing (FUSE) --------
    Cycles sttReadCycles = 140;  //!< reads slightly ahead of DRAM
    Cycles sttWriteCycles = 450; //!< writes ~3x the read latency
    /** Write-queue depth; a read arriving at a full queue must wait
     *  for the head write to drain before it can pause the rest. */
    unsigned sttWriteQueue = 8;

    // --- scmcache: DRAM cache over SCM (POSTECH) -----------------------
    unsigned scmCacheLines = 2048; //!< DRAM-cache lines per LLC bank
    unsigned scmCacheAssoc = 8;
    Cycles scmHitCycles = 168;      //!< DRAM-cache hit latency
    Cycles scmHitOccupancy = 4;     //!< DRAM channel busy per access
    Cycles scmReadCycles = 500;     //!< SCM tier read latency
    Cycles scmWriteCycles = 1000;   //!< SCM tier write latency
    Cycles scmOccupancy = 16;       //!< SCM channel busy per access
};

/**
 * Verification-and-robustness knobs (src/verify).  Everything is off
 * by default: the checker, watchdog, and fault injector are debugging
 * instruments, not part of the modelled machine.
 */
struct VerifyConfig
{
    /** Shadow every coherence transition against a golden memory and
     *  audit the DeNovo invariants at every drain point. */
    bool protocolChecker = false;

    /** Deadlock/livelock watchdog over the event queue and mesh. */
    bool watchdog = false;
    /** Ticks between watchdog forward-progress checks. */
    Tick watchdogCheckTicks = 200 * 1000; //!< 10k GPU cycles
    /** Consecutive no-progress checks before the watchdog trips. */
    unsigned watchdogStallChecks = 50;

    /** NoC fault injection (seeded, deterministic). */
    bool faultInjection = false;
    std::uint64_t faultSeed = 1;
    /** Per-message delay probability, in permille (0-1000). */
    unsigned faultDelayPermille = 0;
    /** Maximum injected delay, in uncore (GPU) cycles. */
    Cycles faultMaxDelayCycles = 200;
    /** Per-message duplication probability (idempotent types only). */
    unsigned faultDupPermille = 0;
    /** Maximum extra delay of a duplicate delivery, in GPU cycles. */
    Cycles faultDupDelayCycles = 50;
};

/**
 * All structural and timing parameters of the simulated system.
 * Defaults reproduce Table 2 of the paper.
 */
struct SystemConfig
{
    // --- Topology -----------------------------------------------------
    unsigned meshWidth = 4;
    unsigned meshHeight = 4;
    /** GPU CUs; 1 for microbenchmarks, 15 for applications. */
    unsigned numGpuCus = 1;
    /** CPU cores; 15 for microbenchmarks, 1 for applications. */
    unsigned numCpuCores = 15;

    MemOrg memOrg = MemOrg::Scratch;

    // --- L1 caches ----------------------------------------------------
    unsigned l1Bytes = 32 * 1024;
    unsigned l1Assoc = 8;
    unsigned l1Mshrs = 64;
    Cycles l1HitCycles = 1;

    // --- Scratchpad / stash --------------------------------------------
    unsigned localBytes = 16 * 1024; //!< scratchpad or stash size
    unsigned localBanks = 32;
    unsigned stashMapEntries = 64;
    unsigned vpMapEntries = 64; //!< TLB and RTLB entries each
    unsigned stashChunkBytes = 64;
    unsigned mapsPerThreadBlock = 4;
    Cycles stashTranslationCycles = 10;
    Cycles localHitCycles = 1;
    /** The Section 4.5 data-replication (reuseBit) optimization. */
    bool stashReplicationOpt = true;

    // --- LLC (shared L2, NUCA) -----------------------------------------
    unsigned llcBanks = 16;
    unsigned llcBankBytes = 256 * 1024; //!< 4 MB total
    unsigned llcAssoc = 16;
    Cycles llcBankCycles = 23; //!< bank access; 29-61 total w/ network

    // --- NoC -----------------------------------------------------------
    Cycles routerCycles = 2;
    Cycles linkCycles = 1;
    unsigned nocFlitsPerCycle = 4; //!< link width (serialization only)

    // --- Memory --------------------------------------------------------
    /** The backing-store model behind the LLC banks; the per-backend
     *  latency knobs (dramCycles included) live in here, nowhere
     *  else. */
    MemBackendConfig memBackend;

    // --- GPU CU --------------------------------------------------------
    unsigned warpSize = 32;
    unsigned maxResidentTbsPerCu = 8;
    unsigned maxWarpsPerCu = 48;

    // --- CPU core ------------------------------------------------------
    unsigned cpuOutstanding = 4; //!< max in-flight CPU memory ops

    // --- Execution engine ----------------------------------------------
    /**
     * Intra-run shard worker threads.  1 (default) = serial engine.
     * N > 1 = sharded engine: one event queue per mesh tile, advanced
     * in lock-step quanta by N workers (clamped to numNodes()).
     * 0 = auto: the run starts sharded with one calibration worker,
     * then the quantum-size-vs-barrier-cost model picks the worker
     * count from the first drain's counters (DESIGN.md section 16;
     * serial on single-threaded hosts).
     * Serial and sharded runs produce byte-identical artifacts; see
     * DESIGN.md section 10.  Incompatible with verify.faultInjection.
     */
    unsigned shards = 1;

    // --- Verification (not part of the modelled machine) ---------------
    VerifyConfig verify;

    /** Table 2 configuration for the four microbenchmarks. */
    static SystemConfig microbenchmarkDefault();

    /** Table 2 configuration for the seven applications. */
    static SystemConfig applicationDefault();

    /** Total nodes on the mesh. */
    unsigned numNodes() const { return meshWidth * meshHeight; }
};

} // namespace stashsim

#endif // STASHSIM_CONFIG_SYSTEM_CONFIG_HH
