#include "config/system_config.hh"

namespace stashsim
{

const char *
memOrgName(MemOrg org)
{
    switch (org) {
      case MemOrg::Scratch:
        return "Scratch";
      case MemOrg::ScratchG:
        return "ScratchG";
      case MemOrg::ScratchGD:
        return "ScratchGD";
      case MemOrg::Cache:
        return "Cache";
      case MemOrg::Stash:
        return "Stash";
      case MemOrg::StashG:
        return "StashG";
      default:
        return "?";
    }
}

bool
memOrgFromName(const std::string &name, MemOrg &out)
{
    for (MemOrg org :
         {MemOrg::Scratch, MemOrg::ScratchG, MemOrg::ScratchGD,
          MemOrg::Cache, MemOrg::Stash, MemOrg::StashG}) {
        if (name == memOrgName(org)) {
            out = org;
            return true;
        }
    }
    return false;
}

const char *
memBackendName(MemBackendKind kind)
{
    switch (kind) {
      case MemBackendKind::Fixed:
        return "fixed";
      case MemBackendKind::SttMram:
        return "sttmram";
      case MemBackendKind::ScmCache:
        return "scmcache";
      default:
        return "?";
    }
}

bool
memBackendFromName(const std::string &name, MemBackendKind &out)
{
    for (MemBackendKind k :
         {MemBackendKind::Fixed, MemBackendKind::SttMram,
          MemBackendKind::ScmCache}) {
        if (name == memBackendName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

SystemConfig
SystemConfig::microbenchmarkDefault()
{
    SystemConfig cfg;
    cfg.numGpuCus = 1;
    cfg.numCpuCores = 15;
    return cfg;
}

SystemConfig
SystemConfig::applicationDefault()
{
    SystemConfig cfg;
    cfg.numGpuCus = 15;
    cfg.numCpuCores = 1;
    return cfg;
}

} // namespace stashsim
