#include "config/system_config.hh"

namespace stashsim
{

const char *
memOrgName(MemOrg org)
{
    switch (org) {
      case MemOrg::Scratch:
        return "Scratch";
      case MemOrg::ScratchG:
        return "ScratchG";
      case MemOrg::ScratchGD:
        return "ScratchGD";
      case MemOrg::Cache:
        return "Cache";
      case MemOrg::Stash:
        return "Stash";
      case MemOrg::StashG:
        return "StashG";
      default:
        return "?";
    }
}

SystemConfig
SystemConfig::microbenchmarkDefault()
{
    SystemConfig cfg;
    cfg.numGpuCus = 1;
    cfg.numCpuCores = 15;
    return cfg;
}

SystemConfig
SystemConfig::applicationDefault()
{
    SystemConfig cfg;
    cfg.numGpuCus = 15;
    cfg.numCpuCores = 1;
    return cfg;
}

} // namespace stashsim
