/**
 * @file
 * Snapshot serializer/deserializer implementation (DESIGN.md §11).
 *
 * On-disk layout, all values little-endian:
 *
 *   magic        8 bytes  "STASHSNP"
 *   version      u32      snapshotVersion
 *   configHash   u64      snapshotConfigHash() of the writing system
 *   tick         u64      simulated time of the checkpoint
 *   phaseCursor  u32      workload phases completed
 *   workload     str      u32 length + bytes
 *   sectionCount u32
 *   sections[]            u32 nameLen + name + u64 size + u32 crc32
 *   headerCrc    u32      crc32 over every byte above
 *   payloads              section payloads, concatenated in table order
 *
 * The section table's sizes must exactly account for the bytes that
 * follow the header, so any truncation (or trailing garbage) is caught
 * at parse time before a single payload byte is interpreted.
 */

#include "snapshot/snapshot.hh"

#include <array>
#include <cstdio>
#include <utility>

#include "config/system_config.hh"
#include "sim/log.hh"

namespace stashsim
{

SnapshotError::SnapshotError(std::string section, std::string reason)
    : std::runtime_error("snapshot section '" + section + "': " + reason),
      _section(std::move(section)), _reason(std::move(reason))
{
}

namespace
{

constexpr std::array<char, 8> snapshotMagic =
    {'S', 'T', 'A', 'S', 'H', 'S', 'N', 'P'};

/** Name used by SnapshotError for failures outside any section. */
constexpr const char *headerSection = "<header>";

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

const std::array<std::uint32_t, 256> crcTable = makeCrcTable();

void
putU8(std::vector<std::uint8_t> &out, std::uint8_t v)
{
    out.push_back(v);
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(std::uint8_t(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(std::uint8_t(v >> (8 * i)));
}

void
putStr(std::vector<std::uint8_t> &out, const std::string &s)
{
    putU32(out, std::uint32_t(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t n)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < n; ++i)
        c = crcTable[(c ^ p[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

namespace
{

/**
 * Single source of truth for the config-hash field walk.  Every field
 * is visited in the fixed historical order (so the full hash stays
 * value-compatible with snapshots written before delta groups existed)
 * and tagged with the DeltaGroup it belongs to, or `tagBase` for base
 * fields that no declared delta may ever change.
 *
 * cfg.shards and cfg.verify are intentionally not walked; see the
 * snapshotConfigHash() declaration comment.
 */
constexpr int tagBase = -1;

template <class F>
void
walkConfigHash(const SystemConfig &cfg, F &&field)
{
    constexpr int gpu = int(DeltaGroup::Gpu);
    constexpr int back = int(DeltaGroup::MemBackend);
    constexpr int llc = int(DeltaGroup::Llc);
    field(tagBase, snapshotVersion);
    field(tagBase, cfg.meshWidth);
    field(tagBase, cfg.meshHeight);
    field(tagBase, cfg.numGpuCus);
    field(tagBase, cfg.numCpuCores);
    field(gpu, std::uint64_t(cfg.memOrg));
    // l1* is shared between the CPU and GPU sides, so it stays base:
    // the CPU L1s carry warmed state a gpu-group delta must not touch.
    field(tagBase, cfg.l1Bytes);
    field(tagBase, cfg.l1Assoc);
    field(tagBase, cfg.l1Mshrs);
    field(tagBase, cfg.l1HitCycles);
    field(gpu, cfg.localBytes);
    field(gpu, cfg.localBanks);
    field(gpu, cfg.stashMapEntries);
    // vpMapEntries sizes the CPU TLBs too — base for the same reason.
    field(tagBase, cfg.vpMapEntries);
    field(gpu, cfg.stashChunkBytes);
    field(gpu, cfg.mapsPerThreadBlock);
    field(gpu, cfg.stashTranslationCycles);
    field(gpu, cfg.localHitCycles);
    field(gpu, cfg.stashReplicationOpt ? 1 : 0);
    // llcBanks is structural (one bank per mesh node) — base.
    field(tagBase, cfg.llcBanks);
    field(llc, cfg.llcBankBytes);
    field(llc, cfg.llcAssoc);
    field(llc, cfg.llcBankCycles);
    field(tagBase, cfg.routerCycles);
    field(tagBase, cfg.linkCycles);
    field(tagBase, cfg.nocFlitsPerCycle);
    // The memory backend's identity and every one of its knobs: a
    // checkpoint taken against one backing-store model must never
    // restore into another without the membackend delta declared.
    field(back, std::uint64_t(cfg.memBackend.kind));
    field(back, cfg.memBackend.dramCycles);
    field(back, cfg.memBackend.sttReadCycles);
    field(back, cfg.memBackend.sttWriteCycles);
    field(back, cfg.memBackend.sttWriteQueue);
    field(back, cfg.memBackend.scmCacheLines);
    field(back, cfg.memBackend.scmCacheAssoc);
    field(back, cfg.memBackend.scmHitCycles);
    field(back, cfg.memBackend.scmHitOccupancy);
    field(back, cfg.memBackend.scmReadCycles);
    field(back, cfg.memBackend.scmWriteCycles);
    field(back, cfg.memBackend.scmOccupancy);
    field(gpu, cfg.warpSize);
    field(gpu, cfg.maxResidentTbsPerCu);
    field(gpu, cfg.maxWarpsPerCu);
    field(tagBase, cfg.cpuOutstanding);
}

struct Fnv1a
{
    std::uint64_t h = 0xcbf29ce484222325ull; // FNV-1a offset basis

    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    }
};

} // namespace

std::uint64_t
snapshotConfigHash(const SystemConfig &cfg)
{
    Fnv1a f;
    walkConfigHash(cfg, [&f](int, auto v) { f.mix(std::uint64_t(v)); });
    return f.h;
}

std::uint64_t
snapshotConfigBaseHash(const SystemConfig &cfg)
{
    Fnv1a f;
    walkConfigHash(cfg, [&f](int tag, auto v) {
        if (tag == tagBase)
            f.mix(std::uint64_t(v));
    });
    return f.h;
}

std::uint64_t
snapshotConfigGroupHash(const SystemConfig &cfg, DeltaGroup g)
{
    Fnv1a f;
    walkConfigHash(cfg, [&f, g](int tag, auto v) {
        if (tag == int(g))
            f.mix(std::uint64_t(v));
    });
    return f.h;
}

const char *
deltaGroupName(DeltaGroup g)
{
    switch (g) {
      case DeltaGroup::Gpu:
        return "gpu";
      case DeltaGroup::MemBackend:
        return "membackend";
      case DeltaGroup::Llc:
        return "llc";
    }
    return "?";
}

const char *
deltaGroupFields(DeltaGroup g)
{
    switch (g) {
      case DeltaGroup::Gpu:
        return "memOrg, localBytes, localBanks, stashMapEntries, "
               "stashChunkBytes, mapsPerThreadBlock, "
               "stashTranslationCycles, localHitCycles, "
               "stashReplicationOpt, warpSize, maxResidentTbsPerCu, "
               "maxWarpsPerCu";
      case DeltaGroup::MemBackend:
        return "memBackend.kind, dramCycles, sttReadCycles, "
               "sttWriteCycles, sttWriteQueue, scmCacheLines, "
               "scmCacheAssoc, scmHitCycles, scmHitOccupancy, "
               "scmReadCycles, scmWriteCycles, scmOccupancy";
      case DeltaGroup::Llc:
        return "llcBankBytes, llcAssoc, llcBankCycles";
    }
    return "?";
}

bool
deltaGroupFromName(const std::string &name, DeltaGroup &out)
{
    for (unsigned i = 0; i < numDeltaGroups; ++i) {
        if (name == deltaGroupName(DeltaGroup(i))) {
            out = DeltaGroup(i);
            return true;
        }
    }
    return false;
}

// --- SnapshotWriter ----------------------------------------------------

void
SnapshotWriter::beginSection(const std::string &name)
{
    sim_assert(!open);
    for (const auto &s : sections)
        sim_assert(s.name != name);
    sections.push_back({name, {}});
    open = true;
}

void
SnapshotWriter::endSection()
{
    sim_assert(open);
    open = false;
}

void
SnapshotWriter::u8(std::uint8_t v)
{
    sim_assert(open);
    putU8(sections.back().payload, v);
}

void
SnapshotWriter::u32(std::uint32_t v)
{
    sim_assert(open);
    putU32(sections.back().payload, v);
}

void
SnapshotWriter::u64(std::uint64_t v)
{
    sim_assert(open);
    putU64(sections.back().payload, v);
}

void
SnapshotWriter::str(const std::string &s)
{
    sim_assert(open);
    putStr(sections.back().payload, s);
}

std::vector<std::uint8_t>
SnapshotWriter::serialize() const
{
    sim_assert(!open);
    std::vector<std::uint8_t> out;
    out.insert(out.end(), snapshotMagic.begin(), snapshotMagic.end());
    putU32(out, snapshotVersion);
    putU64(out, configHash);
    putU64(out, tick);
    putU32(out, phaseCursor);
    putStr(out, workload);
    putU32(out, std::uint32_t(sections.size()));
    for (const auto &s : sections) {
        putStr(out, s.name);
        putU64(out, s.payload.size());
        putU32(out, crc32(s.payload.data(), s.payload.size()));
    }
    putU32(out, crc32(out.data(), out.size()));
    for (const auto &s : sections)
        out.insert(out.end(), s.payload.begin(), s.payload.end());
    return out;
}

void
SnapshotWriter::writeFile(const std::string &path) const
{
    const std::vector<std::uint8_t> image = serialize();
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throw SnapshotError(headerSection, "cannot open '" + tmp +
                                               "' for writing");
    const bool ok =
        std::fwrite(image.data(), 1, image.size(), f) == image.size();
    const bool closed = std::fclose(f) == 0;
    if (!ok || !closed) {
        std::remove(tmp.c_str());
        throw SnapshotError(headerSection, "short write to '" + tmp + "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SnapshotError(headerSection,
                            "cannot rename '" + tmp + "' to '" + path + "'");
    }
}

// --- SnapshotReader ----------------------------------------------------

void
SnapshotReader::fail(const std::string &reason) const
{
    throw SnapshotError(current.empty() ? headerSection : current, reason);
}

SnapshotReader::SnapshotReader(std::vector<std::uint8_t> raw)
    : bytes(std::move(raw))
{
    // Manifest parsing with explicit bounds checks: `cursor`/`limit`
    // temporarily walk the header region.
    cursor = 0;
    limit = bytes.size();

    if (limit < snapshotMagic.size())
        fail("image truncated before magic");
    for (std::size_t i = 0; i < snapshotMagic.size(); ++i)
        if (char(bytes[i]) != snapshotMagic[i])
            fail("bad magic (not a stashsim snapshot)");
    cursor = snapshotMagic.size();

    const std::uint32_t version = u32();
    if (version != snapshotVersion)
        fail("unsupported schema version " + std::to_string(version) +
             " (this build reads version " +
             std::to_string(snapshotVersion) + ")");
    _configHash = u64();
    _tick = u64();
    _phaseCursor = u32();
    _workload = str();

    const std::uint32_t count = u32();
    std::size_t payloadBytes = 0;
    _sections.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        Section s;
        s.name = str();
        s.size = std::size_t(u64());
        s.crc = u32();
        payloadBytes += s.size;
        _sections.push_back(std::move(s));
    }

    // Header CRC covers everything up to (not including) itself.
    const std::size_t headerEnd = cursor;
    const std::uint32_t storedCrc = u32();
    if (crc32(bytes.data(), headerEnd) != storedCrc)
        fail("header CRC mismatch (corrupt manifest or section table)");

    // The section payloads must exactly fill the rest of the image, so
    // truncation and trailing garbage are both structural errors.
    if (bytes.size() - cursor != payloadBytes)
        fail("image size mismatch: header promises " +
             std::to_string(payloadBytes) + " payload bytes, found " +
             std::to_string(bytes.size() - cursor));
    std::size_t off = cursor;
    for (auto &s : _sections) {
        s.offset = off;
        off += s.size;
    }

    cursor = 0;
    limit = 0;
}

SnapshotReader
SnapshotReader::fromFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw SnapshotError(headerSection,
                            "cannot open '" + path + "' for reading");
    std::vector<std::uint8_t> raw;
    std::array<std::uint8_t, 64 * 1024> buf;
    std::size_t n;
    while ((n = std::fread(buf.data(), 1, buf.size(), f)) > 0)
        raw.insert(raw.end(), buf.begin(), buf.begin() + n);
    const bool readOk = std::ferror(f) == 0;
    std::fclose(f);
    if (!readOk)
        throw SnapshotError(headerSection, "read error on '" + path + "'");
    return SnapshotReader(std::move(raw));
}

const SnapshotReader::Section *
SnapshotReader::find(const std::string &name) const
{
    for (const auto &s : _sections)
        if (s.name == name)
            return &s;
    return nullptr;
}

bool
SnapshotReader::hasSection(const std::string &name) const
{
    return find(name) != nullptr;
}

std::vector<std::string>
SnapshotReader::sectionNames() const
{
    std::vector<std::string> names;
    names.reserve(_sections.size());
    for (const auto &s : _sections)
        names.push_back(s.name);
    return names;
}

void
SnapshotReader::checkCrc(const Section &s) const
{
    if (crc32(bytes.data() + s.offset, s.size) != s.crc)
        throw SnapshotError(s.name, "payload CRC mismatch (corrupt data)");
}

std::vector<std::uint8_t>
SnapshotReader::sectionData(const std::string &name) const
{
    const Section *s = find(name);
    if (!s)
        throw SnapshotError(name, "section missing from snapshot");
    checkCrc(*s);
    return {bytes.begin() + s->offset, bytes.begin() + s->offset + s->size};
}

void
SnapshotReader::verifyAllSections() const
{
    for (const auto &s : _sections)
        checkCrc(s);
}

void
SnapshotReader::openSection(const std::string &name)
{
    sim_assert(current.empty());
    const Section *s = find(name);
    if (!s)
        throw SnapshotError(name, "section missing from snapshot");
    checkCrc(*s);
    current = name;
    cursor = s->offset;
    limit = s->offset + s->size;
}

void
SnapshotReader::closeSection()
{
    sim_assert(!current.empty());
    if (cursor != limit)
        fail("payload not fully consumed (" +
             std::to_string(limit - cursor) +
             " bytes left; schema mismatch?)");
    current.clear();
    cursor = 0;
    limit = 0;
}

void
SnapshotReader::skipRemaining()
{
    sim_assert(!current.empty());
    cursor = limit;
}

std::uint8_t
SnapshotReader::u8()
{
    if (cursor + 1 > limit)
        fail("read past end of payload");
    return bytes[cursor++];
}

std::uint32_t
SnapshotReader::u32()
{
    if (cursor + 4 > limit)
        fail("read past end of payload");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t(bytes[cursor++]) << (8 * i);
    return v;
}

std::uint64_t
SnapshotReader::u64()
{
    if (cursor + 8 > limit)
        fail("read past end of payload");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(bytes[cursor++]) << (8 * i);
    return v;
}

std::string
SnapshotReader::str()
{
    const std::uint32_t n = u32();
    if (cursor + n > limit)
        fail("read past end of payload");
    std::string s(bytes.begin() + cursor, bytes.begin() + cursor + n);
    cursor += n;
    return s;
}

void
SnapshotReader::require(bool cond, const char *what) const
{
    if (!cond)
        fail(what);
}

} // namespace stashsim
