/**
 * @file
 * Versioned, deterministic binary checkpoint format (DESIGN.md §11).
 *
 * A snapshot is a manifest (magic, schema version, config hash, tick,
 * phase cursor, workload name) plus a table of named sections, each
 * carrying a CRC32 over its payload, followed by the concatenated
 * payloads.  Every multi-byte value is little-endian and fixed-width,
 * so a snapshot written by one run is byte-identical to one written by
 * any other run with the same state — the property the resume-parity
 * tests (tests/snapshot/) enforce mechanically.
 *
 * Readers validate the header CRC on open and each section's CRC on
 * openSection(), so truncation and bit-flips surface as a structured
 * SnapshotError naming the failing section, never as undefined
 * behavior.  Unknown sections are ignored (forward compatibility);
 * missing optional sections are discovered via hasSection().
 */

#ifndef STASHSIM_SNAPSHOT_SNAPSHOT_HH
#define STASHSIM_SNAPSHOT_SNAPSHOT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace stashsim
{

struct SystemConfig;

/** Schema version written into every snapshot manifest. */
constexpr std::uint32_t snapshotVersion = 1;

/**
 * Structured snapshot failure: which section was being processed and
 * why it is unusable.  Thrown (never UB) on truncation, CRC mismatch,
 * missing sections, over-reads, and under-consumption.
 */
class SnapshotError : public std::runtime_error
{
  public:
    SnapshotError(std::string section, std::string reason);

    /** Section being processed ("<header>" for manifest failures). */
    const std::string &section() const { return _section; }
    /** Human-readable failure cause. */
    const std::string &reason() const { return _reason; }

  private:
    std::string _section;
    std::string _reason;
};

/** IEEE CRC32 (reflected, 0xEDB88320) over @p n bytes. */
std::uint32_t crc32(const void *data, std::size_t n);

/**
 * Hash of every SystemConfig field that shapes simulated state.
 * `shards` is deliberately excluded — serial and sharded engines are
 * byte-identical by contract, so a serially-taken checkpoint may be
 * restored under any shard count — as is `verify`, whose instruments
 * contribute only an optional snapshot section.
 */
std::uint64_t snapshotConfigHash(const SystemConfig &cfg);

/**
 * Measured-region delta groups (DESIGN.md §17): named sets of
 * SystemConfig fields a sampled-simulation restore may legally change
 * relative to the warmed checkpoint, each with its own sub-hash.
 * Every field outside all groups is "base"; a base mismatch is always
 * fatal at restore.
 */
enum class DeltaGroup : unsigned
{
    Gpu = 0,        //!< GPU-side organization/geometry/timing
    MemBackend = 1, //!< backing-store model identity + every knob
    Llc = 2,        //!< LLC bank geometry and access latency
};

constexpr unsigned numDeltaGroups = 3;

/** Bitmask over DeltaGroup; bit i set = group i declared changeable. */
using DeltaMask = std::uint32_t;

constexpr DeltaMask
deltaBit(DeltaGroup g)
{
    return DeltaMask(1) << unsigned(g);
}

constexpr DeltaMask
deltaMaskAll()
{
    return (DeltaMask(1) << numDeltaGroups) - 1;
}

/** Stable lowercase group name ("gpu", "membackend", "llc"). */
const char *deltaGroupName(DeltaGroup g);
/** Comma-separated SystemConfig field names covered by group @p g. */
const char *deltaGroupFields(DeltaGroup g);
/** Parses a deltaGroupName(); returns false when unknown. */
bool deltaGroupFromName(const std::string &name, DeltaGroup &out);

/** snapshotConfigHash() restricted to fields outside every group. */
std::uint64_t snapshotConfigBaseHash(const SystemConfig &cfg);
/** snapshotConfigHash() restricted to the fields of group @p g. */
std::uint64_t snapshotConfigGroupHash(const SystemConfig &cfg,
                                      DeltaGroup g);

/**
 * Accumulates named sections of typed little-endian values and
 * serializes them behind a manifest + CRC-carrying section table.
 */
class SnapshotWriter
{
  public:
    /** @{ Manifest fields; set before serialize(). */
    std::uint64_t configHash = 0;
    Tick tick = 0;
    std::uint32_t phaseCursor = 0;
    std::string workload;
    /** @} */

    /** Opens a new section; names must be unique per snapshot. */
    void beginSection(const std::string &name);
    /** Closes the currently open section. */
    void endSection();

    /** @{ Typed appends into the open section. */
    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void b(bool v) { u8(v ? 1 : 0); }
    void str(const std::string &s);
    /** @} */

    /** Renders the complete snapshot image. */
    std::vector<std::uint8_t> serialize() const;

    /**
     * Writes serialize() to @p path atomically (temp file + rename),
     * so a crash mid-write can never leave a half-written snapshot
     * under the final name.  Throws SnapshotError on I/O failure.
     */
    void writeFile(const std::string &path) const;

  private:
    struct Section
    {
        std::string name;
        std::vector<std::uint8_t> payload;
    };

    std::vector<Section> sections;
    bool open = false;
};

/**
 * Parses a snapshot image.  The constructor validates the magic,
 * schema version, section-table geometry (the payload sizes must
 * exactly account for the image size), and the header CRC;
 * openSection() validates the per-section payload CRC.
 */
class SnapshotReader
{
  public:
    /** Parses @p bytes; throws SnapshotError if the image is invalid. */
    explicit SnapshotReader(std::vector<std::uint8_t> bytes);

    /** Reads and parses @p path; throws SnapshotError on failure. */
    static SnapshotReader fromFile(const std::string &path);

    /** @{ Manifest accessors. */
    std::uint64_t configHash() const { return _configHash; }
    Tick tick() const { return _tick; }
    std::uint32_t phaseCursor() const { return _phaseCursor; }
    const std::string &workload() const { return _workload; }
    /** @} */

    /** True when the snapshot carries section @p name. */
    bool hasSection(const std::string &name) const;
    /** Section names in on-disk order. */
    std::vector<std::string> sectionNames() const;
    /** Raw payload bytes of section @p name (CRC-checked). */
    std::vector<std::uint8_t> sectionData(const std::string &name) const;

    /** CRC-checks every section payload; throws on the first bad one. */
    void verifyAllSections() const;

    /**
     * Positions the read cursor at the start of section @p name.
     * Throws SnapshotError when missing or when the payload CRC does
     * not match the section table.
     */
    void openSection(const std::string &name);

    /**
     * Ends the section opened by openSection(); throws when the
     * payload was not fully consumed (a schema drift guard).
     */
    void closeSection();

    /** @{ Typed reads; throw SnapshotError on payload over-read. */
    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    bool b() { return u8() != 0; }
    std::string str();
    /** @} */

    /**
     * Discards the unread remainder of the open section, so
     * closeSection() succeeds without interpreting it.  For restores
     * that deliberately drop a component's saved state (e.g. a
     * cold-structure restore under a declared config delta).
     */
    void skipRemaining();

    /** Throws SnapshotError(@e current section, @p what) when !cond. */
    void require(bool cond, const char *what) const;

  private:
    struct Section
    {
        std::string name;
        std::size_t offset = 0; //!< into bytes
        std::size_t size = 0;
        std::uint32_t crc = 0;
    };

    const Section *find(const std::string &name) const;
    void checkCrc(const Section &s) const;
    [[noreturn]] void fail(const std::string &reason) const;

    std::vector<std::uint8_t> bytes;
    std::vector<Section> _sections;
    std::uint64_t _configHash = 0;
    Tick _tick = 0;
    std::uint32_t _phaseCursor = 0;
    std::string _workload;

    std::string current; //!< open section name ("" when none)
    std::size_t cursor = 0;
    std::size_t limit = 0;
};

/** @{
 * Stats-struct (de)serialization driven by the struct's own visit()
 * enumeration, so a new counter is picked up automatically — and, by
 * the same token, changes the snapshot payload layout (bump
 * snapshotVersion when that matters across versions).
 */
template <class S>
void
writeStats(SnapshotWriter &w, const S &s)
{
    S::visit(s, [&w](const char *, const Counter &c) { w.u64(c); });
}

template <class S>
void
readStats(SnapshotReader &r, S &s)
{
    S::visit(s, [&r](const char *, Counter &c) { c = r.u64(); });
}

inline void
writeSystemStats(SnapshotWriter &w, const SystemStats &s)
{
    SystemStats::visitGroups(
        s, [&w](const char *, const auto &g) { writeStats(w, g); });
    w.u64(s.gpuCycles);
    w.u64(s.numGpuCus);
}

inline void
readSystemStats(SnapshotReader &r, SystemStats &s)
{
    SystemStats::visitGroups(
        s, [&r](const char *, auto &g) { readStats(r, g); });
    s.gpuCycles = r.u64();
    s.numGpuCus = r.u64();
}
/** @} */

} // namespace stashsim

#endif // STASHSIM_SNAPSHOT_SNAPSHOT_HH
