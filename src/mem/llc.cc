#include "mem/llc.hh"

#include <algorithm>
#include <array>
#include <tuple>

#include "sim/log.hh"
#include "snapshot/snapshot.hh"

namespace stashsim
{

namespace
{

/**
 * Per-(owner, unit, map index) word-mask aggregation for directory
 * actions (forwards, invalidations).  A line has wordsPerLine words,
 * so there are at most wordsPerLine distinct groups — a fixed array
 * with linear probing beats a node-based std::map on this hot path
 * by a wide margin (typical group count is 1 or 2).  Emission is
 * sorted into the old std::map key order so the message sequence —
 * and therefore the simulated event order — is byte-for-byte
 * unchanged.
 */
class OwnerGroups
{
  public:
    struct Group
    {
        CoreId owner;
        bool isStash;
        unsigned mapIdx;
        WordMask mask;
    };

    void
    add(CoreId owner, bool is_stash, unsigned map_idx, WordMask bit)
    {
        for (unsigned i = 0; i < n; ++i) {
            Group &g = groups[i];
            if (g.owner == owner && g.isStash == is_stash &&
                g.mapIdx == map_idx) {
                g.mask |= bit;
                return;
            }
        }
        groups[n++] = Group{owner, is_stash, map_idx, bit};
    }

    /** Visits groups in (owner, isStash, mapIdx) order. */
    template <class F>
    void
    forEachSorted(F &&f)
    {
        std::sort(groups.begin(), groups.begin() + n,
                  [](const Group &a, const Group &b) {
                      return std::tie(a.owner, a.isStash, a.mapIdx) <
                             std::tie(b.owner, b.isStash, b.mapIdx);
                  });
        for (unsigned i = 0; i < n; ++i)
            f(groups[i]);
    }

  private:
    std::array<Group, wordsPerLine> groups;
    unsigned n = 0;
};

} // namespace

LlcBank::LlcBank(EventQueue &eq, Fabric &fabric, MemBackend &backend,
                 NodeId node, const Params &p)
    : eq(eq), fabric(fabric), backend(backend), node(node), params(p),
      sets(p.bankBytes / (lineBytes * p.assoc)), lines(sets * p.assoc)
{
    sim_assert(sets > 0 && (sets & (sets - 1)) == 0);
}

unsigned
LlcBank::setIndex(PhysAddr pa) const
{
    // Banks interleave at line granularity across nodes; the bits
    // above the bank selector index the set within the bank.
    return unsigned((pa / lineBytes / 16) & (sets - 1));
}

LlcBank::Line *
LlcBank::findLine(PhysAddr line_pa)
{
    Line *base = &lines[setIndex(line_pa) * params.assoc];
    for (unsigned w = 0; w < params.assoc; ++w) {
        if (base[w].allocated && base[w].pa == line_pa)
            return &base[w];
    }
    return nullptr;
}

LlcBank::Line *
LlcBank::allocLine(PhysAddr line_pa)
{
    Line *base = &lines[setIndex(line_pa) * params.assoc];
    Line *victim = nullptr;
    for (unsigned w = 0; w < params.assoc; ++w) {
        Line &l = base[w];
        if (!l.allocated) {
            victim = &l;
            break;
        }
        if (l.fillPending)
            continue;
        if (l.inService > 0) {
            // A request accepted this line and its bank access is in
            // flight; evicting it now would break the accept/serve
            // invariant process() relies on.
            continue;
        }
        bool has_registered = false;
        for (const WordEntry &we : l.words) {
            if (we.state == WordState::Registered) {
                has_registered = true;
                break;
            }
        }
        if (has_registered)
            continue; // never evict the registry's only pointer
        if (!victim || l.lastUse < victim->lastUse)
            victim = &l;
    }
    if (!victim) {
        panic("LLC bank ", node, ": set full of registered lines; the "
              "workload working set exceeds what this model supports");
    }
    if (victim->allocated) {
        if (victim->dirty) {
            LineData d;
            WordMask m = 0;
            for (unsigned w = 0; w < wordsPerLine; ++w) {
                d.w[w] = victim->words[w].data;
                m |= wordBit(w);
            }
            backend.writeLine(victim->pa, m, d);
            ++_stats.memWrites;
        }
    }
    victim->allocated = true;
    victim->pa = line_pa;
    victim->words.fill(WordEntry{});
    victim->dirty = false;
    victim->lastUse = ++useClock;
    victim->fillPending = false;
    victim->waiting.clear();
    victim->inService = 0;
    return victim;
}

void
LlcBank::receive(const Msg &msg)
{
    Line *line = findLine(msg.linePA);
    if (line && line->fillPending) {
        line->waiting.push_back(msg);
        return;
    }
    if (!line) {
        line = allocLine(msg.linePA);
        line->fillPending = true;
        line->waiting.push_back(msg);
        const PhysAddr pa = msg.linePA;
        // The backend completes with the memory image as of the
        // completion tick and charges its own model's latency
        // (fillPending lines are never victims, so the line is still
        // here when the fill lands).
        backend.readLine(pa, [this, pa](const LineData &d) {
            Line *l = findLine(pa);
            sim_assert(l && l->fillPending);
            for (unsigned w = 0; w < wordsPerLine; ++w) {
                l->words[w].state = WordState::Valid;
                l->words[w].data = d.w[w];
            }
            l->fillPending = false;
            ++_stats.fills;
            std::vector<Msg> pending;
            pending.swap(l->waiting);
            for (const Msg &m : pending)
                process(m);
        });
        return;
    }
    process(msg);
}

void
LlcBank::process(const Msg &msg)
{
    // Bank access latency, then serve.  The line cannot be evicted
    // between accept and serve: marking it in-service takes it out of
    // allocLine()'s victim pool (a concurrent fill allocation in the
    // same set would otherwise be able to evict it while its lastUse
    // is still stale).  The serve callback asserts the invariant.
    {
        Line *accepted = findLine(msg.linePA);
        sim_assert(accepted && !accepted->fillPending);
        ++accepted->inService;
    }
    Msg m = msg;
    eq.scheduleIn(params.accessCycles * params.clockPeriod, [this, m]() {
        Line *line = findLine(m.linePA);
        sim_assert(line && line->inService > 0);
        --line->inService;
        line->lastUse = ++useClock;
        ++_stats.accesses;
        switch (m.type) {
          case MsgType::ReadReq:
          case MsgType::FwdRetry:
          case MsgType::DmaReadReq:
            serveRead(m, *line);
            break;
          case MsgType::RegReq:
            serveReg(m, *line);
            break;
          case MsgType::WbReq:
          case MsgType::DmaWriteReq:
            serveWb(m, *line);
            break;
          default:
            panic("LLC received unexpected ", msgTypeName(m.type));
        }
    });
}

void
LlcBank::serveRead(const Msg &msg, Line &line)
{
    ++_stats.reads;
    if (tracePA(msg.linePA) && msg.retries < 3) {
        inform("LLC Read pa=0x", std::hex, msg.linePA, std::dec,
               " mask=0x", std::hex, msg.mask, std::dec, " from core ",
               msg.requester, " retries ", unsigned(msg.retries),
               " w0state=", wordStateName(line.words[0].state),
               " w0owner=", line.words[0].owner, " w0idx=",
               unsigned(line.words[0].mapIdx));
    }

    // Forward demanded words that are registered elsewhere, grouped
    // by (owner, unit, map index).
    OwnerGroups fwd;
    WordMask remote = 0;
    for (unsigned w = 0; w < wordsPerLine; ++w) {
        if (!(msg.mask & wordBit(w)))
            continue;
        const WordEntry &we = line.words[w];
        if (we.state != WordState::Registered)
            continue;
        // The owner may be the requester itself: a stash re-reading,
        // under a new mapping, data its older mapping still owns, or
        // an L1 racing its own eviction's writeback.  Forward anyway;
        // the owner serves from the registered location or bounces a
        // retry that lands after the writeback.
        fwd.add(we.owner, we.ownerIsStash, we.mapIdx, wordBit(w));
        remote |= wordBit(w);
    }

    fwd.forEachSorted([&](const OwnerGroups::Group &g) {
        ++_stats.remoteForwards;
        Msg f;
        f.type = MsgType::FwdReadReq;
        f.requester = msg.requester;
        f.requesterUnit = msg.requesterUnit;
        f.linePA = msg.linePA;
        f.mask = g.mask;
        f.stashMapIdx = std::uint8_t(g.mapIdx);
        f.retries = msg.retries;
        fabric.send(node, fabric.nodeOfCore(g.owner),
                    g.isStash ? Unit::Stash : Unit::L1, std::move(f));
    });

    // Respond with what the LLC holds: exactly the demanded words for
    // word-granularity requesters (stash/DMA), the whole line's valid
    // words for cache fills.
    WordMask resp_mask = 0;
    LineData d;
    for (unsigned w = 0; w < wordsPerLine; ++w) {
        const WordEntry &we = line.words[w];
        if (we.state != WordState::Valid)
            continue;
        if (msg.wordsOnly && !(msg.mask & wordBit(w)))
            continue;
        resp_mask |= wordBit(w);
        d.w[w] = we.data;
    }
    if (resp_mask) {
        Msg resp;
        resp.type = msg.type == MsgType::DmaReadReq ? MsgType::DmaReadResp
                                                    : MsgType::ReadResp;
        resp.requester = msg.requester;
        resp.requesterUnit = msg.requesterUnit;
        resp.linePA = msg.linePA;
        resp.mask = resp_mask;
        resp.data = d;
        fabric.sendToRequester(node, resp);
    }
}

void
LlcBank::serveReg(const Msg &msg, Line &line)
{
    if (tracePA(msg.linePA)) {
        inform("LLC RegReq pa=0x", std::hex, msg.linePA, std::dec,
               " mask=0x", std::hex, msg.mask, std::dec, " from core ",
               msg.requester, msg.ownerIsStash ? " (stash idx " : " (L1",
               msg.ownerIsStash ? std::to_string(msg.stashMapIdx) : "",
               ")");
    }
    // Invalidate previous owners (single-owner transfer, the DeNovo
    // analogue of ownership stealing), grouped per old owner.
    OwnerGroups inv;
    for (unsigned w = 0; w < wordsPerLine; ++w) {
        if (!(msg.mask & wordBit(w)))
            continue;
        WordEntry &we = line.words[w];
        if (we.state == WordState::Registered &&
            (we.owner != msg.requester ||
             we.ownerIsStash != msg.ownerIsStash)) {
            inv.add(we.owner, we.ownerIsStash, we.mapIdx, wordBit(w));
        }
        we.state = WordState::Registered;
        we.owner = msg.requester;
        we.ownerIsStash = msg.ownerIsStash;
        we.mapIdx = msg.stashMapIdx;
        ++_stats.registrations;
    }
    line.dirty = true;

    inv.forEachSorted([&](const OwnerGroups::Group &g) {
        ++_stats.invalidationsSent;
        Msg i;
        i.type = MsgType::InvReq;
        i.requester = g.owner;
        i.requesterUnit = g.isStash ? Unit::Stash : Unit::L1;
        i.linePA = msg.linePA;
        i.mask = g.mask;
        i.stashMapIdx = std::uint8_t(g.mapIdx);
        fabric.send(node, fabric.nodeOfCore(g.owner),
                    g.isStash ? Unit::Stash : Unit::L1, std::move(i));
    });

    Msg ack;
    ack.type = MsgType::RegAck;
    ack.requester = msg.requester;
    ack.requesterUnit = msg.requesterUnit;
    ack.linePA = msg.linePA;
    ack.mask = msg.mask;
    fabric.sendToRequester(node, ack);
}

void
LlcBank::serveWb(const Msg &msg, Line &line)
{
    if (tracePA(msg.linePA)) {
        inform("LLC Wb pa=0x", std::hex, msg.linePA, std::dec,
               " mask=0x", std::hex, msg.mask, std::dec, " from core ",
               msg.requester, " unit ",
               msg.requesterUnit == Unit::Stash ? "stash" : "l1/dma");
    }
    const bool is_dma = msg.type == MsgType::DmaWriteReq;
    OwnerGroups inv;
    for (unsigned w = 0; w < wordsPerLine; ++w) {
        if (!(msg.mask & wordBit(w)))
            continue;
        WordEntry &we = line.words[w];
        if (we.state == WordState::Registered &&
            (we.owner != msg.requester ||
             we.ownerIsStash != (msg.requesterUnit == Unit::Stash))) {
            if (!is_dma) {
                // Stale writeback: registration has moved on.
                continue;
            }
            // A DMA store is a real store: it takes the word from its
            // previous owner (whose copy is now stale).
            inv.add(we.owner, we.ownerIsStash, we.mapIdx, wordBit(w));
        }
        we.state = WordState::Valid;
        we.data = msg.data.w[w];
        we.owner = invalidCore;
        we.ownerIsStash = false;
        ++_stats.writebacksRecv;
    }
    line.dirty = true;

    inv.forEachSorted([&](const OwnerGroups::Group &g) {
        ++_stats.invalidationsSent;
        Msg i;
        i.type = MsgType::InvReq;
        i.requester = g.owner;
        i.requesterUnit = g.isStash ? Unit::Stash : Unit::L1;
        i.linePA = msg.linePA;
        i.mask = g.mask;
        i.stashMapIdx = std::uint8_t(g.mapIdx);
        fabric.send(node, fabric.nodeOfCore(g.owner),
                    g.isStash ? Unit::Stash : Unit::L1, std::move(i));
    });

    Msg ack;
    ack.type = is_dma ? MsgType::DmaWriteAck : MsgType::WbAck;
    ack.requester = msg.requester;
    ack.requesterUnit = msg.requesterUnit;
    ack.linePA = msg.linePA;
    ack.mask = msg.mask;
    fabric.sendToRequester(node, ack);
}

void
LlcBank::flushDirtyToMemory()
{
    for (Line &line : lines) {
        if (!line.allocated || !line.dirty)
            continue;
        LineData d;
        WordMask m = 0;
        for (unsigned w = 0; w < wordsPerLine; ++w) {
            if (line.words[w].state == WordState::Valid) {
                d.w[w] = line.words[w].data;
                m |= wordBit(w);
            }
        }
        if (m)
            backend.writeLineFunctional(line.pa, m, d);
        line.dirty = false;
    }
}

void
LlcBank::forEachDirectoryWord(
    const std::function<void(PhysAddr, WordState, std::uint32_t, CoreId,
                             bool, unsigned)> &fn) const
{
    for (const Line &line : lines) {
        if (!line.allocated || line.fillPending)
            continue;
        for (unsigned w = 0; w < wordsPerLine; ++w) {
            const WordEntry &we = line.words[w];
            fn(line.pa + PhysAddr(w) * wordBytes, we.state, we.data,
               we.owner, we.ownerIsStash, we.mapIdx);
        }
    }
}

std::size_t
LlcBank::pendingFillLines() const
{
    std::size_t n = 0;
    for (const Line &line : lines)
        n += line.allocated && line.fillPending ? 1 : 0;
    return n;
}

CoreId
LlcBank::ownerOf(PhysAddr pa)
{
    Line *line = findLine(lineBase(pa));
    if (!line)
        return invalidCore;
    const WordEntry &we = line->words[lineWord(pa)];
    return we.state == WordState::Registered ? we.owner : invalidCore;
}

void
LlcBank::snapshot(SnapshotWriter &w) const
{
    w.u32(sets);
    w.u32(params.assoc);
    w.u64(useClock);
    writeStats(w, _stats);
    std::uint32_t allocated = 0;
    for (const Line &line : lines)
        allocated += line.allocated ? 1 : 0;
    w.u32(allocated);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const Line &line = lines[i];
        if (!line.allocated)
            continue;
        // Drain points have no fill in flight, no parked requests,
        // and no bank access between accept and serve.
        sim_assert(!line.fillPending);
        sim_assert(line.waiting.empty());
        sim_assert(line.inService == 0);
        w.u32(std::uint32_t(i));
        w.u64(line.pa);
        w.b(line.dirty);
        w.u64(line.lastUse);
        for (const WordEntry &we : line.words) {
            w.u8(std::uint8_t(we.state));
            w.u32(we.data);
            w.u32(we.owner);
            w.b(we.ownerIsStash);
            w.u8(we.mapIdx);
        }
    }
}

void
LlcBank::restore(SnapshotReader &r, bool remap)
{
    const std::uint32_t savedSets = r.u32();
    const std::uint32_t savedAssoc = r.u32();
    if (!remap) {
        r.require(savedSets == sets, "LLC set count mismatch");
        r.require(savedAssoc == params.assoc,
                  "LLC associativity mismatch");
    }
    useClock = r.u64();
    readStats(r, _stats);
    lines.assign(lines.size(), Line{});
    const std::uint32_t allocated = r.u32();
    for (std::uint32_t k = 0; k < allocated; ++k) {
        const std::uint32_t savedIdx = r.u32();
        r.require(savedIdx < savedSets * savedAssoc,
                  "LLC line index out of range");
        const PhysAddr pa = r.u64();
        Line *line;
        if (remap) {
            // Declared geometry delta: re-derive the set from the
            // line's address under the live geometry and take a free
            // way there.  Relative lastUse order is preserved, so the
            // LRU ordering of lines that land in the same new set is
            // the warmed one.
            Line *base = &lines[setIndex(pa) * params.assoc];
            line = nullptr;
            for (unsigned w = 0; w < params.assoc; ++w) {
                if (!base[w].allocated) {
                    line = &base[w];
                    break;
                }
            }
            r.require(line != nullptr,
                      "LLC geometry delta: warmed footprint "
                      "overflows a set of the new geometry");
        } else {
            r.require(savedIdx < lines.size(),
                      "LLC line index out of range");
            line = &lines[savedIdx];
            r.require(!line->allocated, "duplicate LLC line index");
        }
        line->allocated = true;
        line->pa = pa;
        line->dirty = r.b();
        line->lastUse = r.u64();
        for (WordEntry &we : line->words) {
            const std::uint8_t st = r.u8();
            r.require(st <= std::uint8_t(WordState::Registered),
                      "bad word state");
            we.state = WordState(st);
            we.data = r.u32();
            we.owner = r.u32();
            we.ownerIsStash = r.b();
            we.mapIdx = r.u8();
        }
    }
}

} // namespace stashsim
