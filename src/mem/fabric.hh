/**
 * @file
 * Fabric: routes coherence messages between memory objects over the
 * mesh.
 *
 * Every coherence participant (L1 cache, stash, LLC bank, DMA engine)
 * implements MemObject and registers itself under a (node, unit)
 * address.  The Fabric computes message sizes and traffic classes,
 * hands packets to the Mesh for timing, and delivers them to the
 * destination object's receive() method.  It also owns the address
 * interleaving of the NUCA LLC (line-granularity, bank = line % 16,
 * one bank per node, per Table 2).
 */

#ifndef STASHSIM_MEM_FABRIC_HH
#define STASHSIM_MEM_FABRIC_HH

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <vector>

#include "mem/coherence/msg.hh"
#include "noc/mesh.hh"
#include "sim/types.hh"

namespace stashsim
{

class FaultInjector;

/**
 * Interface for anything that can receive coherence messages.
 */
class MemObject
{
  public:
    virtual ~MemObject() = default;

    /** Handles an arriving message. */
    virtual void receive(const Msg &msg) = 0;
};

/**
 * Message router: (node, unit) addressing on top of the Mesh.
 */
class Fabric
{
  public:
    explicit Fabric(Mesh &mesh) : mesh(mesh) {}

    /** Registers @p obj as the @p unit at @p node. */
    void registerObject(NodeId node, Unit unit, MemObject *obj);

    /** Records that core @p core lives at mesh node @p node. */
    void registerCore(CoreId core, NodeId node);

    /** Mesh node of core @p core. */
    NodeId nodeOfCore(CoreId core) const;

    /** Mesh node holding the LLC bank for line @p line_pa. */
    NodeId
    nodeOfLlc(PhysAddr line_pa) const
    {
        return NodeId((line_pa / lineBytes) % mesh.numNodes());
    }

    /** Sends @p msg from @p src to the @p unit at @p dst. */
    void send(NodeId src, NodeId dst, Unit unit, Msg msg);

    /** Convenience: sends a response back to the original requester. */
    void
    sendToRequester(NodeId src, const Msg &msg)
    {
        send(src, nodeOfCore(msg.requester), msg.requesterUnit, msg);
    }

    /** Routes every subsequent message through @p inj (may be null). */
    void setFaultInjector(FaultInjector *inj) { injector = inj; }

    /**
     * Test-only message filter: messages for which it returns true
     * are silently dropped (used to seed protocol bugs on purpose).
     */
    using DropFilter =
        std::function<bool(NodeId src, NodeId dst, const Msg &msg)>;
    void setTestDropFilter(DropFilter f) { dropFilter = std::move(f); }

    /** Messages of type @p t sent but not yet delivered. */
    std::uint64_t
    inFlight(MsgType t) const
    {
        return _sent[unsigned(t)] - _delivered[unsigned(t)];
    }

    /** Total messages sent but not yet delivered. */
    std::uint64_t totalInFlight() const;

    /** Writes the per-type in-flight table (watchdog diagnostics). */
    void dumpState(std::ostream &os) const;

  private:
    /** Hands one (possibly perturbed) message to the mesh. */
    void dispatch(NodeId src, NodeId dst, MemObject *target, Msg msg);

    Mesh &mesh;
    std::map<std::pair<NodeId, unsigned>, MemObject *> objects;
    std::vector<NodeId> coreNodes;

    FaultInjector *injector = nullptr;
    DropFilter dropFilter;
    std::uint64_t droppedMsgs = 0;
    std::array<std::uint64_t, numMsgTypes> _sent{};
    std::array<std::uint64_t, numMsgTypes> _delivered{};
};

} // namespace stashsim

#endif // STASHSIM_MEM_FABRIC_HH
