/**
 * @file
 * Fabric: routes coherence messages between memory objects over the
 * mesh.
 *
 * Every coherence participant (L1 cache, stash, LLC bank, DMA engine)
 * implements MemObject and registers itself under a (node, unit)
 * address.  The Fabric computes message sizes and traffic classes,
 * hands packets to the Mesh for timing, and delivers them to the
 * destination object's receive() method.  It also owns the address
 * interleaving of the NUCA LLC (line-granularity, bank = line % 16,
 * one bank per node, per Table 2).
 */

#ifndef STASHSIM_MEM_FABRIC_HH
#define STASHSIM_MEM_FABRIC_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <vector>

#include "mem/coherence/msg.hh"
#include "noc/mesh.hh"
#include "sim/types.hh"

namespace stashsim
{

class FaultInjector;

/**
 * Interface for anything that can receive coherence messages.
 */
class MemObject
{
  public:
    virtual ~MemObject() = default;

    /** Handles an arriving message. */
    virtual void receive(const Msg &msg) = 0;
};

/**
 * Message router: (node, unit) addressing on top of the Mesh.
 */
class Fabric
{
  public:
    explicit Fabric(Mesh &mesh) : mesh(mesh) {}

    /** Registers @p obj as the @p unit at @p node. */
    void registerObject(NodeId node, Unit unit, MemObject *obj);

    /** Records that core @p core lives at mesh node @p node. */
    void registerCore(CoreId core, NodeId node);

    /** Mesh node of core @p core. */
    NodeId nodeOfCore(CoreId core) const;

    /** Mesh node holding the LLC bank for line @p line_pa. */
    NodeId
    nodeOfLlc(PhysAddr line_pa) const
    {
        return NodeId((line_pa / lineBytes) % mesh.numNodes());
    }

    /** Sends @p msg from @p src to the @p unit at @p dst. */
    void send(NodeId src, NodeId dst, Unit unit, Msg msg);

    /**
     * Binds the per-node event queues and switches sends to the
     * canonical deferred path: a send is staged in a per-source
     * mailbox at the sender's current tick, and flushStaged() later
     * routes every staged message in canonical (tick, src-node,
     * per-src order) order.  Routing order is what channel
     * reservations (and therefore packet timing) depend on, so
     * fixing it canonically makes serial and sharded runs take
     * identical reservations — the heart of the cross-mode
     * determinism contract (DESIGN.md section 10).
     *
     * In serial mode (@p sharded false) every entry of @p queues is
     * the same queue and the Fabric keeps itself flushed by
     * scheduling a PriInternal event at each staging tick.  In
     * sharded mode the engine calls flushStaged() at every quantum
     * barrier instead.  An unbound Fabric (unit tests) routes
     * immediately at send time.
     */
    void bindQueues(std::vector<EventQueue *> queues, bool sharded);

    /**
     * Routes and schedules every staged message in canonical order.
     * Single-threaded: runs at a tick boundary (serial) or a quantum
     * barrier with all shard workers parked (sharded).
     */
    void flushStaged();

    /** Convenience: sends a response back to the original requester. */
    void
    sendToRequester(NodeId src, const Msg &msg)
    {
        send(src, nodeOfCore(msg.requester), msg.requesterUnit, msg);
    }

    /** Routes every subsequent message through @p inj (may be null). */
    void setFaultInjector(FaultInjector *inj) { injector = inj; }

    /**
     * Test-only message filter: messages for which it returns true
     * are silently dropped (used to seed protocol bugs on purpose).
     */
    using DropFilter =
        std::function<bool(NodeId src, NodeId dst, const Msg &msg)>;
    void setTestDropFilter(DropFilter f) { dropFilter = std::move(f); }

    /** Messages of type @p t sent but not yet delivered. */
    std::uint64_t
    inFlight(MsgType t) const
    {
        return _sent[unsigned(t)].load(std::memory_order_relaxed) -
               _delivered[unsigned(t)].load(std::memory_order_relaxed);
    }

    /** Total messages sent but not yet delivered. */
    std::uint64_t totalInFlight() const;

    /** Writes the per-type in-flight table (watchdog diagnostics). */
    void dumpState(std::ostream &os) const;

    /** True when no staged message awaits a flush (drain invariant). */
    bool stagedEmpty() const;

    /** @{ Flush-path counters (tests + perf triage).  A flush with
     * nothing staged counts in none of them; the three path counters
     * partition flushCount(). */
    std::uint64_t flushCount() const { return _flushes; }
    std::uint64_t flushSingleSource() const { return _flushSingleSource; }
    std::uint64_t flushUniformTick() const { return _flushUniformTick; }
    std::uint64_t flushMerged() const { return _flushMerged; }
    /** Defensive fallback: per-source ticks arrived out of order. */
    std::uint64_t flushResorted() const { return _flushResorted; }
    /** @} */

    /**
     * Serializes the sent/delivered counters.  Structural state
     * (object registrations, bound queues) is rebuilt by constructing
     * the System; staged mailboxes are empty at every drain point and
     * the serial-mode flush arm always resolves within the staging
     * tick, so neither needs serializing.
     */
    void snapshot(SnapshotWriter &w) const;

    /** Restores the counters from a checkpoint. */
    void restore(SnapshotReader &r);

  private:
    /** One staged (sent, not yet routed) message. */
    struct Staged
    {
        Tick tick; //!< sender's tick at send time
        NodeId dst;
        MemObject *target;
        Msg msg;
    };

    /** Hands one (possibly perturbed) message to the send path. */
    void dispatch(NodeId src, NodeId dst, MemObject *target, Msg msg);

    /** Routes one staged message and schedules its delivery. */
    void deliverStaged(NodeId src, Staged &e);

    /** Serial mode: ensures a flush event is pending for tick @p t. */
    void armFlush(Tick t);

    Mesh &mesh;
    std::map<std::pair<NodeId, unsigned>, MemObject *> objects;
    std::vector<NodeId> coreNodes;

    /**
     * One source node's staging arena.  The entries vector is a bump
     * arena in the allocator sense: cleared (not deallocated) at
     * every flush, so after warm-up a quantum's staging does no heap
     * allocation at all — messages bump-append into retained
     * capacity.  `ordered` tracks whether ticks are non-decreasing in
     * staging order; a source's queue time never runs backwards, so
     * it stays true in practice and flushStaged() can merge the
     * mailboxes without sorting (DESIGN.md section 16).
     */
    struct Mailbox
    {
        std::vector<Staged> entries;
        bool ordered = true;
    };

    /** Empty until bindQueues(): immediate (legacy) send path. */
    std::vector<EventQueue *> tileQueues;
    bool shardedMode = false;
    std::vector<Mailbox> staged; //!< per source node

    static constexpr Tick noFlush = ~Tick{0};
    Tick flushArmedFor = noFlush;

    /** Merge scratch (one cursor per source); capacity retained. */
    std::vector<std::size_t> cursors;

    std::uint64_t _flushes = 0;
    std::uint64_t _flushSingleSource = 0;
    std::uint64_t _flushUniformTick = 0;
    std::uint64_t _flushMerged = 0;
    std::uint64_t _flushResorted = 0;

    FaultInjector *injector = nullptr;
    DropFilter dropFilter;
    std::uint64_t droppedMsgs = 0;
    /**
     * Commutative counters, atomic because sharded tiles send and
     * receive concurrently; totals are order-independent.
     */
    std::array<std::atomic<std::uint64_t>, numMsgTypes> _sent{};
    std::array<std::atomic<std::uint64_t>, numMsgTypes> _delivered{};
};

} // namespace stashsim

#endif // STASHSIM_MEM_FABRIC_HH
