#include "mem/main_memory.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/log.hh"
#include "snapshot/snapshot.hh"

namespace stashsim
{

MainMemory::MainMemory()
{
    // Typical quick-scale working sets touch a few hundred lines;
    // reserving up front keeps the hot-path inserts rehash-free.
    for (Stripe &s : stripes)
        s.lines.reserve(64);
}

LineData
MainMemory::readLine(PhysAddr line_pa) const
{
    sim_assert(line_pa % lineBytes == 0);
    Stripe &s = stripeOf(line_pa);
    std::lock_guard<std::mutex> g(s.mu);
    auto it = s.lines.find(line_pa);
    return it == s.lines.end() ? LineData{} : it->second;
}

void
MainMemory::writeLine(PhysAddr line_pa, WordMask mask, const LineData &d)
{
    sim_assert(line_pa % lineBytes == 0);
    Stripe &s = stripeOf(line_pa);
    std::lock_guard<std::mutex> g(s.mu);
    LineData &line = s.lines[line_pa];
    for (unsigned w = 0; w < wordsPerLine; ++w) {
        if (mask & wordBit(w))
            line.w[w] = d.w[w];
    }
}

std::uint32_t
MainMemory::readWord(PhysAddr pa) const
{
    sim_assert(pa % wordBytes == 0);
    const PhysAddr line_pa = lineBase(pa);
    Stripe &s = stripeOf(line_pa);
    std::lock_guard<std::mutex> g(s.mu);
    auto it = s.lines.find(line_pa);
    return it == s.lines.end() ? 0 : it->second.w[lineWord(pa)];
}

void
MainMemory::writeWord(PhysAddr pa, std::uint32_t value)
{
    sim_assert(pa % wordBytes == 0);
    const PhysAddr line_pa = lineBase(pa);
    Stripe &s = stripeOf(line_pa);
    std::lock_guard<std::mutex> g(s.mu);
    s.lines[line_pa].w[lineWord(pa)] = value;
}

void
MainMemory::snapshot(SnapshotWriter &w) const
{
    // The sparse image's contents depend only on which lines were
    // touched, never on insertion order; sorting by line address makes
    // the serialized form canonical so byte-identical simulated state
    // yields byte-identical snapshots.
    std::vector<std::pair<PhysAddr, LineData>> all;
    for (const Stripe &s : stripes) {
        std::lock_guard<std::mutex> g(s.mu);
        all.insert(all.end(), s.lines.begin(), s.lines.end());
    }
    std::sort(all.begin(), all.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    w.u64(all.size());
    for (const auto &[pa, line] : all) {
        w.u64(pa);
        for (unsigned i = 0; i < wordsPerLine; ++i)
            w.u32(line.w[i]);
    }
}

void
MainMemory::restore(SnapshotReader &r)
{
    for (Stripe &s : stripes) {
        std::lock_guard<std::mutex> g(s.mu);
        s.lines.clear();
    }
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const PhysAddr pa = r.u64();
        r.require(pa % lineBytes == 0, "unaligned line address");
        LineData line;
        for (unsigned j = 0; j < wordsPerLine; ++j)
            line.w[j] = r.u32();
        Stripe &s = stripeOf(pa);
        std::lock_guard<std::mutex> g(s.mu);
        s.lines.emplace(pa, line);
    }
}

std::size_t
MainMemory::linesTouched() const
{
    std::size_t n = 0;
    for (const Stripe &s : stripes) {
        std::lock_guard<std::mutex> g(s.mu);
        n += s.lines.size();
    }
    return n;
}

} // namespace stashsim
