#include "mem/main_memory.hh"

#include "sim/log.hh"

namespace stashsim
{

MainMemory::MainMemory()
{
    // Typical quick-scale working sets touch a few hundred lines;
    // reserving up front keeps the hot-path inserts rehash-free.
    for (Stripe &s : stripes)
        s.lines.reserve(64);
}

LineData
MainMemory::readLine(PhysAddr line_pa) const
{
    sim_assert(line_pa % lineBytes == 0);
    Stripe &s = stripeOf(line_pa);
    std::lock_guard<std::mutex> g(s.mu);
    auto it = s.lines.find(line_pa);
    return it == s.lines.end() ? LineData{} : it->second;
}

void
MainMemory::writeLine(PhysAddr line_pa, WordMask mask, const LineData &d)
{
    sim_assert(line_pa % lineBytes == 0);
    Stripe &s = stripeOf(line_pa);
    std::lock_guard<std::mutex> g(s.mu);
    LineData &line = s.lines[line_pa];
    for (unsigned w = 0; w < wordsPerLine; ++w) {
        if (mask & wordBit(w))
            line.w[w] = d.w[w];
    }
}

std::uint32_t
MainMemory::readWord(PhysAddr pa) const
{
    sim_assert(pa % wordBytes == 0);
    const PhysAddr line_pa = lineBase(pa);
    Stripe &s = stripeOf(line_pa);
    std::lock_guard<std::mutex> g(s.mu);
    auto it = s.lines.find(line_pa);
    return it == s.lines.end() ? 0 : it->second.w[lineWord(pa)];
}

void
MainMemory::writeWord(PhysAddr pa, std::uint32_t value)
{
    sim_assert(pa % wordBytes == 0);
    const PhysAddr line_pa = lineBase(pa);
    Stripe &s = stripeOf(line_pa);
    std::lock_guard<std::mutex> g(s.mu);
    s.lines[line_pa].w[lineWord(pa)] = value;
}

std::size_t
MainMemory::linesTouched() const
{
    std::size_t n = 0;
    for (const Stripe &s : stripes) {
        std::lock_guard<std::mutex> g(s.mu);
        n += s.lines.size();
    }
    return n;
}

} // namespace stashsim
