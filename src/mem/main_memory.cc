#include "mem/main_memory.hh"

#include "sim/log.hh"

namespace stashsim
{

MainMemory::MainMemory()
{
    // Typical quick-scale working sets touch a few hundred lines;
    // reserving up front keeps the hot-path inserts rehash-free.
    lines.reserve(1024);
}

LineData
MainMemory::readLine(PhysAddr line_pa) const
{
    sim_assert(line_pa % lineBytes == 0);
    auto it = lines.find(line_pa);
    return it == lines.end() ? LineData{} : it->second;
}

void
MainMemory::writeLine(PhysAddr line_pa, WordMask mask, const LineData &d)
{
    sim_assert(line_pa % lineBytes == 0);
    LineData &line = lines[line_pa];
    for (unsigned w = 0; w < wordsPerLine; ++w) {
        if (mask & wordBit(w))
            line.w[w] = d.w[w];
    }
}

std::uint32_t
MainMemory::readWord(PhysAddr pa) const
{
    sim_assert(pa % wordBytes == 0);
    auto it = lines.find(lineBase(pa));
    return it == lines.end() ? 0 : it->second.w[lineWord(pa)];
}

void
MainMemory::writeWord(PhysAddr pa, std::uint32_t value)
{
    sim_assert(pa % wordBytes == 0);
    lines[lineBase(pa)].w[lineWord(pa)] = value;
}

} // namespace stashsim
