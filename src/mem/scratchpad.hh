/**
 * @file
 * Scratchpad (CUDA "shared memory") model.
 *
 * A 16 KB directly-addressed SRAM private to one GPU CU (Table 2).
 * It has no tags, no TLB port, no coherence state — which is exactly
 * why its per-access energy (55.3 pJ, Table 3) is 29% of an L1 hit —
 * and equally why all data movement between it and the global address
 * space must be performed by explicit program instructions (the
 * global-unmapped usage mode of Section 1.2.1) or by a DMA engine.
 * Timing (1 cycle, conflict-free banking) is applied by the CU.
 */

#ifndef STASHSIM_MEM_SCRATCHPAD_HH
#define STASHSIM_MEM_SCRATCHPAD_HH

#include <cstdint>
#include <vector>

#include "sim/log.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace stashsim
{

class SnapshotWriter;
class SnapshotReader;

/**
 * Per-CU scratchpad storage.
 */
class Scratchpad
{
  public:
    explicit Scratchpad(unsigned bytes) : data(bytes / wordBytes, 0) {}

    /** Serializes contents + stats (src/mem/scratchpad.cc). */
    void snapshot(SnapshotWriter &w) const;

    /** Restores contents + stats from a checkpoint. */
    void restore(SnapshotReader &r);

    unsigned sizeBytes() const
    {
        return unsigned(data.size()) * wordBytes;
    }

    /** Reads the word at byte address @p a. */
    std::uint32_t
    read(LocalAddr a)
    {
        ++_stats.reads;
        return data.at(a / wordBytes);
    }

    /** Writes the word at byte address @p a. */
    void
    write(LocalAddr a, std::uint32_t v)
    {
        ++_stats.writes;
        data.at(a / wordBytes) = v;
    }

    const ScratchpadStats &stats() const { return _stats; }

  private:
    std::vector<std::uint32_t> data;
    ScratchpadStats _stats;
};

} // namespace stashsim

#endif // STASHSIM_MEM_SCRATCHPAD_HH
