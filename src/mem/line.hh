/**
 * @file
 * Word-granularity cache-line primitives.
 *
 * The DeNovo protocol used by the paper keeps coherence state per
 * 4-byte word while tags stay at 64-byte line granularity, and the
 * stash transfers *partial* lines (only the useful words).  WordMask
 * is the per-line bitmask (bit i = word i) used throughout requests,
 * responses, and writebacks.
 */

#ifndef STASHSIM_MEM_LINE_HH
#define STASHSIM_MEM_LINE_HH

#include <array>
#include <bit>
#include <cstdint>

#include "sim/types.hh"

namespace stashsim
{

/** Bitmask selecting words within one cache line (16 words). */
using WordMask = std::uint16_t;

/** Mask with all words of a line selected. */
constexpr WordMask fullLineMask = 0xffff;

/** Mask with only word @p w selected. */
constexpr WordMask
wordBit(unsigned w)
{
    return WordMask(1u << w);
}

/** Number of words selected by @p m. */
inline unsigned
popcount(WordMask m)
{
    return unsigned(std::popcount(m));
}

/** The data payload of one cache line. */
struct LineData
{
    std::array<std::uint32_t, wordsPerLine> w{};
};

} // namespace stashsim

#endif // STASHSIM_MEM_LINE_HH
