#include "mem/page_table.hh"

#include "sim/log.hh"

namespace stashsim
{

PhysAddr
PageTable::translate(Addr va)
{
    const Addr vpage = pageBase(va);
    auto it = vToP.find(vpage);
    if (it == vToP.end()) {
        const PhysAddr ppage = nextPage;
        nextPage += pageBytes;
        it = vToP.emplace(vpage, ppage).first;
        pToV.emplace(ppage, vpage);
    }
    return it->second + (va - vpage);
}

bool
PageTable::lookup(Addr va, PhysAddr *pa) const
{
    const Addr vpage = pageBase(va);
    auto it = vToP.find(vpage);
    if (it == vToP.end())
        return false;
    *pa = it->second + (va - vpage);
    return true;
}

bool
PageTable::reverse(PhysAddr pa, Addr *va) const
{
    const PhysAddr ppage = pa & ~PhysAddr{pageBytes - 1};
    auto it = pToV.find(ppage);
    if (it == pToV.end())
        return false;
    *va = it->second + (pa - ppage);
    return true;
}

} // namespace stashsim
