#include "mem/page_table.hh"

#include <algorithm>
#include <ios>
#include <utility>
#include <vector>

#include "sim/log.hh"
#include "snapshot/snapshot.hh"

namespace stashsim
{

namespace
{

/**
 * Physical pages live in a sparse 48-bit slot space above 4 GB, so
 * accidentally treating a virtual address as physical (or vice versa)
 * trips assertions instead of silently working, and so the birthday
 * bound on slot collisions is negligible for any realistic run
 * (~1e5 pages over 2^48 slots).  A collision is still checked and is
 * fatal: resolving one (e.g. by probing) would reintroduce
 * first-touch-order dependence.
 */
constexpr PhysAddr physBase = PhysAddr{4} << 30;
constexpr PhysAddr slotMask = (PhysAddr{1} << 48) - 1;

/** splitmix64 finalizer: a cheap, well-mixed 64-bit permutation. */
PhysAddr
mixVpage(Addr vpage)
{
    std::uint64_t z = vpage + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

PhysAddr
PageTable::translate(Addr va)
{
    const Addr vpage = pageBase(va);
    std::lock_guard<std::mutex> g(mu);
    auto it = vToP.find(vpage);
    if (it == vToP.end()) {
        const PhysAddr ppage =
            physBase + (mixVpage(vpage) & slotMask) * pageBytes;
        auto [pit, fresh] = pToV.emplace(ppage, vpage);
        if (!fresh && pit->second != vpage) {
            fatal("page table: physical slot collision (vpage 0x",
                  std::hex, vpage, " vs 0x", pit->second,
                  " at ppage 0x", ppage, ")");
        }
        it = vToP.emplace(vpage, ppage).first;
    }
    return it->second + (va - vpage);
}

bool
PageTable::lookup(Addr va, PhysAddr *pa) const
{
    const Addr vpage = pageBase(va);
    std::lock_guard<std::mutex> g(mu);
    auto it = vToP.find(vpage);
    if (it == vToP.end())
        return false;
    *pa = it->second + (va - vpage);
    return true;
}

bool
PageTable::reverse(PhysAddr pa, Addr *va) const
{
    const PhysAddr ppage = pa & ~PhysAddr{pageBytes - 1};
    std::lock_guard<std::mutex> g(mu);
    auto it = pToV.find(ppage);
    if (it == pToV.end())
        return false;
    *va = it->second + (pa - ppage);
    return true;
}

void
PageTable::snapshot(SnapshotWriter &w) const
{
    std::lock_guard<std::mutex> g(mu);
    std::vector<std::pair<Addr, PhysAddr>> pairs(vToP.begin(), vToP.end());
    std::sort(pairs.begin(), pairs.end());
    w.u64(pairs.size());
    for (const auto &[v, p] : pairs) {
        w.u64(v);
        w.u64(p);
    }
}

void
PageTable::restore(SnapshotReader &r)
{
    std::lock_guard<std::mutex> g(mu);
    vToP.clear();
    pToV.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr v = r.u64();
        const PhysAddr p = r.u64();
        vToP.emplace(v, p);
        pToV.emplace(p, v);
    }
}

} // namespace stashsim
