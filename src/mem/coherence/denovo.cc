#include "mem/coherence/denovo.hh"

#include "mem/coherence/msg.hh"

namespace stashsim
{

const char *
wordStateName(WordState s)
{
    switch (s) {
      case WordState::Invalid:
        return "Invalid";
      case WordState::Valid:
        return "Valid";
      case WordState::Registered:
        return "Registered";
      default:
        return "?";
    }
}

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::ReadReq:
        return "ReadReq";
      case MsgType::ReadResp:
        return "ReadResp";
      case MsgType::RegReq:
        return "RegReq";
      case MsgType::RegAck:
        return "RegAck";
      case MsgType::InvReq:
        return "InvReq";
      case MsgType::WbReq:
        return "WbReq";
      case MsgType::WbAck:
        return "WbAck";
      case MsgType::FwdReadReq:
        return "FwdReadReq";
      case MsgType::FwdRetry:
        return "FwdRetry";
      case MsgType::DmaReadReq:
        return "DmaReadReq";
      case MsgType::DmaReadResp:
        return "DmaReadResp";
      case MsgType::DmaWriteReq:
        return "DmaWriteReq";
      case MsgType::DmaWriteAck:
        return "DmaWriteAck";
      default:
        return "?";
    }
}

MsgClass
msgClassOf(MsgType t)
{
    switch (t) {
      case MsgType::ReadReq:
      case MsgType::ReadResp:
      case MsgType::FwdReadReq:
      case MsgType::FwdRetry:
      case MsgType::DmaReadReq:
      case MsgType::DmaReadResp:
        return MsgClass::Read;
      case MsgType::RegReq:
      case MsgType::RegAck:
      case MsgType::InvReq:
        return MsgClass::Write;
      case MsgType::WbReq:
      case MsgType::WbAck:
      case MsgType::DmaWriteReq:
      case MsgType::DmaWriteAck:
        return MsgClass::Writeback;
      default:
        return MsgClass::Read;
    }
}

unsigned
msgBytes(const Msg &m)
{
    // 8 bytes of header/address/control per message; data-bearing
    // messages add 4 bytes per transferred word.
    constexpr unsigned header = 8;
    switch (m.type) {
      case MsgType::ReadResp:
      case MsgType::WbReq:
      case MsgType::DmaReadResp:
      case MsgType::DmaWriteReq:
        return header + wordBytes * popcount(m.mask);
      default:
        return header;
    }
}

} // namespace stashsim
