/**
 * @file
 * DeNovo word-granularity coherence state.
 *
 * The paper extends DeNovo (Choi et al., PACT'11) because it already
 * tracks coherence at word granularity with line-granularity tags,
 * has no transient states, and uses reader self-invalidation at
 * synchronization points (kernel boundaries here) instead of
 * writer-initiated sharer invalidations.  The three stable states:
 *
 *   Invalid    - the word holds no usable data.
 *   Valid      - the word holds clean data (readable; a store must
 *                first obtain registration).
 *   Registered - this core owns the word: its copy is the up-to-date
 *                one and the LLC directory points at it.  Registered
 *                words survive self-invalidation; Valid words do not.
 *
 * The stash adds one more conceptual flag: a registered word inside a
 * stash chunk whose thread block has finished is "awaiting writeback"
 * (the paper folds this into the spare encodings of the two state
 * bits; we keep a per-chunk writeback bit, as Section 4.2 describes).
 */

#ifndef STASHSIM_MEM_COHERENCE_DENOVO_HH
#define STASHSIM_MEM_COHERENCE_DENOVO_HH

#include <cstdint>

namespace stashsim
{

/** Per-word DeNovo coherence state. */
enum class WordState : std::uint8_t
{
    Invalid = 0,
    Valid = 1,
    Registered = 2,
};

/** Printable state name. */
const char *wordStateName(WordState s);

/** A word is readable locally when it holds usable data. */
constexpr bool
readable(WordState s)
{
    return s != WordState::Invalid;
}

/** A word is writable locally only when registered. */
constexpr bool
writable(WordState s)
{
    return s == WordState::Registered;
}

} // namespace stashsim

#endif // STASHSIM_MEM_COHERENCE_DENOVO_HH
