/**
 * @file
 * Coherence protocol messages.
 *
 * The simulator implements the paper's stash-extended DeNovo protocol
 * (Section 4.3) with a flat message structure (one struct, a type
 * enum) in the style of SLICC-generated protocols.  Word-granularity
 * masks appear on every message because both DeNovo state and stash
 * transfers are word-granular.
 *
 * Stash extensions visible here:
 *  - RegReq carries `ownerIsStash` and `stashMapIdx` so the LLC
 *    directory can record *which stash mapping* holds a registered
 *    word (paper Section 4.3, feature 3);
 *  - FwdReadReq to a stash carries the physical line address and the
 *    recorded stash-map index; the stash uses its VP-map RTLB plus
 *    the map entry to locate the data (Section 4.2, remote requests);
 *  - read requests/responses can name arbitrary word subsets so the
 *    LLC can merge partial lines (Section 4.3, feature 2).
 */

#ifndef STASHSIM_MEM_COHERENCE_MSG_HH
#define STASHSIM_MEM_COHERENCE_MSG_HH

#include <cstdint>

#include "mem/line.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace stashsim
{

/** Units that can source/sink coherence messages at a node. */
enum class Unit : std::uint8_t
{
    L1,
    Stash,
    Llc,
    Dma,
};

/** All message types exchanged over the mesh. */
enum class MsgType : std::uint8_t
{
    ReadReq,     //!< L1/stash -> LLC: demand words of a line
    ReadResp,    //!< LLC or remote owner -> requester: data words
    RegReq,      //!< L1/stash -> LLC: register (own) words for writing
    RegAck,      //!< LLC -> requester
    InvReq,      //!< LLC -> previous owner: registration moved
    WbReq,       //!< L1/stash -> LLC: dirty word data
    WbAck,       //!< LLC -> writer
    FwdReadReq,  //!< LLC -> registered owner: serve requester directly
    FwdRetry,    //!< owner -> LLC: data no longer present, retry
    DmaReadReq,  //!< DMA engine -> LLC (bypasses L1)
    DmaReadResp, //!< LLC -> DMA engine
    DmaWriteReq, //!< DMA engine -> LLC: scratchpad writeback data
    DmaWriteAck, //!< LLC -> DMA engine
};

/** Number of distinct MsgType values (for per-type counters). */
constexpr unsigned numMsgTypes =
    unsigned(MsgType::DmaWriteAck) + 1;

/** Printable message-type name. */
const char *msgTypeName(MsgType t);

/**
 * A coherence message.  Fields are a union of what each type needs;
 * see the per-type comments above.
 */
struct Msg
{
    MsgType type{};

    /** Core whose access started this transaction. */
    CoreId requester = invalidCore;
    /** Unit at the requester's node that receives the response. */
    Unit requesterUnit = Unit::L1;

    /** Physical base address of the line concerned. */
    PhysAddr linePA = 0;
    /** Words of the line this message concerns. */
    WordMask mask = 0;
    /** Data payload (valid for the words in @p mask). */
    LineData data{};

    /**
     * Read requests: when true, respond with exactly @p mask (stash
     * compact fetch); when false the responder may opportunistically
     * include the whole line (cache line fill).
     */
    bool wordsOnly = false;

    /** RegReq/FwdReadReq: the owning stash's map entry index. */
    std::uint8_t stashMapIdx = 0;
    /** RegReq: registration comes from a stash, not an L1. */
    bool ownerIsStash = false;
    /**
     * FwdRetry bounce count.  A retry loop is a protocol bug (a
     * registration pointing nowhere); the tripwire turns a silent
     * livelock into a loud failure.
     */
    std::uint8_t retries = 0;
};

/** Traffic class of a message type (paper Figure 5d categories). */
MsgClass msgClassOf(MsgType t);

/** Wire size of a message in bytes (header + data words). */
unsigned msgBytes(const Msg &m);

} // namespace stashsim

#endif // STASHSIM_MEM_COHERENCE_MSG_HH
