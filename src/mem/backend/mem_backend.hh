/**
 * @file
 * MemBackend: the pluggable backing store behind the LLC banks.
 *
 * The LLC's miss and dirty-eviction paths talk to an abstract
 * backend instead of a hard-coded DRAM constant.  The contract:
 *
 *  - readLine() is asynchronous: the completion callback fires on
 *    the backend's event queue after the model's latency, carrying
 *    the line sampled from MainMemory *at completion time* (so a
 *    write landing between request and completion is visible,
 *    exactly as the classic inline model behaved).
 *  - writeLine() is fire-and-forget: the functional image is updated
 *    immediately (LLC evictions never wait for the write), while the
 *    timing cost is folded into internal channel state that delays
 *    *later reads*.  This is what makes every backend trivially
 *    deterministic and snapshotable: write cost is arithmetic on
 *    plain counters, never a live event.
 *  - One backend instance serves one LLC bank and schedules only on
 *    that bank's event queue, so sharded runs stay byte-identical to
 *    serial ones (DESIGN.md section 13).
 *  - snapshot()/restore() run at drain points only.  The LLC
 *    guarantees no fill is outstanding there (no pending read
 *    completions to capture); pending-write bookkeeping is plain
 *    data and serializes directly.
 */

#ifndef STASHSIM_MEM_BACKEND_MEM_BACKEND_HH
#define STASHSIM_MEM_BACKEND_MEM_BACKEND_HH

#include <functional>
#include <memory>
#include <vector>

#include "config/system_config.hh"
#include "mem/line.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace stashsim
{

class MainMemory;
class SnapshotReader;
class SnapshotWriter;

/**
 * Abstract backing store serving one LLC bank; see file comment for
 * the latency/determinism contract.
 */
class MemBackend
{
  public:
    /** Read completion: the line image at completion time. */
    using ReadCallback = std::function<void(const LineData &)>;

    virtual ~MemBackend() = default;

    /** Requests a line fill; @p done fires after the model latency. */
    virtual void readLine(PhysAddr line_pa, ReadCallback done) = 0;

    /**
     * Absorbs a dirty-line writeback: functional commit now, timing
     * charged to the backend's internal channel state.
     */
    virtual void writeLine(PhysAddr line_pa, WordMask mask,
                           const LineData &d) = 0;

    /**
     * Functional-only write (no simulated cost); the post-run flush
     * that completes the memory image for validation uses this.
     */
    void writeLineFunctional(PhysAddr line_pa, WordMask mask,
                             const LineData &d);

    const MemBackendStats &stats() const { return _stats; }

    /** Registry name ("fixed", "sttmram", "scmcache"). */
    const char *name() const { return memBackendName(_kind); }
    MemBackendKind kind() const { return _kind; }

    /**
     * Serializes the timing model's state.  Only valid at a drain
     * point: the owning LLC bank has no fill outstanding, so no read
     * completion is in flight.
     */
    virtual void snapshot(SnapshotWriter &w) const = 0;

    /** Restores a drain-point checkpoint (same backend config). */
    virtual void restore(SnapshotReader &r) = 0;

    /**
     * Declared `membackend` config delta (DESIGN.md §17): carries the
     * accumulated stats out of the saved section (every backend
     * writes its stats first) and discards the rest — the restoring
     * backend keeps its freshly-constructed ("cold") timing state.
     */
    void restoreCarriedStats(SnapshotReader &r);

    /**
     * True when this backend's timing state at the current drain
     * point is droppable without changing future behavior — i.e. a
     * checkpoint taken here may be restored under a different
     * backend via restoreCarriedStats().  Backends with pending
     * future work (queued STT writes) or warmed internal caches
     * (SCM's DRAM-cache tags) must say no.
     */
    virtual bool deltaSafe() const { return true; }

  protected:
    MemBackend(MemBackendKind kind, EventQueue &eq, MainMemory &mem,
               Tick clock_period)
        : _kind(kind), eq(eq), mem(mem), clockPeriod(clock_period)
    {
    }

    const MemBackendKind _kind;
    EventQueue &eq;
    MainMemory &mem;
    const Tick clockPeriod; //!< uncore clock the cycle knobs scale by
    MemBackendStats _stats;
};

/** One registered backend kind, for CLI inventories/diagnostics. */
struct MemBackendInfo
{
    MemBackendKind kind;
    const char *name;
    const char *desc;
};

/** Every backend kind, registry order. */
const std::vector<MemBackendInfo> &memBackendList();

/**
 * Builds the backend @p cfg selects, serving the bank whose queue is
 * @p eq.  @p clock_period is the uncore clock (the LLC's).
 */
std::unique_ptr<MemBackend> makeMemBackend(const MemBackendConfig &cfg,
                                           EventQueue &eq,
                                           MainMemory &mem,
                                           Tick clock_period);

} // namespace stashsim

#endif // STASHSIM_MEM_BACKEND_MEM_BACKEND_HH
