#include "mem/backend/fixed_backend.hh"

#include "mem/main_memory.hh"
#include "snapshot/snapshot.hh"

namespace stashsim
{

FixedBackend::FixedBackend(const MemBackendConfig &cfg, EventQueue &eq,
                           MainMemory &mem, Tick clock_period)
    : MemBackend(MemBackendKind::Fixed, eq, mem, clock_period),
      readTicks(cfg.dramCycles * clock_period)
{
}

void
FixedBackend::readLine(PhysAddr line_pa, ReadCallback done)
{
    ++_stats.reads;
    // Sample the functional image at completion time, like the old
    // inline model: a writeback landing mid-flight must be visible.
    eq.scheduleIn(readTicks, [this, line_pa, done = std::move(done)] {
        done(mem.readLine(line_pa));
    });
}

void
FixedBackend::writeLine(PhysAddr line_pa, WordMask mask,
                        const LineData &d)
{
    ++_stats.writes;
    mem.writeLine(line_pa, mask, d);
}

void
FixedBackend::snapshot(SnapshotWriter &w) const
{
    writeStats(w, _stats);
}

void
FixedBackend::restore(SnapshotReader &r)
{
    readStats(r, _stats);
}

} // namespace stashsim
