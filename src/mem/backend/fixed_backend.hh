/**
 * @file
 * The paper's memory system: a flat, fixed-latency DRAM.
 *
 * Every fill completes after `dramCycles` regardless of load, and
 * writebacks are free — byte-identical by construction to the
 * pre-backend inline model (one event per miss, scheduled at the
 * same tick from the same call site).
 */

#ifndef STASHSIM_MEM_BACKEND_FIXED_BACKEND_HH
#define STASHSIM_MEM_BACKEND_FIXED_BACKEND_HH

#include "mem/backend/mem_backend.hh"

namespace stashsim
{

class FixedBackend : public MemBackend
{
  public:
    FixedBackend(const MemBackendConfig &cfg, EventQueue &eq,
                 MainMemory &mem, Tick clock_period);

    void readLine(PhysAddr line_pa, ReadCallback done) override;
    void writeLine(PhysAddr line_pa, WordMask mask,
                   const LineData &d) override;
    void snapshot(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

  private:
    const Tick readTicks;
};

} // namespace stashsim

#endif // STASHSIM_MEM_BACKEND_FIXED_BACKEND_HH
