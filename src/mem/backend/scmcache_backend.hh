/**
 * @file
 * Storage-class memory behind a set-associative DRAM cache, after
 * the POSTECH bandwidth-effective DRAM-cache design (see PAPERS.md).
 *
 * The capacity tier is slow SCM; a per-bank DRAM cache absorbs the
 * hot lines.  Timing is bandwidth-aware rather than purely
 * latency-based: each tier is a channel with a busy-until clock, and
 * an access's *occupancy* (channel time) is much smaller than its
 * *latency*, so the channels pipeline independent requests but queue
 * them when a burst overruns the bandwidth.  DRAM-cache hits pay the
 * DRAM latency on the DRAM channel; misses pay the SCM read latency
 * on the SCM channel and fill the cache, spilling a dirty victim
 * back to SCM (more SCM channel time).  Writebacks from the LLC are
 * write-allocate: they dirty the DRAM cache and only reach SCM on
 * eviction — which is exactly the traffic a lazy-writeback stash
 * does or does not generate, the question the memback bench asks.
 *
 * All state is the tag array plus two busy-until ticks: plain data,
 * deterministic, snapshotable at any drain point.
 */

#ifndef STASHSIM_MEM_BACKEND_SCMCACHE_BACKEND_HH
#define STASHSIM_MEM_BACKEND_SCMCACHE_BACKEND_HH

#include <vector>

#include "mem/backend/mem_backend.hh"

namespace stashsim
{

class ScmCacheBackend : public MemBackend
{
  public:
    ScmCacheBackend(const MemBackendConfig &cfg, EventQueue &eq,
                    MainMemory &mem, Tick clock_period);

    void readLine(PhysAddr line_pa, ReadCallback done) override;
    void writeLine(PhysAddr line_pa, WordMask mask,
                   const LineData &d) override;
    void snapshot(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

    /**
     * The DRAM-cache tags are warmed timing state a carried-stats
     * restore would silently discard; safe only while still empty
     * and with both channels idle.
     */
    bool deltaSafe() const override
    {
        return residentLines() == 0 && dramBusyUntil <= eq.curTick() &&
               scmBusyUntil <= eq.curTick();
    }

    /** Valid DRAM-cache lines (tests). */
    std::size_t residentLines() const;
    /** Dirty DRAM-cache lines (tests). */
    std::size_t dirtyLines() const;

  private:
    /**
     * Tag-only DRAM-cache entry: the data lives in the functional
     * image (MainMemory); only presence/dirtiness is modelled.
     */
    struct TagEntry
    {
        bool valid = false;
        bool dirty = false;
        PhysAddr pa = 0;
        std::uint64_t lastUse = 0;
    };

    unsigned setIndex(PhysAddr line_pa) const;
    TagEntry *probe(PhysAddr line_pa);
    /**
     * Allocates (LRU) a DRAM-cache frame for @p line_pa, charging a
     * dirty victim's spill to the SCM channel.
     */
    TagEntry &fill(PhysAddr line_pa, bool dirty);
    /** Serializes an access onto a channel; returns its start tick. */
    static Tick claim(Tick &busy_until, Tick now, Tick occupancy);

    const Tick hitTicks;      //!< DRAM-cache hit latency
    const Tick hitOccupancy;  //!< DRAM channel time per access
    const Tick scmReadTicks;  //!< SCM tier read latency
    const Tick scmWriteTicks; //!< SCM tier write latency
    const Tick scmOccupancy;  //!< SCM channel time per access
    const unsigned assoc;
    const unsigned sets;

    std::vector<TagEntry> tags;
    std::uint64_t useClock = 0;
    Tick dramBusyUntil = 0;
    Tick scmBusyUntil = 0;
};

} // namespace stashsim

#endif // STASHSIM_MEM_BACKEND_SCMCACHE_BACKEND_HH
