#include "mem/backend/mem_backend.hh"

#include "mem/backend/fixed_backend.hh"
#include "mem/backend/scmcache_backend.hh"
#include "mem/backend/sttmram_backend.hh"
#include "mem/main_memory.hh"
#include "sim/log.hh"

namespace stashsim
{

void
MemBackend::writeLineFunctional(PhysAddr line_pa, WordMask mask,
                                const LineData &d)
{
    mem.writeLine(line_pa, mask, d);
}

const std::vector<MemBackendInfo> &
memBackendList()
{
    static const std::vector<MemBackendInfo> backends = {
        {MemBackendKind::Fixed, memBackendName(MemBackendKind::Fixed),
         "flat fixed-latency DRAM (the paper's machine; default)"},
        {MemBackendKind::SttMram,
         memBackendName(MemBackendKind::SttMram),
         "STT-MRAM: asymmetric read/write latency with write-pausing "
         "(FUSE)"},
        {MemBackendKind::ScmCache,
         memBackendName(MemBackendKind::ScmCache),
         "set-associative DRAM cache over slow SCM with "
         "bandwidth-aware queuing (POSTECH)"},
    };
    return backends;
}

std::unique_ptr<MemBackend>
makeMemBackend(const MemBackendConfig &cfg, EventQueue &eq,
               MainMemory &mem, Tick clock_period)
{
    switch (cfg.kind) {
      case MemBackendKind::Fixed:
        return std::make_unique<FixedBackend>(cfg, eq, mem,
                                              clock_period);
      case MemBackendKind::SttMram:
        return std::make_unique<SttMramBackend>(cfg, eq, mem,
                                                clock_period);
      case MemBackendKind::ScmCache:
        return std::make_unique<ScmCacheBackend>(cfg, eq, mem,
                                                 clock_period);
      default:
        panic("unknown memory backend kind ", unsigned(cfg.kind));
    }
}

} // namespace stashsim
