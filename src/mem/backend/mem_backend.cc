#include "mem/backend/mem_backend.hh"

#include "mem/backend/fixed_backend.hh"
#include "mem/backend/scmcache_backend.hh"
#include "mem/backend/sttmram_backend.hh"
#include "mem/main_memory.hh"
#include "sim/log.hh"
#include "snapshot/snapshot.hh"

namespace stashsim
{

void
MemBackend::writeLineFunctional(PhysAddr line_pa, WordMask mask,
                                const LineData &d)
{
    mem.writeLine(line_pa, mask, d);
}

void
MemBackend::restoreCarriedStats(SnapshotReader &r)
{
    // Every backend's snapshot() writes its stats block first, so the
    // carried counters parse identically regardless of which backend
    // kind wrote the section; the model-specific remainder belongs to
    // the old timing state and is dropped.
    readStats(r, _stats);
    r.skipRemaining();
}

const std::vector<MemBackendInfo> &
memBackendList()
{
    static const std::vector<MemBackendInfo> backends = {
        {MemBackendKind::Fixed, memBackendName(MemBackendKind::Fixed),
         "flat fixed-latency DRAM (the paper's machine; default)"},
        {MemBackendKind::SttMram,
         memBackendName(MemBackendKind::SttMram),
         "STT-MRAM: asymmetric read/write latency with write-pausing "
         "(FUSE)"},
        {MemBackendKind::ScmCache,
         memBackendName(MemBackendKind::ScmCache),
         "set-associative DRAM cache over slow SCM with "
         "bandwidth-aware queuing (POSTECH)"},
    };
    return backends;
}

std::unique_ptr<MemBackend>
makeMemBackend(const MemBackendConfig &cfg, EventQueue &eq,
               MainMemory &mem, Tick clock_period)
{
    switch (cfg.kind) {
      case MemBackendKind::Fixed:
        return std::make_unique<FixedBackend>(cfg, eq, mem,
                                              clock_period);
      case MemBackendKind::SttMram:
        return std::make_unique<SttMramBackend>(cfg, eq, mem,
                                                clock_period);
      case MemBackendKind::ScmCache:
        return std::make_unique<ScmCacheBackend>(cfg, eq, mem,
                                                 clock_period);
      default:
        panic("unknown memory backend kind ", unsigned(cfg.kind));
    }
}

} // namespace stashsim
