/**
 * @file
 * STT-MRAM backing store with asymmetric read/write latency and
 * write-pausing, after FUSE (Zhang, Jung, Kandemir — see PAPERS.md).
 *
 * STT-MRAM reads are DRAM-competitive but writes take several times
 * longer.  FUSE's key scheduling trick is *write-pausing*: a read
 * arriving while writes are in flight preempts them — the pending
 * writes are suspended for the read's service time and resume after
 * — so the long writes hurt only when the write queue backs up far
 * enough to block the read port entirely.
 *
 * Timing is pure arithmetic on a queue of absolute write-completion
 * ticks: writes serialize behind each other on the write port, reads
 * shift every pending completion by their own service time (the
 * pause), and a read that finds the queue full must first wait out
 * the head write.  No write ever schedules an event, so the whole
 * model is a deque of ticks — deterministic and trivially
 * snapshotable at drain points.
 */

#ifndef STASHSIM_MEM_BACKEND_STTMRAM_BACKEND_HH
#define STASHSIM_MEM_BACKEND_STTMRAM_BACKEND_HH

#include <deque>

#include "mem/backend/mem_backend.hh"

namespace stashsim
{

class SttMramBackend : public MemBackend
{
  public:
    SttMramBackend(const MemBackendConfig &cfg, EventQueue &eq,
                   MainMemory &mem, Tick clock_period);

    void readLine(PhysAddr line_pa, ReadCallback done) override;
    void writeLine(PhysAddr line_pa, WordMask mask,
                   const LineData &d) override;
    void snapshot(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

    /** Safe to drop only when no write completion is still pending. */
    bool deltaSafe() const override
    {
        return writeDone.empty() || writeDone.back() <= eq.curTick();
    }

    /** Writes still draining (after completed ones age out). */
    std::size_t pendingWrites() const;

  private:
    /** Drops completions that have passed. */
    void prune(Tick now);

    const Tick readTicks;
    const Tick writeTicks;
    const unsigned writeQueueDepth;

    /** Absolute completion ticks of in-flight writes, ascending. */
    std::deque<Tick> writeDone;
};

} // namespace stashsim

#endif // STASHSIM_MEM_BACKEND_STTMRAM_BACKEND_HH
