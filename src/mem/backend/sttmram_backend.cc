#include "mem/backend/sttmram_backend.hh"

#include <algorithm>

#include "mem/main_memory.hh"
#include "snapshot/snapshot.hh"

namespace stashsim
{

SttMramBackend::SttMramBackend(const MemBackendConfig &cfg,
                               EventQueue &eq, MainMemory &mem,
                               Tick clock_period)
    : MemBackend(MemBackendKind::SttMram, eq, mem, clock_period),
      readTicks(cfg.sttReadCycles * clock_period),
      writeTicks(cfg.sttWriteCycles * clock_period),
      writeQueueDepth(std::max(cfg.sttWriteQueue, 1u))
{
}

void
SttMramBackend::prune(Tick now)
{
    while (!writeDone.empty() && writeDone.front() <= now)
        writeDone.pop_front();
}

std::size_t
SttMramBackend::pendingWrites() const
{
    std::size_t n = 0;
    for (Tick t : writeDone)
        n += t > eq.curTick() ? 1 : 0;
    return n;
}

void
SttMramBackend::readLine(PhysAddr line_pa, ReadCallback done)
{
    ++_stats.reads;
    const Tick now = eq.curTick();
    prune(now);

    // A full write queue blocks the read port: wait out the head
    // write before the read can preempt the rest.
    Tick start = now;
    if (writeDone.size() >= writeQueueDepth) {
        start = writeDone.front();
        writeDone.pop_front();
    }
    _stats.readStallTicks += start - now;

    // Write-pausing: every still-pending write is suspended for the
    // read's service time and resumes afterwards.
    if (!writeDone.empty()) {
        ++_stats.writePauses;
        for (Tick &t : writeDone)
            t += readTicks;
    }

    const Tick completion = start + readTicks;
    eq.scheduleIn(completion - now,
                  [this, line_pa, done = std::move(done)] {
                      done(mem.readLine(line_pa));
                  });
}

void
SttMramBackend::writeLine(PhysAddr line_pa, WordMask mask,
                          const LineData &d)
{
    ++_stats.writes;
    // Functional commit now; the LLC's evictions are fire-and-forget.
    mem.writeLine(line_pa, mask, d);

    const Tick now = eq.curTick();
    prune(now);
    const Tick start =
        writeDone.empty() ? now : std::max(now, writeDone.back());
    writeDone.push_back(start + writeTicks);
}

void
SttMramBackend::snapshot(SnapshotWriter &w) const
{
    writeStats(w, _stats);
    w.u32(std::uint32_t(writeDone.size()));
    for (Tick t : writeDone)
        w.u64(t);
}

void
SttMramBackend::restore(SnapshotReader &r)
{
    readStats(r, _stats);
    writeDone.clear();
    const std::uint32_t n = r.u32();
    Tick prev = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        const Tick t = r.u64();
        r.require(t >= prev, "sttmram write queue not ascending");
        prev = t;
        writeDone.push_back(t);
    }
}

} // namespace stashsim
