#include "mem/backend/scmcache_backend.hh"

#include <algorithm>

#include "mem/main_memory.hh"
#include "sim/log.hh"
#include "snapshot/snapshot.hh"

namespace stashsim
{

ScmCacheBackend::ScmCacheBackend(const MemBackendConfig &cfg,
                                 EventQueue &eq, MainMemory &mem,
                                 Tick clock_period)
    : MemBackend(MemBackendKind::ScmCache, eq, mem, clock_period),
      hitTicks(cfg.scmHitCycles * clock_period),
      hitOccupancy(cfg.scmHitOccupancy * clock_period),
      scmReadTicks(cfg.scmReadCycles * clock_period),
      scmWriteTicks(cfg.scmWriteCycles * clock_period),
      scmOccupancy(cfg.scmOccupancy * clock_period),
      assoc(std::max(cfg.scmCacheAssoc, 1u)),
      sets(std::max(cfg.scmCacheLines, assoc) / assoc),
      tags(std::size_t(sets) * assoc)
{
    sim_assert(sets > 0 && (sets & (sets - 1)) == 0);
}

unsigned
ScmCacheBackend::setIndex(PhysAddr line_pa) const
{
    // Like the LLC's own sets: banks interleave at line granularity
    // across 16 nodes, so the bits above the bank selector index the
    // set within this bank's DRAM cache.
    return unsigned((line_pa / lineBytes / 16) & (sets - 1));
}

ScmCacheBackend::TagEntry *
ScmCacheBackend::probe(PhysAddr line_pa)
{
    TagEntry *base = &tags[std::size_t(setIndex(line_pa)) * assoc];
    for (unsigned w = 0; w < assoc; ++w) {
        if (base[w].valid && base[w].pa == line_pa)
            return &base[w];
    }
    return nullptr;
}

ScmCacheBackend::TagEntry &
ScmCacheBackend::fill(PhysAddr line_pa, bool dirty)
{
    TagEntry *base = &tags[std::size_t(setIndex(line_pa)) * assoc];
    TagEntry *victim = &base[0];
    for (unsigned w = 0; w < assoc; ++w) {
        TagEntry &e = base[w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    if (victim->valid && victim->dirty) {
        // Spill to SCM: the data is already functionally in
        // MainMemory; only the channel time is modelled.  SCM write
        // bandwidth is the scarce resource, so a spill holds the
        // channel for the full write time.
        ++_stats.scmWrites;
        claim(scmBusyUntil, eq.curTick(), scmWriteTicks);
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->pa = line_pa;
    victim->lastUse = ++useClock;
    return *victim;
}

Tick
ScmCacheBackend::claim(Tick &busy_until, Tick now, Tick occupancy)
{
    const Tick start = std::max(now, busy_until);
    busy_until = start + occupancy;
    return start;
}

void
ScmCacheBackend::readLine(PhysAddr line_pa, ReadCallback done)
{
    ++_stats.reads;
    const Tick now = eq.curTick();
    Tick completion;
    if (TagEntry *e = probe(line_pa)) {
        ++_stats.dcacheHits;
        e->lastUse = ++useClock;
        const Tick start = claim(dramBusyUntil, now, hitOccupancy);
        _stats.readStallTicks += start - now;
        completion = start + hitTicks;
    } else {
        ++_stats.dcacheMisses;
        ++_stats.scmReads;
        const Tick start = claim(scmBusyUntil, now, scmOccupancy);
        _stats.readStallTicks += start - now;
        completion = start + scmReadTicks;
        // The arriving line fills the DRAM cache (channel time on the
        // DRAM side, plus a dirty victim's spill on the SCM side).
        fill(line_pa, /*dirty=*/false);
        claim(dramBusyUntil, now, hitOccupancy);
    }
    eq.scheduleIn(completion - now,
                  [this, line_pa, done = std::move(done)] {
                      done(mem.readLine(line_pa));
                  });
}

void
ScmCacheBackend::writeLine(PhysAddr line_pa, WordMask mask,
                           const LineData &d)
{
    ++_stats.writes;
    // Functional commit now; timing is DRAM-cache write-allocate, so
    // an LLC writeback reaches SCM only when its line is evicted.
    mem.writeLine(line_pa, mask, d);
    if (TagEntry *e = probe(line_pa)) {
        e->dirty = true;
        e->lastUse = ++useClock;
    } else {
        fill(line_pa, /*dirty=*/true);
    }
    claim(dramBusyUntil, eq.curTick(), hitOccupancy);
}

std::size_t
ScmCacheBackend::residentLines() const
{
    std::size_t n = 0;
    for (const TagEntry &e : tags)
        n += e.valid ? 1 : 0;
    return n;
}

std::size_t
ScmCacheBackend::dirtyLines() const
{
    std::size_t n = 0;
    for (const TagEntry &e : tags)
        n += e.valid && e.dirty ? 1 : 0;
    return n;
}

void
ScmCacheBackend::snapshot(SnapshotWriter &w) const
{
    writeStats(w, _stats);
    w.u32(sets);
    w.u32(assoc);
    w.u64(useClock);
    w.u64(dramBusyUntil);
    w.u64(scmBusyUntil);
    std::uint32_t valid = 0;
    for (const TagEntry &e : tags)
        valid += e.valid ? 1 : 0;
    w.u32(valid);
    for (std::size_t i = 0; i < tags.size(); ++i) {
        const TagEntry &e = tags[i];
        if (!e.valid)
            continue;
        w.u32(std::uint32_t(i));
        w.u64(e.pa);
        w.b(e.dirty);
        w.u64(e.lastUse);
    }
}

void
ScmCacheBackend::restore(SnapshotReader &r)
{
    readStats(r, _stats);
    r.require(r.u32() == sets, "scmcache set count mismatch");
    r.require(r.u32() == assoc, "scmcache associativity mismatch");
    useClock = r.u64();
    dramBusyUntil = r.u64();
    scmBusyUntil = r.u64();
    tags.assign(tags.size(), TagEntry{});
    const std::uint32_t valid = r.u32();
    for (std::uint32_t k = 0; k < valid; ++k) {
        const std::uint32_t i = r.u32();
        r.require(i < tags.size(), "scmcache tag index out of range");
        TagEntry &e = tags[i];
        r.require(!e.valid, "duplicate scmcache tag index");
        e.valid = true;
        e.pa = r.u64();
        e.dirty = r.b();
        e.lastUse = r.u64();
    }
}

} // namespace stashsim
