#include "mem/scratchpad.hh"

#include "snapshot/snapshot.hh"

namespace stashsim
{

void
Scratchpad::snapshot(SnapshotWriter &w) const
{
    writeStats(w, _stats);
    w.u32(std::uint32_t(data.size()));
    for (std::uint32_t word : data)
        w.u32(word);
}

void
Scratchpad::restore(SnapshotReader &r)
{
    readStats(r, _stats);
    const std::uint32_t n = r.u32();
    r.require(n == data.size(), "scratchpad size mismatch");
    for (std::uint32_t i = 0; i < n; ++i)
        data[i] = r.u32();
}

} // namespace stashsim
