#include "mem/dma_engine.hh"

#include "sim/log.hh"
#include "snapshot/snapshot.hh"
#include "verify/protocol_checker.hh"
#include "verify/watchdog.hh"

namespace stashsim
{

DmaEngine::DmaEngine(EventQueue &eq, Fabric &fabric, Tlb &tlb,
                     Scratchpad &spad, CoreId owner, NodeId node,
                     unsigned max_inflight_lines)
    : eq(eq), fabric(fabric), tlb(tlb), spad(spad), owner(owner),
      node(node), maxInflight(max_inflight_lines)
{
}

void
DmaEngine::pump()
{
    while (queuedHead < queued.size() &&
           pending.size() < maxInflight) {
        auto [req, pl] = std::move(queued[queuedHead]);
        ++queuedHead;
        pending.emplace(req.linePA, std::move(pl));
        fabric.send(node, fabric.nodeOfLlc(req.linePA), Unit::Llc,
                    std::move(req));
    }
    if (queuedHead == queued.size() && queuedHead > 0) {
        queued.clear();
        queuedHead = 0;
    }
}

std::map<PhysAddr, DmaEngine::PendingLine>
DmaEngine::plan(const TileSpec &tile, LocalAddr base,
                std::shared_ptr<Transfer> x)
{
    std::map<PhysAddr, PendingLine> by_line;
    const std::uint32_t bytes = tile.mappedBytes();
    // Consecutive words nearly always fall in the same line; reuse
    // the previous slot instead of paying a map lookup per word.
    PhysAddr cur_line = ~PhysAddr{0};
    PendingLine *cur = nullptr;
    for (std::uint32_t off = 0; off < bytes; off += wordBytes) {
        const Addr ga = tile.globalAddrOf(off);
        const PhysAddr pa = tlb.translate(ga);
        if (lineBase(pa) != cur_line) {
            cur_line = lineBase(pa);
            cur = &by_line[cur_line];
        }
        cur->xfer = x;
        cur->mask |= wordBit(lineWord(pa));
        cur->fills.emplace_back(lineWord(pa), LocalAddr(base + off));
    }
    return by_line;
}

void
DmaEngine::load(const TileSpec &tile, LocalAddr base, DoneFn done)
{
    ++_stats.transfers;
    auto x = std::make_shared<Transfer>();
    x->done = std::move(done);

    auto by_line = plan(tile, base, x);
    x->pendingLines = unsigned(by_line.size());
    if (by_line.empty()) {
        eq.scheduleIn(0, [x]() { x->done(); });
        return;
    }

    // The engine injects one line request per cycle — a burst, which
    // is exactly the bursty-traffic behaviour the paper attributes to
    // DMA preloads.  Contention is resolved in the mesh.
    for (auto &[line_pa, pl] : by_line) {
        Msg req;
        req.type = MsgType::DmaReadReq;
        req.requester = owner;
        req.requesterUnit = Unit::Dma;
        req.linePA = line_pa;
        req.mask = pl.mask;
        req.wordsOnly = true;
        queued.emplace_back(std::move(req), std::move(pl));
    }
    pump();
}

void
DmaEngine::store(const TileSpec &tile, LocalAddr base, DoneFn done)
{
    ++_stats.transfers;
    auto x = std::make_shared<Transfer>();
    x->done = std::move(done);

    auto by_line = plan(tile, base, x);
    x->pendingLines = unsigned(by_line.size());
    if (by_line.empty()) {
        eq.scheduleIn(0, [x]() { x->done(); });
        return;
    }

    for (auto &[line_pa, pl] : by_line) {
        Msg req;
        req.type = MsgType::DmaWriteReq;
        req.requester = owner;
        req.requesterUnit = Unit::Dma;
        req.linePA = line_pa;
        req.mask = pl.mask;
        for (const auto &[word, local] : pl.fills) {
            // Drain: the engine reads each word out of the scratchpad.
            req.data.w[word] = spad.read(local);
            ++_stats.wordsStored;
            if (checker) {
                // The DMA write is the point the value becomes
                // globally visible: commit it to the golden image.
                checker->onStore(line_pa + PhysAddr(word) * wordBytes,
                                 req.data.w[word]);
            }
        }
        pl.fills.clear();
        queued.emplace_back(std::move(req), std::move(pl));
    }
    pump();
}

void
DmaEngine::receive(const Msg &msg)
{
    auto it = pending.find(msg.linePA);
    sim_assert(it != pending.end());
    PendingLine &pl = it->second;

    switch (msg.type) {
      case MsgType::DmaReadResp:
      case MsgType::ReadResp: {
        // A read may be answered in pieces: partly by the LLC, partly
        // by remote owners the LLC forwarded to.  Complete the line
        // only when every requested word has arrived.
        std::erase_if(pl.fills, [&](const auto &fill) {
            const auto &[word, local] = fill;
            if (!(msg.mask & wordBit(word)))
                return false;
            spad.write(local, msg.data.w[word]);
            ++_stats.wordsLoaded;
            if (checker) {
                checker->onFill("DMA", owner,
                                msg.linePA + PhysAddr(word) * wordBytes,
                                msg.data.w[word]);
            }
            return true;
        });
        if (!pl.fills.empty())
            return;
        break;
      }
      case MsgType::DmaWriteAck:
        break;
      default:
        panic("DMA engine received unexpected ", msgTypeName(msg.type));
    }

    auto x = pl.xfer;
    pending.erase(it);
    if (watchdog)
        watchdog->progress();
    pump();
    sim_assert(x->pendingLines > 0);
    if (--x->pendingLines == 0)
        x->done();
}

void
DmaEngine::snapshot(SnapshotWriter &w) const
{
    // Checkpoints happen only at drain points: every burst finished.
    sim_assert(pending.empty());
    sim_assert(queued.empty() && queuedHead == 0);
    writeStats(w, _stats);
}

void
DmaEngine::restore(SnapshotReader &r)
{
    sim_assert(pending.empty());
    sim_assert(queued.empty() && queuedHead == 0);
    readStats(r, _stats);
}

} // namespace stashsim
