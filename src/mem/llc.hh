/**
 * @file
 * One bank of the shared L2 (LLC) plus the DeNovo registry.
 *
 * The LLC is the ordering point of the protocol.  Per word it holds
 * either the up-to-date data or a *registration*: the core that owns
 * the word, whether the owning unit is an L1 or a stash, and — the
 * paper's key directory extension (Section 4.3, feature 3) — the
 * owner's stash-map index, stored in the word's data field so the
 * directory adds no storage.  Demanded words registered elsewhere are
 * forwarded to their owner, which replies to the requester directly
 * (remote L1/stash hits, Table 2's 35-83 cycle path).
 *
 * Banks are interleaved at line granularity across all 16 mesh nodes
 * (NUCA); a bank access costs `accessCycles`, a miss adds whatever
 * the bank's memory backend charges (src/mem/backend — flat DRAM by
 * default, STT-MRAM or an SCM DRAM-cache by configuration).  Victims with live registrations are never selected (the
 * directory state is the only pointer to the owner's data); with the
 * paper's 4 MB LLC and the evaluated working sets this never
 * constrains the replacement policy in practice, and we panic loudly
 * if a set ever fills with registered lines.
 */

#ifndef STASHSIM_MEM_LLC_HH
#define STASHSIM_MEM_LLC_HH

#include <vector>

#include "mem/backend/mem_backend.hh"
#include "mem/coherence/denovo.hh"
#include "mem/fabric.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace stashsim
{

class SnapshotWriter;
class SnapshotReader;

/**
 * A single LLC bank with DeNovo registry semantics.
 */
class LlcBank : public MemObject
{
  public:
    struct Params
    {
        unsigned bankBytes = 256 * 1024;
        unsigned assoc = 16;
        Cycles accessCycles = 23;
        Tick clockPeriod = gpuClockPeriod;
    };

    /**
     * @p backend is this bank's backing store: fills and dirty
     * evictions go through it (it schedules on this bank's queue).
     * The miss latency lives in the backend's own config — not here.
     */
    LlcBank(EventQueue &eq, Fabric &fabric, MemBackend &backend,
            NodeId node, const Params &p);

    void receive(const Msg &msg) override;

    /**
     * Writes every dirty line to main memory (outside measured
     * execution; used before functional validation).  Lines with
     * registered words must have been recalled first by flushing the
     * owners.
     */
    void flushDirtyToMemory();

    const LlcStats &stats() const { return _stats; }

    /** Registry probe for tests: owner of the word at @p pa. */
    CoreId ownerOf(PhysAddr pa);

    /**
     * Protocol-checker sweep: every word of every resident line
     * (skipping lines whose fill is still pending).
     * fn(pa, state, data, owner, ownerIsStash, mapIdx).
     */
    void forEachDirectoryWord(
        const std::function<void(PhysAddr, WordState, std::uint32_t,
                                 CoreId, bool, unsigned)> &fn) const;

    /** Lines whose DRAM fill has not resolved yet. */
    std::size_t pendingFillLines() const;

    /**
     * Serializes tags/registry/data/LRU + stats.  Only valid at a
     * drain point: no pending fills, no parked requests.
     */
    void snapshot(SnapshotWriter &w) const;

    /**
     * Restores a drain-point checkpoint.  With @p remap false the
     * snapshot must come from an identical-geometry bank (the default
     * exact path).  With @p remap true — a declared `llc` config delta
     * (DESIGN.md §17) — the saved lines are re-inserted under this
     * bank's live geometry: each line's set is re-derived from its
     * physical address and the line takes a free way there.  A set
     * overflow (the new geometry cannot hold the warmed footprint)
     * is a structured SnapshotError, not silent dropping.
     */
    void restore(SnapshotReader &r, bool remap = false);

  private:
    /** Per-word registry entry. */
    struct WordEntry
    {
        /** Valid: LLC data is current.  Registered: owner has it. */
        WordState state = WordState::Valid;
        std::uint32_t data = 0;
        CoreId owner = invalidCore;
        bool ownerIsStash = false;
        std::uint8_t mapIdx = 0;
    };

    struct Line
    {
        bool allocated = false;
        PhysAddr pa = 0;
        std::array<WordEntry, wordsPerLine> words{};
        bool dirty = false;
        std::uint64_t lastUse = 0;
        bool fillPending = false;
        std::vector<Msg> waiting; //!< requests queued behind a fill
        /**
         * Requests accepted but not yet served (between the bank
         * access being scheduled and it firing).  Such lines are
         * never eviction victims — that is the invariant process()
         * asserts at serve time.
         */
        unsigned inService = 0;
    };

    unsigned setIndex(PhysAddr pa) const;
    Line *findLine(PhysAddr line_pa);
    Line &getLineOrFill(const Msg &msg, bool *stalled);
    Line *allocLine(PhysAddr line_pa);
    void process(const Msg &msg);
    void serveRead(const Msg &msg, Line &line);
    void serveReg(const Msg &msg, Line &line);
    void serveWb(const Msg &msg, Line &line);

    EventQueue &eq;
    Fabric &fabric;
    MemBackend &backend;
    NodeId node;
    Params params;
    unsigned sets;
    std::vector<Line> lines;
    std::uint64_t useClock = 0;
    LlcStats _stats;
};

} // namespace stashsim

#endif // STASHSIM_MEM_LLC_HH
