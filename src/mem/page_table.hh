/**
 * @file
 * A single shared page table for the unified address space.
 *
 * The paper's system has one unified, coherent virtual address space
 * shared by CPUs and GPUs (Section 5.1), so one page table suffices.
 * Physical pages are allocated in first-touch order, which decouples
 * physical from virtual layout — this keeps the VP-map's reverse
 * (physical-to-virtual) translation honest: it cannot be faked by
 * arithmetic on the physical address.
 */

#ifndef STASHSIM_MEM_PAGE_TABLE_HH
#define STASHSIM_MEM_PAGE_TABLE_HH

#include <unordered_map>

#include "sim/types.hh"

namespace stashsim
{

/**
 * Virtual-to-physical page mapping with first-touch allocation.
 */
class PageTable
{
  public:
    /**
     * Translates a virtual address, allocating a physical page on
     * first touch.
     */
    PhysAddr translate(Addr va);

    /**
     * Side-effect-free translation: no first-touch allocation.
     * @return true and sets @p pa when the page is already mapped.
     */
    bool lookup(Addr va, PhysAddr *pa) const;

    /**
     * Reverse-translates a physical address.
     * @return true and sets @p va when the page is mapped.
     */
    bool reverse(PhysAddr pa, Addr *va) const;

    /** Number of mapped pages. */
    std::size_t numPages() const { return vToP.size(); }

  private:
    std::unordered_map<Addr, PhysAddr> vToP;   //!< page -> page base
    std::unordered_map<PhysAddr, Addr> pToV;
    /**
     * Next free physical page base.  Starts above 4 GB so that
     * accidentally treating a virtual address as physical (or vice
     * versa) trips assertions instead of silently working.
     */
    PhysAddr nextPage = PhysAddr{4} << 30;
};

} // namespace stashsim

#endif // STASHSIM_MEM_PAGE_TABLE_HH
