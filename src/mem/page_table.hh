/**
 * @file
 * A single shared page table for the unified address space.
 *
 * The paper's system has one unified, coherent virtual address space
 * shared by CPUs and GPUs (Section 5.1), so one page table suffices.
 * Physical pages are assigned by a 64-bit mix of the virtual page
 * number into a huge sparse physical space, which decouples physical
 * from virtual layout — this keeps the VP-map's reverse
 * (physical-to-virtual) translation honest: it cannot be faked by
 * arithmetic on the physical address.  Unlike bump ("first-touch
 * order") allocation, the assignment depends only on the page itself,
 * so serial and sharded runs — which first-touch pages in different
 * orders — produce identical address maps.
 */

#ifndef STASHSIM_MEM_PAGE_TABLE_HH
#define STASHSIM_MEM_PAGE_TABLE_HH

#include <mutex>
#include <unordered_map>

#include "sim/types.hh"

namespace stashsim
{

class SnapshotWriter;
class SnapshotReader;

/**
 * Virtual-to-physical page mapping with order-independent,
 * hash-assigned physical pages.  Thread-safe: shards translate
 * concurrently on TLB misses.
 */
class PageTable
{
  public:
    /**
     * Translates a virtual address, assigning a physical page on
     * first touch.
     */
    PhysAddr translate(Addr va);

    /**
     * Side-effect-free translation: no first-touch assignment.
     * @return true and sets @p pa when the page is already mapped.
     */
    bool lookup(Addr va, PhysAddr *pa) const;

    /**
     * Reverse-translates a physical address.
     * @return true and sets @p va when the page is mapped.
     */
    bool reverse(PhysAddr pa, Addr *va) const;

    /** Number of mapped pages. */
    std::size_t
    numPages() const
    {
        std::lock_guard<std::mutex> g(mu);
        return vToP.size();
    }

    /** Serializes the mapping, sorted by virtual page. */
    void snapshot(SnapshotWriter &w) const;

    /** Replaces the mapping (both directions) from a checkpoint. */
    void restore(SnapshotReader &r);

  private:
    std::unordered_map<Addr, PhysAddr> vToP; //!< page -> page base
    std::unordered_map<PhysAddr, Addr> pToV;
    mutable std::mutex mu;
};

} // namespace stashsim

#endif // STASHSIM_MEM_PAGE_TABLE_HH
