#include "mem/cache.hh"

#include "sim/log.hh"
#include "snapshot/snapshot.hh"
#include "verify/protocol_checker.hh"

namespace stashsim
{

L1Cache::L1Cache(EventQueue &eq, Fabric &fabric, Tlb &tlb, CoreId owner,
                 NodeId node, const Params &p)
    : eq(eq), fabric(fabric), tlb(tlb), owner(owner), node(node),
      params(p), sets(p.bytes / (lineBytes * p.assoc)),
      lines(sets * p.assoc)
{
    sim_assert(sets > 0 && (sets & (sets - 1)) == 0);
    // Bounded by the MSHR count; never rehashes on the miss path.
    mshrs.reserve(p.mshrs);
}

unsigned
L1Cache::setIndex(PhysAddr pa) const
{
    return unsigned((pa / lineBytes) & (sets - 1));
}

L1Cache::Line *
L1Cache::findLine(PhysAddr line_pa)
{
    Line *base = &lines[setIndex(line_pa) * params.assoc];
    for (unsigned w = 0; w < params.assoc; ++w) {
        if (base[w].allocated && base[w].pa == line_pa)
            return &base[w];
    }
    return nullptr;
}

L1Cache::Line *
L1Cache::allocLine(PhysAddr line_pa)
{
    Line *base = &lines[setIndex(line_pa) * params.assoc];
    Line *victim = nullptr;
    for (unsigned w = 0; w < params.assoc; ++w) {
        Line &l = base[w];
        if (!l.allocated) {
            victim = &l;
            break;
        }
        if (l.pinned)
            continue;
        if (!victim || l.lastUse < victim->lastUse)
            victim = &l;
    }
    if (!victim)
        return nullptr; // every way pinned by an MSHR
    if (victim->allocated)
        evict(*victim);
    victim->allocated = true;
    victim->pa = line_pa;
    victim->st.fill(WordState::Invalid);
    victim->data = LineData{};
    victim->lastUse = ++useClock;
    victim->pinned = false;
    return victim;
}

void
L1Cache::evict(Line &line)
{
    sim_assert(!line.pinned);
    ++_stats.evictions;
    WordMask dirty = 0;
    for (unsigned w = 0; w < wordsPerLine; ++w) {
        if (line.st[w] == WordState::Registered)
            dirty |= wordBit(w);
    }
    if (dirty)
        writebackWords(line, dirty);
    line.allocated = false;
}

void
L1Cache::writebackWords(Line &line, WordMask mask)
{
    ++_stats.writebacks;
    _stats.wordsWrittenBack += popcount(mask);
    Msg wb;
    wb.type = MsgType::WbReq;
    wb.requester = owner;
    wb.requesterUnit = Unit::L1;
    wb.linePA = line.pa;
    wb.mask = mask;
    wb.data = line.data;
    fabric.send(node, fabric.nodeOfLlc(line.pa), Unit::Llc,
                std::move(wb));
}

WordMask
L1Cache::readableMask(const Line &line) const
{
    WordMask m = 0;
    for (unsigned w = 0; w < wordsPerLine; ++w) {
        if (readable(line.st[w]))
            m |= wordBit(w);
    }
    return m;
}

void
L1Cache::access(Addr line_va, WordMask mask, bool is_store,
                const LineData *store_data, AccessDone done)
{
    sim_assert(line_va % lineBytes == 0);
    sim_assert(mask != 0);
    doAccess(line_va, mask, is_store, store_data, std::move(done));
}

void
L1Cache::doAccess(Addr line_va, WordMask mask, bool is_store,
                  const LineData *store_data, AccessDone done)
{
    // Physically tagged: translate on every access.  Statistics are
    // charged only when the access actually proceeds (a deferred
    // access sits in a post-translation queue and is not re-charged
    // on replay).
    const PhysAddr line_pa = tlb.translate(line_va);

    Line *line = findLine(line_pa);
    const Tick hit_latency = params.hitCycles * params.clockPeriod;

    if (is_store) {
        sim_assert(store_data != nullptr);
        if (!line) {
            line = allocLine(line_pa);
            if (!line) {
                // All ways pinned: defer until an MSHR releases.
                DeferredAccess d{line_va, mask, true, *store_data, true,
                                 std::move(done)};
                deferred.push_back(std::move(d));
                return;
            }
        }
        ++_stats.tlbAccesses;
        line->lastUse = ++useClock;
        WordMask need_reg = 0;
        for (unsigned w = 0; w < wordsPerLine; ++w) {
            if (!(mask & wordBit(w)))
                continue;
            line->data.w[w] = store_data->w[w];
            if (checker) {
                checker->onStore(line_pa + PhysAddr(w) * wordBytes,
                                 store_data->w[w]);
            }
            if (line->st[w] != WordState::Registered) {
                line->st[w] = WordState::Registered;
                need_reg |= wordBit(w);
            }
        }
        _stats.hitWords += popcount(WordMask(mask & ~need_reg));
        _stats.missWords += popcount(need_reg);
        if (need_reg) {
            ++_stats.storeMisses;
            Msg reg;
            reg.type = MsgType::RegReq;
            reg.requester = owner;
            reg.requesterUnit = Unit::L1;
            reg.linePA = line_pa;
            reg.mask = need_reg;
            fabric.send(node, fabric.nodeOfLlc(line_pa), Unit::Llc,
                        std::move(reg));
        } else {
            ++_stats.storeHits;
        }
        // Stores complete locally (write-buffer semantics); the
        // registration ack is not on the critical path.
        LineData snapshot = line->data;
        eq.scheduleIn(hit_latency, [done = std::move(done),
                                    snapshot]() { done(snapshot); });
        return;
    }

    // Load path.
    const WordMask present = line ? readableMask(*line) : 0;
    const WordMask missing = mask & ~present;
    if (!missing) {
        ++_stats.tlbAccesses;
        ++_stats.loadHits;
        _stats.hitWords += popcount(mask);
        line->lastUse = ++useClock;
        LineData snapshot = line->data;
        eq.scheduleIn(hit_latency, [done = std::move(done),
                                    snapshot]() { done(snapshot); });
        return;
    }

    if (!line) {
        if (mshrs.size() >= params.mshrs &&
            mshrs.find(line_pa) == mshrs.end()) {
            deferred.push_back(
                DeferredAccess{line_va, mask, false, LineData{}, false,
                               std::move(done)});
            return;
        }
        line = allocLine(line_pa);
        if (!line) {
            deferred.push_back(
                DeferredAccess{line_va, mask, false, LineData{}, false,
                               std::move(done)});
            return;
        }
    }
    ++_stats.tlbAccesses;
    ++_stats.loadMisses;
    _stats.hitWords += popcount(WordMask(mask & ~missing));
    _stats.missWords += popcount(missing);
    line->lastUse = ++useClock;
    line->pinned = true;

    Mshr &mshr = mshrs[line_pa];
    mshr.waiters.push_back(Waiter{mask, std::move(done)});
    const WordMask to_request = missing & ~mshr.requested;
    if (to_request) {
        mshr.requested |= to_request;
        Msg req;
        req.type = MsgType::ReadReq;
        req.requester = owner;
        req.requesterUnit = Unit::L1;
        req.linePA = line_pa;
        req.mask = to_request;
        req.wordsOnly = false; // caches take whole-line fills
        fabric.send(node, fabric.nodeOfLlc(line_pa), Unit::Llc,
                    std::move(req));
    }
}

void
L1Cache::completeWaiters(PhysAddr line_pa, Line &line)
{
    auto it = mshrs.find(line_pa);
    if (it == mshrs.end())
        return;
    Mshr &mshr = it->second;
    const WordMask present = readableMask(line);
    const Tick hit_latency = params.hitCycles * params.clockPeriod;

    for (auto w = mshr.waiters.begin(); w != mshr.waiters.end();) {
        if ((w->mask & ~present) == 0) {
            LineData snapshot = line.data;
            eq.scheduleIn(hit_latency,
                          [done = std::move(w->done), snapshot]() {
                              done(snapshot);
                          });
            w = mshr.waiters.erase(w);
        } else {
            ++w;
        }
    }
    if (mshr.waiters.empty()) {
        mshrs.erase(it);
        line.pinned = false;
        replayDeferred();
    }
}

void
L1Cache::replayDeferred()
{
    if (deferred.empty())
        return;
    // Replay everything; unservable accesses re-defer themselves.
    std::deque<DeferredAccess> pending;
    pending.swap(deferred);
    for (auto &d : pending) {
        doAccess(d.lineVA, d.mask, d.isStore,
                 d.hasStoreData ? &d.storeData : nullptr,
                 std::move(d.done));
    }
}

void
L1Cache::receive(const Msg &msg)
{
    switch (msg.type) {
      case MsgType::ReadResp: {
        Line *line = findLine(msg.linePA);
        if (!line) {
            // The MSHR pins the line, so this cannot happen unless
            // there was no MSHR (late duplicate response); drop.
            return;
        }
        // Checker: verify only the *demanded* words of this fill.  An
        // opportunistic whole-line fill may carry words whose new
        // registration is still in flight (transiently stale at the
        // LLC); demanded words are race-free under the DRF discipline.
        WordMask demanded = 0;
        if (checker) {
            auto mit = mshrs.find(msg.linePA);
            if (mit != mshrs.end())
                demanded = mit->second.requested;
        }
        for (unsigned w = 0; w < wordsPerLine; ++w) {
            if (!(msg.mask & wordBit(w)))
                continue;
            if (line->st[w] == WordState::Invalid) {
                line->data.w[w] = msg.data.w[w];
                line->st[w] = WordState::Valid;
                if (demanded & wordBit(w)) {
                    checker->onFill(
                        "L1", owner,
                        msg.linePA + PhysAddr(w) * wordBytes,
                        msg.data.w[w]);
                }
            }
            // Registered words hold our own newer data; never
            // overwrite them with a fill.
        }
        completeWaiters(msg.linePA, *line);
        return;
      }
      case MsgType::RegAck:
        // Registration was taken optimistically at store time.
        return;
      case MsgType::InvReq: {
        Line *line = findLine(msg.linePA);
        if (!line)
            return;
        for (unsigned w = 0; w < wordsPerLine; ++w) {
            if (msg.mask & wordBit(w))
                line->st[w] = WordState::Invalid;
        }
        return;
      }
      case MsgType::FwdReadReq: {
        Line *line = findLine(msg.linePA);
        const WordMask have = line ? readableMask(*line) : 0;
        const WordMask can = msg.mask & have;
        if (can) {
            ++_stats.remoteHits;
            Msg resp;
            resp.type = MsgType::ReadResp;
            resp.requester = msg.requester;
            resp.requesterUnit = msg.requesterUnit;
            resp.linePA = msg.linePA;
            resp.mask = can;
            resp.data = line->data;
            fabric.sendToRequester(node, resp);
        }
        const WordMask miss = msg.mask & ~have;
        if (miss) {
            if (msg.retries > 100) {
                panic("L1: unresolvable forwarded request "
                      "(stale registration at the directory?)");
            }
            // Raced with our own writeback; bounce back to the LLC.
            Msg retry;
            retry.type = MsgType::FwdRetry;
            retry.requester = msg.requester;
            retry.requesterUnit = msg.requesterUnit;
            retry.linePA = msg.linePA;
            retry.mask = miss;
            retry.wordsOnly = true;
            retry.retries = std::uint8_t(msg.retries + 1);
            fabric.send(node, fabric.nodeOfLlc(msg.linePA), Unit::Llc,
                        std::move(retry));
        }
        return;
      }
      case MsgType::WbAck:
        return;
      default:
        panic("L1 received unexpected ", msgTypeName(msg.type));
    }
}

void
L1Cache::selfInvalidate()
{
    for (Line &line : lines) {
        if (!line.allocated)
            continue;
        bool any_registered = false;
        for (unsigned w = 0; w < wordsPerLine; ++w) {
            if (line.st[w] == WordState::Valid) {
                if (checker) {
                    checker->onSelfInvalidate(
                        "L1", owner, line.pa + PhysAddr(w) * wordBytes,
                        line.st[w]);
                }
                line.st[w] = WordState::Invalid;
                ++_stats.selfInvalidations;
            } else if (line.st[w] == WordState::Registered) {
                any_registered = true;
            }
        }
        if (!any_registered && !line.pinned)
            line.allocated = false;
    }
}

void
L1Cache::flushAll()
{
    for (Line &line : lines) {
        if (!line.allocated)
            continue;
        WordMask dirty = 0;
        for (unsigned w = 0; w < wordsPerLine; ++w) {
            if (line.st[w] == WordState::Registered) {
                dirty |= wordBit(w);
                line.st[w] = WordState::Valid;
            }
        }
        if (dirty)
            writebackWords(line, dirty);
    }
}

void
L1Cache::forEachWord(
    const std::function<void(PhysAddr, WordState, std::uint32_t)> &fn)
    const
{
    for (const Line &line : lines) {
        if (!line.allocated)
            continue;
        for (unsigned w = 0; w < wordsPerLine; ++w) {
            if (line.st[w] != WordState::Invalid) {
                fn(line.pa + PhysAddr(w) * wordBytes, line.st[w],
                   line.data.w[w]);
            }
        }
    }
}

WordState
L1Cache::probe(Addr va)
{
    const PhysAddr pa = tlb.translate(va);
    Line *line = findLine(lineBase(pa));
    if (!line)
        return WordState::Invalid;
    return line->st[lineWord(pa)];
}

void
L1Cache::snapshot(SnapshotWriter &w) const
{
    // Checkpoints happen only at drain points, where no transaction
    // is in flight by construction.
    sim_assert(mshrs.empty());
    sim_assert(deferred.empty());
    w.u32(sets);
    w.u32(params.assoc);
    w.u64(useClock);
    writeStats(w, _stats);
    std::uint32_t allocated = 0;
    for (const Line &line : lines)
        allocated += line.allocated ? 1 : 0;
    w.u32(allocated);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const Line &line = lines[i];
        if (!line.allocated)
            continue;
        sim_assert(!line.pinned);
        w.u32(std::uint32_t(i));
        w.u64(line.pa);
        for (unsigned j = 0; j < wordsPerLine; ++j)
            w.u8(std::uint8_t(line.st[j]));
        for (unsigned j = 0; j < wordsPerLine; ++j)
            w.u32(line.data.w[j]);
        w.u64(line.lastUse);
    }
}

void
L1Cache::restore(SnapshotReader &r)
{
    sim_assert(mshrs.empty());
    sim_assert(deferred.empty());
    r.require(r.u32() == sets, "L1 set count mismatch");
    r.require(r.u32() == params.assoc, "L1 associativity mismatch");
    useClock = r.u64();
    readStats(r, _stats);
    lines.assign(lines.size(), Line{});
    const std::uint32_t allocated = r.u32();
    for (std::uint32_t k = 0; k < allocated; ++k) {
        const std::uint32_t i = r.u32();
        r.require(i < lines.size(), "L1 line index out of range");
        Line &line = lines[i];
        r.require(!line.allocated, "duplicate L1 line index");
        line.allocated = true;
        line.pa = r.u64();
        for (unsigned j = 0; j < wordsPerLine; ++j) {
            const std::uint8_t st = r.u8();
            r.require(st <= std::uint8_t(WordState::Registered),
                      "bad word state");
            line.st[j] = WordState(st);
        }
        for (unsigned j = 0; j < wordsPerLine; ++j)
            line.data.w[j] = r.u32();
        line.lastUse = r.u64();
    }
}

} // namespace stashsim
