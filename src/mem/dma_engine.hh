/**
 * @file
 * D2MA-style DMA engine for scratchpads (the ScratchGD baseline).
 *
 * Follows the paper's Section 5.3 variant of D2MA (Jamshidi et al.,
 * PACT'14): strided gather/scatter transfers move data directly
 * between the global address space and the scratchpad, bypassing the
 * L1 (no pollution, no per-element load/store instructions), blocking
 * at *core* granularity (the thread block waits for the whole
 * transfer), and supporting stores as well as loads.  Like the paper,
 * we conservatively charge no energy for the engine itself — but the
 * scratchpad *is* charged for the DMA's fills and drains, which is
 * one of the stash's remaining advantages (the stash writes its
 * storage once, on the miss fill, not once per DMA plus once per
 * program access).
 *
 * What DMA cannot do (and the stash can): on-demand transfer of only
 * the accessed elements, lazy writebacks, and reuse across kernels —
 * every mapped word is moved, every kernel, in both directions when
 * written.
 */

#ifndef STASHSIM_MEM_DMA_ENGINE_HH
#define STASHSIM_MEM_DMA_ENGINE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "mem/fabric.hh"
#include "mem/scratchpad.hh"
#include "mem/tile.hh"
#include "mem/tlb.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace stashsim
{

class ProtocolChecker;
class SnapshotReader;
class SnapshotWriter;
class Watchdog;

/**
 * One per-CU DMA engine.
 */
class DmaEngine : public MemObject
{
  public:
    using DoneFn = std::function<void()>;

    DmaEngine(EventQueue &eq, Fabric &fabric, Tlb &tlb,
              Scratchpad &spad, CoreId owner, NodeId node,
              unsigned max_inflight_lines = 32);

    /**
     * Gathers the tile into the scratchpad at byte offset @p base.
     * @p done runs when every word has been written to the
     * scratchpad.
     */
    void load(const TileSpec &tile, LocalAddr base, DoneFn done);

    /**
     * Scatters scratchpad data at @p base back to the tile's global
     * addresses.  @p done runs when the LLC has acknowledged every
     * line.
     */
    void store(const TileSpec &tile, LocalAddr base, DoneFn done);

    void receive(const Msg &msg) override;

    const DmaStats &stats() const { return _stats; }

    /** Shadows DMA stores and fills against @p c. */
    void attachChecker(ProtocolChecker *c) { checker = c; }

    /** Reports per-line completions as forward progress to @p w. */
    void setWatchdog(Watchdog *w) { watchdog = w; }

    /**
     * Serializes stats (the only state that outlives a drain point:
     * no pending lines, no queued requests).
     */
    void snapshot(SnapshotWriter &w) const;

    /** Restores a drain-point checkpoint. */
    void restore(SnapshotReader &r);

  private:
    struct Transfer
    {
        unsigned pendingLines = 0;
        DoneFn done;
    };

    struct PendingLine
    {
        std::shared_ptr<Transfer> xfer;
        /** word-in-line -> scratchpad byte address (loads only). */
        std::vector<std::pair<unsigned, LocalAddr>> fills;
        WordMask mask = 0;
    };

    /** Builds the line->words plan for a tile at @p base. */
    std::map<PhysAddr, PendingLine> plan(const TileSpec &tile,
                                         LocalAddr base,
                                         std::shared_ptr<Transfer> x);

    /** Issues queued line requests while slots are free. */
    void pump();

    EventQueue &eq;
    Fabric &fabric;
    Tlb &tlb;
    Scratchpad &spad;
    CoreId owner;
    NodeId node;
    /** Outstanding-line window (the engine's MSHR equivalent). */
    unsigned maxInflight;
    /** In-flight line transfers, FIFO per line address. */
    std::multimap<PhysAddr, PendingLine> pending;
    /**
     * Line requests waiting for a free slot; FIFO starting at
     * queuedHead.  Consumed entries are skipped, not erased (a front
     * erase would shift the whole burst), and the storage is
     * reclaimed once the burst drains.
     */
    std::vector<std::pair<Msg, PendingLine>> queued;
    std::size_t queuedHead = 0;
    DmaStats _stats;
    ProtocolChecker *checker = nullptr;
    Watchdog *watchdog = nullptr;
};

} // namespace stashsim

#endif // STASHSIM_MEM_DMA_ENGINE_HH
