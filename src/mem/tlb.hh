/**
 * @file
 * Per-core TLB.
 *
 * A 64-entry LRU TLB (Table 2).  Physically-tagged L1 caches consult
 * the TLB on every access, which is exactly the energy the stash
 * avoids on hits (Table 3 charges 14.1 pJ per TLB access).  Following
 * the paper (footnote 8), TLB misses are not charged a timing
 * penalty: every access is charged as a hit; misses still refill from
 * the page table so the entry bookkeeping is real.
 */

#ifndef STASHSIM_MEM_TLB_HH
#define STASHSIM_MEM_TLB_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "mem/page_table.hh"
#include "sim/types.hh"

namespace stashsim
{

class SnapshotWriter;
class SnapshotReader;

/**
 * An LRU TLB backed by the shared page table.
 */
class Tlb
{
  public:
    Tlb(PageTable &pt, unsigned entries) : pageTable(pt), capacity(entries)
    {}

    /** Translates @p va, counting one TLB access. */
    PhysAddr translate(Addr va);

    std::uint64_t accesses() const { return _accesses; }
    std::uint64_t misses() const { return _misses; }
    std::size_t size() const { return lru.size(); }

    /** Serializes counters + entries in MRU-first order. */
    void snapshot(SnapshotWriter &w) const;

    /**
     * Restores counters and replacement state.  The one-entry MRU
     * fast path resets to "no last page": it is a host-side shortcut
     * whose hit and miss paths count identically, so warming it lazily
     * cannot perturb any modelled counter.
     */
    void restore(SnapshotReader &r);

  private:
    void touch(Addr vpage, PhysAddr ppage);

    PageTable &pageTable;
    unsigned capacity;
    /**
     * One-entry MRU fast path: the page of the immediately preceding
     * translate().  Its LRU node is by construction at the front of
     * the list, so answering from this pair leaves the replacement
     * state bit-identical while skipping the map find and the splice.
     * (~Addr{0} is not page-aligned, so it never matches.)
     */
    Addr lastVpage = ~Addr{0};
    PhysAddr lastPpage = 0;
    /** MRU-first list of (vpage, ppage). */
    std::list<std::pair<Addr, PhysAddr>> lru;
    std::unordered_map<Addr, std::list<std::pair<Addr, PhysAddr>>::iterator>
        index;
    std::uint64_t _accesses = 0;
    std::uint64_t _misses = 0;
};

} // namespace stashsim

#endif // STASHSIM_MEM_TLB_HH
