/**
 * @file
 * Functional (zero-time) access to the memory image by virtual
 * address.  Used by workloads to set up initial data and by
 * validation to inspect final results; it bypasses all timing and
 * coherence machinery, so the System only exposes it outside the
 * simulated run (and after flushing all caches/stashes).
 */

#ifndef STASHSIM_MEM_FUNCTIONAL_MEM_HH
#define STASHSIM_MEM_FUNCTIONAL_MEM_HH

#include "mem/main_memory.hh"
#include "mem/page_table.hh"

namespace stashsim
{

/**
 * Virtual-addressed functional view of main memory.
 */
class FunctionalMem
{
  public:
    FunctionalMem(MainMemory &mem, PageTable &pt) : mem(mem), pt(pt) {}

    std::uint32_t
    readWord(Addr va)
    {
        return mem.readWord(pt.translate(va));
    }

    void
    writeWord(Addr va, std::uint32_t value)
    {
        mem.writeWord(pt.translate(va), value);
    }

  private:
    MainMemory &mem;
    PageTable &pt;
};

} // namespace stashsim

#endif // STASHSIM_MEM_FUNCTIONAL_MEM_HH
