#include "mem/fabric.hh"

#include <algorithm>
#include <ostream>

#include "sim/log.hh"
#include "snapshot/snapshot.hh"
#include "verify/fault_injector.hh"

namespace stashsim
{

void
Fabric::registerObject(NodeId node, Unit unit, MemObject *obj)
{
    sim_assert(obj != nullptr);
    auto key = std::make_pair(node, unsigned(unit));
    sim_assert(objects.find(key) == objects.end());
    objects[key] = obj;
}

void
Fabric::registerCore(CoreId core, NodeId node)
{
    if (coreNodes.size() <= core)
        coreNodes.resize(core + 1, NodeId(~0u));
    coreNodes[core] = node;
}

NodeId
Fabric::nodeOfCore(CoreId core) const
{
    sim_assert(core < coreNodes.size());
    sim_assert(coreNodes[core] != NodeId(~0u));
    return coreNodes[core];
}

void
Fabric::bindQueues(std::vector<EventQueue *> queues, bool sharded)
{
    sim_assert(queues.size() == mesh.numNodes());
    tileQueues = std::move(queues);
    shardedMode = sharded;
    staged.assign(tileQueues.size(), {});
    flushArmedFor = noFlush;
}

void
Fabric::send(NodeId src, NodeId dst, Unit unit, Msg msg)
{
    auto it = objects.find(std::make_pair(dst, unsigned(unit)));
    if (it == objects.end()) {
        panic("fabric: no ", unsigned(unit), " unit at node ", dst,
              " for ", msgTypeName(msg.type));
    }
    MemObject *target = it->second;
    if (dropFilter && dropFilter(src, dst, msg)) {
        ++droppedMsgs;
        return;
    }
    if (injector) {
        // The dispatch closure owns a copy of the message: the
        // injector may invoke it now, later, or twice (duplication).
        const Msg &m = msg;
        injector->inject(src, dst, m,
                         [this, src, dst, target, msg]() {
                             dispatch(src, dst, target, msg);
                         });
        return;
    }
    dispatch(src, dst, target, std::move(msg));
}

void
Fabric::dispatch(NodeId src, NodeId dst, MemObject *target, Msg msg)
{
    _sent[unsigned(msg.type)].fetch_add(1, std::memory_order_relaxed);
    if (tileQueues.empty()) {
        // Unbound (standalone/unit-test) fabric: route immediately.
        mesh.send(src, dst, msgBytes(msg), msgClassOf(msg.type),
                  [this, target, msg = std::move(msg)]() {
                      _delivered[unsigned(msg.type)].fetch_add(
                          1, std::memory_order_relaxed);
                      target->receive(msg);
                  });
        return;
    }
    const Tick t = tileQueues[src]->curTick();
    staged[src].push_back({t, dst, target, std::move(msg)});
    if (!shardedMode)
        armFlush(t);
}

void
Fabric::armFlush(Tick t)
{
    if (flushArmedFor == t)
        return;
    flushArmedFor = t;
    tileQueues[0]->schedule(
        t, [this] { flushStaged(); }, EventQueue::PriInternal);
}

void
Fabric::flushStaged()
{
    flushArmedFor = noFlush;
    // Canonical global routing order: (tick, src node, per-src send
    // order).  Per-src vectors are already tick-ordered (each source
    // stages in its own execution order), so the sort key is total
    // and deterministic.  In serial mode every entry shares the
    // current tick and this reduces to src-major order.
    flushOrder.clear();
    for (NodeId src = 0; src < staged.size(); ++src) {
        for (std::uint32_t i = 0; i < staged[src].size(); ++i)
            flushOrder.emplace_back(staged[src][i].tick, src, i);
    }
    std::sort(flushOrder.begin(), flushOrder.end());
    for (const auto &[tick, src, idx] : flushOrder)
        deliverStaged(src, staged[src][idx]);
    for (auto &v : staged)
        v.clear();
}

void
Fabric::deliverStaged(NodeId src, Staged &e)
{
    const Tick arrive = mesh.route(src, e.dst, msgBytes(e.msg),
                                   msgClassOf(e.msg.type), e.tick);
    tileQueues[e.dst]->schedule(
        arrive,
        [this, target = e.target, msg = std::move(e.msg)]() {
            _delivered[unsigned(msg.type)].fetch_add(
                1, std::memory_order_relaxed);
            target->receive(msg);
        },
        EventQueue::PriDelivery);
}

std::uint64_t
Fabric::totalInFlight() const
{
    std::uint64_t n = 0;
    for (unsigned t = 0; t < numMsgTypes; ++t)
        n += inFlight(MsgType(t));
    return n;
}

void
Fabric::dumpState(std::ostream &os) const
{
    os << "fabric: " << totalInFlight() << " message(s) in flight";
    if (droppedMsgs)
        os << ", " << droppedMsgs << " dropped by test filter";
    os << "\n";
    for (unsigned t = 0; t < numMsgTypes; ++t) {
        const std::uint64_t sent =
            _sent[t].load(std::memory_order_relaxed);
        const std::uint64_t delivered =
            _delivered[t].load(std::memory_order_relaxed);
        if (sent == delivered)
            continue;
        os << "  " << msgTypeName(MsgType(t)) << ": "
           << sent - delivered << " in flight (" << sent << " sent, "
           << delivered << " delivered)\n";
    }
}

bool
Fabric::stagedEmpty() const
{
    for (const auto &box : staged)
        if (!box.empty())
            return false;
    return true;
}

void
Fabric::snapshot(SnapshotWriter &w) const
{
    // Checkpoints happen only at drain points, where every staged
    // mailbox has been flushed and delivered.
    sim_assert(stagedEmpty());
    w.u32(numMsgTypes);
    for (unsigned t = 0; t < numMsgTypes; ++t) {
        w.u64(_sent[t].load(std::memory_order_relaxed));
        w.u64(_delivered[t].load(std::memory_order_relaxed));
    }
}

void
Fabric::restore(SnapshotReader &r)
{
    sim_assert(stagedEmpty());
    r.require(r.u32() == numMsgTypes, "message-type count mismatch");
    for (unsigned t = 0; t < numMsgTypes; ++t) {
        _sent[t].store(r.u64(), std::memory_order_relaxed);
        _delivered[t].store(r.u64(), std::memory_order_relaxed);
    }
}

} // namespace stashsim
