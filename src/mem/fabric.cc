#include "mem/fabric.hh"

#include <algorithm>
#include <ostream>

#include "sim/log.hh"
#include "snapshot/snapshot.hh"
#include "verify/fault_injector.hh"

namespace stashsim
{

void
Fabric::registerObject(NodeId node, Unit unit, MemObject *obj)
{
    sim_assert(obj != nullptr);
    auto key = std::make_pair(node, unsigned(unit));
    sim_assert(objects.find(key) == objects.end());
    objects[key] = obj;
}

void
Fabric::registerCore(CoreId core, NodeId node)
{
    if (coreNodes.size() <= core)
        coreNodes.resize(core + 1, NodeId(~0u));
    coreNodes[core] = node;
}

NodeId
Fabric::nodeOfCore(CoreId core) const
{
    sim_assert(core < coreNodes.size());
    sim_assert(coreNodes[core] != NodeId(~0u));
    return coreNodes[core];
}

void
Fabric::bindQueues(std::vector<EventQueue *> queues, bool sharded)
{
    sim_assert(queues.size() == mesh.numNodes());
    tileQueues = std::move(queues);
    shardedMode = sharded;
    staged.assign(tileQueues.size(), {});
    flushArmedFor = noFlush;
}

void
Fabric::send(NodeId src, NodeId dst, Unit unit, Msg msg)
{
    auto it = objects.find(std::make_pair(dst, unsigned(unit)));
    if (it == objects.end()) {
        panic("fabric: no ", unsigned(unit), " unit at node ", dst,
              " for ", msgTypeName(msg.type));
    }
    MemObject *target = it->second;
    if (dropFilter && dropFilter(src, dst, msg)) {
        ++droppedMsgs;
        return;
    }
    if (injector) {
        // The dispatch closure owns a copy of the message: the
        // injector may invoke it now, later, or twice (duplication).
        const Msg &m = msg;
        injector->inject(src, dst, m,
                         [this, src, dst, target, msg]() {
                             dispatch(src, dst, target, msg);
                         });
        return;
    }
    dispatch(src, dst, target, std::move(msg));
}

void
Fabric::dispatch(NodeId src, NodeId dst, MemObject *target, Msg msg)
{
    _sent[unsigned(msg.type)].fetch_add(1, std::memory_order_relaxed);
    if (tileQueues.empty()) {
        // Unbound (standalone/unit-test) fabric: route immediately.
        mesh.send(src, dst, msgBytes(msg), msgClassOf(msg.type),
                  [this, target, msg = std::move(msg)]() {
                      _delivered[unsigned(msg.type)].fetch_add(
                          1, std::memory_order_relaxed);
                      target->receive(msg);
                  });
        return;
    }
    const Tick t = tileQueues[src]->curTick();
    Mailbox &box = staged[src];
    if (!box.entries.empty() && t < box.entries.back().tick)
        box.ordered = false;
    box.entries.push_back({t, dst, target, std::move(msg)});
    if (!shardedMode)
        armFlush(t);
}

void
Fabric::armFlush(Tick t)
{
    if (flushArmedFor == t)
        return;
    flushArmedFor = t;
    tileQueues[0]->schedule(
        t, [this] { flushStaged(); }, EventQueue::PriInternal);
}

void
Fabric::flushStaged()
{
    flushArmedFor = noFlush;
    // Canonical global routing order: (tick, src node, per-src send
    // order).  Per-source mailboxes are tick-ordered by construction
    // (a source's queue time never runs backwards), so the canonical
    // order falls out of an allocation-free merge — no per-flush sort
    // of the whole staged set.  Two common shapes skip even the
    // merge: exactly one source staged (its staging order IS the
    // canonical order), and all entries sharing one tick (the serial
    // engine's PriInternal flush runs at the staging tick, so this is
    // every serial flush; canonical order reduces to src-major).
    NodeId onlySrc = 0;
    unsigned nonEmpty = 0;
    Tick lo = ~Tick{0};
    Tick hi = 0;
    for (NodeId src = 0; src < staged.size(); ++src) {
        Mailbox &box = staged[src];
        if (box.entries.empty())
            continue;
        if (!box.ordered) {
            // Defensive fallback; not hit by any current send path.
            // stable_sort preserves staging order within a tick, so
            // the canonical (tick, src, per-src order) key survives.
            std::stable_sort(box.entries.begin(), box.entries.end(),
                             [](const Staged &a, const Staged &b) {
                                 return a.tick < b.tick;
                             });
            box.ordered = true;
            ++_flushResorted;
        }
        ++nonEmpty;
        onlySrc = src;
        lo = std::min(lo, box.entries.front().tick);
        hi = std::max(hi, box.entries.back().tick);
    }
    if (nonEmpty == 0)
        return;
    ++_flushes;

    if (nonEmpty == 1) {
        ++_flushSingleSource;
        Mailbox &box = staged[onlySrc];
        for (Staged &e : box.entries)
            deliverStaged(onlySrc, e);
        box.entries.clear();
        return;
    }

    if (lo == hi) {
        ++_flushUniformTick;
        for (NodeId src = 0; src < staged.size(); ++src) {
            Mailbox &box = staged[src];
            for (Staged &e : box.entries)
                deliverStaged(src, e);
            box.entries.clear();
        }
        return;
    }

    // General case: k-way cursor merge keyed on (tick, src).  The
    // source count is the mesh size (16), so a linear min-scan per
    // delivery beats heap bookkeeping and allocates nothing.
    ++_flushMerged;
    if (cursors.size() < staged.size())
        cursors.resize(staged.size());
    std::fill(cursors.begin(), cursors.end(), 0);
    for (;;) {
        NodeId best = NodeId(~0u);
        Tick bestTick = ~Tick{0};
        for (NodeId src = 0; src < staged.size(); ++src) {
            const Mailbox &box = staged[src];
            if (cursors[src] >= box.entries.size())
                continue;
            const Tick t = box.entries[cursors[src]].tick;
            if (best == NodeId(~0u) || t < bestTick) {
                best = src;
                bestTick = t;
            }
        }
        if (best == NodeId(~0u))
            break;
        deliverStaged(best, staged[best].entries[cursors[best]]);
        ++cursors[best];
    }
    for (auto &box : staged)
        box.entries.clear();
}

void
Fabric::deliverStaged(NodeId src, Staged &e)
{
    const Tick arrive = mesh.route(src, e.dst, msgBytes(e.msg),
                                   msgClassOf(e.msg.type), e.tick);
    tileQueues[e.dst]->schedule(
        arrive,
        [this, target = e.target, msg = std::move(e.msg)]() {
            _delivered[unsigned(msg.type)].fetch_add(
                1, std::memory_order_relaxed);
            target->receive(msg);
        },
        EventQueue::PriDelivery);
}

std::uint64_t
Fabric::totalInFlight() const
{
    std::uint64_t n = 0;
    for (unsigned t = 0; t < numMsgTypes; ++t)
        n += inFlight(MsgType(t));
    return n;
}

void
Fabric::dumpState(std::ostream &os) const
{
    os << "fabric: " << totalInFlight() << " message(s) in flight";
    if (droppedMsgs)
        os << ", " << droppedMsgs << " dropped by test filter";
    os << "\n";
    for (unsigned t = 0; t < numMsgTypes; ++t) {
        const std::uint64_t sent =
            _sent[t].load(std::memory_order_relaxed);
        const std::uint64_t delivered =
            _delivered[t].load(std::memory_order_relaxed);
        if (sent == delivered)
            continue;
        os << "  " << msgTypeName(MsgType(t)) << ": "
           << sent - delivered << " in flight (" << sent << " sent, "
           << delivered << " delivered)\n";
    }
}

bool
Fabric::stagedEmpty() const
{
    for (const auto &box : staged)
        if (!box.entries.empty())
            return false;
    return true;
}

void
Fabric::snapshot(SnapshotWriter &w) const
{
    // Checkpoints happen only at drain points, where every staged
    // mailbox has been flushed and delivered.
    sim_assert(stagedEmpty());
    w.u32(numMsgTypes);
    for (unsigned t = 0; t < numMsgTypes; ++t) {
        w.u64(_sent[t].load(std::memory_order_relaxed));
        w.u64(_delivered[t].load(std::memory_order_relaxed));
    }
}

void
Fabric::restore(SnapshotReader &r)
{
    sim_assert(stagedEmpty());
    r.require(r.u32() == numMsgTypes, "message-type count mismatch");
    for (unsigned t = 0; t < numMsgTypes; ++t) {
        _sent[t].store(r.u64(), std::memory_order_relaxed);
        _delivered[t].store(r.u64(), std::memory_order_relaxed);
    }
}

} // namespace stashsim
