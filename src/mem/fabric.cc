#include "mem/fabric.hh"

#include <ostream>

#include "sim/log.hh"
#include "verify/fault_injector.hh"

namespace stashsim
{

void
Fabric::registerObject(NodeId node, Unit unit, MemObject *obj)
{
    sim_assert(obj != nullptr);
    auto key = std::make_pair(node, unsigned(unit));
    sim_assert(objects.find(key) == objects.end());
    objects[key] = obj;
}

void
Fabric::registerCore(CoreId core, NodeId node)
{
    if (coreNodes.size() <= core)
        coreNodes.resize(core + 1, NodeId(~0u));
    coreNodes[core] = node;
}

NodeId
Fabric::nodeOfCore(CoreId core) const
{
    sim_assert(core < coreNodes.size());
    sim_assert(coreNodes[core] != NodeId(~0u));
    return coreNodes[core];
}

void
Fabric::send(NodeId src, NodeId dst, Unit unit, Msg msg)
{
    auto it = objects.find(std::make_pair(dst, unsigned(unit)));
    if (it == objects.end()) {
        panic("fabric: no ", unsigned(unit), " unit at node ", dst,
              " for ", msgTypeName(msg.type));
    }
    MemObject *target = it->second;
    if (dropFilter && dropFilter(src, dst, msg)) {
        ++droppedMsgs;
        return;
    }
    if (injector) {
        // The dispatch closure owns a copy of the message: the
        // injector may invoke it now, later, or twice (duplication).
        const Msg &m = msg;
        injector->inject(src, dst, m,
                         [this, src, dst, target, msg]() {
                             dispatch(src, dst, target, msg);
                         });
        return;
    }
    dispatch(src, dst, target, std::move(msg));
}

void
Fabric::dispatch(NodeId src, NodeId dst, MemObject *target, Msg msg)
{
    ++_sent[unsigned(msg.type)];
    mesh.send(src, dst, msgBytes(msg), msgClassOf(msg.type),
              [this, target, msg = std::move(msg)]() {
                  ++_delivered[unsigned(msg.type)];
                  target->receive(msg);
              });
}

std::uint64_t
Fabric::totalInFlight() const
{
    std::uint64_t n = 0;
    for (unsigned t = 0; t < numMsgTypes; ++t)
        n += _sent[t] - _delivered[t];
    return n;
}

void
Fabric::dumpState(std::ostream &os) const
{
    os << "fabric: " << totalInFlight() << " message(s) in flight";
    if (droppedMsgs)
        os << ", " << droppedMsgs << " dropped by test filter";
    os << "\n";
    for (unsigned t = 0; t < numMsgTypes; ++t) {
        if (_sent[t] == _delivered[t])
            continue;
        os << "  " << msgTypeName(MsgType(t)) << ": "
           << _sent[t] - _delivered[t] << " in flight (" << _sent[t]
           << " sent, " << _delivered[t] << " delivered)\n";
    }
}

} // namespace stashsim
