#include "mem/fabric.hh"

#include "sim/log.hh"

namespace stashsim
{

void
Fabric::registerObject(NodeId node, Unit unit, MemObject *obj)
{
    sim_assert(obj != nullptr);
    auto key = std::make_pair(node, unsigned(unit));
    sim_assert(objects.find(key) == objects.end());
    objects[key] = obj;
}

void
Fabric::registerCore(CoreId core, NodeId node)
{
    if (coreNodes.size() <= core)
        coreNodes.resize(core + 1, NodeId(~0u));
    coreNodes[core] = node;
}

NodeId
Fabric::nodeOfCore(CoreId core) const
{
    sim_assert(core < coreNodes.size());
    sim_assert(coreNodes[core] != NodeId(~0u));
    return coreNodes[core];
}

void
Fabric::send(NodeId src, NodeId dst, Unit unit, Msg msg)
{
    auto it = objects.find(std::make_pair(dst, unsigned(unit)));
    if (it == objects.end()) {
        panic("fabric: no ", unsigned(unit), " unit at node ", dst,
              " for ", msgTypeName(msg.type));
    }
    MemObject *target = it->second;
    mesh.send(src, dst, msgBytes(msg), msgClassOf(msg.type),
              [target, msg = std::move(msg)]() { target->receive(msg); });
}

} // namespace stashsim
