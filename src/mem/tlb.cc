#include "mem/tlb.hh"

namespace stashsim
{

PhysAddr
Tlb::translate(Addr va)
{
    ++_accesses;
    const Addr vpage = pageBase(va);
    if (vpage == lastVpage)
        return lastPpage + (va - vpage);

    auto it = index.find(vpage);
    if (it != index.end()) {
        // Move to MRU position.
        lru.splice(lru.begin(), lru, it->second);
        lastVpage = vpage;
        lastPpage = it->second->second;
        return lastPpage + (va - vpage);
    }

    ++_misses;
    const PhysAddr pa = pageTable.translate(va);
    touch(vpage, pa - (va - vpage));
    lastVpage = vpage;
    lastPpage = pa - (va - vpage);
    return pa;
}

void
Tlb::touch(Addr vpage, PhysAddr ppage)
{
    lru.emplace_front(vpage, ppage);
    index[vpage] = lru.begin();
    if (lru.size() > capacity) {
        index.erase(lru.back().first);
        lru.pop_back();
    }
}

} // namespace stashsim
