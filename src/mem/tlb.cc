#include "mem/tlb.hh"

#include "snapshot/snapshot.hh"

namespace stashsim
{

PhysAddr
Tlb::translate(Addr va)
{
    ++_accesses;
    const Addr vpage = pageBase(va);
    if (vpage == lastVpage)
        return lastPpage + (va - vpage);

    auto it = index.find(vpage);
    if (it != index.end()) {
        // Move to MRU position.
        lru.splice(lru.begin(), lru, it->second);
        lastVpage = vpage;
        lastPpage = it->second->second;
        return lastPpage + (va - vpage);
    }

    ++_misses;
    const PhysAddr pa = pageTable.translate(va);
    touch(vpage, pa - (va - vpage));
    lastVpage = vpage;
    lastPpage = pa - (va - vpage);
    return pa;
}

void
Tlb::touch(Addr vpage, PhysAddr ppage)
{
    lru.emplace_front(vpage, ppage);
    index[vpage] = lru.begin();
    if (lru.size() > capacity) {
        index.erase(lru.back().first);
        lru.pop_back();
    }
}

void
Tlb::snapshot(SnapshotWriter &w) const
{
    w.u64(_accesses);
    w.u64(_misses);
    w.u32(std::uint32_t(lru.size()));
    for (const auto &[vpage, ppage] : lru) { // MRU-first
        w.u64(vpage);
        w.u64(ppage);
    }
}

void
Tlb::restore(SnapshotReader &r)
{
    _accesses = r.u64();
    _misses = r.u64();
    const std::uint32_t n = r.u32();
    r.require(n <= capacity, "more TLB entries than capacity");
    lru.clear();
    index.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
        const Addr vpage = r.u64();
        const PhysAddr ppage = r.u64();
        lru.emplace_back(vpage, ppage);
        index[vpage] = std::prev(lru.end());
    }
    lastVpage = ~Addr{0};
    lastPpage = 0;
}

} // namespace stashsim
