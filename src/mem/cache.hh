/**
 * @file
 * L1 cache with word-granularity DeNovo coherence.
 *
 * 32 KB, 8-way, 64 B lines, writeback (Table 2).  Tags are at line
 * granularity; coherence state is per word (DeNovo).  The cache is
 * physically tagged, so every access consults the per-core TLB — the
 * energy overhead the stash avoids on hits.
 *
 * Protocol behaviour (paper Section 4.3):
 *  - Load miss: request the missing words from the LLC; the LLC
 *    responds with every word of the line it holds (line-granularity
 *    transfer) and forwards remotely-registered demanded words to
 *    their owners.
 *  - Store: writes complete locally; words not yet Registered move to
 *    Registered optimistically while a registration request is sent
 *    to the LLC directory (DeNovo has no transient states; under the
 *    data-race-free discipline the ack cannot be refused).
 *  - Self-invalidation at kernel/phase boundaries drops Valid words
 *    and keeps Registered words.
 *  - Evicting a line writes back only its Registered words.
 *  - The cache serves forwarded requests for words it has registered
 *    (remote L1 hits).
 */

#ifndef STASHSIM_MEM_CACHE_HH
#define STASHSIM_MEM_CACHE_HH

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "mem/coherence/denovo.hh"
#include "mem/fabric.hh"
#include "mem/tlb.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace stashsim
{

class ProtocolChecker;
class SnapshotWriter;
class SnapshotReader;

/**
 * One private L1 cache.
 */
class L1Cache : public MemObject
{
  public:
    struct Params
    {
        unsigned bytes = 32 * 1024;
        unsigned assoc = 8;
        unsigned mshrs = 64;
        Cycles hitCycles = 1;
        Tick clockPeriod = gpuClockPeriod;
    };

    /** Completion callback: delivers the line image (loads read it). */
    using AccessDone = std::function<void(const LineData &)>;

    L1Cache(EventQueue &eq, Fabric &fabric, Tlb &tlb, CoreId owner,
            NodeId node, const Params &p);

    /**
     * Word-masked access to one line.
     *
     * @param line_va   virtual line base address
     * @param mask      words accessed
     * @param is_store  store vs load
     * @param store_data data for stores (words in @p mask); null for
     *                   loads
     * @param done      runs when the access completes
     */
    void access(Addr line_va, WordMask mask, bool is_store,
                const LineData *store_data, AccessDone done);

    /** Kernel/phase boundary: drop Valid words, keep Registered. */
    void selfInvalidate();

    /** Writes back all registered words (end of program). */
    void flushAll();

    void receive(const Msg &msg) override;

    const CacheStats &stats() const { return _stats; }

    /** Number of sets (for tests). */
    unsigned numSets() const { return sets; }

    /** Looks up the state of a word; Invalid if not present. */
    WordState probe(Addr va);

    /** Shadows stores/fills/self-invalidations against @p c. */
    void attachChecker(ProtocolChecker *c) { checker = c; }

    /**
     * Protocol-checker sweep: every readable word of every resident
     * line.  fn(pa, state, data).
     */
    void forEachWord(
        const std::function<void(PhysAddr, WordState, std::uint32_t)>
            &fn) const;

    /**
     * Serializes tags/state/data/LRU + stats.  Only valid at a drain
     * point: no MSHRs, no deferred accesses, no pinned lines.
     */
    void snapshot(SnapshotWriter &w) const;

    /** Restores a drain-point checkpoint into this (same-geometry) cache. */
    void restore(SnapshotReader &r);

  private:
    struct Line
    {
        bool allocated = false;
        PhysAddr pa = 0; //!< line base physical address
        std::array<WordState, wordsPerLine> st{};
        LineData data;
        std::uint64_t lastUse = 0;
        bool pinned = false; //!< an MSHR targets this line
    };

    struct Waiter
    {
        WordMask mask;
        AccessDone done;
    };

    struct Mshr
    {
        std::vector<Waiter> waiters;
        WordMask requested = 0; //!< words asked of the LLC so far
    };

    struct DeferredAccess
    {
        Addr lineVA;
        WordMask mask;
        bool isStore;
        LineData storeData;
        bool hasStoreData;
        AccessDone done;
    };

    unsigned setIndex(PhysAddr pa) const;
    Line *findLine(PhysAddr line_pa);
    /** Allocates a way for @p line_pa; null if all ways are pinned. */
    Line *allocLine(PhysAddr line_pa);
    void evict(Line &line);
    void writebackWords(Line &line, WordMask mask);
    WordMask readableMask(const Line &line) const;
    void completeWaiters(PhysAddr line_pa, Line &line);
    void replayDeferred();
    void doAccess(Addr line_va, WordMask mask, bool is_store,
                  const LineData *store_data, AccessDone done);

    EventQueue &eq;
    Fabric &fabric;
    Tlb &tlb;
    CoreId owner;
    NodeId node;
    Params params;
    unsigned sets;
    std::vector<Line> lines; //!< sets x assoc, row-major
    std::unordered_map<PhysAddr, Mshr> mshrs;
    std::deque<DeferredAccess> deferred;
    std::uint64_t useClock = 0;
    CacheStats _stats;
    ProtocolChecker *checker = nullptr;
};

} // namespace stashsim

#endif // STASHSIM_MEM_CACHE_HH
