/**
 * @file
 * TileSpec: the global-address-space side of an AddMap mapping.
 *
 * AddMap (paper Section 3.1, Figure 2) maps a contiguous range of
 * stash addresses to a possibly non-contiguous 1D/2D tile of global
 * addresses: `numStrides` rows, each covering `rowSize` objects of
 * `objectSize` bytes placed `strideSize` bytes apart, contributing the
 * first `fieldSize` bytes of each object.  A scalar array is the
 * special case fieldSize == objectSize.
 *
 * The forward translation (stash offset -> global address) is used on
 * stash misses and writebacks; the reverse translation (global
 * address -> stash offset) is used for remote requests arriving at a
 * stash.  Both are pure arithmetic — the paper counts six ALU
 * operations per miss.
 */

#ifndef STASHSIM_MEM_TILE_HH
#define STASHSIM_MEM_TILE_HH

#include <cstdint>

#include "sim/log.hh"
#include "sim/types.hh"

namespace stashsim
{

/**
 * Describes one mapped tile in the global address space.
 */
struct TileSpec
{
    Addr globalBase = 0;
    std::uint32_t fieldSize = 0;  //!< bytes of each object that map
    std::uint32_t objectSize = 0; //!< bytes per object
    std::uint32_t rowSize = 0;    //!< objects per row
    std::uint32_t strideSize = 0; //!< bytes between row bases
    std::uint32_t numStrides = 1; //!< number of rows
    bool isCoherent = true;       //!< Mapped Coherent vs Non-coherent

    /** Total bytes of stash space the mapping occupies. */
    std::uint32_t
    mappedBytes() const
    {
        return fieldSize * rowSize * numStrides;
    }

    /** Number of mapped objects (elements). */
    std::uint32_t numElements() const { return rowSize * numStrides; }

    /** True when the parameters describe a well-formed tile. */
    bool
    wellFormed() const
    {
        if (fieldSize == 0 || objectSize == 0 || rowSize == 0 ||
            numStrides == 0) {
            return false;
        }
        if (fieldSize > objectSize)
            return false;
        if (numStrides > 1 &&
            strideSize < std::uint64_t(rowSize) * objectSize) {
            return false;
        }
        return true;
    }

    /**
     * Forward translation: global address of stash-space byte
     * @p offset (0 <= offset < mappedBytes()).
     */
    Addr
    globalAddrOf(std::uint32_t offset) const
    {
        sim_assert(offset < mappedBytes());
        const std::uint32_t elem = offset / fieldSize;
        const std::uint32_t byte = offset % fieldSize;
        const std::uint32_t row = elem / rowSize;
        const std::uint32_t col = elem % rowSize;
        return globalBase + Addr(row) * strideSize +
               Addr(col) * objectSize + byte;
    }

    /**
     * Reverse translation: stash-space offset of global address
     * @p ga.
     *
     * @return true and sets @p offset when @p ga falls inside the
     *         mapped field bytes of this tile; false otherwise (e.g.,
     *         a non-mapped field of the same object).
     */
    bool
    reverse(Addr ga, std::uint32_t *offset) const
    {
        if (ga < globalBase)
            return false;
        const Addr d = ga - globalBase;
        const Addr row = numStrides > 1 ? d / strideSize : 0;
        if (row >= numStrides)
            return false;
        const Addr rem = numStrides > 1 ? d % strideSize : d;
        const Addr col = rem / objectSize;
        const Addr byte = rem % objectSize;
        if (col >= rowSize || byte >= fieldSize)
            return false;
        *offset = std::uint32_t((row * rowSize + col) * fieldSize + byte);
        return true;
    }

    /** Structural equality; used by the replication optimization. */
    bool
    operator==(const TileSpec &o) const
    {
        return globalBase == o.globalBase && fieldSize == o.fieldSize &&
               objectSize == o.objectSize && rowSize == o.rowSize &&
               strideSize == o.strideSize && numStrides == o.numStrides;
    }
};

} // namespace stashsim

#endif // STASHSIM_MEM_TILE_HH
