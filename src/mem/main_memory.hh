/**
 * @file
 * Functional backing store plus a fixed-latency DRAM timing model.
 *
 * The LLC banks are the only clients: an LLC miss fetches a full line
 * after `dramCycles`, and dirty LLC evictions write lines back.  The
 * store is word-addressed and sparse (lines materialize zero-filled
 * on first touch), so arbitrarily placed workload data costs only
 * what it uses.
 *
 * The image is striped by line address into independently locked
 * sub-maps: the LLC banks own disjoint address slices, but in sharded
 * mode they populate the sparse store concurrently, and an
 * unordered_map cannot take inserts from two threads.  The final map
 * contents depend only on which lines were touched, never on order,
 * so striping does not affect determinism.
 *
 * DRAM traffic does not cross the mesh in this model (the paper's
 * Figure 5d counts NoC flit crossings; memory-controller links are
 * outside that accounting), and DRAM access energy is likewise
 * outside the paper's five-way energy breakdown.
 */

#ifndef STASHSIM_MEM_MAIN_MEMORY_HH
#define STASHSIM_MEM_MAIN_MEMORY_HH

#include <mutex>
#include <unordered_map>

#include "mem/line.hh"
#include "sim/types.hh"

namespace stashsim
{

class SnapshotWriter;
class SnapshotReader;

/**
 * The physical memory image.
 */
class MainMemory
{
  public:
    MainMemory();

    /** Serializes the sparse image, sorted by line address. */
    void snapshot(SnapshotWriter &w) const;

    /** Replaces the image with a checkpointed one. */
    void restore(SnapshotReader &r);

    /** Reads the full line at physical line address @p line_pa. */
    LineData readLine(PhysAddr line_pa) const;

    /** Writes words selected by @p mask of the line at @p line_pa. */
    void writeLine(PhysAddr line_pa, WordMask mask, const LineData &d);

    /** Reads one word. */
    std::uint32_t readWord(PhysAddr pa) const;

    /** Writes one word. */
    void writeWord(PhysAddr pa, std::uint32_t value);

    /** Number of distinct lines touched (for tests/telemetry). */
    std::size_t linesTouched() const;

  private:
    static constexpr std::size_t numStripes = 64;

    struct Stripe
    {
        std::unordered_map<PhysAddr, LineData> lines;
        mutable std::mutex mu;
    };

    Stripe &
    stripeOf(PhysAddr line_pa) const
    {
        return stripes[(line_pa / lineBytes) % numStripes];
    }

    mutable Stripe stripes[numStripes];
};

} // namespace stashsim

#endif // STASHSIM_MEM_MAIN_MEMORY_HH
