#include "energy/energy_model.hh"

namespace stashsim
{

EnergyBreakdown
EnergyModel::compute(const SystemStats &s) const
{
    EnergyBreakdown e;

    // GPU core+: instruction pipeline energy.  The paper's "GPU
    // core+" bucket covers icache, RF, SFU/FPU, scheduler, pipeline.
    e.gpuCore = double(s.gpu.instructions) * params.gpuCoreInstr +
                double(s.gpuCycles) * double(s.numGpuCus) *
                    params.gpuCorePerCuCycle;

    // GPU L1 (the paper excludes CPU core/L1 energy): Table 3
    // energies are per bank (word) access — a coalesced warp access
    // touching N words costs N bank accesses — plus the TLB lookup
    // every physically-tagged access pays.
    e.l1 = double(s.gpuL1.hitWords) * params.l1Hit +
           double(s.gpuL1.missWords) * params.l1Miss +
           double(s.gpuL1.tlbAccesses) * params.tlbAccess;

    // Scratch/stash: scratchpad accesses (including DMA fills and
    // drains), stash hits/misses, remote hits served by the stash
    // (a storage read plus a VP-map CAM lookup), lazy-writeback
    // storage reads, and VP-map lookups on the miss paths.
    e.local = double(s.scratch.accesses()) * params.scratchpadAccess +
              double(s.stash.hitWords) * params.stashHit +
              double(s.stash.missWords) * params.stashMiss +
              double(s.stash.remoteHits) *
                  (params.stashHit + params.tlbAccess) +
              double(s.stash.wordsWrittenBack) * params.stashHit +
              double(s.stash.vpMapAccesses) * params.tlbAccess;

    // L2: every bank access (reads, registrations, writeback
    // absorptions) plus line fills from memory.
    e.l2 = double(s.llc.accesses + s.llc.fills) * params.l2Access;

    // NoC: flit crossings.
    e.noc = double(s.noc.totalFlitHops()) * params.nocFlitHop;

    return e;
}

} // namespace stashsim
