/**
 * @file
 * Dynamic-energy model.
 *
 * The paper measures dynamic energy with GPUWattch (CUs + memory
 * hierarchy, with the stash modelled as a scratchpad plus state bits,
 * an SRAM stash-map and a CAM VP-map) and McPAT (NoC), and reports it
 * as a five-way breakdown: GPU core+, L1 D$, scratch/stash, L2 $, and
 * network (Figures 5b and 6b).  We reproduce that as an analytic
 * model: every energy term is (event count) x (per-event energy).
 *
 * Per-access energies of the local structures are the paper's own
 * Table 3 numbers.  The remaining three constants (GPU core+ per
 * warp instruction, L2 per access, NoC per flit-hop) are not given
 * numerically in the paper; they are calibrated once, globally — not
 * per benchmark — so that the breakdown proportions of the Scratch
 * baseline resemble Figure 5b/6b, and they are identical across all
 * memory configurations, so every *relative* result is driven purely
 * by counted events.
 */

#ifndef STASHSIM_ENERGY_ENERGY_MODEL_HH
#define STASHSIM_ENERGY_ENERGY_MODEL_HH

#include "sim/stats.hh"

namespace stashsim
{

/** Per-event energies in picojoules. */
struct EnergyParams
{
    // --- Table 3 (paper) -------------------------------------------
    double scratchpadAccess = 55.3;
    double stashHit = 55.4;
    double stashMiss = 86.8;
    double l1Hit = 177.0;
    double l1Miss = 197.0;
    double tlbAccess = 14.1;

    // --- Calibrated (see file comment) ------------------------------
    /** GPU core+ (fetch/decode/RF/ALU/scheduler) per warp instr. */
    double gpuCoreInstr = 700.0;
    /**
     * Activity-independent GPU core+ energy per CU-cycle (clock
     * tree, scheduler, pipeline latches) — the dominant term of
     * GPUWattch's SM energy, which makes longer-running
     * configurations cost proportionally more.
     */
    double gpuCorePerCuCycle = 300.0;
    /** L2 bank data/tag access. */
    double l2Access = 120.0;
    /** Mesh router+link traversal per flit. */
    double nocFlitHop = 10.0;
};

/** The paper's five-way dynamic-energy breakdown, in picojoules. */
struct EnergyBreakdown
{
    double gpuCore = 0; //!< "GPU core+"
    double l1 = 0;      //!< "L1 D$" (GPU L1s; CPU L1s excluded)
    double local = 0;   //!< "Scratch/Stash"
    double l2 = 0;      //!< "L2 $"
    double noc = 0;     //!< "N/W"

    double total() const { return gpuCore + l1 + local + l2 + noc; }
};

/**
 * Computes energy from a statistics snapshot.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &p = EnergyParams{})
        : params(p)
    {
    }

    EnergyBreakdown compute(const SystemStats &s) const;

    const EnergyParams &energyParams() const { return params; }

  private:
    EnergyParams params;
};

} // namespace stashsim

#endif // STASHSIM_ENERGY_ENERGY_MODEL_HH
