#include "driver/sweep.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <ostream>
#include <thread>

namespace stashsim
{

SweepDriver::SweepDriver(SweepOptions opts) : opts(opts) {}

unsigned
SweepDriver::threadsFor(std::size_t n) const
{
    unsigned t = opts.threads;
    if (t == 0) {
        if (opts.shardsPerRun == 0) {
            // Runs auto-size their shard fleets to the machine;
            // running sweeps concurrently on top would oversubscribe.
            return 1;
        }
        t = std::thread::hardware_concurrency();
        if (t == 0)
            t = 1;
        // Each run brings shardsPerRun workers of its own.
        t = std::max(1u, t / std::max(1u, opts.shardsPerRun));
    }
    if (t > n)
        t = unsigned(n);
    return t == 0 ? 1 : t;
}

std::vector<RunRecord>
SweepDriver::run(std::vector<RunSpec> specs) const
{
    const std::size_t n = specs.size();
    std::vector<RunRecord> records(n);
    for (std::size_t i = 0; i < n; ++i)
        records[i].spec = specs[i];
    if (n == 0)
        return records;

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex progressMutex;

    auto worker = [&]() {
        while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            RunRecord &rec = records[i];
            try {
                rec.result = runSpec(rec.spec);
            } catch (const std::exception &e) {
                // fatal() throws; keep the sweep going and surface
                // the failure through the record.
                rec.result.validated = false;
                rec.result.errors.push_back(e.what());
            } catch (...) {
                // Anything escaping a std::thread calls
                // std::terminate and loses every completed record;
                // absorb non-standard throws the same way.
                rec.result.validated = false;
                rec.result.errors.push_back(
                    "unknown error (non-standard exception)");
            }
            const std::size_t k =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (opts.progress) {
                std::lock_guard<std::mutex> lock(progressMutex);
                *opts.progress
                    << "[" << k << "/" << n << "] "
                    << rec.spec.label()
                    << (rec.result.validated ? " ok"
                                             : " FAILED validation")
                    << std::endl;
            }
        }
    };

    const unsigned nthreads = threadsFor(n);
    if (nthreads <= 1) {
        worker();
        return records;
    }

    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return records;
}

} // namespace stashsim
