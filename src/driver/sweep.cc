#include "driver/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>

#include "snapshot/snapshot.hh"

namespace stashsim
{

namespace
{

/**
 * The identity a spec's on-disk state carries: the artifact-safe run
 * label plus the input scale, so a quick-scale checkpoint can never
 * resume a full-scale run of the same workload.
 */
std::string
runStateLabel(const RunSpec &spec)
{
    return artifactLabel(spec.label()) + "-" +
           workloads::scaleName(spec.scale);
}

/**
 * Caches a completed run's RunResult to RESULT_<label>.snap so a
 * resumed sweep returns it without re-simulating.  Host timings
 * (perf.hostSeconds, per-phase breakdown) are deliberately dropped:
 * only deterministic counters belong in resumable state.
 */
void
saveResultCache(const std::string &path, const RunSpec &spec,
                const SystemConfig &cfg, const RunResult &r)
{
    SnapshotWriter w;
    w.configHash = snapshotConfigHash(cfg);
    w.tick = 0;
    w.phaseCursor = 0;
    w.workload = runStateLabel(spec);
    w.beginSection("result");
    w.b(r.validated);
    w.u64(r.gpuCycles);
    w.u64(r.perf.events);
    w.u64(r.perf.simTicks);
    w.u64(r.perf.shape.peakLiveEvents);
    w.u64(r.perf.shape.poolChunks);
    w.u64(r.perf.shape.wheelInserts);
    w.u64(r.perf.shape.farInserts);
    w.u32(std::uint32_t(r.errors.size()));
    for (const std::string &e : r.errors)
        w.str(e);
    writeSystemStats(w, r.stats);
    w.endSection();
    w.writeFile(path);
}

/**
 * Loads a cached RunResult; false when the artifact is missing,
 * corrupt, or belongs to a different configuration or run identity.
 * The energy breakdown is recomputed from the restored stats rather
 * than stored — it is a pure function of them.
 */
bool
loadResultCache(const std::string &path, const RunSpec &spec,
                const SystemConfig &cfg, RunResult &out)
{
    try {
        SnapshotReader r = SnapshotReader::fromFile(path);
        if (r.configHash() != snapshotConfigHash(cfg) ||
            r.workload() != runStateLabel(spec)) {
            return false;
        }
        r.verifyAllSections();
        r.openSection("result");
        out.validated = r.b();
        out.gpuCycles = Cycles(r.u64());
        out.perf = SimPerfSummary{};
        out.perf.events = r.u64();
        out.perf.simTicks = r.u64();
        out.perf.shape.peakLiveEvents = r.u64();
        out.perf.shape.poolChunks = r.u64();
        out.perf.shape.wheelInserts = r.u64();
        out.perf.shape.farInserts = r.u64();
        out.errors.clear();
        const std::uint32_t nerr = r.u32();
        for (std::uint32_t e = 0; e < nerr; ++e)
            out.errors.push_back(r.str());
        readSystemStats(r, out.stats);
        r.closeSection();
        out.energy = EnergyModel(spec.energy).compute(out.stats);
        return true;
    } catch (const SnapshotError &) {
        return false;
    }
}

/**
 * Latest usable CKPT_<label>@<tick>.snap for @p spec: candidates are
 * tried newest-first, and one that fails structural verification or
 * was taken under a different configuration is skipped with a
 * structured warning — the scan falls back to the previous snapshot
 * and ultimately to an empty result (run from tick 0).
 */
std::string
latestCheckpoint(const std::string &state_dir, const RunSpec &spec,
                 const SystemConfig &cfg, std::ostream *progress,
                 std::mutex &progress_mutex)
{
    namespace fs = std::filesystem;
    const std::string prefix = "CKPT_" + runStateLabel(spec) + "@";
    const std::string suffix = ".snap";
    std::vector<std::pair<std::uint64_t, std::string>> candidates;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(state_dir, ec)) {
        const std::string name = de.path().filename().string();
        if (name.rfind(prefix, 0) != 0 ||
            name.size() <= prefix.size() + suffix.size() ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
            continue;
        }
        const std::string tick_str =
            name.substr(prefix.size(),
                        name.size() - prefix.size() - suffix.size());
        char *end = nullptr;
        const std::uint64_t tick =
            std::strtoull(tick_str.c_str(), &end, 10);
        if (end == tick_str.c_str() || *end != '\0')
            continue;
        candidates.emplace_back(tick, de.path().string());
    }
    std::sort(candidates.begin(), candidates.end(),
              std::greater<>());

    const std::uint64_t want = snapshotConfigHash(cfg);
    for (const auto &[tick, path] : candidates) {
        try {
            SnapshotReader r = SnapshotReader::fromFile(path);
            if (r.configHash() != want) {
                throw SnapshotError("<header>",
                                    "configuration hash mismatch");
            }
            r.verifyAllSections();
            return path;
        } catch (const SnapshotError &e) {
            if (progress) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                *progress << "sweep: resume: snapshot '" << path
                          << "' unusable (section " << e.section()
                          << ": " << e.reason()
                          << "); falling back" << std::endl;
            }
        }
    }
    return {};
}

} // namespace

SweepDriver::SweepDriver(SweepOptions opts) : opts(opts) {}

unsigned
SweepDriver::threadsFor(std::size_t n) const
{
    unsigned t = opts.threads;
    if (t == 0) {
        if (opts.shardsPerRun == 0) {
            // Runs auto-size their shard fleets to the machine;
            // running sweeps concurrently on top would oversubscribe.
            return 1;
        }
        t = std::thread::hardware_concurrency();
        if (t == 0)
            t = 1;
        // Each run brings shardsPerRun workers of its own.
        t = std::max(1u, t / std::max(1u, opts.shardsPerRun));
    }
    if (t > n)
        t = unsigned(n);
    return t == 0 ? 1 : t;
}

std::vector<RunRecord>
SweepDriver::run(std::vector<RunSpec> specs) const
{
    const std::size_t n = specs.size();
    std::vector<RunRecord> records(n);
    for (std::size_t i = 0; i < n; ++i)
        records[i].spec = specs[i];
    if (n == 0)
        return records;

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex progressMutex;
    const bool stateful = !opts.stateDir.empty();

    auto worker = [&]() {
        while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            RunRecord &rec = records[i];
            std::string note;
            SystemConfig cfg;
            std::string resultPath;
            if (stateful) {
                cfg = resolveRunConfig(rec.spec);
                resultPath = opts.stateDir + "/RESULT_" +
                             runStateLabel(rec.spec) + ".snap";
            }
            bool cached =
                stateful && opts.resume &&
                loadResultCache(resultPath, rec.spec, cfg,
                                rec.result);
            if (cached) {
                note = " (cached)";
            } else {
                RunSpec spec = rec.spec;
                if (stateful) {
                    spec.checkpointEveryTicks =
                        opts.checkpointEveryTicks;
                    spec.checkpointDir = opts.stateDir;
                    if (opts.resume) {
                        spec.restoreFrom = latestCheckpoint(
                            opts.stateDir, rec.spec, cfg,
                            opts.progress, progressMutex);
                        if (!spec.restoreFrom.empty())
                            note = " (resumed)";
                    }
                }
                try {
                    rec.result = runSpec(spec);
                    if (stateful) {
                        try {
                            saveResultCache(resultPath, rec.spec,
                                            cfg, rec.result);
                        } catch (const SnapshotError &e) {
                            if (opts.progress) {
                                std::lock_guard<std::mutex> lock(
                                    progressMutex);
                                *opts.progress
                                    << "sweep: cannot cache result '"
                                    << resultPath << "' ("
                                    << e.reason() << ")" << std::endl;
                            }
                        }
                    }
                } catch (const std::exception &e) {
                    // fatal() throws; keep the sweep going and
                    // surface the failure through the record.
                    rec.result.validated = false;
                    rec.result.errors.push_back(e.what());
                } catch (...) {
                    // Anything escaping a std::thread calls
                    // std::terminate and loses every completed
                    // record; absorb non-standard throws the same
                    // way.
                    rec.result.validated = false;
                    rec.result.errors.push_back(
                        "unknown error (non-standard exception)");
                }
            }
            const std::size_t k =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (opts.progress) {
                std::lock_guard<std::mutex> lock(progressMutex);
                *opts.progress
                    << "[" << k << "/" << n << "] "
                    << rec.spec.label()
                    << (rec.result.validated ? " ok"
                                             : " FAILED validation")
                    << note << std::endl;
            }
        }
    };

    const unsigned nthreads = threadsFor(n);
    if (nthreads <= 1) {
        worker();
        return records;
    }

    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return records;
}

} // namespace stashsim
