#include "driver/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <mutex>
#include <ostream>
#include <random>
#include <thread>
#include <utility>

#include <unistd.h>

#include "driver/farm.hh"
#include "snapshot/snapshot.hh"

namespace stashsim
{

void
SweepCounters::add(const SweepCounters &o)
{
    cachedRuns += o.cachedRuns;
    resumedRuns += o.resumedRuns;
    corruptSnapshots += o.corruptSnapshots;
    staleResults += o.staleResults;
    quarantinedArtifacts += o.quarantinedArtifacts;
    reclaimedLeases += o.reclaimedLeases;
    retriedRuns += o.retriedRuns;
    failedSpecs += o.failedSpecs;
    interrupted = interrupted || o.interrupted;
}

bool
SweepCounters::any() const
{
    return cachedRuns || resumedRuns || corruptSnapshots ||
           staleResults || quarantinedArtifacts || reclaimedLeases ||
           retriedRuns || failedSpecs || interrupted;
}

namespace
{

/**
 * The identity a spec's on-disk state carries: the artifact-safe run
 * label plus the input scale, so a quick-scale checkpoint can never
 * resume a full-scale run of the same workload.
 */
std::string
runStateLabel(const RunSpec &spec)
{
    return artifactLabel(spec.label()) + "-" +
           workloads::scaleName(spec.scale);
}

/**
 * Caches a completed run's RunResult to RESULT_<label>.snap so a
 * resumed sweep returns it without re-simulating.  Host timings
 * (perf.hostSeconds, per-phase breakdown) are deliberately dropped:
 * only deterministic counters belong in resumable state.
 */
void
saveResultCache(const std::string &path, const RunSpec &spec,
                const SystemConfig &cfg, const RunResult &r)
{
    SnapshotWriter w;
    w.configHash = snapshotConfigHash(cfg);
    w.tick = 0;
    w.phaseCursor = 0;
    w.workload = runStateLabel(spec);
    w.beginSection("result");
    w.b(r.validated);
    w.b(r.truncated);
    w.u64(r.gpuCycles);
    w.u64(r.perf.events);
    w.u64(r.perf.simTicks);
    w.u64(r.perf.shape.peakLiveEvents);
    w.u64(r.perf.shape.poolChunks);
    w.u64(r.perf.shape.wheelInserts);
    w.u64(r.perf.shape.farInserts);
    w.u32(std::uint32_t(r.errors.size()));
    for (const std::string &e : r.errors)
        w.str(e);
    writeSystemStats(w, r.stats);
    w.endSection();
    w.writeFile(path);
}

/** What a cached-RESULT load found; the caller reacts per outcome. */
enum class CacheLoad
{
    Ok,       //!< served; @p out is the cached result
    Missing,  //!< no artifact (or unreadable file): simulate
    Stale,    //!< config hash / run identity mismatch: edited grid
    Corrupt   //!< structural damage: quarantine, then simulate
};

/**
 * Loads a cached RunResult.  The record's config hash and run
 * identity are validated BEFORE it is served, so a stale state dir
 * left over from an edited sweep grid reruns the spec instead of
 * returning the wrong cached numbers.  The energy breakdown is
 * recomputed from the restored stats rather than stored — it is a
 * pure function of them.
 */
CacheLoad
loadResultCache(const std::string &path, const RunSpec &spec,
                const SystemConfig &cfg, RunResult &out)
{
    if (!std::filesystem::exists(path))
        return CacheLoad::Missing;
    try {
        SnapshotReader r = SnapshotReader::fromFile(path);
        if (r.configHash() != snapshotConfigHash(cfg) ||
            r.workload() != runStateLabel(spec)) {
            return CacheLoad::Stale;
        }
        r.verifyAllSections();
        r.openSection("result");
        out.validated = r.b();
        out.truncated = r.b();
        out.gpuCycles = Cycles(r.u64());
        out.perf = SimPerfSummary{};
        out.perf.events = r.u64();
        out.perf.simTicks = r.u64();
        out.perf.shape.peakLiveEvents = r.u64();
        out.perf.shape.poolChunks = r.u64();
        out.perf.shape.wheelInserts = r.u64();
        out.perf.shape.farInserts = r.u64();
        out.errors.clear();
        const std::uint32_t nerr = r.u32();
        for (std::uint32_t e = 0; e < nerr; ++e)
            out.errors.push_back(r.str());
        readSystemStats(r, out.stats);
        r.closeSection();
        out.energy = EnergyModel(spec.energy).compute(out.stats);
        return CacheLoad::Ok;
    } catch (const SnapshotError &) {
        return CacheLoad::Corrupt;
    }
}

/**
 * Latest usable CKPT_<label>@<tick>.snap for @p spec: candidates are
 * tried newest-first; one that fails structural verification or was
 * taken under a different configuration is quarantined with a
 * structured warning — the scan falls back to the previous snapshot
 * and ultimately to an empty result (run from tick 0).
 */
std::string
latestCheckpoint(const std::string &state_dir, const RunSpec &spec,
                 const SystemConfig &cfg, std::ostream *progress,
                 std::mutex &progress_mutex, SweepCounters &cnt,
                 std::mutex &cnt_mutex)
{
    namespace fs = std::filesystem;
    const std::string prefix = "CKPT_" + runStateLabel(spec) + "@";
    const std::string suffix = ".snap";
    std::vector<std::pair<std::uint64_t, std::string>> candidates;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(state_dir, ec)) {
        const std::string name = de.path().filename().string();
        if (name.rfind(prefix, 0) != 0 ||
            name.size() <= prefix.size() + suffix.size() ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
            continue;
        }
        const std::string tick_str =
            name.substr(prefix.size(),
                        name.size() - prefix.size() - suffix.size());
        char *end = nullptr;
        const std::uint64_t tick =
            std::strtoull(tick_str.c_str(), &end, 10);
        if (end == tick_str.c_str() || *end != '\0')
            continue;
        candidates.emplace_back(tick, de.path().string());
    }
    std::sort(candidates.begin(), candidates.end(),
              std::greater<>());

    const std::uint64_t want = snapshotConfigHash(cfg);
    for (const auto &[tick, path] : candidates) {
        bool structural = true;
        std::string why;
        try {
            SnapshotReader r = SnapshotReader::fromFile(path);
            if (r.configHash() != want) {
                structural = false;
                why = "<header>: configuration hash mismatch "
                      "(stale state dir from an edited grid?)";
            } else {
                r.verifyAllSections();
                return path;
            }
        } catch (const SnapshotError &e) {
            why = e.section() + ": " + e.reason();
        }
        const bool moved = farm::quarantineFile(state_dir, path);
        {
            std::lock_guard<std::mutex> lock(cnt_mutex);
            if (structural)
                ++cnt.corruptSnapshots;
            else
                ++cnt.staleResults;
            if (moved)
                ++cnt.quarantinedArtifacts;
        }
        if (progress) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            *progress << "sweep: resume: snapshot '" << path
                      << "' unusable (section " << why << ")"
                      << (moved ? "; quarantined" : "")
                      << "; falling back" << std::endl;
        }
    }
    return {};
}

} // namespace

SweepDriver::SweepDriver(SweepOptions opts) : opts(opts) {}

unsigned
SweepDriver::threadsFor(std::size_t n) const
{
    unsigned t = opts.threads;
    if (t == 0) {
        if (opts.shardsPerRun == 0) {
            // Runs auto-size their shard fleets to the machine;
            // running sweeps concurrently on top would oversubscribe.
            return 1;
        }
        t = std::thread::hardware_concurrency();
        if (t == 0)
            t = 1;
        // Each run brings shardsPerRun workers of its own.
        t = std::max(1u, t / std::max(1u, opts.shardsPerRun));
    }
    if (t > n)
        t = unsigned(n);
    return t == 0 ? 1 : t;
}

std::vector<RunRecord>
SweepDriver::run(std::vector<RunSpec> specs,
                 SweepCounters *counters) const
{
    const std::size_t n = specs.size();
    std::vector<RunRecord> records(n);
    for (std::size_t i = 0; i < n; ++i)
        records[i].spec = specs[i];
    if (n == 0)
        return records;

    SweepCounters cnt;
    std::mutex cntMutex;
    std::atomic<std::size_t> done{0};
    std::mutex progressMutex;
    const bool stateful = !opts.stateDir.empty();

    const auto stopRequested = [this]() {
        return opts.stop &&
               opts.stop->load(std::memory_order_relaxed);
    };

    const auto printRecord = [&](const RunRecord &rec,
                                 const std::string &note) {
        const std::size_t k =
            done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (opts.progress) {
            std::lock_guard<std::mutex> lock(progressMutex);
            *opts.progress
                << "[" << k << "/" << n << "] " << rec.spec.label()
                << (rec.result.validated ? " ok"
                                         : " FAILED validation")
                << note << std::endl;
        }
    };

    // ---- stateless path: shared-index pull, no on-disk protocol ----
    std::atomic<std::size_t> next{0};
    auto statelessWorker = [&]() {
        while (true) {
            if (stopRequested()) {
                std::lock_guard<std::mutex> lock(cntMutex);
                cnt.interrupted = true;
                return;
            }
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            RunRecord &rec = records[i];
            RunSpec spec = rec.spec;
            spec.interrupt = opts.stop;
            try {
                rec.result = runSpec(spec);
            } catch (const RunInterrupted &) {
                rec.result.validated = false;
                rec.result.errors.push_back("interrupted");
                std::lock_guard<std::mutex> lock(cntMutex);
                cnt.interrupted = true;
                return;
            } catch (const std::exception &e) {
                // fatal() throws; keep the sweep going and surface
                // the failure through the record.
                rec.result.validated = false;
                rec.result.errors.push_back(e.what());
            } catch (...) {
                // Anything escaping a std::thread calls
                // std::terminate and loses every completed record;
                // absorb non-standard throws the same way.
                rec.result.validated = false;
                rec.result.errors.push_back(
                    "unknown error (non-standard exception)");
            }
            printRecord(rec, "");
        }
    };

    // ---- farm path: every spec is claimed through a lease file ----
    // Per-spec identity precomputed once; resolveRunConfig is pure.
    std::vector<std::string> labels(stateful ? n : 0);
    std::vector<SystemConfig> cfgs(stateful ? n : 0);
    std::vector<std::string> resultPaths(stateful ? n : 0);
    if (stateful) {
        for (std::size_t i = 0; i < n; ++i) {
            labels[i] = runStateLabel(specs[i]);
            cfgs[i] = resolveRunConfig(specs[i]);
            resultPaths[i] =
                opts.stateDir + "/RESULT_" + labels[i] + ".snap";
        }
        if (!opts.resume) {
            // Fresh campaign: stale FAILED verdicts from an earlier
            // session must not block the rerun.
            for (const std::string &label : labels)
                farm::clearFailed(opts.stateDir, label);
        }
    }

    farm::FarmConfig baseFarm;
    baseFarm.workerId = opts.workerId.empty()
                            ? "w" + std::to_string(::getpid())
                            : opts.workerId;
    baseFarm.leaseTtlMs = opts.leaseTtlMs;
    baseFarm.maxAttempts = std::max(1u, opts.maxAttempts);

    std::vector<std::atomic<bool>> settled(n);

    // Fills record i exactly once (threads may race a cache-serve
    // against the thread that just finished simulating the spec; the
    // contents are identical either way, the exchange just picks one
    // writer).  Returns false when someone else already settled it.
    const auto settle = [&](std::size_t i, RunResult r,
                            const std::string &note) {
        if (settled[i].exchange(true, std::memory_order_acq_rel))
            return false;
        records[i].result = std::move(r);
        printRecord(records[i], note);
        return true;
    };

    auto farmWorker = [&](unsigned tid, unsigned nthreads) {
        farm::FarmConfig fc = baseFarm;
        if (nthreads > 1)
            fc.workerId += "-" + std::to_string(tid);
        // Host-only jitter so colliding workers desynchronize; never
        // touches simulated state.
        std::mt19937 jitter(
            std::hash<std::string>{}(fc.workerId) ^ 0x9e3779b9u);
        unsigned backoffExp = 0;

        const auto interruptedExit = [&]() {
            std::lock_guard<std::mutex> lock(cntMutex);
            cnt.interrupted = true;
        };

        while (true) {
            bool progressed = false;
            bool busyElsewhere = false;
            bool anyUnsettled = false;

            for (std::size_t i = 0; i < n; ++i) {
                if (settled[i].load(std::memory_order_acquire))
                    continue;
                if (stopRequested())
                    return interruptedExit();
                anyUnsettled = true;
                const std::string &label = labels[i];
                const SystemConfig &cfg = cfgs[i];

                if (opts.resume) {
                    // 1. A FAILED verdict is a settled (bad) result.
                    unsigned attempts = 0;
                    std::vector<std::string> errs;
                    if (farm::loadFailed(opts.stateDir, label,
                                         attempts, errs)) {
                        RunResult r;
                        r.validated = false;
                        r.errors = std::move(errs);
                        r.errors.push_back(
                            "quarantined after " +
                            std::to_string(attempts) +
                            " attempt(s) (FAILED_" + label +
                            ".json)");
                        if (settle(i, std::move(r),
                                   " (quarantined)")) {
                            std::lock_guard<std::mutex> lock(cntMutex);
                            ++cnt.failedSpecs;
                        }
                        progressed = true;
                        continue;
                    }

                    // 2. A valid cached RESULT settles the spec.
                    RunResult cachedResult;
                    switch (loadResultCache(resultPaths[i], specs[i],
                                            cfg, cachedResult)) {
                      case CacheLoad::Ok:
                        if (settle(i, std::move(cachedResult),
                                   " (cached)")) {
                            std::lock_guard<std::mutex> lock(cntMutex);
                            ++cnt.cachedRuns;
                        }
                        progressed = true;
                        continue;
                      case CacheLoad::Corrupt: {
                        const bool moved = farm::quarantineFile(
                            opts.stateDir, resultPaths[i]);
                        {
                            std::lock_guard<std::mutex> lock(cntMutex);
                            ++cnt.corruptSnapshots;
                            if (moved)
                                ++cnt.quarantinedArtifacts;
                        }
                        if (opts.progress) {
                            std::lock_guard<std::mutex> lock(
                                progressMutex);
                            *opts.progress
                                << "sweep: cached result '"
                                << resultPaths[i]
                                << "' is corrupt"
                                << (moved ? "; quarantined" : "")
                                << "; re-simulating" << std::endl;
                        }
                        break;
                      }
                      case CacheLoad::Stale: {
                        const bool moved = farm::quarantineFile(
                            opts.stateDir, resultPaths[i]);
                        {
                            std::lock_guard<std::mutex> lock(cntMutex);
                            ++cnt.staleResults;
                            if (moved)
                                ++cnt.quarantinedArtifacts;
                        }
                        if (opts.progress) {
                            std::lock_guard<std::mutex> lock(
                                progressMutex);
                            *opts.progress
                                << "sweep: cached result '"
                                << resultPaths[i]
                                << "' belongs to a different "
                                   "configuration (edited sweep "
                                   "grid?)"
                                << (moved ? "; quarantined" : "")
                                << "; re-simulating" << std::endl;
                        }
                        break;
                      }
                      case CacheLoad::Missing:
                        break;
                    }
                }

                // 3. Claim the lease and simulate.
                const farm::ClaimResult claim =
                    farm::tryClaim(opts.stateDir, label, fc);
                if (claim.status == farm::ClaimStatus::Busy) {
                    busyElsewhere = true;
                    continue;
                }
                if (claim.status == farm::ClaimStatus::Exhausted) {
                    unsigned attempts = 0;
                    std::vector<std::string> errs;
                    if (!farm::loadFailed(opts.stateDir, label,
                                          attempts, errs)) {
                        errs = {"attempt budget exhausted"};
                    }
                    RunResult r;
                    r.validated = false;
                    r.errors = std::move(errs);
                    if (settle(i, std::move(r), " (quarantined)")) {
                        std::lock_guard<std::mutex> lock(cntMutex);
                        ++cnt.failedSpecs;
                    }
                    progressed = true;
                    continue;
                }

                {
                    std::lock_guard<std::mutex> lock(cntMutex);
                    if (claim.reclaimed)
                        ++cnt.reclaimedLeases;
                    if (claim.attempt > 1)
                        ++cnt.retriedRuns;
                }

                farm::LeaseGuard guard(opts.stateDir, label, fc,
                                       claim.attempt);
                RunSpec spec = records[i].spec;
                spec.checkpointEveryTicks = opts.checkpointEveryTicks;
                spec.checkpointDir = opts.stateDir;
                spec.interrupt = opts.stop;
                std::string note;
                if (opts.resume || claim.attempt > 1 ||
                    claim.reclaimed) {
                    // Retries and takeovers resume from the dead
                    // attempt's checkpoints just like --resume does.
                    // A spec that came in with its own restoreFrom (a
                    // SampleDriver's warm boundary snapshot) keeps it
                    // unless a newer mid-run checkpoint exists — the
                    // checkpoint is strictly further along.
                    const std::string ckpt = latestCheckpoint(
                        opts.stateDir, records[i].spec, cfg,
                        opts.progress, progressMutex, cnt, cntMutex);
                    if (!ckpt.empty()) {
                        spec.restoreFrom = ckpt;
                        note = " (resumed)";
                        std::lock_guard<std::mutex> lock(cntMutex);
                        ++cnt.resumedRuns;
                    }
                }

                std::string failure;
                try {
                    RunResult r = runSpec(spec);
                    // Cache the result BEFORE releasing the lease so
                    // a peer that sees the lease disappear always
                    // finds the artifact.
                    try {
                        saveResultCache(resultPaths[i],
                                        records[i].spec, cfg, r);
                    } catch (const SnapshotError &e) {
                        if (opts.progress) {
                            std::lock_guard<std::mutex> lock(
                                progressMutex);
                            *opts.progress
                                << "sweep: cannot cache result '"
                                << resultPaths[i] << "' ("
                                << e.reason() << ")" << std::endl;
                        }
                    }
                    guard.releaseDone();
                    settle(i, std::move(r), note);
                    progressed = true;
                    continue;
                } catch (const RunInterrupted &) {
                    // The run already dropped its final checkpoint;
                    // the interrupted attempt does not count against
                    // the budget.
                    guard.releaseInterrupted();
                    return interruptedExit();
                } catch (const std::exception &e) {
                    failure = e.what();
                } catch (...) {
                    failure = "unknown error "
                              "(non-standard exception)";
                }

                if (claim.attempt >= fc.maxAttempts) {
                    guard.releaseFailed({failure});
                    RunResult r;
                    r.validated = false;
                    r.errors.push_back(failure);
                    if (settle(i, std::move(r), " (quarantined)")) {
                        std::lock_guard<std::mutex> lock(cntMutex);
                        ++cnt.failedSpecs;
                    }
                } else {
                    // Budget remains: release for retry.  The spec
                    // stays unsettled and a later pass — ours or a
                    // peer's — claims it at attempt+1.
                    guard.releaseForRetry();
                    if (opts.progress) {
                        std::lock_guard<std::mutex> lock(
                            progressMutex);
                        *opts.progress
                            << "sweep: " << records[i].spec.label()
                            << " attempt " << claim.attempt
                            << " failed (" << failure
                            << "); released for retry" << std::endl;
                    }
                }
                progressed = true;
            }

            if (!anyUnsettled)
                return;
            if (progressed) {
                backoffExp = 0;
                continue;
            }
            if (stopRequested())
                return interruptedExit();
            // Everything left is leased to live peers (or a retry is
            // pending): back off exponentially with jitter, staying
            // responsive to the stop flag.
            (void)busyElsewhere;
            const std::uint64_t base = 25;
            const std::uint64_t cap = 1000;
            const std::uint64_t span = std::min(
                cap, base << std::min(backoffExp, 5u));
            ++backoffExp;
            std::uint64_t waitMs = span + jitter() % span;
            while (waitMs > 0 && !stopRequested()) {
                const std::uint64_t step = std::min<std::uint64_t>(
                    waitMs, 10);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(step));
                waitMs -= step;
            }
        }
    };

    const unsigned nthreads = threadsFor(n);
    if (nthreads <= 1) {
        if (stateful)
            farmWorker(0, 1);
        else
            statelessWorker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(nthreads);
        for (unsigned t = 0; t < nthreads; ++t) {
            if (stateful)
                pool.emplace_back(farmWorker, t, nthreads);
            else
                pool.emplace_back(statelessWorker);
        }
        for (auto &t : pool)
            t.join();
    }

    if (stateful) {
        // An interrupted sweep leaves unsettled records; mark them so
        // no caller mistakes a default-constructed result for a pass.
        for (std::size_t i = 0; i < n; ++i) {
            if (!settled[i].load(std::memory_order_acquire)) {
                records[i].result.validated = false;
                records[i].result.errors.push_back(
                    "interrupted before completion");
            }
        }
        if (opts.progress && cnt.any()) {
            std::lock_guard<std::mutex> lock(progressMutex);
            *opts.progress
                << "sweep: recovery: cached=" << cnt.cachedRuns
                << " resumed=" << cnt.resumedRuns
                << " retried=" << cnt.retriedRuns
                << " reclaimedLeases=" << cnt.reclaimedLeases
                << " corruptSnapshots=" << cnt.corruptSnapshots
                << " staleResults=" << cnt.staleResults
                << " quarantined=" << cnt.quarantinedArtifacts
                << " failedSpecs=" << cnt.failedSpecs
                << (cnt.interrupted ? " (interrupted)" : "")
                << std::endl;
        }
    }
    if (counters)
        counters->add(cnt);
    return records;
}

} // namespace stashsim
