#include "driver/run.hh"

namespace stashsim
{

std::string
RunSpec::label() const
{
    if (!labelOverride.empty())
        return labelOverride;
    return workload + "/" + memOrgName(org);
}

RunResult
runSpec(const RunSpec &spec)
{
    using workloads::WorkloadFactory;

    SystemConfig cfg;
    if (spec.config) {
        cfg = *spec.config;
    } else if (spec.make) {
        // Custom workloads without an explicit configuration get the
        // microbenchmark machine: single-CU, like every generated
        // sweep workload so far.
        cfg = SystemConfig::microbenchmarkDefault();
    } else {
        cfg = WorkloadFactory::instance().defaultConfig(spec.workload);
    }
    cfg.memOrg = spec.org;
    if (spec.shards)
        cfg.shards = *spec.shards;

    workloads::WorkloadParams params;
    params.org = spec.org;
    params.cpuCores = cfg.numCpuCores;
    params.scale = spec.scale;

    Workload wl = spec.make
                      ? spec.make(params)
                      : WorkloadFactory::instance().make(spec.workload,
                                                         params);

    System sys(cfg, spec.energy);
    if (spec.instrument)
        spec.instrument(sys);
    RunResult r = sys.run(std::move(wl));
    if (spec.finish)
        spec.finish(sys, r);
    return r;
}

} // namespace stashsim
