#include "driver/run.hh"

namespace stashsim
{

std::string
RunSpec::label() const
{
    if (!labelOverride.empty())
        return labelOverride;
    return workload + "/" + memOrgName(org);
}

SystemConfig
resolveRunConfig(const RunSpec &spec)
{
    using workloads::WorkloadFactory;

    SystemConfig cfg;
    if (spec.config) {
        cfg = *spec.config;
    } else if (spec.make) {
        // Custom workloads without an explicit configuration get the
        // microbenchmark machine: single-CU, like every generated
        // sweep workload so far.
        cfg = SystemConfig::microbenchmarkDefault();
    } else {
        cfg = WorkloadFactory::instance().defaultConfig(spec.workload);
    }
    cfg.memOrg = spec.org;
    if (spec.shards)
        cfg.shards = *spec.shards;
    if (spec.backend)
        cfg.memBackend.kind = *spec.backend;
    return cfg;
}

std::string
artifactLabel(const std::string &label)
{
    std::string out = label;
    for (char &c : out) {
        if (c == '/' || c == ' ' || c == '@')
            c = '_';
    }
    return out;
}

RunResult
runSpec(const RunSpec &spec)
{
    using workloads::WorkloadFactory;

    const SystemConfig cfg = resolveRunConfig(spec);

    workloads::WorkloadParams params;
    params.org = spec.org;
    params.cpuCores = cfg.numCpuCores;
    params.scale = spec.scale;

    Workload wl = spec.make
                      ? spec.make(params)
                      : WorkloadFactory::instance().make(spec.workload,
                                                         params);

    System sys(cfg, spec.energy);
    if (spec.instrument)
        spec.instrument(sys);
    RunControl ctl;
    ctl.checkpointEveryTicks = spec.checkpointEveryTicks;
    ctl.checkpointDir = spec.checkpointDir;
    // The scale rides in the label so a checkpoint from one input
    // size can never restore a run at another.
    ctl.checkpointLabel = artifactLabel(spec.label()) + "-" +
                          workloads::scaleName(spec.scale);
    ctl.restoreFrom = spec.restoreFrom;
    ctl.measurePhases = spec.measurePhases;
    ctl.boundarySnapshotPath = spec.boundarySnapshotPath;
    ctl.restoreDeltas = spec.restoreDeltas;
    ctl.interrupt = spec.interrupt;
    RunResult r = sys.run(std::move(wl), ctl);
    if (spec.finish)
        spec.finish(sys, r);
    return r;
}

} // namespace stashsim
