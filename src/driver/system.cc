#include "driver/system.hh"

#include <algorithm>
#include <atomic>
#include <ios>
#include <ostream>
#include <string>
#include <thread>

#include "sim/log.hh"
#include "sim/shard_autotune.hh"
#include "snapshot/snapshot.hh"
#include "verify/fault_injector.hh"
#include "verify/protocol_checker.hh"
#include "verify/watchdog.hh"

namespace stashsim
{

namespace
{

std::atomic<std::uint64_t> g_boundarySnapshotWrites{0};

/** True when every counter of stats-struct @p s is zero. */
template <class S>
bool
statsAllZero(const S &s)
{
    bool zero = true;
    S::visit(s, [&zero](const char *, const Counter &c) {
        if (c != 0)
            zero = false;
    });
    return zero;
}

MeshParams
meshParamsOf(const SystemConfig &cfg)
{
    MeshParams mp;
    mp.width = cfg.meshWidth;
    mp.height = cfg.meshHeight;
    mp.routerCycles = cfg.routerCycles;
    mp.linkCycles = cfg.linkCycles;
    mp.flitsPerCycle = cfg.nocFlitsPerCycle;
    return mp;
}

unsigned
hostHardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

std::unique_ptr<ShardEngine>
makeEngine(const SystemConfig &cfg)
{
    ShardEngine::Options o;
    if (cfg.shards == 0) {
        // Auto-tune: build the sharded topology but start with one
        // calibration worker; System::autoTuneShards() feeds the
        // first drain's counters to the cost model and retunes the
        // pool (DESIGN.md section 16).  A single-threaded host can
        // never win from sharding, so it gets the serial kernel.
        o.threads = 1;
        o.tiles = hostHardwareThreads() > 1 ? cfg.numNodes() : 1;
    } else {
        // Sharding with one worker would pay quantum overhead for no
        // concurrency, so a single thread gets the serial
        // single-queue engine (the byte-identical classic kernel).
        o.threads = std::min(std::max(cfg.shards, 1u),
                             cfg.numNodes());
        o.tiles = o.threads > 1 ? cfg.numNodes() : 1;
    }
    o.lookahead = meshParamsOf(cfg).minLatencyTicks();
    return std::make_unique<ShardEngine>(o);
}

} // namespace

std::uint64_t
boundarySnapshotWrites()
{
    return g_boundarySnapshotWrites.load(std::memory_order_relaxed);
}

SimPerf::Sources
System::perfSources()
{
    SimPerf::Sources s;
    s.events = [this] { return engine->eventsExecuted(); };
    s.tick = [this] { return engine->now(); };
    s.shape = [this] {
        QueueShape q;
        q.peakLiveEvents = engine->peakLiveEvents();
        q.poolChunks = engine->poolChunksAllocated();
        q.wheelInserts = engine->wheelInserts();
        q.farInserts = engine->farInserts();
        return q;
    };
    s.engine = [this] { return engine->breakdown(); };
    return s;
}

System::System(const SystemConfig &cfg, const EnergyParams &energy)
    : cfg(cfg), energyModel(energy), engine(makeEngine(this->cfg)),
      perf(perfSources()),
      mesh(engine->queue(0), meshParamsOf(this->cfg)), fabric(mesh)
{
    if (cfg.numGpuCus + cfg.numCpuCores > cfg.numNodes())
        fatal("more cores than mesh nodes");
    if (cfg.llcBanks != cfg.numNodes())
        fatal("this system places one LLC bank per mesh node");
    _autoShards = cfg.shards == 0 && sharded();
    if (sharded() && cfg.verify.faultInjection) {
        fatal("fault injection requires the serial engine (shards=1): "
              "injected perturbations schedule onto foreign tile "
              "queues and consume RNG draws in host-dependent order");
    }

    // Bind the per-node queues so every Fabric send takes the
    // canonical deferred path (identical in both modes; DESIGN.md
    // section 10).
    {
        std::vector<EventQueue *> tq;
        for (NodeId n = 0; n < cfg.numNodes(); ++n)
            tq.push_back(&queueFor(n));
        fabric.bindQueues(std::move(tq), sharded());
    }

    // LLC banks: one per node, each with its own memory-backend
    // instance on the same queue (the backend's timing knobs —
    // dramCycles included — live in cfg.memBackend, nowhere else).
    LlcBank::Params lp;
    lp.bankBytes = cfg.llcBankBytes;
    lp.assoc = cfg.llcAssoc;
    lp.accessCycles = cfg.llcBankCycles;
    for (NodeId n = 0; n < cfg.numNodes(); ++n) {
        memBackends.push_back(makeMemBackend(cfg.memBackend,
                                             queueFor(n), mem,
                                             gpuClockPeriod));
        llcBanks.push_back(std::make_unique<LlcBank>(
            queueFor(n), fabric, *memBackends.back(), n, lp));
        fabric.registerObject(n, Unit::Llc, llcBanks.back().get());
    }

    // GPU CUs at nodes [0, numGpuCus).
    L1Cache::Params gl1;
    gl1.bytes = cfg.l1Bytes;
    gl1.assoc = cfg.l1Assoc;
    gl1.mshrs = cfg.l1Mshrs;
    gl1.hitCycles = cfg.l1HitCycles;
    gl1.clockPeriod = gpuClockPeriod;

    for (unsigned i = 0; i < cfg.numGpuCus; ++i) {
        const NodeId node = NodeId(i);
        const CoreId core = CoreId(i);
        EventQueue &eq = queueFor(node);
        GpuNode g;
        g.tlb = std::make_unique<Tlb>(pageTable, cfg.vpMapEntries);
        g.l1 = std::make_unique<L1Cache>(eq, fabric, *g.tlb, core,
                                         node, gl1);
        fabric.registerObject(node, Unit::L1, g.l1.get());
        fabric.registerCore(core, node);

        if (usesScratchpad(cfg.memOrg)) {
            g.spad = std::make_unique<Scratchpad>(cfg.localBytes);
            if (cfg.memOrg == MemOrg::ScratchGD) {
                g.dma = std::make_unique<DmaEngine>(
                    eq, fabric, *g.tlb, *g.spad, core, node);
                fabric.registerObject(node, Unit::Dma, g.dma.get());
            }
        } else if (usesStash(cfg.memOrg)) {
            Stash::Params sp;
            sp.bytes = cfg.localBytes;
            sp.chunkBytes = cfg.stashChunkBytes;
            sp.mapEntries = cfg.stashMapEntries;
            sp.vpEntries = cfg.vpMapEntries;
            sp.translationCycles = cfg.stashTranslationCycles;
            sp.hitCycles = cfg.localHitCycles;
            sp.replicationOpt = cfg.stashReplicationOpt;
            g.stash = std::make_unique<Stash>(eq, fabric, pageTable,
                                              core, node, sp);
            fabric.registerObject(node, Unit::Stash, g.stash.get());
        }

        g.cu = std::make_unique<ComputeUnit>(eq, this->cfg, core,
                                             g.l1.get(), g.spad.get(),
                                             g.stash.get(),
                                             g.dma.get());
        gpus.push_back(std::move(g));
    }

    // CPU cores at nodes [numGpuCus, numGpuCus + numCpuCores).
    L1Cache::Params cl1 = gl1;
    cl1.clockPeriod = cpuClockPeriod;
    for (unsigned i = 0; i < cfg.numCpuCores; ++i) {
        const NodeId node = NodeId(cfg.numGpuCus + i);
        const CoreId core = CoreId(cfg.numGpuCus + i);
        EventQueue &eq = queueFor(node);
        CpuNode c;
        c.tlb = std::make_unique<Tlb>(pageTable, cfg.vpMapEntries);
        c.l1 = std::make_unique<L1Cache>(eq, fabric, *c.tlb, core,
                                         node, cl1);
        fabric.registerObject(node, Unit::L1, c.l1.get());
        fabric.registerCore(core, node);
        c.core = std::make_unique<CpuCore>(eq, *c.l1, core,
                                           cfg.cpuOutstanding);
        cpus.push_back(std::move(c));
    }

    // Verification subsystem (all pieces independently toggleable).
    if (cfg.verify.faultInjection) {
        _injector = std::make_unique<FaultInjector>(eventQueue(),
                                                    this->cfg.verify);
        fabric.setFaultInjector(_injector.get());
    }
    if (cfg.verify.protocolChecker) {
        _checker = std::make_unique<ProtocolChecker>();
        for (auto &b : llcBanks)
            _checker->addLlc(b.get());
        for (unsigned i = 0; i < gpus.size(); ++i) {
            GpuNode &g = gpus[i];
            const CoreId core = CoreId(i);
            g.l1->attachChecker(_checker.get());
            _checker->addL1(core, g.l1.get());
            if (g.stash) {
                g.stash->attachChecker(_checker.get());
                _checker->addStash(core, g.stash.get());
            }
            if (g.dma)
                g.dma->attachChecker(_checker.get());
        }
        for (unsigned i = 0; i < cpus.size(); ++i) {
            const CoreId core = CoreId(cfg.numGpuCus + i);
            cpus[i].l1->attachChecker(_checker.get());
            _checker->addL1(core, cpus[i].l1.get());
        }
    }
    if (cfg.verify.watchdog) {
        _watchdog = std::make_unique<Watchdog>(eventQueue(),
                                               this->cfg.verify);
        _watchdog->setDumpFn(
            [this](std::ostream &os) { dumpDiagnostics(os); });
        for (auto &g : gpus) {
            g.cu->setWatchdog(_watchdog.get());
            if (g.dma)
                g.dma->setWatchdog(_watchdog.get());
        }
        for (auto &c : cpus)
            c.core->setWatchdog(_watchdog.get());
        // Sharded runs have no single queue to arm check events on;
        // the engine's barrier hook drives the checks instead, at the
        // quantum boundaries (the coherent global drain points).
        if (sharded())
            _watchdog->setExternalChecks(true);
        // The watchdog arms itself at the driver's drain points.
        eventQueue().addPhaseListener(_watchdog.get());
    }

    // SimPerf samples host time at every drain boundary.
    eventQueue().addPhaseListener(&perf);

    registerComponentStats();
}

void
System::registerComponentStats()
{
    for (unsigned i = 0; i < gpus.size(); ++i) {
        const std::string p = "cu" + std::to_string(i);
        const GpuNode &g = gpus[i];
        registry.addGroup(p + ".core", &g.cu->stats());
        registry.addGroup(p + ".l1", &g.l1->stats());
        if (g.spad)
            registry.addGroup(p + ".scratch", &g.spad->stats());
        if (g.stash)
            registry.addGroup(p + ".stash", &g.stash->stats());
        if (g.dma)
            registry.addGroup(p + ".dma", &g.dma->stats());
    }
    for (unsigned i = 0; i < cpus.size(); ++i) {
        const std::string p = "cpu" + std::to_string(i);
        registry.addGroup(p + ".core", &cpus[i].core->stats());
        registry.addGroup(p + ".l1", &cpus[i].l1->stats());
    }
    for (unsigned i = 0; i < llcBanks.size(); ++i) {
        registry.addGroup("llc" + std::to_string(i),
                          &llcBanks[i]->stats());
    }
    for (unsigned i = 0; i < memBackends.size(); ++i) {
        registry.addGroup("memback" + std::to_string(i),
                          &memBackends[i]->stats());
    }
    registry.addGroup("noc", &mesh.stats());
    registry.addValue("sim.tick",
                      [this] { return double(engine->now()); });
    registry.addValue("sim.gpuCycles", [this] {
        return double(engine->now() / gpuClockPeriod);
    });
    registry.addValue("simperf.events",
                      [this] { return perf.eventsNow(); });
    registry.addValue("simperf.hostSeconds",
                      [this] { return perf.hostSecondsNow(); });
    registry.addValue("simperf.eventsPerSec",
                      [this] { return perf.eventsPerSecNow(); });
    registry.addValue("simperf.ticksPerHostSec",
                      [this] { return perf.ticksPerHostSecNow(); });
    registry.addValue("simperf.peakLiveEvents", [this] {
        return double(engine->peakLiveEvents());
    });
    registry.addValue("simperf.poolChunks", [this] {
        return double(engine->poolChunksAllocated());
    });
    registry.addValue("simperf.wheelInserts", [this] {
        return double(engine->wheelInserts());
    });
    registry.addValue("simperf.farInserts", [this] {
        return double(engine->farInserts());
    });
    registry.addValue("simperf.quanta", [this] {
        return double(engine->quantaExecuted());
    });
    registry.addValue("simperf.execNs", [this] {
        return double(engine->breakdown().execNs);
    });
    registry.addValue("simperf.barrierWaitNs", [this] {
        return double(engine->breakdown().barrierWaitNs);
    });
    registry.addValue("simperf.flushNs", [this] {
        return double(engine->breakdown().flushNs);
    });
}

System::~System() = default;

void
System::drain(const char *what)
{
    // Phases only complete when no component generates further work,
    // so running every queue dry is a full drain.  The phase boundary
    // is broadcast to every listener (watchdog, SimPerf) through the
    // phase-hub queue.
    eventQueue().beginPhase(what);
    ShardEngine::BarrierHook hook;
    if (_watchdog && sharded()) {
        hook = [this](Tick quantum_end) {
            _watchdog->barrierCheck(quantum_end,
                                    engine->totalPending());
        };
    }
    engine->drain([this] { fabric.flushStaged(); }, hook);
    eventQueue().endPhase();
    // Drain points are the protocol's synchronization points: the
    // only moments the DeNovo invariants must hold globally.
    if (_checker)
        _checker->audit(what);
    if (_autoShards && !_autoTuned)
        autoTuneShards();
}

void
System::autoTuneShards()
{
    // Calibration prologue: the engine ran this drain with one
    // worker, so its exec-time and quantum counters are a clean
    // single-threaded sample.  A drain that executed no quanta (all
    // work was controller-staged, or the phase was empty) carries no
    // signal — keep calibrating through the next drain.
    const EngineBreakdown b = engine->breakdown();
    const std::uint64_t events = engine->eventsExecuted();
    if (b.quanta == 0 || events == 0)
        return;
    _autoTuned = true;

    AutoTuneInputs in;
    in.tiles = engine->numTiles();
    in.hwThreads = hostHardwareThreads();
    in.events = events;
    in.quanta = b.quanta;
    in.execNs = std::max<std::uint64_t>(1, b.execNs);
    in.barrierCrossNs = measuredBarrierCrossNs();
    const AutoTuneDecision d = stashsim::autoTuneShards(in);
    _autoEventsPerQuantum = d.eventsPerQuantum;
    engine->setThreads(d.workers);
    inform("auto-shards: picked ", d.workers, " worker(s) from ",
           "eventsPerQuantum=", d.eventsPerQuantum,
           " nsPerEvent=", d.nsPerEvent,
           " barrierCrossNs=", in.barrierCrossNs,
           " tiles=", in.tiles, " hwThreads=", in.hwThreads);
}

void
System::runGpuPhase(Phase &phase)
{
    // Split the grid round-robin across the CUs.
    std::vector<Kernel> per_cu(gpus.size());
    for (auto &k : per_cu)
        k.name = phase.kernel.name;
    for (std::size_t b = 0; b < phase.kernel.blocks.size(); ++b) {
        per_cu[b % gpus.size()].blocks.push_back(
            std::move(phase.kernel.blocks[b]));
    }

    // Atomic: sharded CUs complete on their tile's worker thread.
    std::atomic<unsigned> pending{0};
    for (std::size_t i = 0; i < gpus.size(); ++i) {
        if (per_cu[i].blocks.empty())
            continue;
        pending.fetch_add(1, std::memory_order_relaxed);
        gpus[i].cu->runKernel(std::move(per_cu[i]), [&pending] {
            pending.fetch_sub(1, std::memory_order_relaxed);
        });
    }
    drain("gpu kernel phase");
    if (pending.load() != 0 && _watchdog)
        _watchdog->reportHang("gpu kernel phase");
    sim_assert(pending.load() == 0);
}

void
System::runCpuPhase(Phase &phase, std::vector<std::string> *errors)
{
    // Synchronization point: the CPUs may now read what the GPU
    // produced, so their L1s self-invalidate stale Valid words.
    for (auto &c : cpus)
        c.l1->selfInvalidate();

    // Per-core error logs, merged in core order after the drain:
    // sharded cores fail concurrently, and core-major order keeps the
    // merged log identical across modes (serial interleaving by time
    // would differ from any parallel schedule).
    std::vector<std::vector<std::string>> coreErrors(
        phase.cpuWork.size());
    std::atomic<unsigned> pending{0};
    for (std::size_t i = 0; i < phase.cpuWork.size(); ++i) {
        if (phase.cpuWork[i].empty())
            continue;
        if (i >= cpus.size())
            fatal("workload uses more CPU cores than configured");
        pending.fetch_add(1, std::memory_order_relaxed);
        cpus[i].core->run(std::move(phase.cpuWork[i]),
                          [&pending] {
                              pending.fetch_sub(
                                  1, std::memory_order_relaxed);
                          },
                          &coreErrors[i]);
    }
    drain("cpu phase");
    if (errors) {
        for (auto &ce : coreErrors) {
            for (auto &e : ce)
                errors->push_back(std::move(e));
        }
    }
    if (pending.load() != 0 && _watchdog)
        _watchdog->reportHang("cpu phase");
    sim_assert(pending.load() == 0);
}

RunResult
System::run(Workload wl, const RunControl &ctl)
{
    const bool checkpointing = ctl.checkpointEveryTicks > 0;
    const bool restoring = !ctl.restoreFrom.empty();

    // A workload whose warmup covers every phase would never hit the
    // `p + 1 == warmupPhases` baseline capture below and silently
    // report raw (unreset) statistics as its measured delta.
    if (wl.warmupPhases > 0 && wl.warmupPhases >= wl.phases.size()) {
        fatal("workload '", wl.name, "': warmupPhases (",
              wl.warmupPhases, ") must be smaller than the phase "
              "count (", wl.phases.size(), "); an all-warmup run "
              "never captures its stats baseline");
    }

    RunResult r;
    perf.runBegin();

    FunctionalMem fm = functionalMem();
    SystemStats baseline;
    bool baselineCaptured = false;
    std::size_t firstPhase = 0;
    Tick lastCkpt = 0;

    if (restoring) {
        SnapshotReader sr = SnapshotReader::fromFile(ctl.restoreFrom);
        if (sr.workload() != wl.name) {
            fatal("snapshot '", ctl.restoreFrom, "' was taken from "
                  "workload '", sr.workload(), "', not '", wl.name,
                  "'");
        }
        restoreSnapshot(sr, ctl.restoreDeltas);
        sr.openSection("run");
        firstPhase = sr.u32();
        sr.require(firstPhase == sr.phaseCursor(),
                   "phase cursor disagrees with manifest");
        baselineCaptured = sr.b();
        readSystemStats(sr, baseline);
        sr.closeSection();
        if (wl.restoreState && sr.hasSection("workload")) {
            sr.openSection("workload");
            wl.restoreState(sr);
            sr.closeSection();
        }
        lastCkpt = sr.tick();
        // The restored event/tick counters cover the pre-checkpoint
        // execution too; re-anchor SimPerf so perf.{events,simTicks}
        // describe the whole logical run, exactly as an uninterrupted
        // run would report them.
        perf.rebase(0, 0);
    } else if (wl.init) {
        // wl.init built the memory image the checkpoint already
        // carries, so a restored run must not repeat it.
        wl.init(fm);
    }

    // Where the run stops: the warmup boundary plus the measured
    // interval, clamped to the workload's own end.
    std::size_t stopAfter = wl.phases.size();
    if (ctl.measurePhases != runControlAllPhases) {
        stopAfter = std::min<std::size_t>(
            wl.phases.size(),
            std::size_t(wl.warmupPhases) + ctl.measurePhases);
    }

    for (std::size_t p = firstPhase; p < wl.phases.size(); ++p) {
        Phase &phase = wl.phases[p];
        switch (phase.kind) {
          case Phase::Kind::Gpu:
            runGpuPhase(phase);
            break;
          case Phase::Kind::Cpu:
            runCpuPhase(phase, &r.errors);
            break;
        }
        if (p + 1 == wl.warmupPhases) {
            baseline = statsSnapshot();
            baselineCaptured = true;
            if (!ctl.boundarySnapshotPath.empty()) {
                // The measurement-boundary snapshot a SampleDriver
                // fans measured intervals out from (DESIGN.md §17).
                writeSnapshotFile(ctl.boundarySnapshotPath, wl,
                                  std::uint32_t(p + 1), true,
                                  baseline);
                g_boundarySnapshotWrites.fetch_add(
                    1, std::memory_order_relaxed);
            }
        }
        if (p + 1 >= stopAfter && p + 1 < wl.phases.size()) {
            r.truncated = true;
            break;
        }
        if (checkpointing && p + 1 < wl.phases.size() &&
            engine->now() >= lastCkpt + ctl.checkpointEveryTicks) {
            writeCheckpoint(ctl, wl, std::uint32_t(p + 1),
                            baselineCaptured, baseline);
            lastCkpt = engine->now();
        }
        if (ctl.interrupt && p + 1 < wl.phases.size() &&
            ctl.interrupt->load(std::memory_order_relaxed)) {
            // Graceful degradation: this drain point is a valid
            // snapshot moment, so drop a final checkpoint (whatever
            // the cadence says) and surface the interrupt — the next
            // attempt resumes here instead of at tick 0.
            if (!ctl.checkpointDir.empty() &&
                engine->now() > lastCkpt) {
                writeCheckpoint(ctl, wl, std::uint32_t(p + 1),
                                baselineCaptured, baseline);
            }
            throw RunInterrupted(wl.name);
        }
    }

    // Snapshot the statistics before the validation flush: the flush
    // is not part of the measured execution (lazily-written stash
    // data would otherwise be charged writebacks the paper's lazy
    // policy precisely avoids).
    // A warmup workload whose baseline never materialized (possible
    // only via a snapshot restored past the warmup boundary with a
    // mismatched phase structure) must not subtract a zero baseline
    // and present warmup traffic as measured traffic.
    if (wl.warmupPhases > 0 && !baselineCaptured) {
        fatal("workload '", wl.name, "': warmup baseline was never "
              "captured (resumed at phase ", firstPhase, ", warmup "
              "boundary ", wl.warmupPhases, ", but the snapshot "
              "carries no baseline)");
    }
    r.stats = statsSnapshot();
    r.stats.sub(baseline);
    r.energy = energyModel.compute(r.stats);
    r.gpuCycles = r.stats.gpuCycles;

    // Flush every private memory so the functional image is complete,
    // then validate.  A truncated run skips both: the workload is
    // deliberately incomplete, so its validator would only report
    // the missing phases.
    if (!r.truncated) {
        for (auto &g : gpus) {
            g.l1->flushAll();
            if (g.stash)
                g.stash->flushAll();
        }
        for (auto &c : cpus)
            c.l1->flushAll();
        drain("final flush");
        for (auto &b : llcBanks)
            b->flushDirtyToMemory();
        if (_checker)
            _checker->checkFinalMemory(mem);

        if (wl.validate) {
            if (!wl.validate(fm, r.errors))
                r.validated = false;
        }
    }
    if (!r.errors.empty())
        r.validated = false;
    r.perf = perf.summary();
    r.shardsUsed = engine->serial() ? 1 : engine->numThreads();
    r.shardsAutoTuned = _autoShards && _autoTuned;
    r.autoEventsPerQuantum =
        r.shardsAutoTuned ? _autoEventsPerQuantum : 0;
    return r;
}

SystemStats
System::statsSnapshot() const
{
    SystemStats s;
    for (const auto &g : gpus) {
        s.gpu.add(g.cu->stats());
        s.gpuL1.add(g.l1->stats());
        if (g.spad)
            s.scratch.add(g.spad->stats());
        if (g.stash)
            s.stash.add(g.stash->stats());
        if (g.dma)
            s.dma.add(g.dma->stats());
    }
    for (const auto &c : cpus) {
        s.cpu.add(c.core->stats());
        s.cpuL1.add(c.l1->stats());
    }
    for (const auto &b : llcBanks)
        s.llc.add(b->stats());
    for (const auto &b : memBackends)
        s.memback.add(b->stats());
    s.noc.add(mesh.stats());
    s.gpuCycles = engine->now() / gpuClockPeriod;
    s.numGpuCus = gpus.size();
    return s;
}

Stash *
System::stashOf(unsigned cu)
{
    return cu < gpus.size() ? gpus[cu].stash.get() : nullptr;
}

L1Cache *
System::gpuL1Of(unsigned cu)
{
    return cu < gpus.size() ? gpus[cu].l1.get() : nullptr;
}

L1Cache *
System::cpuL1Of(unsigned cpu)
{
    return cpu < cpus.size() ? cpus[cpu].l1.get() : nullptr;
}

LlcBank *
System::llcBankOf(PhysAddr line_pa)
{
    return llcBanks[fabric.nodeOfLlc(line_pa)].get();
}

MemBackend *
System::memBackendOf(NodeId node)
{
    return node < memBackends.size() ? memBackends[node].get()
                                     : nullptr;
}

void
System::dumpDiagnostics(std::ostream &os) const
{
    os << "--- system state (tick " << engine->now() << ") ---\n";
    if (engine->serial()) {
        const EventQueue &eq = engine->queue(0);
        os << "  event queue: " << eq.size() << " pending event(s)";
        if (eq.size() > 0)
            os << ", next at tick " << eq.nextTick();
        os << "\n";
    } else {
        os << "  event queues (" << engine->numTiles() << " tiles): "
           << engine->totalPending() << " pending event(s)\n";
        for (unsigned t = 0; t < engine->numTiles(); ++t) {
            const EventQueue &eq = engine->queue(t);
            if (eq.size() == 0)
                continue;
            os << "    tile " << t << ": " << eq.size()
               << " pending, next at tick " << eq.nextTick() << "\n";
        }
    }
    fabric.dumpState(os);
    os << "  router channel reservations (busy-until tick):\n";
    static const char *dirName[] = {"N", "S", "E", "W", "L"};
    for (NodeId n = 0; n < cfg.numNodes(); ++n) {
        const Router &r = mesh.router(n);
        bool any = false;
        for (unsigned d = 0; d < unsigned(Direction::NumDirections);
             ++d) {
            any = any || r.busyUntil(Direction(d)) > 0;
        }
        if (!any)
            continue;
        os << "    node " << unsigned(n) << ":";
        for (unsigned d = 0; d < unsigned(Direction::NumDirections);
             ++d) {
            if (r.busyUntil(Direction(d)) > 0) {
                os << " " << dirName[d] << "="
                   << r.busyUntil(Direction(d));
            }
        }
        os << "\n";
    }
    for (const auto &g : gpus) {
        if (g.stash)
            g.stash->dumpState(os);
    }
}

bool
System::deltaSupported(DeltaGroup g) const
{
    switch (g) {
      case DeltaGroup::Gpu: {
        // The GPU-side restore path under a gpu delta is "construct
        // fresh, skip the saved cu sections" — legal only while the
        // GPU side has done nothing: every GPU-side counter zero
        // (CPU-only warmup, the sampling contract's boundary shape).
        const SystemStats s = statsSnapshot();
        return statsAllZero(s.gpu) && statsAllZero(s.gpuL1) &&
               statsAllZero(s.scratch) && statsAllZero(s.stash) &&
               statsAllZero(s.dma);
      }
      case DeltaGroup::MemBackend:
        for (const auto &b : memBackends) {
            if (!b->deltaSafe())
                return false;
        }
        return true;
      case DeltaGroup::Llc:
        // The remap path re-derives placement mechanically; its only
        // failure mode (set overflow) is checked at restore time.
        return true;
    }
    return false;
}

void
System::saveSnapshot(SnapshotWriter &w) const
{
    // Delta-group identity (DESIGN.md §17): the base hash, each
    // group's sub-hash, and whether the state being saved tolerates
    // dropping that group.  Restores whose full hash mismatches
    // consult this section to decide legality.
    {
        w.beginSection("cfgid");
        w.u32(1); // cfgid payload version
        w.u64(snapshotConfigHash(cfg));
        w.u64(snapshotConfigBaseHash(cfg));
        w.u32(numDeltaGroups);
        for (unsigned gi = 0; gi < numDeltaGroups; ++gi) {
            const DeltaGroup g = DeltaGroup(gi);
            w.str(deltaGroupName(g));
            w.u64(snapshotConfigGroupHash(cfg, g));
            w.b(deltaSupported(g));
        }
        w.endSection();
    }

    // Engine clock: one aggregate section regardless of sharding, so
    // a serially-taken checkpoint restores into a sharded System (and
    // vice versa).  Per-tile wheel/far/peak split is observability
    // only and legitimately differs across modes.
    {
        w.beginSection("engine");
        EventQueue::ClockState s = engine->queue(0).clockState();
        s.curTick = engine->now();
        for (unsigned t = 1; t < engine->numTiles(); ++t) {
            const auto q = engine->queue(t).clockState();
            s.lastEventTick = std::max(s.lastEventTick,
                                       q.lastEventTick);
            s.executed += q.executed;
            s.peakLive = std::max(s.peakLive, q.peakLive);
            s.wheelInserts += q.wheelInserts;
            s.farInserts += q.farInserts;
        }
        w.u64(s.curTick);
        w.u64(s.lastEventTick);
        w.u64(s.nextSeq);
        w.u64(s.executed);
        w.u64(s.peakLive);
        w.u64(s.wheelInserts);
        w.u64(s.farInserts);
        w.endSection();
    }

    w.beginSection("mem");
    mem.snapshot(w);
    w.endSection();
    w.beginSection("pagetable");
    pageTable.snapshot(w);
    w.endSection();
    w.beginSection("noc");
    mesh.snapshot(w);
    w.endSection();
    w.beginSection("fabric");
    fabric.snapshot(w);
    w.endSection();

    for (std::size_t i = 0; i < llcBanks.size(); ++i) {
        w.beginSection("llc" + std::to_string(i));
        llcBanks[i]->snapshot(w);
        w.endSection();
    }

    for (std::size_t i = 0; i < memBackends.size(); ++i) {
        w.beginSection("memback" + std::to_string(i));
        memBackends[i]->snapshot(w);
        w.endSection();
    }

    for (std::size_t i = 0; i < gpus.size(); ++i) {
        const std::string p = "cu" + std::to_string(i);
        const GpuNode &g = gpus[i];
        w.beginSection(p + ".tlb");
        g.tlb->snapshot(w);
        w.endSection();
        w.beginSection(p + ".l1");
        g.l1->snapshot(w);
        w.endSection();
        if (g.spad) {
            w.beginSection(p + ".scratch");
            g.spad->snapshot(w);
            w.endSection();
        }
        if (g.stash) {
            w.beginSection(p + ".stash");
            g.stash->snapshot(w);
            w.endSection();
        }
        if (g.dma) {
            w.beginSection(p + ".dma");
            g.dma->snapshot(w);
            w.endSection();
        }
        w.beginSection(p + ".core");
        g.cu->snapshot(w);
        w.endSection();
    }

    for (std::size_t i = 0; i < cpus.size(); ++i) {
        const std::string p = "cpu" + std::to_string(i);
        const CpuNode &c = cpus[i];
        w.beginSection(p + ".tlb");
        c.tlb->snapshot(w);
        w.endSection();
        w.beginSection(p + ".l1");
        c.l1->snapshot(w);
        w.endSection();
        w.beginSection(p + ".core");
        c.core->snapshot(w);
        w.endSection();
    }

    if (_checker) {
        w.beginSection("checker");
        _checker->snapshot(w);
        w.endSection();
    }

    if (_injector) {
        w.beginSection("injector");
        _injector->snapshot(w);
        w.endSection();
    }
}

void
System::validateConfigDeltas(SnapshotReader &r, DeltaMask declared,
                             bool *gpu_cold, bool *back_cold,
                             bool *llc_remap) const
{
    const std::uint64_t want = snapshotConfigHash(cfg);
    // The structured diagnostic every mismatch path shares: both hash
    // values plus the fields excepted from hashing altogether.
    const std::string prefix = logFormat(
        "snapshot configuration hash mismatch: snapshot was taken "
        "with config hash 0x",
        std::hex, r.configHash(), " but this system's is 0x", want,
        std::dec, " (always-excepted fields: shards, verify)");

    if (!r.hasSection("cfgid")) {
        fatal(prefix, "; the snapshot carries no 'cfgid' section, so "
              "restore requires the identical configuration");
    }

    r.openSection("cfgid");
    r.require(r.u32() == 1, "unsupported cfgid payload version");
    r.require(r.u64() == r.configHash(),
              "cfgid full hash disagrees with the manifest");
    const std::uint64_t snapBase = r.u64();
    const std::uint32_t ngroups = r.u32();
    struct GroupRec
    {
        std::string name;
        std::uint64_t hash;
        bool supported;
    };
    std::vector<GroupRec> recs;
    recs.reserve(ngroups);
    for (std::uint32_t i = 0; i < ngroups; ++i) {
        GroupRec rec;
        rec.name = r.str();
        rec.hash = r.u64();
        rec.supported = r.b();
        recs.push_back(std::move(rec));
    }
    r.closeSection();

    if (snapshotConfigBaseHash(cfg) != snapBase) {
        fatal(prefix, "; fields outside every delta group differ — "
              "no delta declaration can restore across a base-field "
              "change");
    }

    std::string undeclared, unsupported;
    for (const GroupRec &rec : recs) {
        DeltaGroup g;
        if (!deltaGroupFromName(rec.name, g)) {
            fatal(prefix, "; snapshot declares delta group '",
                  rec.name, "' unknown to this build");
        }
        if (snapshotConfigGroupHash(cfg, g) == rec.hash)
            continue;
        if (!(declared & deltaBit(g))) {
            if (!undeclared.empty())
                undeclared += "; ";
            undeclared += "'" + rec.name + "' (" +
                          deltaGroupFields(g) + ")";
            continue;
        }
        if (!rec.supported) {
            if (!unsupported.empty())
                unsupported += ", ";
            unsupported += "'" + rec.name + "'";
            continue;
        }
        switch (g) {
          case DeltaGroup::Gpu:
            *gpu_cold = true;
            break;
          case DeltaGroup::MemBackend:
            *back_cold = true;
            break;
          case DeltaGroup::Llc:
            *llc_remap = true;
            break;
        }
    }
    if (!undeclared.empty()) {
        fatal(prefix, "; undeclared config delta in group(s) ",
              undeclared, " — a sampled restore must declare every "
              "changed group");
    }
    if (!unsupported.empty()) {
        fatal(prefix, "; declared delta group(s) ", unsupported,
              " cannot restore from this checkpoint: the saved state "
              "is not quiescent for the group");
    }
}

void
System::restoreSnapshot(SnapshotReader &r, DeltaMask declared)
{
    // Matching full hashes restore exactly, declared deltas or not;
    // only a mismatch takes the delta-validation path.
    bool gpuCold = false, backCold = false, llcRemap = false;
    if (r.configHash() != snapshotConfigHash(cfg))
        validateConfigDeltas(r, declared, &gpuCold, &backCold,
                             &llcRemap);

    {
        r.openSection("engine");
        EventQueue::ClockState s;
        s.curTick = r.u64();
        s.lastEventTick = r.u64();
        s.nextSeq = r.u64();
        s.executed = r.u64();
        s.peakLive = r.u64();
        s.wheelInserts = r.u64();
        s.farInserts = r.u64();
        r.closeSection();
        // Every tile's clock moves to the checkpoint tick (setTime
        // re-anchors each calendar wheel there); the phase-hub queue
        // additionally carries the aggregate counters and the event
        // sequence number.
        for (unsigned t = 1; t < engine->numTiles(); ++t)
            engine->queue(t).setTime(s.curTick);
        engine->queue(0).restoreClock(s);
    }

    r.openSection("mem");
    mem.restore(r);
    r.closeSection();
    r.openSection("pagetable");
    pageTable.restore(r);
    r.closeSection();
    r.openSection("noc");
    mesh.restore(r);
    r.closeSection();
    r.openSection("fabric");
    fabric.restore(r);
    r.closeSection();

    for (std::size_t i = 0; i < llcBanks.size(); ++i) {
        r.openSection("llc" + std::to_string(i));
        llcBanks[i]->restore(r, llcRemap);
        r.closeSection();
    }

    for (std::size_t i = 0; i < memBackends.size(); ++i) {
        r.openSection("memback" + std::to_string(i));
        if (backCold) {
            // Declared membackend delta: the saved timing state
            // belongs to another model — keep this backend cold but
            // carry the accumulated counters forward.
            memBackends[i]->restoreCarriedStats(r);
        } else {
            memBackends[i]->restore(r);
        }
        r.closeSection();
    }

    // Declared gpu delta: the saved cu sections describe another
    // GPU-side topology (possibly other component kinds entirely);
    // they are skipped wholesale and the freshly-constructed GPU side
    // stays pristine — legal because the cfgid supported flag proved
    // the GPU had done nothing at save time.
    if (!gpuCold) {
        for (std::size_t i = 0; i < gpus.size(); ++i) {
            const std::string p = "cu" + std::to_string(i);
            GpuNode &g = gpus[i];
            r.openSection(p + ".tlb");
            g.tlb->restore(r);
            r.closeSection();
            r.openSection(p + ".l1");
            g.l1->restore(r);
            r.closeSection();
            if (g.spad) {
                r.openSection(p + ".scratch");
                g.spad->restore(r);
                r.closeSection();
            }
            if (g.stash) {
                r.openSection(p + ".stash");
                g.stash->restore(r);
                r.closeSection();
            }
            if (g.dma) {
                r.openSection(p + ".dma");
                g.dma->restore(r);
                r.closeSection();
            }
            r.openSection(p + ".core");
            g.cu->restore(r);
            r.closeSection();
        }
    }

    for (std::size_t i = 0; i < cpus.size(); ++i) {
        const std::string p = "cpu" + std::to_string(i);
        CpuNode &c = cpus[i];
        r.openSection(p + ".tlb");
        c.tlb->restore(r);
        r.closeSection();
        r.openSection(p + ".l1");
        c.l1->restore(r);
        r.closeSection();
        r.openSection(p + ".core");
        c.core->restore(r);
        r.closeSection();
    }

    // The checker section is optional by design (cfg.verify is not
    // part of the config hash): a checkpoint taken without the
    // checker restores into a checked system with an empty golden
    // image, which merely means pre-checkpoint stores go unaudited.
    if (_checker && r.hasSection("checker")) {
        r.openSection("checker");
        _checker->restore(r);
        r.closeSection();
    }

    // Likewise optional; when present it restores the RNG stream
    // position, FIFO clamps, and fault counters, so the resumed run
    // replays exactly the perturbations the uninterrupted run would
    // have drawn.
    if (_injector && r.hasSection("injector")) {
        r.openSection("injector");
        _injector->restore(r);
        r.closeSection();
    }
}

void
System::writeSnapshotFile(const std::string &path,
                          const Workload &wl,
                          std::uint32_t next_phase,
                          bool baseline_captured,
                          const SystemStats &baseline) const
{
    SnapshotWriter w;
    w.configHash = snapshotConfigHash(cfg);
    w.tick = engine->now();
    w.phaseCursor = next_phase;
    w.workload = wl.name;
    saveSnapshot(w);
    w.beginSection("run");
    w.u32(next_phase);
    w.b(baseline_captured);
    writeSystemStats(w, baseline);
    w.endSection();
    // Optional, like the checker/injector sections: present only for
    // workloads that carry generator state worth pinning.
    if (wl.snapshotState) {
        w.beginSection("workload");
        wl.snapshotState(w);
        w.endSection();
    }
    w.writeFile(path);
}

void
System::writeCheckpoint(const RunControl &ctl,
                        const Workload &wl,
                        std::uint32_t next_phase,
                        bool baseline_captured,
                        const SystemStats &baseline) const
{
    const std::string label =
        ctl.checkpointLabel.empty() ? wl.name : ctl.checkpointLabel;
    std::string path = ctl.checkpointDir;
    if (!path.empty() && path.back() != '/')
        path += '/';
    path += "CKPT_" + label + "@" + std::to_string(engine->now()) +
            ".snap";
    writeSnapshotFile(path, wl, next_phase, baseline_captured,
                      baseline);
}

} // namespace stashsim
