#include "driver/system.hh"

#include <ostream>

#include "sim/log.hh"
#include "verify/fault_injector.hh"
#include "verify/protocol_checker.hh"
#include "verify/watchdog.hh"

namespace stashsim
{

namespace
{

MeshParams
meshParamsOf(const SystemConfig &cfg)
{
    MeshParams mp;
    mp.width = cfg.meshWidth;
    mp.height = cfg.meshHeight;
    mp.routerCycles = cfg.routerCycles;
    mp.linkCycles = cfg.linkCycles;
    mp.flitsPerCycle = cfg.nocFlitsPerCycle;
    return mp;
}

} // namespace

System::System(const SystemConfig &cfg, const EnergyParams &energy)
    : cfg(cfg), energyModel(energy), mesh(eq, meshParamsOf(cfg)),
      fabric(mesh)
{
    if (cfg.numGpuCus + cfg.numCpuCores > cfg.numNodes())
        fatal("more cores than mesh nodes");
    if (cfg.llcBanks != cfg.numNodes())
        fatal("this system places one LLC bank per mesh node");

    // LLC banks: one per node.
    LlcBank::Params lp;
    lp.bankBytes = cfg.llcBankBytes;
    lp.assoc = cfg.llcAssoc;
    lp.accessCycles = cfg.llcBankCycles;
    lp.dramCycles = cfg.dramCycles;
    for (NodeId n = 0; n < cfg.numNodes(); ++n) {
        llcBanks.push_back(
            std::make_unique<LlcBank>(eq, fabric, mem, n, lp));
        fabric.registerObject(n, Unit::Llc, llcBanks.back().get());
    }

    // GPU CUs at nodes [0, numGpuCus).
    L1Cache::Params gl1;
    gl1.bytes = cfg.l1Bytes;
    gl1.assoc = cfg.l1Assoc;
    gl1.mshrs = cfg.l1Mshrs;
    gl1.hitCycles = cfg.l1HitCycles;
    gl1.clockPeriod = gpuClockPeriod;

    for (unsigned i = 0; i < cfg.numGpuCus; ++i) {
        const NodeId node = NodeId(i);
        const CoreId core = CoreId(i);
        GpuNode g;
        g.tlb = std::make_unique<Tlb>(pageTable, cfg.vpMapEntries);
        g.l1 = std::make_unique<L1Cache>(eq, fabric, *g.tlb, core,
                                         node, gl1);
        fabric.registerObject(node, Unit::L1, g.l1.get());
        fabric.registerCore(core, node);

        if (usesScratchpad(cfg.memOrg)) {
            g.spad = std::make_unique<Scratchpad>(cfg.localBytes);
            if (cfg.memOrg == MemOrg::ScratchGD) {
                g.dma = std::make_unique<DmaEngine>(
                    eq, fabric, *g.tlb, *g.spad, core, node);
                fabric.registerObject(node, Unit::Dma, g.dma.get());
            }
        } else if (usesStash(cfg.memOrg)) {
            Stash::Params sp;
            sp.bytes = cfg.localBytes;
            sp.chunkBytes = cfg.stashChunkBytes;
            sp.mapEntries = cfg.stashMapEntries;
            sp.vpEntries = cfg.vpMapEntries;
            sp.translationCycles = cfg.stashTranslationCycles;
            sp.hitCycles = cfg.localHitCycles;
            sp.replicationOpt = cfg.stashReplicationOpt;
            g.stash = std::make_unique<Stash>(eq, fabric, pageTable,
                                              core, node, sp);
            fabric.registerObject(node, Unit::Stash, g.stash.get());
        }

        g.cu = std::make_unique<ComputeUnit>(eq, this->cfg, core,
                                             g.l1.get(), g.spad.get(),
                                             g.stash.get(),
                                             g.dma.get());
        gpus.push_back(std::move(g));
    }

    // CPU cores at nodes [numGpuCus, numGpuCus + numCpuCores).
    L1Cache::Params cl1 = gl1;
    cl1.clockPeriod = cpuClockPeriod;
    for (unsigned i = 0; i < cfg.numCpuCores; ++i) {
        const NodeId node = NodeId(cfg.numGpuCus + i);
        const CoreId core = CoreId(cfg.numGpuCus + i);
        CpuNode c;
        c.tlb = std::make_unique<Tlb>(pageTable, cfg.vpMapEntries);
        c.l1 = std::make_unique<L1Cache>(eq, fabric, *c.tlb, core,
                                         node, cl1);
        fabric.registerObject(node, Unit::L1, c.l1.get());
        fabric.registerCore(core, node);
        c.core = std::make_unique<CpuCore>(eq, *c.l1, core,
                                           cfg.cpuOutstanding);
        cpus.push_back(std::move(c));
    }

    // Verification subsystem (all pieces independently toggleable).
    if (cfg.verify.faultInjection) {
        _injector =
            std::make_unique<FaultInjector>(eq, this->cfg.verify);
        fabric.setFaultInjector(_injector.get());
    }
    if (cfg.verify.protocolChecker) {
        _checker = std::make_unique<ProtocolChecker>();
        for (auto &b : llcBanks)
            _checker->addLlc(b.get());
        for (unsigned i = 0; i < gpus.size(); ++i) {
            GpuNode &g = gpus[i];
            const CoreId core = CoreId(i);
            g.l1->attachChecker(_checker.get());
            _checker->addL1(core, g.l1.get());
            if (g.stash) {
                g.stash->attachChecker(_checker.get());
                _checker->addStash(core, g.stash.get());
            }
            if (g.dma)
                g.dma->attachChecker(_checker.get());
        }
        for (unsigned i = 0; i < cpus.size(); ++i) {
            const CoreId core = CoreId(cfg.numGpuCus + i);
            cpus[i].l1->attachChecker(_checker.get());
            _checker->addL1(core, cpus[i].l1.get());
        }
    }
    if (cfg.verify.watchdog) {
        _watchdog = std::make_unique<Watchdog>(eq, this->cfg.verify);
        _watchdog->setDumpFn(
            [this](std::ostream &os) { dumpDiagnostics(os); });
        for (auto &g : gpus) {
            g.cu->setWatchdog(_watchdog.get());
            if (g.dma)
                g.dma->setWatchdog(_watchdog.get());
        }
        for (auto &c : cpus)
            c.core->setWatchdog(_watchdog.get());
        // The watchdog arms itself at the driver's drain points.
        eq.addPhaseListener(_watchdog.get());
    }

    // SimPerf samples host time at every drain boundary.
    eq.addPhaseListener(&perf);

    registerComponentStats();
}

void
System::registerComponentStats()
{
    for (unsigned i = 0; i < gpus.size(); ++i) {
        const std::string p = "cu" + std::to_string(i);
        const GpuNode &g = gpus[i];
        registry.addGroup(p + ".core", &g.cu->stats());
        registry.addGroup(p + ".l1", &g.l1->stats());
        if (g.spad)
            registry.addGroup(p + ".scratch", &g.spad->stats());
        if (g.stash)
            registry.addGroup(p + ".stash", &g.stash->stats());
        if (g.dma)
            registry.addGroup(p + ".dma", &g.dma->stats());
    }
    for (unsigned i = 0; i < cpus.size(); ++i) {
        const std::string p = "cpu" + std::to_string(i);
        registry.addGroup(p + ".core", &cpus[i].core->stats());
        registry.addGroup(p + ".l1", &cpus[i].l1->stats());
    }
    for (unsigned i = 0; i < llcBanks.size(); ++i) {
        registry.addGroup("llc" + std::to_string(i),
                          &llcBanks[i]->stats());
    }
    registry.addGroup("noc", &mesh.stats());
    registry.addValue("sim.tick",
                      [this] { return double(eq.curTick()); });
    registry.addValue("sim.gpuCycles", [this] {
        return double(eq.curTick() / gpuClockPeriod);
    });
    registry.addValue("simperf.events",
                      [this] { return perf.eventsNow(); });
    registry.addValue("simperf.hostSeconds",
                      [this] { return perf.hostSecondsNow(); });
    registry.addValue("simperf.eventsPerSec",
                      [this] { return perf.eventsPerSecNow(); });
    registry.addValue("simperf.ticksPerHostSec",
                      [this] { return perf.ticksPerHostSecNow(); });
}

System::~System() = default;

void
System::drain(const char *what)
{
    // Phases only complete when no component generates further work,
    // so running the event queue dry is a full drain.  The phase
    // boundary is broadcast to every listener (watchdog, trace
    // sinks) through the event queue.
    eq.beginPhase(what);
    eq.run();
    eq.endPhase();
    // Drain points are the protocol's synchronization points: the
    // only moments the DeNovo invariants must hold globally.
    if (_checker)
        _checker->audit(what);
}

void
System::runGpuPhase(Phase &phase)
{
    // Split the grid round-robin across the CUs.
    std::vector<Kernel> per_cu(gpus.size());
    for (auto &k : per_cu)
        k.name = phase.kernel.name;
    for (std::size_t b = 0; b < phase.kernel.blocks.size(); ++b) {
        per_cu[b % gpus.size()].blocks.push_back(
            std::move(phase.kernel.blocks[b]));
    }

    unsigned pending = 0;
    for (std::size_t i = 0; i < gpus.size(); ++i) {
        if (per_cu[i].blocks.empty())
            continue;
        ++pending;
        gpus[i].cu->runKernel(std::move(per_cu[i]),
                              [&pending]() { --pending; });
    }
    drain("gpu kernel phase");
    if (pending != 0 && _watchdog)
        _watchdog->reportHang("gpu kernel phase");
    sim_assert(pending == 0);
}

void
System::runCpuPhase(Phase &phase, std::vector<std::string> *errors)
{
    // Synchronization point: the CPUs may now read what the GPU
    // produced, so their L1s self-invalidate stale Valid words.
    for (auto &c : cpus)
        c.l1->selfInvalidate();

    unsigned pending = 0;
    for (std::size_t i = 0; i < phase.cpuWork.size(); ++i) {
        if (phase.cpuWork[i].empty())
            continue;
        if (i >= cpus.size())
            fatal("workload uses more CPU cores than configured");
        ++pending;
        cpus[i].core->run(std::move(phase.cpuWork[i]),
                          [&pending]() { --pending; }, errors);
    }
    drain("cpu phase");
    if (pending != 0 && _watchdog)
        _watchdog->reportHang("cpu phase");
    sim_assert(pending == 0);
}

RunResult
System::run(Workload wl)
{
    RunResult r;
    perf.runBegin();

    FunctionalMem fm = functionalMem();
    if (wl.init)
        wl.init(fm);

    SystemStats baseline;
    for (std::size_t p = 0; p < wl.phases.size(); ++p) {
        Phase &phase = wl.phases[p];
        switch (phase.kind) {
          case Phase::Kind::Gpu:
            runGpuPhase(phase);
            break;
          case Phase::Kind::Cpu:
            runCpuPhase(phase, &r.errors);
            break;
        }
        if (p + 1 == wl.warmupPhases)
            baseline = statsSnapshot();
    }

    // Snapshot the statistics before the validation flush: the flush
    // is not part of the measured execution (lazily-written stash
    // data would otherwise be charged writebacks the paper's lazy
    // policy precisely avoids).
    r.stats = statsSnapshot();
    r.stats.sub(baseline);
    r.energy = energyModel.compute(r.stats);
    r.gpuCycles = r.stats.gpuCycles;

    // Flush every private memory so the functional image is complete,
    // then validate.
    for (auto &g : gpus) {
        g.l1->flushAll();
        if (g.stash)
            g.stash->flushAll();
    }
    for (auto &c : cpus)
        c.l1->flushAll();
    drain("final flush");
    for (auto &b : llcBanks)
        b->flushDirtyToMemory();
    if (_checker)
        _checker->checkFinalMemory(mem);

    if (wl.validate) {
        if (!wl.validate(fm, r.errors))
            r.validated = false;
    }
    if (!r.errors.empty())
        r.validated = false;
    r.perf = perf.summary();
    return r;
}

SystemStats
System::statsSnapshot() const
{
    SystemStats s;
    for (const auto &g : gpus) {
        s.gpu.add(g.cu->stats());
        s.gpuL1.add(g.l1->stats());
        if (g.spad)
            s.scratch.add(g.spad->stats());
        if (g.stash)
            s.stash.add(g.stash->stats());
        if (g.dma)
            s.dma.add(g.dma->stats());
    }
    for (const auto &c : cpus) {
        s.cpu.add(c.core->stats());
        s.cpuL1.add(c.l1->stats());
    }
    for (const auto &b : llcBanks)
        s.llc.add(b->stats());
    s.noc.add(mesh.stats());
    s.gpuCycles = eq.curTick() / gpuClockPeriod;
    s.numGpuCus = gpus.size();
    return s;
}

Stash *
System::stashOf(unsigned cu)
{
    return cu < gpus.size() ? gpus[cu].stash.get() : nullptr;
}

L1Cache *
System::gpuL1Of(unsigned cu)
{
    return cu < gpus.size() ? gpus[cu].l1.get() : nullptr;
}

L1Cache *
System::cpuL1Of(unsigned cpu)
{
    return cpu < cpus.size() ? cpus[cpu].l1.get() : nullptr;
}

LlcBank *
System::llcBankOf(PhysAddr line_pa)
{
    return llcBanks[fabric.nodeOfLlc(line_pa)].get();
}

void
System::dumpDiagnostics(std::ostream &os) const
{
    os << "--- system state (tick " << eq.curTick() << ") ---\n";
    os << "  event queue: " << eq.size() << " pending event(s)";
    if (eq.size() > 0)
        os << ", next at tick " << eq.nextTick();
    os << "\n";
    fabric.dumpState(os);
    os << "  router channel reservations (busy-until tick):\n";
    static const char *dirName[] = {"N", "S", "E", "W", "L"};
    for (NodeId n = 0; n < cfg.numNodes(); ++n) {
        const Router &r = mesh.router(n);
        bool any = false;
        for (unsigned d = 0; d < unsigned(Direction::NumDirections);
             ++d) {
            any = any || r.busyUntil(Direction(d)) > 0;
        }
        if (!any)
            continue;
        os << "    node " << unsigned(n) << ":";
        for (unsigned d = 0; d < unsigned(Direction::NumDirections);
             ++d) {
            if (r.busyUntil(Direction(d)) > 0) {
                os << " " << dirName[d] << "="
                   << r.busyUntil(Direction(d));
            }
        }
        os << "\n";
    }
    for (const auto &g : gpus) {
        if (g.stash)
            g.stash->dumpState(os);
    }
}

} // namespace stashsim
