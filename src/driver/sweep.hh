/**
 * @file
 * SweepDriver: runs a grid of RunSpecs across a worker pool.
 *
 * Every simulated System is self-contained and deterministic, so a
 * workload x MemOrg x configuration sweep parallelizes embarrassingly:
 * workers pull the next spec off a shared index and store the result
 * back by position.  The returned records are therefore in spec
 * order and bit-identical to a serial run — the determinism test in
 * tests/driver enforces this — while wall-clock scales with the
 * core count.
 */

#ifndef STASHSIM_DRIVER_SWEEP_HH
#define STASHSIM_DRIVER_SWEEP_HH

#include <iosfwd>
#include <vector>

#include "driver/run.hh"

namespace stashsim
{

/** SweepDriver knobs. */
struct SweepOptions
{
    /** Worker threads; 0 = one per hardware thread, 1 = serial. */
    unsigned threads = 0;

    /**
     * Intra-run shard threads each run will use (RunSpec::shards /
     * SystemConfig::shards).  Only consulted when @ref threads is 0:
     * auto-sizing divides the hardware threads by this so a sweep of
     * sharded runs does not oversubscribe the host (N sweeps x M
     * shard workers).  0 means the runs auto-size too; the sweep then
     * stays serial and lets each run own the machine.
     */
    unsigned shardsPerRun = 1;

    /** Progress stream ("[k/n] label ... ok"); nullptr = silent. */
    std::ostream *progress = nullptr;

    /**
     * Checkpoint/resume state directory.  When nonempty, every
     * completed run caches its RunResult to RESULT_<label>.snap
     * there, and @ref checkpointEveryTicks makes the runs drop
     * CKPT_<label>@<tick>.snap snapshots as they go (src/snapshot).
     */
    std::string stateDir;

    /** Per-run checkpoint cadence in ticks (0 = none). */
    Tick checkpointEveryTicks = 0;

    /**
     * Resume an interrupted sweep from @ref stateDir: specs with a
     * valid RESULT_* artifact are not rerun (the cached result is
     * returned), and the rest restart from their latest valid CKPT_*
     * snapshot.  A truncated or corrupt snapshot is skipped with a
     * warning on @ref progress, falling back to the previous one and
     * ultimately to tick 0 — resume never fails a sweep, it only
     * saves work.
     */
    bool resume = false;
};

/**
 * The parallel sweep runner; see file comment.
 */
class SweepDriver
{
  public:
    explicit SweepDriver(SweepOptions opts = {});

    /** Worker threads the driver will actually use for @p n specs. */
    unsigned threadsFor(std::size_t n) const;

    /**
     * Runs every spec and returns the records in spec order.
     * Exceptions inside a run (fatal() throws) are captured: the
     * record's result is marked unvalidated with the message in
     * errors, and the remaining specs still run.
     */
    std::vector<RunRecord> run(std::vector<RunSpec> specs) const;

  private:
    SweepOptions opts;
};

} // namespace stashsim

#endif // STASHSIM_DRIVER_SWEEP_HH
