/**
 * @file
 * SweepDriver: runs a grid of RunSpecs across a worker pool.
 *
 * Every simulated System is self-contained and deterministic, so a
 * workload x MemOrg x configuration sweep parallelizes embarrassingly:
 * workers pull the next spec off a shared index and store the result
 * back by position.  The returned records are therefore in spec
 * order and bit-identical to a serial run — the determinism test in
 * tests/driver enforces this — while wall-clock scales with the
 * core count.
 *
 * With a state directory the driver additionally becomes one worker
 * of a crash-safe farm (src/driver/farm.hh): every spec is claimed
 * through an atomic lease file before it runs, so N independent
 * processes (or hosts on a shared filesystem) pointed at the same
 * state dir drain one sweep cooperatively, stealing work from workers
 * that die and serving each other's cached results.  A single-process
 * sweep is simply a farm of one.
 */

#ifndef STASHSIM_DRIVER_SWEEP_HH
#define STASHSIM_DRIVER_SWEEP_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "driver/run.hh"

namespace stashsim
{

/**
 * Structured recovery counters for one sweep.  Everything the resume
 * and farm machinery used to only whisper onto the progress stream:
 * the sweep summary prints them, and the stashbench CLI folds them
 * into BENCH_simperf.json (deliberately NOT into BENCH_<name>.json,
 * which must stay byte-identical between fresh, resumed, and farmed
 * sweeps).
 */
struct SweepCounters
{
    /** Runs served from a valid RESULT_* cache without simulating. */
    std::uint64_t cachedRuns = 0;
    /** Runs restarted from a mid-run CKPT_* snapshot. */
    std::uint64_t resumedRuns = 0;
    /** RESULT_* and CKPT_* artifacts failing structural validation. */
    std::uint64_t corruptSnapshots = 0;
    /** Cached artifacts whose config hash did not match the spec —
     *  a stale state dir from an edited sweep grid; rerun instead. */
    std::uint64_t staleResults = 0;
    /** Artifacts moved to QUARANTINE/ instead of being overwritten. */
    std::uint64_t quarantinedArtifacts = 0;
    /** Stale leases of dead workers taken over by this sweep. */
    std::uint64_t reclaimedLeases = 0;
    /** Claims at attempt > 1 (a previous attempt failed or died). */
    std::uint64_t retriedRuns = 0;
    /** Specs that exhausted their attempt budget (FAILED_* marker). */
    std::uint64_t failedSpecs = 0;
    /** The sweep stopped early on the stop flag (SIGINT/SIGTERM). */
    bool interrupted = false;

    /** Folds @p o into this (booleans OR, counters add). */
    void add(const SweepCounters &o);
    /** True when any counter is nonzero (worth printing/reporting). */
    bool any() const;
};

/** SweepDriver knobs. */
struct SweepOptions
{
    /** Worker threads; 0 = one per hardware thread, 1 = serial. */
    unsigned threads = 0;

    /**
     * Intra-run shard threads each run will use (RunSpec::shards /
     * SystemConfig::shards).  Only consulted when @ref threads is 0:
     * auto-sizing divides the hardware threads by this so a sweep of
     * sharded runs does not oversubscribe the host (N sweeps x M
     * shard workers).  0 means the runs auto-size too; the sweep then
     * stays serial and lets each run own the machine.
     */
    unsigned shardsPerRun = 1;

    /** Progress stream ("[k/n] label ... ok"); nullptr = silent. */
    std::ostream *progress = nullptr;

    /**
     * Checkpoint/resume state directory.  When nonempty, every
     * completed run caches its RunResult to RESULT_<label>.snap
     * there, @ref checkpointEveryTicks makes the runs drop
     * CKPT_<label>@<tick>.snap snapshots as they go (src/snapshot),
     * and every spec is claimed through the farm lease protocol
     * (src/driver/farm.hh) before running — so any number of
     * processes pointed at the same directory drain the sweep
     * together.
     */
    std::string stateDir;

    /** Per-run checkpoint cadence in ticks (0 = none). */
    Tick checkpointEveryTicks = 0;

    /**
     * Resume an interrupted sweep from @ref stateDir: specs with a
     * valid RESULT_* artifact are not rerun (the cached result is
     * returned), and the rest restart from their latest valid CKPT_*
     * snapshot.  A truncated or corrupt snapshot is quarantined with
     * a warning on @ref progress, falling back to the previous one
     * and ultimately to tick 0 — resume never fails a sweep, it only
     * saves work.  Multi-process farming requires resume (workers
     * serve each other's results through the cache); without it the
     * sweep is a fresh campaign that ignores pre-existing artifacts.
     */
    bool resume = false;

    /**
     * Farm worker identity for lease files; empty = "w<pid>".  Give
     * every farm process a distinct id (the driver appends ".<t>" per
     * worker thread on top).
     */
    std::string workerId;

    /** Lease heartbeat TTL in ms; a staler lease is presumed dead
     *  and stolen.  Keep well above the longest single phase. */
    std::uint64_t leaseTtlMs = 30'000;

    /** Attempts a spec gets before it is quarantined as FAILED_*. */
    unsigned maxAttempts = 3;

    /**
     * Cooperative stop flag (SIGINT/SIGTERM handlers set it).  When
     * it goes true, in-flight runs drop a final checkpoint at their
     * next phase boundary, leases are released, and run() returns
     * early with SweepCounters::interrupted set; unfinished records
     * are marked invalid with an "interrupted" error.
     */
    const std::atomic<bool> *stop = nullptr;
};

/**
 * The parallel sweep runner; see file comment.
 */
class SweepDriver
{
  public:
    explicit SweepDriver(SweepOptions opts = {});

    /** Worker threads the driver will actually use for @p n specs. */
    unsigned threadsFor(std::size_t n) const;

    /**
     * Runs every spec and returns the records in spec order.
     * Exceptions inside a run (fatal() throws) are captured: the
     * record's result is marked unvalidated with the message in
     * errors, and the remaining specs still run (stateful sweeps
     * retry up to SweepOptions::maxAttempts first).  When @p counters
     * is non-null the sweep's recovery counters are accumulated into
     * it.
     */
    std::vector<RunRecord> run(std::vector<RunSpec> specs,
                               SweepCounters *counters = nullptr) const;

  private:
    SweepOptions opts;
};

} // namespace stashsim

#endif // STASHSIM_DRIVER_SWEEP_HH
