/**
 * @file
 * System: builds the Table 2 machine and runs workloads on it.
 *
 * Topology (Figure 4): a meshWidth x meshHeight mesh with an L2 bank
 * at every node; GPU CUs occupy the first `numGpuCus` nodes and CPU
 * cores the next `numCpuCores`.  Each GPU CU gets an L1 plus — per
 * the memory configuration — a scratchpad, a stash, and/or a DMA
 * engine.  Each CPU core gets an L1.  All L1s and stashes are kept
 * coherent with the stash-extended DeNovo protocol through the shared
 * LLC.
 *
 * Execution engine: all components schedule on a ShardEngine.  With
 * cfg.shards == 1 (the default) the engine is a single event queue
 * and runs exactly the classic serial kernel.  With cfg.shards > 1
 * every mesh tile gets its own queue and the tiles advance in
 * lock-step quanta bounded by the NoC's minimum cross-tile latency;
 * cross-tile messages flow through the Fabric's canonical mailboxes
 * so both modes produce byte-identical artifacts (DESIGN.md §10).
 *
 * A run executes the workload's phases in order, draining all memory
 * activity between phases (the data-race-free synchronization points
 * the protocol relies on), then snapshots statistics, flushes every
 * private memory, and validates the final memory image.
 */

#ifndef STASHSIM_DRIVER_SYSTEM_HH
#define STASHSIM_DRIVER_SYSTEM_HH

#include <atomic>
#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "config/system_config.hh"
#include "core/stash.hh"
#include "cpu/cpu_core.hh"
#include "energy/energy_model.hh"
#include "gpu/compute_unit.hh"
#include "mem/backend/mem_backend.hh"
#include "mem/cache.hh"
#include "mem/dma_engine.hh"
#include "mem/fabric.hh"
#include "mem/functional_mem.hh"
#include "mem/llc.hh"
#include "mem/main_memory.hh"
#include "mem/page_table.hh"
#include "mem/scratchpad.hh"
#include "mem/tlb.hh"
#include "noc/mesh.hh"
#include "report/stats_registry.hh"
#include "sim/event_queue.hh"
#include "sim/shard_engine.hh"
#include "sim/simperf.hh"
#include "snapshot/snapshot.hh"
#include "workloads/workload.hh"

namespace stashsim
{

class FaultInjector;
class ProtocolChecker;
class Watchdog;

/**
 * Process-wide count of warmup-boundary snapshots written via
 * RunControl::boundarySnapshotPath — the "snapshot-build counter" the
 * sampled-simulation tests use to prove one warmup served N deltas.
 */
std::uint64_t boundarySnapshotWrites();

/**
 * Checkpoint/restore policy for one run (src/snapshot).  Checkpoints
 * are taken only at phase-end drain points, where every event queue
 * is empty and all in-flight memory activity has resolved — the only
 * moments the component state is serializable without also capturing
 * live event callbacks.
 */
/** RunControl::measurePhases value meaning "run to completion". */
constexpr std::uint32_t runControlAllPhases = 0xffffffffu;

struct RunControl
{
    /**
     * Write a checkpoint at the first phase boundary at least this
     * many ticks after the previous one (0 disables checkpointing).
     * The final phase never checkpoints: the run is about to finish.
     */
    Tick checkpointEveryTicks = 0;
    /** Directory for CKPT_<label>@<tick>.snap files. */
    std::string checkpointDir;
    /** File-name label identifying the run (defaults to workload). */
    std::string checkpointLabel;
    /** Path of a snapshot to resume from (empty: run from tick 0). */
    std::string restoreFrom;

    /**
     * Measured phases to run past the warmup boundary before stopping
     * (the sampled-simulation interval length, DESIGN.md §17).  The
     * default runs every phase; 0 stops exactly at the boundary (a
     * warm-only run).  A run stopped early reports
     * RunResult::truncated and skips the final flush + validation
     * (the workload is deliberately incomplete).
     */
    std::uint32_t measurePhases = runControlAllPhases;

    /**
     * When set, the run writes a full snapshot to exactly this path
     * at the warmup boundary — the measurement boundary a
     * SampleDriver fans measured intervals out from — and bumps the
     * process-wide boundarySnapshotWrites() counter.
     */
    std::string boundarySnapshotPath;

    /**
     * Declared measured-region delta groups (DESIGN.md §17): the
     * snapshot at @ref restoreFrom may then legally differ from this
     * system's configuration in exactly these groups.  Undeclared
     * deltas stay fatal with the structured diagnostic.
     */
    DeltaMask restoreDeltas = 0;

    /**
     * Cooperative interrupt flag (signal handlers set it).  Checked
     * at phase boundaries only — the same drain points checkpoints
     * use.  When observed true the run writes a final checkpoint
     * (when @ref checkpointDir is set) and throws RunInterrupted.
     */
    const std::atomic<bool> *interrupt = nullptr;
};

/**
 * Thrown out of System::run when RunControl::interrupt goes true: the
 * run stopped cleanly at a phase boundary after dropping a final
 * checkpoint, so it is resumable — callers must treat this as
 * "interrupted", not "failed".
 */
class RunInterrupted : public std::runtime_error
{
  public:
    explicit RunInterrupted(const std::string &workload)
        : std::runtime_error("run interrupted: " + workload) {}
};

/** Everything a bench or test needs from one simulated run. */
struct RunResult
{
    SystemStats stats;
    EnergyBreakdown energy;
    Cycles gpuCycles = 0;
    bool validated = true;
    std::vector<std::string> errors;
    /**
     * Host-side throughput of the run (SimPerf).  Event/tick counts
     * are deterministic simulation state; the host timings are not
     * and stay out of the deterministic artifacts.
     */
    SimPerfSummary perf;
    /**
     * True when RunControl::measurePhases stopped the run before the
     * workload's final phase; such a run skipped final validation.
     */
    bool truncated = false;
    /** Shard worker threads the run finished with (1 = serial). */
    unsigned shardsUsed = 1;
    /** True when `--shards 0` picked shardsUsed via the cost model. */
    bool shardsAutoTuned = false;
    /** Auto-tune's host-independent input (0 unless auto-tuned). */
    double autoEventsPerQuantum = 0;
};

/**
 * The simulated heterogeneous system.
 */
class System
{
  public:
    explicit System(const SystemConfig &cfg,
                    const EnergyParams &energy = EnergyParams{});
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Runs @p wl and reports the results.  @p ctl may ask for
     * periodic checkpoints and/or for the run to resume from a
     * snapshot (taken from the same configuration and workload; the
     * restored run then produces byte-identical artifacts to an
     * uninterrupted one).
     */
    RunResult run(Workload wl, const RunControl &ctl = {});

    /**
     * Serializes every stateful component into @p w, one section per
     * component.  Only valid at a drain point (between phases): all
     * event queues empty, no in-flight coherence activity.
     */
    void saveSnapshot(SnapshotWriter &w) const;

    /**
     * Restores every component section into this freshly-constructed
     * System.  fatal()s when the snapshot's configuration hash does
     * not match this system's configuration — unless the mismatch is
     * confined to @p declared delta groups the snapshot's own
     * "cfgid" section marks restorable, in which case the affected
     * components take their delta-tolerant paths (GPU side cold, mem
     * backend carried-stats, LLC geometry remap; DESIGN.md §17).
     */
    void restoreSnapshot(SnapshotReader &r, DeltaMask declared = 0);

    /** Aggregated statistics so far (tests may call mid-run). */
    SystemStats statsSnapshot() const;

    /**
     * Per-component live counter registry: every component instance
     * registered once, under "cu<i>.*", "cpu<i>.*", "llc<i>.*", and
     * "noc.*" prefixes.  Sampling it mid-run reads current values.
     */
    const report::StatsRegistry &statsRegistry() const
    {
        return registry;
    }

    /** True when running sharded (one queue per tile, >1 worker). */
    bool sharded() const { return !engine->serial(); }

    /** @{ Component access for tests. */
    /** The phase-hub queue (tile 0; THE queue in serial mode). */
    EventQueue &eventQueue() { return engine->queue(0); }
    ShardEngine &shardEngine() { return *engine; }
    const SimPerf &simPerf() const { return perf; }
    FunctionalMem functionalMem() { return {mem, pageTable}; }
    const SystemConfig &config() const { return cfg; }
    Stash *stashOf(unsigned cu);
    L1Cache *gpuL1Of(unsigned cu);
    L1Cache *cpuL1Of(unsigned cpu);
    LlcBank *llcBankOf(PhysAddr line_pa);
    MemBackend *memBackendOf(NodeId node);
    PageTable &pageTableRef() { return pageTable; }
    Fabric &fabricRef() { return fabric; }
    ProtocolChecker *checker() { return _checker.get(); }
    Watchdog *watchdog() { return _watchdog.get(); }
    FaultInjector *faultInjector() { return _injector.get(); }
    /** @} */

    /**
     * Structured system-state dump: event queue(s), fabric in-flight
     * counts, router channel reservations, stash maps.  Runs on any
     * panic/fatal while the watchdog is enabled.
     */
    void dumpDiagnostics(std::ostream &os) const;

  private:
    struct GpuNode
    {
        std::unique_ptr<Tlb> tlb;
        std::unique_ptr<L1Cache> l1;
        std::unique_ptr<Scratchpad> spad;
        std::unique_ptr<Stash> stash;
        std::unique_ptr<DmaEngine> dma;
        std::unique_ptr<ComputeUnit> cu;
    };

    struct CpuNode
    {
        std::unique_ptr<Tlb> tlb;
        std::unique_ptr<L1Cache> l1;
        std::unique_ptr<CpuCore> core;
    };

    /** The queue @p node's components schedule on. */
    EventQueue &queueFor(NodeId node)
    {
        return engine->serial() ? engine->queue(0)
                                : engine->queue(node);
    }

    void runGpuPhase(Phase &phase);
    void runCpuPhase(Phase &phase, std::vector<std::string> *errors);
    void drain(const char *what = "drain");

    /**
     * `--shards 0`: after the calibration drain (the first drain that
     * executed quanta single-worker), feeds the engine's counters to
     * the cost model and retunes the worker pool (DESIGN.md §16).
     */
    void autoTuneShards();

    /** Writes one CKPT_<label>@<tick>.snap at the current drain point. */
    void writeCheckpoint(const RunControl &ctl,
                         const Workload &wl,
                         std::uint32_t next_phase,
                         bool baseline_captured,
                         const SystemStats &baseline) const;

    /** Full snapshot + run/workload sections to an explicit path. */
    void writeSnapshotFile(const std::string &path,
                           const Workload &wl,
                           std::uint32_t next_phase,
                           bool baseline_captured,
                           const SystemStats &baseline) const;

    /** "cfgid" supported flag: group @p g droppable right now? */
    bool deltaSupported(DeltaGroup g) const;

    /**
     * Full-hash mismatch path of restoreSnapshot(): validates the
     * mismatch against @p declared and the snapshot's cfgid section,
     * fatal()ing with the structured diagnostic on any undeclared or
     * unsupported delta; on success sets which delta-tolerant restore
     * paths apply.
     */
    void validateConfigDeltas(SnapshotReader &r, DeltaMask declared,
                              bool *gpu_cold, bool *back_cold,
                              bool *llc_remap) const;

    SimPerf::Sources perfSources();
    void registerComponentStats();

    SystemConfig cfg;
    EnergyModel energyModel;
    report::StatsRegistry registry;

    /** @{ `--shards 0` auto-tune state (see autoTuneShards()). */
    bool _autoShards = false; //!< cfg asked for auto and engine is sharded
    bool _autoTuned = false;  //!< decision already taken this run
    double _autoEventsPerQuantum = 0;
    /** @} */

    /** Declared before every component: they hold queue references. */
    std::unique_ptr<ShardEngine> engine;
    SimPerf perf;
    Mesh mesh;
    Fabric fabric;
    MainMemory mem;
    PageTable pageTable;

    std::unique_ptr<FaultInjector> _injector;
    std::unique_ptr<ProtocolChecker> _checker;
    std::unique_ptr<Watchdog> _watchdog;

    /** One backend per LLC bank, on that bank's queue; declared
     *  before the banks, which hold references into it. */
    std::vector<std::unique_ptr<MemBackend>> memBackends;
    std::vector<std::unique_ptr<LlcBank>> llcBanks;
    std::vector<GpuNode> gpus;
    std::vector<CpuNode> cpus;
};

} // namespace stashsim

#endif // STASHSIM_DRIVER_SYSTEM_HH
