#include "driver/bench_args.hh"

#include <cstdlib>
#include <cstring>

namespace stashsim
{

namespace
{

bool
needsValue(int i, int argc, const char *flag, std::string &err)
{
    if (i + 1 < argc)
        return true;
    err = std::string(flag) + " needs a value";
    return false;
}

/**
 * Strict whole-token base-10 unsigned parse for @p flag's value.
 *
 * strtoul-style parsing silently turned "--shards abc" into 0 (the
 * auto-tune mode!) and "--jobs 3x" into 3; here every byte must be a
 * decimal digit and the value must fit @p max, or the parse fails
 * with a diagnostic naming the flag and the offending token.
 */
bool
parseNumber(const char *flag, const char *text, std::uint64_t max,
            std::uint64_t &out, std::string &err)
{
    if (*text == '\0') {
        err = std::string(flag) + ": empty value (expected a base-10 "
              "unsigned integer)";
        return false;
    }
    std::uint64_t v = 0;
    for (const char *p = text; *p; ++p) {
        if (*p < '0' || *p > '9') {
            err = std::string(flag) + ": invalid number '" + text +
                  "' (expected a base-10 unsigned integer)";
            return false;
        }
        const std::uint64_t d = std::uint64_t(*p - '0');
        if (v > (max - d) / 10) {
            err = std::string(flag) + ": value '" + text +
                  "' is out of range (max " + std::to_string(max) +
                  ")";
            return false;
        }
        v = v * 10 + d;
    }
    out = v;
    return true;
}

/** parseNumber() into an unsigned field. */
bool
parseUnsigned(const char *flag, const char *text, unsigned &out,
              std::string &err)
{
    std::uint64_t v = 0;
    if (!parseNumber(flag, text, 0xffff'ffffull, v, err))
        return false;
    out = unsigned(v);
    return true;
}

} // namespace

bool
BenchArgs::parse(int argc, char **argv, BenchArgs &out,
                 std::string &err)
{
    using workloads::Scale;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--quick") == 0) {
            out.scale = Scale::Quick;
        } else if (std::strcmp(a, "--smoke") == 0) {
            out.scale = Scale::Smoke;
        } else if (std::strcmp(a, "--scale") == 0) {
            if (!needsValue(i, argc, a, err))
                return false;
            const char *v = argv[++i];
            if (std::strcmp(v, "full") == 0)
                out.scale = Scale::Full;
            else if (std::strcmp(v, "quick") == 0)
                out.scale = Scale::Quick;
            else if (std::strcmp(v, "smoke") == 0)
                out.scale = Scale::Smoke;
            else {
                err = std::string("unknown scale: ") + v;
                return false;
            }
        } else if (std::strcmp(a, "--jobs") == 0 ||
                   std::strcmp(a, "-j") == 0) {
            if (!needsValue(i, argc, a, err))
                return false;
            if (!parseUnsigned(a, argv[++i], out.jobs, err))
                return false;
        } else if (std::strcmp(a, "--shards") == 0) {
            if (!needsValue(i, argc, a, err))
                return false;
            if (!parseUnsigned(a, argv[++i], out.shards, err))
                return false;
        } else if (std::strcmp(a, "--backend") == 0) {
            if (!needsValue(i, argc, a, err))
                return false;
            out.backend = argv[++i];
        } else if (std::strcmp(a, "--out") == 0) {
            if (!needsValue(i, argc, a, err))
                return false;
            out.outDir = argv[++i];
        } else if (std::strcmp(a, "--trace") == 0) {
            if (!needsValue(i, argc, a, err))
                return false;
            out.traceDir = argv[++i];
        } else if (std::strcmp(a, "--render-md") == 0) {
            if (!needsValue(i, argc, a, err))
                return false;
            out.renderMd = argv[++i];
        } else if (std::strcmp(a, "--components") == 0) {
            out.components = true;
        } else if (std::strcmp(a, "--checkpoint-every") == 0) {
            if (!needsValue(i, argc, a, err))
                return false;
            if (!parseNumber(a, argv[++i],
                             0xffff'ffff'ffff'ffffull,
                             out.checkpointEvery, err))
                return false;
        } else if (std::strcmp(a, "--restore") == 0) {
            if (!needsValue(i, argc, a, err))
                return false;
            out.restoreDir = argv[++i];
        } else if (std::strcmp(a, "--farm") == 0) {
            if (!needsValue(i, argc, a, err))
                return false;
            out.farmDir = argv[++i];
        } else if (std::strcmp(a, "--worker-id") == 0) {
            if (!needsValue(i, argc, a, err))
                return false;
            out.workerId = argv[++i];
        } else if (std::strcmp(a, "--lease-ttl") == 0) {
            if (!needsValue(i, argc, a, err))
                return false;
            if (!parseNumber(a, argv[++i],
                             0xffff'ffff'ffff'ffffull,
                             out.leaseTtlSec, err))
                return false;
            if (out.leaseTtlSec == 0) {
                err = "--lease-ttl must be at least 1 second";
                return false;
            }
        } else if (std::strcmp(a, "--max-attempts") == 0) {
            if (!needsValue(i, argc, a, err))
                return false;
            if (!parseUnsigned(a, argv[++i], out.maxAttempts, err))
                return false;
            if (out.maxAttempts == 0) {
                err = "--max-attempts must be at least 1";
                return false;
            }
        } else if (std::strcmp(a, "--trace-replay") == 0) {
            if (!needsValue(i, argc, a, err))
                return false;
            out.traceReplay = argv[++i];
        } else if (std::strcmp(a, "--trace-record") == 0) {
            if (!needsValue(i, argc, a, err))
                return false;
            out.traceRecord = argv[++i];
        } else if (std::strcmp(a, "--trace-from") == 0) {
            if (!needsValue(i, argc, a, err))
                return false;
            out.traceFrom = argv[++i];
        } else if (std::strcmp(a, "--sample") == 0) {
            out.sample = true;
        } else if (std::strcmp(a, "--sample-workload") == 0) {
            if (!needsValue(i, argc, a, err))
                return false;
            out.sampleWorkload = argv[++i];
        } else if (std::strcmp(a, "--sample-org") == 0) {
            if (!needsValue(i, argc, a, err))
                return false;
            out.sampleOrg = argv[++i];
        } else if (std::strcmp(a, "--sample-interval") == 0) {
            if (!needsValue(i, argc, a, err))
                return false;
            if (!parseUnsigned(a, argv[++i], out.sampleInterval,
                               err))
                return false;
        } else if (std::strcmp(a, "--sample-deltas") == 0) {
            if (!needsValue(i, argc, a, err))
                return false;
            out.sampleDeltas = argv[++i];
        } else if (std::strcmp(a, "--sample-unsampled") == 0) {
            out.sampleUnsampled = true;
        } else if (std::strcmp(a, "--json") == 0) {
            out.json = true;
        } else if (std::strcmp(a, "--list") == 0) {
            out.list = true;
        } else if (std::strcmp(a, "--list-workloads") == 0) {
            out.listWorkloads = true;
        } else if (std::strcmp(a, "--help") == 0 ||
                   std::strcmp(a, "-h") == 0) {
            out.help = true;
        } else if (a[0] == '-') {
            err = std::string("unknown option: ") + a;
            return false;
        } else {
            out.benches.push_back(a);
        }
    }
    return true;
}

std::string
BenchArgs::usage(const char *prog)
{
    return std::string("usage: ") + prog +
           " [options] [bench ...]\n"
           "\n"
           "options:\n"
           "  --quick             scaled-down inputs (~4x smaller)\n"
           "  --smoke             smoke-test inputs (~16x smaller)\n"
           "  --scale S           full | quick | smoke\n"
           "  --jobs N, -j N      sweep worker threads "
           "(default: hardware)\n"
           "  --shards N          intra-run shard threads per run "
           "(default 1 = serial,\n"
           "                      0 = auto-tuned per run by the "
           "quantum-vs-barrier cost\n"
           "                      model, DESIGN.md §16); "
           "artifacts are byte-identical\n"
           "                      either way\n"
           "  --backend NAME      memory backend for every run: "
           "fixed (default),\n"
           "                      sttmram, or scmcache (see --list "
           "--json for the\n"
           "                      inventory); the memback bench "
           "ignores this and\n"
           "                      sweeps all three\n"
           "  --out DIR           artifact directory for "
           "BENCH_<name>.json (default: .)\n"
           "  --trace DIR         write a Chrome trace per run "
           "into DIR\n"
           "  --components        include per-component counters in "
           "the JSON\n"
           "  --checkpoint-every N\n"
           "                      checkpoint each run every N "
           "simulated ticks into\n"
           "                      <out>/checkpoints (or --restore's "
           "directory)\n"
           "  --restore DIR       resume from the checkpoint/result "
           "state in DIR:\n"
           "                      completed runs are not re-simulated "
           "and interrupted\n"
           "                      ones restart from their latest "
           "valid snapshot\n"
           "  --farm DIR          join the worker farm over DIR: "
           "runs are claimed\n"
           "                      through lease files, so any number "
           "of processes\n"
           "                      pointed at DIR drain the sweep "
           "together (implies\n"
           "                      --restore semantics); exit code 75 "
           "means\n"
           "                      'interrupted, resumable'\n"
           "  --worker-id S       farm worker identity for lease "
           "files\n"
           "                      (default: w<pid>)\n"
           "  --lease-ttl SECONDS lease heartbeat TTL; a staler "
           "lease is presumed\n"
           "                      dead and stolen (default 30)\n"
           "  --max-attempts N    attempts per run before FAILED_* "
           "quarantine\n"
           "                      (default 3)\n"
           "  --trace-replay FILE replay the stashtrace-v1 access "
           "trace in FILE as a\n"
           "                      workload across cache / scratchGD / "
           "stash, writing\n"
           "                      BENCH_replay.json into --out; with "
           "--trace-record,\n"
           "                      just re-emit the normalized trace "
           "and exit\n"
           "  --trace-record FILE write a stashtrace-v1 trace to "
           "FILE\n"
           "  --sample            sampled simulation: warm the base "
           "spec once, then\n"
           "                      fan measured intervals out from "
           "that one checkpoint\n"
           "                      across --sample-deltas, writing "
           "BENCH_sample.json\n"
           "                      (farm state in <out>/samplestate "
           "unless --farm)\n"
           "  --sample-workload W base workload to warm (default "
           "Reuse)\n"
           "  --sample-org NAME   base memory organization (default "
           "Stash)\n"
           "  --sample-interval N measured phases per interval "
           "(default 0 = to\n"
           "                      completion)\n"
           "  --sample-deltas L   comma-separated deltas: identity, "
           "local:<kb>,\n"
           "                      org:<Name>, backend:<name>, "
           "llcassoc:<n>,\n"
           "                      llckb:<kb>; an 'undeclared:' "
           "prefix applies the\n"
           "                      change without declaring it — the "
           "restore must\n"
           "                      reject it (default identity,"
           "local:32,org:Cache,\n"
           "                      org:ScratchGD)\n"
           "  --sample-unsampled  run the uninterrupted twin of the "
           "same campaign\n"
           "                      (each delta from tick 0; the "
           "parity reference\n"
           "                      for gpu-group deltas)\n"
           "  --trace-from NAME   record workload NAME (built at "
           "--scale, cache org)\n"
           "                      into --trace-record FILE instead "
           "of simulating\n"
           "  --json              with --list, emit the bench "
           "inventory as JSON\n"
           "  --list              list benches and exit\n"
           "  --list-workloads    list registered workloads and "
           "exit\n"
           "  --render-md FILE    render markdown from BENCH_*.json "
           "in --out ('-' = stdout);\n"
           "                      with bench names, refreshes those "
           "artifacts first\n"
           "  --help, -h          this text\n"
           "\n"
           "With no bench names, every bench runs.\n";
}

} // namespace stashsim
