/**
 * @file
 * SampleDriver: warm once, fan measured intervals out from one
 * checkpoint across declared config deltas (DESIGN.md §17).
 *
 * Classic sampled simulation pays one warmup per configuration.  This
 * driver exploits two repo invariants to pay it exactly once:
 * determinism (the warmup of a workload is byte-identical across any
 * config delta confined to state the warmup never touches) and the
 * snapshot contract's delta groups (snapshot.hh), which say precisely
 * which SystemConfig fields a restore may legally change.
 *
 * The flow: run the base spec with RunControl::measurePhases = 0 and a
 * boundarySnapshotPath, producing WARM_<label>.snap at the declared
 * measurement boundary; then dispatch one truncated run per delta,
 * each restoring from that single checkpoint with its delta group(s)
 * declared via RunSpec::restoreDeltas.  Both stages go through the
 * SweepDriver's lease-based farm, so any number of processes pointed
 * at the same state dir drain the fan-out together and a SIGKILLed
 * worker's interval is reclaimed and rerun to a byte-identical result.
 *
 * An undeclared delta (the `undeclared:` token prefix strips the
 * declaration) is rejected at restore with the structured
 * configuration-hash diagnostic — the rejection path is part of the
 * contract and is exercised by tests and the CI sampling leg.
 */

#ifndef STASHSIM_DRIVER_SAMPLE_HH
#define STASHSIM_DRIVER_SAMPLE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "driver/sweep.hh"
#include "report/json.hh"
#include "snapshot/snapshot.hh"

namespace stashsim
{

/**
 * One measured-interval configuration delta, parsed from a token:
 *
 *   identity        no change (exact-restore control point)
 *   local:<kb>      scratchpad/stash size            [gpu group]
 *   org:<Name>      memory organization (memOrgName) [gpu group]
 *   backend:<name>  backing store (memBackendName)   [membackend]
 *   llcassoc:<n>    LLC associativity                [llc group]
 *   llckb:<kb>      LLC bank size                    [llc group]
 *
 * A token prefixed `undeclared:` applies the same change but declares
 * nothing at restore — the run must fail with the structured
 * undeclared-delta diagnostic (rejection tests and the CI leg).
 */
struct SampleDelta
{
    std::string name; //!< the full token, e.g. "local:32"
    std::string kind; //!< token kind ("identity", "local", ...)
    /** Delta groups the change touches (declared at restore). */
    DeltaMask mask = 0;
    /** False for `undeclared:` tokens: apply the change, declare
     *  nothing, and let the restore reject it. */
    bool declare = true;
    /** Applies the change to a fan-out spec (config/org/backend). */
    std::function<void(RunSpec &)> apply;
};

/**
 * Parses one delta token; false (with a message in @p err) on an
 * unknown kind, unparseable value, or unknown org/backend name.
 */
bool parseSampleDelta(const std::string &token, SampleDelta &out,
                      std::string &err);

/** Parses a comma-separated delta list; empty tokens are an error. */
bool parseSampleDeltas(const std::string &list,
                       std::vector<SampleDelta> &out, std::string &err);

/**
 * One sampled-simulation campaign; runSample() executes it.
 */
struct SampleRequest
{
    /** Base spec the warmup runs under. */
    std::string workload = "Reuse";
    MemOrg org = MemOrg::Stash;
    workloads::Scale scale = workloads::Scale::Full;
    /** Base configuration override (workload default when unset). */
    std::optional<SystemConfig> config;
    /** Custom workload builder (RunSpec::make); when set, @ref
     *  workload is a display name — the synthspace bench samples
     *  re-parameterized generator workloads through this. */
    std::function<Workload(const workloads::WorkloadParams &)> make;
    EnergyParams energy{};

    /** Measured phases per interval past the boundary; 0 = run each
     *  interval to workload completion. */
    std::uint32_t intervalPhases = 0;

    std::vector<SampleDelta> deltas;

    /** Farm state directory (required): WARM_*.snap plus the lease/
     *  RESULT/CKPT state of both stages live here.  The fan-out stage
     *  uses the "measure" (or "measure-unsampled") subdirectory so a
     *  sampled interval's cached result can never be served to its
     *  unsampled twin. */
    std::string stateDir;

    /** Twin mode: identical warm stage (same provenance block), but
     *  every delta runs uninterrupted from tick 0 with the same
     *  measurePhases — the parity reference for sampled runs. */
    bool unsampled = false;

    /** @{ Farm/sweep knobs, passed through to SweepOptions. */
    unsigned threads = 0;
    unsigned shardsPerRun = 1;
    std::string workerId;
    std::uint64_t leaseTtlMs = 30'000;
    unsigned maxAttempts = 3;
    Tick checkpointEveryTicks = 0;
    std::ostream *progress = nullptr;
    const std::atomic<bool> *stop = nullptr;
    /** @} */

    /** Test hook: decorates each fan-out spec (by delta index) before
     *  dispatch — crash tests install a SIGKILL finish hook here. */
    std::function<void(std::size_t, RunSpec &)> decorate;
};

/** Where the measured intervals came from: the warm checkpoint's
 *  manifest plus the hash identity the delta validation runs against. */
struct SampleProvenance
{
    std::string checkpoint; //!< WARM_*.snap file name (not path)
    std::string workload;   //!< snapshot manifest workload
    std::string config;     //!< base memOrgName
    Tick tick = 0;
    std::uint32_t phaseCursor = 0;
    /** Warmup boundary; equals phaseCursor for a boundary snapshot. */
    std::uint32_t warmupPhases = 0;
    std::uint64_t configHash = 0; //!< full base-config hash
    std::uint64_t baseHash = 0;   //!< outside-every-group sub-hash
};

/** runSample()'s result; sampleToJson() renders the artifact. */
struct SampleOutcome
{
    SampleProvenance sampledFrom;
    /** The warm stage's record; fan-out is skipped when it failed. */
    RunRecord warm;
    /** One record per delta, in request order (empty when the warm
     *  stage failed or the campaign was interrupted before fan-out). */
    std::vector<RunRecord> runs;
    SweepCounters counters;
};

/**
 * Runs the campaign: warm once (farm-dispatched, cached and
 * crash-safe like any sweep spec), read the provenance back from the
 * boundary snapshot, then fan the deltas out through the same farm.
 * Throws (fatal()) on an empty state dir or an empty delta list.
 */
SampleOutcome runSample(const SampleRequest &req);

/**
 * Renders the stashsim-sample-v1 document.  Deterministic and fully
 * derived from the outcome, so a sampled campaign and its unsampled
 * twin produce byte-identical files whenever the per-delta results
 * match — which the parity tests require for gpu-group deltas.
 */
report::JsonValue sampleToJson(const SampleRequest &req,
                               const SampleOutcome &out);

} // namespace stashsim

#endif // STASHSIM_DRIVER_SAMPLE_HH
