/**
 * @file
 * RunSpec: one simulated run, fully described by an options struct.
 *
 * Replaces the old positional bench helpers
 * (runMicrobenchmark/runApplication(name, org, quick, cfg, ep)): a
 * RunSpec names a workload from the WorkloadFactory (or supplies a
 * custom maker), picks the memory organization and input scale, and
 * optionally overrides the system configuration and energy
 * parameters.  runSpec() builds the System, runs the workload, and
 * returns the RunResult; it is pure (no globals touched), so
 * independent specs can run on different threads — that is what the
 * SweepDriver does.
 */

#ifndef STASHSIM_DRIVER_RUN_HH
#define STASHSIM_DRIVER_RUN_HH

#include <atomic>
#include <functional>
#include <optional>
#include <string>

#include "config/system_config.hh"
#include "driver/system.hh"
#include "energy/energy_model.hh"
#include "workloads/workload_factory.hh"

namespace stashsim
{

/**
 * Everything that defines one run; see file comment.
 */
struct RunSpec
{
    /** Workload name in the WorkloadFactory (unless @ref make set). */
    std::string workload;

    MemOrg org = MemOrg::Scratch;

    workloads::Scale scale = workloads::Scale::Full;

    /**
     * Intra-run shard worker threads (SystemConfig::shards); unset
     * keeps the configuration's own setting.  Applied on top of
     * @ref config like @ref org, so sweeps can toggle the engine per
     * run (1 = serial, N = sharded, 0 = auto).
     */
    std::optional<unsigned> shards;

    /**
     * Memory backend kind (SystemConfig::memBackend.kind); unset
     * keeps the configuration's own setting.  Applied on top of
     * @ref config like @ref org, so sweeps can ablate the backing
     * store per run.  Knobs beyond the kind come from @ref config.
     */
    std::optional<MemBackendKind> backend;

    /**
     * System configuration override; defaults to the workload kind's
     * Table 2 machine.  @ref org is applied on top either way.
     */
    std::optional<SystemConfig> config;

    EnergyParams energy{};

    /**
     * Custom workload builder, for sweeps over generated workloads
     * the factory does not know (e.g. the sparsity ablation).  When
     * set, @ref workload is only a display name.
     */
    std::function<Workload(const workloads::WorkloadParams &)> make;

    /** Display label override; label() composes one when empty. */
    std::string labelOverride;

    /**
     * Checkpoint cadence in ticks (RunControl::checkpointEveryTicks);
     * 0 disables.  Checkpoints land in @ref checkpointDir as
     * CKPT_<artifact-label>-<scale>@<tick>.snap.
     */
    Tick checkpointEveryTicks = 0;
    /** Directory for checkpoint snapshots. */
    std::string checkpointDir;
    /** Snapshot file to resume from (empty = run from tick 0). */
    std::string restoreFrom;

    /**
     * Measured phases past the warmup boundary to run before stopping
     * (RunControl::measurePhases); the default runs to completion, 0
     * is a warm-only run.  Early-stopped runs report
     * RunResult::truncated.
     */
    std::uint32_t measurePhases = runControlAllPhases;
    /**
     * When set, write a snapshot to exactly this path at the warmup
     * boundary (RunControl::boundarySnapshotPath).
     */
    std::string boundarySnapshotPath;
    /**
     * Declared measured-region delta groups for the restore
     * (RunControl::restoreDeltas, DESIGN.md §17).
     */
    DeltaMask restoreDeltas = 0;

    /**
     * Cooperative interrupt flag (RunControl::interrupt).  When it
     * goes true the run stops at its next phase boundary: a final
     * checkpoint is written (when @ref checkpointDir is set) and
     * RunInterrupted is thrown out of runSpec().
     */
    const std::atomic<bool> *interrupt = nullptr;

    /**
     * Called right after System construction, before the run —
     * attach instrumentation (trace sinks, checkers) here.
     */
    std::function<void(System &)> instrument;

    /**
     * Called after the run completes, while the System still exists —
     * harvest instrumentation here.
     */
    std::function<void(System &, const RunResult &)> finish;

    /** "<workload>/<org>" unless overridden. */
    std::string label() const;
};

/** One finished run: the spec it came from plus its results. */
struct RunRecord
{
    RunSpec spec;
    RunResult result;
};

/** Builds the system for @p spec and runs it to completion. */
RunResult runSpec(const RunSpec &spec);

/**
 * The SystemConfig @p spec resolves to: the explicit config, the
 * workload's default, or the microbenchmark machine — with the org
 * and shard overrides applied.  Exported so the SweepDriver's resume
 * path can hash the exact configuration a spec will run with.
 */
SystemConfig resolveRunConfig(const RunSpec &spec);

/**
 * File-name-safe form of a run label: '/', ' ', and '@' become '_'
 * ('@' is the checkpoint file name's tick separator).
 */
std::string artifactLabel(const std::string &label);

} // namespace stashsim

#endif // STASHSIM_DRIVER_RUN_HH
