/**
 * @file
 * Farm protocol: crash-safe work stealing over a sweep state dir
 * (DESIGN.md §12).
 *
 * N independent workers — threads in one process, processes on one
 * host, or hosts on a shared filesystem — drain one sweep by claiming
 * specs through atomic lease files next to the RESULT_* and CKPT_*
 * artifacts the snapshot subsystem already maintains:
 *
 *   LEASE_<label>.json   the spec is claimed (or was released for
 *                        retry after a failed attempt)
 *   FAILED_<label>.json  the spec exhausted its attempt budget; the
 *                        captured diagnostics ride in the file
 *   QUARANTINE/          corrupt or stale RESULT_* or CKPT_* files,
 *                        moved aside instead of silently overwritten
 *
 * A claim is atomic: the lease body is written to a hidden temp file
 * and published with a hard link, which fails if the lease already
 * exists — exactly one claimant wins, and a reader never observes a
 * half-written lease.  Owners re-publish their lease (temp + rename)
 * on a heartbeat; a lease whose heartbeat is older than the TTL is
 * presumed dead and taken over by renaming it aside — again, exactly
 * one thief can win the rename.
 *
 * Safety does not depend on the lease protocol being airtight: runs
 * are deterministic and every artifact is published with an atomic
 * temp+rename, so even if two workers ever run the same spec (clock
 * skew, an extreme heartbeat stall) they write byte-identical
 * artifacts and the last rename is a no-op.  Leases only prevent
 * duplicated *work*, never corrupted *results*.
 */

#ifndef STASHSIM_DRIVER_FARM_HH
#define STASHSIM_DRIVER_FARM_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace stashsim
{
namespace farm
{

/** Exit code for "interrupted, resumable" (vs 1 = failed): wrappers
 *  re-launch the worker on this code and the sweep continues from the
 *  released leases and final checkpoints. */
constexpr int interruptedExitCode = 75;

/** Worker identity and lease policy shared by every farm call. */
struct FarmConfig
{
    /** Unique worker id (goes into lease files and takeover names). */
    std::string workerId = "w0";
    /** Lease heartbeat time-to-live; owners re-publish every TTL/3,
     *  and a lease this stale is presumed dead and stolen. */
    std::uint64_t leaseTtlMs = 30'000;
    /** Attempts a spec gets before it is quarantined as FAILED. */
    unsigned maxAttempts = 3;
};

/** One parsed lease file. */
struct Lease
{
    std::string worker;
    std::uint64_t pid = 0;
    std::uint64_t heartbeatMs = 0; //!< wall clock, ms since epoch
    unsigned attempt = 0;          //!< 1-based attempt this lease covers
    bool released = false;         //!< failed attempt, claimable now
};

/** Wall clock in ms since the epoch (lease heartbeats only — nothing
 *  deterministic ever reads this). */
std::uint64_t wallMs();

/** @{ State-dir file names for spec @p label (an artifact-safe run
 *  label, e.g. "Reuse_Stash-smoke"). */
std::string leasePath(const std::string &dir, const std::string &label);
std::string failedPath(const std::string &dir, const std::string &label);
/** @} */

/** True when LEASE_<label>.json exists (held or released). */
bool leaseExists(const std::string &dir, const std::string &label);

/** Parses a lease file; false when missing or (mid-publish) partial. */
bool readLease(const std::string &path, Lease &out);

enum class ClaimStatus
{
    Claimed,  //!< this worker owns the spec; run it
    Busy,     //!< another live worker holds it; come back later
    Exhausted //!< attempt budget spent; FAILED_<label>.json has why
};

struct ClaimResult
{
    ClaimStatus status = ClaimStatus::Busy;
    unsigned attempt = 0; //!< 1-based attempt number when Claimed
    bool reclaimed = false; //!< won by stealing a stale lease
};

/**
 * Tries to claim spec @p label in @p dir.  Handles every lease state:
 * absent (fresh claim, attempt 1), released (retry claim, attempt+1),
 * stale (takeover, attempt+1), live (Busy).  When the next attempt
 * would exceed cfg.maxAttempts the spec is quarantined as FAILED
 * instead and Exhausted is returned.
 */
ClaimResult tryClaim(const std::string &dir, const std::string &label,
                     const FarmConfig &cfg);

/**
 * Publishes FAILED_<label>.json with the captured diagnostics and
 * removes the lease.  Atomic (temp + rename), so readers never see a
 * partial marker.
 */
void writeFailed(const std::string &dir, const std::string &label,
                 const FarmConfig &cfg, unsigned attempts,
                 const std::vector<std::string> &errors);

/**
 * Reads FAILED_<label>.json; false when absent or unparseable.
 */
bool loadFailed(const std::string &dir, const std::string &label,
                unsigned &attempts, std::vector<std::string> &errors);

/** Removes a FAILED marker (fresh campaigns clear stale verdicts). */
void clearFailed(const std::string &dir, const std::string &label);

/**
 * Moves @p path into <dir>/QUARANTINE/ (created on demand) so a
 * corrupt or stale artifact is preserved for postmortem instead of
 * being silently rerun over.  Returns false when the move failed (the
 * caller falls back to ignoring the file).
 */
bool quarantineFile(const std::string &dir, const std::string &path);

/**
 * Owns one claimed lease for the duration of a run: a background
 * thread re-publishes the lease every TTL/3 so other workers can tell
 * a live owner from a dead one.  Exactly one release method must be
 * called; the destructor falls back to releaseForRetry() (crash-ish
 * unwind: the attempt counts, the spec stays claimable).
 */
class LeaseGuard
{
  public:
    LeaseGuard(std::string dir, std::string label, FarmConfig cfg,
               unsigned attempt);
    ~LeaseGuard();

    LeaseGuard(const LeaseGuard &) = delete;
    LeaseGuard &operator=(const LeaseGuard &) = delete;

    /** Run finished and its RESULT artifact is on disk: the lease is
     *  removed (only if still ours — a thief's lease is left alone). */
    void releaseDone();

    /** Attempt failed but budget remains: the lease is re-published
     *  released=true with this attempt number, claimable by anyone. */
    void releaseForRetry();

    /** Budget exhausted: writes FAILED_<label>.json + removes lease. */
    void releaseFailed(const std::vector<std::string> &errors);

    /** Graceful shutdown: the interrupted attempt does not count, the
     *  lease is removed so any worker can pick the spec up fresh. */
    void releaseInterrupted();

  private:
    void stopHeartbeat();
    void publish(bool released_flag);

    std::string dir;
    std::string label;
    FarmConfig cfg;
    unsigned attempt;
    bool settled = false;

    std::mutex m;
    std::condition_variable cv;
    bool stopping = false;
    std::thread heartbeat;
};

} // namespace farm
} // namespace stashsim

#endif // STASHSIM_DRIVER_FARM_HH
