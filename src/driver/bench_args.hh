/**
 * @file
 * Shared command-line parsing for the bench drivers.
 *
 * Replaces the per-bench argv scans (each bench grepping for
 * "--quick") with one parser every bench-facing binary shares.  The
 * stashbench CLI uses every field; smaller tools can ignore what
 * they do not need.
 */

#ifndef STASHSIM_DRIVER_BENCH_ARGS_HH
#define STASHSIM_DRIVER_BENCH_ARGS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/workload_factory.hh"

namespace stashsim
{

/**
 * Parsed bench options; see parse() for the flag set.
 */
struct BenchArgs
{
    workloads::Scale scale = workloads::Scale::Full;
    /** Sweep worker threads; 0 = one per hardware thread. */
    unsigned jobs = 0;
    /** Intra-run shard threads per run; 1 = serial, 0 = auto. */
    unsigned shards = 1;
    /**
     * Memory backend name for every run ("fixed", "sttmram",
     * "scmcache"); empty keeps each bench's own choice (the fixed
     * default everywhere except the memback ablation, which sweeps
     * all three itself).  Validated by the binary against
     * memBackendList(), not here — the parser stays string-only.
     */
    std::string backend;
    /** Directory for BENCH_*.json (and TRACE_*.json) artifacts. */
    std::string outDir = ".";
    /** Bench names to run; empty = all. */
    std::vector<std::string> benches;
    bool list = false;          //!< --list: enumerate benches
    bool listWorkloads = false; //!< --list-workloads
    bool components = false; //!< include per-component stats in JSON
    /** When nonempty, write per-run Chrome traces into this dir. */
    std::string traceDir;
    /** When nonempty, render EXPERIMENTS-style markdown here
     *  ("-" = stdout) from the JSON artifacts in outDir. */
    std::string renderMd;
    /** Checkpoint cadence in simulated ticks (0 = no checkpoints). */
    std::uint64_t checkpointEvery = 0;
    /** Resume from the checkpoint/result state in this directory. */
    std::string restoreDir;
    /**
     * Farm over this state directory: claim every run through the
     * lease protocol so any number of stashbench processes pointed at
     * the same directory drain one sweep together (implies resume
     * semantics — workers serve each other's cached results).
     */
    std::string farmDir;
    /** Farm worker id for lease files; empty = "w<pid>". */
    std::string workerId;
    /** Lease heartbeat TTL in seconds (farm mode). */
    std::uint64_t leaseTtlSec = 30;
    /** Attempts per spec before FAILED_* quarantine (farm mode). */
    unsigned maxAttempts = 3;
    /**
     * When nonempty, replay this stashtrace-v1 file as a workload
     * (BENCH_replay.json), or — combined with traceRecord — parse
     * and re-emit it normalized.
     */
    std::string traceReplay;
    /** When nonempty, write a stashtrace-v1 trace to this path. */
    std::string traceRecord;
    /**
     * When nonempty, record the named factory workload (built at
     * `scale`, cache organization) into traceRecord instead of
     * simulating anything.
     */
    std::string traceFrom;
    /** @{
     * Sampled simulation (--sample, src/driver/sample.hh): warm the
     * base spec once, then fan measured intervals out from that one
     * checkpoint across the delta list, writing BENCH_sample.json.
     * --sample-unsampled runs the uninterrupted twin of the same
     * campaign (the parity reference).  Deltas and the org are
     * validated by the binary, not here — the parser stays
     * string-only like --backend.
     */
    bool sample = false;
    std::string sampleWorkload = "Reuse";
    std::string sampleOrg = "Stash";
    /** Measured phases per interval; 0 = run to completion. */
    unsigned sampleInterval = 0;
    std::string sampleDeltas =
        "identity,local:32,org:Cache,org:ScratchGD";
    bool sampleUnsampled = false;
    /** @} */
    /** --list emits machine-readable JSON instead of the table. */
    bool json = false;
    bool help = false;

    bool quick() const { return scale == workloads::Scale::Quick; }

    /**
     * Parses argv.  Recognized flags:
     *   --quick | --smoke | --scale full|quick|smoke
     *   --jobs N | -j N
     *   --shards N
     *   --backend NAME
     *   --out DIR
     *   --trace DIR
     *   --components
     *   --checkpoint-every N
     *   --restore DIR
     *   --farm DIR | --worker-id S | --lease-ttl SECONDS
     *   --max-attempts N
     *   --trace-replay FILE | --trace-record FILE | --trace-from NAME
     *   --list [--json] | --list-workloads
     *   --render-md FILE
     *   --help | -h
     * plus positional bench names.
     * @return false with a message in @p err on a bad flag.
     */
    static bool parse(int argc, char **argv, BenchArgs &out,
                      std::string &err);

    /** The usage text matching parse(). */
    static std::string usage(const char *prog);
};

} // namespace stashsim

#endif // STASHSIM_DRIVER_BENCH_ARGS_HH
