#include "driver/sample.hh"

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <utility>

#include "sim/log.hh"

namespace stashsim
{

namespace
{

/** Strict unsigned parse of a whole token; false on any junk. */
bool
parseUnsignedValue(const std::string &s, unsigned &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end != s.c_str() + s.size() || v > 0xffffffffull)
        return false;
    out = unsigned(v);
    return true;
}

/** The artifact identity SweepDriver files a spec's state under. */
std::string
runStateLabel(const RunSpec &spec)
{
    return artifactLabel(spec.label()) + "-" +
           workloads::scaleName(spec.scale);
}

std::string
hexHash(std::uint64_t h)
{
    std::ostringstream os;
    os << "0x" << std::hex << h;
    return os.str();
}

report::JsonValue
deltaGroupsJson(DeltaMask mask)
{
    report::JsonValue arr = report::JsonValue::array();
    for (unsigned g = 0; g < numDeltaGroups; ++g) {
        if (mask & deltaBit(DeltaGroup(g)))
            arr.push(deltaGroupName(DeltaGroup(g)));
    }
    return arr;
}

/**
 * The per-run JSON body, mirroring the bench runToJson() field set
 * (bench/benches_common.cc) plus the sampling-specific "delta" and
 * "truncated" fields, so EXPERIMENTS tooling reads both shapes.
 */
report::JsonValue
sampleRunJson(const SampleDelta &d, const RunRecord &rec)
{
    const RunResult &r = rec.result;
    report::JsonValue run = report::JsonValue::object();
    run["delta"] = d.name;
    run["workload"] = rec.spec.workload;
    run["config"] = memOrgName(rec.spec.org);
    run["label"] = rec.spec.label();
    run["validated"] = r.validated;
    run["truncated"] = r.truncated;
    report::JsonValue errors = report::JsonValue::array();
    for (const std::string &e : r.errors)
        errors.push(e);
    run["errors"] = std::move(errors);
    run["gpuCycles"] = double(r.gpuCycles);
    run["instructions"] = double(r.stats.gpu.instructions);

    report::JsonValue energy = report::JsonValue::object();
    energy["gpuCore"] = r.energy.gpuCore;
    energy["l1"] = r.energy.l1;
    energy["local"] = r.energy.local;
    energy["l2"] = r.energy.l2;
    energy["noc"] = r.energy.noc;
    energy["total"] = r.energy.total();
    run["energy"] = std::move(energy);

    report::JsonValue flits = report::JsonValue::object();
    flits["read"] = double(r.stats.noc.flitHops[0]);
    flits["write"] = double(r.stats.noc.flitHops[1]);
    flits["writeback"] = double(r.stats.noc.flitHops[2]);
    flits["total"] = double(r.stats.noc.totalFlitHops());
    run["flitHops"] = std::move(flits);

    report::JsonValue perf = report::JsonValue::object();
    perf["events"] = double(r.perf.events);
    perf["simTicks"] = double(r.perf.simTicks);
    run["perf"] = std::move(perf);
    return run;
}

} // namespace

bool
parseSampleDelta(const std::string &token, SampleDelta &out,
                 std::string &err)
{
    out = SampleDelta{};
    out.name = token;

    std::string body = token;
    const std::string undeclared = "undeclared:";
    if (body.rfind(undeclared, 0) == 0) {
        out.declare = false;
        body = body.substr(undeclared.size());
    }

    std::string kind = body;
    std::string value;
    const std::size_t colon = body.find(':');
    if (colon != std::string::npos) {
        kind = body.substr(0, colon);
        value = body.substr(colon + 1);
    }
    out.kind = kind;

    if (kind == "identity") {
        if (!value.empty()) {
            err = "delta 'identity' takes no value: '" + token + "'";
            return false;
        }
        out.apply = [](RunSpec &) {};
        return true;
    }
    if (kind == "local") {
        unsigned kb = 0;
        if (!parseUnsignedValue(value, kb) || kb == 0) {
            err = "delta '" + token + "': expected local:<kb>";
            return false;
        }
        out.mask = deltaBit(DeltaGroup::Gpu);
        out.apply = [kb](RunSpec &s) {
            s.config->localBytes = kb * 1024;
        };
        return true;
    }
    if (kind == "org") {
        MemOrg org;
        if (!memOrgFromName(value, org)) {
            err = "delta '" + token + "': unknown memory "
                  "organization '" + value + "'";
            return false;
        }
        out.mask = deltaBit(DeltaGroup::Gpu);
        out.apply = [org](RunSpec &s) { s.org = org; };
        return true;
    }
    if (kind == "backend") {
        MemBackendKind bk;
        if (!memBackendFromName(value, bk)) {
            err = "delta '" + token + "': unknown memory backend '" +
                  value + "'";
            return false;
        }
        out.mask = deltaBit(DeltaGroup::MemBackend);
        out.apply = [bk](RunSpec &s) { s.backend = bk; };
        return true;
    }
    if (kind == "llcassoc") {
        unsigned assoc = 0;
        if (!parseUnsignedValue(value, assoc) || assoc == 0) {
            err = "delta '" + token + "': expected llcassoc:<n>";
            return false;
        }
        out.mask = deltaBit(DeltaGroup::Llc);
        out.apply = [assoc](RunSpec &s) {
            s.config->llcAssoc = assoc;
        };
        return true;
    }
    if (kind == "llckb") {
        unsigned kb = 0;
        if (!parseUnsignedValue(value, kb) || kb == 0) {
            err = "delta '" + token + "': expected llckb:<kb>";
            return false;
        }
        out.mask = deltaBit(DeltaGroup::Llc);
        out.apply = [kb](RunSpec &s) {
            s.config->llcBankBytes = kb * 1024;
        };
        return true;
    }
    err = "unknown delta kind '" + kind + "' in '" + token +
          "' (expected identity, local:<kb>, org:<Name>, "
          "backend:<name>, llcassoc:<n>, or llckb:<kb>)";
    return false;
}

bool
parseSampleDeltas(const std::string &list,
                  std::vector<SampleDelta> &out, std::string &err)
{
    out.clear();
    std::string token;
    std::istringstream is(list);
    while (std::getline(is, token, ',')) {
        if (token.empty()) {
            err = "empty delta token in '" + list + "'";
            return false;
        }
        SampleDelta d;
        if (!parseSampleDelta(token, d, err))
            return false;
        out.push_back(std::move(d));
    }
    if (out.empty()) {
        err = "no deltas in '" + list + "'";
        return false;
    }
    return true;
}

SampleOutcome
runSample(const SampleRequest &req)
{
    namespace fs = std::filesystem;

    if (req.stateDir.empty())
        fatal("sample: a state directory is required (the warm "
              "checkpoint and the farm state live there)");
    if (req.deltas.empty())
        fatal("sample: at least one delta is required (use "
              "'identity' for a pure resume check)");
    fs::create_directories(req.stateDir);

    RunSpec base;
    base.workload = req.workload;
    base.org = req.org;
    base.scale = req.scale;
    base.config = req.config;
    base.make = req.make;
    base.energy = req.energy;
    const SystemConfig baseCfg = resolveRunConfig(base);

    // ---- stage 1: warm once to the measurement boundary ----------
    RunSpec warm = base;
    warm.labelOverride = base.label() + "+warm";
    warm.measurePhases = 0;
    const std::string warmState = runStateLabel(warm);
    const std::string warmPath =
        req.stateDir + "/WARM_" + warmState + ".snap";
    warm.boundarySnapshotPath = warmPath;

    if (!fs::exists(warmPath)) {
        // A cached warm RESULT without its WARM snapshot would be
        // served without simulating, and the checkpoint would never
        // be recreated; drop the stale cache so the farm warms again.
        std::error_code ec;
        fs::remove(req.stateDir + "/RESULT_" + warmState + ".snap",
                   ec);
    }

    SweepOptions so;
    so.threads = req.threads;
    so.shardsPerRun = req.shardsPerRun;
    so.progress = req.progress;
    so.stateDir = req.stateDir;
    so.checkpointEveryTicks = req.checkpointEveryTicks;
    so.resume = true;
    so.workerId = req.workerId;
    so.leaseTtlMs = req.leaseTtlMs;
    so.maxAttempts = req.maxAttempts;
    so.stop = req.stop;

    SampleOutcome out;
    std::vector<RunRecord> warmRecs =
        SweepDriver(so).run({warm}, &out.counters);
    out.warm = std::move(warmRecs.front());
    if (!out.warm.result.validated ||
        !out.warm.result.errors.empty() || !fs::exists(warmPath)) {
        // Warm failure or interruption: no checkpoint to fan out
        // from.  The caller inspects warm.result (and counters) —
        // an interrupted campaign resumes from the farm state.
        return out;
    }

    // ---- provenance: read back what the fan-out restores from ----
    SnapshotReader sr = SnapshotReader::fromFile(warmPath);
    out.sampledFrom.checkpoint =
        fs::path(warmPath).filename().string();
    out.sampledFrom.workload = sr.workload();
    out.sampledFrom.config = memOrgName(baseCfg.memOrg);
    out.sampledFrom.tick = sr.tick();
    out.sampledFrom.phaseCursor = sr.phaseCursor();
    // A boundary snapshot is taken exactly at the warmup boundary,
    // so its phase cursor IS the warmup phase count.
    out.sampledFrom.warmupPhases = sr.phaseCursor();
    out.sampledFrom.configHash = sr.configHash();
    out.sampledFrom.baseHash = snapshotConfigBaseHash(baseCfg);

    // ---- stage 2: fan the measured intervals out -----------------
    std::vector<RunSpec> specs;
    specs.reserve(req.deltas.size());
    for (const SampleDelta &d : req.deltas) {
        RunSpec s = base;
        s.labelOverride = base.label() + "+" + d.name;
        // Materialize the resolved base configuration so a delta can
        // edit individual fields of the exact machine that warmed.
        s.config = baseCfg;
        d.apply(s);
        s.measurePhases = req.intervalPhases == 0
                              ? runControlAllPhases
                              : req.intervalPhases;
        if (!req.unsampled) {
            s.restoreFrom = warmPath;
            s.restoreDeltas = d.declare ? d.mask : 0;
        }
        if (req.decorate)
            req.decorate(specs.size(), s);
        specs.push_back(std::move(s));
    }

    SweepOptions mo = so;
    // Sampled intervals and their unsampled twins share labels and
    // config hashes; separate state namespaces keep one mode's cached
    // results from ever being served to the other.
    mo.stateDir = req.stateDir +
                  (req.unsampled ? "/measure-unsampled" : "/measure");
    fs::create_directories(mo.stateDir);
    out.runs = SweepDriver(mo).run(std::move(specs), &out.counters);
    return out;
}

report::JsonValue
sampleToJson(const SampleRequest &req, const SampleOutcome &out)
{
    report::JsonValue doc = report::JsonValue::object();
    doc["schema"] = "stashsim-sample-v1";
    doc["bench"] = "sample";
    doc["title"] = "Sampled simulation: measured intervals fanned "
                   "out from one warm checkpoint";
    doc["scale"] = workloads::scaleName(req.scale);
    doc["workload"] = req.workload;
    doc["baseConfig"] = memOrgName(req.org);
    doc["intervalPhases"] = double(req.intervalPhases);

    report::JsonValue prov = report::JsonValue::object();
    prov["checkpoint"] = out.sampledFrom.checkpoint;
    prov["workload"] = out.sampledFrom.workload;
    prov["config"] = out.sampledFrom.config;
    prov["tick"] = double(out.sampledFrom.tick);
    prov["phaseCursor"] = double(out.sampledFrom.phaseCursor);
    prov["warmupPhases"] = double(out.sampledFrom.warmupPhases);
    prov["configHash"] = hexHash(out.sampledFrom.configHash);
    prov["baseHash"] = hexHash(out.sampledFrom.baseHash);
    doc["sampledFrom"] = std::move(prov);

    report::JsonValue deltas = report::JsonValue::array();
    for (const SampleDelta &d : req.deltas) {
        report::JsonValue e = report::JsonValue::object();
        e["name"] = d.name;
        e["kind"] = d.kind;
        e["groups"] = deltaGroupsJson(d.mask);
        e["declared"] = d.declare;
        deltas.push(std::move(e));
    }
    doc["deltas"] = std::move(deltas);

    report::JsonValue runs = report::JsonValue::array();
    for (std::size_t i = 0; i < out.runs.size(); ++i)
        runs.push(sampleRunJson(req.deltas[i], out.runs[i]));
    doc["runs"] = std::move(runs);
    return doc;
}

} // namespace stashsim
