#include "driver/farm.hh"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include <unistd.h>

#include "driver/run.hh"
#include "report/json.hh"

namespace stashsim
{
namespace farm
{

namespace
{

namespace fs = std::filesystem;

std::string
join(const std::string &dir, const std::string &name)
{
    if (dir.empty() || dir.back() == '/')
        return dir + name;
    return dir + "/" + name;
}

/** Worker ids go into file names; keep them path-safe. */
std::string
safeWorker(const std::string &worker)
{
    std::string out = artifactLabel(worker);
    for (char &c : out) {
        if (c == '.' || c == ':' || c == '\\')
            c = '_';
    }
    return out.empty() ? std::string("w") : out;
}

/**
 * Atomic publish: write to a hidden temp next to @p path, rename into
 * place.  Readers only ever observe complete files.  Returns false on
 * I/O failure (callers degrade to "not published").
 */
bool
publishFile(const std::string &path, const std::string &content,
            const std::string &worker)
{
    const fs::path p(path);
    const std::string tmp =
        (p.parent_path() / ("." + p.filename().string() + ".tmp-" +
                            safeWorker(worker)))
            .string();
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return false;
        os << content;
        if (!os.flush())
            return false;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

std::string
leaseJson(const FarmConfig &cfg, unsigned attempt, bool released)
{
    report::JsonValue doc = report::JsonValue::object();
    doc["schema"] = "stashsim-farm-lease-v1";
    doc["worker"] = cfg.workerId;
    doc["pid"] = double(::getpid());
    doc["heartbeatMs"] = double(wallMs());
    doc["attempt"] = double(attempt);
    doc["released"] = released;
    return doc.dump();
}

} // namespace

std::uint64_t
wallMs()
{
    using namespace std::chrono;
    return std::uint64_t(duration_cast<milliseconds>(
                             system_clock::now().time_since_epoch())
                             .count());
}

std::string
leasePath(const std::string &dir, const std::string &label)
{
    return join(dir, "LEASE_" + label + ".json");
}

std::string
failedPath(const std::string &dir, const std::string &label)
{
    return join(dir, "FAILED_" + label + ".json");
}

bool
leaseExists(const std::string &dir, const std::string &label)
{
    std::error_code ec;
    return fs::exists(leasePath(dir, label), ec);
}

bool
readLease(const std::string &path, Lease &out)
{
    std::ifstream is(path);
    if (!is)
        return false;
    std::stringstream buf;
    buf << is.rdbuf();
    report::JsonValue doc;
    std::string err;
    if (!report::JsonValue::parse(buf.str(), doc, err))
        return false;
    const report::JsonValue *worker = doc.find("worker");
    const report::JsonValue *hb = doc.find("heartbeatMs");
    const report::JsonValue *attempt = doc.find("attempt");
    if (!worker || !hb || !attempt)
        return false;
    out.worker = worker->asString();
    out.heartbeatMs = std::uint64_t(hb->asNumber());
    out.attempt = unsigned(attempt->asNumber());
    if (const report::JsonValue *pid = doc.find("pid"))
        out.pid = std::uint64_t(pid->asNumber());
    if (const report::JsonValue *rel = doc.find("released"))
        out.released = rel->asBool();
    return true;
}

namespace
{

/** Fresh claim at @p attempt: publish-by-hard-link so exactly one
 *  claimant wins when several race on an absent lease. */
ClaimResult
claimFresh(const std::string &dir, const std::string &label,
           const FarmConfig &cfg, unsigned attempt, bool reclaimed)
{
    const std::string lease = leasePath(dir, label);
    const std::string tmp =
        join(dir, ".LEASE_" + label + ".claim-" +
                      safeWorker(cfg.workerId));
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return {ClaimStatus::Busy, 0, false};
        os << leaseJson(cfg, attempt, false);
        if (!os.flush())
            return {ClaimStatus::Busy, 0, false};
    }
    std::error_code ec;
    fs::create_hard_link(tmp, lease, ec);
    std::error_code ec2;
    fs::remove(tmp, ec2);
    if (ec)
        return {ClaimStatus::Busy, 0, false};
    return {ClaimStatus::Claimed, attempt, reclaimed};
}

} // namespace

ClaimResult
tryClaim(const std::string &dir, const std::string &label,
         const FarmConfig &cfg)
{
    std::error_code ec;
    if (fs::exists(failedPath(dir, label), ec))
        return {ClaimStatus::Exhausted, 0, false};

    const std::string lease = leasePath(dir, label);
    if (!fs::exists(lease, ec))
        return claimFresh(dir, label, cfg, 1, false);

    Lease l;
    if (!readLease(lease, l)) {
        // Every publish is atomic, so an unreadable lease is genuine
        // corruption, not a write in flight.  Its heartbeat can never
        // advance; move it aside so the next pass can claim fresh.
        quarantineFile(dir, lease);
        return {ClaimStatus::Busy, 0, false};
    }

    const bool stale = wallMs() > l.heartbeatMs + cfg.leaseTtlMs;
    if (!l.released && !stale)
        return {ClaimStatus::Busy, 0, false};

    // Takeover: move the lease aside first.  Only one thief can win
    // the rename; everyone else sees ENOENT and backs off.
    const std::string tk =
        join(dir,
             ".LEASE_" + label + ".tk-" + safeWorker(cfg.workerId));
    fs::rename(lease, tk, ec);
    if (ec)
        return {ClaimStatus::Busy, 0, false};
    // Re-read the file we actually stole (it may have been
    // re-published between our read and our rename).
    Lease stolen = l;
    readLease(tk, stolen);
    fs::remove(tk, ec);

    const unsigned next = stolen.attempt + 1;
    const bool was_reclaim = !stolen.released;
    if (next > cfg.maxAttempts) {
        writeFailed(dir, label, cfg, stolen.attempt,
                    {was_reclaim
                         ? "attempt " + std::to_string(stolen.attempt) +
                               " died (stale lease of worker '" +
                               stolen.worker +
                               "' taken over); attempt budget "
                               "exhausted"
                         : "attempt budget exhausted after " +
                               std::to_string(stolen.attempt) +
                               " failed attempts"});
        return {ClaimStatus::Exhausted, 0, was_reclaim};
    }
    return claimFresh(dir, label, cfg, next, was_reclaim);
}

void
writeFailed(const std::string &dir, const std::string &label,
            const FarmConfig &cfg, unsigned attempts,
            const std::vector<std::string> &errors)
{
    report::JsonValue doc = report::JsonValue::object();
    doc["schema"] = "stashsim-farm-failed-v1";
    doc["label"] = label;
    doc["worker"] = cfg.workerId;
    doc["pid"] = double(::getpid());
    doc["attempts"] = double(attempts);
    report::JsonValue errs = report::JsonValue::array();
    for (const std::string &e : errors)
        errs.push(e);
    doc["errors"] = std::move(errs);
    publishFile(failedPath(dir, label), doc.dump(), cfg.workerId);
    std::error_code ec;
    fs::remove(leasePath(dir, label), ec);
}

bool
loadFailed(const std::string &dir, const std::string &label,
           unsigned &attempts, std::vector<std::string> &errors)
{
    std::ifstream is(failedPath(dir, label));
    if (!is)
        return false;
    std::stringstream buf;
    buf << is.rdbuf();
    report::JsonValue doc;
    std::string err;
    if (!report::JsonValue::parse(buf.str(), doc, err))
        return false;
    const report::JsonValue *att = doc.find("attempts");
    attempts = att ? unsigned(att->asNumber()) : 0;
    errors.clear();
    if (const report::JsonValue *errs = doc.find("errors")) {
        for (std::size_t i = 0; i < errs->size(); ++i)
            errors.push_back(errs->at(i).asString());
    }
    return true;
}

void
clearFailed(const std::string &dir, const std::string &label)
{
    std::error_code ec;
    fs::remove(failedPath(dir, label), ec);
}

bool
quarantineFile(const std::string &dir, const std::string &path)
{
    std::error_code ec;
    const std::string qdir = join(dir, "QUARANTINE");
    fs::create_directories(qdir, ec);
    if (ec)
        return false;
    const std::string dest =
        join(qdir, fs::path(path).filename().string());
    fs::rename(path, dest, ec);
    return !ec;
}

LeaseGuard::LeaseGuard(std::string dir, std::string label,
                       FarmConfig cfg, unsigned attempt)
    : dir(std::move(dir)), label(std::move(label)),
      cfg(std::move(cfg)), attempt(attempt)
{
    const auto interval = std::chrono::milliseconds(
        std::max<std::uint64_t>(this->cfg.leaseTtlMs / 3, 10));
    heartbeat = std::thread([this, interval]() {
        std::unique_lock<std::mutex> lock(m);
        while (!cv.wait_for(lock, interval,
                            [this]() { return stopping; })) {
            lock.unlock();
            publish(false);
            lock.lock();
        }
    });
}

LeaseGuard::~LeaseGuard()
{
    if (!settled)
        releaseForRetry();
    stopHeartbeat();
}

void
LeaseGuard::stopHeartbeat()
{
    {
        std::lock_guard<std::mutex> lock(m);
        stopping = true;
    }
    cv.notify_all();
    if (heartbeat.joinable())
        heartbeat.join();
}

void
LeaseGuard::publish(bool released_flag)
{
    publishFile(leasePath(dir, label),
                leaseJson(cfg, attempt, released_flag), cfg.workerId);
}

void
LeaseGuard::releaseDone()
{
    stopHeartbeat();
    settled = true;
    // Only remove a lease that is still ours: if it was stolen (an
    // extreme heartbeat stall), the thief's claim must survive.
    Lease l;
    const std::string path = leasePath(dir, label);
    if (readLease(path, l) && l.worker == cfg.workerId) {
        std::error_code ec;
        std::filesystem::remove(path, ec);
    }
}

void
LeaseGuard::releaseForRetry()
{
    stopHeartbeat();
    settled = true;
    publish(true);
}

void
LeaseGuard::releaseFailed(const std::vector<std::string> &errors)
{
    stopHeartbeat();
    settled = true;
    writeFailed(dir, label, cfg, attempt, errors);
}

void
LeaseGuard::releaseInterrupted()
{
    stopHeartbeat();
    settled = true;
    Lease l;
    const std::string path = leasePath(dir, label);
    if (readLease(path, l) && l.worker == cfg.workerId) {
        std::error_code ec;
        std::filesystem::remove(path, ec);
    }
}

} // namespace farm
} // namespace stashsim
