/**
 * @file
 * 2D mesh interconnect with XY (dimension-order) routing.
 *
 * Models the paper's Garnet 4x4 mesh (Table 2): a GPU CU or CPU core
 * plus an L2 bank at each node.  The mesh transports opaque payloads:
 * a sender provides the destination, the payload size in bytes, a
 * message class for traffic accounting (Figure 5d splits traffic into
 * read/write/writeback flit crossings), and a delivery callback.
 *
 * Latency model per packet:
 *   - per-hop router pipeline delay (routerCycles),
 *   - per-link traversal of one cycle per flit (serialization), with
 *     contention via per-link channel reservations (see Router),
 *   - flit-crossing counts accumulate `flits x links` per packet.
 */

#ifndef STASHSIM_NOC_MESH_HH
#define STASHSIM_NOC_MESH_HH

#include <functional>
#include <vector>

#include "noc/router.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace stashsim
{

class SnapshotWriter;
class SnapshotReader;

/** Mesh timing parameters, in uncore (GPU-domain) cycles. */
struct MeshParams
{
    unsigned width = 4;
    unsigned height = 4;
    Cycles routerCycles = 2; //!< router pipeline latency per hop
    Cycles linkCycles = 1;   //!< link traversal per flit group
    /**
     * Link width in flits per cycle.  GPU-class NoCs move multiple
     * 16 B flits per cycle; traffic *counts* (Figure 5d) are still
     * per flit crossing, this only affects serialization time.
     */
    unsigned flitsPerCycle = 4;

    /**
     * Lower bound on any packet's send-to-delivery latency, in ticks:
     * even a same-node message pays one router pipeline traversal
     * plus one flit group on the ejection port.  This is the sharded
     * engine's conservative lookahead — within a quantum of this
     * length no shard can observe another shard's sends, so shards
     * may advance that far without synchronizing.
     */
    Tick
    minLatencyTicks() const
    {
        return (routerCycles + linkCycles) * gpuClockPeriod;
    }
};

/**
 * The mesh network.  Node ids are row-major: node = y * width + x.
 */
class Mesh
{
  public:
    using DeliverFn = std::function<void()>;

    Mesh(EventQueue &eq, const MeshParams &p);

    unsigned numNodes() const { return params.width * params.height; }

    /** Manhattan hop distance between two nodes. */
    unsigned hopCount(NodeId src, NodeId dst) const;

    /** Number of flits a payload of @p bytes occupies (min 1). */
    static unsigned
    flitsFor(unsigned bytes)
    {
        return bytes == 0 ? 1 : (bytes + flitBytes - 1) / flitBytes;
    }

    /**
     * Sends a packet.  @p on_deliver runs at the arrival tick.
     * Traffic counters are charged immediately.
     */
    void send(NodeId src, NodeId dst, unsigned payload_bytes,
              MsgClass cls, DeliverFn on_deliver);

    /**
     * Times a packet injected at @p send_tick: walks the XY route,
     * reserves every traversed channel, charges traffic counters, and
     * returns the arrival tick (>= send_tick + params.minLatencyTicks())
     * without scheduling anything.  The Fabric's canonical flush path
     * uses this so it can route packets in a fixed global order and
     * place the delivery on the destination tile's queue itself.
     * NOT thread-safe: callers serialize (flushes run single-threaded
     * at tick/quantum boundaries).
     */
    Tick route(NodeId src, NodeId dst, unsigned payload_bytes,
               MsgClass cls, Tick send_tick);

    const NocStats &stats() const { return _stats; }

    const MeshParams &meshParams() const { return params; }

    /** Per-test access to routers. */
    Router &router(NodeId n) { return routers.at(n); }
    const Router &router(NodeId n) const { return routers.at(n); }

    /** Serializes traffic counters + per-router channel reservations. */
    void snapshot(SnapshotWriter &w) const;

    /** Restores counters and reservations from a checkpoint. */
    void restore(SnapshotReader &r);

  private:
    unsigned nodeX(NodeId n) const { return n % params.width; }
    unsigned nodeY(NodeId n) const { return n / params.width; }

    EventQueue &eq;
    MeshParams params;
    std::vector<Router> routers;
    NocStats _stats;
};

} // namespace stashsim

#endif // STASHSIM_NOC_MESH_HH
