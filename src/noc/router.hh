/**
 * @file
 * Mesh router model.
 *
 * Each router owns the five output links of its node (north, south,
 * east, west, and the local ejection port).  Contention is modelled as
 * per-link channel reservations: a packet crossing a link reserves it
 * for its serialization time, and later packets wait for the channel
 * to free.  This is a wormhole approximation that captures the
 * first-order queueing effects (bursty DMA/writeback traffic slowing
 * the network) without per-flit simulation.
 */

#ifndef STASHSIM_NOC_ROUTER_HH
#define STASHSIM_NOC_ROUTER_HH

#include <array>

#include "sim/types.hh"

namespace stashsim
{

/** Output port directions of a mesh router. */
enum class Direction : unsigned
{
    North = 0,
    South = 1,
    East = 2,
    West = 3,
    Local = 4,
    NumDirections = 5
};

/**
 * A single mesh router: per-output-link channel reservation state.
 */
class Router
{
  public:
    /**
     * Reserves the output link @p dir starting no earlier than
     * @p earliest for @p duration ticks.
     *
     * @return the tick at which the reservation ends (i.e., when the
     *         packet's tail flit has crossed the link).
     */
    Tick reserve(Direction dir, Tick earliest, Tick duration);

    /** Next tick at which @p dir is free (for tests/telemetry). */
    Tick
    busyUntil(Direction dir) const
    {
        return _busyUntil[unsigned(dir)];
    }

    /** Clears all channel reservations. */
    void reset() { _busyUntil.fill(0); }

    /** Checkpoint restore: forces one link's reservation horizon. */
    void
    setBusyUntil(Direction dir, Tick t)
    {
        _busyUntil[unsigned(dir)] = t;
    }

  private:
    std::array<Tick, unsigned(Direction::NumDirections)> _busyUntil{};
};

} // namespace stashsim

#endif // STASHSIM_NOC_ROUTER_HH
