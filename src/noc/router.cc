#include "noc/router.hh"

#include <algorithm>

#include "sim/log.hh"

namespace stashsim
{

Tick
Router::reserve(Direction dir, Tick earliest, Tick duration)
{
    sim_assert(dir != Direction::NumDirections);
    Tick &busy = _busyUntil[unsigned(dir)];
    Tick start = std::max(earliest, busy);
    busy = start + duration;
    return busy;
}

} // namespace stashsim
