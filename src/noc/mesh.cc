#include "noc/mesh.hh"

#include <cstdlib>

#include "sim/log.hh"
#include "snapshot/snapshot.hh"

namespace stashsim
{

Mesh::Mesh(EventQueue &eq, const MeshParams &p)
    : eq(eq), params(p), routers(p.width * p.height)
{
    sim_assert(p.width >= 1 && p.height >= 1);
}

unsigned
Mesh::hopCount(NodeId src, NodeId dst) const
{
    int dx = int(nodeX(dst)) - int(nodeX(src));
    int dy = int(nodeY(dst)) - int(nodeY(src));
    return unsigned(std::abs(dx) + std::abs(dy));
}

void
Mesh::send(NodeId src, NodeId dst, unsigned payload_bytes, MsgClass cls,
           DeliverFn on_deliver)
{
    const Tick t = route(src, dst, payload_bytes, cls, eq.curTick());
    eq.schedule(t, std::move(on_deliver), EventQueue::PriDelivery);
}

Tick
Mesh::route(NodeId src, NodeId dst, unsigned payload_bytes, MsgClass cls,
            Tick send_tick)
{
    sim_assert(src < numNodes() && dst < numNodes());

    const unsigned flits = flitsFor(payload_bytes);
    const Tick router_delay = params.routerCycles * gpuClockPeriod;
    const unsigned flit_groups =
        (flits + params.flitsPerCycle - 1) / params.flitsPerCycle;
    const Tick serial =
        Tick(flit_groups) * params.linkCycles * gpuClockPeriod;

    // Walk the XY route: move in X first, then in Y.  Each traversed
    // link is reserved for this packet's serialization time; the
    // packet leaves a router after its pipeline delay plus any time
    // spent waiting for the output channel.
    Tick t = send_tick;
    unsigned x = nodeX(src), y = nodeY(src);
    const unsigned tx = nodeX(dst), ty = nodeY(dst);
    unsigned links = 0;

    while (x != tx || y != ty) {
        NodeId cur = NodeId(y * params.width + x);
        Direction dir;
        if (x < tx) {
            dir = Direction::East;
            ++x;
        } else if (x > tx) {
            dir = Direction::West;
            --x;
        } else if (y < ty) {
            dir = Direction::North;
            ++y;
        } else {
            dir = Direction::South;
            --y;
        }
        t += router_delay;
        t = routers[cur].reserve(dir, t, serial);
        ++links;
    }

    // Ejection at the destination node (local port).  Even a
    // same-node message pays one router traversal.
    t += router_delay;
    t = routers[dst].reserve(Direction::Local, t, serial);

    _stats.packets += 1;
    _stats.flitHops[unsigned(cls)] += Counter(flits) * links;

    return t;
}

void
Mesh::snapshot(SnapshotWriter &w) const
{
    writeStats(w, _stats);
    w.u32(std::uint32_t(routers.size()));
    for (const Router &rt : routers)
        for (unsigned d = 0; d < unsigned(Direction::NumDirections); ++d)
            w.u64(rt.busyUntil(Direction(d)));
}

void
Mesh::restore(SnapshotReader &r)
{
    readStats(r, _stats);
    r.require(r.u32() == routers.size(), "router count mismatch");
    for (Router &rt : routers)
        for (unsigned d = 0; d < unsigned(Direction::NumDirections); ++d)
            rt.setBusyUntil(Direction(d), r.u64());
}

} // namespace stashsim
