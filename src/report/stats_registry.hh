/**
 * @file
 * StatsRegistry: hierarchical named counters with pluggable sinks.
 *
 * Components register their counter groups once (the stats structs in
 * sim/stats.hh enumerate themselves through visit()); the registry
 * then snapshots every registered counter by name on demand and
 * serializes the snapshot as flat key/value pairs, hierarchical JSON
 * (split on '.'), or CSV.  Registration stores pointers to the live
 * counters, so a registry built at System construction always reads
 * current values — no per-access overhead, no hand-written flatten
 * tables.
 *
 * Two uses in the tree:
 *  - System owns a live registry with one group per component
 *    instance ("cu0.l1.loadHits", "llc3.fills", ...), for
 *    fine-grained debugging dumps.
 *  - registerSystemStats() registers an aggregated SystemStats
 *    snapshot under the canonical report names — the same keys (and
 *    values) as SystemStats::flatten(), which the parity test in
 *    tests/report enforces.  The BENCH_*.json artifacts are produced
 *    through this path.
 */

#ifndef STASHSIM_REPORT_STATS_REGISTRY_HH
#define STASHSIM_REPORT_STATS_REGISTRY_HH

#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "report/json.hh"
#include "sim/stats.hh"

namespace stashsim
{
namespace report
{

/**
 * A name -> counter registry; see file comment.
 */
class StatsRegistry
{
  public:
    /** Registers one live counter under @p path ("a.b.c"). */
    void addCounter(const std::string &path, const Counter *c);

    /** Registers a derived value, sampled through @p fn. */
    void addValue(const std::string &path, std::function<double()> fn);

    /**
     * Registers every counter of a stats struct under
     * "<prefix>.<counter>", via the struct's visit() enumeration.
     */
    template <class S>
    void
    addGroup(const std::string &prefix, const S *s)
    {
        S::visit(*s, [&](const char *name, const Counter &c) {
            addCounter(prefix.empty() ? std::string(name)
                                      : prefix + "." + name,
                       &c);
        });
    }

    std::size_t size() const { return entries.size(); }

    /** Samples every entry: sorted flat name -> value map. */
    std::map<std::string, double> values() const;

    /** Hierarchical JSON: path segments (split on '.') nest. */
    JsonValue toJson() const;

    /** toJson() to a stream. */
    void writeJson(std::ostream &os) const;

    /** Flat CSV: "stat,value" header plus one row per entry. */
    void writeCsv(std::ostream &os) const;

  private:
    struct Entry
    {
        std::string path;
        const Counter *counter = nullptr;     //!< live counter, or
        std::function<double()> fn;           //!< derived sampler
    };

    double sample(const Entry &e) const;

    std::vector<Entry> entries; //!< registration order
};

/**
 * Registers an aggregated snapshot under the canonical report names:
 * every raw counter of every group, the derived totals, and the
 * sim.* scalars — exactly the key set of SystemStats::flatten().
 * @p s must outlive the registry.
 */
void registerSystemStats(StatsRegistry &reg, const SystemStats &s);

} // namespace report
} // namespace stashsim

#endif // STASHSIM_REPORT_STATS_REGISTRY_HH
