#include "report/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace stashsim
{
namespace report
{

JsonValue &
JsonValue::operator[](const std::string &key)
{
    _kind = Kind::Object;
    for (auto &m : _members) {
        if (m.first == key)
            return m.second;
    }
    _members.emplace_back(key, JsonValue{});
    return _members.back().second;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (_kind != Kind::Object)
        return nullptr;
    for (const auto &m : _members) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

std::string
jsonNumberToString(double d)
{
    if (!std::isfinite(d))
        return "null"; // JSON has no inf/nan
    // Integers (the common case: counters) print without a decimal
    // point; everything else uses the shortest round-trippable form.
    if (d == std::floor(d) && std::fabs(d) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", d);
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    double back = std::strtod(buf, nullptr);
    if (back == d)
        return buf;
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    return buf;
}

namespace
{

void
writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\b':
            os << "\\b";
            break;
          case '\f':
            os << "\\f";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\r':
            os << "\\r";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << char(c);
            }
        }
    }
    os << '"';
}

void
writeIndent(std::ostream &os, int level)
{
    for (int i = 0; i < level; ++i)
        os << "  ";
}

} // namespace

void
JsonValue::write(std::ostream &os, int indent) const
{
    switch (_kind) {
      case Kind::Null:
        os << "null";
        break;
      case Kind::Bool:
        os << (_bool ? "true" : "false");
        break;
      case Kind::Number:
        os << jsonNumberToString(_num);
        break;
      case Kind::String:
        writeEscaped(os, _str);
        break;
      case Kind::Array:
        if (_items.empty()) {
            os << "[]";
            break;
        }
        os << "[\n";
        for (std::size_t i = 0; i < _items.size(); ++i) {
            writeIndent(os, indent + 1);
            _items[i].write(os, indent + 1);
            if (i + 1 < _items.size())
                os << ",";
            os << "\n";
        }
        writeIndent(os, indent);
        os << "]";
        break;
      case Kind::Object:
        if (_members.empty()) {
            os << "{}";
            break;
        }
        os << "{\n";
        for (std::size_t i = 0; i < _members.size(); ++i) {
            writeIndent(os, indent + 1);
            writeEscaped(os, _members[i].first);
            os << ": ";
            _members[i].second.write(os, indent + 1);
            if (i + 1 < _members.size())
                os << ",";
            os << "\n";
        }
        writeIndent(os, indent);
        os << "}";
        break;
    }
}

std::string
JsonValue::dump() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

namespace
{

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string err;

    explicit Parser(const std::string &t) : text(t) {}

    bool
    fail(const std::string &why)
    {
        if (err.empty()) {
            err = why + " at offset " + std::to_string(pos);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word, JsonValue v, JsonValue &out)
    {
        std::size_t len = std::string(word).size();
        if (text.compare(pos, len, word) != 0)
            return fail("bad literal");
        pos += len;
        out = std::move(v);
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                return fail("truncated escape");
            char e = text[pos++];
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= unsigned(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode (no surrogate-pair support; the
                // simulator never emits any).
                if (cp < 0x80) {
                    out += char(cp);
                } else if (cp < 0x800) {
                    out += char(0xc0 | (cp >> 6));
                    out += char(0x80 | (cp & 0x3f));
                } else {
                    out += char(0xe0 | (cp >> 12));
                    out += char(0x80 | ((cp >> 6) & 0x3f));
                    out += char(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos; // closing quote
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == 'n')
            return literal("null", JsonValue{}, out);
        if (c == 't')
            return literal("true", JsonValue{true}, out);
        if (c == 'f')
            return literal("false", JsonValue{false}, out);
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = JsonValue{std::move(s)};
            return true;
        }
        if (c == '[') {
            ++pos;
            out = JsonValue::array();
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                JsonValue item;
                if (!parseValue(item))
                    return false;
                out.push(std::move(item));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '{') {
            ++pos;
            out = JsonValue::object();
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                JsonValue member;
                if (!parseValue(member))
                    return false;
                out[key] = std::move(member);
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        // Number.
        std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '-' ||
                text[pos] == '+')) {
            ++pos;
        }
        if (pos == start)
            return fail("unexpected character");
        try {
            out = JsonValue{
                std::stod(text.substr(start, pos - start))};
        } catch (const std::exception &) {
            return fail("bad number");
        }
        return true;
    }
};

} // namespace

bool
JsonValue::parse(const std::string &text, JsonValue &out,
                 std::string &err)
{
    Parser p(text);
    if (!p.parseValue(out)) {
        err = p.err;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        err = "trailing data at offset " + std::to_string(p.pos);
        return false;
    }
    return true;
}

} // namespace report
} // namespace stashsim
