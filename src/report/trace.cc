#include "report/trace.hh"

#include <ostream>

namespace stashsim
{
namespace report
{

void
ChromeTraceSink::phaseBegin(const char *, Tick at)
{
    openBegin = at;
    open = true;
}

void
ChromeTraceSink::phaseEnd(const char *name, Tick at)
{
    if (!open)
        return;
    open = false;
    Slice s;
    s.name = name;
    s.begin = openBegin;
    s.end = at;
    for (auto &[cname, fn] : counters)
        s.samples.push_back(fn());
    slices.push_back(std::move(s));
}

void
ChromeTraceSink::trackCounter(const std::string &name,
                              std::function<double()> fn)
{
    counters.emplace_back(name, std::move(fn));
}

JsonValue
ChromeTraceSink::toJson() const
{
    JsonValue events = JsonValue::array();
    for (const auto &s : slices) {
        JsonValue ev = JsonValue::object();
        ev["name"] = JsonValue{s.name};
        ev["ph"] = JsonValue{"X"};
        ev["ts"] = JsonValue{double(s.begin)};
        ev["dur"] = JsonValue{double(s.end - s.begin)};
        ev["pid"] = JsonValue{0};
        ev["tid"] = JsonValue{lane};
        events.push(std::move(ev));
        for (std::size_t i = 0; i < counters.size(); ++i) {
            JsonValue c = JsonValue::object();
            c["name"] = JsonValue{counters[i].first};
            c["ph"] = JsonValue{"C"};
            c["ts"] = JsonValue{double(s.end)};
            c["pid"] = JsonValue{0};
            JsonValue args = JsonValue::object();
            args["value"] = JsonValue{s.samples[i]};
            c["args"] = std::move(args);
            events.push(std::move(c));
        }
    }
    JsonValue root = JsonValue::object();
    root["traceEvents"] = std::move(events);
    root["displayTimeUnit"] = JsonValue{"ms"};
    return root;
}

void
ChromeTraceSink::writeTo(std::ostream &os) const
{
    toJson().write(os);
    os << "\n";
}

} // namespace report
} // namespace stashsim
