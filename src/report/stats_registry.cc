#include "report/stats_registry.hh"

#include <ostream>

#include "sim/log.hh"

namespace stashsim
{
namespace report
{

void
StatsRegistry::addCounter(const std::string &path, const Counter *c)
{
    sim_assert(c != nullptr);
    entries.push_back(Entry{path, c, nullptr});
}

void
StatsRegistry::addValue(const std::string &path,
                        std::function<double()> fn)
{
    sim_assert(fn != nullptr);
    entries.push_back(Entry{path, nullptr, std::move(fn)});
}

double
StatsRegistry::sample(const Entry &e) const
{
    return e.counter ? double(*e.counter) : e.fn();
}

std::map<std::string, double>
StatsRegistry::values() const
{
    std::map<std::string, double> m;
    for (const auto &e : entries)
        m[e.path] = sample(e);
    return m;
}

JsonValue
StatsRegistry::toJson() const
{
    JsonValue root = JsonValue::object();
    // Sorted order (values() is a std::map) so sibling keys group
    // deterministically regardless of registration order.
    for (const auto &[path, value] : values()) {
        JsonValue *node = &root;
        std::size_t start = 0;
        while (true) {
            std::size_t dot = path.find('.', start);
            if (dot == std::string::npos) {
                (*node)[path.substr(start)] = JsonValue{value};
                break;
            }
            node = &(*node)[path.substr(start, dot - start)];
            start = dot + 1;
        }
    }
    return root;
}

void
StatsRegistry::writeJson(std::ostream &os) const
{
    toJson().write(os);
    os << "\n";
}

void
StatsRegistry::writeCsv(std::ostream &os) const
{
    os << "stat,value\n";
    for (const auto &[path, value] : values())
        os << path << "," << jsonNumberToString(value) << "\n";
}

void
registerSystemStats(StatsRegistry &reg, const SystemStats &s)
{
    SystemStats::visitGroups(
        s, [&reg](const char *prefix, const auto &group) {
            reg.addGroup(prefix, &group);
        });
    // Derived totals and scalars, mirroring SystemStats::flatten().
    reg.addValue("gpuL1.hits",
                 [&s] { return double(s.gpuL1.hits()); });
    reg.addValue("gpuL1.misses",
                 [&s] { return double(s.gpuL1.misses()); });
    reg.addValue("gpuL1.accesses",
                 [&s] { return double(s.gpuL1.accesses()); });
    reg.addValue("cpuL1.hits",
                 [&s] { return double(s.cpuL1.hits()); });
    reg.addValue("cpuL1.misses",
                 [&s] { return double(s.cpuL1.misses()); });
    reg.addValue("cpuL1.accesses",
                 [&s] { return double(s.cpuL1.accesses()); });
    reg.addValue("scratch.accesses",
                 [&s] { return double(s.scratch.accesses()); });
    reg.addValue("stash.hits",
                 [&s] { return double(s.stash.hits()); });
    reg.addValue("stash.misses",
                 [&s] { return double(s.stash.misses()); });
    reg.addValue("stash.accesses",
                 [&s] { return double(s.stash.accesses()); });
    reg.addValue("noc.flitHops.total",
                 [&s] { return double(s.noc.totalFlitHops()); });
    reg.addValue("sim.gpuCycles",
                 [&s] { return double(s.gpuCycles); });
    reg.addValue("sim.numGpuCus",
                 [&s] { return double(s.numGpuCus); });
}

} // namespace report
} // namespace stashsim
