/**
 * @file
 * Chrome-trace sink for timeline debugging.
 *
 * Subscribes to an EventQueue's phase/drain boundaries and records
 * each phase as a complete ("X") trace event; optionally samples
 * registered counters at every phase end as counter ("C") events.
 * The output loads in chrome://tracing and Perfetto: one row per
 * simulated System, phases laid out against simulated time (1 tick
 * rendered as 1 us — tick magnitudes, not wall time).
 */

#ifndef STASHSIM_REPORT_TRACE_HH
#define STASHSIM_REPORT_TRACE_HH

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "report/json.hh"
#include "sim/event_queue.hh"

namespace stashsim
{
namespace report
{

/**
 * Records phase boundaries as a Chrome trace; see file comment.
 */
class ChromeTraceSink : public PhaseListener
{
  public:
    /** @p lane names the trace row (defaults to "system"). */
    explicit ChromeTraceSink(std::string lane = "system")
        : lane(std::move(lane))
    {
    }

    void phaseBegin(const char *name, Tick at) override;
    void phaseEnd(const char *name, Tick at) override;

    /**
     * Samples @p fn at every phase end and emits the series as
     * Chrome counter events named @p name.
     */
    void trackCounter(const std::string &name,
                      std::function<double()> fn);

    std::size_t phaseCount() const { return slices.size(); }

    /** The trace as a Chrome "traceEvents" JSON document. */
    JsonValue toJson() const;

    /** toJson() to a stream. */
    void writeTo(std::ostream &os) const;

  private:
    struct Slice
    {
        std::string name;
        Tick begin = 0;
        Tick end = 0;
        std::vector<double> samples; //!< one per tracked counter
    };

    std::string lane;
    std::vector<Slice> slices;
    Tick openBegin = 0;
    bool open = false;
    std::vector<std::pair<std::string, std::function<double()>>>
        counters;
};

} // namespace report
} // namespace stashsim

#endif // STASHSIM_REPORT_TRACE_HH
