/**
 * @file
 * Minimal JSON document model for the report subsystem.
 *
 * The simulator's machine-readable artifacts (BENCH_*.json, Chrome
 * traces, stats dumps) are built as JsonValue trees and serialized
 * with stable formatting: object keys keep insertion order, so a
 * deterministic simulation produces byte-identical files.  A small
 * recursive-descent parser is included so tests (and the EXPERIMENTS
 * renderer) can read the artifacts back without external
 * dependencies.
 */

#ifndef STASHSIM_REPORT_JSON_HH
#define STASHSIM_REPORT_JSON_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace stashsim
{
namespace report
{

/**
 * One JSON value: null, bool, number, string, array, or object.
 */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    JsonValue() : _kind(Kind::Null) {}
    JsonValue(bool b) : _kind(Kind::Bool), _bool(b) {}
    JsonValue(double d) : _kind(Kind::Number), _num(d) {}
    JsonValue(int i) : _kind(Kind::Number), _num(i) {}
    JsonValue(unsigned u) : _kind(Kind::Number), _num(u) {}
    JsonValue(long long ll)
        : _kind(Kind::Number), _num(double(ll))
    {
    }
    JsonValue(unsigned long long ull)
        : _kind(Kind::Number), _num(double(ull))
    {
    }
    JsonValue(const char *s) : _kind(Kind::String), _str(s) {}
    JsonValue(std::string s) : _kind(Kind::String), _str(std::move(s))
    {
    }

    static JsonValue
    array()
    {
        JsonValue v;
        v._kind = Kind::Array;
        return v;
    }

    static JsonValue
    object()
    {
        JsonValue v;
        v._kind = Kind::Object;
        return v;
    }

    Kind kind() const { return _kind; }
    bool isNull() const { return _kind == Kind::Null; }
    bool isBool() const { return _kind == Kind::Bool; }
    bool isNumber() const { return _kind == Kind::Number; }
    bool isString() const { return _kind == Kind::String; }
    bool isArray() const { return _kind == Kind::Array; }
    bool isObject() const { return _kind == Kind::Object; }

    bool asBool() const { return _bool; }
    double asNumber() const { return _num; }
    const std::string &asString() const { return _str; }

    /** Array elements / object entry count. */
    std::size_t
    size() const
    {
        return _kind == Kind::Object ? _members.size() : _items.size();
    }

    /** Appends to an array (converts a Null value to an array). */
    void
    push(JsonValue v)
    {
        _kind = Kind::Array;
        _items.push_back(std::move(v));
    }

    /** Array element access. */
    const JsonValue &at(std::size_t i) const { return _items[i]; }

    /**
     * Object member access; inserts a Null member (converting a Null
     * value to an object) when the key is absent.
     */
    JsonValue &operator[](const std::string &key);

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Object members, in insertion order. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return _members;
    }

    /**
     * Serializes with 2-space indentation per level; @p indent is the
     * starting level.  Deterministic: insertion order, fixed number
     * formatting.
     */
    void write(std::ostream &os, int indent = 0) const;

    /** write() into a string. */
    std::string dump() const;

    /**
     * Parses @p text into @p out.
     * @return false (with a message in @p err) on malformed input.
     */
    static bool parse(const std::string &text, JsonValue &out,
                      std::string &err);

  private:
    Kind _kind;
    bool _bool = false;
    double _num = 0;
    std::string _str;
    std::vector<JsonValue> _items;
    std::vector<std::pair<std::string, JsonValue>> _members;
};

/** Formats a number the way the serializer does (shortest lossless). */
std::string jsonNumberToString(double d);

} // namespace report
} // namespace stashsim

#endif // STASHSIM_REPORT_JSON_HH
