/**
 * @file
 * Simple in-order CPU core model.
 *
 * The paper's evaluation uses CPU cores to produce/consume the data
 * the GPU kernels work on (15 cores in the microbenchmarks so the CPU
 * side does not dominate execution time; 1 for the applications).
 * Our core issues one word access per 2 GHz cycle through its
 * coherent L1, with a small number of overlapping misses, and can
 * optionally check loaded values — which is how the integration tests
 * verify that data written by a GPU stash reaches the CPU through the
 * coherence protocol (remote stash hits), not through any functional
 * back door.
 */

#ifndef STASHSIM_CPU_CPU_CORE_HH
#define STASHSIM_CPU_CPU_CORE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mem/cache.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace stashsim
{

class Watchdog;

/** One CPU memory operation. */
struct CpuOp
{
    Addr addr = 0;
    bool isStore = false;
    std::uint32_t value = 0; //!< store value / expected load value
    bool checkValue = false; //!< verify loads against `value`
};

class SnapshotWriter;
class SnapshotReader;

/**
 * One CPU core.
 */
class CpuCore
{
  public:
    CpuCore(EventQueue &eq, L1Cache &l1, CoreId core,
            unsigned max_outstanding);

    /**
     * Runs @p ops to completion; @p done fires after the last access
     * finishes.  Mismatched checked loads are appended to @p errors
     * (if non-null).
     */
    void run(std::vector<CpuOp> ops, std::function<void()> done,
             std::vector<std::string> *errors = nullptr);

    const CpuStats &stats() const { return _stats; }

    /** Reports access completions as forward progress to @p w. */
    void setWatchdog(Watchdog *w) { watchdog = w; }

    /**
     * Serializes stats (the only state that outlives a phase; ops
     * are consumed and no access is outstanding at a drain point).
     */
    void snapshot(SnapshotWriter &w) const;

    /** Restores an inter-phase checkpoint. */
    void restore(SnapshotReader &r);

  private:
    void issueNext();
    void onComplete(std::size_t idx, const LineData &d);

    EventQueue &eq;
    L1Cache &l1;
    CoreId core;
    unsigned maxOutstanding;

    std::vector<CpuOp> ops;
    std::size_t nextOp = 0;
    unsigned outstanding = 0;
    bool issueScheduled = false;
    std::function<void()> done;
    std::vector<std::string> *errors = nullptr;

    CpuStats _stats;
    Watchdog *watchdog = nullptr;
};

} // namespace stashsim

#endif // STASHSIM_CPU_CPU_CORE_HH
