#include "cpu/cpu_core.hh"

#include <sstream>

#include "sim/log.hh"
#include "snapshot/snapshot.hh"
#include "verify/watchdog.hh"

namespace stashsim
{

CpuCore::CpuCore(EventQueue &eq, L1Cache &l1, CoreId core,
                 unsigned max_outstanding)
    : eq(eq), l1(l1), core(core), maxOutstanding(max_outstanding)
{
}

void
CpuCore::run(std::vector<CpuOp> run_ops, std::function<void()> run_done,
             std::vector<std::string> *err)
{
    sim_assert(nextOp >= ops.size() && outstanding == 0);
    ops = std::move(run_ops);
    nextOp = 0;
    done = std::move(run_done);
    errors = err;
    if (ops.empty()) {
        eq.scheduleIn(0, [this]() { done(); });
        return;
    }
    issueNext();
}

void
CpuCore::issueNext()
{
    issueScheduled = false;
    if (nextOp >= ops.size())
        return;
    if (outstanding >= maxOutstanding) {
        // Retry when an access completes.
        return;
    }

    const std::size_t idx = nextOp++;
    const CpuOp &op = ops[idx];
    if (op.isStore)
        ++_stats.stores;
    else
        ++_stats.loads;

    LineData store;
    if (op.isStore)
        store.w[lineWord(op.addr)] = op.value;

    ++outstanding;
    l1.access(lineBase(op.addr), wordBit(lineWord(op.addr)), op.isStore,
              op.isStore ? &store : nullptr,
              [this, idx](const LineData &d) { onComplete(idx, d); });

    // One issue per CPU cycle.
    if (nextOp < ops.size() && outstanding < maxOutstanding) {
        issueScheduled = true;
        eq.scheduleIn(cpuClockPeriod, [this]() { issueNext(); });
    }
}

void
CpuCore::onComplete(std::size_t idx, const LineData &d)
{
    if (watchdog)
        watchdog->progress();
    const CpuOp &op = ops[idx];
    if (!op.isStore && op.checkValue) {
        const std::uint32_t got = d.w[lineWord(op.addr)];
        if (got != op.value && errors) {
            std::ostringstream os;
            os << "cpu" << core << ": load @0x" << std::hex << op.addr
               << " = 0x" << got << ", expected 0x" << op.value;
            errors->push_back(os.str());
        }
    }
    sim_assert(outstanding > 0);
    --outstanding;

    if (nextOp < ops.size()) {
        if (!issueScheduled) {
            issueScheduled = true;
            eq.scheduleIn(cpuClockPeriod, [this]() { issueNext(); });
        }
        return;
    }
    if (outstanding == 0)
        done();
}

void
CpuCore::snapshot(SnapshotWriter &w) const
{
    sim_assert(outstanding == 0);
    writeStats(w, _stats);
}

void
CpuCore::restore(SnapshotReader &r)
{
    sim_assert(outstanding == 0);
    readStats(r, _stats);
}

} // namespace stashsim
