#include "sim/shard_engine.hh"

#include <algorithm>
#include <chrono>
#include <limits>

#include "sim/log.hh"

namespace stashsim
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

std::uint64_t
elapsedNs(SteadyClock::time_point from, SteadyClock::time_point to)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
            .count());
}

} // namespace

ShardEngine::ShardEngine(const Options &o)
    : opts(o), barrier(std::max(1u, std::min(o.threads, o.tiles)))
{
    sim_assert(opts.tiles >= 1);
    opts.threads = std::max(1u, std::min(opts.threads, opts.tiles));
    if (opts.tiles > 1 && opts.lookahead < 1) {
        fatal("shard engine: mesh minimum latency is ",
              opts.lookahead,
              " ticks; sharded execution needs lookahead >= 1");
    }
    queues.reserve(opts.tiles);
    for (unsigned i = 0; i < opts.tiles; ++i)
        queues.push_back(std::make_unique<EventQueue>());
    lanes.resize(opts.tiles);
}

void
ShardEngine::setThreads(unsigned n)
{
    n = std::max(1u, std::min(n, opts.tiles));
    if (n == opts.threads)
        return;
    opts.threads = n;
    barrier.reset(n);
}

std::uint64_t
ShardEngine::eventsExecuted() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues)
        n += q->eventsExecuted();
    return n;
}

std::size_t
ShardEngine::totalPending() const
{
    std::size_t n = 0;
    for (const auto &q : queues)
        n += q->size();
    return n;
}

std::size_t
ShardEngine::peakLiveEvents() const
{
    std::size_t n = 0;
    for (const auto &q : queues)
        n = std::max(n, q->peakLiveEvents());
    return n;
}

std::size_t
ShardEngine::poolChunksAllocated() const
{
    std::size_t n = 0;
    for (const auto &q : queues)
        n += q->poolChunksAllocated();
    return n;
}

std::uint64_t
ShardEngine::wheelInserts() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues)
        n += q->wheelInserts();
    return n;
}

std::uint64_t
ShardEngine::farInserts() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues)
        n += q->farInserts();
    return n;
}

EngineBreakdown
ShardEngine::breakdown() const
{
    EngineBreakdown b;
    b.flushNs = _flushNs;
    b.quanta = _quanta;
    // Report the lanes that ever did work (a retune may have shrunk
    // the pool below a lane that already accumulated time), and at
    // least the current pool so callers can label every live worker.
    std::size_t live = opts.threads;
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        if (lanes[i].execNs || lanes[i].barrierWaitNs)
            live = std::max(live, i + 1);
    }
    b.lanes.reserve(live);
    for (std::size_t i = 0; i < live; ++i) {
        b.lanes.push_back({lanes[i].execNs, lanes[i].barrierWaitNs});
        b.execNs += lanes[i].execNs;
        b.barrierWaitNs += lanes[i].barrierWaitNs;
    }
    return b;
}

void
ShardEngine::computeNextQuantum()
{
    Tick base = std::numeric_limits<Tick>::max();
    for (const auto &q : queues) {
        if (!q->empty())
            base = std::min(base, q->nextTick());
    }
    // Adaptive quantum: jump straight to the earliest pending event
    // instead of stepping empty lookahead windows.  Every event
    // executed in [base, base + L - 1] stages its sends at >= base,
    // and every send takes >= L ticks to arrive, so no delivery can
    // land inside the quantum — the shards are independent within it.
    qEnd = base + opts.lookahead - 1;
    ++_quanta;
}

void
ShardEngine::onBarrier()
{
    if (errorFlag.load(std::memory_order_relaxed)) {
        done = true;
        return;
    }
    try {
        const auto f0 = SteadyClock::now();
        (*curFlush)();
        _flushNs += elapsedNs(f0, SteadyClock::now());
        if (*curHook)
            (*curHook)(qEnd);
        if (totalPending() == 0)
            done = true;
        else
            computeNextQuantum();
    } catch (...) {
        controlError = std::current_exception();
        done = true;
    }
}

void
ShardEngine::workerLoop(unsigned w)
{
    std::uint64_t execNs = 0;
    std::uint64_t waitNs = 0;
    auto t0 = SteadyClock::now();
    while (!done) {
        if (!errorFlag.load(std::memory_order_relaxed)) {
            try {
                for (unsigned tile = w; tile < opts.tiles;
                     tile += opts.threads) {
                    queues[tile]->run(qEnd);
                }
            } catch (...) {
                workerErrors[w] = std::current_exception();
                errorFlag.store(true, std::memory_order_relaxed);
            }
        }
        const auto t1 = SteadyClock::now();
        barrier.arriveAndWait([this] { onBarrier(); });
        const auto t2 = SteadyClock::now();
        execNs += elapsedNs(t0, t1);
        waitNs += elapsedNs(t1, t2);
        t0 = t2;
    }
    // Fold into the shared lane only once, after the loop: the
    // controller reads lanes after join(), so the thread join is the
    // only synchronization needed and the hot loop touches no shared
    // cache line.
    lanes[w].execNs += execNs;
    lanes[w].barrierWaitNs += waitNs;
}

void
ShardEngine::drain(const FlushFn &flush, const BarrierHook &hook)
{
    if (serial()) {
        // The Fabric keeps itself flushed with PriInternal events in
        // serial mode; one unbounded run is the whole drain.  The
        // realignment matters here too: a trailing internal event (a
        // watchdog poll) may have carried curTick past the last model
        // event, and both engines must report the same "now".
        const auto t0 = SteadyClock::now();
        queues[0]->run();
        lanes[0].execNs += elapsedNs(t0, SteadyClock::now());
        normalizeTimes();
        return;
    }

    // Route anything staged from controller context (kernel launches,
    // cache flushAll) before the first quantum.
    flush();
    if (totalPending() == 0) {
        normalizeTimes();
        return;
    }

    done = false;
    errorFlag.store(false, std::memory_order_relaxed);
    controlError = nullptr;
    workerErrors.assign(opts.threads, nullptr);
    curFlush = &flush;
    curHook = &hook;
    computeNextQuantum();

    std::vector<std::thread> pool;
    pool.reserve(opts.threads - 1);
    for (unsigned w = 1; w < opts.threads; ++w)
        pool.emplace_back([this, w] { workerLoop(w); });
    workerLoop(0);
    for (std::thread &t : pool)
        t.join();
    curFlush = nullptr;
    curHook = nullptr;

    normalizeTimes();

    if (controlError)
        std::rethrow_exception(controlError);
    for (const std::exception_ptr &e : workerErrors) {
        if (e)
            std::rethrow_exception(e);
    }
}

void
ShardEngine::normalizeTimes()
{
    // Bounded quantum runs advance idle queues' clocks to the quantum
    // bound, which can overshoot the tick the drain actually ended at
    // (the global last executed event).  Rewind every drained queue
    // to that tick so controller-context code — phase boundaries,
    // next-phase scheduling, statsSnapshot — observes exactly the
    // serial engine's notion of "now".
    Tick last = 0;
    for (const auto &q : queues)
        last = std::max(last, q->lastEventTick());
    for (const auto &q : queues) {
        // On an error path a queue may still hold events; leave its
        // clock alone (the drain is about to rethrow).
        if (q->empty())
            q->setTime(last);
    }
}

} // namespace stashsim
