#include "sim/shard_engine.hh"

#include <algorithm>
#include <limits>

#include "sim/log.hh"

namespace stashsim
{

ShardEngine::ShardEngine(const Options &o)
    : opts(o), barrier(std::max(1u, std::min(o.threads, o.tiles)))
{
    sim_assert(opts.tiles >= 1);
    opts.threads = std::max(1u, std::min(opts.threads, opts.tiles));
    if (opts.tiles > 1 && opts.lookahead < 1) {
        fatal("shard engine: mesh minimum latency is ",
              opts.lookahead,
              " ticks; sharded execution needs lookahead >= 1");
    }
    queues.reserve(opts.tiles);
    for (unsigned i = 0; i < opts.tiles; ++i)
        queues.push_back(std::make_unique<EventQueue>());
}

std::uint64_t
ShardEngine::eventsExecuted() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues)
        n += q->eventsExecuted();
    return n;
}

std::size_t
ShardEngine::totalPending() const
{
    std::size_t n = 0;
    for (const auto &q : queues)
        n += q->size();
    return n;
}

std::size_t
ShardEngine::peakLiveEvents() const
{
    std::size_t n = 0;
    for (const auto &q : queues)
        n = std::max(n, q->peakLiveEvents());
    return n;
}

std::size_t
ShardEngine::poolChunksAllocated() const
{
    std::size_t n = 0;
    for (const auto &q : queues)
        n += q->poolChunksAllocated();
    return n;
}

std::uint64_t
ShardEngine::wheelInserts() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues)
        n += q->wheelInserts();
    return n;
}

std::uint64_t
ShardEngine::farInserts() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues)
        n += q->farInserts();
    return n;
}

void
ShardEngine::computeNextQuantum()
{
    Tick base = std::numeric_limits<Tick>::max();
    for (const auto &q : queues) {
        if (!q->empty())
            base = std::min(base, q->nextTick());
    }
    // Adaptive quantum: jump straight to the earliest pending event
    // instead of stepping empty lookahead windows.  Every event
    // executed in [base, base + L - 1] stages its sends at >= base,
    // and every send takes >= L ticks to arrive, so no delivery can
    // land inside the quantum — the shards are independent within it.
    qEnd = base + opts.lookahead - 1;
    ++_quanta;
}

void
ShardEngine::onBarrier(const FlushFn &flush, const BarrierHook &hook)
{
    if (errorFlag.load(std::memory_order_relaxed)) {
        done = true;
        return;
    }
    try {
        flush();
        if (hook)
            hook(qEnd);
        if (totalPending() == 0)
            done = true;
        else
            computeNextQuantum();
    } catch (...) {
        controlError = std::current_exception();
        done = true;
    }
}

void
ShardEngine::workerLoop(unsigned w, const FlushFn &flush,
                        const BarrierHook &hook)
{
    while (!done) {
        if (!errorFlag.load(std::memory_order_relaxed)) {
            try {
                for (unsigned tile = w; tile < opts.tiles;
                     tile += opts.threads) {
                    queues[tile]->run(qEnd);
                }
            } catch (...) {
                workerErrors[w] = std::current_exception();
                errorFlag.store(true, std::memory_order_relaxed);
            }
        }
        barrier.arriveAndWait([&] { onBarrier(flush, hook); });
    }
}

void
ShardEngine::drain(const FlushFn &flush, const BarrierHook &hook)
{
    if (serial()) {
        // The Fabric keeps itself flushed with PriInternal events in
        // serial mode; one unbounded run is the whole drain.  The
        // realignment matters here too: a trailing internal event (a
        // watchdog poll) may have carried curTick past the last model
        // event, and both engines must report the same "now".
        queues[0]->run();
        normalizeTimes();
        return;
    }

    // Route anything staged from controller context (kernel launches,
    // cache flushAll) before the first quantum.
    flush();
    if (totalPending() == 0) {
        normalizeTimes();
        return;
    }

    done = false;
    errorFlag.store(false, std::memory_order_relaxed);
    controlError = nullptr;
    workerErrors.assign(opts.threads, nullptr);
    computeNextQuantum();

    std::vector<std::thread> pool;
    pool.reserve(opts.threads - 1);
    for (unsigned w = 1; w < opts.threads; ++w) {
        pool.emplace_back(
            [this, w, &flush, &hook] { workerLoop(w, flush, hook); });
    }
    workerLoop(0, flush, hook);
    for (std::thread &t : pool)
        t.join();

    normalizeTimes();

    if (controlError)
        std::rethrow_exception(controlError);
    for (const std::exception_ptr &e : workerErrors) {
        if (e)
            std::rethrow_exception(e);
    }
}

void
ShardEngine::normalizeTimes()
{
    // Bounded quantum runs advance idle queues' clocks to the quantum
    // bound, which can overshoot the tick the drain actually ended at
    // (the global last executed event).  Rewind every drained queue
    // to that tick so controller-context code — phase boundaries,
    // next-phase scheduling, statsSnapshot — observes exactly the
    // serial engine's notion of "now".
    Tick last = 0;
    for (const auto &q : queues)
        last = std::max(last, q->lastEventTick());
    for (const auto &q : queues) {
        // On an error path a queue may still hold events; leave its
        // clock alone (the drain is about to rethrow).
        if (q->empty())
            q->setTime(last);
    }
}

} // namespace stashsim
