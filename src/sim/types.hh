/**
 * @file
 * Fundamental simulator-wide type aliases and geometry constants.
 *
 * The simulated system reproduces Table 2 of the Stash paper (ISCA'15):
 * a tightly integrated CPU-GPU chip with a 4x4 mesh, 2 GHz CPU cores and
 * 700 MHz GPU compute units.  Time is measured in abstract ticks chosen
 * so that both clock periods are exact integers: with 14e9 ticks per
 * second, a 2 GHz CPU cycle is 7 ticks and a 700 MHz GPU cycle is 20
 * ticks.
 */

#ifndef STASHSIM_SIM_TYPES_HH
#define STASHSIM_SIM_TYPES_HH

#include <cstdint>

namespace stashsim
{

/** Simulated time in ticks (1 tick = 1/14e9 s). */
using Tick = std::uint64_t;

/** A count of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** Ticks per simulated second (14 GHz tick rate; see file comment). */
constexpr Tick ticksPerSecond = 14ull * 1000 * 1000 * 1000;

/** Clock period of a 2 GHz CPU core, in ticks. */
constexpr Tick cpuClockPeriod = 7;

/** Clock period of a 700 MHz GPU CU (and the uncore), in ticks. */
constexpr Tick gpuClockPeriod = 20;

/** A global virtual address. */
using Addr = std::uint64_t;

/** A physical address. */
using PhysAddr = std::uint64_t;

/** An address local to one stash or scratchpad (byte offset). */
using LocalAddr = std::uint32_t;

/** Identifies a node on the mesh (CPU core, GPU CU, or L2 bank). */
using NodeId = std::uint32_t;

/** Identifies a core (CPU or GPU CU) for coherence registration. */
using CoreId = std::uint32_t;

/** Sentinel for "no core". */
constexpr CoreId invalidCore = ~CoreId{0};

/** Bytes per machine word; coherence state is kept per word. */
constexpr unsigned wordBytes = 4;

/** Bytes per cache line. */
constexpr unsigned lineBytes = 64;

/** Words per cache line. */
constexpr unsigned wordsPerLine = lineBytes / wordBytes;

/** Bytes per virtual-memory page. */
constexpr unsigned pageBytes = 4096;

/** Bytes per network flit (Garnet-style 128-bit flits). */
constexpr unsigned flitBytes = 16;

/** Returns the line-aligned base of @p a. */
constexpr Addr lineBase(Addr a) { return a & ~Addr{lineBytes - 1}; }

/** Returns the word index of @p a within its cache line. */
constexpr unsigned lineWord(Addr a)
{
    return unsigned((a / wordBytes) % wordsPerLine);
}

/** Returns the page-aligned base of @p a. */
constexpr Addr pageBase(Addr a) { return a & ~Addr{pageBytes - 1}; }

/** Returns the word-aligned base of @p a. */
constexpr Addr wordBase(Addr a) { return a & ~Addr{wordBytes - 1}; }

} // namespace stashsim

#endif // STASHSIM_SIM_TYPES_HH
