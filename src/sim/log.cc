#include "sim/log.hh"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

namespace stashsim
{

namespace
{

// The hook registry is process-global while Systems are per-thread
// in a parallel sweep, so (un)registration must be mutex-protected.
// The mutex is not held while hooks run: a hook may (un)register
// other hooks, and flushing happens on a failure path where another
// thread's registration racing a copy of the list is acceptable.

std::mutex &
hooksMutex()
{
    static std::mutex m;
    return m;
}

std::vector<std::pair<std::size_t, DiagnosticHook>> &
diagnosticHooks()
{
    static std::vector<std::pair<std::size_t, DiagnosticHook>> hooks;
    return hooks;
}

std::size_t nextHookId = 1;

} // namespace

std::size_t
registerDiagnosticHook(DiagnosticHook hook)
{
    std::lock_guard<std::mutex> lock(hooksMutex());
    const std::size_t id = nextHookId++;
    diagnosticHooks().emplace_back(id, std::move(hook));
    return id;
}

void
unregisterDiagnosticHook(std::size_t id)
{
    std::lock_guard<std::mutex> lock(hooksMutex());
    auto &hooks = diagnosticHooks();
    for (auto it = hooks.begin(); it != hooks.end(); ++it) {
        if (it->first == id) {
            hooks.erase(it);
            return;
        }
    }
}

void
flushDiagnosticHooks()
{
    // Reentrancy guard: a hook that panics (or a panic inside a
    // panic) must not flush again (per thread).
    thread_local bool flushing = false;
    if (flushing)
        return;
    flushing = true;
    // Pick one not-yet-run hook at a time under the lock and run it
    // unlocked: a hook may (un)register other hooks, and ones
    // appended mid-flush must also run (each at most once).
    std::vector<std::size_t> ran;
    while (true) {
        std::pair<std::size_t, DiagnosticHook> todo{0, nullptr};
        {
            std::lock_guard<std::mutex> lock(hooksMutex());
            for (const auto &entry : diagnosticHooks()) {
                if (std::find(ran.begin(), ran.end(), entry.first) ==
                    ran.end()) {
                    todo = entry;
                    break;
                }
            }
        }
        if (todo.first == 0)
            break;
        ran.push_back(todo.first);
        if (todo.second)
            todo.second();
    }
    flushing = false;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    flushDiagnosticHooks();
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    flushDiagnosticHooks();
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    // Throw rather than exit so tests can assert on fatal conditions.
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << std::endl;
}

bool
tracePA(std::uint64_t pa)
{
    static const std::uint64_t traced = []() -> std::uint64_t {
        const char *env = std::getenv("STASHSIM_TRACE_PA");
        return env ? std::strtoull(env, nullptr, 16) : 0;
    }();
    return traced != 0 && (pa & ~std::uint64_t{63}) == traced;
}

} // namespace stashsim
