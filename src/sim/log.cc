#include "sim/log.hh"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace stashsim
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    // Throw rather than exit so tests can assert on fatal conditions.
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << std::endl;
}

bool
tracePA(std::uint64_t pa)
{
    static const std::uint64_t traced = []() -> std::uint64_t {
        const char *env = std::getenv("STASHSIM_TRACE_PA");
        return env ? std::strtoull(env, nullptr, 16) : 0;
    }();
    return traced != 0 && (pa & ~std::uint64_t{63}) == traced;
}

} // namespace stashsim
