#include "sim/log.hh"

#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <utility>
#include <vector>

namespace stashsim
{

namespace
{

std::vector<std::pair<std::size_t, DiagnosticHook>> &
diagnosticHooks()
{
    static std::vector<std::pair<std::size_t, DiagnosticHook>> hooks;
    return hooks;
}

std::size_t nextHookId = 1;

} // namespace

std::size_t
registerDiagnosticHook(DiagnosticHook hook)
{
    const std::size_t id = nextHookId++;
    diagnosticHooks().emplace_back(id, std::move(hook));
    return id;
}

void
unregisterDiagnosticHook(std::size_t id)
{
    auto &hooks = diagnosticHooks();
    for (auto it = hooks.begin(); it != hooks.end(); ++it) {
        if (it->first == id) {
            hooks.erase(it);
            return;
        }
    }
}

void
flushDiagnosticHooks()
{
    // Reentrancy guard: a hook that panics (or a panic inside a
    // panic) must not flush again.
    static bool flushing = false;
    if (flushing)
        return;
    flushing = true;
    // Index-based loop: a hook may (un)register other hooks.
    auto &hooks = diagnosticHooks();
    for (std::size_t i = 0; i < hooks.size(); ++i) {
        if (hooks[i].second)
            hooks[i].second();
    }
    flushing = false;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    flushDiagnosticHooks();
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    flushDiagnosticHooks();
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    // Throw rather than exit so tests can assert on fatal conditions.
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << std::endl;
}

bool
tracePA(std::uint64_t pa)
{
    static const std::uint64_t traced = []() -> std::uint64_t {
        const char *env = std::getenv("STASHSIM_TRACE_PA");
        return env ? std::strtoull(env, nullptr, 16) : 0;
    }();
    return traced != 0 && (pa & ~std::uint64_t{63}) == traced;
}

} // namespace stashsim
