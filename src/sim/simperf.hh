/**
 * @file
 * SimPerf: host-side throughput observability for the event kernel.
 *
 * The simulator's own performance — how fast the host executes
 * simulated events — was previously guessed from wall-clock runs of
 * the bench suite.  SimPerf measures it: attached to the driver's
 * phase-hub EventQueue as a PhaseListener, it samples host time
 * (steady_clock) and the engine's cumulative event counter at every
 * phase boundary, and aggregates per-phase-name totals plus whole-run
 * events/sec and sim-ticks per host-second.
 *
 * The counters are read through sampler functions, not a fixed queue
 * reference: a serial run samples its one EventQueue, a sharded run
 * samples the ShardEngine's per-tile aggregate.  Queue-shape counters
 * (peak live events, pool chunks, wheel vs far-heap insert split) ride
 * along so queue tuning is measured rather than guessed.
 *
 * The System driver owns one SimPerf per run and copies its summary
 * into RunResult::perf; stashbench rolls the per-run summaries into
 * the schema-tagged BENCH_simperf.json artifact so every PR's perf
 * trajectory is measured, not guessed.  Host timings are inherently
 * non-deterministic, so they are kept out of the deterministic bench
 * documents — only the event/tick counts (which are simulation
 * state, identical run to run) appear there.
 */

#ifndef STASHSIM_SIM_SIMPERF_HH
#define STASHSIM_SIM_SIMPERF_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/shard_engine.hh"
#include "sim/types.hh"

namespace stashsim
{

/** Per-phase-name rollup (phases repeat; totals aggregate by name). */
struct SimPerfPhase
{
    std::string name;
    std::uint64_t count = 0;  //!< times a phase with this name ran
    std::uint64_t events = 0; //!< events executed inside those phases
    double hostSeconds = 0;   //!< host wall-clock spent inside them
};

/**
 * Event-pool/queue-shape snapshot (lifetime counters; sharded runs
 * aggregate across tiles — peak is a max, the rest are sums).
 */
struct QueueShape
{
    std::uint64_t peakLiveEvents = 0;
    std::uint64_t poolChunks = 0;
    std::uint64_t wheelInserts = 0;
    std::uint64_t farInserts = 0;
};

/** Whole-run throughput summary (RunResult::perf). */
struct SimPerfSummary
{
    std::uint64_t events = 0; //!< events executed during the run
    Tick simTicks = 0;        //!< simulated ticks covered by the run
    double hostSeconds = 0;   //!< host wall-clock of the whole run
    QueueShape shape;         //!< queue-shape counters at summary time
    /** Engine drain-loop wall-clock split (exec vs barrier vs flush,
     * per-shard lanes); zero-valued for serial engines except
     * execNs.  Host timings, so BENCH_simperf.json only. */
    EngineBreakdown engine;
    std::vector<SimPerfPhase> phases; //!< first-seen name order

    double
    eventsPerHostSec() const
    {
        return hostSeconds > 0 ? double(events) / hostSeconds : 0;
    }

    double
    ticksPerHostSec() const
    {
        return hostSeconds > 0 ? double(simTicks) / hostSeconds : 0;
    }
};

/**
 * Measures one simulation engine; see file comment.
 */
class SimPerf : public PhaseListener
{
  public:
    /** Counter sources; called only from controller context. */
    struct Sources
    {
        std::function<std::uint64_t()> events;
        std::function<Tick()> tick;
        std::function<QueueShape()> shape; //!< may be null
        std::function<EngineBreakdown()> engine; //!< may be null
    };

    explicit SimPerf(Sources sources);

    /** Convenience: measures a single queue directly. */
    explicit SimPerf(const EventQueue &eq);

    /**
     * Restarts the measurement window at "now" (System::run calls
     * this first, so construction-to-run setup time is excluded).
     */
    void runBegin();

    /**
     * Overrides the measurement window's baseline counters.  A run
     * restored from a checkpoint starts its engine at the checkpoint
     * tick with the checkpoint's cumulative event count, but its
     * deterministic perf{events,simTicks} must cover the whole run —
     * the resume-parity contract — so the driver rebases to the
     * pre-restore origin (0, 0) after runBegin().
     */
    void
    rebase(std::uint64_t events0, Tick tick0)
    {
        eventsAtStart = events0;
        tickAtStart = tick0;
    }

    /** Everything measured since runBegin(). */
    SimPerfSummary summary() const;

    /** @{ Live samples, for StatsRegistry derived values. */
    double hostSecondsNow() const;
    double eventsNow() const;
    double eventsPerSecNow() const;
    double ticksPerHostSecNow() const;
    /** @} */

    void phaseBegin(const char *name, Tick at) override;
    void phaseEnd(const char *name, Tick at) override;

  private:
    using HostClock = std::chrono::steady_clock;

    SimPerfPhase &phaseTotals(const char *name);

    Sources src;
    HostClock::time_point start;
    std::uint64_t eventsAtStart = 0;
    Tick tickAtStart = 0;

    bool open = false; //!< inside a phaseBegin/phaseEnd bracket
    HostClock::time_point openStart;
    std::uint64_t openEvents = 0;

    std::vector<SimPerfPhase> phases;
};

} // namespace stashsim

#endif // STASHSIM_SIM_SIMPERF_HH
