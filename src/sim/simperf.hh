/**
 * @file
 * SimPerf: host-side throughput observability for one EventQueue.
 *
 * The simulator's own performance — how fast the host executes
 * simulated events — was previously guessed from wall-clock runs of
 * the bench suite.  SimPerf measures it: attached to an EventQueue as
 * a PhaseListener, it samples host time (steady_clock) and the
 * queue's cumulative event counter at every phase boundary, and
 * aggregates per-phase-name totals plus whole-run events/sec and
 * sim-ticks per host-second.
 *
 * The System driver owns one SimPerf per run and copies its summary
 * into RunResult::perf; stashbench rolls the per-run summaries into
 * the schema-tagged BENCH_simperf.json artifact so every PR's perf
 * trajectory is measured, not guessed.  Host timings are inherently
 * non-deterministic, so they are kept out of the deterministic bench
 * documents — only the event/tick counts (which are simulation
 * state, identical run to run) appear there.
 */

#ifndef STASHSIM_SIM_SIMPERF_HH
#define STASHSIM_SIM_SIMPERF_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace stashsim
{

/** Per-phase-name rollup (phases repeat; totals aggregate by name). */
struct SimPerfPhase
{
    std::string name;
    std::uint64_t count = 0;  //!< times a phase with this name ran
    std::uint64_t events = 0; //!< events executed inside those phases
    double hostSeconds = 0;   //!< host wall-clock spent inside them
};

/** Whole-run throughput summary (RunResult::perf). */
struct SimPerfSummary
{
    std::uint64_t events = 0; //!< events executed during the run
    Tick simTicks = 0;        //!< simulated ticks covered by the run
    double hostSeconds = 0;   //!< host wall-clock of the whole run
    std::vector<SimPerfPhase> phases; //!< first-seen name order

    double
    eventsPerHostSec() const
    {
        return hostSeconds > 0 ? double(events) / hostSeconds : 0;
    }

    double
    ticksPerHostSec() const
    {
        return hostSeconds > 0 ? double(simTicks) / hostSeconds : 0;
    }
};

/**
 * Measures one event queue; see file comment.
 */
class SimPerf : public PhaseListener
{
  public:
    explicit SimPerf(const EventQueue &eq);

    /**
     * Restarts the measurement window at "now" (System::run calls
     * this first, so construction-to-run setup time is excluded).
     */
    void runBegin();

    /** Everything measured since runBegin(). */
    SimPerfSummary summary() const;

    /** @{ Live samples, for StatsRegistry derived values. */
    double hostSecondsNow() const;
    double eventsNow() const;
    double eventsPerSecNow() const;
    double ticksPerHostSecNow() const;
    /** @} */

    void phaseBegin(const char *name, Tick at) override;
    void phaseEnd(const char *name, Tick at) override;

  private:
    using HostClock = std::chrono::steady_clock;

    SimPerfPhase &phaseTotals(const char *name);

    const EventQueue &eq;
    HostClock::time_point start;
    std::uint64_t eventsAtStart = 0;
    Tick tickAtStart = 0;

    bool open = false; //!< inside a phaseBegin/phaseEnd bracket
    HostClock::time_point openStart;
    std::uint64_t openEvents = 0;

    std::vector<SimPerfPhase> phases;
};

} // namespace stashsim

#endif // STASHSIM_SIM_SIMPERF_HH
