/**
 * @file
 * `--shards 0` auto-tune: picks the worker count for a sharded run
 * from a quantum-size-vs-barrier-cost model.
 *
 * The sharded engine's speedup is governed by one ratio: how much
 * event work a quantum holds versus what a barrier crossing costs.
 * With E events per quantum at c host-ns each, k workers spend about
 *
 *     T(k) = E*c/k + b*k        ns per quantum,
 *
 * where b is the measured per-party cost of one QuantumBarrier
 * crossing (arrival contention and release wakeups both scale with
 * the party count, hence the b*k term).  autoTuneShards() evaluates
 * T(k) over the power-of-two candidates up to min(tiles, hardware
 * threads) and returns the smallest k minimizing it — requiring at
 * least a 10% win over k=1 so noise never flips a serial-friendly
 * workload into paying quantum overheads the model cannot see.
 *
 * E and c come from a calibration prologue: the run's first drain
 * executes with one worker, then System feeds the engine's event,
 * quantum, and exec-time counters here.  E (events per quantum) is
 * host-independent, so the decision is deterministic given the same
 * measured b and c — and b is measured once per process
 * (measuredBarrierCrossNs()), so every run in a sweep sees the same
 * inputs.  See DESIGN.md section 16.
 */

#ifndef STASHSIM_SIM_SHARD_AUTOTUNE_HH
#define STASHSIM_SIM_SHARD_AUTOTUNE_HH

#include <cstdint>
#include <vector>

namespace stashsim
{

/** Model inputs; see the file comment for the cost model. */
struct AutoTuneInputs
{
    unsigned tiles = 1;     //!< queue shards available (mesh nodes)
    unsigned hwThreads = 1; //!< host hardware concurrency
    std::uint64_t events = 0; //!< events in the calibration window
    std::uint64_t quanta = 0; //!< barriers crossed in the window
    std::uint64_t execNs = 0; //!< host ns executing those events
    /** Measured cost of one barrier crossing, per party. */
    std::uint64_t barrierCrossNs = 0;
};

/** One evaluated candidate: predicted ns per quantum at k workers. */
struct AutoTuneCandidate
{
    unsigned workers = 1;
    double nsPerQuantum = 0;
};

struct AutoTuneDecision
{
    unsigned workers = 1;
    double eventsPerQuantum = 0; //!< E: host-independent
    double nsPerEvent = 0;       //!< c: measured
    std::vector<AutoTuneCandidate> candidates;
};

/**
 * Picks the worker count.  Pure function of its inputs — the same
 * inputs always yield the same decision (pinned by tests).  No
 * signal (zero events or quanta) or a single-threaded host yields
 * workers=1.
 */
AutoTuneDecision autoTuneShards(const AutoTuneInputs &in);

/**
 * Host cost of one QuantumBarrier crossing per party, measured once
 * per process with a two-party ping microbenchmark and cached, so
 * every run in a sweep tunes from identical inputs.
 */
std::uint64_t measuredBarrierCrossNs();

} // namespace stashsim

#endif // STASHSIM_SIM_SHARD_AUTOTUNE_HH
