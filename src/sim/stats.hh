/**
 * @file
 * Typed statistics counters for every subsystem.
 *
 * Each hardware component owns one of the plain counter structs below;
 * the System driver aggregates them into a SystemStats snapshot at the
 * end of a run.  The energy model (src/energy) turns a SystemStats into
 * the paper's five-way dynamic-energy breakdown, and the benches print
 * the figures directly from these counts, so every number in the
 * reproduced tables/figures is traceable to a named counter here.
 *
 * Every struct enumerates its counters exactly once, through a static
 * visit() template; add/sub/flatten and the report subsystem
 * (src/report: StatsRegistry, JSON/CSV sinks) are all derived from
 * that single enumeration, so adding a counter is a one-line change
 * and it shows up everywhere — aggregation, reports, and the
 * flatten() parity contract — automatically.  Counter updates on the
 * simulation hot path remain plain field increments.
 */

#ifndef STASHSIM_SIM_STATS_HH
#define STASHSIM_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace stashsim
{

using Counter = std::uint64_t;

/**
 * Element-wise a += b / a -= b over two instances of one stats
 * struct, driven by the struct's own visit() enumeration.  Not a hot
 * path: aggregation happens at snapshot points, not per access.
 */
template <class S>
void
statsAdd(S &a, const S &b)
{
    std::vector<Counter *> dst;
    S::visit(a, [&](const char *, Counter &c) { dst.push_back(&c); });
    std::size_t i = 0;
    S::visit(b,
             [&](const char *, const Counter &c) { *dst[i++] += c; });
}

template <class S>
void
statsSub(S &a, const S &b)
{
    std::vector<Counter *> dst;
    S::visit(a, [&](const char *, Counter &c) { dst.push_back(&c); });
    std::size_t i = 0;
    S::visit(b,
             [&](const char *, const Counter &c) { *dst[i++] -= c; });
}

/** Message classes tracked by the NoC (paper Figure 5d). */
enum class MsgClass : unsigned
{
    Read = 0,  //!< load requests/responses, incl. remote forwards
    Write = 1, //!< registration (store-ownership) traffic
    Writeback = 2,
    NumClasses = 3
};

/** Name of a message class, for reports. */
const char *msgClassName(MsgClass c);

/** Network statistics (flit crossings per Garnet terminology). */
struct NocStats
{
    std::array<Counter, 3> flitHops{}; //!< indexed by MsgClass
    Counter packets = 0;

    template <class Self, class F>
    static void
    visit(Self &s, F &&f)
    {
        f("flitHops.read", s.flitHops[0]);
        f("flitHops.write", s.flitHops[1]);
        f("flitHops.writeback", s.flitHops[2]);
        f("packets", s.packets);
    }

    Counter
    totalFlitHops() const
    {
        return flitHops[0] + flitHops[1] + flitHops[2];
    }

    void add(const NocStats &o) { statsAdd(*this, o); }
    void sub(const NocStats &o) { statsSub(*this, o); }
};

/** L1 cache statistics (per cache; aggregated by the driver). */
struct CacheStats
{
    Counter loadHits = 0;
    Counter loadMisses = 0;
    Counter storeHits = 0;
    Counter storeMisses = 0;
    Counter hitWords = 0;  //!< lane-level (per-word) hit accesses
    Counter missWords = 0; //!< lane-level (per-word) miss accesses
    Counter evictions = 0;
    Counter writebacks = 0;     //!< lines written back (had dirty words)
    Counter wordsWrittenBack = 0;
    Counter tlbAccesses = 0;
    Counter remoteHits = 0;     //!< forwarded requests served by this L1
    Counter selfInvalidations = 0; //!< words dropped at kernel bounds

    template <class Self, class F>
    static void
    visit(Self &s, F &&f)
    {
        f("loadHits", s.loadHits);
        f("loadMisses", s.loadMisses);
        f("storeHits", s.storeHits);
        f("storeMisses", s.storeMisses);
        f("hitWords", s.hitWords);
        f("missWords", s.missWords);
        f("evictions", s.evictions);
        f("writebacks", s.writebacks);
        f("wordsWrittenBack", s.wordsWrittenBack);
        f("tlbAccesses", s.tlbAccesses);
        f("remoteHits", s.remoteHits);
        f("selfInvalidations", s.selfInvalidations);
    }

    Counter hits() const { return loadHits + storeHits; }
    Counter misses() const { return loadMisses + storeMisses; }
    Counter accesses() const { return hits() + misses(); }

    void add(const CacheStats &o) { statsAdd(*this, o); }
    void sub(const CacheStats &o) { statsSub(*this, o); }
};

/** Scratchpad statistics. */
struct ScratchpadStats
{
    Counter reads = 0;
    Counter writes = 0;

    template <class Self, class F>
    static void
    visit(Self &s, F &&f)
    {
        f("reads", s.reads);
        f("writes", s.writes);
    }

    Counter accesses() const { return reads + writes; }

    void add(const ScratchpadStats &o) { statsAdd(*this, o); }
    void sub(const ScratchpadStats &o) { statsSub(*this, o); }
};

/** Stash statistics (per stash; aggregated by the driver). */
struct StashStats
{
    Counter loadHits = 0;
    Counter loadMisses = 0;
    Counter storeHits = 0;      //!< stores to already-registered words
    Counter storeMisses = 0;    //!< stores needing registration
    Counter hitWords = 0;  //!< lane-level (per-word) hit accesses
    Counter missWords = 0; //!< lane-level (per-word) miss accesses
    Counter translations = 0;   //!< stash->global translations performed
    Counter vpMapAccesses = 0;  //!< TLB/RTLB lookups in the VP-map
    Counter addMaps = 0;
    Counter chgMaps = 0;
    Counter lazyWritebackChunks = 0;
    Counter wordsWrittenBack = 0;
    Counter remoteHits = 0;     //!< remote requests served by this stash
    Counter replicationHits = 0; //!< misses avoided by the reuse opt
    Counter selfInvalidations = 0;
    Counter mapReplacementStalls = 0; //!< blocking map-entry writebacks
    Counter vpMapOverflows = 0; //!< live mappings exceeded VP capacity

    template <class Self, class F>
    static void
    visit(Self &s, F &&f)
    {
        f("loadHits", s.loadHits);
        f("loadMisses", s.loadMisses);
        f("storeHits", s.storeHits);
        f("storeMisses", s.storeMisses);
        f("hitWords", s.hitWords);
        f("missWords", s.missWords);
        f("translations", s.translations);
        f("vpMapAccesses", s.vpMapAccesses);
        f("addMaps", s.addMaps);
        f("chgMaps", s.chgMaps);
        f("lazyWritebackChunks", s.lazyWritebackChunks);
        f("wordsWrittenBack", s.wordsWrittenBack);
        f("remoteHits", s.remoteHits);
        f("replicationHits", s.replicationHits);
        f("selfInvalidations", s.selfInvalidations);
        f("mapReplacementStalls", s.mapReplacementStalls);
        f("vpMapOverflows", s.vpMapOverflows);
    }

    Counter hits() const { return loadHits + storeHits; }
    Counter misses() const { return loadMisses + storeMisses; }
    Counter accesses() const { return hits() + misses(); }

    void add(const StashStats &o) { statsAdd(*this, o); }
    void sub(const StashStats &o) { statsSub(*this, o); }
};

/** LLC (shared L2) statistics. */
struct LlcStats
{
    Counter reads = 0;          //!< read requests served
    Counter registrations = 0;  //!< words registered
    Counter writebacksRecv = 0; //!< writeback words absorbed
    Counter remoteForwards = 0; //!< requests forwarded to an owner
    Counter invalidationsSent = 0;
    Counter fills = 0;          //!< lines fetched from memory
    Counter memWrites = 0;      //!< dirty lines evicted to memory
    Counter recalls = 0;        //!< registered lines recalled on evict
    Counter accesses = 0;       //!< total data-array accesses

    template <class Self, class F>
    static void
    visit(Self &s, F &&f)
    {
        f("reads", s.reads);
        f("registrations", s.registrations);
        f("writebacksRecv", s.writebacksRecv);
        f("remoteForwards", s.remoteForwards);
        f("invalidationsSent", s.invalidationsSent);
        f("fills", s.fills);
        f("memWrites", s.memWrites);
        f("recalls", s.recalls);
        f("accesses", s.accesses);
    }

    void add(const LlcStats &o) { statsAdd(*this, o); }
    void sub(const LlcStats &o) { statsSub(*this, o); }
};

/**
 * Memory-backend statistics (src/mem/backend).  One struct covers
 * all backend kinds; counters a model does not use stay zero (the
 * fixed backend only moves reads/writes).
 */
struct MemBackendStats
{
    Counter reads = 0;  //!< line fills requested by the LLC
    Counter writes = 0; //!< dirty-line writebacks absorbed
    /** Extra ticks reads spent queued behind writes or a busy
     *  channel, beyond the backend's unloaded read latency. */
    Counter readStallTicks = 0;
    Counter writePauses = 0; //!< sttmram: writes paused by a read
    Counter dcacheHits = 0;  //!< scmcache: DRAM-cache line hits
    Counter dcacheMisses = 0;
    Counter scmReads = 0;  //!< scmcache: lines fetched from SCM
    Counter scmWrites = 0; //!< scmcache: dirty lines spilled to SCM

    template <class Self, class F>
    static void
    visit(Self &s, F &&f)
    {
        f("reads", s.reads);
        f("writes", s.writes);
        f("readStallTicks", s.readStallTicks);
        f("writePauses", s.writePauses);
        f("dcacheHits", s.dcacheHits);
        f("dcacheMisses", s.dcacheMisses);
        f("scmReads", s.scmReads);
        f("scmWrites", s.scmWrites);
    }

    void add(const MemBackendStats &o) { statsAdd(*this, o); }
    void sub(const MemBackendStats &o) { statsSub(*this, o); }
};

/** DMA engine statistics (ScratchGD configuration). */
struct DmaStats
{
    Counter transfers = 0;
    Counter wordsLoaded = 0;
    Counter wordsStored = 0;

    template <class Self, class F>
    static void
    visit(Self &s, F &&f)
    {
        f("transfers", s.transfers);
        f("wordsLoaded", s.wordsLoaded);
        f("wordsStored", s.wordsStored);
    }

    void add(const DmaStats &o) { statsAdd(*this, o); }
    void sub(const DmaStats &o) { statsSub(*this, o); }
};

/** GPU compute-unit statistics. */
struct GpuStats
{
    Counter instructions = 0;   //!< warp instructions issued
    Counter computeOps = 0;
    Counter globalLoads = 0;
    Counter globalStores = 0;
    Counter localLoads = 0;     //!< scratchpad or stash loads
    Counter localStores = 0;
    Counter barriers = 0;
    Counter idleCycles = 0;     //!< cycles with no warp ready
    Counter threadBlocks = 0;
    Counter kernels = 0;

    template <class Self, class F>
    static void
    visit(Self &s, F &&f)
    {
        f("instructions", s.instructions);
        f("computeOps", s.computeOps);
        f("globalLoads", s.globalLoads);
        f("globalStores", s.globalStores);
        f("localLoads", s.localLoads);
        f("localStores", s.localStores);
        f("barriers", s.barriers);
        f("idleCycles", s.idleCycles);
        f("threadBlocks", s.threadBlocks);
        f("kernels", s.kernels);
    }

    void add(const GpuStats &o) { statsAdd(*this, o); }
    void sub(const GpuStats &o) { statsSub(*this, o); }
};

/** CPU core statistics. */
struct CpuStats
{
    Counter loads = 0;
    Counter stores = 0;

    template <class Self, class F>
    static void
    visit(Self &s, F &&f)
    {
        f("loads", s.loads);
        f("stores", s.stores);
    }

    void add(const CpuStats &o) { statsAdd(*this, o); }
    void sub(const CpuStats &o) { statsSub(*this, o); }
};

/** Aggregated snapshot of every counter in the system. */
struct SystemStats
{
    GpuStats gpu;
    CpuStats cpu;
    CacheStats gpuL1;   //!< all GPU L1s
    CacheStats cpuL1;   //!< all CPU L1s
    ScratchpadStats scratch;
    StashStats stash;
    LlcStats llc;
    MemBackendStats memback;
    NocStats noc;
    DmaStats dma;
    Cycles gpuCycles = 0; //!< end-to-end run length in GPU cycles
    Counter numGpuCus = 0; //!< CUs in the system (not subtracted)

    /**
     * Enumerates the counter groups with their canonical report
     * prefixes.  f is called as f(prefix, group-struct); flatten()
     * and the report subsystem both build on this.
     */
    template <class Self, class F>
    static void
    visitGroups(Self &s, F &&f)
    {
        f("gpu", s.gpu);
        f("cpu", s.cpu);
        f("gpuL1", s.gpuL1);
        f("cpuL1", s.cpuL1);
        f("scratch", s.scratch);
        f("stash", s.stash);
        f("llc", s.llc);
        f("memback", s.memback);
        f("noc", s.noc);
        f("dma", s.dma);
    }

    /**
     * Subtracts a baseline snapshot (all counters are monotonic), so
     * a measurement window can exclude warm-up phases.
     */
    void
    sub(const SystemStats &o)
    {
        gpu.sub(o.gpu);
        cpu.sub(o.cpu);
        gpuL1.sub(o.gpuL1);
        cpuL1.sub(o.cpuL1);
        scratch.sub(o.scratch);
        stash.sub(o.stash);
        llc.sub(o.llc);
        memback.sub(o.memback);
        noc.sub(o.noc);
        dma.sub(o.dma);
        gpuCycles -= o.gpuCycles;
        // numGpuCus is structural, not a counter.
    }

    /**
     * Flattens every counter into a name->value map for reports:
     * every raw counter of every group under its canonical prefix,
     * plus the derived totals (hits/misses/accesses, flit-hop total)
     * and the sim.* scalars.  Superset of the legacy hand-written
     * key list; names are "<group>.<counter>".
     */
    std::map<std::string, double> flatten() const;
};

} // namespace stashsim

#endif // STASHSIM_SIM_STATS_HH
