/**
 * @file
 * Typed statistics counters for every subsystem.
 *
 * Each hardware component owns one of the plain counter structs below;
 * the System driver aggregates them into a SystemStats snapshot at the
 * end of a run.  The energy model (src/energy) turns a SystemStats into
 * the paper's five-way dynamic-energy breakdown, and the benches print
 * the figures directly from these counts, so every number in the
 * reproduced tables/figures is traceable to a named counter here.
 */

#ifndef STASHSIM_SIM_STATS_HH
#define STASHSIM_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "sim/types.hh"

namespace stashsim
{

using Counter = std::uint64_t;

/** Message classes tracked by the NoC (paper Figure 5d). */
enum class MsgClass : unsigned
{
    Read = 0,  //!< load requests/responses, incl. remote forwards
    Write = 1, //!< registration (store-ownership) traffic
    Writeback = 2,
    NumClasses = 3
};

/** Name of a message class, for reports. */
const char *msgClassName(MsgClass c);

/** Network statistics (flit crossings per Garnet terminology). */
struct NocStats
{
    std::array<Counter, 3> flitHops{}; //!< indexed by MsgClass
    Counter packets = 0;

    Counter
    totalFlitHops() const
    {
        return flitHops[0] + flitHops[1] + flitHops[2];
    }

    void
    add(const NocStats &o)
    {
        for (int i = 0; i < 3; ++i)
            flitHops[i] += o.flitHops[i];
        packets += o.packets;
    }

    void
    sub(const NocStats &o)
    {
        for (int i = 0; i < 3; ++i)
            flitHops[i] -= o.flitHops[i];
        packets -= o.packets;
    }
};

/** L1 cache statistics (per cache; aggregated by the driver). */
struct CacheStats
{
    Counter loadHits = 0;
    Counter loadMisses = 0;
    Counter storeHits = 0;
    Counter storeMisses = 0;
    Counter hitWords = 0;  //!< lane-level (per-word) hit accesses
    Counter missWords = 0; //!< lane-level (per-word) miss accesses
    Counter evictions = 0;
    Counter writebacks = 0;     //!< lines written back (had dirty words)
    Counter wordsWrittenBack = 0;
    Counter tlbAccesses = 0;
    Counter remoteHits = 0;     //!< forwarded requests served by this L1
    Counter selfInvalidations = 0; //!< words dropped at kernel bounds

    Counter hits() const { return loadHits + storeHits; }
    Counter misses() const { return loadMisses + storeMisses; }
    Counter accesses() const { return hits() + misses(); }

    void
    add(const CacheStats &o)
    {
        loadHits += o.loadHits;
        loadMisses += o.loadMisses;
        storeHits += o.storeHits;
        storeMisses += o.storeMisses;
        hitWords += o.hitWords;
        missWords += o.missWords;
        evictions += o.evictions;
        writebacks += o.writebacks;
        wordsWrittenBack += o.wordsWrittenBack;
        tlbAccesses += o.tlbAccesses;
        remoteHits += o.remoteHits;
        selfInvalidations += o.selfInvalidations;
    }

    void
    sub(const CacheStats &o)
    {
        loadHits -= o.loadHits;
        loadMisses -= o.loadMisses;
        storeHits -= o.storeHits;
        storeMisses -= o.storeMisses;
        hitWords -= o.hitWords;
        missWords -= o.missWords;
        evictions -= o.evictions;
        writebacks -= o.writebacks;
        wordsWrittenBack -= o.wordsWrittenBack;
        tlbAccesses -= o.tlbAccesses;
        remoteHits -= o.remoteHits;
        selfInvalidations -= o.selfInvalidations;
    }
};

/** Scratchpad statistics. */
struct ScratchpadStats
{
    Counter reads = 0;
    Counter writes = 0;

    Counter accesses() const { return reads + writes; }

    void
    add(const ScratchpadStats &o)
    {
        reads += o.reads;
        writes += o.writes;
    }

    void
    sub(const ScratchpadStats &o)
    {
        reads -= o.reads;
        writes -= o.writes;
    }
};

/** Stash statistics (per stash; aggregated by the driver). */
struct StashStats
{
    Counter loadHits = 0;
    Counter loadMisses = 0;
    Counter storeHits = 0;      //!< stores to already-registered words
    Counter storeMisses = 0;    //!< stores needing registration
    Counter hitWords = 0;  //!< lane-level (per-word) hit accesses
    Counter missWords = 0; //!< lane-level (per-word) miss accesses
    Counter translations = 0;   //!< stash->global translations performed
    Counter vpMapAccesses = 0;  //!< TLB/RTLB lookups in the VP-map
    Counter addMaps = 0;
    Counter chgMaps = 0;
    Counter lazyWritebackChunks = 0;
    Counter wordsWrittenBack = 0;
    Counter remoteHits = 0;     //!< remote requests served by this stash
    Counter replicationHits = 0; //!< misses avoided by the reuse opt
    Counter selfInvalidations = 0;
    Counter mapReplacementStalls = 0; //!< blocking map-entry writebacks
    Counter vpMapOverflows = 0; //!< live mappings exceeded VP capacity

    Counter hits() const { return loadHits + storeHits; }
    Counter misses() const { return loadMisses + storeMisses; }
    Counter accesses() const { return hits() + misses(); }

    void
    add(const StashStats &o)
    {
        loadHits += o.loadHits;
        loadMisses += o.loadMisses;
        storeHits += o.storeHits;
        storeMisses += o.storeMisses;
        hitWords += o.hitWords;
        missWords += o.missWords;
        translations += o.translations;
        vpMapAccesses += o.vpMapAccesses;
        addMaps += o.addMaps;
        chgMaps += o.chgMaps;
        lazyWritebackChunks += o.lazyWritebackChunks;
        wordsWrittenBack += o.wordsWrittenBack;
        remoteHits += o.remoteHits;
        replicationHits += o.replicationHits;
        selfInvalidations += o.selfInvalidations;
        mapReplacementStalls += o.mapReplacementStalls;
        vpMapOverflows += o.vpMapOverflows;
    }

    void
    sub(const StashStats &o)
    {
        loadHits -= o.loadHits;
        loadMisses -= o.loadMisses;
        storeHits -= o.storeHits;
        storeMisses -= o.storeMisses;
        hitWords -= o.hitWords;
        missWords -= o.missWords;
        translations -= o.translations;
        vpMapAccesses -= o.vpMapAccesses;
        addMaps -= o.addMaps;
        chgMaps -= o.chgMaps;
        lazyWritebackChunks -= o.lazyWritebackChunks;
        wordsWrittenBack -= o.wordsWrittenBack;
        remoteHits -= o.remoteHits;
        replicationHits -= o.replicationHits;
        selfInvalidations -= o.selfInvalidations;
        mapReplacementStalls -= o.mapReplacementStalls;
        vpMapOverflows -= o.vpMapOverflows;
    }
};

/** LLC (shared L2) statistics. */
struct LlcStats
{
    Counter reads = 0;          //!< read requests served
    Counter registrations = 0;  //!< words registered
    Counter writebacksRecv = 0; //!< writeback words absorbed
    Counter remoteForwards = 0; //!< requests forwarded to an owner
    Counter invalidationsSent = 0;
    Counter fills = 0;          //!< lines fetched from memory
    Counter memWrites = 0;      //!< dirty lines evicted to memory
    Counter recalls = 0;        //!< registered lines recalled on evict
    Counter accesses = 0;       //!< total data-array accesses

    void
    add(const LlcStats &o)
    {
        reads += o.reads;
        registrations += o.registrations;
        writebacksRecv += o.writebacksRecv;
        remoteForwards += o.remoteForwards;
        invalidationsSent += o.invalidationsSent;
        fills += o.fills;
        memWrites += o.memWrites;
        recalls += o.recalls;
        accesses += o.accesses;
    }

    void
    sub(const LlcStats &o)
    {
        reads -= o.reads;
        registrations -= o.registrations;
        writebacksRecv -= o.writebacksRecv;
        remoteForwards -= o.remoteForwards;
        invalidationsSent -= o.invalidationsSent;
        fills -= o.fills;
        memWrites -= o.memWrites;
        recalls -= o.recalls;
        accesses -= o.accesses;
    }
};

/** DMA engine statistics (ScratchGD configuration). */
struct DmaStats
{
    Counter transfers = 0;
    Counter wordsLoaded = 0;
    Counter wordsStored = 0;

    void
    add(const DmaStats &o)
    {
        transfers += o.transfers;
        wordsLoaded += o.wordsLoaded;
        wordsStored += o.wordsStored;
    }

    void
    sub(const DmaStats &o)
    {
        transfers -= o.transfers;
        wordsLoaded -= o.wordsLoaded;
        wordsStored -= o.wordsStored;
    }
};

/** GPU compute-unit statistics. */
struct GpuStats
{
    Counter instructions = 0;   //!< warp instructions issued
    Counter computeOps = 0;
    Counter globalLoads = 0;
    Counter globalStores = 0;
    Counter localLoads = 0;     //!< scratchpad or stash loads
    Counter localStores = 0;
    Counter barriers = 0;
    Counter idleCycles = 0;     //!< cycles with no warp ready
    Counter threadBlocks = 0;
    Counter kernels = 0;

    void
    add(const GpuStats &o)
    {
        instructions += o.instructions;
        computeOps += o.computeOps;
        globalLoads += o.globalLoads;
        globalStores += o.globalStores;
        localLoads += o.localLoads;
        localStores += o.localStores;
        barriers += o.barriers;
        idleCycles += o.idleCycles;
        threadBlocks += o.threadBlocks;
        kernels += o.kernels;
    }

    void
    sub(const GpuStats &o)
    {
        instructions -= o.instructions;
        computeOps -= o.computeOps;
        globalLoads -= o.globalLoads;
        globalStores -= o.globalStores;
        localLoads -= o.localLoads;
        localStores -= o.localStores;
        barriers -= o.barriers;
        idleCycles -= o.idleCycles;
        threadBlocks -= o.threadBlocks;
        kernels -= o.kernels;
    }
};

/** CPU core statistics. */
struct CpuStats
{
    Counter loads = 0;
    Counter stores = 0;

    void
    add(const CpuStats &o)
    {
        loads += o.loads;
        stores += o.stores;
    }

    void
    sub(const CpuStats &o)
    {
        loads -= o.loads;
        stores -= o.stores;
    }
};

/** Aggregated snapshot of every counter in the system. */
struct SystemStats
{
    GpuStats gpu;
    CpuStats cpu;
    CacheStats gpuL1;   //!< all GPU L1s
    CacheStats cpuL1;   //!< all CPU L1s
    ScratchpadStats scratch;
    StashStats stash;
    LlcStats llc;
    NocStats noc;
    DmaStats dma;
    Cycles gpuCycles = 0; //!< end-to-end run length in GPU cycles
    Counter numGpuCus = 0; //!< CUs in the system (not subtracted)

    /**
     * Subtracts a baseline snapshot (all counters are monotonic), so
     * a measurement window can exclude warm-up phases.
     */
    void
    sub(const SystemStats &o)
    {
        gpu.sub(o.gpu);
        cpu.sub(o.cpu);
        gpuL1.sub(o.gpuL1);
        cpuL1.sub(o.cpuL1);
        scratch.sub(o.scratch);
        stash.sub(o.stash);
        llc.sub(o.llc);
        noc.sub(o.noc);
        dma.sub(o.dma);
        gpuCycles -= o.gpuCycles;
        // numGpuCus is structural, not a counter.
    }

    /** Flattens every counter into a name->value map for reports. */
    std::map<std::string, double> flatten() const;
};

} // namespace stashsim

#endif // STASHSIM_SIM_STATS_HH
