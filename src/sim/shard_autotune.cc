#include "sim/shard_autotune.hh"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "sim/shard_engine.hh"

namespace stashsim
{

AutoTuneDecision
autoTuneShards(const AutoTuneInputs &in)
{
    AutoTuneDecision d;
    const unsigned maxK =
        std::max(1u, std::min(in.tiles, in.hwThreads));
    if (in.events == 0 || in.quanta == 0 || maxK == 1)
        return d; // no signal, or nothing to parallelize: serial

    d.eventsPerQuantum = double(in.events) / double(in.quanta);
    d.nsPerEvent = double(in.execNs) / double(in.events);
    const double work = d.eventsPerQuantum * d.nsPerEvent;
    const double b = double(in.barrierCrossNs);

    std::vector<unsigned> ks;
    for (unsigned k = 1; k < maxK; k *= 2)
        ks.push_back(k);
    ks.push_back(maxK);

    double t1 = 0;
    double bestT = std::numeric_limits<double>::infinity();
    unsigned best = 1;
    for (unsigned k : ks) {
        const double t = work / double(k) + b * double(k);
        d.candidates.push_back({k, t});
        if (k == 1)
            t1 = t;
        // Strict <: ties go to the smaller (earlier) candidate.
        if (t < bestT) {
            bestT = t;
            best = k;
        }
    }
    // Require a real win over serial before paying quantum overheads
    // the model cannot see (per-quantum queue bookkeeping, flush).
    if (best != 1 && bestT > 0.9 * t1)
        best = 1;
    d.workers = best;
    return d;
}

std::uint64_t
measuredBarrierCrossNs()
{
    static const std::uint64_t ns = [] {
        if (std::thread::hardware_concurrency() <= 1) {
            // A lone hardware thread serializes the ping through the
            // scheduler; the measurement would be pure context-switch
            // cost.  Auto-tune never picks k>1 here anyway — return a
            // conservative constant instead of measuring.
            return std::uint64_t{100000};
        }
        constexpr int crossings = 4096;
        QuantumBarrier barrier(2);
        const auto t0 = std::chrono::steady_clock::now();
        std::thread peer([&barrier] {
            for (int i = 0; i < crossings; ++i)
                barrier.arriveAndWait([] {});
        });
        for (int i = 0; i < crossings; ++i)
            barrier.arriveAndWait([] {});
        peer.join();
        const auto dt = std::chrono::steady_clock::now() - t0;
        const std::uint64_t total = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                .count());
        return std::max<std::uint64_t>(1, total / crossings);
    }();
    return ns;
}

} // namespace stashsim
