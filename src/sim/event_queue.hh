/**
 * @file
 * Discrete-event simulation kernel.
 *
 * All timing in the simulator is driven by a single EventQueue.  A
 * component schedules a callback at an absolute tick (or a delay from
 * now); the queue executes callbacks in (tick, priority, insertion
 * order) order.  Insertion order is preserved for equal (tick,
 * priority) pairs so the simulation is deterministic.
 */

#ifndef STASHSIM_SIM_EVENT_QUEUE_HH
#define STASHSIM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace stashsim
{

/**
 * A deterministic priority queue of timed callbacks.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Default priorities; lower values run first at equal ticks. */
    enum Priority : int
    {
        PriDelivery = -10, //!< message deliveries before component ticks
        PriDefault = 0,
        PriStats = 10, //!< end-of-phase bookkeeping after everything
    };

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /** Schedules @p cb to run at absolute time @p when (>= curTick). */
    void schedule(Tick when, Callback cb, int priority = PriDefault);

    /** Schedules @p cb to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Callback cb, int priority = PriDefault)
    {
        schedule(_curTick + delay, std::move(cb), priority);
    }

    /** True when no events are pending. */
    bool empty() const { return events.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return events.size(); }

    /** Tick of the earliest pending event (curTick when empty). */
    Tick
    nextTick() const
    {
        return events.empty() ? _curTick : events.top().when;
    }

    /**
     * Runs events until the queue drains or curTick would exceed
     * @p max_tick.
     *
     * @return the number of events executed.
     */
    std::size_t run(Tick max_tick = std::numeric_limits<Tick>::max());

    /** Executes exactly one event; returns false if queue is empty. */
    bool runOne();

    /** Drops all pending events and resets time to zero. */
    void reset();

  private:
    struct ScheduledEvent
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const ScheduledEvent &a, const ScheduledEvent &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<ScheduledEvent, std::vector<ScheduledEvent>,
                        Later>
        events;
    Tick _curTick = 0;
    std::uint64_t nextSeq = 0;
};

/**
 * A clock domain: converts between cycles and ticks and aligns events
 * to clock edges.
 */
class Clock
{
  public:
    explicit Clock(Tick period) : _period(period) {}

    Tick period() const { return _period; }

    /** Ticks spanned by @p cycles cycles. */
    Tick cyclesToTicks(Cycles cycles) const { return cycles * _period; }

    /** Whole cycles elapsed at @p t (floor). */
    Cycles ticksToCycles(Tick t) const { return t / _period; }

    /** The first clock edge at or after @p t. */
    Tick
    nextEdge(Tick t) const
    {
        return ((t + _period - 1) / _period) * _period;
    }

  private:
    Tick _period;
};

} // namespace stashsim

#endif // STASHSIM_SIM_EVENT_QUEUE_HH
