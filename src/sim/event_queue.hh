/**
 * @file
 * Discrete-event simulation kernel.
 *
 * All timing in the simulator is driven by a single EventQueue.  A
 * component schedules a callback at an absolute tick (or a delay from
 * now); the queue executes callbacks in (tick, priority, insertion
 * order) order.  Insertion order is preserved for equal (tick,
 * priority) pairs so the simulation is deterministic.
 *
 * Internally the queue is a two-level calendar: a timing wheel of
 * one-tick buckets covering the near future (sized to hold the
 * longest common latency, a DRAM fill), backed by a pointer min-heap
 * for events beyond the horizon.  Events live in a recycled pool, so
 * the hot path performs no per-event container churn and never copies
 * a std::function — see DESIGN.md section 9 for the full contract.
 */

#ifndef STASHSIM_SIM_EVENT_QUEUE_HH
#define STASHSIM_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace stashsim
{

/**
 * A move-only type-erased void() callable with a large inline buffer.
 *
 * The hot scheduling paths capture a line snapshot (64 B) plus a
 * completion functor per event; std::function's small-buffer
 * optimisation (16 B in libstdc++) heap-allocates every one of those
 * captures, which dominates the simulator's steady-state allocation
 * rate.  InlineCallback stores captures up to inlineBytes directly in
 * the pooled event instead, so scheduling performs no allocation at
 * all; rare larger captures fall back to one heap cell.
 */
class InlineCallback
{
  public:
    /**
     * Sized for the largest hot capture: a completion std::function
     * (32 B) plus a LineData snapshot (64 B), with headroom for the
     * NoC delivery lambdas that carry a whole Msg.
     */
    static constexpr std::size_t inlineBytes = 120;

    InlineCallback() = default;
    InlineCallback(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::remove_cv_t<std::remove_reference_t<F>>,
                  InlineCallback>>>
    InlineCallback(F &&f)
    {
        using Fn = std::remove_cv_t<std::remove_reference_t<F>>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf)) Fn(std::forward<F>(f));
            vt = &InlineOps<Fn>::vtable;
        } else {
            ::new (static_cast<void *>(buf))
                Fn *(new Fn(std::forward<F>(f)));
            vt = &HeapOps<Fn>::vtable;
        }
    }

    InlineCallback(InlineCallback &&o) noexcept { moveFrom(o); }

    InlineCallback &
    operator=(InlineCallback &&o) noexcept
    {
        if (this != &o) {
            clear();
            moveFrom(o);
        }
        return *this;
    }

    InlineCallback &
    operator=(std::nullptr_t)
    {
        clear();
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { clear(); }

    explicit operator bool() const { return vt != nullptr; }

    void operator()() { vt->invoke(buf); }

  private:
    struct VTable
    {
        void (*invoke)(void *);
        /** Move-constructs dst from src and destroys src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    struct InlineOps
    {
        static void invoke(void *p) { (*static_cast<Fn *>(p))(); }

        static void
        relocate(void *dst, void *src)
        {
            Fn *s = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        }

        static void destroy(void *p) { static_cast<Fn *>(p)->~Fn(); }

        static constexpr VTable vtable{&invoke, &relocate, &destroy};
    };

    template <typename Fn>
    struct HeapOps
    {
        static Fn *&at(void *p) { return *static_cast<Fn **>(p); }
        static void invoke(void *p) { (*at(p))(); }

        static void
        relocate(void *dst, void *src)
        {
            ::new (dst) Fn *(at(src));
        }

        static void destroy(void *p) { delete at(p); }

        static constexpr VTable vtable{&invoke, &relocate, &destroy};
    };

    void
    clear()
    {
        if (vt) {
            vt->destroy(buf);
            vt = nullptr;
        }
    }

    void
    moveFrom(InlineCallback &o)
    {
        vt = o.vt;
        if (vt) {
            vt->relocate(buf, o.buf);
            o.vt = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf[inlineBytes];
    const VTable *vt = nullptr;
};

/**
 * Observer of the driver's phase/drain boundaries.
 *
 * The System driver brackets every drain (GPU kernel phase, CPU
 * phase, final flush) with beginPhase()/endPhase() on its event
 * queue; registered listeners see each boundary with the simulated
 * time it happened at.  The watchdog arms itself this way, and the
 * report subsystem's ChromeTraceSink turns the boundaries into a
 * timeline trace.
 */
class PhaseListener
{
  public:
    virtual ~PhaseListener() = default;

    virtual void phaseBegin(const char *name, Tick at) = 0;
    virtual void phaseEnd(const char *name, Tick at) = 0;
};

/**
 * A deterministic priority queue of timed callbacks.
 */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    /** Default priorities; lower values run first at equal ticks. */
    enum Priority : int
    {
        PriDelivery = -10, //!< message deliveries before component ticks
        PriDefault = 0,
        PriStats = 10, //!< end-of-phase bookkeeping after everything
        /**
         * Engine bookkeeping (e.g. the Fabric's per-tick NoC flush in
         * serial mode).  Runs after every model event of the tick and
         * is excluded from eventsExecuted(), so serial and sharded
         * runs — which have no such events — report identical event
         * counts in the deterministic artifacts.
         */
        PriInternal = std::numeric_limits<int>::max(),
    };

    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /**
     * Tick of the most recently executed event (0 before any).
     * Unlike curTick(), a bounded run() does not advance this, so a
     * sharded engine can tell "real" simulated progress apart from
     * quantum-bound bookkeeping when aligning shard clocks.
     */
    Tick lastEventTick() const { return _lastEventTick; }

    /**
     * Force-sets the current time on an EMPTY queue (forward or
     * backward, but never before lastEventTick()).  The sharded
     * engine uses this at drain completion to align every shard's
     * clock to the global last-event tick: a bounded run() on an idle
     * shard advances curTick to the quantum bound, which may overshoot
     * the serial drain time that controller-context code (phase
     * boundaries, next-phase scheduling) must observe.
     */
    void setTime(Tick t);

    /**
     * Everything a checkpoint must carry to resume this queue's clock
     * and observability counters exactly (src/snapshot).  Live events
     * are never part of it: the driver only checkpoints at drain
     * points, where every queue is empty by construction.
     */
    struct ClockState
    {
        Tick curTick = 0;
        Tick lastEventTick = 0;
        std::uint64_t nextSeq = 0;
        std::uint64_t executed = 0;
        std::uint64_t peakLive = 0;
        std::uint64_t wheelInserts = 0;
        std::uint64_t farInserts = 0;
    };

    /** Captures the clock/counter state for a checkpoint. */
    ClockState clockState() const;

    /**
     * Restores a checkpointed clock into this (EMPTY, fresh) queue.
     * Routes through setTime(), so the calendar wheelBase — and with
     * it the wheel-vs-far classification cutoff at wheelBase +
     * wheelSize — re-anchors at the restored time (same bug family as
     * SetTimeReanchorsTheWheelAfterAFarPop: restoring only the tick
     * would leave the cutoff at 0 and misroute every near event into
     * the far heap).
     */
    void restoreClock(const ClockState &s);

    /** Schedules @p cb to run at absolute time @p when (>= curTick). */
    void schedule(Tick when, Callback cb, int priority = PriDefault);

    /** Schedules @p cb to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Callback cb, int priority = PriDefault)
    {
        schedule(_curTick + delay, std::move(cb), priority);
    }

    /** True when no events are pending. */
    bool empty() const { return _size == 0; }

    /** Number of pending events. */
    std::size_t size() const { return _size; }

    /** Tick of the earliest pending event (curTick when empty). */
    Tick
    nextTick() const
    {
        return _size == 0 ? _curTick : peekNextWhen();
    }

    /**
     * Runs events until the queue drains or curTick would exceed
     * @p max_tick.
     *
     * A finite bound is a statement about elapsed time, so when it
     * exhausts the eligible events curTick advances to @p max_tick
     * (not the last executed event): a subsequent scheduleIn() is
     * relative to the bound, never to stale time.
     *
     * @return the number of events executed.
     */
    std::size_t run(Tick max_tick = std::numeric_limits<Tick>::max());

    /** Executes exactly one event; returns false if queue is empty. */
    bool runOne();

    /**
     * Drops all pending events and resets time to zero.
     *
     * A phase open at reset time is closed first (listeners get a
     * synthetic phaseEnd at the pre-reset tick), so trace sinks do
     * not leak an open slice and the watchdog disarms.  The
     * cumulative eventsExecuted() counter is NOT reset: it is an
     * observability total, not simulation state.
     */
    void reset();

    /**
     * Total events executed over the queue's lifetime (monotone;
     * survives reset()).  SimPerf derives events/sec from this.
     * PriInternal bookkeeping events are not counted.
     */
    std::uint64_t eventsExecuted() const { return _executed; }

    /** @{
     * Queue-shape observability (monotone; survive reset()).  SimPerf
     * exports these so queue tuning is measured rather than guessed.
     */
    /** High-water mark of simultaneously pending events. */
    std::size_t peakLiveEvents() const { return _peakLive; }
    /** Pool chunks allocated (capacity = chunks * poolChunkEvents). */
    std::size_t poolChunksAllocated() const { return poolChunks.size(); }
    /** schedule() calls landing in a calendar-wheel bucket. */
    std::uint64_t wheelInserts() const { return _wheelInserts; }
    /** schedule() calls landing in the far-horizon heap. */
    std::uint64_t farInserts() const { return _farInserts; }
    /** @} */

    /** @{ Phase/drain boundary notification (see PhaseListener). */
    void addPhaseListener(PhaseListener *l);
    void removePhaseListener(PhaseListener *l);

    /** Marks the start of a named phase and notifies listeners. */
    void beginPhase(const char *name);

    /** Marks the end of the current phase and notifies listeners. */
    void endPhase();

    /** Name of the phase in progress; empty outside one. */
    const std::string &currentPhase() const { return _phaseName; }
    /** @} */

  private:
    /**
     * One pooled event.  Lives either in a wheel bucket's intrusive
     * list, in the far heap, or on the free list — never copied.
     */
    struct Event
    {
        Tick when = 0;
        int priority = 0;
        std::uint64_t seq = 0;
        Callback cb;
        Event *next = nullptr;
    };

    /** Heap comparator for far events: min by (when, priority, seq). */
    struct FarLater
    {
        bool
        operator()(const Event *a, const Event *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            if (a->priority != b->priority)
                return a->priority > b->priority;
            return a->seq > b->seq;
        }
    };

    /**
     * Wheel geometry: 4096 one-tick buckets cover the longest common
     * latency (a DRAM fill, dramCycles * gpuClockPeriod = 3360
     * ticks); anything further out waits in the far heap and
     * migrates as the window advances.
     */
    static constexpr std::size_t wheelBits = 12;
    static constexpr std::size_t wheelSize = std::size_t{1} << wheelBits;
    static constexpr std::size_t wheelMask = wheelSize - 1;
    static constexpr std::size_t bitmapWords = wheelSize / 64;
    static_assert(bitmapWords <= 64,
                  "occupancy summary must fit one 64-bit word");

    struct Bucket
    {
        Event *head = nullptr;
        Event *tail = nullptr;
    };

    static constexpr std::size_t poolChunkEvents = 256;

    Event *allocEvent();
    void recycleEvent(Event *ev);
    void recycleList(Event *head);

    void bucketInsert(Event *ev);
    void markOccupied(std::size_t idx);
    void markEmpty(std::size_t idx);
    /** First occupied bucket at/after @p idx, circular; needs one. */
    std::size_t firstOccupiedFrom(std::size_t idx) const;

    /** Moves the window to @p new_base, migrating covered far events. */
    void advanceWindow(Tick new_base);
    /**
     * Detaches and returns the earliest pending event if its tick is
     * <= @p max_tick, else nullptr (_size > 0).  One bitmap search
     * serves as both the bound check and the pop.
     */
    Event *popNextIfAtMost(Tick max_tick);
    /** Detaches and returns the earliest pending event (_size > 0). */
    Event *popNext();
    /** Tick of the earliest pending event (_size > 0). */
    Tick peekNextWhen() const;
    /** Moves the callback out, recycles, runs — the execute path. */
    void executeEvent(Event *ev);

    std::vector<Bucket> wheel = std::vector<Bucket>(wheelSize);
    std::array<std::uint64_t, bitmapWords> occupied{};
    std::uint64_t occupiedSummary = 0;
    Tick wheelBase = 0;       //!< earliest tick the wheel can hold
    std::size_t wheelCount = 0;

    std::vector<Event *> far; //!< min-heap (FarLater) beyond horizon

    std::vector<std::unique_ptr<Event[]>> poolChunks;
    Event *freeList = nullptr;

    std::size_t _size = 0;
    Tick _curTick = 0;
    Tick _lastEventTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t _executed = 0;
    std::size_t _peakLive = 0;
    std::uint64_t _wheelInserts = 0;
    std::uint64_t _farInserts = 0;
    std::vector<PhaseListener *> phaseListeners;
    std::string _phaseName;
};

/**
 * A clock domain: converts between cycles and ticks and aligns events
 * to clock edges.
 */
class Clock
{
  public:
    explicit Clock(Tick period) : _period(period) {}

    Tick period() const { return _period; }

    /** Ticks spanned by @p cycles cycles. */
    Tick cyclesToTicks(Cycles cycles) const { return cycles * _period; }

    /** Whole cycles elapsed at @p t (floor). */
    Cycles ticksToCycles(Tick t) const { return t / _period; }

    /** The first clock edge at or after @p t. */
    Tick
    nextEdge(Tick t) const
    {
        return ((t + _period - 1) / _period) * _period;
    }

  private:
    Tick _period;
};

} // namespace stashsim

#endif // STASHSIM_SIM_EVENT_QUEUE_HH
