/**
 * @file
 * Discrete-event simulation kernel.
 *
 * All timing in the simulator is driven by a single EventQueue.  A
 * component schedules a callback at an absolute tick (or a delay from
 * now); the queue executes callbacks in (tick, priority, insertion
 * order) order.  Insertion order is preserved for equal (tick,
 * priority) pairs so the simulation is deterministic.
 */

#ifndef STASHSIM_SIM_EVENT_QUEUE_HH
#define STASHSIM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <functional>
#include <limits>
#include <queue>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace stashsim
{

/**
 * Observer of the driver's phase/drain boundaries.
 *
 * The System driver brackets every drain (GPU kernel phase, CPU
 * phase, final flush) with beginPhase()/endPhase() on its event
 * queue; registered listeners see each boundary with the simulated
 * time it happened at.  The watchdog arms itself this way, and the
 * report subsystem's ChromeTraceSink turns the boundaries into a
 * timeline trace.
 */
class PhaseListener
{
  public:
    virtual ~PhaseListener() = default;

    virtual void phaseBegin(const char *name, Tick at) = 0;
    virtual void phaseEnd(const char *name, Tick at) = 0;
};

/**
 * A deterministic priority queue of timed callbacks.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Default priorities; lower values run first at equal ticks. */
    enum Priority : int
    {
        PriDelivery = -10, //!< message deliveries before component ticks
        PriDefault = 0,
        PriStats = 10, //!< end-of-phase bookkeeping after everything
    };

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /** Schedules @p cb to run at absolute time @p when (>= curTick). */
    void schedule(Tick when, Callback cb, int priority = PriDefault);

    /** Schedules @p cb to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Callback cb, int priority = PriDefault)
    {
        schedule(_curTick + delay, std::move(cb), priority);
    }

    /** True when no events are pending. */
    bool empty() const { return events.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return events.size(); }

    /** Tick of the earliest pending event (curTick when empty). */
    Tick
    nextTick() const
    {
        return events.empty() ? _curTick : events.top().when;
    }

    /**
     * Runs events until the queue drains or curTick would exceed
     * @p max_tick.
     *
     * @return the number of events executed.
     */
    std::size_t run(Tick max_tick = std::numeric_limits<Tick>::max());

    /** Executes exactly one event; returns false if queue is empty. */
    bool runOne();

    /** Drops all pending events and resets time to zero. */
    void reset();

    /** @{ Phase/drain boundary notification (see PhaseListener). */
    void addPhaseListener(PhaseListener *l);
    void removePhaseListener(PhaseListener *l);

    /** Marks the start of a named phase and notifies listeners. */
    void beginPhase(const char *name);

    /** Marks the end of the current phase and notifies listeners. */
    void endPhase();

    /** Name of the phase in progress; empty outside one. */
    const std::string &currentPhase() const { return _phaseName; }
    /** @} */

  private:
    struct ScheduledEvent
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const ScheduledEvent &a, const ScheduledEvent &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<ScheduledEvent, std::vector<ScheduledEvent>,
                        Later>
        events;
    Tick _curTick = 0;
    std::uint64_t nextSeq = 0;
    std::vector<PhaseListener *> phaseListeners;
    std::string _phaseName;
};

/**
 * A clock domain: converts between cycles and ticks and aligns events
 * to clock edges.
 */
class Clock
{
  public:
    explicit Clock(Tick period) : _period(period) {}

    Tick period() const { return _period; }

    /** Ticks spanned by @p cycles cycles. */
    Tick cyclesToTicks(Cycles cycles) const { return cycles * _period; }

    /** Whole cycles elapsed at @p t (floor). */
    Cycles ticksToCycles(Tick t) const { return t / _period; }

    /** The first clock edge at or after @p t. */
    Tick
    nextEdge(Tick t) const
    {
        return ((t + _period - 1) / _period) * _period;
    }

  private:
    Tick _period;
};

} // namespace stashsim

#endif // STASHSIM_SIM_EVENT_QUEUE_HH
