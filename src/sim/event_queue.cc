#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>

#include "sim/log.hh"

namespace stashsim
{

EventQueue::~EventQueue() = default;

// ---- event pool -------------------------------------------------

EventQueue::Event *
EventQueue::allocEvent()
{
    if (!freeList) {
        poolChunks.push_back(std::make_unique<Event[]>(poolChunkEvents));
        Event *chunk = poolChunks.back().get();
        for (std::size_t i = poolChunkEvents; i > 0; --i) {
            chunk[i - 1].next = freeList;
            freeList = &chunk[i - 1];
        }
    }
    Event *ev = freeList;
    freeList = ev->next;
    ev->next = nullptr;
    return ev;
}

void
EventQueue::recycleEvent(Event *ev)
{
    ev->cb = nullptr; // release captures promptly
    ev->next = freeList;
    freeList = ev;
}

void
EventQueue::recycleList(Event *head)
{
    while (head) {
        Event *next = head->next;
        recycleEvent(head);
        head = next;
    }
}

// ---- occupancy bitmap -------------------------------------------

void
EventQueue::markOccupied(std::size_t idx)
{
    occupied[idx / 64] |= std::uint64_t{1} << (idx % 64);
    occupiedSummary |= std::uint64_t{1} << (idx / 64);
}

void
EventQueue::markEmpty(std::size_t idx)
{
    const std::size_t word = idx / 64;
    occupied[word] &= ~(std::uint64_t{1} << (idx % 64));
    if (occupied[word] == 0)
        occupiedSummary &= ~(std::uint64_t{1} << word);
}

std::size_t
EventQueue::firstOccupiedFrom(std::size_t idx) const
{
    const std::size_t word = idx / 64;
    const unsigned bit = idx % 64;

    // The rest of idx's own word.
    const std::uint64_t here = occupied[word] & (~std::uint64_t{0} << bit);
    if (here)
        return word * 64 + unsigned(std::countr_zero(here));

    // Whole words after it, then wrap to whole words before it.
    const std::uint64_t after =
        word + 1 < bitmapWords
            ? occupiedSummary & (~std::uint64_t{0} << (word + 1))
            : 0;
    if (after) {
        const std::size_t w = std::size_t(std::countr_zero(after));
        return w * 64 + unsigned(std::countr_zero(occupied[w]));
    }
    const std::uint64_t before =
        word > 0 ? occupiedSummary & ((std::uint64_t{1} << word) - 1) : 0;
    if (before) {
        const std::size_t w = std::size_t(std::countr_zero(before));
        return w * 64 + unsigned(std::countr_zero(occupied[w]));
    }

    // Wrapped all the way into the low bits of idx's own word.
    const std::uint64_t low =
        occupied[word] & (bit ? (std::uint64_t{1} << bit) - 1 : 0);
    sim_assert(low != 0);
    return word * 64 + unsigned(std::countr_zero(low));
}

// ---- wheel ------------------------------------------------------

void
EventQueue::bucketInsert(Event *ev)
{
    const std::size_t idx = std::size_t(ev->when) & wheelMask;
    Bucket &b = wheel[idx];
    if (!b.head) {
        b.head = b.tail = ev;
        ev->next = nullptr;
        markOccupied(idx);
        return;
    }
    // Every event in a bucket shares one tick, so order is (priority,
    // seq).  A freshly scheduled event carries the largest seq so
    // far, so among equal priorities it always goes last; migrated
    // far events arrive in (priority, seq) order too (heap pop
    // order), so the tail append is the overwhelmingly common case.
    if (b.tail->priority <= ev->priority) {
        b.tail->next = ev;
        ev->next = nullptr;
        b.tail = ev;
        return;
    }
    if (ev->priority < b.head->priority) {
        ev->next = b.head;
        b.head = ev;
        return;
    }
    Event *p = b.head;
    while (p->next && p->next->priority <= ev->priority)
        p = p->next;
    ev->next = p->next;
    p->next = ev;
    if (!ev->next)
        b.tail = ev;
}

void
EventQueue::advanceWindow(Tick new_base)
{
    wheelBase = new_base;
    // Far events never precede the old window, so migration only adds
    // events at or beyond the old horizon — never before new_base.
    while (!far.empty() && far.front()->when < wheelBase + wheelSize) {
        std::pop_heap(far.begin(), far.end(), FarLater{});
        Event *ev = far.back();
        far.pop_back();
        bucketInsert(ev);
        ++wheelCount;
    }
}

EventQueue::Event *
EventQueue::popNextIfAtMost(Tick max_tick)
{
    if (wheelCount == 0) {
        // Everything pending is beyond the horizon: jump the window.
        sim_assert(!far.empty());
        if (far.front()->when > max_tick)
            return nullptr;
        advanceWindow(far.front()->when);
    }
    const std::size_t base_idx = std::size_t(wheelBase) & wheelMask;
    const std::size_t idx = firstOccupiedFrom(base_idx);
    const Tick when = wheelBase + Tick((idx - base_idx) & wheelMask);
    if (when > max_tick)
        return nullptr;
    if (when != wheelBase)
        advanceWindow(when);
    Bucket &b = wheel[idx];
    Event *ev = b.head;
    b.head = ev->next;
    if (!b.head) {
        b.tail = nullptr;
        markEmpty(idx);
    }
    --wheelCount;
    --_size;
    return ev;
}

EventQueue::Event *
EventQueue::popNext()
{
    Event *ev = popNextIfAtMost(std::numeric_limits<Tick>::max());
    sim_assert(ev != nullptr);
    return ev;
}

Tick
EventQueue::peekNextWhen() const
{
    if (wheelCount > 0) {
        const std::size_t base_idx = std::size_t(wheelBase) & wheelMask;
        const std::size_t idx = firstOccupiedFrom(base_idx);
        return wheelBase + Tick((idx - base_idx) & wheelMask);
    }
    sim_assert(!far.empty());
    return far.front()->when;
}

// ---- public interface -------------------------------------------

void
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    sim_assert(when >= _curTick);
    sim_assert(cb);
    Event *ev = allocEvent();
    ev->when = when;
    ev->priority = priority;
    ev->seq = nextSeq++;
    ev->cb = std::move(cb);
    if (when - wheelBase < wheelSize) {
        bucketInsert(ev);
        ++wheelCount;
        ++_wheelInserts;
    } else {
        far.push_back(ev);
        std::push_heap(far.begin(), far.end(), FarLater{});
        ++_farInserts;
    }
    ++_size;
    if (_size > _peakLive)
        _peakLive = _size;
}

void
EventQueue::setTime(Tick t)
{
    sim_assert(_size == 0);
    sim_assert(t >= _lastEventTick);
    _curTick = t;
    // The queue is empty, so the wheel can be re-anchored at the new
    // time.  This matters on a rewind: wheelBase advances with every
    // pop (a far-future internal event can carry it well past the
    // model's clock), and a stale base ahead of curTick would alias
    // newly scheduled near events into wrong window positions.
    wheelBase = t;
}

EventQueue::ClockState
EventQueue::clockState() const
{
    ClockState s;
    s.curTick = _curTick;
    s.lastEventTick = _lastEventTick;
    s.nextSeq = nextSeq;
    s.executed = _executed;
    s.peakLive = _peakLive;
    s.wheelInserts = _wheelInserts;
    s.farInserts = _farInserts;
    return s;
}

void
EventQueue::restoreClock(const ClockState &s)
{
    sim_assert(_size == 0);
    sim_assert(s.curTick >= s.lastEventTick);
    // setTime() both moves the clock and re-anchors the wheel window
    // (hence the far-horizon cutoff); it must run before
    // _lastEventTick is restored because it asserts monotonicity
    // against the queue's own (still-fresh) last-event tick.
    setTime(s.curTick);
    _lastEventTick = s.lastEventTick;
    nextSeq = s.nextSeq;
    _executed = s.executed;
    _peakLive = std::size_t(s.peakLive);
    _wheelInserts = s.wheelInserts;
    _farInserts = s.farInserts;
}

void
EventQueue::executeEvent(Event *ev)
{
    _curTick = ev->when;
    // Internal bookkeeping events (fabric flushes, watchdog polls) do
    // not advance the simulated clock: lastEventTick is "when the
    // model last did work", the tick drains realign to.  A watchdog
    // poll landing long after the last model event must not inflate
    // the run's reported time.
    const bool internal = ev->priority == PriInternal;
    if (!internal)
        _lastEventTick = ev->when;
    // Move the callback out and recycle before invoking: the
    // callback may schedule new events, and the freed slot is
    // immediately reusable.
    Callback cb = std::move(ev->cb);
    recycleEvent(ev);
    if (!internal)
        ++_executed;
    cb();
}

std::size_t
EventQueue::run(Tick max_tick)
{
    std::size_t executed = 0;
    while (_size > 0) {
        // One bitmap search decides both "is the next event eligible"
        // and "detach it" — run() never pays a separate peek.
        Event *ev = popNextIfAtMost(max_tick);
        if (!ev)
            break;
        executeEvent(ev);
        ++executed;
    }
    // A finite bound exhausted: time has passed up to the bound even
    // if no event landed exactly on it (see header).
    if (max_tick != std::numeric_limits<Tick>::max() &&
        _curTick < max_tick) {
        _curTick = max_tick;
        // Same family as setTime(): once the queue is empty the wheel
        // can re-anchor at the bound, so the next schedule() near the
        // new time lands in a wheel bucket instead of being misfiled
        // into the far heap by a stale wheelBase.  (With events still
        // pending the base must stay put — bucket indices are
        // absolute-tick residues, valid only within the live window.)
        if (_size == 0)
            wheelBase = max_tick;
    }
    return executed;
}

bool
EventQueue::runOne()
{
    if (_size == 0)
        return false;
    executeEvent(popNext());
    return true;
}

void
EventQueue::reset()
{
    // Close a phase left open across the reset so listeners (trace
    // sinks, the watchdog) see a balanced end at the pre-reset tick
    // instead of a slice that never closes.
    if (!_phaseName.empty())
        endPhase();
    for (std::size_t w = 0; w < bitmapWords; ++w) {
        std::uint64_t bits = occupied[w];
        while (bits) {
            const std::size_t idx =
                w * 64 + unsigned(std::countr_zero(bits));
            bits &= bits - 1;
            recycleList(wheel[idx].head);
            wheel[idx].head = wheel[idx].tail = nullptr;
        }
        occupied[w] = 0;
    }
    occupiedSummary = 0;
    for (Event *ev : far)
        recycleEvent(ev);
    far.clear();
    wheelBase = 0;
    wheelCount = 0;
    _size = 0;
    _curTick = 0;
    _lastEventTick = 0;
    nextSeq = 0;
    // Listeners survive a reset: they observe the queue, not its
    // contents.  _executed survives too (lifetime observability).
}

void
EventQueue::addPhaseListener(PhaseListener *l)
{
    sim_assert(l != nullptr);
    phaseListeners.push_back(l);
}

void
EventQueue::removePhaseListener(PhaseListener *l)
{
    for (auto it = phaseListeners.begin(); it != phaseListeners.end();
         ++it) {
        if (*it == l) {
            phaseListeners.erase(it);
            return;
        }
    }
}

void
EventQueue::beginPhase(const char *name)
{
    _phaseName = name;
    // Notify over a snapshot: a listener may remove itself (or
    // another listener) from inside the callback.  Skip any listener
    // that was removed by an earlier callback in this notification.
    const std::vector<PhaseListener *> snapshot = phaseListeners;
    for (PhaseListener *l : snapshot) {
        if (std::find(phaseListeners.begin(), phaseListeners.end(),
                      l) != phaseListeners.end()) {
            l->phaseBegin(name, _curTick);
        }
    }
}

void
EventQueue::endPhase()
{
    const std::string name = _phaseName;
    const std::vector<PhaseListener *> snapshot = phaseListeners;
    for (PhaseListener *l : snapshot) {
        if (std::find(phaseListeners.begin(), phaseListeners.end(),
                      l) != phaseListeners.end()) {
            l->phaseEnd(name.c_str(), _curTick);
        }
    }
    _phaseName.clear();
}

} // namespace stashsim
