#include "sim/event_queue.hh"

#include "sim/log.hh"

namespace stashsim
{

void
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    sim_assert(when >= _curTick);
    sim_assert(cb);
    events.push(ScheduledEvent{when, priority, nextSeq++, std::move(cb)});
}

std::size_t
EventQueue::run(Tick max_tick)
{
    std::size_t executed = 0;
    while (!events.empty() && events.top().when <= max_tick) {
        // Copy out before pop: the callback may schedule new events.
        ScheduledEvent ev = events.top();
        events.pop();
        _curTick = ev.when;
        ev.cb();
        ++executed;
    }
    return executed;
}

bool
EventQueue::runOne()
{
    if (events.empty())
        return false;
    ScheduledEvent ev = events.top();
    events.pop();
    _curTick = ev.when;
    ev.cb();
    return true;
}

void
EventQueue::reset()
{
    events = {};
    _curTick = 0;
    nextSeq = 0;
    // Listeners survive a reset: they observe the queue, not its
    // contents.
    _phaseName.clear();
}

void
EventQueue::addPhaseListener(PhaseListener *l)
{
    sim_assert(l != nullptr);
    phaseListeners.push_back(l);
}

void
EventQueue::removePhaseListener(PhaseListener *l)
{
    for (auto it = phaseListeners.begin(); it != phaseListeners.end();
         ++it) {
        if (*it == l) {
            phaseListeners.erase(it);
            return;
        }
    }
}

void
EventQueue::beginPhase(const char *name)
{
    _phaseName = name;
    for (PhaseListener *l : phaseListeners)
        l->phaseBegin(name, _curTick);
}

void
EventQueue::endPhase()
{
    for (PhaseListener *l : phaseListeners)
        l->phaseEnd(_phaseName.c_str(), _curTick);
    _phaseName.clear();
}

} // namespace stashsim
