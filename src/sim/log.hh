/**
 * @file
 * Error and diagnostic reporting, gem5-style.
 *
 * panic()  - an internal simulator invariant was violated (a bug in the
 *            simulator itself); aborts.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, unsupported workload parameters);
 *            exits with an error code.
 * warn()   - something is suspicious but simulation continues.
 * inform() - purely informational.
 *
 * Components can register diagnostic hooks (dump callbacks); both
 * panic() and fatal() flush every registered hook once before
 * aborting/throwing, so a watchdog or protocol-checker state dump
 * fires even when the failure originates elsewhere.
 */

#ifndef STASHSIM_SIM_LOG_HH
#define STASHSIM_SIM_LOG_HH

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace stashsim
{

/** @{ Implementation helpers; use the macros below. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
/** @} */

/** Builds a message string from stream-insertable parts. */
template <typename... Args>
std::string
logFormat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

/**
 * Debug tracing for one physical line address, enabled by setting the
 * STASHSIM_TRACE_PA environment variable to a hex line address.
 * Returns true when @p pa falls in the traced line.
 */
bool tracePA(std::uint64_t pa);

/** A diagnostic dump callback flushed on panic()/fatal(). */
using DiagnosticHook = std::function<void()>;

/**
 * Registers @p hook to run (once) before any panic/fatal failure.
 * @return an id for unregisterDiagnosticHook.
 */
std::size_t registerDiagnosticHook(DiagnosticHook hook);

/** Removes a previously registered hook (owners call from dtors). */
void unregisterDiagnosticHook(std::size_t id);

/**
 * Runs every registered hook, in registration order.  Reentrancy-
 * guarded: a hook that itself panics does not recurse.  Called
 * automatically by panic()/fatal(); exposed for tests.
 */
void flushDiagnosticHooks();

} // namespace stashsim

#define panic(...) \
    ::stashsim::panicImpl(__FILE__, __LINE__, \
                          ::stashsim::logFormat(__VA_ARGS__))

#define fatal(...) \
    ::stashsim::fatalImpl(__FILE__, __LINE__, \
                          ::stashsim::logFormat(__VA_ARGS__))

#define warn(...) ::stashsim::warnImpl(::stashsim::logFormat(__VA_ARGS__))

#define inform(...) \
    ::stashsim::informImpl(::stashsim::logFormat(__VA_ARGS__))

/** Panics when @p cond is false; for simulator-internal invariants. */
#define sim_assert(cond) \
    do { \
        if (!(cond)) \
            panic("assertion failed: " #cond); \
    } while (0)

#endif // STASHSIM_SIM_LOG_HH
