/**
 * @file
 * Error and diagnostic reporting, gem5-style.
 *
 * panic()  - an internal simulator invariant was violated (a bug in the
 *            simulator itself); aborts.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, unsupported workload parameters);
 *            exits with an error code.
 * warn()   - something is suspicious but simulation continues.
 * inform() - purely informational.
 */

#ifndef STASHSIM_SIM_LOG_HH
#define STASHSIM_SIM_LOG_HH

#include <cstdint>
#include <sstream>
#include <string>

namespace stashsim
{

/** @{ Implementation helpers; use the macros below. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
/** @} */

/** Builds a message string from stream-insertable parts. */
template <typename... Args>
std::string
logFormat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

/**
 * Debug tracing for one physical line address, enabled by setting the
 * STASHSIM_TRACE_PA environment variable to a hex line address.
 * Returns true when @p pa falls in the traced line.
 */
bool tracePA(std::uint64_t pa);

} // namespace stashsim

#define panic(...) \
    ::stashsim::panicImpl(__FILE__, __LINE__, \
                          ::stashsim::logFormat(__VA_ARGS__))

#define fatal(...) \
    ::stashsim::fatalImpl(__FILE__, __LINE__, \
                          ::stashsim::logFormat(__VA_ARGS__))

#define warn(...) ::stashsim::warnImpl(::stashsim::logFormat(__VA_ARGS__))

#define inform(...) \
    ::stashsim::informImpl(::stashsim::logFormat(__VA_ARGS__))

/** Panics when @p cond is false; for simulator-internal invariants. */
#define sim_assert(cond) \
    do { \
        if (!(cond)) \
            panic("assertion failed: " #cond); \
    } while (0)

#endif // STASHSIM_SIM_LOG_HH
